# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/quorum_test[1]_include.cmake")
include("/root/repo/build/tests/protocols_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/replica_test[1]_include.cmake")
include("/root/repo/build/tests/txn_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
