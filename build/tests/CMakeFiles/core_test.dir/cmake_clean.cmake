file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/analysis_test.cpp.o"
  "CMakeFiles/core_test.dir/core/analysis_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/config_test.cpp.o"
  "CMakeFiles/core_test.dir/core/config_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/dot_test.cpp.o"
  "CMakeFiles/core_test.dir/core/dot_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/paper_example_test.cpp.o"
  "CMakeFiles/core_test.dir/core/paper_example_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/property_test.cpp.o"
  "CMakeFiles/core_test.dir/core/property_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/quorums_test.cpp.o"
  "CMakeFiles/core_test.dir/core/quorums_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/sweep_test.cpp.o"
  "CMakeFiles/core_test.dir/core/sweep_test.cpp.o.d"
  "CMakeFiles/core_test.dir/core/tree_test.cpp.o"
  "CMakeFiles/core_test.dir/core/tree_test.cpp.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
