file(REMOVE_RECURSE
  "CMakeFiles/txn_test.dir/txn/cluster_test.cpp.o"
  "CMakeFiles/txn_test.dir/txn/cluster_test.cpp.o.d"
  "CMakeFiles/txn_test.dir/txn/coordinator_test.cpp.o"
  "CMakeFiles/txn_test.dir/txn/coordinator_test.cpp.o.d"
  "CMakeFiles/txn_test.dir/txn/deadlock_test.cpp.o"
  "CMakeFiles/txn_test.dir/txn/deadlock_test.cpp.o.d"
  "CMakeFiles/txn_test.dir/txn/detector_test.cpp.o"
  "CMakeFiles/txn_test.dir/txn/detector_test.cpp.o.d"
  "CMakeFiles/txn_test.dir/txn/lock_manager_test.cpp.o"
  "CMakeFiles/txn_test.dir/txn/lock_manager_test.cpp.o.d"
  "CMakeFiles/txn_test.dir/txn/read_repair_test.cpp.o"
  "CMakeFiles/txn_test.dir/txn/read_repair_test.cpp.o.d"
  "CMakeFiles/txn_test.dir/txn/reconfigure_test.cpp.o"
  "CMakeFiles/txn_test.dir/txn/reconfigure_test.cpp.o.d"
  "CMakeFiles/txn_test.dir/txn/retry_test.cpp.o"
  "CMakeFiles/txn_test.dir/txn/retry_test.cpp.o.d"
  "CMakeFiles/txn_test.dir/txn/workload_test.cpp.o"
  "CMakeFiles/txn_test.dir/txn/workload_test.cpp.o.d"
  "txn_test"
  "txn_test.pdb"
  "txn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/txn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
