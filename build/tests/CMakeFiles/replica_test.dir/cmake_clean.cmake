file(REMOVE_RECURSE
  "CMakeFiles/replica_test.dir/replica/server_test.cpp.o"
  "CMakeFiles/replica_test.dir/replica/server_test.cpp.o.d"
  "CMakeFiles/replica_test.dir/replica/store_test.cpp.o"
  "CMakeFiles/replica_test.dir/replica/store_test.cpp.o.d"
  "replica_test"
  "replica_test.pdb"
  "replica_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replica_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
