file(REMOVE_RECURSE
  "CMakeFiles/protocols_test.dir/protocols/cross_protocol_test.cpp.o"
  "CMakeFiles/protocols_test.dir/protocols/cross_protocol_test.cpp.o.d"
  "CMakeFiles/protocols_test.dir/protocols/grid_test.cpp.o"
  "CMakeFiles/protocols_test.dir/protocols/grid_test.cpp.o.d"
  "CMakeFiles/protocols_test.dir/protocols/hqc_test.cpp.o"
  "CMakeFiles/protocols_test.dir/protocols/hqc_test.cpp.o.d"
  "CMakeFiles/protocols_test.dir/protocols/maekawa_test.cpp.o"
  "CMakeFiles/protocols_test.dir/protocols/maekawa_test.cpp.o.d"
  "CMakeFiles/protocols_test.dir/protocols/majority_test.cpp.o"
  "CMakeFiles/protocols_test.dir/protocols/majority_test.cpp.o.d"
  "CMakeFiles/protocols_test.dir/protocols/protocol_interface_test.cpp.o"
  "CMakeFiles/protocols_test.dir/protocols/protocol_interface_test.cpp.o.d"
  "CMakeFiles/protocols_test.dir/protocols/rooted_tree_test.cpp.o"
  "CMakeFiles/protocols_test.dir/protocols/rooted_tree_test.cpp.o.d"
  "CMakeFiles/protocols_test.dir/protocols/rowa_test.cpp.o"
  "CMakeFiles/protocols_test.dir/protocols/rowa_test.cpp.o.d"
  "CMakeFiles/protocols_test.dir/protocols/tree_quorum_test.cpp.o"
  "CMakeFiles/protocols_test.dir/protocols/tree_quorum_test.cpp.o.d"
  "CMakeFiles/protocols_test.dir/protocols/weighted_voting_test.cpp.o"
  "CMakeFiles/protocols_test.dir/protocols/weighted_voting_test.cpp.o.d"
  "protocols_test"
  "protocols_test.pdb"
  "protocols_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocols_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
