
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/protocols/cross_protocol_test.cpp" "tests/CMakeFiles/protocols_test.dir/protocols/cross_protocol_test.cpp.o" "gcc" "tests/CMakeFiles/protocols_test.dir/protocols/cross_protocol_test.cpp.o.d"
  "/root/repo/tests/protocols/grid_test.cpp" "tests/CMakeFiles/protocols_test.dir/protocols/grid_test.cpp.o" "gcc" "tests/CMakeFiles/protocols_test.dir/protocols/grid_test.cpp.o.d"
  "/root/repo/tests/protocols/hqc_test.cpp" "tests/CMakeFiles/protocols_test.dir/protocols/hqc_test.cpp.o" "gcc" "tests/CMakeFiles/protocols_test.dir/protocols/hqc_test.cpp.o.d"
  "/root/repo/tests/protocols/maekawa_test.cpp" "tests/CMakeFiles/protocols_test.dir/protocols/maekawa_test.cpp.o" "gcc" "tests/CMakeFiles/protocols_test.dir/protocols/maekawa_test.cpp.o.d"
  "/root/repo/tests/protocols/majority_test.cpp" "tests/CMakeFiles/protocols_test.dir/protocols/majority_test.cpp.o" "gcc" "tests/CMakeFiles/protocols_test.dir/protocols/majority_test.cpp.o.d"
  "/root/repo/tests/protocols/protocol_interface_test.cpp" "tests/CMakeFiles/protocols_test.dir/protocols/protocol_interface_test.cpp.o" "gcc" "tests/CMakeFiles/protocols_test.dir/protocols/protocol_interface_test.cpp.o.d"
  "/root/repo/tests/protocols/rooted_tree_test.cpp" "tests/CMakeFiles/protocols_test.dir/protocols/rooted_tree_test.cpp.o" "gcc" "tests/CMakeFiles/protocols_test.dir/protocols/rooted_tree_test.cpp.o.d"
  "/root/repo/tests/protocols/rowa_test.cpp" "tests/CMakeFiles/protocols_test.dir/protocols/rowa_test.cpp.o" "gcc" "tests/CMakeFiles/protocols_test.dir/protocols/rowa_test.cpp.o.d"
  "/root/repo/tests/protocols/tree_quorum_test.cpp" "tests/CMakeFiles/protocols_test.dir/protocols/tree_quorum_test.cpp.o" "gcc" "tests/CMakeFiles/protocols_test.dir/protocols/tree_quorum_test.cpp.o.d"
  "/root/repo/tests/protocols/weighted_voting_test.cpp" "tests/CMakeFiles/protocols_test.dir/protocols/weighted_voting_test.cpp.o" "gcc" "tests/CMakeFiles/protocols_test.dir/protocols/weighted_voting_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/atrcp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/atrcp_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/replica/CMakeFiles/atrcp_replica.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/atrcp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/atrcp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/CMakeFiles/atrcp_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/quorum/CMakeFiles/atrcp_quorum.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/atrcp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
