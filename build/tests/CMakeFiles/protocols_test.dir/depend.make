# Empty dependencies file for protocols_test.
# This may be replaced when dependencies are built.
