file(REMOVE_RECURSE
  "CMakeFiles/quorum_test.dir/quorum/availability_test.cpp.o"
  "CMakeFiles/quorum_test.dir/quorum/availability_test.cpp.o.d"
  "CMakeFiles/quorum_test.dir/quorum/composition_test.cpp.o"
  "CMakeFiles/quorum_test.dir/quorum/composition_test.cpp.o.d"
  "CMakeFiles/quorum_test.dir/quorum/lp_test.cpp.o"
  "CMakeFiles/quorum_test.dir/quorum/lp_test.cpp.o.d"
  "CMakeFiles/quorum_test.dir/quorum/resilience_test.cpp.o"
  "CMakeFiles/quorum_test.dir/quorum/resilience_test.cpp.o.d"
  "CMakeFiles/quorum_test.dir/quorum/set_system_test.cpp.o"
  "CMakeFiles/quorum_test.dir/quorum/set_system_test.cpp.o.d"
  "CMakeFiles/quorum_test.dir/quorum/strategy_test.cpp.o"
  "CMakeFiles/quorum_test.dir/quorum/strategy_test.cpp.o.d"
  "CMakeFiles/quorum_test.dir/quorum/types_test.cpp.o"
  "CMakeFiles/quorum_test.dir/quorum/types_test.cpp.o.d"
  "quorum_test"
  "quorum_test.pdb"
  "quorum_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quorum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
