# Empty dependencies file for quorum_test.
# This may be replaced when dependencies are built.
