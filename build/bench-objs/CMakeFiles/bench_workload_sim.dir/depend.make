# Empty dependencies file for bench_workload_sim.
# This may be replaced when dependencies are built.
