file(REMOVE_RECURSE
  "../bench/bench_workload_sim"
  "../bench/bench_workload_sim.pdb"
  "CMakeFiles/bench_workload_sim.dir/workload_sim.cpp.o"
  "CMakeFiles/bench_workload_sim.dir/workload_sim.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_workload_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
