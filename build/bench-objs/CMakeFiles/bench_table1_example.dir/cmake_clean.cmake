file(REMOVE_RECURSE
  "../bench/bench_table1_example"
  "../bench/bench_table1_example.pdb"
  "CMakeFiles/bench_table1_example.dir/table1_example.cpp.o"
  "CMakeFiles/bench_table1_example.dir/table1_example.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
