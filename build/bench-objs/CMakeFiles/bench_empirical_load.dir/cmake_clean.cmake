file(REMOVE_RECURSE
  "../bench/bench_empirical_load"
  "../bench/bench_empirical_load.pdb"
  "CMakeFiles/bench_empirical_load.dir/empirical_load.cpp.o"
  "CMakeFiles/bench_empirical_load.dir/empirical_load.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_empirical_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
