# Empty compiler generated dependencies file for bench_empirical_load.
# This may be replaced when dependencies are built.
