file(REMOVE_RECURSE
  "../bench/bench_fig3_read_load"
  "../bench/bench_fig3_read_load.pdb"
  "CMakeFiles/bench_fig3_read_load.dir/fig3_read_load.cpp.o"
  "CMakeFiles/bench_fig3_read_load.dir/fig3_read_load.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_read_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
