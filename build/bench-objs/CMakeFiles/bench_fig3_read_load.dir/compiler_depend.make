# Empty compiler generated dependencies file for bench_fig3_read_load.
# This may be replaced when dependencies are built.
