# Empty compiler generated dependencies file for bench_ablation_levels.
# This may be replaced when dependencies are built.
