file(REMOVE_RECURSE
  "../bench/bench_ablation_levels"
  "../bench/bench_ablation_levels.pdb"
  "CMakeFiles/bench_ablation_levels.dir/ablation_levels.cpp.o"
  "CMakeFiles/bench_ablation_levels.dir/ablation_levels.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_levels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
