file(REMOVE_RECURSE
  "../bench/bench_unmodified_bound"
  "../bench/bench_unmodified_bound.pdb"
  "CMakeFiles/bench_unmodified_bound.dir/unmodified_bound.cpp.o"
  "CMakeFiles/bench_unmodified_bound.dir/unmodified_bound.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_unmodified_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
