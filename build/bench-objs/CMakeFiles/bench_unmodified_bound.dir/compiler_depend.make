# Empty compiler generated dependencies file for bench_unmodified_bound.
# This may be replaced when dependencies are built.
