file(REMOVE_RECURSE
  "../bench/bench_binary_degradation"
  "../bench/bench_binary_degradation.pdb"
  "CMakeFiles/bench_binary_degradation.dir/binary_degradation.cpp.o"
  "CMakeFiles/bench_binary_degradation.dir/binary_degradation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_binary_degradation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
