# Empty dependencies file for bench_binary_degradation.
# This may be replaced when dependencies are built.
