file(REMOVE_RECURSE
  "../bench/bench_psweep"
  "../bench/bench_psweep.pdb"
  "CMakeFiles/bench_psweep.dir/psweep.cpp.o"
  "CMakeFiles/bench_psweep.dir/psweep.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_psweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
