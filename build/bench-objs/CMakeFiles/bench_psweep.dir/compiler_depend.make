# Empty compiler generated dependencies file for bench_psweep.
# This may be replaced when dependencies are built.
