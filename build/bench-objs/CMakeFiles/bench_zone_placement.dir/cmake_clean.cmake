file(REMOVE_RECURSE
  "../bench/bench_zone_placement"
  "../bench/bench_zone_placement.pdb"
  "CMakeFiles/bench_zone_placement.dir/zone_placement.cpp.o"
  "CMakeFiles/bench_zone_placement.dir/zone_placement.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_zone_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
