# Empty dependencies file for bench_zone_placement.
# This may be replaced when dependencies are built.
