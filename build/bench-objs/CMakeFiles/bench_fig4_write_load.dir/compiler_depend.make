# Empty compiler generated dependencies file for bench_fig4_write_load.
# This may be replaced when dependencies are built.
