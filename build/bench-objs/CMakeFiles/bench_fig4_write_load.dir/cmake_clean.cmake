file(REMOVE_RECURSE
  "../bench/bench_fig4_write_load"
  "../bench/bench_fig4_write_load.pdb"
  "CMakeFiles/bench_fig4_write_load.dir/fig4_write_load.cpp.o"
  "CMakeFiles/bench_fig4_write_load.dir/fig4_write_load.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_write_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
