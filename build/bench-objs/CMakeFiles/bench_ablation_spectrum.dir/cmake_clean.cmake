file(REMOVE_RECURSE
  "../bench/bench_ablation_spectrum"
  "../bench/bench_ablation_spectrum.pdb"
  "CMakeFiles/bench_ablation_spectrum.dir/ablation_spectrum.cpp.o"
  "CMakeFiles/bench_ablation_spectrum.dir/ablation_spectrum.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
