# Empty dependencies file for bench_ablation_spectrum.
# This may be replaced when dependencies are built.
