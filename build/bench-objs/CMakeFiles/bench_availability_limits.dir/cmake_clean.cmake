file(REMOVE_RECURSE
  "../bench/bench_availability_limits"
  "../bench/bench_availability_limits.pdb"
  "CMakeFiles/bench_availability_limits.dir/availability_limits.cpp.o"
  "CMakeFiles/bench_availability_limits.dir/availability_limits.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_availability_limits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
