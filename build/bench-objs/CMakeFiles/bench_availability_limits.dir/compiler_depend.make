# Empty compiler generated dependencies file for bench_availability_limits.
# This may be replaced when dependencies are built.
