file(REMOVE_RECURSE
  "../bench/bench_resilience_table"
  "../bench/bench_resilience_table.pdb"
  "CMakeFiles/bench_resilience_table.dir/resilience_table.cpp.o"
  "CMakeFiles/bench_resilience_table.dir/resilience_table.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_resilience_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
