# Empty compiler generated dependencies file for bench_resilience_table.
# This may be replaced when dependencies are built.
