
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig2_costs.cpp" "bench-objs/CMakeFiles/bench_fig2_costs.dir/fig2_costs.cpp.o" "gcc" "bench-objs/CMakeFiles/bench_fig2_costs.dir/fig2_costs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/atrcp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/atrcp_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/replica/CMakeFiles/atrcp_replica.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/atrcp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/atrcp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/CMakeFiles/atrcp_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/quorum/CMakeFiles/atrcp_quorum.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/atrcp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
