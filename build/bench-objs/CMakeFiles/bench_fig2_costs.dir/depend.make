# Empty dependencies file for bench_fig2_costs.
# This may be replaced when dependencies are built.
