file(REMOVE_RECURSE
  "../bench/bench_fig2_costs"
  "../bench/bench_fig2_costs.pdb"
  "CMakeFiles/bench_fig2_costs.dir/fig2_costs.cpp.o"
  "CMakeFiles/bench_fig2_costs.dir/fig2_costs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
