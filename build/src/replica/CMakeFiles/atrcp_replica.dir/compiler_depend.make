# Empty compiler generated dependencies file for atrcp_replica.
# This may be replaced when dependencies are built.
