
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/replica/server.cpp" "src/replica/CMakeFiles/atrcp_replica.dir/server.cpp.o" "gcc" "src/replica/CMakeFiles/atrcp_replica.dir/server.cpp.o.d"
  "/root/repo/src/replica/store.cpp" "src/replica/CMakeFiles/atrcp_replica.dir/store.cpp.o" "gcc" "src/replica/CMakeFiles/atrcp_replica.dir/store.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/atrcp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/atrcp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/quorum/CMakeFiles/atrcp_quorum.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
