file(REMOVE_RECURSE
  "libatrcp_replica.a"
)
