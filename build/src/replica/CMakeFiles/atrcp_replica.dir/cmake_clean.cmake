file(REMOVE_RECURSE
  "CMakeFiles/atrcp_replica.dir/server.cpp.o"
  "CMakeFiles/atrcp_replica.dir/server.cpp.o.d"
  "CMakeFiles/atrcp_replica.dir/store.cpp.o"
  "CMakeFiles/atrcp_replica.dir/store.cpp.o.d"
  "libatrcp_replica.a"
  "libatrcp_replica.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atrcp_replica.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
