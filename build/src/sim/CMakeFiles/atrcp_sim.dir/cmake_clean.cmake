file(REMOVE_RECURSE
  "CMakeFiles/atrcp_sim.dir/failure.cpp.o"
  "CMakeFiles/atrcp_sim.dir/failure.cpp.o.d"
  "CMakeFiles/atrcp_sim.dir/network.cpp.o"
  "CMakeFiles/atrcp_sim.dir/network.cpp.o.d"
  "CMakeFiles/atrcp_sim.dir/scheduler.cpp.o"
  "CMakeFiles/atrcp_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/atrcp_sim.dir/trace.cpp.o"
  "CMakeFiles/atrcp_sim.dir/trace.cpp.o.d"
  "libatrcp_sim.a"
  "libatrcp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atrcp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
