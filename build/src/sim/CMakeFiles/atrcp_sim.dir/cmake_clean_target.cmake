file(REMOVE_RECURSE
  "libatrcp_sim.a"
)
