# Empty dependencies file for atrcp_sim.
# This may be replaced when dependencies are built.
