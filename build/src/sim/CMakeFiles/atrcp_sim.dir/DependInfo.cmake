
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/failure.cpp" "src/sim/CMakeFiles/atrcp_sim.dir/failure.cpp.o" "gcc" "src/sim/CMakeFiles/atrcp_sim.dir/failure.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/sim/CMakeFiles/atrcp_sim.dir/network.cpp.o" "gcc" "src/sim/CMakeFiles/atrcp_sim.dir/network.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/sim/CMakeFiles/atrcp_sim.dir/scheduler.cpp.o" "gcc" "src/sim/CMakeFiles/atrcp_sim.dir/scheduler.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/atrcp_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/atrcp_sim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/quorum/CMakeFiles/atrcp_quorum.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/atrcp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
