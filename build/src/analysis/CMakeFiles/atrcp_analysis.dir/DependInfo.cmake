
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/empirical.cpp" "src/analysis/CMakeFiles/atrcp_analysis.dir/empirical.cpp.o" "gcc" "src/analysis/CMakeFiles/atrcp_analysis.dir/empirical.cpp.o.d"
  "/root/repo/src/analysis/models.cpp" "src/analysis/CMakeFiles/atrcp_analysis.dir/models.cpp.o" "gcc" "src/analysis/CMakeFiles/atrcp_analysis.dir/models.cpp.o.d"
  "/root/repo/src/analysis/zones.cpp" "src/analysis/CMakeFiles/atrcp_analysis.dir/zones.cpp.o" "gcc" "src/analysis/CMakeFiles/atrcp_analysis.dir/zones.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/atrcp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/CMakeFiles/atrcp_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/quorum/CMakeFiles/atrcp_quorum.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/atrcp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
