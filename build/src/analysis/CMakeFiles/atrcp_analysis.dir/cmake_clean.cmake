file(REMOVE_RECURSE
  "CMakeFiles/atrcp_analysis.dir/empirical.cpp.o"
  "CMakeFiles/atrcp_analysis.dir/empirical.cpp.o.d"
  "CMakeFiles/atrcp_analysis.dir/models.cpp.o"
  "CMakeFiles/atrcp_analysis.dir/models.cpp.o.d"
  "CMakeFiles/atrcp_analysis.dir/zones.cpp.o"
  "CMakeFiles/atrcp_analysis.dir/zones.cpp.o.d"
  "libatrcp_analysis.a"
  "libatrcp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atrcp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
