file(REMOVE_RECURSE
  "libatrcp_analysis.a"
)
