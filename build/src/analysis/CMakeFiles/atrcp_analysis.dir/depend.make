# Empty dependencies file for atrcp_analysis.
# This may be replaced when dependencies are built.
