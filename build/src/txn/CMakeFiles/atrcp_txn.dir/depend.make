# Empty dependencies file for atrcp_txn.
# This may be replaced when dependencies are built.
