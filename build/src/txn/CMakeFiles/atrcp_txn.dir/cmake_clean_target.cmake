file(REMOVE_RECURSE
  "libatrcp_txn.a"
)
