file(REMOVE_RECURSE
  "CMakeFiles/atrcp_txn.dir/cluster.cpp.o"
  "CMakeFiles/atrcp_txn.dir/cluster.cpp.o.d"
  "CMakeFiles/atrcp_txn.dir/coordinator.cpp.o"
  "CMakeFiles/atrcp_txn.dir/coordinator.cpp.o.d"
  "CMakeFiles/atrcp_txn.dir/detector.cpp.o"
  "CMakeFiles/atrcp_txn.dir/detector.cpp.o.d"
  "CMakeFiles/atrcp_txn.dir/lock_manager.cpp.o"
  "CMakeFiles/atrcp_txn.dir/lock_manager.cpp.o.d"
  "CMakeFiles/atrcp_txn.dir/retry.cpp.o"
  "CMakeFiles/atrcp_txn.dir/retry.cpp.o.d"
  "CMakeFiles/atrcp_txn.dir/workload.cpp.o"
  "CMakeFiles/atrcp_txn.dir/workload.cpp.o.d"
  "libatrcp_txn.a"
  "libatrcp_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atrcp_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
