
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/txn/cluster.cpp" "src/txn/CMakeFiles/atrcp_txn.dir/cluster.cpp.o" "gcc" "src/txn/CMakeFiles/atrcp_txn.dir/cluster.cpp.o.d"
  "/root/repo/src/txn/coordinator.cpp" "src/txn/CMakeFiles/atrcp_txn.dir/coordinator.cpp.o" "gcc" "src/txn/CMakeFiles/atrcp_txn.dir/coordinator.cpp.o.d"
  "/root/repo/src/txn/detector.cpp" "src/txn/CMakeFiles/atrcp_txn.dir/detector.cpp.o" "gcc" "src/txn/CMakeFiles/atrcp_txn.dir/detector.cpp.o.d"
  "/root/repo/src/txn/lock_manager.cpp" "src/txn/CMakeFiles/atrcp_txn.dir/lock_manager.cpp.o" "gcc" "src/txn/CMakeFiles/atrcp_txn.dir/lock_manager.cpp.o.d"
  "/root/repo/src/txn/retry.cpp" "src/txn/CMakeFiles/atrcp_txn.dir/retry.cpp.o" "gcc" "src/txn/CMakeFiles/atrcp_txn.dir/retry.cpp.o.d"
  "/root/repo/src/txn/workload.cpp" "src/txn/CMakeFiles/atrcp_txn.dir/workload.cpp.o" "gcc" "src/txn/CMakeFiles/atrcp_txn.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/replica/CMakeFiles/atrcp_replica.dir/DependInfo.cmake"
  "/root/repo/build/src/protocols/CMakeFiles/atrcp_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/atrcp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/atrcp_util.dir/DependInfo.cmake"
  "/root/repo/build/src/quorum/CMakeFiles/atrcp_quorum.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
