file(REMOVE_RECURSE
  "libatrcp_util.a"
)
