# Empty dependencies file for atrcp_util.
# This may be replaced when dependencies are built.
