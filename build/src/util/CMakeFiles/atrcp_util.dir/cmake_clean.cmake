file(REMOVE_RECURSE
  "CMakeFiles/atrcp_util.dir/math.cpp.o"
  "CMakeFiles/atrcp_util.dir/math.cpp.o.d"
  "CMakeFiles/atrcp_util.dir/rng.cpp.o"
  "CMakeFiles/atrcp_util.dir/rng.cpp.o.d"
  "CMakeFiles/atrcp_util.dir/stats.cpp.o"
  "CMakeFiles/atrcp_util.dir/stats.cpp.o.d"
  "CMakeFiles/atrcp_util.dir/table.cpp.o"
  "CMakeFiles/atrcp_util.dir/table.cpp.o.d"
  "libatrcp_util.a"
  "libatrcp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atrcp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
