file(REMOVE_RECURSE
  "CMakeFiles/atrcp_quorum.dir/availability.cpp.o"
  "CMakeFiles/atrcp_quorum.dir/availability.cpp.o.d"
  "CMakeFiles/atrcp_quorum.dir/composition.cpp.o"
  "CMakeFiles/atrcp_quorum.dir/composition.cpp.o.d"
  "CMakeFiles/atrcp_quorum.dir/lp.cpp.o"
  "CMakeFiles/atrcp_quorum.dir/lp.cpp.o.d"
  "CMakeFiles/atrcp_quorum.dir/resilience.cpp.o"
  "CMakeFiles/atrcp_quorum.dir/resilience.cpp.o.d"
  "CMakeFiles/atrcp_quorum.dir/set_system.cpp.o"
  "CMakeFiles/atrcp_quorum.dir/set_system.cpp.o.d"
  "CMakeFiles/atrcp_quorum.dir/strategy.cpp.o"
  "CMakeFiles/atrcp_quorum.dir/strategy.cpp.o.d"
  "libatrcp_quorum.a"
  "libatrcp_quorum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atrcp_quorum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
