# Empty dependencies file for atrcp_quorum.
# This may be replaced when dependencies are built.
