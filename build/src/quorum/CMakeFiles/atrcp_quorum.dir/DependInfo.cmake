
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quorum/availability.cpp" "src/quorum/CMakeFiles/atrcp_quorum.dir/availability.cpp.o" "gcc" "src/quorum/CMakeFiles/atrcp_quorum.dir/availability.cpp.o.d"
  "/root/repo/src/quorum/composition.cpp" "src/quorum/CMakeFiles/atrcp_quorum.dir/composition.cpp.o" "gcc" "src/quorum/CMakeFiles/atrcp_quorum.dir/composition.cpp.o.d"
  "/root/repo/src/quorum/lp.cpp" "src/quorum/CMakeFiles/atrcp_quorum.dir/lp.cpp.o" "gcc" "src/quorum/CMakeFiles/atrcp_quorum.dir/lp.cpp.o.d"
  "/root/repo/src/quorum/resilience.cpp" "src/quorum/CMakeFiles/atrcp_quorum.dir/resilience.cpp.o" "gcc" "src/quorum/CMakeFiles/atrcp_quorum.dir/resilience.cpp.o.d"
  "/root/repo/src/quorum/set_system.cpp" "src/quorum/CMakeFiles/atrcp_quorum.dir/set_system.cpp.o" "gcc" "src/quorum/CMakeFiles/atrcp_quorum.dir/set_system.cpp.o.d"
  "/root/repo/src/quorum/strategy.cpp" "src/quorum/CMakeFiles/atrcp_quorum.dir/strategy.cpp.o" "gcc" "src/quorum/CMakeFiles/atrcp_quorum.dir/strategy.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/atrcp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
