file(REMOVE_RECURSE
  "libatrcp_quorum.a"
)
