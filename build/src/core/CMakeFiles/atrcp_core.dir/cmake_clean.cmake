file(REMOVE_RECURSE
  "CMakeFiles/atrcp_core.dir/analysis.cpp.o"
  "CMakeFiles/atrcp_core.dir/analysis.cpp.o.d"
  "CMakeFiles/atrcp_core.dir/config.cpp.o"
  "CMakeFiles/atrcp_core.dir/config.cpp.o.d"
  "CMakeFiles/atrcp_core.dir/dot.cpp.o"
  "CMakeFiles/atrcp_core.dir/dot.cpp.o.d"
  "CMakeFiles/atrcp_core.dir/quorums.cpp.o"
  "CMakeFiles/atrcp_core.dir/quorums.cpp.o.d"
  "CMakeFiles/atrcp_core.dir/tree.cpp.o"
  "CMakeFiles/atrcp_core.dir/tree.cpp.o.d"
  "libatrcp_core.a"
  "libatrcp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atrcp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
