
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cpp" "src/core/CMakeFiles/atrcp_core.dir/analysis.cpp.o" "gcc" "src/core/CMakeFiles/atrcp_core.dir/analysis.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/core/CMakeFiles/atrcp_core.dir/config.cpp.o" "gcc" "src/core/CMakeFiles/atrcp_core.dir/config.cpp.o.d"
  "/root/repo/src/core/dot.cpp" "src/core/CMakeFiles/atrcp_core.dir/dot.cpp.o" "gcc" "src/core/CMakeFiles/atrcp_core.dir/dot.cpp.o.d"
  "/root/repo/src/core/quorums.cpp" "src/core/CMakeFiles/atrcp_core.dir/quorums.cpp.o" "gcc" "src/core/CMakeFiles/atrcp_core.dir/quorums.cpp.o.d"
  "/root/repo/src/core/tree.cpp" "src/core/CMakeFiles/atrcp_core.dir/tree.cpp.o" "gcc" "src/core/CMakeFiles/atrcp_core.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/protocols/CMakeFiles/atrcp_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/quorum/CMakeFiles/atrcp_quorum.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/atrcp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
