file(REMOVE_RECURSE
  "libatrcp_core.a"
)
