# Empty compiler generated dependencies file for atrcp_core.
# This may be replaced when dependencies are built.
