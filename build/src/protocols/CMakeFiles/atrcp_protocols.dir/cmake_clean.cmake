file(REMOVE_RECURSE
  "CMakeFiles/atrcp_protocols.dir/grid.cpp.o"
  "CMakeFiles/atrcp_protocols.dir/grid.cpp.o.d"
  "CMakeFiles/atrcp_protocols.dir/hqc.cpp.o"
  "CMakeFiles/atrcp_protocols.dir/hqc.cpp.o.d"
  "CMakeFiles/atrcp_protocols.dir/maekawa.cpp.o"
  "CMakeFiles/atrcp_protocols.dir/maekawa.cpp.o.d"
  "CMakeFiles/atrcp_protocols.dir/majority.cpp.o"
  "CMakeFiles/atrcp_protocols.dir/majority.cpp.o.d"
  "CMakeFiles/atrcp_protocols.dir/protocol.cpp.o"
  "CMakeFiles/atrcp_protocols.dir/protocol.cpp.o.d"
  "CMakeFiles/atrcp_protocols.dir/rooted_tree.cpp.o"
  "CMakeFiles/atrcp_protocols.dir/rooted_tree.cpp.o.d"
  "CMakeFiles/atrcp_protocols.dir/rowa.cpp.o"
  "CMakeFiles/atrcp_protocols.dir/rowa.cpp.o.d"
  "CMakeFiles/atrcp_protocols.dir/tree_quorum.cpp.o"
  "CMakeFiles/atrcp_protocols.dir/tree_quorum.cpp.o.d"
  "CMakeFiles/atrcp_protocols.dir/weighted_voting.cpp.o"
  "CMakeFiles/atrcp_protocols.dir/weighted_voting.cpp.o.d"
  "libatrcp_protocols.a"
  "libatrcp_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atrcp_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
