
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocols/grid.cpp" "src/protocols/CMakeFiles/atrcp_protocols.dir/grid.cpp.o" "gcc" "src/protocols/CMakeFiles/atrcp_protocols.dir/grid.cpp.o.d"
  "/root/repo/src/protocols/hqc.cpp" "src/protocols/CMakeFiles/atrcp_protocols.dir/hqc.cpp.o" "gcc" "src/protocols/CMakeFiles/atrcp_protocols.dir/hqc.cpp.o.d"
  "/root/repo/src/protocols/maekawa.cpp" "src/protocols/CMakeFiles/atrcp_protocols.dir/maekawa.cpp.o" "gcc" "src/protocols/CMakeFiles/atrcp_protocols.dir/maekawa.cpp.o.d"
  "/root/repo/src/protocols/majority.cpp" "src/protocols/CMakeFiles/atrcp_protocols.dir/majority.cpp.o" "gcc" "src/protocols/CMakeFiles/atrcp_protocols.dir/majority.cpp.o.d"
  "/root/repo/src/protocols/protocol.cpp" "src/protocols/CMakeFiles/atrcp_protocols.dir/protocol.cpp.o" "gcc" "src/protocols/CMakeFiles/atrcp_protocols.dir/protocol.cpp.o.d"
  "/root/repo/src/protocols/rooted_tree.cpp" "src/protocols/CMakeFiles/atrcp_protocols.dir/rooted_tree.cpp.o" "gcc" "src/protocols/CMakeFiles/atrcp_protocols.dir/rooted_tree.cpp.o.d"
  "/root/repo/src/protocols/rowa.cpp" "src/protocols/CMakeFiles/atrcp_protocols.dir/rowa.cpp.o" "gcc" "src/protocols/CMakeFiles/atrcp_protocols.dir/rowa.cpp.o.d"
  "/root/repo/src/protocols/tree_quorum.cpp" "src/protocols/CMakeFiles/atrcp_protocols.dir/tree_quorum.cpp.o" "gcc" "src/protocols/CMakeFiles/atrcp_protocols.dir/tree_quorum.cpp.o.d"
  "/root/repo/src/protocols/weighted_voting.cpp" "src/protocols/CMakeFiles/atrcp_protocols.dir/weighted_voting.cpp.o" "gcc" "src/protocols/CMakeFiles/atrcp_protocols.dir/weighted_voting.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/quorum/CMakeFiles/atrcp_quorum.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/atrcp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
