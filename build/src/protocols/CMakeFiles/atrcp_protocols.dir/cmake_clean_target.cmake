file(REMOVE_RECURSE
  "libatrcp_protocols.a"
)
