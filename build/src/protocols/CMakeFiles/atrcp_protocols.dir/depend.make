# Empty dependencies file for atrcp_protocols.
# This may be replaced when dependencies are built.
