# Empty compiler generated dependencies file for adaptive_reconfiguration.
# This may be replaced when dependencies are built.
