file(REMOVE_RECURSE
  "CMakeFiles/adaptive_reconfiguration.dir/adaptive_reconfiguration.cpp.o"
  "CMakeFiles/adaptive_reconfiguration.dir/adaptive_reconfiguration.cpp.o.d"
  "adaptive_reconfiguration"
  "adaptive_reconfiguration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_reconfiguration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
