file(REMOVE_RECURSE
  "CMakeFiles/inspect.dir/inspect.cpp.o"
  "CMakeFiles/inspect.dir/inspect.cpp.o.d"
  "inspect"
  "inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
