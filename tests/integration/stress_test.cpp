// Contention and feature-interaction stress: many clients, hot zipf keys,
// multi-op transactions, read repair on, churn in the background — the
// kitchen sink. Checks progress, serialization (versions strictly grow per
// key) and bounded in-flight state at the end.
#include <gtest/gtest.h>

#include "core/config.hpp"
#include "core/quorums.hpp"
#include "txn/cluster.hpp"
#include "txn/workload.hpp"

namespace atrcp {
namespace {

TEST(StressTest, EightClientsHotKeys) {
  ClusterOptions options;
  options.clients = 8;
  options.link = LinkParams{.base_latency = 20, .jitter = 5};
  options.coordinator.read_repair = true;
  Cluster cluster(make_arbitrary(40), options);

  WorkloadOptions workload;
  workload.transactions_per_client = 60;
  workload.ops_per_txn = 3;
  workload.read_fraction = 0.5;
  workload.num_keys = 4;        // heavy contention
  workload.zipf_exponent = 1.0; // and skewed at that
  const WorkloadStats stats = run_workload(cluster, workload);

  EXPECT_EQ(stats.committed + stats.aborted + stats.blocked, 480u);
  // Sorted lock order + queues: healthy cluster commits everything.
  EXPECT_EQ(stats.committed, 480u);
  // Version on each key equals the number of committed writes to it:
  // writes serialized, none lost, none double-counted.
  std::uint64_t total_versions = 0;
  for (Key k = 0; k < 4; ++k) {
    if (const auto value = cluster.read_sync(0, k)) {
      total_versions += value->timestamp.version;
    }
  }
  EXPECT_EQ(total_versions, stats.writes_issued);
  for (std::size_t c = 0; c < 8; ++c) {
    EXPECT_EQ(cluster.client(c).in_flight(), 0u);
  }
}

TEST(StressTest, ContentionPlusChurnStaysSafe) {
  ClusterOptions options;
  options.clients = 4;
  options.link = LinkParams{.base_latency = 20, .jitter = 5};
  options.coordinator.request_timeout = 2'000;
  options.coordinator.read_repair = true;
  Cluster cluster(make_arbitrary(40), options);
  cluster.injector().start_random_failures(200'000, 20'000, 5'000'000);

  WorkloadOptions workload;
  workload.transactions_per_client = 80;
  workload.ops_per_txn = 2;
  workload.read_fraction = 0.5;
  workload.num_keys = 6;
  workload.zipf_exponent = 0.8;
  const WorkloadStats stats = run_workload(cluster, workload);
  EXPECT_EQ(stats.committed + stats.aborted + stats.blocked, 320u);
  EXPECT_GT(stats.commit_rate(), 0.5);

  // Safety invariant even under churn: for every key, the version stored
  // on any replica never exceeds the version a committed quorum read
  // returns after full recovery (no phantom versions). A kBlocked
  // transaction legitimately violates this (decided-committed, applied on
  // only part of its write quorum — the classic 2PC blocking window), so
  // the check applies when none occurred.
  if (stats.blocked != 0) return;
  for (ReplicaId r = 0; r < 40; ++r) cluster.injector().recover_now(r);
  for (Key k = 0; k < 6; ++k) {
    const auto value = cluster.read_sync(0, k);
    if (!value.has_value()) continue;
    for (ReplicaId r = 0; r < 40; ++r) {
      const auto entry = cluster.server(r).store().get(k);
      if (entry.has_value()) {
        EXPECT_LE(entry->timestamp.version, value->timestamp.version)
            << "key " << k << " replica " << r;
      }
    }
  }
}

}  // namespace
}  // namespace atrcp
