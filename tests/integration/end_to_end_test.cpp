// Whole-system integration: the same workload driven through every
// configuration of the paper (and classic baselines), over the simulator,
// checking one-copy behaviour and protocol-specific cost signatures.
#include <gtest/gtest.h>

#include <memory>

#include "core/config.hpp"
#include "core/quorums.hpp"
#include "protocols/hqc.hpp"
#include "protocols/majority.hpp"
#include "protocols/rowa.hpp"
#include "protocols/tree_quorum.hpp"
#include "txn/cluster.hpp"
#include "txn/workload.hpp"

namespace atrcp {
namespace {

ClusterOptions fast(std::size_t clients = 1) {
  ClusterOptions options;
  options.clients = clients;
  options.link = LinkParams{.base_latency = 10, .jitter = 2};
  return options;
}

using Factory = std::function<std::unique_ptr<ReplicaControlProtocol>()>;

struct SystemCase {
  std::string label;
  Factory make;
};

class EveryProtocolEndToEnd : public ::testing::TestWithParam<SystemCase> {};

TEST_P(EveryProtocolEndToEnd, WriteReadWriteRead) {
  Cluster cluster(GetParam().make(), fast());
  EXPECT_EQ(cluster.write_sync(0, 1, "alpha"), TxnOutcome::kCommitted);
  auto v1 = cluster.read_sync(0, 1);
  ASSERT_TRUE(v1.has_value());
  EXPECT_EQ(v1->value, "alpha");
  EXPECT_EQ(cluster.write_sync(0, 1, "beta"), TxnOutcome::kCommitted);
  auto v2 = cluster.read_sync(0, 1);
  ASSERT_TRUE(v2.has_value());
  EXPECT_EQ(v2->value, "beta");
  EXPECT_EQ(v2->timestamp.version, 2u);
}

TEST_P(EveryProtocolEndToEnd, MixedWorkloadAllCommits) {
  Cluster cluster(GetParam().make(), fast(2));
  WorkloadOptions options;
  options.transactions_per_client = 40;
  options.read_fraction = 0.6;
  options.num_keys = 10;
  const WorkloadStats stats = run_workload(cluster, options);
  EXPECT_EQ(stats.committed, 80u) << GetParam().label;
  EXPECT_EQ(stats.aborted, 0u) << GetParam().label;
}

TEST_P(EveryProtocolEndToEnd, ReadsAlwaysReturnLatestCommittedValue) {
  // Sequential consistency check across many write/read rounds with
  // different quorums drawn each time.
  Cluster cluster(GetParam().make(), fast());
  for (int round = 1; round <= 15; ++round) {
    const std::string value = "round" + std::to_string(round);
    ASSERT_EQ(cluster.write_sync(0, 3, value), TxnOutcome::kCommitted)
        << GetParam().label;
    const auto read = cluster.read_sync(0, 3);
    ASSERT_TRUE(read.has_value()) << GetParam().label;
    EXPECT_EQ(read->value, value) << GetParam().label;
    EXPECT_EQ(read->timestamp.version, static_cast<std::uint64_t>(round));
  }
}

std::vector<SystemCase> systems() {
  return {
      {"arbitrary_135",
       [] {
         return std::make_unique<ArbitraryProtocol>(
             ArbitraryTree::from_spec("1-3-5"));
       }},
      {"arbitrary_40", [] { return make_arbitrary(40); }},
      {"mostly_read", [] { return make_mostly_read(9); }},
      {"mostly_write", [] { return make_mostly_write(9); }},
      {"unmodified", [] { return make_unmodified(2); }},
      {"rowa", [] { return std::make_unique<Rowa>(7); }},
      {"majority", [] { return std::make_unique<MajorityQuorum>(7); }},
      {"tree_quorum", [] { return std::make_unique<TreeQuorum>(2); }},
      {"hqc", [] { return std::make_unique<Hqc>(2); }},
  };
}

INSTANTIATE_TEST_SUITE_P(
    Systems, EveryProtocolEndToEnd, ::testing::ValuesIn(systems()),
    [](const ::testing::TestParamInfo<SystemCase>& info) {
      return info.param.label;
    });

TEST(MessageCostSignatureTest, MostlyReadVsMostlyWrite) {
  // The paper's Figure 2 trade-off, observed as actual message counts:
  // read-only traffic is cheapest on MOSTLY-READ, write-only traffic is
  // cheapest on MOSTLY-WRITE.
  WorkloadOptions reads;
  reads.transactions_per_client = 100;
  reads.read_fraction = 1.0;
  WorkloadOptions writes;
  writes.transactions_per_client = 100;
  writes.read_fraction = 0.0;

  Cluster mr_reads(make_mostly_read(9), fast());
  Cluster mw_reads(make_mostly_write(9), fast());
  const auto mr_read_stats = run_workload(mr_reads, reads);
  const auto mw_read_stats = run_workload(mw_reads, reads);
  EXPECT_LT(mr_read_stats.messages_sent, mw_read_stats.messages_sent);

  Cluster mr_writes(make_mostly_read(9), fast());
  Cluster mw_writes(make_mostly_write(9), fast());
  const auto mr_write_stats = run_workload(mr_writes, writes);
  const auto mw_write_stats = run_workload(mw_writes, writes);
  EXPECT_GT(mr_write_stats.messages_sent, mw_write_stats.messages_sent);
}

TEST(ReconfigurationTest, TreeSwapPreservesData) {
  // The paper's headline flexibility claim: shifting configurations only
  // re-shapes the tree. Simulate a migration: drain one cluster, seed a new
  // configuration's replicas with a full state transfer (here: replay), and
  // verify reads continue returning the latest values.
  Cluster before(make_mostly_read(12), fast());
  for (Key k = 0; k < 6; ++k) {
    ASSERT_EQ(before.write_sync(0, k, "v" + std::to_string(k)),
              TxnOutcome::kCommitted);
  }
  // New shape for a write-heavier phase: balanced 3-level tree.
  Cluster after(
      std::make_unique<ArbitraryProtocol>(balanced_tree(12, 3)), fast());
  // State transfer: copy each key's latest committed value across.
  for (Key k = 0; k < 6; ++k) {
    const auto value = before.read_sync(0, k);
    ASSERT_TRUE(value.has_value());
    ASSERT_EQ(after.write_sync(0, k, value->value), TxnOutcome::kCommitted);
  }
  for (Key k = 0; k < 6; ++k) {
    const auto value = after.read_sync(0, k);
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(value->value, "v" + std::to_string(k));
  }
  // And the new shape serves write traffic more cheaply per op.
  const ArbitraryAnalysis before_analysis(mostly_read_tree(12));
  const ArbitraryAnalysis after_analysis(balanced_tree(12, 3));
  EXPECT_LT(after_analysis.write_cost_avg(), before_analysis.write_cost_avg());
}

}  // namespace
}  // namespace atrcp
