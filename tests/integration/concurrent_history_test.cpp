// Concurrent multi-client histories across every protocol, verified by the
// serializability checker — the replacement for the sequential-only
// reference-copy shortcut of one_copy_test: four interleaved clients race
// on a two-key hot set, and one-copy serializability is established from
// the recorded history itself (version order + dependency graph + per-key
// linearizability), not from a single-client reference execution.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "check/explorer.hpp"
#include "check/serializability.hpp"
#include "txn/cluster.hpp"

namespace atrcp {
namespace {

struct ConcurrentCase {
  std::string label;
  ScheduleExplorer::ProtocolFactory make;
  std::uint64_t seed;
};

class ConcurrentHistoryTest
    : public ::testing::TestWithParam<ConcurrentCase> {};

TEST_P(ConcurrentHistoryTest, InterleavedClientsAreOneCopySerializable) {
  ExplorerOptions options;
  options.clients = 4;
  options.txns_per_client = 10;
  options.keys = 2;
  ScheduleExplorer explorer(options);
  const SeedReport report =
      explorer.run_seed(GetParam().make, GetParam().seed);
  EXPECT_TRUE(report.ok) << GetParam().label << "\n" << report.detail;
  EXPECT_EQ(report.blocked, 0u) << GetParam().label;
  EXPECT_GT(report.committed, 4u)
      << GetParam().label << ": no meaningful concurrency exercised";
}

std::vector<ConcurrentCase> concurrent_cases() {
  std::vector<ConcurrentCase> cases;
  for (const ZooEntry& entry : protocol_zoo()) {
    for (const std::uint64_t seed : {13u, 23u}) {
      cases.push_back(
          {entry.label + "_s" + std::to_string(seed), entry.factory, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, ConcurrentHistoryTest, ::testing::ValuesIn(concurrent_cases()),
    [](const ::testing::TestParamInfo<ConcurrentCase>& info) {
      return info.param.label;
    });

// The hook end-to-end without the explorer: interleave clients by hand on a
// single cluster and feed the recorded history to the checker directly.
TEST(ConcurrentHistoryDirectTest, HandInterleavedClientsVerify) {
  ClusterOptions options;
  options.seed = 77;
  options.link = LinkParams{.base_latency = 10, .jitter = 3};
  options.clients = 4;
  options.record_history = true;
  Cluster cluster(protocol_zoo().front().factory(), options);

  // Every client runs a read-modify-write on the same key, launched at
  // staggered times so lock waits force real interleaving.
  std::size_t done = 0;
  for (std::size_t c = 0; c < 4; ++c) {
    cluster.scheduler().schedule_at(1 + 5 * c, [&cluster, &done, c] {
      cluster.client(c).run(
          {TxnOp::read(1), TxnOp::write(1, "c" + std::to_string(c))},
          [&done](TxnResult) { ++done; });
    });
  }
  cluster.settle();
  ASSERT_EQ(done, 4u);
  ASSERT_EQ(cluster.history().open_count(), 0u);
  ASSERT_EQ(cluster.history().txns().size(), 4u);

  SerializabilityChecker checker(cluster.history().txns());
  const CheckResult result = checker.check();
  EXPECT_TRUE(result.ok) << result.report;
  const LinResult lin = checker.check_key_linearizable(1);
  EXPECT_TRUE(lin.ok) << lin.report;
  // All four RMWs committed on a healthy cluster: versions must chain 1..4.
  std::uint64_t max_version = 0;
  for (const HistoryTxn& txn : cluster.history().txns()) {
    ASSERT_EQ(txn.outcome, HistoryOutcome::kCommitted);
    for (const HistoryOp& op : txn.ops) {
      if (op.is_write) max_version = std::max(max_version, op.written.version);
    }
  }
  EXPECT_EQ(max_version, 4u);
}

}  // namespace
}  // namespace atrcp
