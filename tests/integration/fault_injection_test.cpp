// Fault-injection integration: crashes, transient failures, lossy links and
// partitions thrown at the full stack, verifying the availability behaviour
// the paper's formulas promise and the safety the bicoterie guarantees.
#include <gtest/gtest.h>

#include "core/config.hpp"
#include "core/quorums.hpp"
#include "txn/cluster.hpp"
#include "txn/workload.hpp"

namespace atrcp {
namespace {

ClusterOptions fast(std::size_t clients = 1) {
  ClusterOptions options;
  options.clients = clients;
  options.link = LinkParams{.base_latency = 10, .jitter = 2};
  // Keep failure handling snappy so aborts resolve quickly in sim time.
  options.coordinator.request_timeout = 2000;
  options.coordinator.lock_timeout = 20000;
  return options;
}

std::unique_ptr<ArbitraryProtocol> paper_protocol() {
  return std::make_unique<ArbitraryProtocol>(ArbitraryTree::from_spec("1-3-5"));
}

TEST(FaultInjectionTest, TransientLevelOutageHealsItself) {
  Cluster cluster(paper_protocol(), fast());
  ASSERT_EQ(cluster.write_sync(0, 1, "before"), TxnOutcome::kCommitted);
  // Take down all of level 1 transiently, but issue the read after recovery.
  for (ReplicaId r = 0; r < 3; ++r) {
    cluster.injector().transient_failure(cluster.scheduler().now() + 10, r,
                                         5000);
  }
  cluster.scheduler().run_until(cluster.scheduler().now() + 20);
  EXPECT_FALSE(cluster.read_sync(0, 1).has_value());  // outage window
  cluster.scheduler().run_until(cluster.scheduler().now() + 10000);
  const auto value = cluster.read_sync(0, 1);  // healed
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->value, "before");
}

TEST(FaultInjectionTest, UnreportedCrashHandledByTimeoutAndRetry) {
  // Crash a replica WITHOUT telling the failure view (network down only):
  // the coordinator must suspect it after the silent round and re-assemble
  // around it. This exercises the timeout/suspicion path.
  Cluster cluster(paper_protocol(), fast());
  ASSERT_EQ(cluster.write_sync(0, 1, "v"), TxnOutcome::kCommitted);
  cluster.network().set_up(2, false);  // level-1 replica silently dead
  // Reads retry until they pick an alive level-1 member; with 3 attempts
  // and re-assembly around suspects this succeeds.
  int successes = 0;
  for (int i = 0; i < 10; ++i) {
    successes += cluster.read_sync(0, 1).has_value() ? 1 : 0;
  }
  EXPECT_GE(successes, 8);  // occasional abort allowed, mostly healed
}

TEST(FaultInjectionTest, MinorityPartitionCannotWrite) {
  // Partition replicas {0,1} (part of level 1) away from the client: no
  // physical level is fully reachable, so writes abort; reads abort too
  // only if a full level is unreachable... here level 1 loses 2 of 3, so
  // reads still succeed through replica 2 + any level-2 member.
  Cluster cluster(paper_protocol(), fast());
  ASSERT_EQ(cluster.write_sync(0, 1, "pre"), TxnOutcome::kCommitted);
  cluster.network().set_partition(0, 1);
  cluster.network().set_partition(1, 1);
  // The failure view doesn't know about the partition; rely on suspicion.
  const auto read = cluster.read_sync(0, 1);
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(read->value, "pre");
  // Writes need level 1 complete or level 2 complete; level 2 is complete,
  // so writes can still succeed (landing on level 2). A single attempt may
  // abort when the write-quorum draw picks the partitioned level 1 (the
  // prepare phase times out without re-assembly), so retry a few times —
  // exactly what a client of this protocol would do.
  TxnOutcome post = TxnOutcome::kAborted;
  for (int attempt = 0; attempt < 10 && post != TxnOutcome::kCommitted;
       ++attempt) {
    post = cluster.write_sync(0, 1, "post");
  }
  EXPECT_EQ(post, TxnOutcome::kCommitted);
  // Now also cut a level-2 member: no full level reachable -> abort after
  // suspicion-driven retries exhaust.
  cluster.network().set_partition(5, 1);
  EXPECT_EQ(cluster.write_sync(0, 1, "nope"), TxnOutcome::kAborted);
}

TEST(FaultInjectionTest, HealedPartitionRestoresService) {
  Cluster cluster(paper_protocol(), fast());
  cluster.network().set_partition(0, 1);
  cluster.network().set_partition(1, 1);
  cluster.network().set_partition(5, 1);
  EXPECT_EQ(cluster.write_sync(0, 2, "blocked"), TxnOutcome::kAborted);
  cluster.network().heal_partitions();
  EXPECT_EQ(cluster.write_sync(0, 2, "flows"), TxnOutcome::kCommitted);
  const auto value = cluster.read_sync(0, 2);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->value, "flows");
}

TEST(FaultInjectionTest, StaleReplicaNeverWinsTheRead) {
  // Write twice so one level holds v1 and the other v2; every read must
  // return v2 (the max-timestamp rule), no matter which members answer.
  ClusterOptions options = fast();
  Cluster cluster(paper_protocol(), options);
  // Force first write onto level 1 by breaking level 2 temporarily.
  cluster.injector().crash_now(7);
  ASSERT_EQ(cluster.write_sync(0, 1, "v1"), TxnOutcome::kCommitted);
  cluster.injector().recover_now(7);
  // Force second write onto level 2 by breaking level 1 temporarily...
  cluster.injector().crash_now(0);
  // ...but reads need level 1 too; recover right after the write.
  ASSERT_EQ(cluster.write_sync(0, 1, "v2"), TxnOutcome::kCommitted);
  cluster.injector().recover_now(0);
  // Level-1 replicas hold v1, level-2 replicas hold v2.
  for (int i = 0; i < 20; ++i) {
    const auto value = cluster.read_sync(0, 1);
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(value->value, "v2");
    EXPECT_EQ(value->timestamp.version, 2u);
  }
}

TEST(FaultInjectionTest, WorkloadUnderRandomChurnStaysConsistent) {
  // Random crash/recovery churn while a workload runs: transactions may
  // abort (unavailability) but committed reads must never observe a torn
  // or stale value relative to commits on the same key. We verify commit
  // counts and spot-check final read-your-writes.
  ClusterOptions options = fast(2);
  Cluster cluster(make_arbitrary(40), options);
  cluster.injector().start_random_failures(/*mean_uptime=*/300'000,
                                           /*mean_downtime=*/30'000,
                                           /*horizon=*/2'000'000);
  WorkloadOptions workload;
  workload.transactions_per_client = 150;
  workload.read_fraction = 0.5;
  workload.num_keys = 12;
  const WorkloadStats stats = run_workload(cluster, workload);
  EXPECT_EQ(stats.committed + stats.aborted + stats.blocked, 300u);
  // ~90% stationary availability over 40 replicas: most txns commit.
  EXPECT_GT(stats.commit_rate(), 0.5);
  // After the horizon, recover everyone and confirm the store agrees on
  // a fresh write.
  for (ReplicaId r = 0; r < 40; ++r) cluster.injector().recover_now(r);
  ASSERT_EQ(cluster.write_sync(0, 1, "final"), TxnOutcome::kCommitted);
  const auto value = cluster.read_sync(0, 1);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->value, "final");
}

TEST(FaultInjectionTest, LossyLinksDegradeButDontCorrupt) {
  ClusterOptions options = fast();
  options.link.drop_probability = 0.05;
  Cluster cluster(paper_protocol(), options);
  int committed_writes = 0;
  for (int i = 0; i < 30; ++i) {
    if (cluster.write_sync(0, 1, "w" + std::to_string(i)) ==
        TxnOutcome::kCommitted) {
      ++committed_writes;
    }
  }
  EXPECT_GT(committed_writes, 10);
  const auto value = cluster.read_sync(0, 1);
  if (value.has_value()) {
    // Whatever we read must be one of the committed writes' payloads.
    EXPECT_EQ(value->value.rfind("w", 0), 0u);
  }
}

}  // namespace
}  // namespace atrcp
