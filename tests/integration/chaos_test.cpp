// Cross-protocol chaos: the one-copy-equivalence reference check (write,
// crash, recover, read — compare against an in-memory reference copy) run
// against EVERY protocol in the library under seeded random crash/recovery
// interleavings. This is the widest consistency net in the suite: any
// protocol whose quorum intersection, version chaining or 2PC handling is
// subtly wrong fails here.
#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "core/config.hpp"
#include "core/quorums.hpp"
#include "protocols/hqc.hpp"
#include "protocols/majority.hpp"
#include "protocols/rowa.hpp"
#include "protocols/tree_quorum.hpp"
#include "protocols/weighted_voting.hpp"
#include "txn/cluster.hpp"

namespace atrcp {
namespace {

using Factory = std::function<std::unique_ptr<ReplicaControlProtocol>()>;

struct ChaosCase {
  std::string label;
  Factory make;
  std::uint64_t seed;
};

class ChaosTest : public ::testing::TestWithParam<ChaosCase> {};

TEST_P(ChaosTest, HistoryMatchesReferenceCopy) {
  Rng rng(GetParam().seed);
  ClusterOptions options;
  options.link = LinkParams{.base_latency = 10, .jitter = 2};
  options.coordinator.request_timeout = 2'000;
  // Option randomization lives on a seed DERIVED from the case seed, never
  // on the chaos rng itself: drawing it from `rng` would shift every draw
  // of the history loop below, so adding an option would silently rewrite
  // all existing seeded schedules.
  Rng option_rng(SplitMix64(GetParam().seed ^ 0x9E3779B97F4A7C15ULL).next());
  options.coordinator.read_repair = option_rng.chance(0.5);
  Cluster cluster(GetParam().make(), options);
  const std::size_t n = cluster.replica_count();

  std::map<Key, std::string> reference;
  int committed = 0;
  for (int step = 0; step < 80; ++step) {
    if (rng.chance(0.15)) {
      const auto r = static_cast<ReplicaId>(rng.below(n));
      if (cluster.injector().failures().is_failed(r)) {
        cluster.injector().recover_now(r);
      } else {
        cluster.injector().crash_now(r);
      }
    }
    const Key key = static_cast<Key>(rng.below(3));
    if (rng.chance(0.5)) {
      const std::string value = "s" + std::to_string(step);
      if (cluster.write_sync(0, key, value) == TxnOutcome::kCommitted) {
        reference[key] = value;
        ++committed;
      }
    } else {
      const auto got = cluster.read_sync(0, key);
      // read_sync returns nullopt both for aborts and for missing keys;
      // distinguish via the reference: if the reference HAS a value and we
      // read one, it must match; a nullopt read is only acceptable when
      // the operation could have aborted (failures present) or the key was
      // never written.
      if (got.has_value()) {
        ++committed;
        const auto expected = reference.find(key);
        ASSERT_NE(expected, reference.end())
            << GetParam().label << " step " << step
            << ": read a value for a never-written key";
        EXPECT_EQ(got->value, expected->second)
            << GetParam().label << " step " << step;
      } else if (reference.contains(key)) {
        EXPECT_GT(cluster.injector().failures().failed_count() +
                      cluster.client(0).aborted(),
                  0u)
            << GetParam().label << " step " << step
            << ": lost a committed write on a healthy cluster";
      }
    }
  }
  EXPECT_GT(committed, 10) << GetParam().label;  // meaningful progress
}

std::vector<ChaosCase> chaos_cases() {
  std::vector<std::pair<std::string, Factory>> protocols = {
      {"arbitrary_135",
       [] {
         return std::make_unique<ArbitraryProtocol>(
             ArbitraryTree::from_spec("1-3-5"));
       }},
      {"arbitrary_40", [] { return make_arbitrary(40); }},
      {"mostly_read", [] { return make_mostly_read(9); }},
      {"mostly_write", [] { return make_mostly_write(9); }},
      {"unmodified", [] { return make_unmodified(2); }},
      {"rowa", [] { return std::make_unique<Rowa>(7); }},
      {"majority", [] { return std::make_unique<MajorityQuorum>(7); }},
      {"binary", [] { return std::make_unique<TreeQuorum>(2); }},
      {"hqc", [] { return std::make_unique<Hqc>(2); }},
      {"weighted",
       [] { return std::make_unique<WeightedVoting>(
                WeightedVoting::majority(7)); }},
  };
  std::vector<ChaosCase> cases;
  for (const auto& [label, factory] : protocols) {
    for (std::uint64_t seed : {404u, 808u}) {
      cases.push_back(
          {label + "_s" + std::to_string(seed), factory, seed});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, ChaosTest, ::testing::ValuesIn(chaos_cases()),
    [](const ::testing::TestParamInfo<ChaosCase>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace atrcp
