// One-copy equivalence: a randomized linearizability-style check. We run a
// history of committed operations against the replicated system and against
// a single in-memory reference copy, interleaving crashes and recoveries.
// Because each client issues sequentially and writes are serialized by the
// centralized lock manager plus version chaining, every committed read must
// return exactly the reference's current value at its linearization point.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <string>

#include "core/config.hpp"
#include "core/quorums.hpp"
#include "txn/cluster.hpp"

namespace atrcp {
namespace {

ClusterOptions fast() {
  ClusterOptions options;
  options.link = LinkParams{.base_latency = 10, .jitter = 2};
  options.coordinator.request_timeout = 2000;
  return options;
}

class OneCopyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OneCopyTest, SequentialHistoryMatchesReferenceCopy) {
  Rng rng(GetParam());
  Cluster cluster(std::make_unique<ArbitraryProtocol>(
                      ArbitraryTree::from_spec("1-3-5")),
                  fast());
  std::map<Key, std::string> reference;
  int committed_ops = 0;

  for (int step = 0; step < 120; ++step) {
    // Occasionally flip a replica's liveness (detectable failures).
    if (rng.chance(0.15)) {
      const auto r = static_cast<ReplicaId>(rng.below(8));
      if (cluster.injector().failures().is_failed(r)) {
        cluster.injector().recover_now(r);
      } else {
        cluster.injector().crash_now(r);
      }
    }
    const Key key = static_cast<Key>(rng.below(4));
    if (rng.chance(0.5)) {
      const std::string value = "s" + std::to_string(step);
      if (cluster.write_sync(0, key, value) == TxnOutcome::kCommitted) {
        reference[key] = value;
        ++committed_ops;
      }
    } else {
      bool finished = false;
      std::optional<VersionedValue> got;
      TxnOutcome outcome = TxnOutcome::kAborted;
      cluster.client(0).run({TxnOp::read(key)}, [&](TxnResult result) {
        outcome = result.outcome;
        if (!result.reads.empty()) got = result.reads[0];
        finished = true;
      });
      while (!finished && cluster.scheduler().step()) {
      }
      ASSERT_TRUE(finished);
      if (outcome == TxnOutcome::kCommitted) {
        ++committed_ops;
        const auto expected = reference.find(key);
        if (expected == reference.end()) {
          EXPECT_FALSE(got.has_value())
              << "step " << step << ": read of never-written key " << key
              << " returned " << (got ? got->value : "");
        } else {
          ASSERT_TRUE(got.has_value())
              << "step " << step << ": lost write of key " << key;
          EXPECT_EQ(got->value, expected->second) << "step " << step;
        }
      }
    }
  }
  // The run must have made real progress to be meaningful. (The crash walk
  // has no repair bias, so under unlucky seeds half the replicas can sit
  // failed for long stretches — hence the modest bar.)
  EXPECT_GT(committed_ops, 25);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OneCopyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

TEST(OneCopyAcrossConfigsTest, SameHistorySameAnswers) {
  // Replay one deterministic history on three different tree shapes; the
  // observable values must be identical (the protocol configuration may
  // change costs, never semantics).
  auto run_history = [](std::unique_ptr<ReplicaControlProtocol> protocol) {
    Cluster cluster(std::move(protocol), fast());
    std::vector<std::string> observations;
    for (int step = 0; step < 30; ++step) {
      const Key key = static_cast<Key>(step % 3);
      if (step % 2 == 0) {
        EXPECT_EQ(cluster.write_sync(0, key, "w" + std::to_string(step)),
                  TxnOutcome::kCommitted);
      } else {
        const auto value = cluster.read_sync(0, key);
        observations.push_back(value ? value->value : "<none>");
      }
    }
    return observations;
  };
  const auto a = run_history(make_mostly_read(9));
  const auto b = run_history(make_mostly_write(9));
  const auto c = run_history(std::make_unique<ArbitraryProtocol>(
      ArbitraryTree::from_spec("1-4-5")));
  EXPECT_EQ(a, b);
  EXPECT_EQ(b, c);
}

}  // namespace
}  // namespace atrcp
