// End-to-end: coordinators driven by the heartbeat detector's suspicion
// view instead of the failure oracle — the full realistic stack.
#include <gtest/gtest.h>

#include "core/quorums.hpp"
#include "txn/cluster.hpp"
#include "txn/workload.hpp"

namespace atrcp {
namespace {

ClusterOptions detector_options() {
  ClusterOptions options;
  options.link = LinkParams{.base_latency = 10, .jitter = 0};
  options.use_heartbeat_detector = true;
  options.detector.interval = 1'000;
  options.detector.suspect_after = 3;
  options.coordinator.request_timeout = 2'000;
  return options;
}

TEST(DetectorClusterTest, HealthyOperationsWork) {
  Cluster cluster(std::make_unique<ArbitraryProtocol>(
                      ArbitraryTree::from_spec("1-3-5")),
                  detector_options());
  EXPECT_EQ(cluster.write_sync(0, 1, "v"), TxnOutcome::kCommitted);
  const auto value = cluster.read_sync(0, 1);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->value, "v");
  ASSERT_NE(cluster.detector(), nullptr);
  EXPECT_EQ(cluster.detector()->suspicions(), 0u);
}

TEST(DetectorClusterTest, SilentCrashIsDetectedAndRoutedAround) {
  Cluster cluster(std::make_unique<ArbitraryProtocol>(
                      ArbitraryTree::from_spec("1-3-5")),
                  detector_options());
  ASSERT_EQ(cluster.write_sync(0, 1, "v"), TxnOutcome::kCommitted);
  // Silent crash: only the network knows; the detector must discover it.
  cluster.network().set_up(2, false);
  cluster.scheduler().run_until(cluster.scheduler().now() + 10'000);
  EXPECT_TRUE(cluster.detector()->view().is_failed(2));
  // Reads now avoid replica 2 on the first try.
  for (int i = 0; i < 10; ++i) {
    const auto value = cluster.read_sync(0, 1);
    ASSERT_TRUE(value.has_value());
  }
}

TEST(DetectorClusterTest, RecoveryIsNoticedAndReused) {
  Cluster cluster(std::make_unique<ArbitraryProtocol>(
                      ArbitraryTree::from_spec("1-2-6")),
                  detector_options());
  // Level 1 = replicas {0,1}. Kill 0: writes must use level 2 or fail...
  cluster.network().set_up(0, false);
  cluster.scheduler().run_until(20'000);
  ASSERT_TRUE(cluster.detector()->view().is_failed(0));
  cluster.network().set_up(0, true);
  cluster.scheduler().run_until(40'000);
  ASSERT_TRUE(cluster.detector()->view().is_alive(0));
  EXPECT_EQ(cluster.write_sync(0, 1, "back"), TxnOutcome::kCommitted);
}

TEST(DetectorClusterTest, WorkloadRunsUnderDetector) {
  ClusterOptions options = detector_options();
  options.clients = 2;
  Cluster cluster(std::make_unique<ArbitraryProtocol>(
                      ArbitraryTree::from_spec("1-4-5")),
                  options);
  WorkloadOptions workload;
  workload.transactions_per_client = 50;
  workload.read_fraction = 0.6;
  const WorkloadStats stats = run_workload(cluster, workload);
  EXPECT_EQ(stats.committed, 100u);
  EXPECT_EQ(stats.aborted, 0u);
}

}  // namespace
}  // namespace atrcp
