#include "core/tree.hpp"

#include <gtest/gtest.h>

namespace atrcp {
namespace {

TEST(ArbitraryTreeTest, RejectsMalformedLevels) {
  EXPECT_THROW(ArbitraryTree({}), std::invalid_argument);
  // Root level must have exactly one node.
  EXPECT_THROW(ArbitraryTree({{{1, true}, {0, true}}}), std::invalid_argument);
  // Child counts must match the next level's size.
  EXPECT_THROW(ArbitraryTree({{{3, true}}, {{0, true}, {0, true}}}),
               std::invalid_argument);
  // Leaves must have zero children.
  EXPECT_THROW(ArbitraryTree({{{1, true}}, {{2, true}}}),
               std::invalid_argument);
  // At least one physical node.
  EXPECT_THROW(ArbitraryTree({{{0, false}}}), std::invalid_argument);
}

TEST(ArbitraryTreeTest, SinglephysicalRoot) {
  const ArbitraryTree tree({{{0, true}}});
  EXPECT_EQ(tree.height(), 0u);
  EXPECT_EQ(tree.replica_count(), 1u);
  EXPECT_EQ(tree.physical_levels(), std::vector<std::uint32_t>{0});
  EXPECT_TRUE(tree.satisfies_assumption_3_1());
}

TEST(ArbitraryTreeTest, FromSpec135MatchesPaperExample) {
  // §3.4: "1-3-5", height 2, one logical level (0), physical levels 1 and 2.
  const ArbitraryTree tree = ArbitraryTree::from_spec("1-3-5");
  EXPECT_EQ(tree.height(), 2u);
  EXPECT_EQ(tree.replica_count(), 8u);
  EXPECT_EQ(tree.m(0), 1u);
  EXPECT_EQ(tree.m_phy(0), 0u);
  EXPECT_EQ(tree.m_log(0), 1u);
  EXPECT_EQ(tree.m(1), 3u);
  EXPECT_EQ(tree.m_phy(1), 3u);
  EXPECT_EQ(tree.m(2), 5u);
  EXPECT_EQ(tree.m_phy(2), 5u);
  EXPECT_EQ(tree.physical_levels(), (std::vector<std::uint32_t>{1, 2}));
  EXPECT_EQ(tree.logical_levels(), (std::vector<std::uint32_t>{0}));
  EXPECT_EQ(tree.min_physical_level_size(), 3u);
  EXPECT_EQ(tree.max_physical_level_size(), 5u);
  EXPECT_TRUE(tree.satisfies_assumption_3_1());
  EXPECT_EQ(tree.to_spec_string(), "1-3-5");
}

TEST(ArbitraryTreeTest, FromSpecRejectsGarbage) {
  EXPECT_THROW(ArbitraryTree::from_spec(""), std::invalid_argument);
  EXPECT_THROW(ArbitraryTree::from_spec("7"), std::invalid_argument);
  EXPECT_THROW(ArbitraryTree::from_spec("2-3"), std::invalid_argument);
  EXPECT_THROW(ArbitraryTree::from_spec("1--3"), std::invalid_argument);
  EXPECT_THROW(ArbitraryTree::from_spec("1-a"), std::invalid_argument);
  EXPECT_THROW(ArbitraryTree::from_spec("1-0"), std::invalid_argument);
}

TEST(ArbitraryTreeTest, ReplicaIdsAssignedTopToBottomLeftToRight) {
  const ArbitraryTree tree = ArbitraryTree::from_spec("1-3-5");
  EXPECT_EQ(tree.replicas_at_level(1), (std::vector<ReplicaId>{0, 1, 2}));
  EXPECT_EQ(tree.replicas_at_level(2), (std::vector<ReplicaId>{3, 4, 5, 6, 7}));
}

TEST(ArbitraryTreeTest, CompleteBinary) {
  const ArbitraryTree tree = ArbitraryTree::complete(2, 3);
  EXPECT_EQ(tree.replica_count(), 15u);
  EXPECT_EQ(tree.height(), 3u);
  EXPECT_EQ(tree.physical_level_sizes(),
            (std::vector<std::size_t>{1, 2, 4, 8}));
  EXPECT_TRUE(tree.satisfies_assumption_3_1());
  // Every interior node has exactly two children.
  for (std::uint32_t k = 0; k < 3; ++k) {
    for (std::uint32_t i = 0; i < tree.m(k); ++i) {
      EXPECT_EQ(tree.node(k, i).child_count, 2u);
    }
  }
}

TEST(ArbitraryTreeTest, CompleteTernary) {
  const ArbitraryTree tree = ArbitraryTree::complete(3, 2);
  EXPECT_EQ(tree.replica_count(), 13u);
  EXPECT_EQ(tree.physical_level_sizes(), (std::vector<std::size_t>{1, 3, 9}));
}

TEST(ArbitraryTreeTest, ParentChildLinksConsistent) {
  const ArbitraryTree tree = ArbitraryTree::from_spec("1-3-5");
  // Children of the root are all of level 1.
  const TreeNode& root = tree.node(0, 0);
  EXPECT_EQ(root.child_count, 3u);
  for (std::uint32_t c = 0; c < 3; ++c) {
    EXPECT_EQ(tree.node(1, root.first_child + c).parent, 0u);
  }
  // Level-2 nodes' parents exist and own them.
  for (std::uint32_t i = 0; i < 5; ++i) {
    const TreeNode& child = tree.node(2, i);
    const TreeNode& parent = tree.node(1, child.parent);
    EXPECT_GE(i, parent.first_child);
    EXPECT_LT(i, parent.first_child + parent.child_count);
  }
}

TEST(ArbitraryTreeTest, MixedLevelWithLogicalNodes) {
  // Figure 1's exact shape: level 2 has 9 nodes, 5 physical + 4 logical.
  const ArbitraryTree tree = ArbitraryTree::from_level_counts(
      {{1, 0}, {3, 3}, {9, 5}});
  EXPECT_EQ(tree.m(2), 9u);
  EXPECT_EQ(tree.m_phy(2), 5u);
  EXPECT_EQ(tree.m_log(2), 4u);
  EXPECT_EQ(tree.replica_count(), 8u);
  EXPECT_EQ(tree.to_spec_string(), "1-3-9(5)");
  EXPECT_TRUE(tree.satisfies_assumption_3_1());
}

TEST(ArbitraryTreeTest, Assumption31Violations) {
  // Decreasing physical sizes: 5 then 3.
  const ArbitraryTree decreasing =
      ArbitraryTree::from_level_counts({{1, 0}, {5, 5}, {5, 3}});
  EXPECT_FALSE(decreasing.satisfies_assumption_3_1());
  // Physical root with equal next level: m_phy0 = 1 !< 1.
  const ArbitraryTree flat =
      ArbitraryTree::from_level_counts({{1, 1}, {1, 1}});
  EXPECT_FALSE(flat.satisfies_assumption_3_1());
  // Logical level sandwiched between physical ones.
  const ArbitraryTree sandwich =
      ArbitraryTree::from_level_counts({{1, 0}, {2, 2}, {4, 0}, {4, 4}});
  EXPECT_FALSE(sandwich.satisfies_assumption_3_1());
}

TEST(ArbitraryTreeTest, LevelCountValidation) {
  EXPECT_THROW(ArbitraryTree::from_level_counts({}), std::invalid_argument);
  EXPECT_THROW(ArbitraryTree::from_level_counts({{0, 0}}),
               std::invalid_argument);
  EXPECT_THROW(ArbitraryTree::from_level_counts({{1, 2}}),
               std::invalid_argument);
}

TEST(ArbitraryTreeTest, NodeAccessorBounds) {
  const ArbitraryTree tree = ArbitraryTree::from_spec("1-2-2");
  EXPECT_THROW(tree.node(3, 0), std::out_of_range);
  EXPECT_THROW(tree.node(1, 2), std::out_of_range);
  EXPECT_THROW(tree.m(9), std::out_of_range);
  EXPECT_THROW(tree.replicas_at_level(9), std::out_of_range);
}

TEST(ArbitraryTreeTest, NodeCount) {
  EXPECT_EQ(ArbitraryTree::from_spec("1-3-5").node_count(), 9u);
  EXPECT_EQ(ArbitraryTree::complete(2, 2).node_count(), 7u);
}

}  // namespace
}  // namespace atrcp
