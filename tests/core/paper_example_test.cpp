// The complete worked example of §3.4 / Table 1 / Figure 1, verified
// end-to-end against our implementation — every number the paper prints.
#include <gtest/gtest.h>

#include <cmath>

#include "core/analysis.hpp"
#include "core/quorums.hpp"
#include "core/tree.hpp"

namespace atrcp {
namespace {

class PaperExampleTest : public ::testing::Test {
 protected:
  // Figure 1's tree: logical root, 3 physical nodes at level 1, and a
  // 9-node level 2 with 5 physical + 4 logical nodes.
  PaperExampleTest()
      : tree_(ArbitraryTree::from_level_counts({{1, 0}, {3, 3}, {9, 5}})),
        analysis_(tree_) {}

  ArbitraryTree tree_;
  ArbitraryAnalysis analysis_;
};

TEST_F(PaperExampleTest, Table1Accounting) {
  // Table 1 rows: (m_k, m_phy_k, m_log_k) per level.
  EXPECT_EQ(tree_.m(0), 1u);
  EXPECT_EQ(tree_.m_phy(0), 0u);
  EXPECT_EQ(tree_.m_log(0), 1u);

  EXPECT_EQ(tree_.m(1), 3u);
  EXPECT_EQ(tree_.m_phy(1), 3u);
  EXPECT_EQ(tree_.m_log(1), 0u);

  EXPECT_EQ(tree_.m(2), 9u);
  EXPECT_EQ(tree_.m_phy(2), 5u);
  EXPECT_EQ(tree_.m_log(2), 4u);
}

TEST_F(PaperExampleTest, StructureBullets) {
  // n = 3 + 5 = 8, obeying Assumption 3.1.
  EXPECT_EQ(tree_.replica_count(), 8u);
  EXPECT_TRUE(tree_.satisfies_assumption_3_1());
  // K_phy = {1,2}, |K_phy| = 2; K_log = {0}, |K_log| = 1.
  EXPECT_EQ(tree_.physical_levels(), (std::vector<std::uint32_t>{1, 2}));
  EXPECT_EQ(tree_.logical_levels(), (std::vector<std::uint32_t>{0}));
  // |K_log| + |K_phy| = 1 + h.
  EXPECT_EQ(tree_.logical_levels().size() + tree_.physical_levels().size(),
            1u + tree_.height());
  // m(R) = 15 and m(W) = 2.
  EXPECT_DOUBLE_EQ(analysis_.read_quorum_count(), 15.0);
  EXPECT_EQ(analysis_.write_quorum_count(), 2u);
}

TEST_F(PaperExampleTest, ReadOperationBullet) {
  // RD_cost = 2, RD_availability(0.7) = 0.97, L_RD = 1/3.
  EXPECT_DOUBLE_EQ(analysis_.read_cost(), 2.0);
  EXPECT_NEAR(analysis_.read_availability(0.7), 0.97, 0.005);
  EXPECT_NEAR(analysis_.read_load(), 1.0 / 3.0, 1e-12);
}

TEST_F(PaperExampleTest, WriteOperationBullet) {
  // WR_cost = 4, WR_availability(0.7) = 0.45, L_WR = 1/2.
  EXPECT_DOUBLE_EQ(analysis_.write_cost_avg(), 4.0);
  EXPECT_NEAR(analysis_.write_availability(0.7), 0.45, 0.01);
  EXPECT_NEAR(analysis_.write_load(), 0.5, 1e-12);
}

TEST_F(PaperExampleTest, ExpectedLoadBullet) {
  // E L_RD = 0.35 and E L_WR = 0.775.
  EXPECT_NEAR(analysis_.expected_read_load(0.7), 0.35, 0.005);
  EXPECT_NEAR(analysis_.expected_write_load(0.7), 0.775, 0.005);
}

TEST_F(PaperExampleTest, SpecStringNotation) {
  // "In the rest of this paper, we represent such an arbitrary tree in the
  // following manner: 1-3-5" — our compact builder produces the same
  // protocol behaviour (identical physical level sizes).
  const ArbitraryTree compact = ArbitraryTree::from_spec("1-3-5");
  EXPECT_EQ(compact.physical_level_sizes(), tree_.physical_level_sizes());
}

TEST_F(PaperExampleTest, Section33LimitClaims) {
  // §3.3: as n -> inf under Algorithm 1, WR_av -> 1-(1-p^4)^7 and
  // RD_av -> (1-(1-p)^4)^7; for p > 0.8 both are ~1. Check the limit
  // expressions at p = 0.85.
  const double p = 0.85;
  const double wr_limit = 1.0 - std::pow(1.0 - std::pow(p, 4), 7);
  const double rd_limit = std::pow(1.0 - std::pow(1.0 - p, 4), 7);
  EXPECT_GT(wr_limit, 0.95);
  EXPECT_GT(rd_limit, 0.99);
}

}  // namespace
}  // namespace atrcp
