// Statistical and availability properties of live quorum assembly under
// partial failures (Definition 2.4's random strategy executed against a
// failure set): the read pick is uniform over the ALIVE replicas of each
// physical level, the write pick uniform over the surviving full levels,
// and assembly returns nullopt exactly when the paper says the operation
// is unavailable (a physical level fully dead for reads; no full level
// alive for writes). All draws use fixed seeds, so the counts — and hence
// the tolerance checks — are deterministic.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "core/quorums.hpp"
#include "core/tree.hpp"

namespace atrcp {
namespace {

ArbitraryProtocol paper_tree() {
  return ArbitraryProtocol(ArbitraryTree::from_spec("1-3-5"));
}

// Frequency check in the spirit of a chi-squared test: with `trials` draws
// over `options` equally likely outcomes, each observed count lies within
// 5 standard deviations of trials/options (for a binomial count the sd is
// sqrt(trials * q * (1-q)), q = 1/options). Deterministic under the fixed
// seed; 5 sd leaves enormous headroom against an unlucky seed while any
// systematic bias (a skipped replica, an off-by-one in the alive-indexing)
// lands tens of sds out.
void expect_uniform(const std::map<ReplicaId, int>& counts, int trials,
                    std::size_t options) {
  const double q = 1.0 / static_cast<double>(options);
  const double expected = trials * q;
  const double sd = std::sqrt(trials * q * (1.0 - q));
  for (const auto& [id, count] : counts) {
    EXPECT_NEAR(count, expected, 5.0 * sd) << "replica " << id;
  }
}

TEST(AssemblyTest, ReadPickUniformOverAliveReplicasPerLevel) {
  const auto protocol = paper_tree();
  // Kill one replica in each physical level: level 1 keeps {0, 2}, level 2
  // keeps {3, 5, 6, 7}.
  FailureSet failures(8);
  failures.fail(1);
  failures.fail(4);
  Rng rng(11);
  const int trials = 6000;
  std::map<ReplicaId, int> level1;
  std::map<ReplicaId, int> level2;
  for (int i = 0; i < trials; ++i) {
    const auto q = protocol.assemble_read_quorum(failures, rng);
    ASSERT_TRUE(q.has_value());
    ASSERT_EQ(q->size(), 2u);
    ++level1[q->members()[0]];
    ++level2[q->members()[1]];
  }
  ASSERT_EQ(level1.size(), 2u);  // exactly the alive level-1 replicas
  EXPECT_EQ(level1.count(1), 0u);
  ASSERT_EQ(level2.size(), 4u);
  EXPECT_EQ(level2.count(4), 0u);
  expect_uniform(level1, trials, 2);
  expect_uniform(level2, trials, 4);
}

TEST(AssemblyTest, WritePickUniformOverSurvivingFullLevels) {
  const auto protocol = paper_tree();
  const FailureSet none(8);
  Rng rng(12);
  const int trials = 6000;
  std::map<ReplicaId, int> first_member;  // 0 => level 1, 3 => level 2
  for (int i = 0; i < trials; ++i) {
    const auto q = protocol.assemble_write_quorum(none, rng);
    ASSERT_TRUE(q.has_value());
    ++first_member[q->members().front()];
  }
  ASSERT_EQ(first_member.size(), 2u);
  expect_uniform(first_member, trials, 2);
}

TEST(AssemblyTest, ReadNulloptIffSomePhysicalLevelFullyDead) {
  const auto protocol = paper_tree();
  Rng rng(13);
  // All of level 1 dead: unavailable no matter how healthy level 2 is.
  FailureSet level1_dead(8);
  for (ReplicaId id : {0, 1, 2}) level1_dead.fail(id);
  EXPECT_FALSE(protocol.assemble_read_quorum(level1_dead, rng).has_value());
  // One survivor per level: still available, and the quorum is forced.
  FailureSet barely(8);
  for (ReplicaId id : {0, 1, 3, 4, 5, 6}) barely.fail(id);
  for (int i = 0; i < 10; ++i) {
    const auto q = protocol.assemble_read_quorum(barely, rng);
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(*q, Quorum({2, 7}));
  }
}

TEST(AssemblyTest, WriteNulloptIffNoFullLevelSurvives) {
  const auto protocol = paper_tree();
  Rng rng(14);
  // One hole in each level: no full level left, write unavailable — while
  // a read quorum still exists from the same failure set.
  FailureSet holes(8);
  holes.fail(0);
  holes.fail(7);
  EXPECT_FALSE(protocol.assemble_write_quorum(holes, rng).has_value());
  EXPECT_TRUE(protocol.assemble_read_quorum(holes, rng).has_value());
  // Level 2 entirely dead but level 1 intact: writes go through level 1.
  FailureSet level2_dead(8);
  for (ReplicaId id : {3, 4, 5, 6, 7}) level2_dead.fail(id);
  for (int i = 0; i < 10; ++i) {
    const auto q = protocol.assemble_write_quorum(level2_dead, rng);
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(*q, Quorum({0, 1, 2}));
  }
}

}  // namespace
}  // namespace atrcp
