#include "core/config.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace atrcp {
namespace {

TEST(MostlyReadTest, SingleLevelLikeRowa) {
  const ArbitraryTree tree = mostly_read_tree(10);
  EXPECT_EQ(tree.replica_count(), 10u);
  EXPECT_EQ(tree.physical_level_sizes(), std::vector<std::size_t>{10});
  const ArbitraryAnalysis a(tree);
  EXPECT_DOUBLE_EQ(a.read_cost(), 1.0);
  EXPECT_DOUBLE_EQ(a.write_cost_avg(), 10.0);
  EXPECT_DOUBLE_EQ(a.read_load(), 0.1);
  EXPECT_DOUBLE_EQ(a.write_load(), 1.0);
  EXPECT_THROW(mostly_read_tree(0), std::invalid_argument);
}

TEST(MostlyWriteTest, TwoPerLevel) {
  const ArbitraryTree tree = mostly_write_tree(9);
  EXPECT_EQ(tree.replica_count(), 9u);
  EXPECT_EQ(tree.physical_level_sizes(),
            (std::vector<std::size_t>{2, 2, 2, 3}));
  EXPECT_TRUE(tree.satisfies_assumption_3_1());
  const ArbitraryAnalysis a(tree);
  EXPECT_DOUBLE_EQ(a.read_cost(), 4.0);             // (n-1)/2 levels
  EXPECT_DOUBLE_EQ(a.read_load(), 0.5);             // d = 2
  EXPECT_NEAR(a.write_load(), 2.0 / (9 - 1), 1e-12);  // 1/|K_phy| = 2/(n-1)
  EXPECT_NEAR(a.write_cost_avg(), 9.0 / 4.0, 1e-12);  // about 2
}

TEST(MostlyWriteTest, RequiresOddN) {
  EXPECT_THROW(mostly_write_tree(8), std::invalid_argument);
  EXPECT_THROW(mostly_write_tree(1), std::invalid_argument);
  EXPECT_NO_THROW(mostly_write_tree(3));
}

TEST(UnmodifiedTest, BinaryTreeAllPhysical) {
  const ArbitraryTree tree = unmodified_tree(3);
  EXPECT_EQ(tree.replica_count(), 15u);
  const ArbitraryAnalysis a(tree);
  // §3.3: write load 1/log2(n+1), read load 1, read cost log2(n+1).
  EXPECT_NEAR(a.write_load(), 1.0 / 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(a.read_load(), 1.0);
  EXPECT_DOUBLE_EQ(a.read_cost(), 4.0);
  EXPECT_NEAR(a.write_cost_avg(), 15.0 / 4.0, 1e-12);  // n/log2(n+1)
  // Writes highly available (>= p via the root singleton level), reads
  // poorly available (<= p, every quorum crosses the root level).
  for (double p : {0.6, 0.8, 0.95}) {
    EXPECT_GE(a.write_availability(p), p - 1e-12);
    EXPECT_LE(a.read_availability(p), p + 1e-12);
  }
}

TEST(UnmodifiedTest, BeatsNaorWoolBinaryBound) {
  // The paper's headline §3.3 claim: 1/log2(n+1) < 2/(log2(n+1)+1) for the
  // same structure whenever log2(n+1) > 1.
  for (std::uint32_t h : {1u, 2u, 3u, 5u, 8u}) {
    const ArbitraryAnalysis a(unmodified_tree(h));
    const double levels = static_cast<double>(h + 1);
    EXPECT_NEAR(a.write_load(), 1.0 / levels, 1e-12);
    EXPECT_LT(a.write_load(), 2.0 / (levels + 1.0));
  }
}

TEST(Algorithm1Test, RequiresLargeN) {
  EXPECT_THROW(algorithm1_tree(64), std::invalid_argument);
  EXPECT_NO_THROW(algorithm1_tree(65));
}

TEST(Algorithm1Test, ShapeFollowsThePaper) {
  const ArbitraryTree tree = algorithm1_tree(100);
  const auto sizes = tree.physical_level_sizes();
  // |K_phy| = sqrt(100) = 10 levels; seven 4s then (100-28)/3 = 24 each.
  ASSERT_EQ(sizes.size(), 10u);
  for (std::size_t u = 0; u < 7; ++u) EXPECT_EQ(sizes[u], 4u);
  for (std::size_t u = 7; u < 10; ++u) EXPECT_EQ(sizes[u], 24u);
  EXPECT_EQ(tree.replica_count(), 100u);
  EXPECT_TRUE(tree.satisfies_assumption_3_1());
}

TEST(Algorithm1Test, NonSquareNStillValid) {
  for (std::size_t n : {65u, 90u, 123u, 200u, 1000u}) {
    const ArbitraryTree tree = algorithm1_tree(n);
    EXPECT_EQ(tree.replica_count(), n) << "n=" << n;
    EXPECT_TRUE(tree.satisfies_assumption_3_1()) << "n=" << n;
    const ArbitraryAnalysis a(tree);
    // Write load ~ 1/sqrt(n).
    EXPECT_NEAR(a.write_load(), 1.0 / std::sqrt(static_cast<double>(n)),
                0.2 / std::sqrt(static_cast<double>(n)))
        << "n=" << n;
    // Read load pinned at 1/4 by the seven 4-replica levels.
    EXPECT_DOUBLE_EQ(a.read_load(), 0.25) << "n=" << n;
  }
}

TEST(Algorithm1Test, PaperPerformanceClaims) {
  // §3.3: write min cost 4, avg cost sqrt(n), read cost sqrt(n), load 1/sqrt(n).
  const ArbitraryTree tree = algorithm1_tree(400);
  const ArbitraryAnalysis a(tree);
  EXPECT_DOUBLE_EQ(a.write_cost_min(), 4.0);
  EXPECT_NEAR(a.write_cost_avg(), 20.0, 1e-9);
  EXPECT_NEAR(a.read_cost(), 20.0, 1e-9);
  EXPECT_NEAR(a.write_load(), 0.05, 1e-9);
}

TEST(RecommendedTest, MidRangeShape) {
  const ArbitraryTree tree = recommended_tree(40);
  const auto sizes = tree.physical_level_sizes();
  ASSERT_EQ(sizes.size(), 8u);
  for (std::size_t u = 0; u < 7; ++u) EXPECT_EQ(sizes[u], 4u);
  EXPECT_EQ(sizes[7], 12u);  // n - 28
  EXPECT_THROW(recommended_tree(32), std::invalid_argument);
  // Defers to Algorithm 1 above 64.
  EXPECT_EQ(recommended_tree(100).physical_level_sizes().size(), 10u);
}

TEST(BalancedTreeTest, EvenPartition) {
  const ArbitraryTree tree = balanced_tree(10, 3);
  EXPECT_EQ(tree.physical_level_sizes(), (std::vector<std::size_t>{3, 3, 4}));
  EXPECT_TRUE(tree.satisfies_assumption_3_1());
  EXPECT_THROW(balanced_tree(3, 0), std::invalid_argument);
  EXPECT_THROW(balanced_tree(3, 4), std::invalid_argument);
}

TEST(SpectrumTest, ReadOnlyPicksOneLevel) {
  const ArbitraryTree tree =
      configure_spectrum(30, {.read_fraction = 1.0, .availability_p = 0.9});
  EXPECT_EQ(tree.physical_level_sizes().size(), 1u);
}

TEST(SpectrumTest, WriteOnlyPicksManyLevels) {
  const ArbitraryTree tree =
      configure_spectrum(30, {.read_fraction = 0.0, .availability_p = 0.99});
  EXPECT_GT(tree.physical_level_sizes().size(), 5u);
}

TEST(SpectrumTest, BalancedMixPicksMiddleGround) {
  const ArbitraryTree tree =
      configure_spectrum(64, {.read_fraction = 0.5, .availability_p = 0.9});
  const std::size_t levels = tree.physical_level_sizes().size();
  EXPECT_GT(levels, 1u);
  EXPECT_LT(levels, 64u);
  EXPECT_EQ(tree.replica_count(), 64u);
}

TEST(SpectrumTest, ObjectiveIsActuallyMinimal) {
  // Whatever the configurator returns must beat (or tie) every balanced
  // alternative on the stated objective.
  const SpectrumOptions options{.read_fraction = 0.7, .availability_p = 0.85};
  const ArbitraryTree chosen = configure_spectrum(48, options);
  const ArbitraryAnalysis chosen_analysis(chosen);
  const double chosen_objective =
      options.read_fraction * chosen_analysis.expected_read_load(0.85) +
      (1 - options.read_fraction) * chosen_analysis.expected_write_load(0.85);
  for (std::size_t levels = 1; levels <= 48; ++levels) {
    const ArbitraryAnalysis alt(balanced_tree(48, levels));
    const double alt_objective =
        options.read_fraction * alt.expected_read_load(0.85) +
        (1 - options.read_fraction) * alt.expected_write_load(0.85);
    EXPECT_LE(chosen_objective, alt_objective + 1e-9) << "levels=" << levels;
  }
}

TEST(SpectrumTest, MoreReadsMeansFewerLevels) {
  // Monotone trend across the read-fraction spectrum.
  std::size_t previous = SIZE_MAX;
  for (double fr : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const ArbitraryTree tree =
        configure_spectrum(60, {.read_fraction = fr, .availability_p = 0.9});
    const std::size_t levels = tree.physical_level_sizes().size();
    EXPECT_LE(levels, previous) << "read_fraction=" << fr;
    previous = levels;
  }
}

TEST(SpectrumTest, InvalidOptions) {
  EXPECT_THROW(configure_spectrum(0, {}), std::invalid_argument);
  EXPECT_THROW(configure_spectrum(10, {.read_fraction = -0.1}),
               std::invalid_argument);
  EXPECT_THROW(configure_spectrum(10, {.read_fraction = 1.5}),
               std::invalid_argument);
  EXPECT_THROW(
      configure_spectrum(10, {.read_fraction = 0.5, .availability_p = 0.0}),
      std::invalid_argument);
}

TEST(FactoryTest, NamesMatchConfigurations) {
  EXPECT_EQ(make_mostly_read(9)->name(), "MOSTLY-READ");
  EXPECT_EQ(make_mostly_write(9)->name(), "MOSTLY-WRITE");
  EXPECT_EQ(make_unmodified(2)->name(), "UNMODIFIED");
  EXPECT_EQ(make_arbitrary(40)->name(), "ARBITRARY");
  EXPECT_EQ(make_arbitrary(100)->universe_size(), 100u);
}

}  // namespace
}  // namespace atrcp
