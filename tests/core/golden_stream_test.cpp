// Golden RNG-stream regression for quorum assembly.
//
// The epoch-keyed assembly caches (core/quorums.cpp, protocols/majority.cpp,
// protocols/weighted_voting.cpp) are pure layout/caching optimizations:
// they must consume the RNG stream identically to the rebuild-per-call
// code they replaced and return the same quorums. These sequences were
// captured from the pre-overhaul implementation; any divergence means an
// optimization changed observable behaviour, which invalidates every
// digest-pinned baseline in the repo.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "core/quorums.hpp"
#include "core/tree.hpp"
#include "protocols/majority.hpp"
#include "protocols/weighted_voting.hpp"
#include "quorum/types.hpp"
#include "util/rng.hpp"

namespace atrcp {
namespace {

std::string str(const std::optional<Quorum>& q) {
  return q ? q->to_string() : "unavailable";
}

TEST(GoldenStreamTest, ArbitraryProtocolReadsAndWritesUnderFailures) {
  // 1-3-5 tree, failures {1, 4}, Rng(42): 8 reads then 8 writes, then
  // failure churn to force epoch invalidation between assemblies.
  ArbitraryProtocol arb(ArbitraryTree::from_spec("1-3-5"));
  FailureSet f(arb.universe_size());
  f.fail(1);
  f.fail(4);
  Rng rng(42);

  const std::vector<std::string> want_reads{
      "{0, 5}", "{2, 7}", "{2, 7}", "{2, 7}",
      "{2, 6}", "{2, 5}", "{2, 5}", "{2, 7}"};
  for (const std::string& want : want_reads) {
    EXPECT_EQ(str(arb.assemble_read_quorum(f, rng)), want);
  }
  // Level 2 has a failed replica on every full-level candidate: writes are
  // unavailable, and must report so WITHOUT consuming extra RNG draws (the
  // subsequent reads below would diverge otherwise).
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(str(arb.assemble_write_quorum(f, rng)), "unavailable");
  }
  f.fail(0);
  EXPECT_EQ(str(arb.assemble_read_quorum(f, rng)), "{2, 7}");
  f.recover(0);
  EXPECT_EQ(str(arb.assemble_read_quorum(f, rng)), "{2, 6}");
}

TEST(GoldenStreamTest, ArbitraryProtocolWriteQuorumChoices) {
  // Same tree, only replica 4 failed, Rng(99): the write path picks among
  // the surviving full levels; recovery reopens the second level.
  ArbitraryProtocol arb(ArbitraryTree::from_spec("1-3-5"));
  FailureSet f(arb.universe_size());
  f.fail(4);
  Rng rng(99);
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(str(arb.assemble_write_quorum(f, rng)), "{0, 1, 2}");
  }
  f.recover(4);
  const std::vector<std::string> want{
      "{0, 1, 2}", "{0, 1, 2}", "{3, 4, 5, 6, 7}", "{3, 4, 5, 6, 7}"};
  for (const std::string& w : want) {
    EXPECT_EQ(str(arb.assemble_write_quorum(f, rng)), w);
  }
}

TEST(GoldenStreamTest, MajorityQuorumShuffleStream) {
  // n=9, failures {2, 7}, Rng(7): the cached alive list + scratch shuffle
  // must replay the exact Fisher–Yates draws of the rebuild-per-call code.
  MajorityQuorum maj(9);
  FailureSet fm(9);
  fm.fail(2);
  fm.fail(7);
  Rng rng(7);
  const std::vector<std::string> want{
      "{1, 3, 4, 5, 8}", "{1, 3, 4, 5, 8}", "{1, 3, 4, 6, 8}",
      "{0, 1, 3, 4, 5}", "{0, 1, 5, 6, 8}", "{0, 1, 4, 5, 6}"};
  for (const std::string& w : want) {
    EXPECT_EQ(str(maj.assemble_read_quorum(fm, rng)), w);
  }
  fm.fail(0);  // epoch bump: cache refills, stream continues unchanged
  EXPECT_EQ(str(maj.assemble_read_quorum(fm, rng)), "{1, 3, 4, 5, 8}");
}

TEST(GoldenStreamTest, WeightedVotingPermutationStream) {
  WeightedVoting wv = WeightedVoting::majority(7);
  FailureSet fw(7);
  fw.fail(3);
  Rng rng(11);
  const std::vector<std::string> want_reads{
      "{0, 1, 2, 5}", "{1, 4, 5, 6}", "{0, 2, 4, 6}", "{1, 2, 4, 6}"};
  for (const std::string& w : want_reads) {
    EXPECT_EQ(str(wv.assemble_read_quorum(fw, rng)), w);
  }
  const std::vector<std::string> want_writes{
      "{0, 1, 4, 6}", "{0, 1, 4, 6}", "{1, 4, 5, 6}", "{0, 2, 5, 6}"};
  for (const std::string& w : want_writes) {
    EXPECT_EQ(str(wv.assemble_write_quorum(fw, rng)), w);
  }
}

}  // namespace
}  // namespace atrcp
