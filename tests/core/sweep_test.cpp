// Parameterized sweep over a catalogue of tree shapes: every §3.2 relation
// checked on each of them. This is the wide-net complement to the targeted
// tests — any regression in the closed forms breaks dozens of cases here.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/analysis.hpp"
#include "core/quorums.hpp"
#include "core/tree.hpp"
#include "quorum/resilience.hpp"

namespace atrcp {
namespace {

class TreeShapeSweep : public ::testing::TestWithParam<const char*> {
 protected:
  ArbitraryTree tree() const { return ArbitraryTree::from_spec(GetParam()); }
};

TEST_P(TreeShapeSweep, AccountingIdentities) {
  const ArbitraryTree t = tree();
  // n = sum of physical level sizes; |K_log| + |K_phy| = 1 + h.
  const auto sizes = t.physical_level_sizes();
  EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), std::size_t{0}),
            t.replica_count());
  EXPECT_EQ(t.logical_levels().size() + t.physical_levels().size(),
            1u + t.height());
  // Per-level: m = m_phy + m_log.
  for (std::uint32_t k = 0; k <= t.height(); ++k) {
    EXPECT_EQ(t.m(k), t.m_phy(k) + t.m_log(k));
  }
}

TEST_P(TreeShapeSweep, CostFormulas) {
  const ArbitraryAnalysis a(tree());
  EXPECT_DOUBLE_EQ(a.read_cost(),
                   static_cast<double>(a.physical_level_count()));
  EXPECT_DOUBLE_EQ(a.write_cost_min(), static_cast<double>(a.d()));
  EXPECT_DOUBLE_EQ(a.write_cost_max(), static_cast<double>(a.e()));
  EXPECT_NEAR(a.write_cost_avg(),
              static_cast<double>(a.replica_count()) /
                  static_cast<double>(a.physical_level_count()),
              1e-12);
  EXPECT_LE(a.write_cost_min(), a.write_cost_avg() + 1e-12);
  EXPECT_LE(a.write_cost_avg(), a.write_cost_max() + 1e-12);
}

TEST_P(TreeShapeSweep, LoadFormulas) {
  const ArbitraryAnalysis a(tree());
  EXPECT_DOUBLE_EQ(a.read_load(), 1.0 / static_cast<double>(a.d()));
  EXPECT_DOUBLE_EQ(a.write_load(),
                   1.0 / static_cast<double>(a.physical_level_count()));
}

TEST_P(TreeShapeSweep, QuorumCountFacts) {
  const ArbitraryProtocol protocol(tree());
  const ArbitraryAnalysis& a = protocol.analysis();
  double product = 1.0;
  for (std::size_t s : a.level_sizes()) product *= static_cast<double>(s);
  EXPECT_DOUBLE_EQ(a.read_quorum_count(), product);
  EXPECT_EQ(a.write_quorum_count(), a.level_sizes().size());
}

TEST_P(TreeShapeSweep, AvailabilityProductForms) {
  const ArbitraryAnalysis a(tree());
  for (double p : {0.5, 0.7, 0.9}) {
    double read_product = 1.0;
    double fail_product = 1.0;
    for (std::size_t s : a.level_sizes()) {
      read_product *= 1.0 - std::pow(1.0 - p, static_cast<double>(s));
      fail_product *= 1.0 - std::pow(p, static_cast<double>(s));
    }
    EXPECT_NEAR(a.read_availability(p), read_product, 1e-12);
    EXPECT_NEAR(a.write_availability(p), 1.0 - fail_product, 1e-12);
    EXPECT_GE(a.read_availability(p), 0.0);
    EXPECT_LE(a.read_availability(p), 1.0);
  }
}

TEST_P(TreeShapeSweep, ExpectedLoadEquation32) {
  const ArbitraryAnalysis a(tree());
  for (double p : {0.6, 0.8}) {
    EXPECT_NEAR(a.expected_read_load(p),
                a.read_availability(p) * (a.read_load() - 1.0) + 1.0, 1e-12);
    EXPECT_NEAR(a.expected_write_load(p),
                a.write_availability(p) * a.write_load() +
                    (1.0 - a.write_availability(p)),
                1e-12);
    // Expected loads are never better than the optimal loads.
    EXPECT_GE(a.expected_read_load(p), a.read_load() - 1e-12);
    EXPECT_GE(a.expected_write_load(p), a.write_load() - 1e-12);
  }
}

TEST_P(TreeShapeSweep, BicoterieAndResilience) {
  const ArbitraryProtocol protocol(tree());
  const std::size_t n = protocol.universe_size();
  const auto read_quorums = protocol.enumerate_read_quorums(100000);
  const auto write_quorums = protocol.enumerate_write_quorums(1000);
  Bicoterie bicoterie(n, read_quorums, write_quorums);
  EXPECT_TRUE(bicoterie.intersection_holds());
  if (read_quorums.size() <= 2000) {
    const ArbitraryAnalysis& a = protocol.analysis();
    EXPECT_EQ(resilience(SetSystem(n, read_quorums)), a.d() - 1);
    EXPECT_EQ(resilience(SetSystem(n, write_quorums)),
              a.physical_level_count() - 1);
  }
}

TEST_P(TreeShapeSweep, RoundTripSpecString) {
  const ArbitraryTree t = tree();
  const ArbitraryTree reparsed = ArbitraryTree::from_spec(t.to_spec_string());
  EXPECT_EQ(reparsed.physical_level_sizes(), t.physical_level_sizes());
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TreeShapeSweep,
    ::testing::Values("1-3-5", "1-2-2", "1-8", "1-2-3-4", "1-4-4-4-4",
                      "1-2-2-2-2-2", "1-5-5", "1-3-3-3", "1-2-6",
                      "1-4-5-6-7", "1-10-10", "1-2-2-4-4-8", "1-6-6-6",
                      "1-3-4-5-6-7-8"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace atrcp
