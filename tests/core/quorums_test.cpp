#include "core/quorums.hpp"

#include <gtest/gtest.h>

#include "analysis/empirical.hpp"
#include "core/config.hpp"
#include "quorum/availability.hpp"
#include "quorum/lp.hpp"
#include "quorum/set_system.hpp"
#include "quorum/strategy.hpp"

namespace atrcp {
namespace {

ArbitraryProtocol paper_tree() {
  return ArbitraryProtocol(ArbitraryTree::from_spec("1-3-5"));
}

TEST(ArbitraryProtocolTest, ReadQuorumShape) {
  const auto protocol = paper_tree();
  FailureSet none(8);
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const auto q = protocol.assemble_read_quorum(none, rng);
    ASSERT_TRUE(q.has_value());
    ASSERT_EQ(q->size(), 2u);  // one per physical level
    EXPECT_LT(q->members()[0], 3u);   // level-1 replica
    EXPECT_GE(q->members()[1], 3u);   // level-2 replica
  }
}

TEST(ArbitraryProtocolTest, WriteQuorumIsAWholeLevel) {
  const auto protocol = paper_tree();
  FailureSet none(8);
  Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const auto q = protocol.assemble_write_quorum(none, rng);
    ASSERT_TRUE(q.has_value());
    EXPECT_TRUE(*q == Quorum({0, 1, 2}) || *q == Quorum({3, 4, 5, 6, 7}))
        << q->to_string();
  }
}

TEST(ArbitraryProtocolTest, ReadSurvivesAllButOnePerLevel) {
  const auto protocol = paper_tree();
  FailureSet failures(8);
  failures.fail(0);
  failures.fail(1);   // level 1 keeps replica 2
  failures.fail(3);
  failures.fail(4);
  failures.fail(5);
  failures.fail(6);   // level 2 keeps replica 7
  Rng rng(3);
  const auto q = protocol.assemble_read_quorum(failures, rng);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(*q, Quorum({2, 7}));
}

TEST(ArbitraryProtocolTest, ReadDiesWithAWholeLevel) {
  const auto protocol = paper_tree();
  FailureSet failures(8);
  failures.fail(0);
  failures.fail(1);
  failures.fail(2);  // level 1 entirely dead
  Rng rng(4);
  EXPECT_FALSE(protocol.assemble_read_quorum(failures, rng).has_value());
  // Writes still can use level 2.
  EXPECT_TRUE(protocol.assemble_write_quorum(failures, rng).has_value());
}

TEST(ArbitraryProtocolTest, WriteNeedsOneFullyAliveLevel) {
  const auto protocol = paper_tree();
  FailureSet failures(8);
  failures.fail(0);  // breaks level 1
  failures.fail(7);  // breaks level 2
  Rng rng(5);
  EXPECT_FALSE(protocol.assemble_write_quorum(failures, rng).has_value());
  // Reads survive: pick 1 or 2 at level 1, 3..6 at level 2.
  EXPECT_TRUE(protocol.assemble_read_quorum(failures, rng).has_value());
}

TEST(ArbitraryProtocolTest, WriteAvoidsBrokenLevels) {
  const auto protocol = paper_tree();
  FailureSet failures(8);
  failures.fail(4);  // level 2 has a hole
  Rng rng(6);
  for (int i = 0; i < 20; ++i) {
    const auto q = protocol.assemble_write_quorum(failures, rng);
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(*q, Quorum({0, 1, 2}));
  }
}

TEST(ArbitraryProtocolTest, EnumerationMatchesFacts321And322) {
  const auto protocol = paper_tree();
  const auto reads = protocol.enumerate_read_quorums(100);
  const auto writes = protocol.enumerate_write_quorums(100);
  EXPECT_EQ(reads.size(), 15u);  // m(R) = 3 * 5
  EXPECT_EQ(writes.size(), 2u);  // m(W) = |K_phy|
  Bicoterie bicoterie(8, reads, writes);
  EXPECT_TRUE(bicoterie.intersection_holds());
}

TEST(ArbitraryProtocolTest, EnumerationLimitRespected) {
  const auto protocol = paper_tree();
  EXPECT_THROW(protocol.enumerate_read_quorums(10), std::length_error);
  EXPECT_THROW(protocol.enumerate_write_quorums(1), std::length_error);
}

TEST(ArbitraryProtocolTest, EnumerationLimitBoundaryIsExact) {
  // Regression: the limit guard used to compare the analytic quorum count,
  // a double, against the limit — exact at m(R) = 15, but an integer
  // comparison by contract: limit == m(R) must enumerate, m(R) - 1 must
  // throw. Checked in exact uint64 arithmetic now.
  const auto protocol = paper_tree();
  EXPECT_EQ(protocol.enumerate_read_quorums(15).size(), 15u);
  EXPECT_THROW(protocol.enumerate_read_quorums(14), std::length_error);
  EXPECT_EQ(protocol.enumerate_write_quorums(2).size(), 2u);
}

TEST(ArbitraryProtocolTest, ReadLoadMatchesLpOptimum) {
  // Appendix 6.1: L_RD = 1/d. The LP over all enumerated read quorums must
  // agree exactly.
  const auto protocol = paper_tree();
  const SetSystem reads(8, protocol.enumerate_read_quorums(100));
  const auto lp = optimal_load(reads);
  EXPECT_NEAR(lp.load, protocol.read_load(), 1e-8);
  EXPECT_NEAR(lp.load, 1.0 / 3.0, 1e-8);
  EXPECT_TRUE(certifies_lower_bound(reads, lp.y, lp.load, 1e-7));
}

TEST(ArbitraryProtocolTest, WriteLoadMatchesLpOptimum) {
  // Appendix 6.2: L_WR = 1/|K_phy|.
  const auto protocol = paper_tree();
  const SetSystem writes(8, protocol.enumerate_write_quorums(100));
  const auto lp = optimal_load(writes);
  EXPECT_NEAR(lp.load, protocol.write_load(), 1e-8);
  EXPECT_NEAR(lp.load, 0.5, 1e-8);
}

TEST(ArbitraryProtocolTest, AvailabilityMatchesExactEnumeration) {
  const auto protocol = paper_tree();
  const SetSystem reads(8, protocol.enumerate_read_quorums(100));
  const SetSystem writes(8, protocol.enumerate_write_quorums(100));
  for (double p : {0.5, 0.7, 0.9}) {
    EXPECT_NEAR(protocol.read_availability(p), exact_availability(reads, p),
                1e-12)
        << "p=" << p;
    EXPECT_NEAR(protocol.write_availability(p), exact_availability(writes, p),
                1e-12)
        << "p=" << p;
  }
}

TEST(ArbitraryProtocolTest, UniformStrategyLoadMatchesPaperUpperBound) {
  // Appendix 6.1.1: the uniform strategy over read quorums induces load
  // exactly 1/g(u) on each level-u replica, so the max is 1/d.
  const auto protocol = paper_tree();
  const SetSystem reads(8, protocol.enumerate_read_quorums(100));
  const auto loads = induced_loads(reads, Strategy::uniform(15));
  for (ReplicaId id = 0; id < 3; ++id) {
    EXPECT_NEAR(loads[id], 1.0 / 3.0, 1e-12);
  }
  for (ReplicaId id = 3; id < 8; ++id) {
    EXPECT_NEAR(loads[id], 1.0 / 5.0, 1e-12);
  }
}

TEST(ArbitraryProtocolTest, EmpiricalLoadsMatchClosedForms) {
  const auto protocol = paper_tree();
  Rng rng(7);
  const auto loads = empirical_loads(protocol, 100000, rng);
  EXPECT_NEAR(loads.max_read, 1.0 / 3.0, 0.01);
  EXPECT_NEAR(loads.max_write, 0.5, 0.01);
}

TEST(ArbitraryProtocolTest, CustomDisplayName) {
  const ArbitraryProtocol p(mostly_read_tree(5), "MOSTLY-READ");
  EXPECT_EQ(p.name(), "MOSTLY-READ");
  EXPECT_EQ(paper_tree().name(), "ARBITRARY");
}

}  // namespace
}  // namespace atrcp
