// Randomized property tests over the arbitrary protocol: generate many
// random trees (random level counts, sizes, logical/physical mixtures) and
// verify the paper's theorems hold on every one of them:
//   * the read/write quorum sets form a bicoterie (§3.2.3 induction proof);
//   * Facts 3.2.1 / 3.2.2 (quorum counts);
//   * the closed-form optimal loads equal the LP optimum (Appendix 6.1/6.2)
//     and the uniform strategy attains them;
//   * closed-form availability equals exhaustive-enumeration availability.
#include <gtest/gtest.h>

#include <algorithm>

#include "core/analysis.hpp"
#include "core/quorums.hpp"
#include "quorum/availability.hpp"
#include "quorum/lp.hpp"
#include "quorum/set_system.hpp"
#include "quorum/strategy.hpp"
#include "util/rng.hpp"

namespace atrcp {
namespace {

/// A random tree with l physical levels of small sizes (so exhaustive
/// checks stay cheap), random logical padding, and a logical or physical
/// root. Not necessarily Assumption-3.1-conformant: quorum correctness must
/// hold regardless, and load/availability formulas are structure-free.
ArbitraryTree random_tree(Rng& rng, std::size_t max_level_size = 4,
                          std::size_t max_levels = 4) {
  const std::size_t levels = 1 + rng.below(max_levels);
  std::vector<ArbitraryTree::LevelCount> counts;
  counts.push_back({1, rng.chance(0.5) ? 1u : 0u});  // root
  bool any_physical = counts[0].physical > 0;
  for (std::size_t k = 1; k <= levels; ++k) {
    const auto physical =
        static_cast<std::uint32_t>(rng.below(max_level_size + 1));
    const auto logical = static_cast<std::uint32_t>(rng.below(3));
    std::uint32_t total = physical + logical;
    if (total == 0) total = 1;  // keep levels non-empty (all-logical level)
    counts.push_back({total, physical});
    any_physical |= physical > 0;
  }
  if (!any_physical) {
    counts.push_back({2, 2});  // guarantee at least one physical node
  }
  return ArbitraryTree::from_level_counts(counts);
}

class RandomTreeTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTreeTest, BicoterieIntersectionAlwaysHolds) {
  Rng rng(GetParam());
  for (int round = 0; round < 20; ++round) {
    const ArbitraryProtocol protocol(random_tree(rng));
    const std::size_t n = protocol.universe_size();
    const auto reads = protocol.enumerate_read_quorums(100000);
    const auto writes = protocol.enumerate_write_quorums(100000);
    Bicoterie bicoterie(n, reads, writes);
    EXPECT_TRUE(bicoterie.intersection_holds())
        << protocol.tree().to_spec_string();
  }
}

TEST_P(RandomTreeTest, QuorumCountsMatchFacts) {
  Rng rng(GetParam() ^ 0xABCD);
  for (int round = 0; round < 20; ++round) {
    const ArbitraryProtocol protocol(random_tree(rng));
    const ArbitraryAnalysis& analysis = protocol.analysis();
    const auto reads = protocol.enumerate_read_quorums(100000);
    const auto writes = protocol.enumerate_write_quorums(100000);
    EXPECT_DOUBLE_EQ(static_cast<double>(reads.size()),
                     analysis.read_quorum_count());
    EXPECT_EQ(writes.size(), analysis.write_quorum_count());
  }
}

TEST_P(RandomTreeTest, ReadLoadEqualsLpOptimum) {
  Rng rng(GetParam() ^ 0x1111);
  for (int round = 0; round < 8; ++round) {
    const ArbitraryProtocol protocol(random_tree(rng, 3, 3));
    const std::size_t n = protocol.universe_size();
    const auto reads = protocol.enumerate_read_quorums(4000);
    const SetSystem system(n, reads);
    const auto lp = optimal_load(system);
    EXPECT_NEAR(lp.load, protocol.read_load(), 1e-7)
        << protocol.tree().to_spec_string();
    // The uniform strategy attains it (Appendix 6.1.1).
    EXPECT_NEAR(strategy_load(system, Strategy::uniform(reads.size())),
                protocol.read_load(), 1e-9);
    // And the LP's dual is a Proposition-2.1 certificate.
    EXPECT_TRUE(certifies_lower_bound(system, lp.y, lp.load, 1e-6));
  }
}

TEST_P(RandomTreeTest, WriteLoadEqualsLpOptimum) {
  Rng rng(GetParam() ^ 0x2222);
  for (int round = 0; round < 10; ++round) {
    const ArbitraryProtocol protocol(random_tree(rng));
    const std::size_t n = protocol.universe_size();
    const auto writes = protocol.enumerate_write_quorums(1000);
    const SetSystem system(n, writes);
    const auto lp = optimal_load(system);
    EXPECT_NEAR(lp.load, protocol.write_load(), 1e-7)
        << protocol.tree().to_spec_string();
    EXPECT_NEAR(strategy_load(system, Strategy::uniform(writes.size())),
                protocol.write_load(), 1e-9);
  }
}

TEST_P(RandomTreeTest, AvailabilityFormulasMatchEnumeration) {
  Rng rng(GetParam() ^ 0x3333);
  for (int round = 0; round < 10; ++round) {
    ArbitraryTree tree = random_tree(rng, 3, 3);
    if (tree.replica_count() > 16) continue;  // keep 2^n enumeration cheap
    const ArbitraryProtocol protocol(std::move(tree));
    const std::size_t n = protocol.universe_size();
    const SetSystem reads(n, protocol.enumerate_read_quorums(100000));
    const SetSystem writes(n, protocol.enumerate_write_quorums(1000));
    for (double p : {0.55, 0.8}) {
      EXPECT_NEAR(protocol.read_availability(p), exact_availability(reads, p),
                  1e-10)
          << protocol.tree().to_spec_string() << " p=" << p;
      EXPECT_NEAR(protocol.write_availability(p),
                  exact_availability(writes, p), 1e-10)
          << protocol.tree().to_spec_string() << " p=" << p;
    }
  }
}

TEST_P(RandomTreeTest, AssembledQuorumsBelongToEnumeratedSets) {
  Rng rng(GetParam() ^ 0x4444);
  for (int round = 0; round < 10; ++round) {
    const ArbitraryProtocol protocol(random_tree(rng, 3, 3));
    const std::size_t n = protocol.universe_size();
    const auto reads = protocol.enumerate_read_quorums(100000);
    const auto writes = protocol.enumerate_write_quorums(1000);
    const FailureSet none(n);
    for (int i = 0; i < 20; ++i) {
      const auto r = protocol.assemble_read_quorum(none, rng);
      ASSERT_TRUE(r.has_value());
      EXPECT_NE(std::find(reads.begin(), reads.end(), *r), reads.end());
      const auto w = protocol.assemble_write_quorum(none, rng);
      ASSERT_TRUE(w.has_value());
      EXPECT_NE(std::find(writes.begin(), writes.end(), *w), writes.end());
    }
  }
}

TEST_P(RandomTreeTest, ReadAssemblySucceedsIffEveryLevelHasASurvivor) {
  Rng rng(GetParam() ^ 0x5555);
  for (int round = 0; round < 10; ++round) {
    const ArbitraryProtocol protocol(random_tree(rng));
    const auto& tree = protocol.tree();
    const std::size_t n = protocol.universe_size();
    for (int trial = 0; trial < 20; ++trial) {
      FailureSet failures(n);
      for (ReplicaId id = 0; id < n; ++id) {
        if (rng.chance(0.4)) failures.fail(id);
      }
      bool every_level_has_survivor = true;
      for (std::uint32_t level : tree.physical_levels()) {
        bool survivor = false;
        for (ReplicaId id : tree.replicas_at_level(level)) {
          if (failures.is_alive(id)) survivor = true;
        }
        every_level_has_survivor &= survivor;
      }
      EXPECT_EQ(protocol.assemble_read_quorum(failures, rng).has_value(),
                every_level_has_survivor);
    }
  }
}

TEST_P(RandomTreeTest, WriteAssemblySucceedsIffSomeLevelFullyAlive) {
  Rng rng(GetParam() ^ 0x6666);
  for (int round = 0; round < 10; ++round) {
    const ArbitraryProtocol protocol(random_tree(rng));
    const auto& tree = protocol.tree();
    const std::size_t n = protocol.universe_size();
    for (int trial = 0; trial < 20; ++trial) {
      FailureSet failures(n);
      for (ReplicaId id = 0; id < n; ++id) {
        if (rng.chance(0.3)) failures.fail(id);
      }
      bool some_level_fully_alive = false;
      for (std::uint32_t level : tree.physical_levels()) {
        bool full = true;
        for (ReplicaId id : tree.replicas_at_level(level)) {
          if (failures.is_failed(id)) full = false;
        }
        some_level_fully_alive |= full;
      }
      EXPECT_EQ(protocol.assemble_write_quorum(failures, rng).has_value(),
                some_level_fully_alive);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTreeTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace atrcp
