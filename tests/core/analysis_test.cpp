#include "core/analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace atrcp {
namespace {

TEST(ArbitraryAnalysisTest, RejectsDegenerateInput) {
  EXPECT_THROW(ArbitraryAnalysis(std::vector<std::size_t>{}),
               std::invalid_argument);
  EXPECT_THROW(ArbitraryAnalysis(std::vector<std::size_t>{3, 0, 5}),
               std::invalid_argument);
}

TEST(ArbitraryAnalysisTest, BasicAccounting) {
  const ArbitraryAnalysis a({3, 5});
  EXPECT_EQ(a.replica_count(), 8u);
  EXPECT_EQ(a.physical_level_count(), 2u);
  EXPECT_EQ(a.d(), 3u);
  EXPECT_EQ(a.e(), 5u);
  EXPECT_DOUBLE_EQ(a.read_quorum_count(), 15.0);   // Fact 3.2.1
  EXPECT_EQ(a.write_quorum_count(), 2u);           // Fact 3.2.2
}

TEST(ArbitraryAnalysisTest, CostsFollowSection32) {
  const ArbitraryAnalysis a({4, 4, 6});
  EXPECT_DOUBLE_EQ(a.read_cost(), 3.0);            // |K_phy|
  EXPECT_DOUBLE_EQ(a.write_cost_min(), 4.0);       // d
  EXPECT_DOUBLE_EQ(a.write_cost_max(), 6.0);       // e
  EXPECT_NEAR(a.write_cost_avg(), 14.0 / 3.0, 1e-12);  // n/|K_phy|
}

TEST(ArbitraryAnalysisTest, LoadsFollowSection32) {
  const ArbitraryAnalysis a({2, 4, 4});
  EXPECT_DOUBLE_EQ(a.read_load(), 0.5);            // 1/d
  EXPECT_NEAR(a.write_load(), 1.0 / 3.0, 1e-12);   // 1/|K_phy|
}

TEST(ArbitraryAnalysisTest, ReadAvailabilityProduct) {
  // Π_k (1 - (1-p)^m_k) with sizes {3, 5} at p = 0.7 (the paper's 0.97).
  const ArbitraryAnalysis a({3, 5});
  const double expected =
      (1 - std::pow(0.3, 3)) * (1 - std::pow(0.3, 5));
  EXPECT_NEAR(a.read_availability(0.7), expected, 1e-12);
  EXPECT_NEAR(a.read_availability(0.7), 0.97, 0.005);
}

TEST(ArbitraryAnalysisTest, WriteAvailabilityProduct) {
  // 1 - Π_k (1 - p^m_k) with sizes {3, 5} at p = 0.7 (the paper's 0.45).
  const ArbitraryAnalysis a({3, 5});
  const double fail = (1 - std::pow(0.7, 3)) * (1 - std::pow(0.7, 5));
  EXPECT_NEAR(a.write_fail(0.7), fail, 1e-12);
  EXPECT_NEAR(a.write_availability(0.7), 1.0 - fail, 1e-12);
  EXPECT_NEAR(a.write_availability(0.7), 0.45, 0.01);
}

TEST(ArbitraryAnalysisTest, DegenerateAvailability) {
  const ArbitraryAnalysis a({3, 5});
  EXPECT_NEAR(a.read_availability(1.0), 1.0, 1e-12);
  EXPECT_NEAR(a.read_availability(0.0), 0.0, 1e-12);
  EXPECT_NEAR(a.write_availability(1.0), 1.0, 1e-12);
  EXPECT_NEAR(a.write_availability(0.0), 0.0, 1e-12);
}

TEST(ArbitraryAnalysisTest, Equation32ExpectedLoads) {
  // §3.4: E L_RD = 0.35 and E L_WR = 0.775 for the 1-3-5 tree at p = 0.7.
  const ArbitraryAnalysis a({3, 5});
  EXPECT_NEAR(a.expected_read_load(0.7), 0.35, 0.005);
  EXPECT_NEAR(a.expected_write_load(0.7), 0.775, 0.005);
}

TEST(ArbitraryAnalysisTest, ExpectedLoadApproachesOptimalWithHighP) {
  const ArbitraryAnalysis a({4, 4, 4, 4});
  EXPECT_NEAR(a.expected_read_load(0.999), a.read_load(), 1e-2);
  EXPECT_NEAR(a.expected_write_load(0.999), a.write_load(), 1e-2);
  // And degrades toward 1 as p collapses.
  EXPECT_NEAR(a.expected_read_load(0.0), 1.0, 1e-12);
  EXPECT_NEAR(a.expected_write_load(0.0), 1.0, 1e-12);
}

TEST(ArbitraryAnalysisTest, StabilityThreshold) {
  const ArbitraryAnalysis a({4, 4, 4, 4, 4, 4, 4});
  EXPECT_TRUE(a.is_stable(0.9, 0.9));
  EXPECT_FALSE(ArbitraryAnalysis({3, 5}).is_stable(0.7, 0.95));
}

TEST(ArbitraryAnalysisTest, MoreLevelsHelpWritesHurtReads) {
  // §3.3's central trade-off, over the same 24 replicas.
  const ArbitraryAnalysis one_level({24});
  const ArbitraryAnalysis four_levels({6, 6, 6, 6});
  const ArbitraryAnalysis twelve_levels({2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2, 2});

  // Write load/cost strictly improve with level count.
  EXPECT_GT(one_level.write_load(), four_levels.write_load());
  EXPECT_GT(four_levels.write_load(), twelve_levels.write_load());
  EXPECT_GT(one_level.write_cost_avg(), four_levels.write_cost_avg());
  // Read cost/load strictly degrade with level count.
  EXPECT_LT(one_level.read_cost(), four_levels.read_cost());
  EXPECT_LT(four_levels.read_cost(), twelve_levels.read_cost());
  EXPECT_LT(one_level.read_load(), four_levels.read_load());
  // Availability moves the same directions.
  EXPECT_GT(four_levels.write_availability(0.8),
            one_level.write_availability(0.8));
  EXPECT_LT(four_levels.read_availability(0.8),
            one_level.read_availability(0.8));
}

TEST(ArbitraryAnalysisTest, FromTreeMatchesFromSizes) {
  const ArbitraryTree tree = ArbitraryTree::from_spec("1-3-5");
  const ArbitraryAnalysis from_tree(tree);
  const ArbitraryAnalysis from_sizes({3, 5});
  EXPECT_EQ(from_tree.level_sizes(), from_sizes.level_sizes());
  EXPECT_DOUBLE_EQ(from_tree.read_availability(0.8),
                   from_sizes.read_availability(0.8));
}

}  // namespace
}  // namespace atrcp
