#include "core/dot.hpp"

#include <gtest/gtest.h>

namespace atrcp {
namespace {

TEST(DotTest, ContainsEveryNodeAndEdge) {
  const ArbitraryTree tree = ArbitraryTree::from_spec("1-3-5");
  const std::string dot = to_dot(tree);
  EXPECT_NE(dot.find("digraph arbitrary_tree"), std::string::npos);
  // 9 nodes total; 3 + 5 edges.
  for (const char* node : {"n0_0", "n1_0", "n1_2", "n2_0", "n2_4"}) {
    EXPECT_NE(dot.find(node), std::string::npos) << node;
  }
  std::size_t edges = 0;
  for (std::size_t at = dot.find("->"); at != std::string::npos;
       at = dot.find("->", at + 2)) {
    ++edges;
  }
  EXPECT_EQ(edges, 8u);
}

TEST(DotTest, PhysicalAndLogicalStyles) {
  const ArbitraryTree tree =
      ArbitraryTree::from_level_counts({{1, 0}, {2, 1}});
  const std::string dot = to_dot(tree, "mixed");
  EXPECT_NE(dot.find("digraph mixed"), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);   // logical nodes
  EXPECT_NE(dot.find("fillcolor=lightblue"), std::string::npos);  // physical
  EXPECT_NE(dot.find("label=\"r0\""), std::string::npos);
}

TEST(AsciiTest, LevelsAndReplicas) {
  const ArbitraryTree tree =
      ArbitraryTree::from_level_counts({{1, 0}, {3, 3}, {9, 5}});
  const std::string ascii = to_ascii(tree);
  EXPECT_NE(ascii.find("level 0 [logical ]: ."), std::string::npos);
  EXPECT_NE(ascii.find("level 1 [physical]: r0 r1 r2"), std::string::npos);
  EXPECT_NE(ascii.find("r7 . . . ."), std::string::npos);  // 5 phys + 4 log
}

}  // namespace
}  // namespace atrcp
