// HistoryRecorder: event ordering, sequencing and the coordinator hook.
#include <gtest/gtest.h>

#include <memory>

#include "check/history.hpp"
#include "protocols/majority.hpp"
#include "txn/cluster.hpp"

namespace atrcp {
namespace {

TEST(HistoryRecorderTest, AssignsGlobalSequenceInRecordingOrder) {
  HistoryRecorder recorder;
  const auto inv0 = recorder.record_invoke(9, 100, 0);
  const auto inv1 = recorder.record_invoke(10, 200, 5);
  EXPECT_EQ(inv0, 0u);
  EXPECT_EQ(inv1, 1u);
  EXPECT_EQ(recorder.open_count(), 2u);

  TxnSpan span;
  span.begin = 5;
  span.end = 40;
  recorder.record_complete(10, 200, inv1, HistoryOutcome::kCommitted, span, {},
                           40);
  recorder.record_complete(9, 100, inv0, HistoryOutcome::kAborted, span, {},
                           55);
  EXPECT_EQ(recorder.open_count(), 0u);

  ASSERT_EQ(recorder.events().size(), 4u);
  for (std::size_t i = 0; i < recorder.events().size(); ++i) {
    EXPECT_EQ(recorder.events()[i].seq, i);  // seq == index, always
  }
  // Completion order, not invocation order, orders txns().
  ASSERT_EQ(recorder.txns().size(), 2u);
  EXPECT_EQ(recorder.txns()[0].txn_id, 200u);
  EXPECT_EQ(recorder.txns()[0].invoke_seq, 1u);
  EXPECT_EQ(recorder.txns()[0].complete_seq, 2u);
  EXPECT_EQ(recorder.txns()[1].txn_id, 100u);
  EXPECT_EQ(recorder.txns()[1].outcome, HistoryOutcome::kAborted);
}

TEST(HistoryRecorderTest, EventTimesAreMonotoneInSequence) {
  HistoryRecorder recorder;
  const auto inv = recorder.record_invoke(3, 7, 10);
  TxnSpan span;
  recorder.record_complete(3, 7, inv, HistoryOutcome::kCommitted, span, {}, 25);
  ASSERT_EQ(recorder.events().size(), 2u);
  EXPECT_LE(recorder.events()[0].at, recorder.events()[1].at);
  EXPECT_EQ(recorder.events()[0].kind, HistoryEvent::Kind::kInvoke);
  EXPECT_EQ(recorder.events()[1].kind, HistoryEvent::Kind::kComplete);
}

TEST(HistoryRecorderTest, ToStringFormatsAreStable) {
  HistoryOp write;
  write.is_write = true;
  write.key = 2;
  write.hit = true;
  write.value = "val";
  write.observed = kInitialTimestamp;
  write.written = Timestamp{1, 9};
  write.start = 120;
  write.end = 880;
  EXPECT_EQ(write.to_string(), "w k2:=\"val\" v1@9 (base v0@0) @[120,880]");

  HistoryOp miss;
  miss.key = 5;
  miss.start = 1;
  miss.end = 2;
  EXPECT_EQ(miss.to_string(), "r k5=miss @[1,2]");

  HistoryTxn txn;
  txn.txn_id = (std::uint64_t{9} << 32) | 4;
  txn.site = 9;
  EXPECT_EQ(txn.label(), "c9#4");
}

TEST(HistoryRecorderTest, ClearResets) {
  HistoryRecorder recorder;
  recorder.record_invoke(1, 1, 0);
  recorder.clear();
  EXPECT_TRUE(recorder.events().empty());
  EXPECT_TRUE(recorder.txns().empty());
  EXPECT_EQ(recorder.open_count(), 0u);
}

TEST(HistoryClusterHookTest, CoordinatorRecordsInvokeCompleteAndOps) {
  ClusterOptions options;
  options.link = LinkParams{.base_latency = 10, .jitter = 2};
  options.record_history = true;
  options.clients = 2;
  Cluster cluster(std::make_unique<MajorityQuorum>(5), options);

  ASSERT_EQ(cluster.write_sync(0, 7, "a"), TxnOutcome::kCommitted);
  ASSERT_TRUE(cluster.read_sync(1, 7).has_value());

  const HistoryRecorder& history = cluster.history();
  EXPECT_EQ(history.open_count(), 0u);
  ASSERT_EQ(history.txns().size(), 2u);
  ASSERT_EQ(history.events().size(), 4u);

  const HistoryTxn& write = history.txns()[0];
  EXPECT_EQ(write.outcome, HistoryOutcome::kCommitted);
  EXPECT_EQ(write.site, 5u);  // first client site = n
  EXPECT_EQ(write.span.coordinator_site, 5u);
  ASSERT_EQ(write.ops.size(), 1u);
  EXPECT_TRUE(write.ops[0].is_write);
  EXPECT_EQ(write.ops[0].key, 7u);
  EXPECT_EQ(write.ops[0].value, "a");
  EXPECT_EQ(write.ops[0].observed, kInitialTimestamp);
  EXPECT_EQ(write.ops[0].written, (Timestamp{1, 5}));
  // Op interval nests inside the span; invoke precedes complete.
  EXPECT_LE(write.span.begin, write.ops[0].start);
  EXPECT_LE(write.ops[0].start, write.ops[0].end);
  EXPECT_LE(write.ops[0].end, write.span.end);
  EXPECT_LT(write.invoke_seq, write.complete_seq);

  const HistoryTxn& read = history.txns()[1];
  EXPECT_EQ(read.site, 6u);
  ASSERT_EQ(read.ops.size(), 1u);
  EXPECT_FALSE(read.ops[0].is_write);
  EXPECT_TRUE(read.ops[0].hit);
  EXPECT_EQ(read.ops[0].value, "a");
  EXPECT_EQ(read.ops[0].observed, (Timestamp{1, 5}));
}

TEST(HistoryClusterHookTest, RecordingIsOffByDefault) {
  ClusterOptions options;
  options.link = LinkParams{.base_latency = 10, .jitter = 2};
  Cluster cluster(std::make_unique<MajorityQuorum>(3), options);
  ASSERT_EQ(cluster.write_sync(0, 1, "x"), TxnOutcome::kCommitted);
  EXPECT_TRUE(cluster.history().events().empty());
}

TEST(HistoryClusterHookTest, AbortedTransactionsAreRecorded) {
  ClusterOptions options;
  options.link = LinkParams{.base_latency = 10, .jitter = 2};
  options.coordinator.request_timeout = 2'000;
  options.record_history = true;
  Cluster cluster(std::make_unique<MajorityQuorum>(3), options);
  // Majority of 3 needs 2 alive; kill two replicas.
  cluster.injector().crash_now(0);
  cluster.injector().crash_now(1);
  ASSERT_EQ(cluster.write_sync(0, 1, "x"), TxnOutcome::kAborted);
  ASSERT_EQ(cluster.history().txns().size(), 1u);
  EXPECT_EQ(cluster.history().txns()[0].outcome, HistoryOutcome::kAborted);
  EXPECT_TRUE(cluster.history().txns()[0].ops.empty());  // op never executed
}

}  // namespace
}  // namespace atrcp
