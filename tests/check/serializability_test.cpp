// SerializabilityChecker on hand-built histories: known-serializable,
// known-cyclic, integrity violations, counterexample minimization, the
// blocked-transaction fixpoint and the Wing–Gong linearizability check.
#include <gtest/gtest.h>

#include <algorithm>

#include "check/serializability.hpp"

namespace atrcp {
namespace {

HistoryOp read_op(Key key, Timestamp ts, Value value, SimTime s, SimTime e) {
  HistoryOp op;
  op.key = key;
  op.hit = true;
  op.value = std::move(value);
  op.observed = ts;
  op.start = s;
  op.end = e;
  return op;
}

HistoryOp miss_op(Key key, SimTime s, SimTime e) {
  HistoryOp op;
  op.key = key;
  op.start = s;
  op.end = e;
  return op;
}

HistoryOp write_op(Key key, Timestamp base, Timestamp written, Value value,
                   SimTime s, SimTime e) {
  HistoryOp op;
  op.is_write = true;
  op.key = key;
  op.hit = true;
  op.value = std::move(value);
  op.observed = base;
  op.written = written;
  op.start = s;
  op.end = e;
  return op;
}

HistoryTxn make_txn(std::uint64_t id, SiteId site, HistoryOutcome outcome,
                    std::uint64_t invoke_seq, std::uint64_t complete_seq,
                    SimTime begin, SimTime end, std::vector<HistoryOp> ops) {
  HistoryTxn txn;
  txn.txn_id = id;
  txn.site = site;
  txn.outcome = outcome;
  txn.invoke_seq = invoke_seq;
  txn.complete_seq = complete_seq;
  txn.span.txn_id = id;
  txn.span.begin = begin;
  txn.span.end = end;
  txn.ops = std::move(ops);
  return txn;
}

constexpr auto kCommitted = HistoryOutcome::kCommitted;
constexpr auto kAborted = HistoryOutcome::kAborted;
constexpr auto kBlocked = HistoryOutcome::kBlocked;

TEST(SerializabilityTest, SerialWriteThenReadIsClean) {
  SerializabilityChecker checker({
      make_txn(1, 9, kCommitted, 0, 1, 0, 100,
               {write_op(2, kInitialTimestamp, {1, 9}, "a", 10, 50)}),
      make_txn(2, 10, kCommitted, 2, 3, 200, 300,
               {read_op(2, {1, 9}, "a", 210, 250)}),
  });
  const CheckResult result = checker.check();
  EXPECT_TRUE(result.ok) << result.report;
  EXPECT_TRUE(result.violations.empty());
  EXPECT_TRUE(result.cycle.empty());
  EXPECT_TRUE(result.report.empty());
  EXPECT_EQ(checker.keys(), std::vector<Key>{2});
}

TEST(SerializabilityTest, LostUpdateFormsTwoCycle) {
  // Both writers pre-read v0 and install version 1 — the canonical lost
  // update a broken read/write quorum intersection produces.
  SerializabilityChecker checker({
      make_txn(1, 9, kCommitted, 0, 2, 0, 100,
               {write_op(5, kInitialTimestamp, {1, 9}, "a", 10, 50)}),
      make_txn(2, 10, kCommitted, 1, 3, 5, 110,
               {write_op(5, kInitialTimestamp, {1, 10}, "b", 15, 55)}),
  });
  const CheckResult result = checker.check();
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.violations.empty());  // distinct timestamps: ww+rw only
  EXPECT_EQ(result.cycle.size(), 2u);
  EXPECT_NE(result.report.find("dependency cycle (2 transactions)"),
            std::string::npos)
      << result.report;
  EXPECT_NE(result.report.find("schedule prefix"), std::string::npos);
  // Both transactions appear with their ops — a replayable counterexample.
  EXPECT_NE(result.report.find("c9#1"), std::string::npos);
  EXPECT_NE(result.report.find("c10#2"), std::string::npos);
  EXPECT_NE(result.report.find("w k5:=\"a\" v1@9"), std::string::npos);
}

TEST(SerializabilityTest, DuplicateVersionStillYieldsCycle) {
  // Same client writes the same key twice from the same stale base: the
  // timestamps collide exactly. Integrity flags the duplicate AND the
  // graph still produces a cycle (tie broken by completion order).
  SerializabilityChecker checker({
      make_txn(1, 9, kCommitted, 0, 1, 0, 100,
               {write_op(3, kInitialTimestamp, {1, 9}, "a", 10, 50)}),
      make_txn(2, 9, kCommitted, 2, 3, 200, 300,
               {write_op(3, kInitialTimestamp, {1, 9}, "b", 210, 250)}),
  });
  const CheckResult result = checker.check();
  EXPECT_FALSE(result.ok);
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_NE(result.violations[0].find("duplicate version v1@9"),
            std::string::npos);
  EXPECT_EQ(result.cycle.size(), 2u);
}

TEST(SerializabilityTest, DirtyReadOfAbortedWriteFlagged) {
  SerializabilityChecker checker({
      make_txn(1, 9, kAborted, 0, 1, 0, 100,
               {write_op(4, kInitialTimestamp, {1, 9}, "ghost", 10, 50)}),
      make_txn(2, 10, kCommitted, 2, 3, 200, 300,
               {read_op(4, {1, 9}, "ghost", 210, 250)}),
  });
  const CheckResult result = checker.check();
  EXPECT_FALSE(result.ok);
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_NE(result.violations[0].find("dirty/aborted read"),
            std::string::npos);
}

TEST(SerializabilityTest, ValueMismatchFlagged) {
  SerializabilityChecker checker({
      make_txn(1, 9, kCommitted, 0, 1, 0, 100,
               {write_op(4, kInitialTimestamp, {1, 9}, "right", 10, 50)}),
      make_txn(2, 10, kCommitted, 2, 3, 200, 300,
               {read_op(4, {1, 9}, "wrong", 210, 250)}),
  });
  const CheckResult result = checker.check();
  EXPECT_FALSE(result.ok);
  ASSERT_EQ(result.violations.size(), 1u);
  EXPECT_NE(result.violations[0].find("wrong"), std::string::npos);
  EXPECT_NE(result.violations[0].find("right"), std::string::npos);
}

TEST(SerializabilityTest, MinimizationReportsShortestCycle) {
  // A 3-cycle through wr edges on keys 1..3 plus an independent lost-update
  // 2-cycle on key 9: the counterexample must be the 2-cycle.
  SerializabilityChecker checker({
      // the 3-cycle: T1 -> T2 -> T3 -> T1
      make_txn(1, 1, kCommitted, 0, 10, 0, 100,
               {write_op(1, kInitialTimestamp, {1, 1}, "x", 1, 9),
                read_op(3, {1, 3}, "z", 2, 8)}),
      make_txn(2, 2, kCommitted, 1, 11, 0, 100,
               {read_op(1, {1, 1}, "x", 3, 7),
                write_op(2, kInitialTimestamp, {1, 2}, "y", 4, 6)}),
      make_txn(3, 3, kCommitted, 2, 12, 0, 100,
               {read_op(2, {1, 2}, "y", 3, 7),
                write_op(3, kInitialTimestamp, {1, 3}, "z", 4, 6)}),
      // the 2-cycle on key 9
      make_txn(4, 4, kCommitted, 3, 13, 0, 100,
               {write_op(9, kInitialTimestamp, {1, 4}, "a", 10, 50)}),
      make_txn(5, 5, kCommitted, 4, 14, 0, 100,
               {write_op(9, kInitialTimestamp, {1, 5}, "b", 15, 55)}),
  });
  const CheckResult result = checker.check();
  EXPECT_FALSE(result.ok);
  ASSERT_EQ(result.cycle.size(), 2u);
  const auto in_cycle = [&](std::uint64_t id) {
    return std::find(result.cycle.begin(), result.cycle.end(), id) !=
           result.cycle.end();
  };
  EXPECT_TRUE(in_cycle(4));
  EXPECT_TRUE(in_cycle(5));
}

TEST(SerializabilityTest, BlockedTxnIncludedOnlyWhenObserved) {
  // Observed: the blocked write must be part of the explanation.
  SerializabilityChecker observed({
      make_txn(1, 9, kBlocked, 0, 1, 0, 100,
               {write_op(1, kInitialTimestamp, {1, 9}, "a", 10, 50)}),
      make_txn(2, 10, kCommitted, 2, 3, 200, 300,
               {read_op(1, {1, 9}, "a", 210, 250)}),
  });
  EXPECT_TRUE(observed.check().ok) << observed.check().report;

  // Unobserved: the blocked write is excluded, so a later miss is NOT a
  // dirty read — the history simply ended before the write landed.
  SerializabilityChecker unobserved({
      make_txn(1, 9, kBlocked, 0, 1, 0, 100,
               {write_op(1, kInitialTimestamp, {1, 9}, "a", 10, 50)}),
      make_txn(2, 10, kCommitted, 2, 3, 200, 300,
               {miss_op(1, 210, 250)}),
  });
  EXPECT_TRUE(unobserved.check().ok) << unobserved.check().report;
}

TEST(SerializabilityTest, KeysAreSortedAndDeduplicated) {
  SerializabilityChecker checker({
      make_txn(1, 9, kCommitted, 0, 1, 0, 100,
               {write_op(7, kInitialTimestamp, {1, 9}, "a", 10, 50),
                write_op(2, kInitialTimestamp, {1, 9}, "b", 10, 50)}),
      make_txn(2, 10, kCommitted, 2, 3, 200, 300,
               {miss_op(2, 210, 250)}),
  });
  EXPECT_EQ(checker.keys(), (std::vector<Key>{2, 7}));
}

// -- linearizability -------------------------------------------------------

TEST(LinearizabilityTest, StaleReadPassesGraphButFailsLin) {
  // The write completed (all acks) at t=100; the read started at t=200 and
  // still missed. As a dependency graph this is acyclic (reader simply
  // serializes before the writer) — but it is NOT linearizable, which is
  // exactly the anomaly class the Wing–Gong pass adds.
  SerializabilityChecker checker({
      make_txn(1, 9, kCommitted, 0, 1, 0, 100,
               {write_op(1, kInitialTimestamp, {1, 9}, "a", 10, 50)}),
      make_txn(2, 10, kCommitted, 2, 3, 200, 300,
               {miss_op(1, 210, 250)}),
  });
  EXPECT_TRUE(checker.check().ok);
  const LinResult lin = checker.check_key_linearizable(1);
  EXPECT_FALSE(lin.ok);
  EXPECT_FALSE(lin.skipped);
  EXPECT_NE(lin.report.find("LINEARIZABILITY VIOLATION"), std::string::npos);
  EXPECT_NE(lin.report.find("r k1=miss"), std::string::npos);
}

TEST(LinearizabilityTest, ConcurrentReadMaySeeEitherState) {
  // Read overlaps the write in real time: both a miss and a hit linearize.
  SerializabilityChecker miss_side({
      make_txn(1, 9, kCommitted, 0, 1, 0, 100,
               {write_op(1, kInitialTimestamp, {1, 9}, "a", 10, 50)}),
      make_txn(2, 10, kCommitted, 2, 3, 20, 60, {miss_op(1, 30, 55)}),
  });
  EXPECT_TRUE(miss_side.check_key_linearizable(1).ok);

  SerializabilityChecker hit_side({
      make_txn(1, 9, kCommitted, 0, 1, 0, 100,
               {write_op(1, kInitialTimestamp, {1, 9}, "a", 10, 50)}),
      make_txn(2, 10, kCommitted, 2, 3, 20, 60,
               {read_op(1, {1, 9}, "a", 30, 55)}),
  });
  EXPECT_TRUE(hit_side.check_key_linearizable(1).ok);
}

TEST(LinearizabilityTest, SequentialChainOfVersionsIsLinearizable) {
  SerializabilityChecker checker({
      make_txn(1, 9, kCommitted, 0, 1, 0, 50,
               {write_op(1, kInitialTimestamp, {1, 9}, "a", 5, 40)}),
      make_txn(2, 10, kCommitted, 2, 3, 100, 150,
               {write_op(1, {1, 9}, {2, 10}, "b", 105, 140)}),
      make_txn(3, 11, kCommitted, 4, 5, 200, 250,
               {read_op(1, {2, 10}, "b", 205, 240)}),
  });
  EXPECT_TRUE(checker.check().ok);
  EXPECT_TRUE(checker.check_key_linearizable(1).ok);
}

TEST(LinearizabilityTest, SkipsOversizedSubHistories) {
  std::vector<HistoryTxn> txns;
  for (std::uint64_t i = 0; i < 4; ++i) {
    txns.push_back(make_txn(
        i + 1, 9, kCommitted, 2 * i, 2 * i + 1, 100 * i, 100 * i + 50,
        {write_op(1, i == 0 ? kInitialTimestamp : Timestamp{i, 9},
                  {i + 1, 9}, "v" + std::to_string(i), 100 * i + 5,
                  100 * i + 40)}));
  }
  SerializabilityChecker checker(std::move(txns));
  const LinResult lin = checker.check_key_linearizable(1, 3);
  EXPECT_TRUE(lin.skipped);
  EXPECT_FALSE(checker.check_key_linearizable(1, 8).skipped);
  EXPECT_TRUE(checker.check_key_linearizable(1, 8).ok);
}

TEST(LinearizabilityTest, BlockedWriteIsOptional) {
  // A blocked write may or may not have taken effect; both observations
  // below must linearize.
  SerializabilityChecker seen({
      make_txn(1, 9, kBlocked, 0, 1, 0, 100,
               {write_op(1, kInitialTimestamp, {1, 9}, "a", 10, 50)}),
      make_txn(2, 10, kCommitted, 2, 3, 200, 300,
               {read_op(1, {1, 9}, "a", 210, 250)}),
  });
  EXPECT_TRUE(seen.check_key_linearizable(1).ok);

  SerializabilityChecker unseen({
      make_txn(1, 9, kBlocked, 0, 1, 0, 100,
               {write_op(1, kInitialTimestamp, {1, 9}, "a", 10, 50)}),
      make_txn(2, 10, kCommitted, 2, 3, 200, 300, {miss_op(1, 210, 250)}),
  });
  EXPECT_TRUE(unseen.check_key_linearizable(1).ok);
}

}  // namespace
}  // namespace atrcp
