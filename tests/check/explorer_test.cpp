// ScheduleExplorer: the teeth test (BrokenIntersectionProtocol must be
// flagged with a cycle counterexample within the seed budget), real
// protocols staying green under nemesis schedules, and byte-for-byte
// reproducibility of reports. Labeled tier2: these are sweep tests.
#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "check/broken.hpp"
#include "check/explorer.hpp"
#include "obs/json_lint.hpp"

namespace atrcp {
namespace {

ScheduleExplorer::ProtocolFactory broken_factory() {
  return [] { return std::make_unique<BrokenIntersectionProtocol>(6); };
}

ZooEntry zoo_entry(const std::string& label) {
  for (const ZooEntry& entry : protocol_zoo()) {
    if (entry.label == label) return entry;
  }
  ADD_FAILURE() << "no zoo entry " << label;
  return {label, broken_factory()};
}

TEST(ExplorerTest, BrokenIntersectionFlaggedWithCycleWithin200Seeds) {
  ScheduleExplorer explorer;
  const ExploreReport report = explorer.explore(
      broken_factory(), "broken", 0, 200, /*stop_at_first_failure=*/true);
  EXPECT_FALSE(report.ok);
  ASSERT_FALSE(report.failing_seeds.empty());
  EXPECT_LT(report.failing_seeds.front(), 200u);
  // The acceptance bar: a CYCLE counterexample, not merely an integrity
  // violation or a linearizability failure.
  EXPECT_NE(report.text.find("dependency cycle"), std::string::npos)
      << report.text;
  EXPECT_NE(report.text.find("schedule prefix"), std::string::npos);
}

TEST(ExplorerTest, FailingSeedCarriesFlightRecorderTrace) {
  ScheduleExplorer explorer;
  const ExploreReport report = explorer.explore(
      broken_factory(), "broken", 0, 200, /*stop_at_first_failure=*/true);
  ASSERT_FALSE(report.ok);
  // The counterexample ships with the offending schedule's full timeline:
  // a valid Chrome trace with causal send->deliver flow events, plus the
  // recorder tail inlined in the report text.
  ASSERT_FALSE(report.first_failure_trace.empty());
  std::string error;
  EXPECT_TRUE(json_valid(report.first_failure_trace, &error)) << error;
  EXPECT_NE(report.first_failure_trace.find("\"ph\":\"s\""),
            std::string::npos);
  EXPECT_NE(report.first_failure_trace.find("\"ph\":\"f\""),
            std::string::npos);
  EXPECT_NE(report.text.find("flight recorder:"), std::string::npos);

  // Turning the recorder off removes the trace but not the verdict.
  ExplorerOptions no_recorder;
  no_recorder.event_bus_capacity = 0;
  const ExploreReport silent = ScheduleExplorer(no_recorder).explore(
      broken_factory(), "broken", 0, 200, /*stop_at_first_failure=*/true);
  ASSERT_FALSE(silent.ok);
  EXPECT_TRUE(silent.first_failure_trace.empty());
  EXPECT_EQ(silent.failing_seeds, report.failing_seeds);
}

TEST(ExplorerTest, RealProtocolsPassSweep) {
  // A slice of the zoo under the default nemesis mix; the full 200-seed
  // all-protocols sweep is the bench/check_explore target.
  ScheduleExplorer explorer;
  for (const ZooEntry& entry : protocol_zoo()) {
    const ExploreReport report =
        explorer.explore(entry.factory, entry.label, 0, 12);
    EXPECT_TRUE(report.ok) << report.text;
    EXPECT_EQ(report.seeds_run, 12u);
  }
}

TEST(ExplorerTest, ReportsAreByteReproducible) {
  ScheduleExplorer explorer;
  // A failing sweep (includes counterexample text) and a passing one.
  const ExploreReport broken_a =
      explorer.explore(broken_factory(), "broken", 0, 20, true);
  const ExploreReport broken_b =
      explorer.explore(broken_factory(), "broken", 0, 20, true);
  EXPECT_EQ(broken_a.text, broken_b.text);
  EXPECT_EQ(broken_a.failing_seeds, broken_b.failing_seeds);

  const ZooEntry majority = zoo_entry("majority");
  const ExploreReport pass_a = explorer.explore(majority.factory, "m", 3, 6);
  const ExploreReport pass_b = explorer.explore(majority.factory, "m", 3, 6);
  EXPECT_TRUE(pass_a.ok);
  EXPECT_EQ(pass_a.text, pass_b.text);
}

TEST(ExplorerTest, SeedsProduceDistinctSchedules) {
  // Different seeds must actually explore different schedules: across a
  // small window, at least two distinct nemesis plans and both read_repair
  // settings should appear.
  ScheduleExplorer explorer;
  const ZooEntry rowa = zoo_entry("rowa");
  std::set<std::string> nemeses;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    nemeses.insert(explorer.run_seed(rowa.factory, seed).nemesis);
  }
  EXPECT_GT(nemeses.size(), 2u);
}

TEST(ExplorerTest, NemesisGenerationIsDeterministicAndHealing) {
  Rng rng_a(42);
  Rng rng_b(42);
  const NemesisSchedule a = NemesisSchedule::generate(rng_a, 5, 4);
  const NemesisSchedule b = NemesisSchedule::generate(rng_b, 5, 4);
  EXPECT_EQ(a.to_string(), b.to_string());
  for (const auto& action : a.actions) {
    EXPECT_GT(action.duration, 0u);  // every fault heals
  }
}

}  // namespace
}  // namespace atrcp
