// The explorer's multi-key (sharded keyspace) mode: the whole protocol zoo
// must pass the merged key-aware check across 100+ seeds, the planted
// BrokenCrossShardRouter must be flagged with a minimized routing
// counterexample, the hot-key remap path must stay clean mid-exploration,
// and reports must be byte-identical at any driver width.
#include <gtest/gtest.h>

#include <string>

#include "check/explorer.hpp"
#include "driver/pool.hpp"

namespace atrcp {
namespace {

ExplorerOptions multikey_options() {
  ExplorerOptions options;
  options.clients = 3;
  options.txns_per_client = 10;
  options.shards = 2;
  options.keyspace_records = 12;
  return options;
}

TEST(ExplorerMultiKey, ZooPassesAcrossSeeds) {
  // 12 protocols x 10 seeds = 120 multi-shard experiments, every one
  // through the merged routing + serializability + per-shard
  // linearizability pipeline.
  const ScheduleExplorer explorer(multikey_options());
  std::size_t total_seeds = 0;
  for (const ZooEntry& entry : protocol_zoo()) {
    const ExploreReport report =
        explorer.explore(entry.factory, entry.label, 0, 10);
    EXPECT_TRUE(report.ok) << report.text;
    total_seeds += report.seeds_run;
  }
  EXPECT_GE(total_seeds, 100u);
}

TEST(ExplorerMultiKey, RemapModeStaysClean) {
  ExplorerOptions options = multikey_options();
  options.remap = true;
  options.txns_per_client = 14;
  options.keyspace_records = 8;  // heavy skew => promotions actually fire
  const ScheduleExplorer explorer(options);
  const ZooEntry arbitrary = protocol_zoo().front();
  ASSERT_EQ(arbitrary.label, "arbitrary_135");
  const ExploreReport report =
      explorer.explore(arbitrary.factory, arbitrary.label, 0, 15);
  EXPECT_TRUE(report.ok) << report.text;
  EXPECT_NE(report.text.find("remap=on"), std::string::npos);
}

TEST(ExplorerMultiKey, BrokenRouterFlaggedWithMinimizedCounterexample) {
  ExplorerOptions options = multikey_options();
  options.broken_router = true;
  // No nemesis: isolate the router fault so the first failing seed's
  // counterexample is purely the routing/serializability violation.
  options.nemesis = false;
  const ScheduleExplorer explorer(options);
  const ZooEntry majority = protocol_zoo()[5];
  ASSERT_EQ(majority.label, "majority");
  const ExploreReport report = explorer.explore(
      majority.factory, "majority+broken_router", 0, 20, true);
  ASSERT_FALSE(report.ok);
  ASSERT_FALSE(report.failing_seeds.empty());
  // The write-splitting router must be caught within a handful of seeds...
  EXPECT_LT(report.failing_seeds.front(), 10u);
  // ...with the minimized routing counterexample in the detail.
  EXPECT_NE(report.text.find("routing violation"), std::string::npos)
      << report.text;
  EXPECT_NE(report.text.find("executed on shard"), std::string::npos);
}

TEST(ExplorerMultiKey, ReportsAreByteIdenticalAcrossDriverWidths) {
  const ScheduleExplorer explorer(multikey_options());
  const ZooEntry entry = protocol_zoo()[4];
  ASSERT_EQ(entry.label, "rowa");
  const ExploreReport serial =
      explorer.explore(entry.factory, entry.label, 0, 16);
  for (const std::size_t jobs : {4u, 8u}) {
    const RunDriver driver(jobs);
    const ExploreReport parallel =
        explorer.explore(entry.factory, entry.label, 0, 16, false, &driver);
    EXPECT_EQ(parallel.text, serial.text) << "jobs=" << jobs;
    EXPECT_EQ(parallel.ok, serial.ok);
  }
}

TEST(ExplorerMultiKey, SeedsAreReproducible) {
  const ScheduleExplorer explorer(multikey_options());
  const ZooEntry entry = protocol_zoo()[6];
  const SeedReport a = explorer.run_seed(entry.factory, 12);
  const SeedReport b = explorer.run_seed(entry.factory, 12);
  EXPECT_EQ(a.line(), b.line());
  EXPECT_EQ(a.detail, b.detail);
  EXPECT_TRUE(a.ok) << a.detail;
}

}  // namespace
}  // namespace atrcp
