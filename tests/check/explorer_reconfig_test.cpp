// ScheduleExplorer reconfiguration nemesis (ExplorerOptions::reconfig):
// every zoo protocol survives online epoch transitions mid-workload —
// including coordinator/manager crashes at every transition phase — the
// planted broken-overlap rule is flagged with a counterexample, and
// reports stay byte-identical across driver widths. Labeled tier2: these
// are sweep tests.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>

#include "check/explorer.hpp"
#include "driver/pool.hpp"
#include "protocols/majority.hpp"

namespace atrcp {
namespace {

ExplorerOptions reconfig_options() {
  ExplorerOptions options;
  options.reconfig = true;
  return options;
}

ScheduleExplorer::ProtocolFactory majority_factory() {
  return [] { return std::make_unique<MajorityQuorum>(5); };
}

TEST(ExplorerReconfigTest, ZooSurvivesReconfigNemesisSweep) {
  // The acceptance sweep: >= 10 seeds x all 12 zoo protocols, each seed
  // running an online transition (half with a manager crash at a drawn
  // phase) on top of the usual crash/partition/degrade nemesis.
  ScheduleExplorer explorer(reconfig_options());
  ASSERT_EQ(protocol_zoo().size(), 12u);
  for (const ZooEntry& entry : protocol_zoo()) {
    const ExploreReport report =
        explorer.explore(entry.factory, entry.label, 0, 10);
    EXPECT_TRUE(report.ok) << entry.label << "\n" << report.text;
    EXPECT_EQ(report.seeds_run, 10u);
    // Every seed line carries its transition plan.
    EXPECT_NE(report.text.find("reconfig="), std::string::npos)
        << entry.label;
  }
}

TEST(ExplorerReconfigTest, CrashNemesisCoversEveryTransitionPhase) {
  // Across a wider single-protocol sweep the drawn crash phases must cover
  // all five transition phases — i.e. the nemesis actually exercises
  // coordinator crashes at each point of the state machine, not just one.
  // Deterministic: the phase draws are a pure function of the seed stream.
  ScheduleExplorer explorer(reconfig_options());
  const ExploreReport report =
      explorer.explore(majority_factory(), "majority", 0, 60);
  EXPECT_TRUE(report.ok) << report.text;
  for (const char* phase :
       {"crash=prepare", "crash=overlap", "crash=sync", "crash=commit",
        "crash=retire"}) {
    EXPECT_NE(report.text.find(phase), std::string::npos)
        << "no seed in the sweep crashed the manager at " << phase;
  }
}

TEST(ExplorerReconfigTest, BrokenOverlapFlaggedWithCounterexample) {
  // The teeth test: with the planted bug (overlap window runs the NEW
  // epoch's quorum rules only and state sync is skipped) some seed must
  // observe a stale read and fail the checkers, with the counterexample
  // attached to the report.
  ExplorerOptions options = reconfig_options();
  options.broken_overlap = true;
  ScheduleExplorer explorer(options);
  const ExploreReport report = explorer.explore(
      majority_factory(), "broken-overlap", 0, 60,
      /*stop_at_first_failure=*/true);
  ASSERT_FALSE(report.ok)
      << "the planted broken-overlap rule was never flagged";
  ASSERT_FALSE(report.failing_seeds.empty());
  EXPECT_LT(report.failing_seeds.front(), 60u);
  // The counterexample names the failing seed and carries checker detail.
  EXPECT_NE(report.text.find("seed=" +
                             std::to_string(report.failing_seeds.front())),
            std::string::npos)
      << report.text;
  EXPECT_NE(report.text.find("FAIL"), std::string::npos);
}

TEST(ExplorerReconfigTest, ReconfigReportsByteIdenticalAcrossJobs) {
  ScheduleExplorer explorer(reconfig_options());
  const RunDriver serial(1);
  const RunDriver wide(4);
  const ExploreReport a = explorer.explore(majority_factory(), "majority", 0,
                                           16, false, &serial);
  const ExploreReport b = explorer.explore(majority_factory(), "majority", 0,
                                           16, false, &wide);
  EXPECT_TRUE(a.ok) << a.text;
  EXPECT_EQ(a.text, b.text);
  EXPECT_EQ(a.failing_seeds, b.failing_seeds);
}

TEST(ExplorerReconfigTest, ReconfigOffLeavesClassicReportsUnchanged) {
  // Digest neutrality: the reconfig seed stream is drawn only in reconfig
  // mode, so classic sweeps produce byte-identical reports whether the
  // field exists or not — guarded here by comparing default options against
  // an explicitly-disabled reconfig option set.
  ExplorerOptions off;
  off.reconfig = false;
  const ExploreReport a = ScheduleExplorer().explore(majority_factory(),
                                                     "majority", 0, 6);
  const ExploreReport b = ScheduleExplorer(off).explore(majority_factory(),
                                                        "majority", 0, 6);
  EXPECT_TRUE(a.ok);
  EXPECT_EQ(a.text, b.text);
  EXPECT_EQ(a.text.find("reconfig="), std::string::npos);
}

}  // namespace
}  // namespace atrcp
