// Golden payload digests for the hotpath bench units (bench/hotpath_units.cpp).
//
// Each unit's shards are pure functions of (shard index, iteration count),
// so the FNV-1a digest of the concatenated payloads is a fingerprint of
// substrate behaviour: scheduler pop order, network delivery order and
// latency draws, quorum assembly RNG streams. These values were captured
// from the pre-overhaul std::map/std::function/make_shared substrate — the
// allocation overhaul must reproduce them bit for bit. A deliberate
// behaviour change (new event source, different latency model) is expected
// to update them, in the same commit, with an EXPERIMENTS.md note.
#include <gtest/gtest.h>

#include <map>
#include <string>

#include "driver/digest.hpp"
#include "hotpath_units.hpp"

namespace atrcp {
namespace {

using benchio::HotpathUnit;
using benchio::hotpath_units;

std::string digest_at_full_iters(const HotpathUnit& unit) {
  std::string payload;
  for (std::size_t shard = 0; shard < unit.shards; ++shard) {
    payload += unit.run(shard, unit.iters).payload;
  }
  return hex64(fnv1a64(payload));
}

TEST(HotpathDigestTest, UnitsMatchPreOverhaulGoldenDigests) {
  const std::map<std::string, std::string> want{
      {"sched_churn", "53d1dba980cf2e7e"},
      {"net_ring", "caf5e62cd8a49671"},
      {"assemble_zoo", "84b4005371f5fe2b"},
  };
  ASSERT_EQ(hotpath_units().size(), want.size());
  for (const HotpathUnit& unit : hotpath_units()) {
    const auto it = want.find(unit.name);
    ASSERT_NE(it, want.end()) << "unexpected unit " << unit.name;
    EXPECT_EQ(digest_at_full_iters(unit), it->second)
        << "behaviour fingerprint changed for unit " << unit.name;
  }
}

TEST(HotpathDigestTest, ShardsArePureFunctionsOfTheirIndex) {
  // The bench_all serial-vs-parallel contract in miniature: re-running a
  // shard must reproduce its payload exactly.
  for (const HotpathUnit& unit : hotpath_units()) {
    const std::uint64_t iters = unit.iters / 50;
    const auto first = unit.run(0, iters);
    const auto again = unit.run(0, iters);
    EXPECT_EQ(first.payload, again.payload) << unit.name;
    EXPECT_EQ(first.committed, again.committed) << unit.name;
  }
}

}  // namespace
}  // namespace atrcp
