// RunDriver unit tests: index-ordered merge, the serial path, work
// stealing under skewed job costs, exception semantics, --jobs parsing and
// the FNV digest helpers.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "driver/digest.hpp"
#include "driver/pool.hpp"

namespace atrcp {
namespace {

TEST(RunDriverTest, DefaultJobsIsAtLeastOne) {
  EXPECT_GE(default_jobs(), 1u);
  EXPECT_EQ(RunDriver(0).jobs(), default_jobs());
  EXPECT_EQ(RunDriver(3).jobs(), 3u);
}

TEST(RunDriverTest, MapReturnsResultsInIndexOrder) {
  const RunDriver driver(4);
  const std::vector<std::size_t> out = driver.map<std::size_t>(
      100, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 100u);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], i * i);
  }
}

TEST(RunDriverTest, EveryJobRunsExactlyOnce) {
  for (const std::size_t jobs : {1u, 2u, 7u, 16u}) {
    const RunDriver driver(jobs);
    std::vector<std::atomic<int>> hits(257);
    driver.for_each(hits.size(),
                    [&hits](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& hit : hits) {
      EXPECT_EQ(hit.load(), 1);
    }
  }
}

TEST(RunDriverTest, SerialAndParallelProduceIdenticalText) {
  auto render = [](std::size_t i) {
    return "job " + std::to_string(i) + "\n";
  };
  const std::vector<std::string> serial = RunDriver(1).map_text(33, render);
  for (const std::size_t jobs : {2u, 8u}) {
    EXPECT_EQ(RunDriver(jobs).map_text(33, render), serial);
  }
}

TEST(RunDriverTest, WorkStealingDrainsSkewedShards) {
  // Shard 0's jobs (round-robin indices 0, 4, 8, ...) are slow; the other
  // workers must steal them rather than idle, and every result must still
  // land in its own slot.
  const RunDriver driver(4);
  const std::vector<std::size_t> out = driver.map<std::size_t>(
      32, [](std::size_t i) {
        if (i % 4 == 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        return i + 1;
      });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], i + 1);
  }
}

TEST(RunDriverTest, FirstExceptionByJobIndexPropagates) {
  // Both the serial loop (stops at the lowest throwing index) and the
  // threaded pool (runs everything, keeps the lowest-index exception)
  // surface the same failure.
  for (const std::size_t jobs : {1u, 4u}) {
    const RunDriver driver(jobs);
    try {
      driver.for_each(50, [](std::size_t i) {
        if (i == 5 || i == 37) {
          throw std::runtime_error("job " + std::to_string(i));
        }
      });
      FAIL() << "expected an exception at jobs=" << jobs;
    } catch (const std::runtime_error& error) {
      EXPECT_STREQ(error.what(), "job 5");
    }
  }
}

TEST(RunDriverTest, ZeroJobsIsANoOp) {
  const RunDriver driver(8);
  bool ran = false;
  driver.for_each(0, [&ran](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

std::size_t parse(std::vector<std::string> args, std::vector<std::string>* rest) {
  std::vector<std::string> storage = std::move(args);
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>("prog"));
  for (std::string& arg : storage) argv.push_back(arg.data());
  argv.push_back(nullptr);
  int argc = static_cast<int>(argv.size()) - 1;
  const std::size_t jobs = parse_jobs_flag(argc, argv.data());
  if (rest != nullptr) {
    rest->clear();
    for (int i = 1; i < argc; ++i) rest->push_back(argv[static_cast<std::size_t>(i)]);
  }
  return jobs;
}

TEST(ParseJobsFlagTest, SpacedFormConsumesBothTokens) {
  std::vector<std::string> rest;
  EXPECT_EQ(parse({"--jobs", "4", "--color"}, &rest), 4u);
  EXPECT_EQ(rest, std::vector<std::string>{"--color"});
}

TEST(ParseJobsFlagTest, EqualsFormConsumesOneToken) {
  std::vector<std::string> rest;
  EXPECT_EQ(parse({"--benchmark_filter=x", "--jobs=16"}, &rest), 16u);
  EXPECT_EQ(rest, std::vector<std::string>{"--benchmark_filter=x"});
}

TEST(ParseJobsFlagTest, AbsentFlagFallsBackToDefault) {
  std::vector<std::string> rest;
  EXPECT_EQ(parse({"--unrelated"}, &rest), default_jobs());
  EXPECT_EQ(rest, std::vector<std::string>{"--unrelated"});
}

// parse_jobs_flag die()s on malformed input (exit 2), so the reject paths
// are covered through parse_jobs_value — the same validator it calls.
TEST(ParseJobsValueTest, AcceptsPlainPositiveIntegers) {
  std::string error;
  EXPECT_EQ(parse_jobs_value("1", &error), 1u);
  EXPECT_EQ(parse_jobs_value("16", &error), 16u);
  EXPECT_EQ(parse_jobs_value("4096", &error), kMaxJobs);
  EXPECT_TRUE(error.empty());
}

TEST(ParseJobsValueTest, RejectsZero) {
  std::string error;
  EXPECT_EQ(parse_jobs_value("0", &error), 0u);
  EXPECT_NE(error.find("at least 1"), std::string::npos) << error;
}

TEST(ParseJobsValueTest, RejectsGarbage) {
  for (const char* bad : {"", "  ", "abc", "4x", "x4", "-2", "+3", "3.5"}) {
    std::string error;
    EXPECT_EQ(parse_jobs_value(bad, &error), 0u) << "input: '" << bad << "'";
    EXPECT_FALSE(error.empty()) << "input: '" << bad << "'";
  }
}

TEST(ParseJobsValueTest, RejectsOverflow) {
  for (const char* huge : {"4097", "99999", "18446744073709551616",
                           "99999999999999999999999999"}) {
    std::string error;
    EXPECT_EQ(parse_jobs_value(huge, &error), 0u) << "input: '" << huge << "'";
    EXPECT_NE(error.find("out of range"), std::string::npos)
        << "input: '" << huge << "' error: " << error;
  }
}

TEST(RunStatsTest, SerialRunReportsOneWorkerAndEveryJob) {
  RunStats stats;
  RunDriver(1).for_each(12, [](std::size_t) {}, &stats);
  EXPECT_EQ(stats.workers, 1u);
  EXPECT_EQ(stats.jobs_run, 12u);
  EXPECT_EQ(stats.steals, 0u);
}

TEST(RunStatsTest, ParallelRunAccountsForEveryJobAndClampsWorkers) {
  RunStats stats;
  RunDriver(4).for_each(64, [](std::size_t) {}, &stats);
  EXPECT_EQ(stats.jobs_run, 64u);
  EXPECT_GE(stats.chunk_claims, 1u);
  EXPECT_GE(stats.workers, 1u);
  const std::size_t hw = std::thread::hardware_concurrency();
  if (hw != 0) {
    // The oversubscription fix: never more threads than cores, even when
    // the caller asked for more.
    EXPECT_LE(stats.workers, hw < 4u ? hw : 4u);
  }
}

TEST(DigestTest, Fnv1a64MatchesKnownVectors) {
  EXPECT_EQ(fnv1a64(""), 0xCBF29CE484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xAF63DC4C8601EC8CULL);
  EXPECT_NE(fnv1a64("payload A"), fnv1a64("payload B"));
}

TEST(DigestTest, Hex64IsFixedWidthLowercase) {
  EXPECT_EQ(hex64(0), "0000000000000000");
  EXPECT_EQ(hex64(0xCBF29CE484222325ULL), "cbf29ce484222325");
}

}  // namespace
}  // namespace atrcp
