// Driver determinism regression suite: the same sweep at --jobs 1, 2 and 8
// must be byte-identical — report text, failing seeds, shard payloads,
// merged metrics snapshots. This is the contract bench_all and the CI TSan
// job enforce; if a test here fails, some shard stopped being a pure
// function of its index.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "check/broken.hpp"
#include "check/explorer.hpp"
#include "driver/pool.hpp"
#include "obs/json_lint.hpp"
#include "obs/metrics.hpp"
#include "suite.hpp"

namespace atrcp {
namespace {

TEST(DriverDeterminism, ExplorerSweepByteIdenticalAcrossJobs) {
  const ScheduleExplorer explorer;
  const std::vector<ZooEntry> zoo = protocol_zoo();
  ASSERT_FALSE(zoo.empty());
  const ZooEntry& entry = zoo.front();

  const ExploreReport serial =
      explorer.explore(entry.factory, entry.label, 0, 10);
  EXPECT_EQ(serial.seeds_run, 10u);
  for (const std::size_t jobs : {1u, 2u, 8u}) {
    const RunDriver driver(jobs);
    const ExploreReport sharded =
        explorer.explore(entry.factory, entry.label, 0, 10, false, &driver);
    EXPECT_EQ(sharded.text, serial.text) << "jobs=" << jobs;
    EXPECT_EQ(sharded.ok, serial.ok) << "jobs=" << jobs;
    EXPECT_EQ(sharded.seeds_run, serial.seeds_run) << "jobs=" << jobs;
    EXPECT_EQ(sharded.failing_seeds, serial.failing_seeds) << "jobs=" << jobs;
  }
}

TEST(DriverDeterminism, StopAtFirstFailureMatchesSerialUnderSpeculation) {
  // The broken protocol fails at seed 0. A parallel sweep speculatively
  // runs later seeds, then must discard them and end the report exactly
  // where the serial sweep does.
  const ScheduleExplorer explorer;
  const auto factory = [] {
    return std::make_unique<BrokenIntersectionProtocol>(6);
  };
  const ExploreReport serial =
      explorer.explore(factory, "broken", 0, 16, /*stop_at_first_failure=*/true);
  ASSERT_FALSE(serial.ok);
  for (const std::size_t jobs : {2u, 8u}) {
    const RunDriver driver(jobs);
    const ExploreReport sharded = explorer.explore(
        factory, "broken", 0, 16, /*stop_at_first_failure=*/true, &driver);
    EXPECT_EQ(sharded.text, serial.text) << "jobs=" << jobs;
    EXPECT_EQ(sharded.failing_seeds, serial.failing_seeds) << "jobs=" << jobs;
    EXPECT_EQ(sharded.first_failure_trace, serial.first_failure_trace)
        << "jobs=" << jobs;
  }
}

std::string merged_payload(const RunDriver& driver, std::size_t shards) {
  const std::vector<benchio::ShardResult> results =
      driver.map<benchio::ShardResult>(shards, benchio::throughput_shard);
  std::string payload;
  for (const benchio::ShardResult& shard : results) payload += shard.payload;
  return payload;
}

TEST(DriverDeterminism, ThroughputShardsByteIdenticalAcrossJobs) {
  const std::string serial = merged_payload(RunDriver(1), 6);
  EXPECT_EQ(merged_payload(RunDriver(2), 6), serial);
  EXPECT_EQ(merged_payload(RunDriver(8), 6), serial);
}

TEST(DriverDeterminism, AnalyticPointsByteIdenticalAcrossJobs) {
  for (const std::size_t jobs : {2u, 8u}) {
    const RunDriver driver(jobs);
    const std::vector<benchio::ShardResult> sharded =
        driver.map<benchio::ShardResult>(benchio::psweep_point_count(),
                                         benchio::psweep_point);
    for (std::size_t i = 0; i < sharded.size(); ++i) {
      EXPECT_EQ(sharded[i].payload, benchio::psweep_point(i).payload)
          << "point " << i << " jobs=" << jobs;
    }
  }
}

TEST(DriverDeterminism, Table1MetricsBlockLintsAndIsStable) {
  const benchio::ShardResult first = benchio::table1_metrics_block();
  const benchio::ShardResult second = benchio::table1_metrics_block();
  EXPECT_EQ(first.payload, second.payload);
  std::string error;
  // The payload is "metrics-block JSON\n"-style text ending in newline;
  // lint the JSON itself.
  const std::string json = first.payload;
  EXPECT_TRUE(json_valid(json.substr(0, json.find_last_not_of('\n') + 1),
                         &error))
      << error;
}

TEST(MetricsMerge, HistogramMergeFoldsPopulations) {
  Histogram a({10, 100, 1000});
  Histogram b({10, 100, 1000});
  a.record(5);
  a.record(50);
  b.record(500);
  b.record(5000);  // overflow
  b.record(7);

  Histogram merged({10, 100, 1000});
  merged.merge_from(a);
  merged.merge_from(b);
  EXPECT_EQ(merged.count(), 5u);
  EXPECT_EQ(merged.sum(), 5u + 50 + 500 + 5000 + 7);
  EXPECT_EQ(merged.min(), 5u);
  EXPECT_EQ(merged.max(), 5000u);
  EXPECT_EQ(merged.bucket_counts(), (std::vector<std::uint64_t>{2, 1, 1}));
  EXPECT_EQ(merged.overflow(), 1u);

  Histogram mismatched({1, 2});
  EXPECT_THROW(merged.merge_from(mismatched), std::invalid_argument);
}

TEST(MetricsMerge, RegistryMergeMatchesSingleRegistry) {
  // Feeding N shard registries and merging them in shard order must
  // serialize identically to feeding one registry everything.
  MetricsRegistry expected;
  MetricsRegistry shard_merged;
  std::vector<MetricsRegistry> shards(3);
  for (std::size_t s = 0; s < shards.size(); ++s) {
    for (std::uint64_t i = 0; i <= s; ++i) {
      shards[s].counter("txn.committed").inc(s + 1);
      expected.counter("txn.committed").inc(s + 1);
      shards[s].gauge("load.share").add(0.125);
      expected.gauge("load.share").add(0.125);
      shards[s]
          .histogram("latency", MetricsRegistry::latency_bounds_us())
          .record(100 * (s + 1));
      expected.histogram("latency", MetricsRegistry::latency_bounds_us())
          .record(100 * (s + 1));
    }
  }
  for (const MetricsRegistry& shard : shards) shard_merged.merge_from(shard);
  EXPECT_EQ(shard_merged.to_json_string(), expected.to_json_string());
}

}  // namespace
}  // namespace atrcp
