// Scaling regression gate: a fixed mini-suite of real bench shards run at
// --jobs 1/2/4 must (a) merge to byte-identical payloads at every worker
// count and (b) not get SLOWER when given more workers — the `--jobs 4`
// pessimization this repo once shipped (EXPERIMENTS.md E20) must never
// silently return. The wall-clock floor is deliberately generous (parallel
// within 1.0x of serial, best-of-N on both sides) so loaded CI boxes and
// small-core hosts don't flake; catching a 10% slowdown is not the goal,
// catching "parallel is outright slower" is.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "driver/pool.hpp"
#include "suite.hpp"

namespace atrcp {
namespace {

using benchio::ShardResult;

/// The mini-suite: one shard function, several independent simulated
/// clusters — big enough (~tens of ms per shard) that scheduling overhead
/// cannot dominate, small enough to keep the tier-1 gate fast.
constexpr std::size_t kShards = 6;

std::string merged(const RunDriver& driver, RunStats* stats = nullptr) {
  const std::vector<ShardResult> results = driver.map<ShardResult>(
      kShards, benchio::throughput_shard, stats);
  std::string payload;
  for (const ShardResult& shard : results) payload += shard.payload;
  return payload;
}

double best_of(int tries, const RunDriver& driver) {
  double best = 1e300;
  for (int i = 0; i < tries; ++i) {
    const auto start = std::chrono::steady_clock::now();
    merged(driver);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    best = std::min(best, ms);
  }
  return best;
}

TEST(ScalingRegression, PayloadsByteIdenticalAtJobs124) {
  const std::string serial = merged(RunDriver(1));
  ASSERT_FALSE(serial.empty());
  for (const std::size_t jobs : {2u, 4u}) {
    EXPECT_EQ(merged(RunDriver(jobs)), serial) << "jobs=" << jobs;
  }
}

TEST(ScalingRegression, SchedulerCountersAccountForEveryJob) {
  RunStats stats;
  merged(RunDriver(4), &stats);
  EXPECT_EQ(stats.jobs_run, kShards);
  EXPECT_GE(stats.workers, 1u);
  // Never more threads than the machine can run (the oversubscription fix):
  // the clamp only applies when the topology is known.
  const std::size_t hw = std::thread::hardware_concurrency();
  if (hw != 0) {
    EXPECT_LE(stats.workers, std::max<std::size_t>(hw, 1));
  }
  EXPECT_GE(stats.chunk_claims, 1u);
}

TEST(ScalingRegression, Jobs4NotSlowerThanSerial) {
  // Warm up allocators and code paths once so neither side pays first-run
  // costs, then compare best-of-3 (best-of filters scheduler noise on
  // shared CI hardware).
  merged(RunDriver(1));
  const double serial_ms = best_of(3, RunDriver(1));
  const double parallel_ms = best_of(3, RunDriver(4));
  // Generous 1.0x floor with 25% tolerance: fail only when parallel is
  // clearly, reproducibly slower than serial.
  EXPECT_LE(parallel_ms, serial_ms * 1.25)
      << "jobs=4 best-of-3 " << parallel_ms << "ms vs serial " << serial_ms
      << "ms — the parallel driver is a pessimization again";
}

}  // namespace
}  // namespace atrcp
