// End-to-end coordinator behaviour over a simulated cluster: quorum reads
// and writes, version chaining, 2PC outcomes (commit / abort / blocked),
// lock interaction and failure handling.
#include "txn/coordinator.hpp"

#include <gtest/gtest.h>

#include "core/config.hpp"
#include "core/quorums.hpp"
#include "txn/cluster.hpp"

namespace atrcp {
namespace {

ClusterOptions quiet_options(std::size_t clients = 1) {
  ClusterOptions options;
  options.clients = clients;
  options.link = LinkParams{.base_latency = 10, .jitter = 0};
  return options;
}

std::unique_ptr<ArbitraryProtocol> paper_protocol() {
  return std::make_unique<ArbitraryProtocol>(ArbitraryTree::from_spec("1-3-5"));
}

TEST(CoordinatorTest, ReadOfUnwrittenKeyCommitsWithNoValue) {
  Cluster cluster(paper_protocol(), quiet_options());
  const auto value = cluster.read_sync(0, 42);
  EXPECT_FALSE(value.has_value());
  EXPECT_EQ(cluster.client(0).committed(), 1u);
}

TEST(CoordinatorTest, WriteThenReadRoundTrips) {
  Cluster cluster(paper_protocol(), quiet_options());
  EXPECT_EQ(cluster.write_sync(0, 1, "hello"), TxnOutcome::kCommitted);
  const auto value = cluster.read_sync(0, 1);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->value, "hello");
  EXPECT_EQ(value->timestamp.version, 1u);
}

TEST(CoordinatorTest, VersionsIncrementAcrossWrites) {
  Cluster cluster(paper_protocol(), quiet_options());
  for (std::uint64_t i = 1; i <= 5; ++i) {
    EXPECT_EQ(cluster.write_sync(0, 7, "v" + std::to_string(i)),
              TxnOutcome::kCommitted);
    const auto value = cluster.read_sync(0, 7);
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(value->value, "v" + std::to_string(i));
    EXPECT_EQ(value->timestamp.version, i);
  }
}

TEST(CoordinatorTest, WriteLandsOnExactlyOneLevel) {
  Cluster cluster(paper_protocol(), quiet_options());
  ASSERT_EQ(cluster.write_sync(0, 3, "x"), TxnOutcome::kCommitted);
  // The write quorum is one whole physical level: either replicas {0,1,2}
  // or {3..7}. Count replicas holding the key.
  std::size_t holders = 0;
  bool level1_full = true;
  bool level2_full = true;
  for (ReplicaId r = 0; r < 8; ++r) {
    const bool has = cluster.server(r).store().get(3).has_value();
    holders += has ? 1 : 0;
    if (r < 3 && !has) level1_full = false;
    if (r >= 3 && !has) level2_full = false;
  }
  EXPECT_TRUE((holders == 3 && level1_full) || (holders == 5 && level2_full));
}

TEST(CoordinatorTest, ReadFindsWriteOnEitherLevel) {
  // The bicoterie in action: wherever the write landed, every read quorum
  // crosses it. Many rounds with different rng draws.
  Cluster cluster(paper_protocol(), quiet_options());
  ASSERT_EQ(cluster.write_sync(0, 9, "seen"), TxnOutcome::kCommitted);
  for (int i = 0; i < 20; ++i) {
    const auto value = cluster.read_sync(0, 9);
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(value->value, "seen");
  }
}

TEST(CoordinatorTest, MultiOpTransaction) {
  Cluster cluster(paper_protocol(), quiet_options());
  ASSERT_EQ(cluster.write_sync(0, 1, "one"), TxnOutcome::kCommitted);
  const TxnResult result = cluster.run_sync(
      0, {TxnOp::read(1), TxnOp::write(2, "two"), TxnOp::read(2)});
  EXPECT_EQ(result.outcome, TxnOutcome::kCommitted);
  ASSERT_EQ(result.reads.size(), 3u);
  ASSERT_TRUE(result.reads[0].has_value());
  EXPECT_EQ(result.reads[0]->value, "one");
  EXPECT_FALSE(result.reads[1].has_value());  // writes report no value
  // Deferred-update semantics: the transaction's own buffered write is NOT
  // visible to its later reads (it commits at the end).
  EXPECT_FALSE(result.reads[2].has_value());
  // After commit the write is visible to everyone.
  const auto value = cluster.read_sync(0, 2);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->value, "two");
}

TEST(CoordinatorTest, ChainedWritesInOneTransaction) {
  Cluster cluster(paper_protocol(), quiet_options());
  const TxnResult result = cluster.run_sync(
      0, {TxnOp::write(5, "first"), TxnOp::write(5, "second")});
  EXPECT_EQ(result.outcome, TxnOutcome::kCommitted);
  const auto value = cluster.read_sync(0, 5);
  ASSERT_TRUE(value.has_value());
  // The second write must win: its version chains past the first.
  EXPECT_EQ(value->value, "second");
  EXPECT_EQ(value->timestamp.version, 2u);
}

TEST(CoordinatorTest, ReadAbortsWhenALevelIsDead) {
  Cluster cluster(paper_protocol(), quiet_options());
  // Kill all of physical level 1 (replicas 0..2): reads need every level.
  for (ReplicaId r = 0; r < 3; ++r) cluster.injector().crash_now(r);
  const auto value = cluster.read_sync(0, 1);
  EXPECT_FALSE(value.has_value());
  EXPECT_EQ(cluster.client(0).aborted(), 1u);
}

TEST(CoordinatorTest, WritesSurviveOneDeadLevelReadsDont) {
  Cluster cluster(paper_protocol(), quiet_options());
  for (ReplicaId r = 0; r < 3; ++r) cluster.injector().crash_now(r);
  // Writes can still target level 2 — but the version pre-read needs a
  // read quorum, which is dead. The paper's write therefore aborts too;
  // this asymmetry is inherent to version-discovering writes.
  EXPECT_EQ(cluster.write_sync(0, 1, "x"), TxnOutcome::kAborted);
}

TEST(CoordinatorTest, WriteAbortsWhenNoLevelFullyAlive) {
  Cluster cluster(paper_protocol(), quiet_options());
  cluster.injector().crash_now(0);  // hole in level 1
  cluster.injector().crash_now(7);  // hole in level 2
  EXPECT_EQ(cluster.write_sync(0, 1, "x"), TxnOutcome::kAborted);
  // Reads still fine.
  EXPECT_EQ(cluster.client(0).aborted(), 1u);
  cluster.read_sync(0, 1);
  EXPECT_EQ(cluster.client(0).committed(), 1u);
}

TEST(CoordinatorTest, WriteSucceedsWithPartialFailuresLeavingAFullLevel) {
  Cluster cluster(paper_protocol(), quiet_options());
  cluster.injector().crash_now(4);  // level 2 broken, level 1 intact
  EXPECT_EQ(cluster.write_sync(0, 1, "x"), TxnOutcome::kCommitted);
  // The write must have landed on level 1.
  for (ReplicaId r = 0; r < 3; ++r) {
    EXPECT_TRUE(cluster.server(r).store().get(1).has_value());
  }
}

TEST(CoordinatorTest, RecoveryRestoresFullOperation) {
  Cluster cluster(paper_protocol(), quiet_options());
  for (ReplicaId r = 0; r < 3; ++r) cluster.injector().crash_now(r);
  EXPECT_EQ(cluster.write_sync(0, 1, "x"), TxnOutcome::kAborted);
  for (ReplicaId r = 0; r < 3; ++r) cluster.injector().recover_now(r);
  EXPECT_EQ(cluster.write_sync(0, 1, "x"), TxnOutcome::kCommitted);
}

TEST(CoordinatorTest, BlockedWhenParticipantDiesBeforeCommitDelivery) {
  // Two replicas in one level: write quorum = both. Crash one between its
  // yes-vote and the commit's arrival: the decision is commit, the ack
  // never comes, the outcome is kBlocked and the prepared write survives
  // on the crashed participant's stable log.
  ClusterOptions options = quiet_options();
  options.coordinator.commit_retry_interval = 50;
  options.coordinator.max_commit_retries = 3;
  Cluster cluster(make_mostly_read(2), options);
  // Timeline (latency 10): version req 0->10, reply ->20; prepare ->30,
  // votes ->40; commit sent at 40, arrives 50. Crash replica 1 at t=45.
  cluster.injector().crash_at(45, 1);
  const TxnOutcome outcome = cluster.write_sync(0, 1, "ghost");
  EXPECT_EQ(outcome, TxnOutcome::kBlocked);
  EXPECT_EQ(cluster.server(1).prepared_count(), 1u);  // stable log holds it
  EXPECT_TRUE(cluster.server(0).store().get(1).has_value());  // applied there
}

TEST(CoordinatorTest, CommitRetransmissionCompletesAfterTransientCrash) {
  // Same timeline as the kBlocked test, but the participant recovers while
  // the coordinator is still retransmitting: the retried Commit applies the
  // stable prepared write and the transaction completes as kCommitted.
  ClusterOptions options = quiet_options();
  options.coordinator.commit_retry_interval = 50;
  options.coordinator.max_commit_retries = 20;
  Cluster cluster(make_mostly_read(2), options);
  cluster.injector().crash_at(45, 1);     // loses the first Commit (t=50)
  cluster.injector().recover_at(200, 1);  // back before retries run out
  const TxnOutcome outcome = cluster.write_sync(0, 1, "durable");
  EXPECT_EQ(outcome, TxnOutcome::kCommitted);
  // Both participants applied it, including the one that crashed.
  for (ReplicaId r = 0; r < 2; ++r) {
    ASSERT_TRUE(cluster.server(r).store().get(1).has_value()) << "r=" << r;
    EXPECT_EQ(cluster.server(r).store().get(1)->value, "durable");
  }
  EXPECT_EQ(cluster.server(1).prepared_count(), 0u);
}

TEST(CoordinatorTest, LockTimeoutAbortsStuckTransaction) {
  ClusterOptions options = quiet_options();
  options.coordinator.lock_timeout = 500;
  Cluster cluster(paper_protocol(), options);
  // An external lock holder that never releases (simulates a stuck peer).
  cluster.locks().acquire(/*txn=*/0xDEAD, /*key=*/1, LockMode::kExclusive,
                          [] {});
  const TxnResult result = cluster.run_sync(0, {TxnOp::write(1, "x")});
  EXPECT_EQ(result.outcome, TxnOutcome::kAborted);
  EXPECT_NE(result.abort_reason.find("lock timeout"), std::string::npos);
}

TEST(CoordinatorTest, TwoClientsSerializeOnTheSameKey) {
  Cluster cluster(paper_protocol(), quiet_options(/*clients=*/2));
  TxnResult r0;
  TxnResult r1;
  bool done0 = false;
  bool done1 = false;
  cluster.client(0).run({TxnOp::write(1, "from0")}, [&](TxnResult r) {
    r0 = std::move(r);
    done0 = true;
  });
  cluster.client(1).run({TxnOp::write(1, "from1")}, [&](TxnResult r) {
    r1 = std::move(r);
    done1 = true;
  });
  cluster.settle();
  ASSERT_TRUE(done0 && done1);
  EXPECT_EQ(r0.outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(r1.outcome, TxnOutcome::kCommitted);
  // Serialized by the lock manager: versions must be 1 and 2, and the
  // final value is the second writer's.
  const auto value = cluster.read_sync(0, 1);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->timestamp.version, 2u);
}

TEST(CoordinatorTest, ManyClientsManyKeys) {
  Cluster cluster(paper_protocol(), quiet_options(/*clients=*/4));
  int committed = 0;
  for (std::size_t c = 0; c < 4; ++c) {
    for (Key k = 0; k < 5; ++k) {
      cluster.client(c).run(
          {TxnOp::write(k, "c" + std::to_string(c))},
          [&](TxnResult r) {
            committed += r.outcome == TxnOutcome::kCommitted ? 1 : 0;
          });
    }
  }
  cluster.settle();
  EXPECT_EQ(committed, 20);
  // Every key holds version 4 (four writers each).
  for (Key k = 0; k < 5; ++k) {
    const auto value = cluster.read_sync(0, k);
    ASSERT_TRUE(value.has_value()) << "key " << k;
    EXPECT_EQ(value->timestamp.version, 4u) << "key " << k;
  }
}

TEST(CoordinatorTest, StatisticsAreConsistent) {
  Cluster cluster(paper_protocol(), quiet_options());
  cluster.write_sync(0, 1, "a");
  cluster.read_sync(0, 1);
  cluster.injector().crash_now(0);
  cluster.injector().crash_now(7);
  cluster.write_sync(0, 1, "b");
  EXPECT_EQ(cluster.client(0).committed(), 2u);
  EXPECT_EQ(cluster.client(0).aborted(), 1u);
  EXPECT_EQ(cluster.client(0).in_flight(), 0u);
}

}  // namespace
}  // namespace atrcp
