// Heartbeat failure detector: detection latency, rehabilitation, false
// suspicion under message loss, and end-to-end use as a coordinator's
// failure view (replacing the omniscient oracle).
#include "txn/detector.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "core/quorums.hpp"
#include "replica/server.hpp"
#include "txn/cluster.hpp"

namespace atrcp {
namespace {

/// A miniature rig: n replica servers + the detector on its own site.
class DetectorRig {
 public:
  explicit DetectorRig(std::size_t n, DetectorOptions options = {},
                       LinkParams link = {.base_latency = 100, .jitter = 0})
      : network_(scheduler_, Rng(5), link) {
    for (std::size_t r = 0; r < n; ++r) {
      servers_.push_back(std::make_unique<ReplicaServer>(network_));
      const SiteId site = network_.add_site(*servers_.back());
      servers_.back()->set_site(site);
    }
    detector_ =
        std::make_unique<HeartbeatDetector>(network_, scheduler_, n, options);
    detector_->set_site(network_.add_site(*detector_));
    detector_->start();
  }

  Scheduler scheduler_;
  Network network_;
  std::vector<std::unique_ptr<ReplicaServer>> servers_;
  std::unique_ptr<HeartbeatDetector> detector_;
};

TEST(HeartbeatDetectorTest, HealthyReplicasStayTrusted) {
  DetectorRig rig(4);
  rig.scheduler_.run_until(100'000);
  EXPECT_GT(rig.detector_->rounds(), 10u);
  EXPECT_EQ(rig.detector_->suspicions(), 0u);
  for (ReplicaId r = 0; r < 4; ++r) {
    EXPECT_TRUE(rig.detector_->view().is_alive(r));
  }
}

TEST(HeartbeatDetectorTest, CrashDetectedWithinBudget) {
  DetectorOptions options;
  options.interval = 5'000;
  options.suspect_after = 3;
  DetectorRig rig(4, options);
  rig.scheduler_.run_until(50'000);
  rig.network_.set_up(2, false);  // silent crash, nobody tells the detector
  // Suspicion must land within (suspect_after + 2) intervals.
  rig.scheduler_.run_until(50'000 + 5 * 5'000);
  EXPECT_TRUE(rig.detector_->view().is_failed(2));
  EXPECT_TRUE(rig.detector_->view().is_alive(1));
  EXPECT_EQ(rig.detector_->suspicions(), 1u);
}

TEST(HeartbeatDetectorTest, RecoveryRehabilitates) {
  DetectorOptions options;
  options.interval = 5'000;
  options.suspect_after = 2;
  DetectorRig rig(3, options);
  rig.network_.set_up(0, false);
  rig.scheduler_.run_until(40'000);
  ASSERT_TRUE(rig.detector_->view().is_failed(0));
  rig.network_.set_up(0, true);
  rig.scheduler_.run_until(60'000);
  EXPECT_TRUE(rig.detector_->view().is_alive(0));
  EXPECT_GE(rig.detector_->rehabilitations(), 1u);
}

TEST(HeartbeatDetectorTest, PartitionLooksLikeACrash) {
  DetectorRig rig(3);
  rig.scheduler_.run_until(30'000);
  rig.network_.set_partition(1, 7);  // detector stays in group 0
  rig.scheduler_.run_until(80'000);
  EXPECT_TRUE(rig.detector_->view().is_failed(1));
  rig.network_.heal_partitions();
  rig.scheduler_.run_until(120'000);
  EXPECT_TRUE(rig.detector_->view().is_alive(1));
}

TEST(HeartbeatDetectorTest, LossyLinksCauseOnlyTransientFalseSuspicion) {
  DetectorOptions options;
  options.interval = 5'000;
  options.suspect_after = 4;  // tolerate bursts of loss
  DetectorRig rig(4, options,
                  LinkParams{.base_latency = 100,
                             .jitter = 0,
                             .drop_probability = 0.2});
  rig.scheduler_.run_until(2'000'000);  // 400 rounds at 20% loss
  // With suspect_after = 4, a false suspicion needs 4 consecutive losses
  // on the same replica's ping+pong path: rare but possible; every one
  // must have been rehabilitated by the next successful pong.
  for (ReplicaId r = 0; r < 4; ++r) {
    EXPECT_TRUE(rig.detector_->view().is_alive(r)) << "r=" << r;
  }
  EXPECT_EQ(rig.detector_->suspicions(), rig.detector_->rehabilitations());
}

TEST(HeartbeatDetectorTest, RejectsDegenerateOptions) {
  Scheduler scheduler;
  Network network(scheduler, Rng(1));
  EXPECT_THROW(HeartbeatDetector(network, scheduler, 0), std::invalid_argument);
  EXPECT_THROW(HeartbeatDetector(network, scheduler, 2, {.interval = 0}),
               std::invalid_argument);
  EXPECT_THROW(
      HeartbeatDetector(network, scheduler, 2, {.suspect_after = 0}),
      std::invalid_argument);
}

TEST(HeartbeatDetectorTest, StopHaltsProbing) {
  DetectorRig rig(2);
  rig.scheduler_.run_until(30'000);
  const auto rounds = rig.detector_->rounds();
  rig.detector_->stop();
  rig.scheduler_.run();
  EXPECT_LE(rig.detector_->rounds(), rounds + 1);
}

}  // namespace
}  // namespace atrcp
