// Read repair: reads push the freshest value back to stale quorum members.
#include <gtest/gtest.h>

#include "core/config.hpp"
#include "core/quorums.hpp"
#include "txn/cluster.hpp"

namespace atrcp {
namespace {

ClusterOptions repair_options() {
  ClusterOptions options;
  options.link = LinkParams{.base_latency = 10, .jitter = 0};
  options.coordinator.read_repair = true;
  return options;
}

TEST(ReadRepairTest, StaleMemberGetsHealedByARead) {
  Cluster cluster(std::make_unique<ArbitraryProtocol>(
                      ArbitraryTree::from_spec("1-3-5")),
                  repair_options());
  // v1 lands on level 1 only (level 2 has a hole).
  cluster.injector().crash_now(7);
  ASSERT_EQ(cluster.write_sync(0, 1, "v1"), TxnOutcome::kCommitted);
  cluster.injector().recover_now(7);
  // Level-2 replicas are stale (no value at all). Reads touch one level-2
  // member each; with repair on, every read heals the member it touched.
  std::size_t healed_before = 0;
  for (ReplicaId r = 3; r < 8; ++r) {
    healed_before += cluster.server(r).store().get(1).has_value() ? 1 : 0;
  }
  ASSERT_EQ(healed_before, 0u);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(cluster.read_sync(0, 1).has_value());
  }
  cluster.settle();  // let fire-and-forget repairs land
  std::size_t healed_after = 0;
  std::uint64_t repairs = 0;
  for (ReplicaId r = 3; r < 8; ++r) {
    healed_after += cluster.server(r).store().get(1).has_value() ? 1 : 0;
    repairs += cluster.server(r).repairs_applied();
  }
  EXPECT_GE(healed_after, 4u);  // 40 uniform draws cover ~all 5 members
  EXPECT_GE(repairs, 4u);
  // Healed copies carry the original timestamp, not a new version.
  for (ReplicaId r = 3; r < 8; ++r) {
    if (const auto entry = cluster.server(r).store().get(1)) {
      EXPECT_EQ(entry->value, "v1");
      EXPECT_EQ(entry->timestamp.version, 1u);
    }
  }
}

TEST(ReadRepairTest, RepairNeverRegressesNewerValues) {
  Cluster cluster(std::make_unique<ArbitraryProtocol>(
                      ArbitraryTree::from_spec("1-3-5")),
                  repair_options());
  // v1 on level 1, then v2 on level 2: level-1 members are stale at v1.
  cluster.injector().crash_now(7);
  ASSERT_EQ(cluster.write_sync(0, 1, "v1"), TxnOutcome::kCommitted);
  cluster.injector().recover_now(7);
  cluster.injector().crash_now(0);
  ASSERT_EQ(cluster.write_sync(0, 1, "v2"), TxnOutcome::kCommitted);
  cluster.injector().recover_now(0);
  for (int i = 0; i < 40; ++i) {
    const auto value = cluster.read_sync(0, 1);
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(value->value, "v2");  // repair must never resurrect v1
  }
  cluster.settle();
  // After enough reads the stale level-1 members converge to v2.
  std::size_t at_v2 = 0;
  for (ReplicaId r = 0; r < 3; ++r) {
    const auto entry = cluster.server(r).store().get(1);
    if (entry && entry->value == "v2") ++at_v2;
  }
  EXPECT_GE(at_v2, 2u);
}

TEST(ReadRepairTest, OffByDefault) {
  ClusterOptions options;
  options.link = LinkParams{.base_latency = 10, .jitter = 0};
  Cluster cluster(std::make_unique<ArbitraryProtocol>(
                      ArbitraryTree::from_spec("1-3-5")),
                  options);
  cluster.injector().crash_now(7);
  ASSERT_EQ(cluster.write_sync(0, 1, "v1"), TxnOutcome::kCommitted);
  cluster.injector().recover_now(7);
  for (int i = 0; i < 20; ++i) cluster.read_sync(0, 1);
  cluster.settle();
  for (ReplicaId r = 3; r < 8; ++r) {
    EXPECT_EQ(cluster.server(r).repairs_applied(), 0u);
  }
}

}  // namespace
}  // namespace atrcp
