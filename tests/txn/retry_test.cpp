#include "txn/retry.hpp"

#include <gtest/gtest.h>

#include "core/quorums.hpp"
#include "txn/cluster.hpp"

namespace atrcp {
namespace {

ClusterOptions fast() {
  ClusterOptions options;
  options.link = LinkParams{.base_latency = 10, .jitter = 0};
  options.coordinator.request_timeout = 2'000;
  return options;
}

TEST(RetryingClientTest, OptionValidation) {
  Cluster cluster(std::make_unique<ArbitraryProtocol>(
                      ArbitraryTree::from_spec("1-3-5")),
                  fast());
  EXPECT_THROW(RetryingClient(cluster.client(0), cluster.scheduler(), Rng(1),
                              {.max_attempts = 0}),
               std::invalid_argument);
  EXPECT_THROW(RetryingClient(cluster.client(0), cluster.scheduler(), Rng(1),
                              {.multiplier = 0.5}),
               std::invalid_argument);
  EXPECT_THROW(RetryingClient(cluster.client(0), cluster.scheduler(), Rng(1),
                              {.jitter = 1.0}),
               std::invalid_argument);
}

TEST(RetryingClientTest, FirstTrySuccessNeedsNoRetry) {
  Cluster cluster(std::make_unique<ArbitraryProtocol>(
                      ArbitraryTree::from_spec("1-3-5")),
                  fast());
  RetryingClient client(cluster.client(0), cluster.scheduler(), Rng(1));
  TxnOutcome outcome = TxnOutcome::kAborted;
  client.run({TxnOp::write(1, "v")},
             [&](TxnResult r) { outcome = r.outcome; });
  cluster.settle();
  EXPECT_EQ(outcome, TxnOutcome::kCommitted);
  EXPECT_EQ(client.attempts(), 1u);
  EXPECT_EQ(client.retries(), 0u);
}

TEST(RetryingClientTest, RetriesThroughATransientOutage) {
  // All of level 1 is down when the transaction first runs; it recovers
  // while the client is backing off, and a later attempt commits.
  Cluster cluster(std::make_unique<ArbitraryProtocol>(
                      ArbitraryTree::from_spec("1-3-5")),
                  fast());
  for (ReplicaId r = 0; r < 3; ++r) {
    cluster.injector().transient_failure(0, r, 20'000);
  }
  cluster.scheduler().run_until(10);  // outage in force
  RetryingClient client(cluster.client(0), cluster.scheduler(), Rng(2),
                        {.max_attempts = 8, .initial_backoff = 5'000});
  TxnOutcome outcome = TxnOutcome::kAborted;
  client.run({TxnOp::write(1, "persistent")},
             [&](TxnResult r) { outcome = r.outcome; });
  cluster.settle();
  EXPECT_EQ(outcome, TxnOutcome::kCommitted);
  EXPECT_GE(client.retries(), 1u);
  EXPECT_EQ(client.gave_up(), 0u);
  // The write is durable and visible.
  const auto value = cluster.read_sync(0, 1);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->value, "persistent");
}

TEST(RetryingClientTest, GivesUpAfterMaxAttempts) {
  Cluster cluster(std::make_unique<ArbitraryProtocol>(
                      ArbitraryTree::from_spec("1-3-5")),
                  fast());
  for (ReplicaId r = 0; r < 3; ++r) cluster.injector().crash_now(r);  // forever
  RetryingClient client(cluster.client(0), cluster.scheduler(), Rng(3),
                        {.max_attempts = 3, .initial_backoff = 1'000});
  TxnOutcome outcome = TxnOutcome::kCommitted;
  std::string reason;
  client.run({TxnOp::read(1)}, [&](TxnResult r) {
    outcome = r.outcome;
    reason = r.abort_reason;
  });
  cluster.settle();
  EXPECT_EQ(outcome, TxnOutcome::kAborted);
  EXPECT_EQ(client.attempts(), 3u);
  EXPECT_EQ(client.retries(), 2u);
  EXPECT_EQ(client.gave_up(), 1u);
  EXPECT_FALSE(reason.empty());
}

TEST(RetryingClientTest, CallbackFiresExactlyOnce) {
  Cluster cluster(std::make_unique<ArbitraryProtocol>(
                      ArbitraryTree::from_spec("1-3-5")),
                  fast());
  cluster.injector().crash_now(0);
  cluster.injector().crash_now(7);  // no full level: writes abort
  RetryingClient client(cluster.client(0), cluster.scheduler(), Rng(4),
                        {.max_attempts = 4, .initial_backoff = 500});
  int calls = 0;
  client.run({TxnOp::write(1, "x")}, [&](TxnResult) { ++calls; });
  cluster.settle();
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(client.attempts(), 4u);
}

TEST(RetryingClientTest, BackoffGrows) {
  // With a dead cluster, attempt times must spread out geometrically.
  Cluster cluster(std::make_unique<ArbitraryProtocol>(
                      ArbitraryTree::from_spec("1-3-5")),
                  fast());
  for (ReplicaId r = 0; r < 3; ++r) cluster.injector().crash_now(r);
  RetryingClient client(cluster.client(0), cluster.scheduler(), Rng(5),
                        {.max_attempts = 4,
                         .initial_backoff = 10'000,
                         .multiplier = 2.0,
                         .jitter = 0.0});
  bool finished = false;
  client.run({TxnOp::read(1)}, [&](TxnResult) { finished = true; });
  cluster.settle();
  ASSERT_TRUE(finished);
  // 3 backoffs of 10ms, 20ms, 40ms plus 4 short abort rounds: >= 70ms.
  EXPECT_GE(cluster.scheduler().now(), 70'000u);
}

}  // namespace
}  // namespace atrcp
