#include <gtest/gtest.h>

#include "core/quorums.hpp"
#include "txn/cluster.hpp"
#include "txn/lock_manager.hpp"

namespace atrcp {
namespace {

TEST(DeadlockDetectorTest, NoLocksNoDeadlock) {
  LockManager locks;
  EXPECT_FALSE(locks.find_deadlock_victim().has_value());
}

TEST(DeadlockDetectorTest, WaitingWithoutCycleIsFine) {
  LockManager locks;
  locks.acquire(1, 10, LockMode::kExclusive, [] {});
  locks.acquire(2, 10, LockMode::kExclusive, [] {});
  locks.acquire(3, 10, LockMode::kExclusive, [] {});
  EXPECT_FALSE(locks.find_deadlock_victim().has_value());
}

TEST(DeadlockDetectorTest, ClassicTwoTxnCycle) {
  LockManager locks;
  locks.acquire(1, 10, LockMode::kExclusive, [] {});
  locks.acquire(2, 20, LockMode::kExclusive, [] {});
  locks.acquire(1, 20, LockMode::kExclusive, [] {});  // 1 waits for 2
  EXPECT_FALSE(locks.find_deadlock_victim().has_value());  // still a DAG
  locks.acquire(2, 10, LockMode::kExclusive, [] {});  // 2 waits for 1: cycle
  const auto victim = locks.find_deadlock_victim();
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 2u);  // youngest on the cycle
}

TEST(DeadlockDetectorTest, VictimAbortResolvesTheCycle) {
  LockManager locks;
  locks.acquire(1, 10, LockMode::kExclusive, [] {});
  locks.acquire(2, 20, LockMode::kExclusive, [] {});
  bool txn1_got_20 = false;
  locks.acquire(1, 20, LockMode::kExclusive, [&] { txn1_got_20 = true; });
  locks.acquire(2, 10, LockMode::kExclusive, [] {});
  const auto victim = locks.find_deadlock_victim();
  ASSERT_TRUE(victim.has_value());
  locks.release_all(*victim);  // abort the victim
  EXPECT_FALSE(locks.find_deadlock_victim().has_value());
  EXPECT_TRUE(txn1_got_20);  // survivor proceeds
}

TEST(DeadlockDetectorTest, ThreeTxnRing) {
  LockManager locks;
  locks.acquire(1, 10, LockMode::kExclusive, [] {});
  locks.acquire(2, 20, LockMode::kExclusive, [] {});
  locks.acquire(3, 30, LockMode::kExclusive, [] {});
  locks.acquire(1, 20, LockMode::kExclusive, [] {});  // 1 -> 2
  locks.acquire(2, 30, LockMode::kExclusive, [] {});  // 2 -> 3
  locks.acquire(3, 10, LockMode::kExclusive, [] {});  // 3 -> 1: ring
  const auto victim = locks.find_deadlock_victim();
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 3u);
}

TEST(DeadlockDetectorTest, UpgradeDeadlockDetected) {
  // Both hold shared; both queue upgrades: each waits for the other.
  LockManager locks;
  locks.acquire(1, 10, LockMode::kShared, [] {});
  locks.acquire(2, 10, LockMode::kShared, [] {});
  locks.acquire(1, 10, LockMode::kExclusive, [] {});
  locks.acquire(2, 10, LockMode::kExclusive, [] {});
  const auto victim = locks.find_deadlock_victim();
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 2u);
}

TEST(DeadlockDetectorTest, SharedCoexistenceIsNotADeadlock) {
  LockManager locks;
  locks.acquire(1, 10, LockMode::kShared, [] {});
  locks.acquire(2, 10, LockMode::kShared, [] {});
  locks.acquire(3, 10, LockMode::kExclusive, [] {});  // waits for 1 AND 2
  EXPECT_FALSE(locks.find_deadlock_victim().has_value());
}

TEST(DeadlockDetectorTest, DisjointCyclesFindOne) {
  LockManager locks;
  // Cycle A: 1 <-> 2 on keys 10/20; cycle B: 7 <-> 8 on keys 70/80.
  locks.acquire(1, 10, LockMode::kExclusive, [] {});
  locks.acquire(2, 20, LockMode::kExclusive, [] {});
  locks.acquire(1, 20, LockMode::kExclusive, [] {});
  locks.acquire(2, 10, LockMode::kExclusive, [] {});
  locks.acquire(7, 70, LockMode::kExclusive, [] {});
  locks.acquire(8, 80, LockMode::kExclusive, [] {});
  locks.acquire(7, 80, LockMode::kExclusive, [] {});
  locks.acquire(8, 70, LockMode::kExclusive, [] {});
  const auto victim = locks.find_deadlock_victim();
  ASSERT_TRUE(victim.has_value());
  EXPECT_TRUE(*victim == 2u || *victim == 8u);
}

TEST(CoordinatorDeadlockTest, SortedLockOrderPreventsDeadlocks) {
  // Two coordinators each write the same two keys; sorted acquisition
  // means no cycle can form, so both commit without lock timeouts.
  ClusterOptions options;
  options.clients = 2;
  options.link = LinkParams{.base_latency = 10, .jitter = 0};
  Cluster cluster(std::make_unique<ArbitraryProtocol>(
                      ArbitraryTree::from_spec("1-3-5")),
                  options);
  int committed = 0;
  cluster.client(0).run(
      {TxnOp::write(1, "a1"), TxnOp::write(2, "a2")},
      [&](TxnResult r) { committed += r.outcome == TxnOutcome::kCommitted; });
  cluster.client(1).run(
      {TxnOp::write(2, "b2"), TxnOp::write(1, "b1")},  // reversed op order
      [&](TxnResult r) { committed += r.outcome == TxnOutcome::kCommitted; });
  cluster.settle();
  EXPECT_EQ(committed, 2);
  EXPECT_FALSE(cluster.locks().find_deadlock_victim().has_value());
}

}  // namespace
}  // namespace atrcp
