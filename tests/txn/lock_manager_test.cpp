#include "txn/lock_manager.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace atrcp {
namespace {

class LockManagerTest : public ::testing::Test {
 protected:
  LockManager locks_;

  /// Issues an acquire and reports whether it was granted synchronously.
  /// The flag lives on the heap: when the request queues instead, the
  /// callback survives this frame and may fire during a later release.
  bool try_acquire(TxnId txn, Key key, LockMode mode) {
    auto granted = std::make_shared<bool>(false);
    locks_.acquire(txn, key, mode, [granted] { *granted = true; });
    return *granted;
  }
};

TEST_F(LockManagerTest, FreeLockGrantsImmediately) {
  EXPECT_TRUE(try_acquire(1, 10, LockMode::kShared));
  EXPECT_TRUE(locks_.holds(1, 10));
  EXPECT_FALSE(locks_.holds_exclusive(1, 10));
}

TEST_F(LockManagerTest, SharedLocksCoexist) {
  EXPECT_TRUE(try_acquire(1, 10, LockMode::kShared));
  EXPECT_TRUE(try_acquire(2, 10, LockMode::kShared));
  EXPECT_TRUE(locks_.holds(1, 10));
  EXPECT_TRUE(locks_.holds(2, 10));
}

TEST_F(LockManagerTest, ExclusiveBlocksOthers) {
  EXPECT_TRUE(try_acquire(1, 10, LockMode::kExclusive));
  EXPECT_TRUE(locks_.holds_exclusive(1, 10));
  EXPECT_FALSE(try_acquire(2, 10, LockMode::kShared));
  EXPECT_FALSE(try_acquire(3, 10, LockMode::kExclusive));
  EXPECT_EQ(locks_.waiting_on(10), 2u);
}

TEST_F(LockManagerTest, SharedBlocksExclusive) {
  EXPECT_TRUE(try_acquire(1, 10, LockMode::kShared));
  EXPECT_FALSE(try_acquire(2, 10, LockMode::kExclusive));
}

TEST_F(LockManagerTest, ReleaseGrantsNextWaiter) {
  EXPECT_TRUE(try_acquire(1, 10, LockMode::kExclusive));
  bool granted = false;
  locks_.acquire(2, 10, LockMode::kExclusive, [&] { granted = true; });
  EXPECT_FALSE(granted);
  locks_.release_all(1);
  EXPECT_TRUE(granted);
  EXPECT_TRUE(locks_.holds_exclusive(2, 10));
}

TEST_F(LockManagerTest, FifoOrderAmongWaiters) {
  EXPECT_TRUE(try_acquire(1, 10, LockMode::kExclusive));
  std::vector<int> order;
  locks_.acquire(2, 10, LockMode::kExclusive, [&] { order.push_back(2); });
  locks_.acquire(3, 10, LockMode::kExclusive, [&] { order.push_back(3); });
  locks_.release_all(1);
  ASSERT_EQ(order.size(), 1u);  // only the head gets the exclusive lock
  EXPECT_EQ(order[0], 2);
  locks_.release_all(2);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[1], 3);
}

TEST_F(LockManagerTest, BatchedSharedGrants) {
  EXPECT_TRUE(try_acquire(1, 10, LockMode::kExclusive));
  int granted = 0;
  locks_.acquire(2, 10, LockMode::kShared, [&] { ++granted; });
  locks_.acquire(3, 10, LockMode::kShared, [&] { ++granted; });
  locks_.release_all(1);
  EXPECT_EQ(granted, 2);  // both shared waiters drain together
}

TEST_F(LockManagerTest, FreshSharedMustQueueBehindWaitingExclusive) {
  // No queue-jumping: S behind a waiting X waits too (fairness).
  EXPECT_TRUE(try_acquire(1, 10, LockMode::kShared));
  EXPECT_FALSE(try_acquire(2, 10, LockMode::kExclusive));
  EXPECT_FALSE(try_acquire(3, 10, LockMode::kShared));
  locks_.release_all(1);
  EXPECT_TRUE(locks_.holds_exclusive(2, 10));
  EXPECT_FALSE(locks_.holds(3, 10));
  locks_.release_all(2);
  EXPECT_TRUE(locks_.holds(3, 10));
}

TEST_F(LockManagerTest, ReentrantAcquireGrantsImmediately) {
  EXPECT_TRUE(try_acquire(1, 10, LockMode::kExclusive));
  EXPECT_TRUE(try_acquire(1, 10, LockMode::kShared));
  EXPECT_TRUE(try_acquire(1, 10, LockMode::kExclusive));
  EXPECT_EQ(locks_.held_keys(1), 1u);
}

TEST_F(LockManagerTest, UpgradeWhenSoleHolder) {
  EXPECT_TRUE(try_acquire(1, 10, LockMode::kShared));
  EXPECT_TRUE(try_acquire(1, 10, LockMode::kExclusive));
  EXPECT_TRUE(locks_.holds_exclusive(1, 10));
}

TEST_F(LockManagerTest, UpgradeWaitsForOtherSharers) {
  EXPECT_TRUE(try_acquire(1, 10, LockMode::kShared));
  EXPECT_TRUE(try_acquire(2, 10, LockMode::kShared));
  bool upgraded = false;
  locks_.acquire(1, 10, LockMode::kExclusive, [&] { upgraded = true; });
  EXPECT_FALSE(upgraded);
  locks_.release_all(2);
  EXPECT_TRUE(upgraded);
  EXPECT_TRUE(locks_.holds_exclusive(1, 10));
}

TEST_F(LockManagerTest, CancelRemovesQueuedRequest) {
  EXPECT_TRUE(try_acquire(1, 10, LockMode::kExclusive));
  bool granted = false;
  locks_.acquire(2, 10, LockMode::kExclusive, [&] { granted = true; });
  EXPECT_TRUE(locks_.cancel(2, 10));
  locks_.release_all(1);
  EXPECT_FALSE(granted);  // the cancelled grant never fires
  EXPECT_FALSE(locks_.cancel(2, 10));  // nothing left to cancel
}

TEST_F(LockManagerTest, CancelHeadUnblocksCompatibleWaiters) {
  EXPECT_TRUE(try_acquire(1, 10, LockMode::kShared));
  bool x_granted = false;
  bool s_granted = false;
  locks_.acquire(2, 10, LockMode::kExclusive, [&] { x_granted = true; });
  locks_.acquire(3, 10, LockMode::kShared, [&] { s_granted = true; });
  // Cancelling the exclusive head must let the queued shared in.
  EXPECT_TRUE(locks_.cancel(2, 10));
  EXPECT_FALSE(x_granted);
  EXPECT_TRUE(s_granted);
}

TEST_F(LockManagerTest, ReleaseAllCoversEveryKey) {
  EXPECT_TRUE(try_acquire(1, 10, LockMode::kExclusive));
  EXPECT_TRUE(try_acquire(1, 11, LockMode::kShared));
  EXPECT_EQ(locks_.held_keys(1), 2u);
  locks_.release_all(1);
  EXPECT_EQ(locks_.held_keys(1), 0u);
  EXPECT_FALSE(locks_.holds(1, 10));
  EXPECT_FALSE(locks_.holds(1, 11));
}

TEST_F(LockManagerTest, ReleaseAllAlsoDropsQueuedRequests) {
  EXPECT_TRUE(try_acquire(1, 10, LockMode::kExclusive));
  bool granted = false;
  locks_.acquire(2, 10, LockMode::kExclusive, [&] { granted = true; });
  locks_.release_all(2);  // txn 2 gives up while still queued
  locks_.release_all(1);
  EXPECT_FALSE(granted);
}

TEST_F(LockManagerTest, GrantCallbackMayReenter) {
  // A grant callback that immediately acquires another key must not corrupt
  // the table (pump() runs callbacks after state updates).
  EXPECT_TRUE(try_acquire(1, 10, LockMode::kExclusive));
  bool inner = false;
  locks_.acquire(2, 10, LockMode::kExclusive, [&] {
    locks_.acquire(2, 11, LockMode::kExclusive, [&] { inner = true; });
  });
  locks_.release_all(1);
  EXPECT_TRUE(inner);
  EXPECT_TRUE(locks_.holds_exclusive(2, 10));
  EXPECT_TRUE(locks_.holds_exclusive(2, 11));
}

}  // namespace
}  // namespace atrcp
