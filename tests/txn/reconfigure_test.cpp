// In-place reconfiguration (Cluster::reconfigure): the paper's
// configuration shift executed on live state. The critical safety property:
// a write committed under the OLD shape's quorums must be visible to the
// NEW shape's read quorums — guaranteed by the state transfer, and checked
// here with shapes chosen so the old and new quorums would NOT intersect
// without it.
#include <gtest/gtest.h>

#include "core/config.hpp"
#include "core/quorums.hpp"
#include "protocols/majority.hpp"
#include "txn/cluster.hpp"
#include "txn/workload.hpp"

namespace atrcp {
namespace {

ClusterOptions fast(std::size_t clients = 1) {
  ClusterOptions options;
  options.clients = clients;
  options.link = LinkParams{.base_latency = 10, .jitter = 0};
  return options;
}

TEST(ReconfigureTest, DataSurvivesShapeChange) {
  Cluster cluster(std::make_unique<ArbitraryProtocol>(
                      ArbitraryTree::from_spec("1-3-5")),
                  fast());
  for (Key k = 0; k < 5; ++k) {
    ASSERT_EQ(cluster.write_sync(0, k, "v" + std::to_string(k)),
              TxnOutcome::kCommitted);
  }
  cluster.reconfigure(
      std::make_unique<ArbitraryProtocol>(balanced_tree(8, 4)));
  for (Key k = 0; k < 5; ++k) {
    const auto value = cluster.read_sync(0, k);
    ASSERT_TRUE(value.has_value()) << "key " << k;
    EXPECT_EQ(value->value, "v" + std::to_string(k));
  }
}

TEST(ReconfigureTest, OldQuorumWritesVisibleToDisjointNewQuorums) {
  // Force the write onto level 2 of 1-3-5 (replicas 3..7) by breaking
  // level 1, then reconfigure to MOSTLY-READ whose read quorum is a single
  // ARBITRARY replica — e.g. replica 0, which never saw the write. Without
  // the state transfer, reading through replica 0 would lose the write.
  Cluster cluster(std::make_unique<ArbitraryProtocol>(
                      ArbitraryTree::from_spec("1-3-5")),
                  fast());
  cluster.injector().crash_now(0);
  ASSERT_EQ(cluster.write_sync(0, 1, "level2-only"), TxnOutcome::kCommitted);
  cluster.injector().recover_now(0);
  // Precondition of the scenario: replica 0 does not hold the key.
  ASSERT_FALSE(cluster.server(0).store().get(1).has_value());

  cluster.reconfigure(make_mostly_read(8));
  // After the transfer EVERY replica holds it.
  for (ReplicaId r = 0; r < 8; ++r) {
    ASSERT_TRUE(cluster.server(r).store().get(1).has_value()) << "r=" << r;
  }
  for (int i = 0; i < 10; ++i) {
    const auto value = cluster.read_sync(0, 1);
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(value->value, "level2-only");
  }
}

TEST(ReconfigureTest, TimestampsSurviveTransfer) {
  Cluster cluster(std::make_unique<ArbitraryProtocol>(
                      ArbitraryTree::from_spec("1-3-5")),
                  fast());
  ASSERT_EQ(cluster.write_sync(0, 1, "a"), TxnOutcome::kCommitted);
  ASSERT_EQ(cluster.write_sync(0, 1, "b"), TxnOutcome::kCommitted);
  cluster.reconfigure(
      std::make_unique<ArbitraryProtocol>(balanced_tree(8, 2)));
  const auto value = cluster.read_sync(0, 1);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->timestamp.version, 2u);
  // Versions keep counting up after the switch.
  ASSERT_EQ(cluster.write_sync(0, 1, "c"), TxnOutcome::kCommitted);
  EXPECT_EQ(cluster.read_sync(0, 1)->timestamp.version, 3u);
}

TEST(ReconfigureTest, WorksAcrossProtocolFamilies) {
  // Arbitrary tree -> plain majority quorums: the reconfiguration machinery
  // is protocol-agnostic (same universe is all it needs).
  Cluster cluster(std::make_unique<ArbitraryProtocol>(
                      ArbitraryTree::from_spec("1-3-4")),
                  fast());
  ASSERT_EQ(cluster.write_sync(0, 9, "x"), TxnOutcome::kCommitted);
  cluster.reconfigure(std::make_unique<MajorityQuorum>(7));
  EXPECT_EQ(cluster.protocol().name(), "MAJORITY");
  const auto value = cluster.read_sync(0, 9);
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(value->value, "x");
}

TEST(ReconfigureTest, RejectsUniverseChange) {
  Cluster cluster(make_mostly_read(8), fast());
  EXPECT_THROW(cluster.reconfigure(make_mostly_read(9)),
               std::invalid_argument);
  EXPECT_THROW(cluster.reconfigure(nullptr), std::invalid_argument);
  // The original protocol still works after the failed attempts.
  EXPECT_EQ(cluster.write_sync(0, 1, "ok"), TxnOutcome::kCommitted);
}

TEST(ReconfigureTest, EmptyClusterReconfigures) {
  Cluster cluster(make_mostly_read(6), fast());
  cluster.reconfigure(std::make_unique<ArbitraryProtocol>(
      balanced_tree(6, 3)));
  EXPECT_EQ(cluster.write_sync(0, 1, "fresh"), TxnOutcome::kCommitted);
  EXPECT_TRUE(cluster.read_sync(0, 1).has_value());
}

TEST(ReconfigureTest, WorkloadsAcrossMultipleReconfigurations) {
  Cluster cluster(make_mostly_read(12), fast(2));
  WorkloadOptions options;
  options.transactions_per_client = 40;
  options.num_keys = 10;
  options.read_fraction = 0.5;
  std::uint64_t total_committed = 0;
  for (std::size_t levels : {1u, 3u, 6u, 2u}) {
    cluster.reconfigure(std::make_unique<ArbitraryProtocol>(
        balanced_tree(12, levels)));
    const WorkloadStats stats = run_workload(cluster, options);
    EXPECT_EQ(stats.aborted, 0u) << "levels=" << levels;
    total_committed += stats.committed;
  }
  EXPECT_EQ(total_committed, 4u * 80u);
  // The store is still coherent: keys carry monotone versions across all
  // four shapes (16 writers-ish per key in expectation; just verify reads).
  for (Key k = 0; k < 10; ++k) {
    const auto value = cluster.read_sync(0, k);
    if (value) {
      EXPECT_GE(value->timestamp.version, 1u);
    }
  }
}

}  // namespace
}  // namespace atrcp
