#include "txn/workload.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/config.hpp"
#include "core/quorums.hpp"

namespace atrcp {
namespace {

ClusterOptions fast_links(std::size_t clients = 1) {
  ClusterOptions options;
  options.clients = clients;
  options.link = LinkParams{.base_latency = 10, .jitter = 2};
  return options;
}

TEST(ZipfSamplerTest, UniformWhenExponentZero) {
  ZipfSampler sampler(10, 0.0);
  Rng rng(1);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[sampler.sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, 5000, 400);
}

TEST(ZipfSamplerTest, SkewFavoursLowKeys) {
  ZipfSampler sampler(10, 1.2);
  Rng rng(2);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[sampler.sample(rng)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[5]);
  EXPECT_GT(counts[0], 3 * counts[9]);
}

TEST(ZipfSamplerTest, RejectsEmptyDomain) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
}

TEST(WorkloadTest, AllCommitOnHealthyCluster) {
  Cluster cluster(std::make_unique<ArbitraryProtocol>(
                      ArbitraryTree::from_spec("1-3-5")),
                  fast_links(2));
  WorkloadOptions options;
  options.transactions_per_client = 50;
  options.read_fraction = 0.5;
  options.num_keys = 8;
  const WorkloadStats stats = run_workload(cluster, options);
  EXPECT_EQ(stats.committed, 100u);
  EXPECT_EQ(stats.aborted, 0u);
  EXPECT_EQ(stats.blocked, 0u);
  EXPECT_EQ(stats.reads_issued + stats.writes_issued, 100u);
  EXPECT_GT(stats.mean_latency_us, 0.0);
  EXPECT_GT(stats.messages_sent, 0u);
}

TEST(WorkloadTest, ReadFractionRespected) {
  Cluster cluster(std::make_unique<ArbitraryProtocol>(
                      ArbitraryTree::from_spec("1-3-5")),
                  fast_links());
  WorkloadOptions options;
  options.transactions_per_client = 400;
  options.read_fraction = 0.75;
  const WorkloadStats stats = run_workload(cluster, options);
  const double observed =
      static_cast<double>(stats.reads_issued) /
      static_cast<double>(stats.reads_issued + stats.writes_issued);
  EXPECT_NEAR(observed, 0.75, 0.06);
}

TEST(WorkloadTest, DeterministicUnderSeed) {
  WorkloadOptions options;
  options.transactions_per_client = 30;
  options.seed = 77;
  auto run_once = [&] {
    Cluster cluster(std::make_unique<ArbitraryProtocol>(
                        ArbitraryTree::from_spec("1-3-5")),
                    fast_links(2));
    return run_workload(cluster, options);
  };
  const WorkloadStats a = run_once();
  const WorkloadStats b = run_once();
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.messages_sent, b.messages_sent);
  EXPECT_DOUBLE_EQ(a.mean_latency_us, b.mean_latency_us);
  EXPECT_EQ(a.replica_messages, b.replica_messages);
}

TEST(WorkloadTest, MostlyReadConfigLoadsOneReplicaLightly) {
  // On MOSTLY-READ with a read-only workload, reads spread across replicas:
  // the busiest replica should carry about 1/n of the traffic.
  Cluster cluster(make_mostly_read(8), fast_links());
  WorkloadOptions options;
  options.transactions_per_client = 400;
  options.read_fraction = 1.0;
  const WorkloadStats stats = run_workload(cluster, options);
  EXPECT_EQ(stats.committed, 400u);
  EXPECT_NEAR(stats.max_replica_share(), 1.0 / 8.0, 0.05);
}

TEST(WorkloadTest, WriteHeavyOnMostlyReadHitsEveryone) {
  // Write-only on MOSTLY-READ: every replica participates in every write,
  // so shares equalize at 1/n and total messages are high.
  Cluster cluster(make_mostly_read(8), fast_links());
  WorkloadOptions options;
  options.transactions_per_client = 100;
  options.read_fraction = 0.0;
  const WorkloadStats stats = run_workload(cluster, options);
  EXPECT_EQ(stats.committed, 100u);
  const auto total = std::accumulate(stats.replica_messages.begin(),
                                     stats.replica_messages.end(), 0ull);
  // Each write: 1 version request + 8 prepares + 8 commits = 17 messages.
  EXPECT_GE(total, 100u * 17u);
}

TEST(WorkloadTest, MultiOpTransactions) {
  Cluster cluster(std::make_unique<ArbitraryProtocol>(
                      ArbitraryTree::from_spec("1-3-5")),
                  fast_links(2));
  WorkloadOptions options;
  options.transactions_per_client = 40;
  options.ops_per_txn = 4;
  options.num_keys = 16;
  const WorkloadStats stats = run_workload(cluster, options);
  EXPECT_EQ(stats.committed + stats.aborted + stats.blocked, 80u);
  EXPECT_EQ(stats.reads_issued + stats.writes_issued, 320u);
  // Healthy cluster, sorted lock order: everything commits.
  EXPECT_EQ(stats.committed, 80u);
}

TEST(WorkloadTest, RejectsEmptyWorkload) {
  Cluster cluster(make_mostly_read(4), fast_links());
  WorkloadOptions options;
  options.transactions_per_client = 0;
  EXPECT_THROW(run_workload(cluster, options), std::invalid_argument);
}

}  // namespace
}  // namespace atrcp
