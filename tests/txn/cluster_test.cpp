#include "txn/cluster.hpp"

#include <gtest/gtest.h>

#include "core/config.hpp"
#include "core/quorums.hpp"

namespace atrcp {
namespace {

TEST(ClusterTest, ConstructionValidation) {
  EXPECT_THROW(Cluster(nullptr), std::invalid_argument);
  ClusterOptions no_clients;
  no_clients.clients = 0;
  EXPECT_THROW(Cluster(make_mostly_read(4), no_clients),
               std::invalid_argument);
}

TEST(ClusterTest, TopologyWiring) {
  ClusterOptions options;
  options.clients = 3;
  Cluster cluster(make_mostly_read(5), options);
  EXPECT_EQ(cluster.replica_count(), 5u);
  EXPECT_EQ(cluster.client_count(), 3u);
  // Replica r lives on site r; clients follow.
  for (ReplicaId r = 0; r < 5; ++r) {
    EXPECT_EQ(cluster.server(r).site(), r);
  }
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_EQ(cluster.client(c).site(), 5u + c);
  }
  EXPECT_EQ(cluster.network().site_count(), 8u);
  EXPECT_EQ(cluster.detector(), nullptr);  // off by default
}

TEST(ClusterTest, OutOfRangeAccessorsThrow) {
  Cluster cluster(make_mostly_read(3));
  EXPECT_THROW(cluster.server(3), std::out_of_range);
  EXPECT_THROW(cluster.client(1), std::out_of_range);
}

TEST(ClusterTest, SettleIsIdempotentAndDrains) {
  Cluster cluster(make_mostly_read(4));
  cluster.settle();
  EXPECT_EQ(cluster.scheduler().pending(), 0u);
  cluster.write_sync(0, 1, "x");
  cluster.settle();
  cluster.settle();
  EXPECT_EQ(cluster.scheduler().pending(), 0u);
}

TEST(ClusterTest, SeedsChangeSchedulesButNotSemantics) {
  auto run = [](std::uint64_t seed) {
    ClusterOptions options;
    options.seed = seed;
    Cluster cluster(std::make_unique<ArbitraryProtocol>(
                        ArbitraryTree::from_spec("1-3-5")),
                    options);
    cluster.write_sync(0, 1, "same");
    return cluster.read_sync(0, 1);
  };
  const auto a = run(1);
  const auto b = run(999);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->value, b->value);  // semantics identical across seeds
}

TEST(ClusterTest, DeterministicMessageTotalsUnderFixedSeed) {
  auto run = [] {
    Cluster cluster(std::make_unique<ArbitraryProtocol>(
        ArbitraryTree::from_spec("1-3-5")));
    for (Key k = 0; k < 5; ++k) cluster.write_sync(0, k, "v");
    return cluster.network().messages_sent();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace atrcp
