// Generic invariants every replica control protocol must satisfy,
// instantiated across the whole protocol zoo (baselines + the arbitrary
// protocol in its paper configurations).
#include <gtest/gtest.h>

#include <memory>

#include "analysis/empirical.hpp"
#include "core/config.hpp"
#include "protocols/grid.hpp"
#include "protocols/hqc.hpp"
#include "protocols/maekawa.hpp"
#include "protocols/majority.hpp"
#include "protocols/rooted_tree.hpp"
#include "protocols/rowa.hpp"
#include "protocols/tree_quorum.hpp"
#include "protocols/weighted_voting.hpp"

namespace atrcp {
namespace {

using ProtocolFactory = std::function<std::unique_ptr<ReplicaControlProtocol>()>;

struct ProtocolCase {
  std::string label;
  ProtocolFactory make;
};

class AnyProtocolTest : public ::testing::TestWithParam<ProtocolCase> {};

TEST_P(AnyProtocolTest, FailureFreeAssemblyAlwaysSucceeds) {
  const auto protocol = GetParam().make();
  const FailureSet none(protocol->universe_size());
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(protocol->assemble_read_quorum(none, rng).has_value());
    EXPECT_TRUE(protocol->assemble_write_quorum(none, rng).has_value());
  }
}

TEST_P(AnyProtocolTest, QuorumMembersAreInUniverse) {
  const auto protocol = GetParam().make();
  const FailureSet none(protocol->universe_size());
  Rng rng(2);
  const auto r = protocol->assemble_read_quorum(none, rng);
  const auto w = protocol->assemble_write_quorum(none, rng);
  ASSERT_TRUE(r && w);
  for (ReplicaId id : r->members()) EXPECT_LT(id, protocol->universe_size());
  for (ReplicaId id : w->members()) EXPECT_LT(id, protocol->universe_size());
}

TEST_P(AnyProtocolTest, AssembledQuorumsAvoidFailedReplicas) {
  const auto protocol = GetParam().make();
  Rng rng(3);
  for (int trial = 0; trial < 100; ++trial) {
    FailureSet failures(protocol->universe_size());
    for (ReplicaId id = 0; id < protocol->universe_size(); ++id) {
      if (rng.chance(0.25)) failures.fail(id);
    }
    if (const auto q = protocol->assemble_read_quorum(failures, rng)) {
      for (ReplicaId id : q->members()) EXPECT_TRUE(failures.is_alive(id));
    }
    if (const auto q = protocol->assemble_write_quorum(failures, rng)) {
      for (ReplicaId id : q->members()) EXPECT_TRUE(failures.is_alive(id));
    }
  }
}

TEST_P(AnyProtocolTest, ReadWriteQuorumsIntersect) {
  // The bicoterie property, exercised through live assembly under random
  // failure patterns — the correctness core of one-copy equivalence.
  const auto protocol = GetParam().make();
  Rng rng(4);
  for (int trial = 0; trial < 300; ++trial) {
    FailureSet failures(protocol->universe_size());
    for (ReplicaId id = 0; id < protocol->universe_size(); ++id) {
      if (rng.chance(0.2)) failures.fail(id);
    }
    const auto r = protocol->assemble_read_quorum(failures, rng);
    const auto w = protocol->assemble_write_quorum(failures, rng);
    if (r && w) {
      EXPECT_TRUE(r->intersects(*w))
          << GetParam().label << ": R=" << r->to_string()
          << " W=" << w->to_string();
    }
  }
}

TEST_P(AnyProtocolTest, EveryWriteIsVisibleToEveryRead) {
  // Note: write quorums need NOT pairwise intersect in this family — the
  // arbitrary protocol's write quorums are disjoint levels; write ordering
  // comes from the version pre-read through a READ quorum, which must see
  // every prior write. So the essential visibility property is R ∩ W != ∅
  // for every assembled pair, across many independent assemblies.
  const auto protocol = GetParam().make();
  Rng rng(5);
  const FailureSet none(protocol->universe_size());
  std::vector<Quorum> writes;
  for (int trial = 0; trial < 50; ++trial) {
    auto w = protocol->assemble_write_quorum(none, rng);
    ASSERT_TRUE(w.has_value());
    writes.push_back(*std::move(w));
  }
  for (int trial = 0; trial < 50; ++trial) {
    const auto r = protocol->assemble_read_quorum(none, rng);
    ASSERT_TRUE(r.has_value());
    for (const Quorum& w : writes) {
      EXPECT_TRUE(r->intersects(w)) << GetParam().label;
    }
  }
}

TEST_P(AnyProtocolTest, AvailabilityIsAProbabilityAndMonotone) {
  const auto protocol = GetParam().make();
  double prev_read = -1.0;
  double prev_write = -1.0;
  for (double p = 0.0; p <= 1.0001; p += 0.1) {
    const double pp = std::min(p, 1.0);
    const double ra = protocol->read_availability(pp);
    const double wa = protocol->write_availability(pp);
    EXPECT_GE(ra, -1e-9);
    EXPECT_LE(ra, 1.0 + 1e-9);
    EXPECT_GE(wa, -1e-9);
    EXPECT_LE(wa, 1.0 + 1e-9);
    EXPECT_GE(ra, prev_read - 0.02) << GetParam().label << " p=" << pp;
    EXPECT_GE(wa, prev_write - 0.02) << GetParam().label << " p=" << pp;
    prev_read = ra;
    prev_write = wa;
  }
}

TEST_P(AnyProtocolTest, MeasuredAvailabilityTracksFormula) {
  const auto protocol = GetParam().make();
  Rng rng(6);
  const auto measured = measured_availability(*protocol, 0.85, 8000, rng);
  EXPECT_NEAR(measured.read, protocol->read_availability(0.85), 0.03)
      << GetParam().label;
  EXPECT_NEAR(measured.write, protocol->write_availability(0.85), 0.03)
      << GetParam().label;
}

TEST_P(AnyProtocolTest, EmpiricalLoadNeverBeatsOptimalLoad) {
  // No realized strategy can do better than the optimal system load; it
  // should also land close for these balanced designs.
  const auto protocol = GetParam().make();
  Rng rng(7);
  const auto loads = empirical_loads(*protocol, 20000, rng);
  EXPECT_GE(loads.max_read, protocol->read_load() - 0.02) << GetParam().label;
  EXPECT_GE(loads.max_write, protocol->write_load() - 0.02)
      << GetParam().label;
}

TEST_P(AnyProtocolTest, CostsArePositiveAndWithinUniverse) {
  const auto protocol = GetParam().make();
  EXPECT_GE(protocol->read_cost(), 1.0 - 1e-9);
  EXPECT_GE(protocol->write_cost(), 1.0 - 1e-9);
  EXPECT_LE(protocol->read_cost(),
            static_cast<double>(protocol->universe_size()) + 1e-9);
  EXPECT_LE(protocol->write_cost(),
            static_cast<double>(protocol->universe_size()) + 1e-9);
}

std::vector<ProtocolCase> all_protocols() {
  return {
      {"rowa", [] { return std::make_unique<Rowa>(7); }},
      {"majority", [] { return std::make_unique<MajorityQuorum>(7); }},
      {"tree_quorum", [] { return std::make_unique<TreeQuorum>(3); }},
      {"hqc", [] { return std::make_unique<Hqc>(2); }},
      {"grid", [] { return std::make_unique<Grid>(4, 4); }},
      {"maekawa", [] { return std::make_unique<Maekawa>(4); }},
      {"rooted_tree",
       [] { return std::make_unique<RootedTreeQuorum>(3, 2, 2, 2); }},
      {"weighted_voting",
       [] {
         return std::make_unique<WeightedVoting>(
             std::vector<std::uint32_t>{3, 2, 2, 1, 1, 1, 1}, 6, 6);
       }},
      {"arbitrary_135",
       [] {
         return std::make_unique<ArbitraryProtocol>(
             ArbitraryTree::from_spec("1-3-5"));
       }},
      {"mostly_read", [] { return make_mostly_read(9); }},
      {"mostly_write", [] { return make_mostly_write(9); }},
      {"unmodified", [] { return make_unmodified(3); }},
      {"arbitrary_40", [] { return make_arbitrary(40); }},
  };
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, AnyProtocolTest, ::testing::ValuesIn(all_protocols()),
    [](const ::testing::TestParamInfo<ProtocolCase>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace atrcp
