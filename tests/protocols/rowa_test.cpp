#include "protocols/rowa.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/empirical.hpp"
#include "quorum/availability.hpp"
#include "quorum/lp.hpp"
#include "quorum/set_system.hpp"

namespace atrcp {
namespace {

TEST(RowaTest, RejectsZeroReplicas) {
  EXPECT_THROW(Rowa(0), std::invalid_argument);
}

TEST(RowaTest, AnalyticModel) {
  const Rowa rowa(5);
  EXPECT_EQ(rowa.universe_size(), 5u);
  EXPECT_DOUBLE_EQ(rowa.read_cost(), 1.0);
  EXPECT_DOUBLE_EQ(rowa.write_cost(), 5.0);
  EXPECT_DOUBLE_EQ(rowa.read_load(), 0.2);
  EXPECT_DOUBLE_EQ(rowa.write_load(), 1.0);
  EXPECT_NEAR(rowa.read_availability(0.7), 1.0 - std::pow(0.3, 5), 1e-12);
  EXPECT_NEAR(rowa.write_availability(0.7), std::pow(0.7, 5), 1e-12);
}

TEST(RowaTest, ReadQuorumIsOneAliveReplica) {
  const Rowa rowa(4);
  FailureSet failures(4);
  failures.fail(0);
  failures.fail(2);
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const auto q = rowa.assemble_read_quorum(failures, rng);
    ASSERT_TRUE(q.has_value());
    ASSERT_EQ(q->size(), 1u);
    const ReplicaId member = q->members()[0];
    EXPECT_TRUE(member == 1 || member == 3);
  }
}

TEST(RowaTest, ReadFailsOnlyWhenAllDead) {
  const Rowa rowa(3);
  FailureSet failures(3);
  failures.fail(0);
  failures.fail(1);
  failures.fail(2);
  Rng rng(2);
  EXPECT_FALSE(rowa.assemble_read_quorum(failures, rng).has_value());
  failures.recover(1);
  EXPECT_TRUE(rowa.assemble_read_quorum(failures, rng).has_value());
}

TEST(RowaTest, WriteNeedsEveryone) {
  const Rowa rowa(3);
  FailureSet failures(3);
  Rng rng(3);
  const auto q = rowa.assemble_write_quorum(failures, rng);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->size(), 3u);
  failures.fail(1);
  EXPECT_FALSE(rowa.assemble_write_quorum(failures, rng).has_value());
}

TEST(RowaTest, EnumerationFormsBicoterie) {
  const Rowa rowa(4);
  const auto reads = rowa.enumerate_read_quorums(100);
  const auto writes = rowa.enumerate_write_quorums(100);
  EXPECT_EQ(reads.size(), 4u);
  EXPECT_EQ(writes.size(), 1u);
  Bicoterie b(4, reads, writes);
  EXPECT_TRUE(b.intersection_holds());
}

TEST(RowaTest, EnumerationLimit) {
  const Rowa rowa(10);
  EXPECT_THROW(rowa.enumerate_read_quorums(5), std::length_error);
}

TEST(RowaTest, ReadLoadMatchesLpOptimum) {
  const Rowa rowa(6);
  const SetSystem reads(6, rowa.enumerate_read_quorums(100));
  EXPECT_NEAR(optimal_load(reads).load, rowa.read_load(), 1e-9);
}

TEST(RowaTest, AvailabilityMatchesExactEnumeration) {
  const Rowa rowa(5);
  const SetSystem reads(5, rowa.enumerate_read_quorums(100));
  const SetSystem writes(5, rowa.enumerate_write_quorums(100));
  for (double p : {0.6, 0.9}) {
    EXPECT_NEAR(exact_availability(reads, p), rowa.read_availability(p),
                1e-12);
    EXPECT_NEAR(exact_availability(writes, p), rowa.write_availability(p),
                1e-12);
  }
}

TEST(RowaTest, EmpiricalReadLoadIsBalanced) {
  const Rowa rowa(5);
  Rng rng(7);
  const auto loads = empirical_loads(rowa, 100000, rng);
  for (double l : loads.read) EXPECT_NEAR(l, 0.2, 0.01);
  for (double l : loads.write) EXPECT_NEAR(l, 1.0, 1e-12);
}

}  // namespace
}  // namespace atrcp
