#include "protocols/hqc.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/empirical.hpp"
#include "quorum/availability.hpp"
#include "quorum/lp.hpp"
#include "quorum/set_system.hpp"

namespace atrcp {
namespace {

TEST(HqcTest, Sizes) {
  EXPECT_EQ(Hqc(0).universe_size(), 1u);
  EXPECT_EQ(Hqc(1).universe_size(), 3u);
  EXPECT_EQ(Hqc(2).universe_size(), 9u);
  EXPECT_EQ(Hqc(3).universe_size(), 27u);
}

TEST(HqcTest, RejectsNonIntersectingQuorumSpecs) {
  EXPECT_THROW(Hqc(2, 1, 2), std::invalid_argument);  // r+w = 3
  EXPECT_THROW(Hqc(2, 3, 1), std::invalid_argument);  // 2w = 2 <= 3
  EXPECT_THROW(Hqc(2, 0, 3), std::invalid_argument);
  EXPECT_THROW(Hqc(2, 4, 2), std::invalid_argument);
  EXPECT_NO_THROW(Hqc(2, 2, 2));
  EXPECT_NO_THROW(Hqc(2, 1, 3));
  EXPECT_NO_THROW(Hqc(2, 3, 2));
}

TEST(HqcTest, QuorumSizeIsNToThe063) {
  // Kumar: quorum size 2^depth = n^log3(2) ~= n^0.63 for r = w = 2.
  const Hqc h(3);
  EXPECT_DOUBLE_EQ(h.read_cost(), 8.0);
  EXPECT_NEAR(h.read_cost(), std::pow(27.0, std::log(2.0) / std::log(3.0)),
              1e-9);
}

TEST(HqcTest, LoadIsNToTheMinus037) {
  const Hqc h(2);
  EXPECT_NEAR(h.read_load(), std::pow(9.0, std::log(2.0 / 3.0) / std::log(3.0)),
              1e-9);
  EXPECT_NEAR(h.read_load(), 4.0 / 9.0, 1e-12);  // (2/3)^2
}

TEST(HqcTest, FailureFreeQuorumHasExactSize) {
  const Hqc h(2);
  FailureSet none(9);
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    const auto q = h.assemble_read_quorum(none, rng);
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(q->size(), 4u);  // 2^2
  }
}

TEST(HqcTest, ToleratesOneFailurePerGroup) {
  const Hqc h(1);  // 3 leaves, need 2
  FailureSet failures(3);
  failures.fail(1);
  Rng rng(4);
  const auto q = h.assemble_read_quorum(failures, rng);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(*q, Quorum({0, 2}));
  failures.fail(2);
  EXPECT_FALSE(h.assemble_read_quorum(failures, rng).has_value());
}

TEST(HqcTest, EnumerationCountsAndCoterie) {
  // N(depth): N(0)=1, N(k+1) = 3*N(k)^2. Depth 1: 3; depth 2: 27.
  EXPECT_EQ(Hqc(1).enumerate_read_quorums(100).size(), 3u);
  const auto quorums = Hqc(2).enumerate_read_quorums(100);
  EXPECT_EQ(quorums.size(), 27u);
  const SetSystem system(9, quorums);
  EXPECT_TRUE(system.is_coterie());
}

TEST(HqcTest, AsymmetricReadWriteIntersect) {
  // r=1, w=3: read picks one subtree per level, write needs all three.
  const Hqc h(2, 1, 3);
  const auto reads = h.enumerate_read_quorums(100);
  const auto writes = h.enumerate_write_quorums(100);
  EXPECT_EQ(reads.size(), 9u);   // 3^depth choices... one leaf per path
  EXPECT_EQ(writes.size(), 1u);  // everything
  Bicoterie b(9, reads, writes);
  EXPECT_TRUE(b.intersection_holds());
}

TEST(HqcTest, AvailabilityRecursionMatchesEnumeration) {
  const Hqc h(2);
  const SetSystem system(9, h.enumerate_read_quorums(100));
  for (double p : {0.6, 0.8}) {
    EXPECT_NEAR(h.read_availability(p), exact_availability(system, p), 1e-9)
        << "p=" << p;
  }
}

TEST(HqcTest, KumarRecursionByHand) {
  // A1 = 3p^2(1-p) + p^3 at p=0.8 -> 0.896; depth 2 applies it again.
  const double p = 0.8;
  const double a1 = 3 * p * p * (1 - p) + p * p * p;
  const double a2 = 3 * a1 * a1 * (1 - a1) + a1 * a1 * a1;
  EXPECT_NEAR(Hqc(1).read_availability(p), a1, 1e-12);
  EXPECT_NEAR(Hqc(2).read_availability(p), a2, 1e-12);
}

TEST(HqcTest, LoadMatchesLpOptimum) {
  // Naor-Wool §6.4 says HQC's optimal load is n^-0.37; verify by LP at
  // depth 2 (9 replicas, 27 quorums).
  const Hqc h(2);
  const SetSystem system(9, h.enumerate_read_quorums(100));
  EXPECT_NEAR(optimal_load(system).load, h.read_load(), 1e-8);
}

TEST(HqcTest, EmpiricalLoadsBalanced) {
  const Hqc h(2);
  Rng rng(6);
  const auto loads = empirical_loads(h, 50000, rng);
  for (double l : loads.read) EXPECT_NEAR(l, 4.0 / 9.0, 0.02);
}

TEST(HqcTest, MeasuredAvailabilityMatchesFormula) {
  const Hqc h(3);
  Rng rng(8);
  const auto measured = measured_availability(h, 0.75, 20000, rng);
  EXPECT_NEAR(measured.read, h.read_availability(0.75), 0.015);
  EXPECT_NEAR(measured.write, h.write_availability(0.75), 0.015);
}

}  // namespace
}  // namespace atrcp
