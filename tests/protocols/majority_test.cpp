#include "protocols/majority.hpp"

#include <gtest/gtest.h>

#include "analysis/empirical.hpp"
#include "quorum/availability.hpp"
#include "quorum/lp.hpp"
#include "quorum/set_system.hpp"
#include "util/math.hpp"

namespace atrcp {
namespace {

TEST(MajorityTest, QuorumSizes) {
  EXPECT_EQ(MajorityQuorum(1).quorum_size(), 1u);
  EXPECT_EQ(MajorityQuorum(5).quorum_size(), 3u);
  EXPECT_EQ(MajorityQuorum(6).quorum_size(), 4u);
  EXPECT_EQ(MajorityQuorum(7).quorum_size(), 4u);
}

TEST(MajorityTest, PaperCosts) {
  // Paper §1: read and write cost (n+1)/2 for odd n.
  const MajorityQuorum m(9);
  EXPECT_DOUBLE_EQ(m.read_cost(), 5.0);
  EXPECT_DOUBLE_EQ(m.write_cost(), 5.0);
  // "imposes a system load of at least 0.5"
  EXPECT_GE(m.read_load(), 0.5);
}

TEST(MajorityTest, AssembleRespectsFailures) {
  const MajorityQuorum m(5);
  FailureSet failures(5);
  failures.fail(0);
  failures.fail(1);
  Rng rng(4);
  const auto q = m.assemble_read_quorum(failures, rng);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->size(), 3u);
  EXPECT_FALSE(q->contains(0));
  EXPECT_FALSE(q->contains(1));
  failures.fail(2);  // only 2 alive < 3
  EXPECT_FALSE(m.assemble_read_quorum(failures, rng).has_value());
}

TEST(MajorityTest, EnumerationIsACoterie) {
  const MajorityQuorum m(5);
  const auto quorums = m.enumerate_read_quorums(100);
  EXPECT_EQ(quorums.size(), binomial(5, 3));
  const SetSystem system(5, quorums);
  EXPECT_TRUE(system.is_coterie());
}

TEST(MajorityTest, AvailabilityIsBinomialTail) {
  const MajorityQuorum m(5);
  const SetSystem system(5, m.enumerate_read_quorums(100));
  for (double p : {0.5, 0.75}) {
    EXPECT_NEAR(m.read_availability(p), exact_availability(system, p), 1e-12);
    EXPECT_NEAR(m.read_availability(p), binomial_sf(5, 3, p), 1e-12);
  }
}

TEST(MajorityTest, LoadMatchesLpOptimum) {
  for (std::size_t n : {3u, 5u, 7u}) {
    const MajorityQuorum m(n);
    const SetSystem system(n, m.enumerate_read_quorums(1000));
    EXPECT_NEAR(optimal_load(system).load, m.read_load(), 1e-8) << "n=" << n;
  }
}

TEST(MajorityTest, EmpiricalLoadsAreBalanced) {
  const MajorityQuorum m(5);
  Rng rng(11);
  const auto loads = empirical_loads(m, 50000, rng);
  // Each replica should appear in ~3/5 of quorums under the uniform pick.
  for (double l : loads.read) EXPECT_NEAR(l, 0.6, 0.02);
}

TEST(MajorityTest, PeakAvailabilityAboveHalf) {
  // For p > 1/2, majority availability exceeds p itself as n grows
  // (Peleg-Wool): check the trend at p = 0.8.
  const double a3 = MajorityQuorum(3).read_availability(0.8);
  const double a9 = MajorityQuorum(9).read_availability(0.8);
  const double a21 = MajorityQuorum(21).read_availability(0.8);
  EXPECT_GT(a3, 0.8);
  EXPECT_GT(a9, a3);
  EXPECT_GT(a21, a9);
}

TEST(MajorityTest, AvailabilityDegradesBelowHalf) {
  // For p < 1/2 replication hurts: availability falls with n.
  const double a3 = MajorityQuorum(3).read_availability(0.4);
  const double a15 = MajorityQuorum(15).read_availability(0.4);
  EXPECT_LT(a3, 0.4);
  EXPECT_LT(a15, a3);
}

}  // namespace
}  // namespace atrcp
