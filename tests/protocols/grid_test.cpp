#include "protocols/grid.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/empirical.hpp"

namespace atrcp {
namespace {

TEST(GridTest, Construction) {
  EXPECT_THROW(Grid(0, 3), std::invalid_argument);
  EXPECT_THROW(Grid(3, 0), std::invalid_argument);
  EXPECT_EQ(Grid(3, 4).universe_size(), 12u);
}

TEST(GridTest, ForAtLeastIsNearSquare) {
  const Grid g9 = Grid::for_at_least(9);
  EXPECT_EQ(g9.rows(), 3u);
  EXPECT_EQ(g9.cols(), 3u);
  const Grid g10 = Grid::for_at_least(10);
  EXPECT_GE(g10.universe_size(), 10u);
  EXPECT_LE(g10.rows() * g10.cols(), 16u);
}

TEST(GridTest, Costs) {
  const Grid g(4, 5);
  EXPECT_DOUBLE_EQ(g.read_cost(), 5.0);       // one per column
  EXPECT_DOUBLE_EQ(g.write_cost(), 8.0);      // column + one per other column
}

TEST(GridTest, ReadQuorumOnePerColumn) {
  const Grid g(3, 3);
  FailureSet none(9);
  Rng rng(2);
  const auto q = g.assemble_read_quorum(none, rng);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->size(), 3u);
  // Exactly one member in each column (id % 3).
  std::vector<int> per_column(3, 0);
  for (ReplicaId id : q->members()) ++per_column[id % 3];
  for (int c : per_column) EXPECT_EQ(c, 1);
}

TEST(GridTest, WriteQuorumHasFullColumn) {
  const Grid g(3, 3);
  FailureSet none(9);
  Rng rng(3);
  const auto q = g.assemble_write_quorum(none, rng);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->size(), 5u);  // 3 + 2
  bool some_column_full = false;
  for (std::size_t c = 0; c < 3; ++c) {
    if (q->contains(static_cast<ReplicaId>(c)) &&
        q->contains(static_cast<ReplicaId>(3 + c)) &&
        q->contains(static_cast<ReplicaId>(6 + c))) {
      some_column_full = true;
    }
  }
  EXPECT_TRUE(some_column_full);
}

TEST(GridTest, ReadWriteQuorumsIntersect) {
  // Property over random failure patterns: whenever both assemble, they
  // intersect (a read hits every column, a write owns a full column).
  const Grid g(4, 4);
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    FailureSet failures(16);
    for (ReplicaId id = 0; id < 16; ++id) {
      if (rng.chance(0.2)) failures.fail(id);
    }
    const auto r = g.assemble_read_quorum(failures, rng);
    const auto w = g.assemble_write_quorum(failures, rng);
    if (r && w) {
      EXPECT_TRUE(r->intersects(*w));
    }
  }
}

TEST(GridTest, ReadDiesWithAColumn) {
  const Grid g(2, 2);
  FailureSet failures(4);
  failures.fail(0);  // column 0: replicas 0, 2
  failures.fail(2);
  Rng rng(6);
  EXPECT_FALSE(g.assemble_read_quorum(failures, rng).has_value());
  EXPECT_FALSE(g.assemble_write_quorum(failures, rng).has_value());
}

TEST(GridTest, WriteNeedsAFullColumn) {
  const Grid g(2, 2);
  FailureSet failures(4);
  failures.fail(0);  // kills column 0 (partially) ...
  failures.fail(3);  // ... and column 1 (partially): reads ok, writes not
  Rng rng(7);
  EXPECT_TRUE(g.assemble_read_quorum(failures, rng).has_value());
  EXPECT_FALSE(g.assemble_write_quorum(failures, rng).has_value());
}

TEST(GridTest, AvailabilityFormulasMatchMeasurement) {
  const Grid g(3, 3);
  Rng rng(8);
  for (double p : {0.7, 0.9}) {
    const auto measured = measured_availability(g, p, 30000, rng);
    EXPECT_NEAR(measured.read, g.read_availability(p), 0.01) << "p=" << p;
    EXPECT_NEAR(measured.write, g.write_availability(p), 0.01) << "p=" << p;
  }
}

TEST(GridTest, SquareGridLoadsScaleAsSqrtN) {
  const Grid g(10, 10);
  EXPECT_NEAR(g.read_load(), 0.1, 1e-12);
  EXPECT_NEAR(g.write_load(), 1.0 / 10 + 9.0 / 100, 1e-12);  // ~2/sqrt(n)
}

TEST(GridTest, EmpiricalLoadsMatchFormulas) {
  const Grid g(4, 4);
  Rng rng(9);
  const auto loads = empirical_loads(g, 50000, rng);
  EXPECT_NEAR(loads.max_read, g.read_load(), 0.02);
  EXPECT_NEAR(loads.max_write, g.write_load(), 0.02);
}

}  // namespace
}  // namespace atrcp
