#include "protocols/rooted_tree.hpp"

#include <gtest/gtest.h>

#include "analysis/empirical.hpp"

namespace atrcp {
namespace {

TEST(RootedTreeTest, ConstructionValidation) {
  EXPECT_THROW(RootedTreeQuorum(0, 2, 1, 1), std::invalid_argument);
  EXPECT_THROW(RootedTreeQuorum(3, 2, 1, 2), std::invalid_argument);  // r+w=3
  EXPECT_THROW(RootedTreeQuorum(3, 2, 4, 2), std::invalid_argument);
  EXPECT_THROW(RootedTreeQuorum(4, 2, 3, 2), std::invalid_argument);  // 2w=4
  EXPECT_NO_THROW(RootedTreeQuorum(3, 2, 2, 2));
}

TEST(RootedTreeTest, SizeOfCompleteTernaryTree) {
  const RootedTreeQuorum t(3, 2, 2, 2);
  EXPECT_EQ(t.universe_size(), 13u);  // 1 + 3 + 9
  EXPECT_EQ(RootedTreeQuorum::agrawal90(1, 2).universe_size(), 13u);
}

TEST(RootedTreeTest, FailureFreeReadIsJustTheRoot) {
  const RootedTreeQuorum t(3, 2, 2, 2);
  FailureSet none(13);
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    const auto q = t.assemble_read_quorum(none, rng);
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(*q, Quorum({0}));  // cost 1, load 1 — the §1 pathology
  }
}

TEST(RootedTreeTest, DeadRootReadDescendsToChildren) {
  const RootedTreeQuorum t(3, 2, 2, 2);
  FailureSet failures(13);
  failures.fail(0);
  Rng rng(2);
  const auto q = t.assemble_read_quorum(failures, rng);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->size(), 2u);  // two alive children serve directly
  for (ReplicaId id : q->members()) {
    EXPECT_GE(id, 1u);
    EXPECT_LE(id, 3u);
  }
}

TEST(RootedTreeTest, WriteAlwaysContainsTheRoot) {
  const RootedTreeQuorum t(3, 2, 2, 2);
  FailureSet none(13);
  Rng rng(3);
  for (int i = 0; i < 20; ++i) {
    const auto q = t.assemble_write_quorum(none, rng);
    ASSERT_TRUE(q.has_value());
    EXPECT_TRUE(q->contains(0));
    EXPECT_EQ(q->size(), 7u);  // 1 + 2 + 4
  }
}

TEST(RootedTreeTest, RootCrashHaltsWrites) {
  // The motivating defect of [1] that [2] fixed: no root, no writes.
  const RootedTreeQuorum t(3, 2, 2, 2);
  FailureSet failures(13);
  failures.fail(0);
  Rng rng(4);
  EXPECT_FALSE(t.assemble_write_quorum(failures, rng).has_value());
  EXPECT_TRUE(t.assemble_read_quorum(failures, rng).has_value());
}

TEST(RootedTreeTest, ReadWriteQuorumsIntersectUnderFailures) {
  const RootedTreeQuorum t(3, 2, 2, 2);
  Rng rng(5);
  for (int trial = 0; trial < 300; ++trial) {
    FailureSet failures(13);
    for (ReplicaId id = 0; id < 13; ++id) {
      if (rng.chance(0.25)) failures.fail(id);
    }
    const auto r = t.assemble_read_quorum(failures, rng);
    const auto w = t.assemble_write_quorum(failures, rng);
    if (r && w) {
      EXPECT_TRUE(r->intersects(*w))
          << "R=" << r->to_string() << " W=" << w->to_string();
    }
  }
}

TEST(RootedTreeTest, AvailabilityMatchesMonteCarlo) {
  const RootedTreeQuorum t(3, 2, 2, 2);
  Rng rng(6);
  for (double p : {0.7, 0.9}) {
    const auto measured = measured_availability(t, p, 30000, rng);
    EXPECT_NEAR(measured.read, t.read_availability(p), 0.01) << "p=" << p;
    EXPECT_NEAR(measured.write, t.write_availability(p), 0.01) << "p=" << p;
  }
}

TEST(RootedTreeTest, WriteAvailabilityBelowPReadAbove) {
  // Writes need the root (availability < p); reads have root fallback
  // (availability > p) — the asymmetry §1 describes for [1]/[7]/[5].
  const RootedTreeQuorum t(3, 3, 2, 2);
  for (double p : {0.6, 0.8, 0.95}) {
    EXPECT_LT(t.write_availability(p), p) << "p=" << p;
    EXPECT_GT(t.read_availability(p), p) << "p=" << p;
  }
}

TEST(RootedTreeTest, CostsMatchTheRelatedWorkTable) {
  // [7]-style S=3 tree: write cost sum 3^0..? with width 2: 1+2+4+8 = 15
  // at height 3; read best case 1, worst case 2^3 = 8.
  const RootedTreeQuorum t(3, 3, 2, 2);
  EXPECT_DOUBLE_EQ(t.read_cost(), 1.0);
  EXPECT_DOUBLE_EQ(t.write_cost(), 15.0);
  EXPECT_EQ(t.max_read_cost(), 8u);
  EXPECT_DOUBLE_EQ(t.read_load(), 1.0);
  EXPECT_DOUBLE_EQ(t.write_load(), 1.0);
}

TEST(RootedTreeTest, EmpiricalRootLoadIsTotal) {
  // Every failure-free read and write hits the root: measured load 1.
  const RootedTreeQuorum t(3, 2, 2, 2);
  Rng rng(7);
  const auto loads = empirical_loads(t, 5000, rng);
  EXPECT_DOUBLE_EQ(loads.read[0], 1.0);
  EXPECT_DOUBLE_EQ(loads.write[0], 1.0);
}

}  // namespace
}  // namespace atrcp
