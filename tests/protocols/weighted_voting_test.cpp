#include "protocols/weighted_voting.hpp"

#include <gtest/gtest.h>

#include "analysis/empirical.hpp"
#include "protocols/majority.hpp"
#include "protocols/rowa.hpp"

namespace atrcp {
namespace {

TEST(WeightedVotingTest, RejectsBrokenThresholds) {
  EXPECT_THROW(WeightedVoting({}, 1, 1), std::invalid_argument);
  EXPECT_THROW(WeightedVoting({1, 0, 1}, 2, 2), std::invalid_argument);
  EXPECT_THROW(WeightedVoting({1, 1, 1}, 1, 2), std::invalid_argument);  // R+W=T
  EXPECT_THROW(WeightedVoting({1, 1, 1, 1}, 3, 2), std::invalid_argument);  // 2W=T
  EXPECT_THROW(WeightedVoting({1, 1, 1}, 0, 3), std::invalid_argument);
  EXPECT_THROW(WeightedVoting({1, 1, 1}, 4, 3), std::invalid_argument);
  EXPECT_NO_THROW(WeightedVoting({1, 1, 1}, 2, 2));
}

TEST(WeightedVotingTest, MajoritySpecialCaseMatchesMajorityQuorum) {
  const WeightedVoting wv = WeightedVoting::majority(5);
  const MajorityQuorum mq(5);
  for (double p : {0.6, 0.8}) {
    EXPECT_NEAR(wv.read_availability(p), mq.read_availability(p), 1e-12);
    EXPECT_NEAR(wv.write_availability(p), mq.write_availability(p), 1e-12);
  }
  EXPECT_NEAR(wv.read_load(), mq.read_load(), 0.02);
  EXPECT_NEAR(wv.read_cost(), mq.read_cost(), 1e-9);
}

TEST(WeightedVotingTest, RowaSpecialCaseMatchesRowa) {
  const WeightedVoting wv = WeightedVoting::rowa(6);
  const Rowa rowa(6);
  for (double p : {0.5, 0.9}) {
    EXPECT_NEAR(wv.read_availability(p), rowa.read_availability(p), 1e-12);
    EXPECT_NEAR(wv.write_availability(p), rowa.write_availability(p), 1e-12);
  }
  EXPECT_DOUBLE_EQ(wv.read_cost(), 1.0);
  EXPECT_DOUBLE_EQ(wv.write_cost(), 6.0);
}

TEST(WeightedVotingTest, HeavyReplicaShrinksQuorums) {
  // Votes 3,1,1 with R=W=3: the heavy replica alone is a quorum.
  const WeightedVoting wv({3, 1, 1}, 3, 3);
  FailureSet none(3);
  Rng rng(1);
  double total_size = 0;
  for (int i = 0; i < 200; ++i) {
    const auto q = wv.assemble_read_quorum(none, rng);
    ASSERT_TRUE(q.has_value());
    total_size += static_cast<double>(q->size());
    // Any 3-vote set here either contains replica 0 or is {1,2} (2 votes —
    // impossible). So replica 0 is in every quorum... unless {0} fails.
    EXPECT_TRUE(q->contains(0));
  }
  EXPECT_LT(total_size / 200, 3.0);  // often just {0} or {0,x}
}

TEST(WeightedVotingTest, HeavyReplicaFailureKillsQuorums) {
  const WeightedVoting wv({3, 1, 1}, 3, 3);
  FailureSet failures(3);
  failures.fail(0);
  Rng rng(2);
  EXPECT_FALSE(wv.assemble_read_quorum(failures, rng).has_value());
  // Availability == p exactly: only sets containing replica 0 reach 3.
  EXPECT_NEAR(wv.read_availability(0.7), 0.7, 1e-12);
}

TEST(WeightedVotingTest, DpAvailabilityMatchesMonteCarlo) {
  const WeightedVoting wv({4, 2, 2, 1, 1}, 6, 6);
  Rng rng(3);
  const auto measured = measured_availability(wv, 0.8, 30000, rng);
  EXPECT_NEAR(measured.read, wv.read_availability(0.8), 0.01);
  EXPECT_NEAR(measured.write, wv.write_availability(0.8), 0.01);
}

TEST(WeightedVotingTest, AsymmetricReadWriteThresholds) {
  // R=2, W=5 over 6 unit votes: cheap reads, expensive writes (Gifford).
  const WeightedVoting wv(std::vector<std::uint32_t>(6, 1), 2, 5);
  FailureSet none(6);
  Rng rng(4);
  EXPECT_EQ(wv.assemble_read_quorum(none, rng)->size(), 2u);
  EXPECT_EQ(wv.assemble_write_quorum(none, rng)->size(), 5u);
  // Read/write quorums intersect by votes: 2 + 5 > 6.
  for (int i = 0; i < 100; ++i) {
    const auto r = wv.assemble_read_quorum(none, rng);
    const auto w = wv.assemble_write_quorum(none, rng);
    EXPECT_TRUE(r->intersects(*w));
  }
}

TEST(WeightedVotingTest, EmpiricalLoadIsBalancedForUnitVotes) {
  const WeightedVoting wv = WeightedVoting::majority(7);
  Rng rng(5);
  const auto loads = empirical_loads(wv, 30000, rng);
  for (double l : loads.read) EXPECT_NEAR(l, 4.0 / 7.0, 0.02);
}

}  // namespace
}  // namespace atrcp
