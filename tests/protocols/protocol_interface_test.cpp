// Coverage of the ReplicaControlProtocol base-class contract itself: the
// default enumeration behaviour and the Equation-3.2 free functions.
#include "protocols/protocol.hpp"

#include <gtest/gtest.h>

#include "protocols/grid.hpp"

namespace atrcp {
namespace {

TEST(ProtocolInterfaceTest, DefaultEnumerationThrows) {
  // Grid does not implement enumeration; the base must refuse, not return
  // an empty (and therefore wrong) quorum list.
  const Grid grid(3, 3);
  EXPECT_FALSE(grid.supports_enumeration());
  EXPECT_THROW(grid.enumerate_read_quorums(10), std::logic_error);
  EXPECT_THROW(grid.enumerate_write_quorums(10), std::logic_error);
}

TEST(ProtocolInterfaceTest, ExpectedReadLoadEquation) {
  // E L_RD = av * (L - 1) + 1.
  EXPECT_DOUBLE_EQ(expected_read_load(1.0, 0.25), 0.25);  // perfect av
  EXPECT_DOUBLE_EQ(expected_read_load(0.0, 0.25), 1.0);   // no av: load 1
  EXPECT_DOUBLE_EQ(expected_read_load(0.5, 0.5), 0.75);
}

TEST(ProtocolInterfaceTest, ExpectedWriteLoadEquation) {
  // E L_WR = av * L + (1 - av) * 1.
  EXPECT_DOUBLE_EQ(expected_write_load(1.0, 0.1), 0.1);
  EXPECT_DOUBLE_EQ(expected_write_load(0.0, 0.1), 1.0);
  EXPECT_DOUBLE_EQ(expected_write_load(0.8, 0.5), 0.6);
}

TEST(ProtocolInterfaceTest, ExpectedLoadsInterpolateMonotonically) {
  for (double load : {0.1, 0.5, 0.9}) {
    double previous_read = 2.0;
    double previous_write = 2.0;
    for (double av = 0.0; av <= 1.0001; av += 0.1) {
      const double read = expected_read_load(std::min(av, 1.0), load);
      const double write = expected_write_load(std::min(av, 1.0), load);
      EXPECT_LE(read, previous_read + 1e-12);    // better av, lower E-load
      EXPECT_LE(write, previous_write + 1e-12);
      previous_read = read;
      previous_write = write;
    }
  }
}

}  // namespace
}  // namespace atrcp
