#include "protocols/tree_quorum.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "analysis/empirical.hpp"
#include "quorum/availability.hpp"
#include "quorum/set_system.hpp"

namespace atrcp {
namespace {

TEST(TreeQuorumTest, Sizes) {
  EXPECT_EQ(TreeQuorum(0).universe_size(), 1u);
  EXPECT_EQ(TreeQuorum(1).universe_size(), 3u);
  EXPECT_EQ(TreeQuorum(2).universe_size(), 7u);
  EXPECT_EQ(TreeQuorum(3).universe_size(), 15u);
}

TEST(TreeQuorumTest, ForAtLeast) {
  EXPECT_EQ(TreeQuorum::for_at_least(1).universe_size(), 1u);
  EXPECT_EQ(TreeQuorum::for_at_least(4).universe_size(), 7u);
  EXPECT_EQ(TreeQuorum::for_at_least(7).universe_size(), 7u);
  EXPECT_EQ(TreeQuorum::for_at_least(8).universe_size(), 15u);
}

TEST(TreeQuorumTest, QuorumSizeBounds) {
  // Paper: costs range from log(n) (a path) to (n+1)/2 (all leaves).
  const TreeQuorum t(3);
  EXPECT_EQ(t.min_quorum_size(), 4u);
  EXPECT_EQ(t.max_quorum_size(), 8u);
}

TEST(TreeQuorumTest, FailureFreeQuorumIsARootLeafPath) {
  const TreeQuorum t(2);  // 7 replicas
  FailureSet none(7);
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    const auto q = t.assemble_read_quorum(none, rng);
    ASSERT_TRUE(q.has_value());
    EXPECT_EQ(q->size(), 3u);       // h+1
    EXPECT_TRUE(q->contains(0));    // root on every failure-free path
  }
}

TEST(TreeQuorumTest, RootFailureReplacedByChildQuorums) {
  // Height 2: root 0, children 1/2, leaves 3..6. Root dead: need quorums of
  // both child subtrees -> size 4 (both children + one leaf each) or more.
  const TreeQuorum t(2);
  FailureSet failures(7);
  failures.fail(0);
  Rng rng(6);
  const auto q = t.assemble_read_quorum(failures, rng);
  ASSERT_TRUE(q.has_value());
  EXPECT_FALSE(q->contains(0));
  EXPECT_TRUE(q->contains(1));
  EXPECT_TRUE(q->contains(2));
  EXPECT_EQ(q->size(), 4u);
}

TEST(TreeQuorumTest, DegradesToAllLeaves) {
  // All interior nodes dead: quorum must be every leaf.
  const TreeQuorum t(2);
  FailureSet failures(7);
  failures.fail(0);
  failures.fail(1);
  failures.fail(2);
  Rng rng(7);
  const auto q = t.assemble_read_quorum(failures, rng);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(*q, Quorum({3, 4, 5, 6}));
}

TEST(TreeQuorumTest, UnavailableWhenALeafPairAndRootDie) {
  // Root dead and one entire child subtree dead -> no quorum.
  const TreeQuorum t(2);
  FailureSet failures(7);
  failures.fail(0);
  failures.fail(1);
  failures.fail(3);
  failures.fail(4);
  Rng rng(8);
  EXPECT_FALSE(t.assemble_read_quorum(failures, rng).has_value());
}

TEST(TreeQuorumTest, SurvivesRootCrashUnlikeRootedProtocols) {
  // The motivating property of [2]: writes proceed with a dead root.
  const TreeQuorum t(3);
  FailureSet failures(15);
  failures.fail(0);
  Rng rng(9);
  EXPECT_TRUE(t.assemble_write_quorum(failures, rng).has_value());
}

TEST(TreeQuorumTest, EnumerationIsAQuorumSystem) {
  const TreeQuorum t(2);
  const auto quorums = t.enumerate_read_quorums(1000);
  // Height 2: N(v) satisfies N(leaf)=1, N = 2*N_child + N_child^2:
  // leaves 1; height1: 2*1+1 = 3; height2: 2*3+9 = 15.
  EXPECT_EQ(quorums.size(), 15u);
  const SetSystem system(7, quorums);
  EXPECT_TRUE(system.is_quorum_system());
}

TEST(TreeQuorumTest, AvailabilityRecursionMatchesEnumeration) {
  const TreeQuorum t(2);
  const SetSystem system(7, t.enumerate_read_quorums(1000));
  for (double p : {0.6, 0.8, 0.95}) {
    EXPECT_NEAR(t.read_availability(p), exact_availability(system, p), 1e-9)
        << "p=" << p;
  }
}

TEST(TreeQuorumTest, AvailabilityMatchesLiveAssembly) {
  const TreeQuorum t(3);
  Rng rng(10);
  const auto measured = measured_availability(t, 0.8, 20000, rng);
  EXPECT_NEAR(measured.read, t.read_availability(0.8), 0.01);
}

TEST(TreeQuorumTest, LoadFormula) {
  // Naor-Wool: 2/(h+2).
  EXPECT_NEAR(TreeQuorum(2).read_load(), 0.5, 1e-12);
  EXPECT_NEAR(TreeQuorum(3).read_load(), 0.4, 1e-12);
  EXPECT_NEAR(TreeQuorum(6).read_load(), 0.25, 1e-12);
}

TEST(TreeQuorumTest, AnalyticCostWithinBounds) {
  for (std::uint32_t h : {2u, 3u, 5u, 8u}) {
    const TreeQuorum t(h);
    const double cost = t.read_cost();
    EXPECT_GE(cost, static_cast<double>(t.min_quorum_size()) - 1e-9)
        << "h=" << h;
    EXPECT_LE(cost, static_cast<double>(t.max_quorum_size()) + 1e-9)
        << "h=" << h;
  }
}

TEST(TreeQuorumTest, HeightLimitEnforced) {
  EXPECT_THROW(TreeQuorum(31), std::invalid_argument);
}

}  // namespace
}  // namespace atrcp
