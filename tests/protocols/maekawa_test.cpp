#include "protocols/maekawa.hpp"

#include <gtest/gtest.h>

#include "analysis/empirical.hpp"
#include "quorum/availability.hpp"
#include "quorum/set_system.hpp"

namespace atrcp {
namespace {

TEST(MaekawaTest, Construction) {
  EXPECT_THROW(Maekawa(0), std::invalid_argument);
  EXPECT_EQ(Maekawa(4).universe_size(), 16u);
  EXPECT_EQ(Maekawa::for_at_least(10).side(), 4u);
  EXPECT_EQ(Maekawa::for_at_least(16).side(), 4u);
}

TEST(MaekawaTest, CostIsTwoSqrtNMinusOne) {
  const Maekawa m(5);
  EXPECT_DOUBLE_EQ(m.read_cost(), 9.0);
  EXPECT_DOUBLE_EQ(m.write_cost(), 9.0);
}

TEST(MaekawaTest, LoadIsAboutTwoOverSqrtN) {
  const Maekawa m(10);
  EXPECT_NEAR(m.read_load(), 19.0 / 100.0, 1e-12);
}

TEST(MaekawaTest, QuorumsArePairwiseIntersecting) {
  const Maekawa m(3);
  const auto quorums = m.enumerate_read_quorums(100);
  EXPECT_EQ(quorums.size(), 9u);
  const SetSystem system(9, quorums);
  EXPECT_TRUE(system.is_quorum_system());
  for (const Quorum& q : quorums) EXPECT_EQ(q.size(), 5u);  // 2*3-1
}

TEST(MaekawaTest, FailureFreeAssembly) {
  const Maekawa m(3);
  FailureSet none(9);
  Rng rng(4);
  const auto q = m.assemble_read_quorum(none, rng);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->size(), 5u);
}

TEST(MaekawaTest, NeedsAFullRowAndColumn) {
  const Maekawa m(2);
  FailureSet failures(4);
  // Kill replica 0: row 0 and column 0 both broken; row 1 = {2,3} and
  // column 1 = {1,3} still fully alive -> quorum of site (1,1).
  failures.fail(0);
  Rng rng(5);
  const auto q = m.assemble_read_quorum(failures, rng);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(*q, Quorum({1, 2, 3}));
  // Kill 3 as well: no fully-alive row remains.
  failures.fail(3);
  EXPECT_FALSE(m.assemble_read_quorum(failures, rng).has_value());
}

TEST(MaekawaTest, DpAvailabilityMatchesEnumeration) {
  // The row/column DP must agree with brute-force enumeration over the
  // explicit quorum system for small grids.
  for (std::size_t side : {2u, 3u}) {
    const Maekawa m(side);
    const SetSystem system(m.universe_size(),
                           m.enumerate_read_quorums(1000));
    for (double p : {0.6, 0.8, 0.95}) {
      EXPECT_NEAR(m.read_availability(p), exact_availability(system, p), 1e-9)
          << "side=" << side << " p=" << p;
    }
  }
}

TEST(MaekawaTest, DpAvailabilityMatchesLiveAssembly) {
  const Maekawa m(4);
  Rng rng(6);
  const auto measured = measured_availability(m, 0.9, 30000, rng);
  EXPECT_NEAR(measured.read, m.read_availability(0.9), 0.01);
}

TEST(MaekawaTest, EmpiricalLoadMatchesFormula) {
  const Maekawa m(4);
  Rng rng(7);
  const auto loads = empirical_loads(m, 50000, rng);
  EXPECT_NEAR(loads.max_read, m.read_load(), 0.03);
}

}  // namespace
}  // namespace atrcp
