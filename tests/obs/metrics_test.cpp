// The metrics registry: instrument semantics, JSON determinism, and the
// end-to-end check the obs layer exists for — an executed Table 1 workload
// whose measured quorum costs reproduce Facts 3.2.1/3.2.2.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>

#include "core/quorums.hpp"
#include "core/tree.hpp"
#include "txn/cluster.hpp"
#include "txn/workload.hpp"

namespace atrcp {
namespace {

TEST(CounterTest, IncrementsAndDeltas) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.set(2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
}

TEST(HistogramTest, BucketizesAtBoundsInclusively) {
  Histogram h({10, 100, 1000});
  h.record(0);
  h.record(10);    // <= 10: first bucket
  h.record(11);    // second bucket
  h.record(1000);  // last bucket, inclusive
  h.record(1001);  // overflow
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 0u + 10 + 11 + 1000 + 1001);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1001u);
  EXPECT_EQ(h.bucket_counts(), (std::vector<std::uint64_t>{2, 1, 1}));
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_DOUBLE_EQ(h.mean(), 2022.0 / 5.0);
}

TEST(HistogramTest, EmptyAndInvalidBounds) {
  Histogram h({5});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_THROW(Histogram({}), std::invalid_argument);
  EXPECT_THROW(Histogram({3, 3}), std::invalid_argument);
  EXPECT_THROW(Histogram({5, 2}), std::invalid_argument);
}

TEST(MetricsRegistryTest, FindOrCreateReturnsStableInstrument) {
  MetricsRegistry registry;
  Counter& a = registry.counter("x");
  a.inc(3);
  Counter& b = registry.counter("x");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(registry.counter_count(), 1u);
  EXPECT_EQ(registry.find_counter("x")->value(), 3u);
  EXPECT_EQ(registry.find_counter("y"), nullptr);
}

TEST(MetricsRegistryTest, NameNamesExactlyOneKind) {
  MetricsRegistry registry;
  registry.counter("n");
  EXPECT_THROW(registry.gauge("n"), std::invalid_argument);
  EXPECT_THROW(registry.histogram("n", {1, 2}), std::invalid_argument);
  registry.histogram("h", {1, 2});
  EXPECT_THROW(registry.histogram("h", {1, 3}), std::invalid_argument);
  EXPECT_NO_THROW(registry.histogram("h", {1, 2}));
}

TEST(MetricsRegistryTest, JsonIsSortedAndInsertionOrderFree) {
  MetricsRegistry first;
  first.counter("b").inc(2);
  first.counter("a").inc(1);
  first.gauge("g").set(0.5);
  MetricsRegistry second;
  second.gauge("g").set(0.5);
  second.counter("a").inc(1);
  second.counter("b").inc(2);
  EXPECT_EQ(first.to_json_string(), second.to_json_string());
  const std::string json = first.to_json_string();
  EXPECT_LT(json.find("\"a\""), json.find("\"b\""));
}

// ---- merge_from edge cases: the shard-local-arena merge contract ----
// Parallel sweeps give every shard its own registry and fold them into one;
// none of these folds may perturb the serialized bytes.

MetricsRegistry populated_registry() {
  MetricsRegistry registry;
  registry.counter("txn.committed").inc(7);
  registry.gauge("load").set(0.25);
  registry.histogram("lat", {10, 100}).record(42);
  return registry;
}

TEST(MetricsRegistryMergeTest, MergingAnEmptyShardLeavesJsonByteIdentical) {
  MetricsRegistry target = populated_registry();
  const std::string before = target.to_json_string();
  MetricsRegistry empty;
  target.merge_from(empty);
  EXPECT_EQ(target.to_json_string(), before);
}

TEST(MetricsRegistryMergeTest, MergingIntoAnEmptyTargetAdoptsShardBytes) {
  MetricsRegistry shard = populated_registry();
  MetricsRegistry target;
  target.merge_from(shard);
  EXPECT_EQ(target.to_json_string(), shard.to_json_string());
}

TEST(MetricsRegistryMergeTest, RegistrationOrderAcrossShardsDoesNotMatter) {
  // Two shards that registered the same instruments in opposite order must
  // fold to the same bytes regardless of merge order — output is sorted by
  // name, never by registration sequence.
  MetricsRegistry a;
  a.counter("x").inc(1);
  a.counter("y").inc(2);
  a.histogram("h", {5, 50}).record(3);
  MetricsRegistry b;
  b.histogram("h", {5, 50}).record(60);
  b.counter("y").inc(10);
  b.counter("x").inc(20);
  MetricsRegistry ab;
  ab.merge_from(a);
  ab.merge_from(b);
  MetricsRegistry ba;
  ba.merge_from(b);
  ba.merge_from(a);
  EXPECT_EQ(ab.to_json_string(), ba.to_json_string());
  EXPECT_EQ(ab.find_counter("x")->value(), 21u);
  EXPECT_EQ(ab.find_counter("y")->value(), 12u);
  EXPECT_EQ(ab.find_histogram("h")->count(), 2u);
}

TEST(MetricsRegistryMergeTest, SelfMergeIsANoOp) {
  MetricsRegistry registry = populated_registry();
  const std::string before = registry.to_json_string();
  registry.merge_from(registry);
  EXPECT_EQ(registry.to_json_string(), before);
}

TEST(HistogramMergeTest, EmptyOtherPreservesMinMaxAndBytes) {
  Histogram target({10, 100});
  target.record(7);
  target.record(250);
  Histogram empty({10, 100});
  target.merge_from(empty);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_EQ(target.min(), 7u);
  EXPECT_EQ(target.max(), 250u);
  EXPECT_EQ(target.overflow(), 1u);
  // And the reverse: an empty target adopts the other's extrema instead of
  // clamping min to its zero-initialized state.
  Histogram fresh({10, 100});
  fresh.merge_from(target);
  EXPECT_EQ(fresh.min(), 7u);
  EXPECT_EQ(fresh.max(), 250u);
}

TEST(FormatDoubleTest, ShortestRoundTripAndNull) {
  EXPECT_EQ(format_double(2.0), "2");
  EXPECT_EQ(format_double(0.35), "0.35");
  EXPECT_EQ(format_double(std::nan("")), "null");
}

TEST(JsonEscapeTest, EscapesControlAndQuotes) {
  EXPECT_EQ(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
}

// ---- end-to-end: the executed Table 1 tree reproduces Facts 3.2.1/3.2.2 ----

Cluster table1_cluster() {
  ClusterOptions options;
  options.clients = 2;
  options.link = LinkParams{.base_latency = 50, .jitter = 10};
  return Cluster(std::make_unique<ArbitraryProtocol>(
                     ArbitraryTree::from_spec("1-3-5"), "ARBITRARY"),
                 options);
}

WorkloadStats run_table1(Cluster& cluster) {
  WorkloadOptions workload;
  workload.transactions_per_client = 200;
  workload.read_fraction = 0.5;
  workload.num_keys = 16;
  return run_workload(cluster, workload);
}

double measured_mean(const MetricsRegistry& m, const std::string& kind) {
  const auto attempts =
      m.find_counter("quorum.ARBITRARY." + kind + ".attempts")->value();
  const auto failures =
      m.find_counter("quorum.ARBITRARY." + kind + ".failures")->value();
  const auto members =
      m.find_counter("quorum.ARBITRARY." + kind + ".members")->value();
  return static_cast<double>(members) /
         static_cast<double>(attempts - failures);
}

TEST(MetricsEndToEndTest, MeasuredQuorumCostsMatchFacts321And322) {
  Cluster cluster = table1_cluster();
  const WorkloadStats stats = run_table1(cluster);
  ASSERT_GT(stats.committed, 0u);
  const MetricsRegistry& m = cluster.metrics();
  // Fact 3.2.1: every read quorum (version pre-reads included) contains
  // exactly one node per physical level — the mean is |K_phy| = 2 EXACTLY,
  // not approximately, at p = 0.
  EXPECT_EQ(m.find_counter("quorum.ARBITRARY.read.failures")->value(), 0u);
  EXPECT_DOUBLE_EQ(measured_mean(m, "read"), 2.0);
  // Fact 3.2.2: a write quorum is one whole level, picked uniformly from
  // sizes {3, 5} — the mean approaches n / |K_phy| = 4 (5% tolerance).
  EXPECT_EQ(m.find_counter("quorum.ARBITRARY.write.failures")->value(), 0u);
  EXPECT_NEAR(measured_mean(m, "write"), 4.0, 0.2);
  // The net and replica counters saw the traffic.
  EXPECT_GT(m.find_counter("net.sent")->value(), 0u);
  EXPECT_EQ(m.find_counter("net.dropped")->value(), 0u);
  EXPECT_GT(m.find_counter("net.bytes_sent")->value(), 0u);
  EXPECT_GT(m.find_counter("replica.reads_served")->value(), 0u);
  EXPECT_GT(m.find_counter("replica.writes_applied")->value(), 0u);
  // Outcome tallies agree with the workload's own accounting.
  EXPECT_EQ(m.find_counter("txn.committed")->value(), stats.committed);
  EXPECT_EQ(m.find_counter("txn.aborted")->value(), stats.aborted);
  const Histogram* total = m.find_histogram("txn.latency.total_us");
  ASSERT_NE(total, nullptr);
  EXPECT_EQ(total->count(), stats.committed + stats.aborted + stats.blocked);
}

TEST(MetricsEndToEndTest, SameSeedRunsSerializeByteIdentically) {
  Cluster first = table1_cluster();
  run_table1(first);
  Cluster second = table1_cluster();
  run_table1(second);
  std::ostringstream a;
  std::ostringstream b;
  first.metrics().to_json(a);
  second.metrics().to_json(b);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_FALSE(a.str().empty());
}

}  // namespace
}  // namespace atrcp
