// SiteLoadAccountant: per-site hit totals reconcile with the aggregate
// members counters, the 64-site arbitrary tree measures near its analytic
// optima (Facts 3.2.3/3.2.4), and measured_mean_quorum stays NaN-safe when
// every attempt failed.
#include "obs/site_load.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/config.hpp"
#include "core/quorums.hpp"
#include "core/tree.hpp"
#include "obs/json_lint.hpp"
#include "obs/metrics.hpp"
#include "txn/cluster.hpp"
#include "txn/workload.hpp"

namespace atrcp {
namespace {

std::uint64_t counter(const MetricsRegistry& metrics,
                      const std::string& name) {
  const Counter* c = metrics.find_counter(name);
  return c == nullptr ? 0 : c->value();
}

TEST(SiteLoadTest, PerSiteTotalsMatchAggregateMembersCounters) {
  ClusterOptions options;
  options.clients = 2;
  options.link = LinkParams{.base_latency = 50, .jitter = 10};
  Cluster cluster(std::make_unique<ArbitraryProtocol>(
                      ArbitraryTree::from_spec("1-3-5"), "ARBITRARY"),
                  options);
  WorkloadOptions workload;
  workload.transactions_per_client = 100;
  workload.read_fraction = 0.5;
  workload.num_keys = 8;
  run_workload(cluster, workload);

  SiteLoadOptions load_options;
  load_options.protocol = "ARBITRARY";
  load_options.universe = cluster.protocol().universe_size();
  const SiteLoadTable table =
      collect_site_load(cluster.metrics(), load_options);
  // Every member of every assembled quorum was counted exactly once per
  // site, so the per-site sum reconciles with the aggregate counter.
  EXPECT_GT(table.read_quorums, 0u);
  EXPECT_GT(table.write_quorums, 0u);
  EXPECT_EQ(table.read_hits_total,
            counter(cluster.metrics(), "quorum.ARBITRARY.read.members"));
  EXPECT_EQ(table.write_hits_total,
            counter(cluster.metrics(), "quorum.ARBITRARY.write.members"));
  ASSERT_EQ(table.sites.size(), 8u);  // the 1-3-5 root is logical
  std::string error;
  EXPECT_TRUE(json_valid(table.to_json(), &error)) << error;
}

TEST(SiteLoadTest, SixtyFourSiteTreeMeasuresNearAnalyticOptima) {
  std::unique_ptr<ArbitraryProtocol> protocol = make_arbitrary(64);
  SiteLoadOptions load_options;
  load_options.protocol = protocol->name();
  load_options.universe = protocol->universe_size();
  load_options.analytic_read_load = protocol->read_load();
  load_options.analytic_write_load = protocol->write_load();
  const ArbitraryTree& tree = protocol->tree();
  for (const std::uint32_t level : tree.physical_levels()) {
    load_options.levels.push_back(tree.replicas_at_level(level));
  }
  // Fact 3.2.3: read load 1/d with d = 4; Fact 3.2.4: write load
  // 1/|K_phy| = 1/8 = 1/sqrt(64).
  EXPECT_DOUBLE_EQ(load_options.analytic_read_load, 0.25);
  EXPECT_DOUBLE_EQ(load_options.analytic_write_load, 0.125);

  ClusterOptions options;
  options.clients = 2;
  options.link = LinkParams{.base_latency = 50, .jitter = 10};
  Cluster cluster(std::move(protocol), options);
  WorkloadOptions workload;
  workload.transactions_per_client = 150;
  workload.read_fraction = 0.5;
  workload.num_keys = 16;
  run_workload(cluster, workload);

  const SiteLoadTable table =
      collect_site_load(cluster.metrics(), load_options);
  ASSERT_EQ(table.sites.size(), 64u);
  ASSERT_EQ(table.levels.size(), 8u);
  // The busiest site's measured shares sit near the analytic optima —
  // sampling noise only, no hot site.
  EXPECT_NEAR(table.max_read_share, 0.25, 0.08);
  EXPECT_NEAR(table.max_write_share, 0.125, 0.06);
  // Level rows partition the sites: their hit sums reconcile exactly.
  std::uint64_t level_read_hits = 0;
  std::uint64_t level_write_hits = 0;
  for (const LevelLoadRow& row : table.levels) {
    level_read_hits += row.read_hits;
    level_write_hits += row.write_hits;
  }
  EXPECT_EQ(level_read_hits, table.read_hits_total);
  EXPECT_EQ(level_write_hits, table.write_hits_total);
}

TEST(SiteLoadTest, MeasuredMeanQuorumIsNaNWhenEveryAttemptFailed) {
  MetricsRegistry metrics;
  metrics.counter("quorum.P.read.attempts").inc(7);
  metrics.counter("quorum.P.read.failures").inc(7);  // attempts == failures
  metrics.counter("quorum.P.read.members");
  const double mean = measured_mean_quorum(metrics, "P", "read");
  EXPECT_TRUE(std::isnan(mean));
  EXPECT_EQ(format_double(mean), "null");  // serializes as JSON null
}

TEST(SiteLoadTest, MeasuredMeanQuorumIsNaNOnAbsentOrInconsistentCounters) {
  MetricsRegistry metrics;
  EXPECT_TRUE(std::isnan(measured_mean_quorum(metrics, "P", "read")));
  metrics.counter("quorum.P.write.attempts").inc(2);
  metrics.counter("quorum.P.write.failures").inc(3);  // failures > attempts
  metrics.counter("quorum.P.write.members").inc(6);
  EXPECT_TRUE(std::isnan(measured_mean_quorum(metrics, "P", "write")));
}

TEST(SiteLoadTest, EmptyRegistrySerializesSharesAsNull) {
  MetricsRegistry metrics;
  SiteLoadOptions load_options;
  load_options.protocol = "P";
  load_options.universe = 2;
  load_options.analytic_read_load = std::nan("");
  const SiteLoadTable table = collect_site_load(metrics, load_options);
  EXPECT_EQ(table.read_quorums, 0u);
  EXPECT_TRUE(std::isnan(table.max_read_share));
  const std::string json = table.to_json();
  std::string error;
  EXPECT_TRUE(json_valid(json, &error)) << error;
  EXPECT_NE(json.find("\"analytic_read_load\":null"), std::string::npos);
  EXPECT_NE(json.find("\"read_share\":null"), std::string::npos);
}

}  // namespace
}  // namespace atrcp
