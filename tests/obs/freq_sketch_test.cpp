// FreqSketch: Count-Min upper bounds, Space-Saving lower bounds and the
// guaranteed-monitored property, deterministic top-k, merges, digests.
#include "obs/freq_sketch.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace atrcp {
namespace {

/// A deterministic skewed stream: key k appears roughly proportionally to
/// 1/(k+1) — a few heavy hitters over a long tail.
std::vector<std::uint64_t> skewed_stream(std::uint64_t universe,
                                         std::size_t length,
                                         std::uint32_t seed) {
  Rng rng(seed);
  std::vector<std::uint64_t> out;
  out.reserve(length);
  for (std::size_t i = 0; i < length; ++i) {
    // Repeated halving: key 0 w.p. 1/2, key 1 w.p. 1/4, ...
    std::uint64_t key = 0;
    while (key + 1 < universe && rng.below(2) == 1) ++key;
    out.push_back(key * 0x9E3779B97F4A7C15ULL % universe);
  }
  return out;
}

TEST(FreqSketchTest, EstimateNeverUndercounts) {
  FreqSketch sketch;
  std::map<std::uint64_t, std::uint64_t> exact;
  for (const std::uint64_t key : skewed_stream(1 << 20, 20'000, 0xF00D)) {
    sketch.record(key);
    ++exact[key];
  }
  EXPECT_EQ(sketch.total(), 20'000u);
  for (const auto& [key, count] : exact) {
    EXPECT_GE(sketch.estimate(key), count) << "key=" << key;
    EXPECT_GE(sketch.upper_bound(key), count) << "key=" << key;
    EXPECT_LE(sketch.lower_bound(key), count) << "key=" << key;
  }
}

TEST(FreqSketchTest, HotKeysAreGuaranteedMonitored) {
  FreqSketch sketch;
  std::map<std::uint64_t, std::uint64_t> exact;
  for (const std::uint64_t key : skewed_stream(1 << 16, 50'000, 0xBEEF)) {
    sketch.record(key);
    ++exact[key];
  }
  const std::uint64_t threshold = sketch.guaranteed_hot_threshold();
  std::size_t hot = 0;
  for (const auto& [key, count] : exact) {
    if (count > threshold) {
      ++hot;
      EXPECT_TRUE(sketch.monitored(key))
          << "key=" << key << " count=" << count << " thr=" << threshold;
      EXPECT_GT(sketch.lower_bound(key), 0u);
    }
  }
  EXPECT_GT(hot, 0u) << "stream not skewed enough to exercise the guarantee";
}

TEST(FreqSketchTest, TopKIsDeterministicallyOrdered) {
  FreqSketch sketch;
  for (const std::uint64_t key : skewed_stream(1 << 10, 30'000, 0xCAFE)) {
    sketch.record(key);
  }
  const auto top = sketch.top(10);
  ASSERT_FALSE(top.empty());
  for (std::size_t i = 1; i < top.size(); ++i) {
    const bool ordered =
        top[i - 1].second > top[i].second ||
        (top[i - 1].second == top[i].second && top[i - 1].first < top[i].first);
    EXPECT_TRUE(ordered) << "i=" << i;
  }
  // Every reported key is monitored, and the count is its upper bound.
  for (const auto& [key, count] : top) {
    EXPECT_TRUE(sketch.monitored(key));
    EXPECT_EQ(count, sketch.upper_bound(key));
  }
}

TEST(FreqSketchTest, IdenticalStreamsIdenticalDigests) {
  FreqSketch a;
  FreqSketch b;
  const auto stream = skewed_stream(1 << 12, 5'000, 0xAAAA);
  for (const std::uint64_t key : stream) a.record(key);
  for (const std::uint64_t key : stream) b.record(key);
  EXPECT_EQ(a.digest(), b.digest());
  b.record(0);
  EXPECT_NE(a.digest(), b.digest());
}

TEST(FreqSketchTest, MergePreservesBounds) {
  FreqSketch left;
  FreqSketch right;
  std::map<std::uint64_t, std::uint64_t> exact;
  for (const std::uint64_t key : skewed_stream(1 << 14, 8'000, 0x1111)) {
    left.record(key);
    ++exact[key];
  }
  for (const std::uint64_t key : skewed_stream(1 << 14, 8'000, 0x2222)) {
    right.record(key);
    ++exact[key];
  }
  FreqSketch merged;
  merged.merge_from(left);
  merged.merge_from(right);
  EXPECT_EQ(merged.total(), 16'000u);
  for (const auto& [key, count] : exact) {
    EXPECT_GE(merged.upper_bound(key), count) << "key=" << key;
    EXPECT_LE(merged.lower_bound(key), count) << "key=" << key;
  }
}

TEST(FreqSketchTest, MergeRejectsMismatchedGeometry) {
  FreqSketch base;
  FreqSketchOptions other_options;
  other_options.width_log2 = 10;
  FreqSketch other(other_options);
  EXPECT_THROW(base.merge_from(other), std::invalid_argument);
  FreqSketchOptions salted;
  salted.seed = 123;
  FreqSketch differently_salted(salted);
  EXPECT_THROW(base.merge_from(differently_salted), std::invalid_argument);
}

TEST(FreqSketchTest, ClearResetsEverything) {
  FreqSketch sketch;
  sketch.record(7, 100);
  EXPECT_TRUE(sketch.monitored(7));
  sketch.clear();
  EXPECT_EQ(sketch.total(), 0u);
  EXPECT_FALSE(sketch.monitored(7));
  EXPECT_EQ(sketch.estimate(7), 0u);
  FreqSketch fresh;
  EXPECT_EQ(sketch.digest(), fresh.digest());
}

TEST(FreqSketchTest, RejectsDegenerateGeometry) {
  FreqSketchOptions zero_rows;
  zero_rows.rows = 0;
  EXPECT_THROW(FreqSketch{zero_rows}, std::invalid_argument);
  FreqSketchOptions zero_capacity;
  zero_capacity.capacity = 0;
  EXPECT_THROW(FreqSketch{zero_capacity}, std::invalid_argument);
  FreqSketchOptions huge_width;
  huge_width.width_log2 = 40;
  EXPECT_THROW(FreqSketch{huge_width}, std::invalid_argument);
}

}  // namespace
}  // namespace atrcp
