// EventBus ring semantics, causal id allocation, and the cluster
// integration: every network deliver/drop repeats its send's causal id, so
// an export can draw the send->deliver arrow.
#include "obs/event_bus.hpp"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <stdexcept>
#include <string>

#include "core/quorums.hpp"
#include "core/tree.hpp"
#include "txn/cluster.hpp"

namespace atrcp {
namespace {

Event event_with_cid(std::uint64_t cid) {
  Event event;
  event.kind = EventKind::kMsgSend;
  event.causal_id = cid;
  return event;
}

TEST(EventBusTest, CapacityZeroIsAValidPureCounterBus) {
  // A capacity-0 bus retains nothing but still counts publishes and
  // allocates causal ids — publishers and exporters need no null checks.
  EventBus bus(0);
  EXPECT_EQ(bus.capacity(), 0u);
  bus.publish(event_with_cid(bus.next_causal_id()));
  bus.publish(event_with_cid(bus.next_causal_id()));
  EXPECT_EQ(bus.size(), 0u);
  EXPECT_EQ(bus.total_published(), 2u);
  EXPECT_EQ(bus.last_causal_id(), 2u);
  EXPECT_TRUE(bus.snapshot().empty());
  EXPECT_THROW(bus.at(0), std::out_of_range);
}

TEST(EventBusTest, RingKeepsMostRecentUpToCapacity) {
  EventBus bus(3);
  EXPECT_EQ(bus.capacity(), 3u);
  EXPECT_EQ(bus.size(), 0u);
  for (std::uint64_t id = 1; id <= 5; ++id) bus.publish(event_with_cid(id));
  EXPECT_EQ(bus.size(), 3u);
  EXPECT_EQ(bus.total_published(), 5u);
  // Oldest-first view holds the last three events.
  EXPECT_EQ(bus.at(0).causal_id, 3u);
  EXPECT_EQ(bus.at(1).causal_id, 4u);
  EXPECT_EQ(bus.at(2).causal_id, 5u);
  EXPECT_THROW(bus.at(3), std::out_of_range);
  const auto events = bus.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events.front().causal_id, 3u);
  EXPECT_EQ(events.back().causal_id, 5u);
  bus.clear();
  EXPECT_EQ(bus.size(), 0u);
  EXPECT_EQ(bus.total_published(), 5u);
}

TEST(EventBusTest, CausalIdsAreMonotoneFromOne) {
  EventBus bus(4);
  EXPECT_EQ(bus.last_causal_id(), 0u);  // 0 stays the "no link" sentinel
  EXPECT_EQ(bus.next_causal_id(), 1u);
  EXPECT_EQ(bus.next_causal_id(), 2u);
  EXPECT_EQ(bus.next_causal_id(), 3u);
  EXPECT_EQ(bus.last_causal_id(), 3u);
}

TEST(EventBusTest, ResetIsIndistinguishableFromAFreshBus) {
  // clear() keeps total_published/last_causal_id (mid-run trim); reset()
  // rewinds them too, so a reused scratch bus records byte-identically to
  // a bus constructed for the run — the arena-reuse contract the explorer's
  // seed blocks depend on.
  EventBus bus(4);
  for (std::uint64_t id = 1; id <= 6; ++id) bus.publish(event_with_cid(id));
  (void)bus.next_causal_id();
  bus.reset();
  EXPECT_EQ(bus.size(), 0u);
  EXPECT_EQ(bus.total_published(), 0u);
  EXPECT_EQ(bus.last_causal_id(), 0u);
  EXPECT_EQ(bus.capacity(), 4u);
  EXPECT_EQ(bus.next_causal_id(), 1u);  // id stream restarts like a new bus
  bus.publish(event_with_cid(1));
  EXPECT_EQ(bus.at(0).causal_id, 1u);
  EXPECT_EQ(bus.total_published(), 1u);
}

TEST(EventBusTest, FormatEventOmitsUnsetFields) {
  Event event;
  event.time = 120;
  event.kind = EventKind::kMsgDeliver;
  event.site = 0;
  event.peer = 8;
  event.causal_id = 3;
  event.label = "ReadRequest";
  EXPECT_EQ(format_event(event), "t=120 deliver site=0 peer=8 cid=3 "
                                 "ReadRequest");
  Event bare;
  bare.time = 7;
  bare.kind = EventKind::kHeal;
  EXPECT_EQ(format_event(bare), "t=7 heal");
}

TEST(EventBusTest, TailRendersMostRecentEvents) {
  EventBus bus(8);
  for (std::uint64_t id = 1; id <= 4; ++id) {
    Event event = event_with_cid(id);
    event.time = id * 10;
    event.site = 0;
    event.peer = 1;
    bus.publish(event);
  }
  const std::string tail = bus.tail_to_string(2);
  EXPECT_EQ(tail.find("cid=1"), std::string::npos);
  EXPECT_NE(tail.find("cid=3"), std::string::npos);
  EXPECT_NE(tail.find("cid=4"), std::string::npos);
}

TEST(EventBusClusterTest, DeliversAndDropsRepeatTheirSendsCausalId) {
  ClusterOptions options;
  options.clients = 2;
  options.link = LinkParams{.base_latency = 50, .jitter = 10,
                            .drop_probability = 0.05};
  options.event_bus_capacity = 1 << 15;
  Cluster cluster(std::make_unique<ArbitraryProtocol>(
                      ArbitraryTree::from_spec("1-3-5"), "ARBITRARY"),
                  options);
  ASSERT_NE(cluster.events(), nullptr);
  for (int i = 0; i < 20; ++i) {
    cluster.write_sync(i % 2, /*key=*/i % 4, "v" + std::to_string(i));
    cluster.read_sync(i % 2, i % 4);
  }
  const EventBus& bus = *cluster.events();
  ASSERT_LE(bus.total_published(), bus.capacity()) << "ring wrapped; the "
      "send<->deliver pairing below needs the full history";
  std::map<std::uint64_t, Event> sends;
  std::size_t completions = 0;
  std::uint64_t last_send_cid = 0;
  for (std::size_t i = 0; i < bus.size(); ++i) {
    const Event& e = bus.at(i);
    if (e.kind == EventKind::kMsgSend) {
      ASSERT_NE(e.causal_id, 0u);
      // Ids are allocated at send time, so sends observe them in order.
      EXPECT_GT(e.causal_id, last_send_cid);
      last_send_cid = e.causal_id;
      EXPECT_TRUE(sends.emplace(e.causal_id, e).second)
          << "duplicate send cid " << e.causal_id;
    } else if (e.kind == EventKind::kMsgDeliver ||
               e.kind == EventKind::kMsgDrop) {
      ASSERT_NE(e.causal_id, 0u);
      const auto it = sends.find(e.causal_id);
      ASSERT_NE(it, sends.end()) << "completion without a send";
      // The edge's endpoints flip: deliver happens AT the send's target.
      EXPECT_EQ(e.site, it->second.peer);
      EXPECT_EQ(e.peer, it->second.site);
      EXPECT_EQ(e.label, it->second.label);
      ++completions;
    }
  }
  EXPECT_GT(sends.size(), 0u);
  EXPECT_GT(completions, 0u);
}

TEST(EventBusClusterTest, RecordingIsOffByDefault) {
  Cluster cluster(std::make_unique<ArbitraryProtocol>(
      ArbitraryTree::from_spec("1-3-5"), "ARBITRARY"));
  EXPECT_EQ(cluster.events(), nullptr);
}

TEST(EventBusClusterTest, ExternalBusRecordsIdenticallyToOwnedBus) {
  // The shard-local arena reuse path: a caller-owned bus handed to
  // consecutive clusters via ClusterOptions::external_events must record
  // the same bytes as a bus each cluster allocates for itself — including
  // on the SECOND use, after the bus has been dirtied by a previous run.
  const auto run = [](EventBus* external) {
    ClusterOptions options;
    options.clients = 2;
    options.link = LinkParams{.base_latency = 50, .jitter = 10};
    if (external != nullptr) {
      options.external_events = external;
    } else {
      options.event_bus_capacity = 1 << 12;
    }
    Cluster cluster(std::make_unique<ArbitraryProtocol>(
                        ArbitraryTree::from_spec("1-3-5"), "ARBITRARY"),
                    options);
    for (int i = 0; i < 10; ++i) {
      cluster.write_sync(i % 2, i % 4, "v" + std::to_string(i));
    }
    const EventBus* bus = cluster.events();
    std::string out;
    for (std::size_t i = 0; i < bus->size(); ++i) {
      out += format_event(bus->at(i)) + "\n";
    }
    return out;
  };
  const std::string owned = run(nullptr);
  ASSERT_FALSE(owned.empty());
  EventBus shared(1 << 12);
  EXPECT_EQ(run(&shared), owned);  // fresh external bus
  EXPECT_EQ(run(&shared), owned);  // reused (dirty) external bus
}

}  // namespace
}  // namespace atrcp
