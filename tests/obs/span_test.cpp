// TxnSpan ring-log semantics plus the cluster integration: every finished
// transaction leaves a span whose phase stamps are ordered and whose
// counters mirror the registry's.
#include "obs/span.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "core/quorums.hpp"
#include "core/tree.hpp"
#include "txn/cluster.hpp"

namespace atrcp {
namespace {

TxnSpan span_with_id(std::uint64_t id) {
  TxnSpan span;
  span.txn_id = id;
  return span;
}

TEST(TxnSpanLogTest, KeepsMostRecentUpToCapacity) {
  TxnSpanLog log(3);
  EXPECT_EQ(log.capacity(), 3u);
  EXPECT_EQ(log.size(), 0u);
  for (std::uint64_t id = 1; id <= 5; ++id) log.record(span_with_id(id));
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.total_recorded(), 5u);
  // Oldest-first view holds the last three records.
  EXPECT_EQ(log.at(0).txn_id, 3u);
  EXPECT_EQ(log.at(1).txn_id, 4u);
  EXPECT_EQ(log.at(2).txn_id, 5u);
  EXPECT_THROW(log.at(3), std::out_of_range);
  const auto spans = log.snapshot();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans.front().txn_id, 3u);
  EXPECT_EQ(spans.back().txn_id, 5u);
  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.total_recorded(), 5u);
}

TEST(TxnSpanTest, UnsetSentinelDistinguishesTimeZero) {
  const TxnSpan fresh;
  EXPECT_EQ(fresh.locks_acquired, TxnSpan::kUnset);
  EXPECT_EQ(fresh.decided, TxnSpan::kUnset);
  // t = 0 is a legitimate stamp, distinct from "never happened".
  TxnSpan stamped;
  stamped.locks_acquired = 0;
  EXPECT_NE(stamped.locks_acquired, TxnSpan::kUnset);
}

TEST(TxnSpanClusterTest, EveryFinishedTxnLeavesAnOrderedSpan) {
  ClusterOptions options;
  options.span_log_capacity = 8;  // smaller than the txn count: ring wraps
  options.link = LinkParams{.base_latency = 50, .jitter = 10};
  Cluster cluster(std::make_unique<ArbitraryProtocol>(
                      ArbitraryTree::from_spec("1-3-5"), "ARBITRARY"),
                  options);
  const int txns = 20;
  for (int i = 0; i < txns; ++i) {
    cluster.write_sync(0, static_cast<Key>(i % 4), "v");
  }
  const TxnSpanLog& log = cluster.spans();
  EXPECT_EQ(log.total_recorded(), static_cast<std::uint64_t>(txns));
  EXPECT_EQ(log.size(), 8u);
  for (const TxnSpan& span : log.snapshot()) {
    EXPECT_EQ(span.outcome, 0u);  // all committed
    EXPECT_GE(span.end, span.begin);
    ASSERT_NE(span.locks_acquired, TxnSpan::kUnset);
    ASSERT_NE(span.ops_done, TxnSpan::kUnset);
    ASSERT_NE(span.decided, TxnSpan::kUnset);
    EXPECT_GE(span.ops_done, span.locks_acquired);
    EXPECT_GE(span.decided, span.ops_done);
    EXPECT_GE(span.end, span.decided);
    EXPECT_GE(span.quorum_rounds, 1u);  // at least the version pre-read
    EXPECT_EQ(span.total_latency(), span.end - span.begin);
  }
}

}  // namespace
}  // namespace atrcp
