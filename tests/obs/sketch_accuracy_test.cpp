// Tier-2 accuracy gates for the telemetry sketches: million-sample /
// million-key streams checked against exact oracles. The tier-1 suites
// (obs/qsketch_test.cpp, obs/freq_sketch_test.cpp) pin the same bounds on
// small streams; this suite is the scale witness for ROADMAP item 2 —
// sketch error bounds must hold where the exact maps become the bottleneck.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/quorums.hpp"
#include "core/tree.hpp"
#include "keyspace/generator.hpp"
#include "keyspace/keyspace.hpp"
#include "obs/freq_sketch.hpp"
#include "obs/qsketch.hpp"
#include "util/rng.hpp"

namespace atrcp {
namespace {

TEST(SketchAccuracyTest, QuantileRankErrorOnMillionSampleStream) {
  // 1M samples spanning ~14 orders of magnitude; every permille query must
  // land within the documented 1/64 relative error of the exact
  // nearest-rank answer, and an 8-way sharded merge must agree byte-for-
  // byte with the single-stream sketch.
  constexpr std::size_t kSamples = 1'000'000;
  constexpr std::size_t kShards = 8;
  Rng rng(0xACCE55E5u);
  QuantileSketch whole;
  std::vector<QuantileSketch> shards(kShards);
  std::vector<std::uint64_t> oracle;
  oracle.reserve(kSamples);
  for (std::size_t i = 0; i < kSamples; ++i) {
    const std::uint64_t v = rng.next() >> (4 + rng.below(48));
    whole.record(v);
    shards[i % kShards].record(v);
    oracle.push_back(v);
  }
  std::sort(oracle.begin(), oracle.end());

  for (std::uint32_t permille = 1; permille <= 1000; ++permille) {
    const std::size_t rank =
        (oracle.size() * permille + 999) / 1000;  // ceil, 1-based
    const std::uint64_t want = oracle[rank - 1];
    const std::uint64_t got = whole.quantile_permille(permille);
    const std::uint64_t diff = got > want ? got - want : want - got;
    ASSERT_LE(diff * 64, want) << "permille=" << permille << " want=" << want
                               << " got=" << got;
  }

  // Fold the shards back in reverse order: exact merge, byte-identical.
  QuantileSketch merged;
  for (std::size_t s = kShards; s-- > 0;) merged.merge_from(shards[s]);
  EXPECT_EQ(merged.digest(), whole.digest());
  EXPECT_EQ(merged.to_json(), whole.to_json());
}

TEST(SketchAccuracyTest, FreqBoundsOnMillionKeyZipfianStream) {
  // 2M accesses over a 1M-key universe: half the traffic concentrates on
  // 64 scrambled hot keys (~15.6k hits each, far above the Space-Saving
  // threshold of total/capacity ~ 7.8k), half is uniform cold tail
  // (~630k distinct keys). Every key the oracle saw must be bracketed by
  // the sketch bounds, and every key hotter than the threshold must be
  // monitored.
  constexpr std::uint64_t kUniverse = 1'000'000;
  constexpr std::size_t kOps = 2'000'000;
  FreqSketchOptions options;
  options.width_log2 = 14;  // 16384 counters/row: ~122 expected inflation
  options.capacity = 256;
  FreqSketch sketch(options);
  std::map<std::uint64_t, std::uint64_t> oracle;
  Rng rng(0xB16F00D5u);
  for (std::size_t i = 0; i < kOps; ++i) {
    const std::uint64_t key =
        rng.below(2) == 0
            ? rng.below(64) * 0x9E3779B97F4A7C15ULL % kUniverse
            : rng.below(kUniverse);
    sketch.record(key);
    ++oracle[key];
  }
  ASSERT_GT(oracle.size(), 400'000u) << "stream not spread enough to "
      "exercise the million-key regime";
  EXPECT_EQ(sketch.total(), kOps);

  const std::uint64_t threshold = sketch.guaranteed_hot_threshold();
  const std::uint64_t expected_inflation = kOps >> options.width_log2;  // 122
  std::uint64_t overshoot_sum = 0;
  std::size_t overshoot_tail = 0;
  for (const auto& [key, exact] : oracle) {
    ASSERT_GE(sketch.upper_bound(key), exact) << "key=" << key;
    ASSERT_LE(sketch.lower_bound(key), exact) << "key=" << key;
    if (exact > threshold) {
      ASSERT_TRUE(sketch.monitored(key))
          << "hot key " << key << " (" << exact << " > " << threshold
          << ") escaped the monitored set";
    }
    const std::uint64_t overshoot = sketch.upper_bound(key) - exact;
    overshoot_sum += overshoot;
    if (overshoot > expected_inflation * 8) ++overshoot_tail;
  }
  // Count-Min's inflation guarantee is per-key probabilistic, so gate the
  // distribution, not the worst case: a key sharing all 4 row cells with a
  // hot key legitimately inherits its count (measured: exactly one such
  // key in this stream). A broken hash blows both gates immediately.
  EXPECT_LT(overshoot_sum, oracle.size() * expected_inflation * 3);
  EXPECT_LE(overshoot_tail, 5u) << "too many keys above 8x expected "
      "Count-Min inflation";

  // The monitored top-k must agree with the oracle on the true heavy
  // hitters: every oracle top-8 key sits in the sketch's monitored set.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ranked(oracle.begin(),
                                                              oracle.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  for (std::size_t i = 0; i < 8 && i < ranked.size(); ++i) {
    EXPECT_TRUE(sketch.monitored(ranked[i].first))
        << "oracle rank " << i << " key " << ranked[i].first;
  }
}

TEST(SketchAccuracyTest, SketchHotnessHoldsOnSixteenShardMillionKeyRun) {
  // The end-to-end gate from the issue: a 16-shard sharded-keyspace run at
  // a 1M-record keyspace in sketch mode, with the exact oracle riding
  // along (cross_check), must keep every sketch answer inside its bound.
  KeyspaceOptions options;
  options.shards = 16;
  options.shard_protocol = [] {
    return std::make_unique<ArbitraryProtocol>(
        ArbitraryTree::from_spec("1-3-5"));
  };
  options.clients = 4;
  options.seed = 0x5CA1E;
  options.link = LinkParams{.base_latency = 50, .jitter = 10};
  options.hotness.mode = HotnessMode::kSketch;
  options.hotness.cross_check = true;
  ShardedKeyspace keyspace(options);

  KeyspaceRunOptions run;
  run.mix = standard_mixes()[0];  // zipfian theta=0.99: real heavy hitters
  run.records = 1'000'000;
  run.ops_per_client = 400;
  run.workload_seed = 0x16B16B;
  const KeyspaceStats stats = run_keyspace_workload(keyspace, run);
  EXPECT_GT(stats.committed, 0u);

  const HotnessTracker& hotness = keyspace.hotness();
  ASSERT_TRUE(hotness.has_oracle());
  ASSERT_NE(hotness.sketch(), nullptr);
  const std::uint64_t threshold =
      hotness.sketch()->guaranteed_hot_threshold();
  const auto oracle = hotness.exact_top(
      static_cast<std::size_t>(hotness.window_total()) + 1);
  ASSERT_FALSE(oracle.empty());
  for (const auto& [key, exact] : oracle) {
    ASSERT_LE(hotness.count_lower(key), exact) << "key=" << key;
    ASSERT_GE(hotness.count_upper(key), exact) << "key=" << key;
    if (exact > threshold) {
      ASSERT_TRUE(hotness.sketch()->monitored(key)) << "key=" << key;
    }
  }
}

}  // namespace
}  // namespace atrcp
