// Chrome trace-event export: valid JSON, per-site thread_name tracks,
// send->deliver flow events, and byte determinism across same-seed runs.
#include "obs/chrome_trace.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/quorums.hpp"
#include "core/tree.hpp"
#include "obs/critical_path.hpp"
#include "obs/event_bus.hpp"
#include "obs/json_lint.hpp"
#include "txn/cluster.hpp"
#include "txn/workload.hpp"

namespace atrcp {
namespace {

std::string seeded_trace(ChromeTraceStats* stats) {
  ClusterOptions options;
  options.clients = 2;
  options.link = LinkParams{.base_latency = 50, .jitter = 10};
  options.event_bus_capacity = 1 << 14;
  Cluster cluster(std::make_unique<ArbitraryProtocol>(
                      ArbitraryTree::from_spec("1-3-5"), "ARBITRARY"),
                  options);
  cluster.injector().crash_at(10'000, 2);
  cluster.injector().recover_at(60'000, 2);
  WorkloadOptions workload;
  workload.transactions_per_client = 25;
  workload.read_fraction = 0.5;
  workload.num_keys = 4;
  run_workload(cluster, workload);
  return chrome_trace_json(*cluster.events(), cluster.site_names(), stats);
}

TEST(ChromeTraceTest, EmptyBusExportsValidEnvelope) {
  EventBus bus(4);
  ChromeTraceStats stats{};
  const std::string json = chrome_trace_json(bus, {}, &stats);
  std::string error;
  EXPECT_TRUE(json_valid(json, &error)) << error;
  EXPECT_EQ(stats.tracks, 0u);   // no sites ever observed
  EXPECT_EQ(stats.records, 1u);  // just the synthetic system track
}

TEST(ChromeTraceTest, CapacityZeroBusExportsValidEnvelope) {
  // Regression: the degenerate no-retention bus must still export a valid
  // (empty) document rather than crash or emit broken JSON.
  EventBus bus(0);
  Event send;
  send.kind = EventKind::kMsgSend;
  send.site = 0;
  send.peer = 1;
  send.causal_id = bus.next_causal_id();
  send.label = "ReadRequest";
  bus.publish(send);  // retained nowhere
  ChromeTraceStats stats{};
  const std::string json = chrome_trace_json(bus, {}, &stats);
  std::string error;
  EXPECT_TRUE(json_valid(json, &error)) << error;
  EXPECT_EQ(stats.tracks, 0u);
  EXPECT_EQ(stats.records, 1u);  // just the synthetic system track
  EXPECT_EQ(stats.flow_begins, 0u);
}

TEST(ChromeTraceTest, MultiShardExportHasProcessTracksAndOverlay) {
  // Two single-txn shards, each with a critical-path overlay: the export
  // must carry process_name metadata per shard, per-shard site tracks, and
  // "critical path" overlay slices — and still lint.
  EventBus first(64);
  EventBus second(64);
  for (EventBus* bus : {&first, &second}) {
    Event e;
    e.kind = EventKind::kTxnBegin;
    e.site = 2;
    e.txn_id = 1;
    bus->publish(e);
    Event send;
    send.time = 5;
    send.kind = EventKind::kMsgSend;
    send.site = 2;
    send.peer = 0;
    send.causal_id = bus->next_causal_id();
    send.label = "ReadRequest";
    bus->publish(send);
    Event deliver = send;
    deliver.time = 30;
    deliver.kind = EventKind::kMsgDeliver;
    deliver.site = 0;
    deliver.peer = 2;
    bus->publish(deliver);
    Event reply;
    reply.time = 30;
    reply.kind = EventKind::kMsgSend;
    reply.site = 0;
    reply.peer = 2;
    reply.causal_id = bus->next_causal_id();
    reply.label = "ReadReply";
    bus->publish(reply);
    Event reply_deliver = reply;
    reply_deliver.time = 60;
    reply_deliver.kind = EventKind::kMsgDeliver;
    reply_deliver.site = 2;
    reply_deliver.peer = 0;
    bus->publish(reply_deliver);
    Event finish;
    finish.time = 70;
    finish.kind = EventKind::kTxnFinish;
    finish.site = 2;
    finish.txn_id = 1;
    finish.label = "committed";
    bus->publish(finish);
  }
  const CriticalPathReport first_report = analyze_critical_paths(first);
  const CriticalPathReport second_report = analyze_critical_paths(second);
  ASSERT_EQ(first_report.txns_analyzed, 1u);

  std::vector<ShardTrace> shards(2);
  shards[0].bus = &first;
  shards[0].name = "shard 0";
  shards[0].critical = &first_report;
  shards[1].bus = &second;
  shards[1].name = "shard 1";
  shards[1].critical = &second_report;
  ChromeTraceStats stats{};
  const std::string json = chrome_trace_shards_json(shards, &stats);
  std::string error;
  ASSERT_TRUE(json_valid(json, &error)) << error;
  EXPECT_EQ(stats.tracks, 6u);  // sites 0..2 per shard
  EXPECT_GT(stats.critical_slices, 0u);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"shard 1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"critical path\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
}

TEST(ChromeTraceTest, SingleUnnamedShardMatchesLegacyExport) {
  EventBus bus(8);
  Event send;
  send.time = 100;
  send.kind = EventKind::kMsgSend;
  send.site = 0;
  send.peer = 1;
  send.causal_id = bus.next_causal_id();
  send.label = "ReadRequest";
  bus.publish(send);
  ShardTrace shard;
  shard.bus = &bus;
  shard.site_names = {"a", "b"};
  EXPECT_EQ(chrome_trace_shards_json({shard}),
            chrome_trace_json(bus, {"a", "b"}));
}

TEST(ChromeTraceTest, SiteNamesBecomeThreadNameMetadata) {
  EventBus bus(8);
  Event send;
  send.time = 100;
  send.kind = EventKind::kMsgSend;
  send.site = 0;
  send.peer = 1;
  send.causal_id = bus.next_causal_id();
  send.label = "ReadRequest";
  bus.publish(send);
  Event deliver = send;
  deliver.time = 150;
  deliver.kind = EventKind::kMsgDeliver;
  deliver.site = 1;
  deliver.peer = 0;
  bus.publish(deliver);
  ChromeTraceStats stats{};
  const std::string json =
      chrome_trace_json(bus, {"replica 0", "client 0"}, &stats);
  std::string error;
  ASSERT_TRUE(json_valid(json, &error)) << error;
  EXPECT_EQ(stats.tracks, 2u);
  EXPECT_EQ(stats.flow_begins, 1u);
  EXPECT_EQ(stats.flow_ends, 1u);
  EXPECT_NE(json.find("\"name\":\"replica 0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"client 0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"system\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
}

TEST(ChromeTraceTest, SeededClusterExportIsValidWithFlowEvents) {
  ChromeTraceStats stats{};
  const std::string json = seeded_trace(&stats);
  std::string error;
  EXPECT_TRUE(json_valid(json, &error)) << error;
  // 8 replicas (the 1-3-5 root is logical) + 2 clients = 10 site tracks.
  EXPECT_EQ(stats.tracks, 10u);
  EXPECT_GT(stats.flow_begins, 0u);
  EXPECT_GT(stats.flow_ends, 0u);
  // The crash/recover instants land on the timeline too.
  EXPECT_NE(json.find("\"name\":\"crash\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"recover\""), std::string::npos);
}

TEST(ChromeTraceTest, SameSeedRunsExportIdenticalBytes) {
  ChromeTraceStats first_stats{};
  ChromeTraceStats second_stats{};
  const std::string first = seeded_trace(&first_stats);
  const std::string second = seeded_trace(&second_stats);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first_stats.records, second_stats.records);
  EXPECT_EQ(first_stats.flow_begins, second_stats.flow_begins);
}

}  // namespace
}  // namespace atrcp
