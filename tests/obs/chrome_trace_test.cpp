// Chrome trace-event export: valid JSON, per-site thread_name tracks,
// send->deliver flow events, and byte determinism across same-seed runs.
#include "obs/chrome_trace.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/quorums.hpp"
#include "core/tree.hpp"
#include "obs/event_bus.hpp"
#include "obs/json_lint.hpp"
#include "txn/cluster.hpp"
#include "txn/workload.hpp"

namespace atrcp {
namespace {

std::string seeded_trace(ChromeTraceStats* stats) {
  ClusterOptions options;
  options.clients = 2;
  options.link = LinkParams{.base_latency = 50, .jitter = 10};
  options.event_bus_capacity = 1 << 14;
  Cluster cluster(std::make_unique<ArbitraryProtocol>(
                      ArbitraryTree::from_spec("1-3-5"), "ARBITRARY"),
                  options);
  cluster.injector().crash_at(10'000, 2);
  cluster.injector().recover_at(60'000, 2);
  WorkloadOptions workload;
  workload.transactions_per_client = 25;
  workload.read_fraction = 0.5;
  workload.num_keys = 4;
  run_workload(cluster, workload);
  return chrome_trace_json(*cluster.events(), cluster.site_names(), stats);
}

TEST(ChromeTraceTest, EmptyBusExportsValidEnvelope) {
  EventBus bus(4);
  ChromeTraceStats stats{};
  const std::string json = chrome_trace_json(bus, {}, &stats);
  std::string error;
  EXPECT_TRUE(json_valid(json, &error)) << error;
  EXPECT_EQ(stats.tracks, 0u);   // no sites ever observed
  EXPECT_EQ(stats.records, 1u);  // just the synthetic system track
}

TEST(ChromeTraceTest, SiteNamesBecomeThreadNameMetadata) {
  EventBus bus(8);
  Event send;
  send.time = 100;
  send.kind = EventKind::kMsgSend;
  send.site = 0;
  send.peer = 1;
  send.causal_id = bus.next_causal_id();
  send.label = "ReadRequest";
  bus.publish(send);
  Event deliver = send;
  deliver.time = 150;
  deliver.kind = EventKind::kMsgDeliver;
  deliver.site = 1;
  deliver.peer = 0;
  bus.publish(deliver);
  ChromeTraceStats stats{};
  const std::string json =
      chrome_trace_json(bus, {"replica 0", "client 0"}, &stats);
  std::string error;
  ASSERT_TRUE(json_valid(json, &error)) << error;
  EXPECT_EQ(stats.tracks, 2u);
  EXPECT_EQ(stats.flow_begins, 1u);
  EXPECT_EQ(stats.flow_ends, 1u);
  EXPECT_NE(json.find("\"name\":\"replica 0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"client 0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"system\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
}

TEST(ChromeTraceTest, SeededClusterExportIsValidWithFlowEvents) {
  ChromeTraceStats stats{};
  const std::string json = seeded_trace(&stats);
  std::string error;
  EXPECT_TRUE(json_valid(json, &error)) << error;
  // 8 replicas (the 1-3-5 root is logical) + 2 clients = 10 site tracks.
  EXPECT_EQ(stats.tracks, 10u);
  EXPECT_GT(stats.flow_begins, 0u);
  EXPECT_GT(stats.flow_ends, 0u);
  // The crash/recover instants land on the timeline too.
  EXPECT_NE(json.find("\"name\":\"crash\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"recover\""), std::string::npos);
}

TEST(ChromeTraceTest, SameSeedRunsExportIdenticalBytes) {
  ChromeTraceStats first_stats{};
  ChromeTraceStats second_stats{};
  const std::string first = seeded_trace(&first_stats);
  const std::string second = seeded_trace(&second_stats);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first_stats.records, second_stats.records);
  EXPECT_EQ(first_stats.flow_begins, second_stats.flow_begins);
}

}  // namespace
}  // namespace atrcp
