// QuantileSketch: bucket geometry, the 1/64 relative-error guarantee,
// nearest-rank quantiles, exact commutative merges, and digest stability.
#include "obs/qsketch.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "obs/json_lint.hpp"
#include "util/rng.hpp"

namespace atrcp {
namespace {

TEST(QuantileSketchTest, UnitBucketsAreExact) {
  for (std::uint64_t v = 0; v < QuantileSketch::kSubBuckets; ++v) {
    EXPECT_EQ(QuantileSketch::bucket_of(v), v);
    EXPECT_EQ(QuantileSketch::bucket_lower(static_cast<std::uint32_t>(v)), v);
    EXPECT_EQ(QuantileSketch::bucket_representative(
                  static_cast<std::uint32_t>(v)),
              v);
  }
}

TEST(QuantileSketchTest, BucketOfIsMonotoneAndInverts) {
  std::uint32_t prev = 0;
  for (std::uint64_t v = 1; v != 0; v = v < 1'000'000 ? v + 1 : v * 2 + 7) {
    const std::uint32_t b = QuantileSketch::bucket_of(v);
    ASSERT_GE(b, prev) << "v=" << v;
    ASSERT_LT(b, QuantileSketch::kMaxBuckets);
    ASSERT_LE(QuantileSketch::bucket_lower(b), v) << "v=" << v;
    if (b + 1 < QuantileSketch::kMaxBuckets) {
      ASSERT_GT(QuantileSketch::bucket_lower(b + 1), v) << "v=" << v;
    }
    prev = b;
    if (v > (std::uint64_t{1} << 62)) break;
  }
}

TEST(QuantileSketchTest, RepresentativeWithinRelativeErrorBound) {
  // Every sample's bucket representative is within 1/64 of the sample.
  Rng rng(0xABCDEF12u);
  for (int i = 0; i < 200'000; ++i) {
    const std::uint64_t v = rng.next() >> (rng.below(58));
    const std::uint64_t rep = QuantileSketch::bucket_representative(
        QuantileSketch::bucket_of(v));
    const std::uint64_t diff = rep > v ? rep - v : v - rep;
    // diff <= v / 64 (unit buckets are exact so diff == 0 there).
    EXPECT_LE(diff * 64, v == 0 ? 0 : v) << "v=" << v << " rep=" << rep;
  }
}

TEST(QuantileSketchTest, NearestRankQuantilesOnKnownStream) {
  QuantileSketch sketch;
  for (std::uint64_t v = 1; v <= 1000; ++v) sketch.record(v);
  EXPECT_EQ(sketch.count(), 1000u);
  EXPECT_EQ(sketch.sum(), 500'500u);
  EXPECT_EQ(sketch.min(), 1u);
  EXPECT_EQ(sketch.max(), 1000u);
  // Representative must be within 1/64 of the true nearest-rank value.
  const auto near = [](std::uint64_t got, std::uint64_t want) {
    const std::uint64_t diff = got > want ? got - want : want - got;
    return diff * 64 <= want;
  };
  EXPECT_TRUE(near(sketch.p50(), 500)) << sketch.p50();
  EXPECT_TRUE(near(sketch.p90(), 900)) << sketch.p90();
  EXPECT_TRUE(near(sketch.p99(), 990)) << sketch.p99();
  EXPECT_TRUE(near(sketch.p999(), 999)) << sketch.p999();
  EXPECT_EQ(sketch.quantile_permille(0), sketch.quantile_permille(1));
  EXPECT_TRUE(near(sketch.quantile_permille(1000), 1000));
}

TEST(QuantileSketchTest, EmptySketchIsZeros) {
  QuantileSketch sketch;
  EXPECT_EQ(sketch.count(), 0u);
  EXPECT_EQ(sketch.min(), 0u);
  EXPECT_EQ(sketch.max(), 0u);
  EXPECT_EQ(sketch.p999(), 0u);
  EXPECT_EQ(sketch.nonzero_buckets(), 0u);
  std::string error;
  EXPECT_TRUE(json_valid(sketch.to_json(), &error)) << error;
}

TEST(QuantileSketchTest, MergeIsExactAndOrderIndependent) {
  Rng rng(0x5EED5EEDu);
  std::vector<std::uint64_t> samples;
  samples.reserve(30'000);
  for (int i = 0; i < 30'000; ++i) {
    samples.push_back(rng.next() >> rng.below(50));
  }
  QuantileSketch whole;
  for (const std::uint64_t v : samples) whole.record(v);

  // Split three ways, merge in two different groupings and orders.
  QuantileSketch parts[3];
  for (std::size_t i = 0; i < samples.size(); ++i) {
    parts[i % 3].record(samples[i]);
  }
  QuantileSketch forward;
  forward.merge_from(parts[0]);
  forward.merge_from(parts[1]);
  forward.merge_from(parts[2]);
  QuantileSketch backward;
  backward.merge_from(parts[2]);
  backward.merge_from(parts[1]);
  backward.merge_from(parts[0]);

  EXPECT_EQ(forward.digest(), whole.digest());
  EXPECT_EQ(backward.digest(), whole.digest());
  EXPECT_EQ(forward.to_json(), whole.to_json());
  EXPECT_EQ(backward.to_json(), whole.to_json());
  EXPECT_EQ(forward.count(), whole.count());
  EXPECT_EQ(forward.sum(), whole.sum());
  EXPECT_EQ(forward.min(), whole.min());
  EXPECT_EQ(forward.max(), whole.max());
}

TEST(QuantileSketchTest, RecordOrderDoesNotChangeDigest) {
  Rng rng(0x11223344u);
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 5000; ++i) samples.push_back(rng.below(1 << 20));
  QuantileSketch in_order;
  for (const std::uint64_t v : samples) in_order.record(v);
  std::sort(samples.rbegin(), samples.rend());
  QuantileSketch reversed;
  for (const std::uint64_t v : samples) reversed.record(v);
  EXPECT_EQ(in_order.digest(), reversed.digest());
  EXPECT_EQ(in_order.to_json(), reversed.to_json());
}

TEST(QuantileSketchTest, DigestDistinguishesDifferentStates) {
  QuantileSketch a;
  QuantileSketch b;
  a.record(100);
  b.record(100);
  EXPECT_EQ(a.digest(), b.digest());
  b.record(100);
  EXPECT_NE(a.digest(), b.digest());
  QuantileSketch c;
  c.record(101);  // different bucket? 101 vs 100 share a bucket width 2 --
  c.record(7);    // force a difference with a second sample
  EXPECT_NE(a.digest(), c.digest());
}

TEST(QuantileSketchTest, RankErrorAgainstExactOracleSmoke) {
  // Tier-1 smoke version of the tier-2 million-sample sweep: a heavy-tailed
  // stream, every permille checkpoint within the relative-error bound of
  // the true nearest-rank value.
  Rng rng(0x00CEE00Du);
  std::vector<std::uint64_t> samples;
  samples.reserve(50'000);
  QuantileSketch sketch;
  for (int i = 0; i < 50'000; ++i) {
    const std::uint64_t v = rng.next() >> (4 + rng.below(44));
    samples.push_back(v);
    sketch.record(v);
  }
  std::sort(samples.begin(), samples.end());
  for (std::uint32_t permille = 1; permille <= 1000; ++permille) {
    const std::size_t rank =
        (samples.size() * permille + 999) / 1000;  // ceil, 1-based
    const std::uint64_t want = samples[rank - 1];
    const std::uint64_t got = sketch.quantile_permille(permille);
    const std::uint64_t diff = got > want ? got - want : want - got;
    ASSERT_LE(diff * 64, want) << "permille=" << permille << " want=" << want
                               << " got=" << got;
  }
}

}  // namespace
}  // namespace atrcp
