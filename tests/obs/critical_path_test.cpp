// Critical-path analyzer: hand-built event sequences with known answers,
// drop/eviction/ambiguity edge cases, merge, and a seeded cluster
// integration run.
#include "obs/critical_path.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/quorums.hpp"
#include "core/tree.hpp"
#include "obs/event_bus.hpp"
#include "obs/json_lint.hpp"
#include "txn/cluster.hpp"
#include "txn/workload.hpp"

namespace atrcp {
namespace {

void push(EventBus& bus, std::uint64_t time, EventKind kind,
          std::uint32_t site, std::uint32_t peer, std::uint64_t cid,
          std::uint64_t txn, const std::string& label) {
  Event e;
  e.time = time;
  e.kind = kind;
  e.site = site;
  e.peer = peer;
  e.causal_id = cid;
  e.txn_id = txn;
  e.label = label;
  bus.publish(e);
}

/// One committed txn at coordinator site 5 over peers {0, 1}: a 10us lock
/// wait, then read / prepare / commit rounds where site 1 is always the
/// last reply to land.
void record_known_txn(EventBus& bus) {
  const std::uint32_t kNo = Event::kNoSite;
  push(bus, 0, EventKind::kTxnBegin, 5, kNo, 0, 42, "");
  push(bus, 0, EventKind::kLockWait, 5, kNo, 0, 42, "key 3");
  push(bus, 10, EventKind::kLockGranted, 5, kNo, 0, 42, "key 3");
  // Read round: requests fan out at t=10; site 1's reply lands last.
  push(bus, 10, EventKind::kMsgSend, 5, 0, 1, 0, "ReadRequest");
  push(bus, 10, EventKind::kMsgSend, 5, 1, 2, 0, "ReadRequest");
  push(bus, 60, EventKind::kMsgDeliver, 0, 5, 1, 0, "ReadRequest");
  push(bus, 70, EventKind::kMsgDeliver, 1, 5, 2, 0, "ReadRequest");
  push(bus, 60, EventKind::kMsgSend, 0, 5, 3, 0, "ReadReply");
  push(bus, 70, EventKind::kMsgSend, 1, 5, 4, 0, "ReadReply");
  push(bus, 110, EventKind::kMsgDeliver, 5, 0, 3, 0, "ReadReply");
  push(bus, 130, EventKind::kMsgDeliver, 5, 1, 4, 0, "ReadReply");
  // Prepare round at t=130.
  push(bus, 130, EventKind::kMsgSend, 5, 0, 5, 0, "PrepareRequest");
  push(bus, 130, EventKind::kMsgSend, 5, 1, 6, 0, "PrepareRequest");
  push(bus, 180, EventKind::kMsgDeliver, 0, 5, 5, 0, "PrepareRequest");
  push(bus, 190, EventKind::kMsgDeliver, 1, 5, 6, 0, "PrepareRequest");
  push(bus, 180, EventKind::kMsgSend, 0, 5, 7, 0, "PrepareVote");
  push(bus, 190, EventKind::kMsgSend, 1, 5, 8, 0, "PrepareVote");
  push(bus, 230, EventKind::kMsgDeliver, 5, 0, 7, 0, "PrepareVote");
  push(bus, 235, EventKind::kMsgDeliver, 5, 1, 8, 0, "PrepareVote");
  // Commit round at t=235.
  push(bus, 235, EventKind::kMsgSend, 5, 0, 9, 0, "CommitRequest");
  push(bus, 235, EventKind::kMsgSend, 5, 1, 10, 0, "CommitRequest");
  push(bus, 285, EventKind::kMsgDeliver, 0, 5, 9, 0, "CommitRequest");
  push(bus, 295, EventKind::kMsgDeliver, 1, 5, 10, 0, "CommitRequest");
  push(bus, 285, EventKind::kMsgSend, 0, 5, 11, 0, "CommitAck");
  push(bus, 295, EventKind::kMsgSend, 1, 5, 12, 0, "CommitAck");
  push(bus, 335, EventKind::kMsgDeliver, 5, 0, 11, 0, "CommitAck");
  push(bus, 345, EventKind::kMsgDeliver, 5, 1, 12, 0, "CommitAck");
  push(bus, 345, EventKind::kTxnFinish, 5, kNo, 0, 42, "committed");
}

TEST(CriticalPathTest, ReconstructsKnownTxnExactly) {
  EventBus bus(128);
  record_known_txn(bus);
  const CriticalPathReport report = analyze_critical_paths(bus);
  ASSERT_EQ(report.txns_analyzed, 1u);
  EXPECT_EQ(report.txns_truncated, 0u);
  ASSERT_EQ(report.paths.size(), 1u);

  const TxnCriticalPath& path = report.paths[0];
  EXPECT_EQ(path.txn_id, 42u);
  EXPECT_EQ(path.coordinator, 5u);
  EXPECT_EQ(path.total_us(), 345u);
  EXPECT_EQ(path.rounds, 3u);
  EXPECT_EQ(path.lock_us, 10u);
  // Straggler (site 1) flights: (60+60) + (60+45) + (60+50).
  EXPECT_EQ(path.network_us, 335u);
  EXPECT_EQ(path.service_us, 0u);
  EXPECT_EQ(path.local_us, 0u);
  // 1 lock segment + 3 segments per round.
  ASSERT_EQ(path.segments.size(), 10u);
  EXPECT_EQ(path.segments[0].kind, PathSegment::Kind::kLockWait);
  EXPECT_EQ(path.segments[0].label, "key 3");
  EXPECT_EQ(path.segments[1].kind, PathSegment::Kind::kRequestFlight);
  EXPECT_EQ(path.segments[1].site, 1u);
  EXPECT_EQ(path.segments[1].label, "ReadRequest");

  // Site 1 straggled every round; site 0 never did.
  ASSERT_EQ(report.straggler_counts.size(), 2u);
  EXPECT_EQ(report.straggler_counts[0], 0u);
  EXPECT_EQ(report.straggler_counts[1], 3u);

  std::string error;
  EXPECT_TRUE(json_valid(report.to_json(), &error)) << error;
}

TEST(CriticalPathTest, AbortedTxnsAreNotAnalyzed) {
  EventBus bus(32);
  push(bus, 0, EventKind::kTxnBegin, 5, Event::kNoSite, 0, 7, "");
  push(bus, 50, EventKind::kTxnFinish, 5, Event::kNoSite, 0, 7, "aborted");
  const CriticalPathReport report = analyze_critical_paths(bus);
  EXPECT_EQ(report.txns_analyzed, 0u);
  EXPECT_EQ(report.txns_truncated, 0u);
}

TEST(CriticalPathTest, EvictedBeginCountsAsTruncated) {
  EventBus bus(32);
  // A committed finish whose begin never made it into the ring.
  push(bus, 90, EventKind::kTxnFinish, 5, Event::kNoSite, 0, 9, "committed");
  const CriticalPathReport report = analyze_critical_paths(bus);
  EXPECT_EQ(report.txns_analyzed, 0u);
  EXPECT_EQ(report.txns_truncated, 1u);
}

TEST(CriticalPathTest, DroppedReplyRoundIsSkipped) {
  EventBus bus(64);
  const std::uint32_t kNo = Event::kNoSite;
  push(bus, 0, EventKind::kTxnBegin, 5, kNo, 0, 1, "");
  push(bus, 0, EventKind::kMsgSend, 5, 0, 1, 0, "ReadRequest");
  push(bus, 50, EventKind::kMsgDeliver, 0, 5, 1, 0, "ReadRequest");
  push(bus, 50, EventKind::kMsgSend, 0, 5, 2, 0, "ReadReply");
  push(bus, 80, EventKind::kMsgDrop, 5, 0, 2, 0, "ReadReply");
  push(bus, 200, EventKind::kTxnFinish, 5, kNo, 0, 1, "committed");
  const CriticalPathReport report = analyze_critical_paths(bus);
  ASSERT_EQ(report.txns_analyzed, 1u);
  const TxnCriticalPath& path = report.paths[0];
  EXPECT_EQ(path.rounds, 0u);  // the only round's reply was dropped
  EXPECT_EQ(path.network_us, 0u);
  EXPECT_EQ(path.local_us, 200u);  // everything attributed to local time
}

TEST(CriticalPathTest, ConcurrentTxnsOnOneCoordinatorAreSkipped) {
  EventBus bus(64);
  const std::uint32_t kNo = Event::kNoSite;
  push(bus, 0, EventKind::kTxnBegin, 5, kNo, 0, 1, "");
  push(bus, 5, EventKind::kTxnBegin, 5, kNo, 0, 2, "");  // overlap: ambiguous
  push(bus, 50, EventKind::kTxnFinish, 5, kNo, 0, 1, "committed");
  push(bus, 60, EventKind::kTxnFinish, 5, kNo, 0, 2, "committed");
  const CriticalPathReport report = analyze_critical_paths(bus);
  EXPECT_EQ(report.txns_analyzed, 0u);
  EXPECT_EQ(report.txns_truncated, 2u);
}

TEST(CriticalPathTest, EmptyAndCapacityZeroBusesYieldEmptyReports) {
  EventBus empty(16);
  const CriticalPathReport a = analyze_critical_paths(empty);
  EXPECT_EQ(a.txns_analyzed, 0u);
  EXPECT_EQ(a.paths.size(), 0u);
  std::string error;
  EXPECT_TRUE(json_valid(a.to_json(), &error)) << error;

  EventBus zero(0);
  record_known_txn(zero);  // retained nowhere
  const CriticalPathReport b = analyze_critical_paths(zero);
  EXPECT_EQ(b.txns_analyzed, 0u);
  EXPECT_EQ(b.txns_truncated, 0u);
}

TEST(CriticalPathTest, MergeAddsReports) {
  EventBus bus(128);
  record_known_txn(bus);
  const CriticalPathReport one = analyze_critical_paths(bus);
  CriticalPathReport merged;
  merged.merge_from(one);
  merged.merge_from(one);
  EXPECT_EQ(merged.txns_analyzed, 2u);
  EXPECT_EQ(merged.paths.size(), 2u);
  ASSERT_EQ(merged.straggler_counts.size(), 2u);
  EXPECT_EQ(merged.straggler_counts[1], 6u);
  EXPECT_EQ(merged.total_us, 2 * one.total_us);
  EXPECT_EQ(merged.slowest(1).size(), 1u);
  std::string error;
  EXPECT_TRUE(json_valid(merged.to_json(2), &error)) << error;
}

TEST(CriticalPathTest, SeededClusterRunDecomposesEveryCommit) {
  ClusterOptions options;
  options.clients = 2;
  options.link = LinkParams{.base_latency = 50, .jitter = 10};
  options.event_bus_capacity = 1 << 15;
  Cluster cluster(std::make_unique<ArbitraryProtocol>(
                      ArbitraryTree::from_spec("1-3-5"), "ARBITRARY"),
                  options);
  WorkloadOptions workload;
  workload.transactions_per_client = 40;
  workload.read_fraction = 0.5;
  workload.num_keys = 8;
  run_workload(cluster, workload);

  const CriticalPathReport report = analyze_critical_paths(*cluster.events());
  EXPECT_GT(report.txns_analyzed, 0u);
  EXPECT_EQ(report.txns_truncated, 0u);  // ring big enough for this run

  std::uint64_t straggles = 0;
  for (const std::uint64_t count : report.straggler_counts) {
    straggles += count;
  }
  std::uint64_t rounds = 0;
  for (const TxnCriticalPath& path : report.paths) {
    rounds += path.rounds;
    EXPECT_GT(path.rounds, 0u);
    EXPECT_EQ(path.lock_us + path.network_us + path.service_us +
                  path.local_us,
              path.total_us());
    for (std::size_t i = 1; i < path.segments.size(); ++i) {
      EXPECT_LE(path.segments[i - 1].start, path.segments[i].start);
    }
  }
  EXPECT_EQ(straggles, rounds);

  // Byte-determinism: a second pass over the same bus reports identically.
  EXPECT_EQ(analyze_critical_paths(*cluster.events()).to_json(),
            report.to_json());
  std::string error;
  EXPECT_TRUE(json_valid(report.to_json(), &error)) << error;
}

}  // namespace
}  // namespace atrcp
