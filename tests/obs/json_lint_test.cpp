// The tiny JSON linter that lets exports self-validate without a JSON
// dependency: accepts RFC 8259 documents, rejects the classic near-misses.
#include "obs/json_lint.hpp"

#include <gtest/gtest.h>

#include <string>

namespace atrcp {
namespace {

TEST(JsonLintTest, AcceptsValidDocuments) {
  EXPECT_TRUE(json_valid("{}"));
  EXPECT_TRUE(json_valid("[]"));
  EXPECT_TRUE(json_valid("null"));
  EXPECT_TRUE(json_valid("-12.5e-3"));
  EXPECT_TRUE(json_valid(R"({"a":[1,2,{"b":"c\né"}],"d":true})"));
  EXPECT_TRUE(json_valid(" {\n\t\"x\" : [ ] }\r\n"));
}

TEST(JsonLintTest, RejectsNearMissesWithOffsets) {
  std::string error;
  EXPECT_FALSE(json_valid("", &error));
  EXPECT_FALSE(json_valid("{", &error));
  EXPECT_FALSE(json_valid("{\"a\":1,}", &error));
  EXPECT_FALSE(json_valid("[1 2]", &error));
  EXPECT_FALSE(json_valid("\"unterminated", &error));
  EXPECT_FALSE(json_valid("\"bad\\q\"", &error));
  EXPECT_FALSE(json_valid("\"bad\\u12g4\"", &error));
  EXPECT_FALSE(json_valid("01", &error));
  EXPECT_FALSE(json_valid("1.", &error));
  EXPECT_FALSE(json_valid("truth", &error));
  EXPECT_FALSE(json_valid("{} {}", &error));
  EXPECT_NE(error.find("offset"), std::string::npos);
}

TEST(JsonLintTest, RejectsRawControlCharactersInStrings) {
  EXPECT_FALSE(json_valid(std::string("\"a\nb\"")));
  EXPECT_TRUE(json_valid(R"("a\nb")"));
}

}  // namespace
}  // namespace atrcp
