#include "util/math.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <numeric>
#include <stdexcept>

namespace atrcp {
namespace {

TEST(BinomialTest, BaseCases) {
  EXPECT_EQ(binomial(0, 0), 1u);
  EXPECT_EQ(binomial(5, 0), 1u);
  EXPECT_EQ(binomial(5, 5), 1u);
  EXPECT_EQ(binomial(5, 6), 0u);
}

TEST(BinomialTest, SmallValues) {
  EXPECT_EQ(binomial(5, 2), 10u);
  EXPECT_EQ(binomial(10, 3), 120u);
  EXPECT_EQ(binomial(52, 5), 2598960u);
}

TEST(BinomialTest, PascalIdentity) {
  for (std::uint64_t n = 1; n <= 30; ++n) {
    for (std::uint64_t k = 1; k <= n; ++k) {
      EXPECT_EQ(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(BinomialTest, RowSumsArePowersOfTwo) {
  for (std::uint64_t n = 0; n <= 20; ++n) {
    std::uint64_t sum = 0;
    for (std::uint64_t k = 0; k <= n; ++k) sum += binomial(n, k);
    EXPECT_EQ(sum, 1ULL << n);
  }
}

TEST(BinomialTest, OverflowThrows) {
  EXPECT_THROW(binomial(200, 100), std::overflow_error);
}

TEST(PowU64Test, Basics) {
  EXPECT_EQ(pow_u64(2, 0), 1u);
  EXPECT_EQ(pow_u64(2, 10), 1024u);
  EXPECT_EQ(pow_u64(3, 4), 81u);
  EXPECT_EQ(pow_u64(0, 5), 0u);
  EXPECT_EQ(pow_u64(0, 0), 1u);
  EXPECT_EQ(pow_u64(1, 1000), 1u);
}

TEST(PowU64Test, OverflowThrows) {
  EXPECT_THROW(pow_u64(2, 64), std::overflow_error);
  EXPECT_NO_THROW(pow_u64(2, 63));
}

TEST(FloorLog2Test, ExactPowers) {
  for (std::uint32_t k = 0; k < 64; ++k) {
    EXPECT_EQ(floor_log2(1ULL << k), k);
  }
}

TEST(FloorLog2Test, BetweenPowers) {
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(7), 2u);
  EXPECT_EQ(floor_log2(1023), 9u);
}

TEST(FloorLog2Test, ZeroThrows) {
  EXPECT_THROW(floor_log2(0), std::invalid_argument);
}

TEST(IsPowerOfTwoTest, Classification) {
  EXPECT_FALSE(is_power_of_two(0));
  EXPECT_TRUE(is_power_of_two(1));
  EXPECT_TRUE(is_power_of_two(2));
  EXPECT_FALSE(is_power_of_two(3));
  EXPECT_TRUE(is_power_of_two(1ULL << 40));
  EXPECT_FALSE(is_power_of_two((1ULL << 40) + 1));
}

TEST(IsqrtTest, PerfectSquaresAndNeighbours) {
  for (std::uint64_t s = 0; s <= 1000; ++s) {
    EXPECT_EQ(isqrt(s * s), s);
    if (s > 0) {
      EXPECT_EQ(isqrt(s * s - 1), s - 1);
      EXPECT_EQ(isqrt(s * s + 1), s);
    }
  }
}

TEST(IsqrtTest, LargeValues) {
  EXPECT_EQ(isqrt(1ULL << 62), 1ULL << 31);
}

TEST(IsqrtTest, NearUint64MaxDoesNotWrap) {
  // Regression: the fix-up loops used to compare via guess*guess, which
  // wraps modulo 2^64 up here — (2^32)^2 == 0, so isqrt(UINT64_MAX) walked
  // away from the answer instead of settling on 2^32 - 1.
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(isqrt(kMax), (1ULL << 32) - 1);
  EXPECT_EQ(isqrt(kMax - 1), (1ULL << 32) - 1);
}

TEST(IsqrtTest, LargestPerfectSquareBoundary) {
  // (2^32 - 1)^2 is the largest 64-bit perfect square; check it and both
  // neighbours land exactly.
  constexpr std::uint64_t s = (1ULL << 32) - 1;
  constexpr std::uint64_t square = s * s;  // 0xFFFFFFFE00000001
  EXPECT_EQ(isqrt(square), s);
  EXPECT_EQ(isqrt(square - 1), s - 1);
  EXPECT_EQ(isqrt(square + 1), s);
}

TEST(CheckedMulTest, ExactAndOverflow) {
  EXPECT_EQ(checked_mul(0, 0), 0u);
  EXPECT_EQ(checked_mul(7, 6), 42u);
  EXPECT_EQ(checked_mul(0, std::numeric_limits<std::uint64_t>::max()), 0u);
  EXPECT_EQ(checked_mul(1ULL << 32, 1ULL << 31), 1ULL << 63);
  EXPECT_EQ(checked_mul(std::numeric_limits<std::uint64_t>::max(), 1),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_FALSE(checked_mul(1ULL << 32, 1ULL << 32).has_value());
  EXPECT_FALSE(checked_mul(std::numeric_limits<std::uint64_t>::max(), 2)
                   .has_value());
  // Boundary: max = (2^32-1) * (2^32+1) + ... check an exact split:
  // 2^64 - 2 = 2 * (2^63 - 1) fits; 2 * 2^63 does not.
  EXPECT_EQ(checked_mul(2, (1ULL << 63) - 1), ~std::uint64_t{1});
  EXPECT_FALSE(checked_mul(2, 1ULL << 63).has_value());
}

TEST(ApproxEqualTest, Tolerances) {
  EXPECT_TRUE(approx_equal(1.0, 1.0));
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approx_equal(1.0, 1.001));
  EXPECT_TRUE(approx_equal(1.0, 1.001, 1e-2));
  EXPECT_TRUE(approx_equal(0.0, 1e-13));
}

TEST(BinomialPmfTest, SumsToOne) {
  for (double p : {0.1, 0.5, 0.9}) {
    for (std::uint64_t n : {1u, 5u, 20u}) {
      double total = 0.0;
      for (std::uint64_t k = 0; k <= n; ++k) total += binomial_pmf(n, k, p);
      EXPECT_NEAR(total, 1.0, 1e-10) << "n=" << n << " p=" << p;
    }
  }
}

TEST(BinomialPmfTest, MatchesExactFormulaSmall) {
  // n=4, k=2, p=0.5 -> C(4,2)/16 = 6/16.
  EXPECT_NEAR(binomial_pmf(4, 2, 0.5), 6.0 / 16.0, 1e-12);
  // n=3, k=0, p=0.3 -> 0.7^3.
  EXPECT_NEAR(binomial_pmf(3, 0, 0.3), 0.343, 1e-12);
}

TEST(BinomialPmfTest, DegenerateP) {
  EXPECT_DOUBLE_EQ(binomial_pmf(5, 0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(5, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(5, 5, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_pmf(5, 4, 1.0), 0.0);
}

TEST(BinomialSfTest, Majority) {
  // P(X >= 2) for X~Bin(3, 0.5) = 4/8.
  EXPECT_NEAR(binomial_sf(3, 2, 0.5), 0.5, 1e-12);
  // k = 0 is always 1.
  EXPECT_NEAR(binomial_sf(7, 0, 0.3), 1.0, 1e-12);
}

TEST(PartitionsTest, CountsMatchHandEnumeration) {
  // Partitions of 6 into 3 non-decreasing parts (max 6):
  // 1+1+4, 1+2+3, 2+2+2 -> 3 of them.
  const auto parts = partitions_non_decreasing(6, 3, 6);
  EXPECT_EQ(parts.size(), 3u);
}

TEST(PartitionsTest, AllValid) {
  const auto parts = partitions_non_decreasing(12, 4, 12);
  EXPECT_FALSE(parts.empty());
  for (const auto& part : parts) {
    EXPECT_EQ(part.size(), 4u);
    EXPECT_EQ(std::accumulate(part.begin(), part.end(), 0u), 12u);
    for (std::size_t i = 0; i + 1 < part.size(); ++i) {
      EXPECT_LE(part[i], part[i + 1]);
    }
  }
}

TEST(PartitionsTest, MaxPartRespected) {
  const auto parts = partitions_non_decreasing(10, 2, 5);
  // 5+5 only.
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], (std::vector<std::uint32_t>{5, 5}));
}

TEST(PartitionsTest, Infeasible) {
  EXPECT_TRUE(partitions_non_decreasing(3, 5, 3).empty());   // too many parts
  EXPECT_TRUE(partitions_non_decreasing(30, 2, 5).empty());  // parts too small
  EXPECT_TRUE(partitions_non_decreasing(5, 0, 5).empty());   // zero parts
}

}  // namespace
}  // namespace atrcp
