#include "util/check.hpp"

#include <gtest/gtest.h>

namespace atrcp {
namespace {

TEST(CheckTest, PassingCheckIsSilent) {
  EXPECT_NO_THROW(ATRCP_CHECK(1 + 1 == 2));
}

TEST(CheckTest, FailingCheckThrowsInvariantError) {
  EXPECT_THROW(ATRCP_CHECK(false), InvariantError);
}

TEST(CheckTest, MessageCarriesExpressionAndLocation) {
  try {
    ATRCP_CHECK(2 > 3);
    FAIL() << "should have thrown";
  } catch (const InvariantError& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("2 > 3"), std::string::npos);
    EXPECT_NE(what.find("check_test.cpp"), std::string::npos);
  }
}

TEST(CheckTest, EvaluatesExpressionExactlyOnce) {
  int calls = 0;
  const auto count = [&] {
    ++calls;
    return true;
  };
  ATRCP_CHECK(count());
  EXPECT_EQ(calls, 1);
}

TEST(CheckTest, IsAnExpressionStatementInBranches) {
  // Compiles cleanly in unbraced if/else (the do-while(false) idiom).
  if (true)
    ATRCP_CHECK(true);
  else
    ATRCP_CHECK(true);
}

}  // namespace
}  // namespace atrcp
