#include "util/table.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

namespace atrcp {
namespace {

TEST(TableTest, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(TableTest, RejectsRowWidthMismatch) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"1"}), std::invalid_argument);
  EXPECT_THROW(table.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(TableTest, TextOutputAligned) {
  Table table({"n", "cost"});
  table.add_row({"8", "2.5"});
  table.add_row({"128", "11.3"});
  std::ostringstream os;
  table.print_text(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("n"), std::string::npos);
  EXPECT_NE(text.find("128"), std::string::npos);
  EXPECT_NE(text.find("11.3"), std::string::npos);
  // Header, rule, and two data rows.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 4);
}

TEST(TableTest, CsvOutput) {
  Table table({"n", "cost"});
  table.add_row({"8", "2.5"});
  std::ostringstream os;
  table.print_csv(os);
  EXPECT_EQ(os.str(), "n,cost\n8,2.5\n");
}

TEST(CellTest, DoubleTrimming) {
  EXPECT_EQ(cell(1.5), "1.5");
  EXPECT_EQ(cell(2.0), "2.0");
  EXPECT_EQ(cell(0.25), "0.25");
  EXPECT_EQ(cell(1.0 / 3.0), "0.3333");
  EXPECT_EQ(cell(0.123456, 2), "0.12");
}

TEST(CellTest, Integers) {
  EXPECT_EQ(cell(42), "42");
  EXPECT_EQ(cell(std::size_t{7}), "7");
  EXPECT_EQ(cell(std::int64_t{-3}), "-3");
}

}  // namespace
}  // namespace atrcp
