#include "util/stats.hpp"

#include <gtest/gtest.h>

namespace atrcp {
namespace {

TEST(SampleSummaryTest, EmptyThrows) {
  SampleSummary summary;
  EXPECT_EQ(summary.count(), 0u);
  EXPECT_THROW(summary.mean(), std::logic_error);
  EXPECT_THROW(summary.min(), std::logic_error);
  EXPECT_THROW(summary.percentile(0.5), std::logic_error);
}

TEST(SampleSummaryTest, BasicStatistics) {
  SampleSummary summary;
  for (double v : {5.0, 1.0, 3.0, 2.0, 4.0}) summary.add(v);
  EXPECT_EQ(summary.count(), 5u);
  EXPECT_DOUBLE_EQ(summary.mean(), 3.0);
  EXPECT_DOUBLE_EQ(summary.min(), 1.0);
  EXPECT_DOUBLE_EQ(summary.max(), 5.0);
}

TEST(SampleSummaryTest, NearestRankPercentiles) {
  SampleSummary summary;
  for (int v = 1; v <= 100; ++v) summary.add(v);
  EXPECT_DOUBLE_EQ(summary.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(summary.percentile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(summary.percentile(0.95), 95.0);
  EXPECT_DOUBLE_EQ(summary.percentile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(summary.percentile(1.0), 100.0);
}

TEST(SampleSummaryTest, SingleSample) {
  SampleSummary summary;
  summary.add(7.5);
  for (double q : {0.0, 0.5, 1.0}) {
    EXPECT_DOUBLE_EQ(summary.percentile(q), 7.5);
  }
}

TEST(SampleSummaryTest, InterleavedAddAndQuery) {
  SampleSummary summary;
  summary.add(10.0);
  EXPECT_DOUBLE_EQ(summary.max(), 10.0);
  summary.add(20.0);  // forces a re-sort on the next query
  EXPECT_DOUBLE_EQ(summary.max(), 20.0);
  summary.add(5.0);
  EXPECT_DOUBLE_EQ(summary.min(), 5.0);
}

TEST(SampleSummaryTest, InvalidQuantileThrows) {
  SampleSummary summary;
  summary.add(1.0);
  EXPECT_THROW(summary.percentile(-0.1), std::invalid_argument);
  EXPECT_THROW(summary.percentile(1.1), std::invalid_argument);
}

}  // namespace
}  // namespace atrcp
