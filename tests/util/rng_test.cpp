#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace atrcp {
namespace {

TEST(RngTest, DeterministicUnderSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(RngTest, BelowOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(RngTest, BelowCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, BelowIsRoughlyUniform) {
  Rng rng(13);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.below(kBuckets)];
  for (std::uint64_t b = 0; b < kBuckets; ++b) {
    // Expected 10000 each; 4-sigma band is about +-400.
    EXPECT_NEAR(counts[b], kSamples / kBuckets, 500) << "bucket " << b;
  }
}

TEST(RngTest, BetweenInclusive) {
  Rng rng(17);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.between(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(19);
  double total = 0.0;
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    total += u;
  }
  EXPECT_NEAR(total / 100000, 0.5, 0.01);
}

TEST(RngTest, ChanceMatchesProbability) {
  Rng rng(23);
  for (double p : {0.0, 0.25, 0.5, 0.9, 1.0}) {
    int hits = 0;
    for (int i = 0; i < 50000; ++i) hits += rng.chance(p) ? 1 : 0;
    EXPECT_NEAR(hits / 50000.0, p, 0.01) << "p=" << p;
  }
}

TEST(RngTest, ForkIsIndependent) {
  Rng parent(31);
  Rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next() == child.next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, KnownGoldenStream) {
  // Pins cross-platform reproducibility: these values must never change, or
  // recorded experiment outputs would silently shift.
  Rng rng(42);
  const std::uint64_t first = rng.next();
  Rng again(42);
  EXPECT_EQ(again.next(), first);
  // Stability across copies.
  Rng copy = again;
  EXPECT_EQ(copy.next(), again.next());
}

TEST(SplitMix64Test, KnownValues) {
  // Reference values from the SplitMix64 reference implementation, seed 0.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(sm.next(), 0x6E789E6AA1B965F4ULL);
}

}  // namespace
}  // namespace atrcp
