#include "util/inline_function.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <memory>
#include <utility>

namespace atrcp {
namespace {

using Fn = InlineFunction<48>;

TEST(InlineFunctionTest, InvokesStoredCallable) {
  int calls = 0;
  Fn fn([&] { ++calls; });
  fn();
  fn();
  EXPECT_EQ(calls, 2);
}

TEST(InlineFunctionTest, DefaultAndNullptrAreEmpty) {
  const Fn empty{};
  EXPECT_FALSE(static_cast<bool>(empty));
  const Fn null_constructed = nullptr;
  EXPECT_FALSE(static_cast<bool>(null_constructed));
  const Fn engaged([] {});
  EXPECT_TRUE(static_cast<bool>(engaged));
}

TEST(InlineFunctionTest, MoveTransfersTarget) {
  int calls = 0;
  Fn source([&] { ++calls; });
  Fn moved(std::move(source));
  EXPECT_FALSE(static_cast<bool>(source));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(moved));
  moved();
  EXPECT_EQ(calls, 1);

  Fn assigned;
  assigned = std::move(moved);
  EXPECT_FALSE(static_cast<bool>(moved));  // NOLINT(bugprone-use-after-move)
  assigned();
  EXPECT_EQ(calls, 2);
}

TEST(InlineFunctionTest, MoveAssignDestroysPreviousTarget) {
  auto tracked = std::make_shared<int>(7);
  std::weak_ptr<int> watch = tracked;
  Fn fn([keep = std::move(tracked)] { (void)keep; });
  EXPECT_FALSE(watch.expired());
  fn = Fn([] {});
  EXPECT_TRUE(watch.expired());
}

TEST(InlineFunctionTest, DestructorReleasesNonTrivialCapture) {
  auto tracked = std::make_shared<int>(1);
  std::weak_ptr<int> watch = tracked;
  {
    Fn fn([keep = std::move(tracked)] { (void)keep; });
    EXPECT_EQ(watch.use_count(), 1);
  }
  EXPECT_TRUE(watch.expired());
}

TEST(InlineFunctionTest, SmallClosuresStoreInline) {
  // The scheduler relies on Network's 40-byte delivery closure (five
  // 8-byte captures) fitting the 48-byte buffer.
  struct FivePointers {
    void* a;
    void* b;
    void* c;
    void* d;
    void* e;
    void operator()() const {}
  };
  static_assert(Fn::stores_inline<FivePointers>());
  auto lambda = [] {};
  static_assert(Fn::stores_inline<decltype(lambda)>());
}

TEST(InlineFunctionTest, OversizedClosureFallsBackToHeapAndWorks) {
  std::array<std::byte, 96> big{};
  big[0] = std::byte{42};
  big[95] = std::byte{7};
  int observed = 0;
  auto closure = [big, &observed] {
    observed = static_cast<int>(big[0]) + static_cast<int>(big[95]);
  };
  static_assert(!Fn::stores_inline<decltype(closure)>());
  Fn fn(std::move(closure));
  Fn moved(std::move(fn));  // boxed pointer relocates without touching the box
  moved();
  EXPECT_EQ(observed, 49);
}

TEST(InlineFunctionTest, OversizedClosureDestroysCapture) {
  auto tracked = std::make_shared<int>(3);
  std::weak_ptr<int> watch = tracked;
  std::array<std::byte, 96> pad{};
  {
    Fn fn([keep = std::move(tracked), pad] { (void)keep, (void)pad; });
    EXPECT_FALSE(watch.expired());
  }
  EXPECT_TRUE(watch.expired());
}

TEST(InlineFunctionTest, MovedClosureSchedulableRepeatedly) {
  // Slab recycling move-assigns into previously-used slots; exercise the
  // same pattern directly: assign over live targets in a loop.
  int total = 0;
  Fn slot;
  for (int i = 0; i < 100; ++i) {
    slot = Fn([&total, i] { total += i; });
    slot();
  }
  EXPECT_EQ(total, 4950);
}

}  // namespace
}  // namespace atrcp
