// The tiled sparse link store behind Network: default-link fast path,
// tile materialization on set_link, and — the load-bearing guarantee — a
// golden-digest equivalence test pinning an n=64 cluster run to the exact
// bytes the dense n x n representation produced before the rewrite.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/config.hpp"
#include "driver/digest.hpp"
#include "sim/network.hpp"
#include "txn/cluster.hpp"
#include "txn/workload.hpp"

namespace atrcp {
namespace {

class NullHandler final : public SiteHandler {
 public:
  void on_message(const Message&) override {}
};

class SparseNetworkTest : public ::testing::Test {
 protected:
  SparseNetworkTest()
      : network_(scheduler_, Rng(11),
                 LinkParams{.base_latency = 70, .jitter = 5}) {}

  /// Registers `count` sites backed by one shared null handler.
  void add_sites(std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) network_.add_site(handler_);
  }

  Scheduler scheduler_;
  NullHandler handler_;
  Network network_;
};

TEST_F(SparseNetworkTest, DefaultLinkServesEveryPairWithoutOverrides) {
  // 200 sites span several 64-wide tiles; with no overrides every pair —
  // same tile, cross tile, self — reads the construction-time default.
  add_sites(200);
  const std::vector<std::pair<SiteId, SiteId>> pairs = {
      {0, 1},
      {0, 63},     // tile (0,0) interior
      {0, 64},     // crosses a tile column
      {64, 0},     // crosses a tile row
      {199, 199},  // self, last site
      {63, 191}};
  for (const auto& [a, b] : pairs) {
    const LinkParams& link = network_.link(a, b);
    EXPECT_EQ(link.base_latency, 70u) << a << "->" << b;
    EXPECT_EQ(link.jitter, 5u) << a << "->" << b;
    EXPECT_EQ(link.drop_probability, 0.0) << a << "->" << b;
    EXPECT_FALSE(link.severed) << a << "->" << b;
  }
}

TEST_F(SparseNetworkTest, SetLinkDegradesOnePairAndLeavesTileNeighborsAlone) {
  add_sites(200);
  network_.set_link(3, 130,
                    LinkParams{.base_latency = 900,
                               .jitter = 1,
                               .drop_probability = 0.5,
                               .severed = false});

  // Both directions carry the override (links are symmetric).
  EXPECT_EQ(network_.link(3, 130).base_latency, 900u);
  EXPECT_EQ(network_.link(130, 3).base_latency, 900u);
  EXPECT_EQ(network_.link(3, 130).drop_probability, 0.5);

  // Pairs sharing the freshly materialized tiles still read the default:
  // materialization pre-fills the whole tile with default_link_.
  EXPECT_EQ(network_.link(3, 131).base_latency, 70u);   // same tile as 3->130
  EXPECT_EQ(network_.link(4, 130).base_latency, 70u);   // same tile as 3->130
  EXPECT_EQ(network_.link(131, 3).base_latency, 70u);   // same tile as 130->3
  EXPECT_EQ(network_.link(3, 4).base_latency, 70u);     // untouched tile

  // A second override in an already-materialized tile composes.
  network_.set_link(3, 131, LinkParams{.severed = true});
  EXPECT_TRUE(network_.link(3, 131).severed);
  EXPECT_TRUE(network_.link(131, 3).severed);
  EXPECT_EQ(network_.link(3, 130).base_latency, 900u);  // first override holds
}

TEST_F(SparseNetworkTest, TileMaterializationIsDeterministicAndRngFree) {
  // Two networks with identical seeds, one probed heavily through link()
  // before and after overrides: reads must never materialize tiles or spend
  // randomness, so subsequent sampled sends behave identically.
  Scheduler sched_a;
  Scheduler sched_b;
  NullHandler handler;
  Network a(sched_a, Rng(99), LinkParams{.base_latency = 50, .jitter = 20});
  Network b(sched_b, Rng(99), LinkParams{.base_latency = 50, .jitter = 20});
  for (int i = 0; i < 128; ++i) {
    a.add_site(handler);
    b.add_site(handler);
  }
  // Probe a heavily; touch b not at all.
  for (SiteId from = 0; from < 128; ++from) {
    for (SiteId to = 0; to < 128; ++to) (void)a.link(from, to);
  }
  a.set_link(5, 77, LinkParams{.base_latency = 600});
  b.set_link(5, 77, LinkParams{.base_latency = 600});

  // Same sends through both networks: the sampled jitter streams must
  // stay in lockstep (delivery counts drain identically).
  for (int round = 0; round < 50; ++round) {
    const SiteId from = static_cast<SiteId>(round % 128);
    const SiteId to = static_cast<SiteId>((round * 37 + 5) % 128);
    a.send(from, to, a.make_body<MessageBody>());
    b.send(from, to, b.make_body<MessageBody>());
  }
  sched_a.run();
  sched_b.run();
  EXPECT_EQ(a.messages_sent(), b.messages_sent());
  EXPECT_EQ(a.messages_delivered(), b.messages_delivered());
  EXPECT_EQ(a.messages_dropped(), b.messages_dropped());
  EXPECT_EQ(sched_a.now(), sched_b.now());
}

TEST(SparseNetworkGoldenTest, N64RunIsByteIdenticalToDenseRepresentation) {
  // The equivalence gate of the sparse rewrite. This digest was captured
  // from the dense n x n link-table implementation immediately before its
  // replacement, over a run that exercises every link-store path: default
  // links, an overridden lossy link, a severed link, and a transient crash
  // rerouting quorums. If the sparse store ever perturbs delivery order,
  // latency sampling, or the drop stream, this digest moves.
  ClusterOptions options;
  options.seed = 7;
  options.clients = 2;
  options.link = LinkParams{.base_latency = 50, .jitter = 10};
  Cluster cluster(make_arbitrary(64), options);
  const SiteId client0 = 64;  // replicas occupy sites [0, 64)
  cluster.network().set_link(client0, 2,
                             LinkParams{.base_latency = 400,
                                        .jitter = 30,
                                        .drop_probability = 0.2});
  cluster.network().set_link(client0, 9, LinkParams{.severed = true});
  cluster.injector().transient_failure(30'000, 3, 90'000);

  WorkloadOptions workload;
  workload.transactions_per_client = 120;
  workload.read_fraction = 0.5;
  workload.num_keys = 16;
  workload.seed = 42;
  const WorkloadStats stats = run_workload(cluster, workload);

  std::string blob = cluster.metrics().to_json_string();
  blob += "|sent=" + std::to_string(cluster.network().messages_sent());
  blob +=
      "|delivered=" + std::to_string(cluster.network().messages_delivered());
  blob += "|dropped=" + std::to_string(cluster.network().messages_dropped());
  blob += "|committed=" + std::to_string(stats.committed);
  blob += "|aborted=" + std::to_string(stats.aborted);

  EXPECT_EQ(hex64(fnv1a64(blob)), "d74be237b145d370");
  EXPECT_EQ(stats.committed, 232u);
  EXPECT_EQ(cluster.network().messages_dropped(), 66u);
}

}  // namespace
}  // namespace atrcp
