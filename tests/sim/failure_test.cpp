#include "sim/failure.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace atrcp {
namespace {

class NullHandler final : public SiteHandler {
 public:
  void on_message(const Message&) override {}
};

class FailureInjectorTest : public ::testing::Test {
 protected:
  FailureInjectorTest() : network_(scheduler_, Rng(3)) {
    for (int i = 0; i < 5; ++i) {
      handlers_.push_back(std::make_unique<NullHandler>());
      network_.add_site(*handlers_.back());
    }
    injector_ =
        std::make_unique<FailureInjector>(network_, scheduler_, 5, Rng(4));
  }

  Scheduler scheduler_;
  Network network_;
  std::vector<std::unique_ptr<NullHandler>> handlers_;
  std::unique_ptr<FailureInjector> injector_;
};

TEST_F(FailureInjectorTest, CrashNowUpdatesBothViews) {
  injector_->crash_now(2);
  EXPECT_TRUE(injector_->failures().is_failed(2));
  EXPECT_FALSE(network_.is_up(2));
  EXPECT_EQ(injector_->crash_count(), 1u);
}

TEST_F(FailureInjectorTest, RecoverNowUpdatesBothViews) {
  injector_->crash_now(2);
  injector_->recover_now(2);
  EXPECT_TRUE(injector_->failures().is_alive(2));
  EXPECT_TRUE(network_.is_up(2));
  EXPECT_EQ(injector_->recovery_count(), 1u);
}

TEST_F(FailureInjectorTest, DoubleCrashIsIdempotent) {
  injector_->crash_now(1);
  injector_->crash_now(1);
  EXPECT_EQ(injector_->crash_count(), 1u);
  injector_->recover_now(1);
  injector_->recover_now(1);
  EXPECT_EQ(injector_->recovery_count(), 1u);
}

TEST_F(FailureInjectorTest, ScheduledCrashFiresAtTheRightTime) {
  injector_->crash_at(1000, 3);
  scheduler_.run_until(999);
  EXPECT_TRUE(injector_->failures().is_alive(3));
  scheduler_.run_until(1000);
  EXPECT_TRUE(injector_->failures().is_failed(3));
}

TEST_F(FailureInjectorTest, TransientFailureRecovers) {
  injector_->transient_failure(100, 0, 500);
  scheduler_.run_until(200);
  EXPECT_TRUE(injector_->failures().is_failed(0));
  scheduler_.run_until(700);
  EXPECT_TRUE(injector_->failures().is_alive(0));
}

TEST_F(FailureInjectorTest, PartitionMovesMinorityAndHeals) {
  injector_->partition_at(100, {0, 1}, 400);
  scheduler_.run_until(150);
  EXPECT_EQ(network_.partition_of(0), 1u);
  EXPECT_EQ(network_.partition_of(1), 1u);
  EXPECT_EQ(network_.partition_of(2), 0u);
  scheduler_.run_until(600);
  for (SiteId site = 0; site < 5; ++site) {
    EXPECT_EQ(network_.partition_of(site), 0u);
  }
}

TEST_F(FailureInjectorTest, OutOfRangeSiteRejected) {
  EXPECT_THROW(injector_->crash_now(5), std::out_of_range);
  EXPECT_THROW(injector_->recover_now(9), std::out_of_range);
}

TEST_F(FailureInjectorTest, RandomProcessHitsStationaryAvailability) {
  // mean_uptime 9000, mean_downtime 1000 -> stationary availability 0.9.
  injector_->start_random_failures(9000, 1000, 10'000'000);
  // Sample the alive fraction across the run.
  std::uint64_t alive_samples = 0;
  std::uint64_t total_samples = 0;
  for (SimTime t = 100'000; t <= 10'000'000; t += 10'000) {
    scheduler_.run_until(t);
    for (SiteId site = 0; site < 5; ++site) {
      alive_samples += injector_->failures().is_alive(site) ? 1 : 0;
      ++total_samples;
    }
  }
  const double availability =
      static_cast<double>(alive_samples) / static_cast<double>(total_samples);
  EXPECT_NEAR(availability, 0.9, 0.03);
  EXPECT_GT(injector_->crash_count(), 100u);
}

TEST_F(FailureInjectorTest, RandomProcessStopsAtHorizon) {
  injector_->start_random_failures(500, 500, 50'000);
  scheduler_.run();
  EXPECT_LE(scheduler_.now(), 50'000u);
}

TEST_F(FailureInjectorTest, RejectsZeroMeans) {
  EXPECT_THROW(injector_->start_random_failures(0, 100, 1000),
               std::invalid_argument);
  EXPECT_THROW(injector_->start_random_failures(100, 0, 1000),
               std::invalid_argument);
}

}  // namespace
}  // namespace atrcp
