#include "sim/network.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace atrcp {
namespace {

struct Ping final : MessageBody {
  int payload = 0;
  explicit Ping(int p) : payload(p) {}
};

/// Records everything it receives, with arrival times.
class Recorder final : public SiteHandler {
 public:
  explicit Recorder(Scheduler& scheduler) : scheduler_(scheduler) {}
  void on_message(const Message& message) override {
    const auto* ping = dynamic_cast<const Ping*>(message.body.get());
    ASSERT_NE(ping, nullptr);
    payloads.push_back(ping->payload);
    froms.push_back(message.from);
    times.push_back(scheduler_.now());
  }
  std::vector<int> payloads;
  std::vector<SiteId> froms;
  std::vector<SimTime> times;

 private:
  Scheduler& scheduler_;
};

class NetworkTest : public ::testing::Test {
 protected:
  NetworkTest()
      : network_(scheduler_, Rng(7),
                 LinkParams{.base_latency = 100, .jitter = 0}) {
    for (int i = 0; i < 3; ++i) {
      recorders_.push_back(std::make_unique<Recorder>(scheduler_));
      network_.add_site(*recorders_.back());
    }
  }

  Scheduler scheduler_;
  Network network_;
  std::vector<std::unique_ptr<Recorder>> recorders_;
};

TEST_F(NetworkTest, DeliversWithLatency) {
  network_.send(0, 1, std::make_shared<Ping>(42));
  scheduler_.run();
  ASSERT_EQ(recorders_[1]->payloads.size(), 1u);
  EXPECT_EQ(recorders_[1]->payloads[0], 42);
  EXPECT_EQ(recorders_[1]->froms[0], 0u);
  EXPECT_EQ(recorders_[1]->times[0], 100u);
  EXPECT_EQ(network_.messages_delivered(), 1u);
}

TEST_F(NetworkTest, JitterStaysWithinBound) {
  Network jittery(scheduler_, Rng(9),
                  LinkParams{.base_latency = 100, .jitter = 50});
  Recorder recorder(scheduler_);
  jittery.add_site(recorder);
  Recorder sender(scheduler_);
  jittery.add_site(sender);
  for (int i = 0; i < 100; ++i) jittery.send(1, 0, std::make_shared<Ping>(i));
  scheduler_.run();
  ASSERT_EQ(recorder.times.size(), 100u);
  for (SimTime t : recorder.times) {
    EXPECT_GE(t, 100u);
    EXPECT_LE(t, 150u);
  }
}

TEST_F(NetworkTest, DownDestinationDropsSilently) {
  network_.set_up(1, false);
  network_.send(0, 1, std::make_shared<Ping>(1));
  scheduler_.run();
  EXPECT_TRUE(recorders_[1]->payloads.empty());
  EXPECT_EQ(network_.messages_dropped(), 1u);
}

TEST_F(NetworkTest, DownSenderSendsNothing) {
  network_.set_up(0, false);
  network_.send(0, 1, std::make_shared<Ping>(1));
  scheduler_.run();
  EXPECT_TRUE(recorders_[1]->payloads.empty());
}

TEST_F(NetworkTest, CrashWhileInFlightDropsAtDelivery) {
  network_.send(0, 1, std::make_shared<Ping>(1));
  scheduler_.schedule_at(50, [&] { network_.set_up(1, false); });
  scheduler_.run();
  EXPECT_TRUE(recorders_[1]->payloads.empty());
  EXPECT_EQ(network_.messages_dropped(), 1u);
}

TEST_F(NetworkTest, RecoveredSiteReceivesAgain) {
  network_.set_up(1, false);
  network_.set_up(1, true);
  network_.send(0, 1, std::make_shared<Ping>(5));
  scheduler_.run();
  EXPECT_EQ(recorders_[1]->payloads.size(), 1u);
}

TEST_F(NetworkTest, PartitionBlocksCrossTraffic) {
  network_.set_partition(2, 1);
  network_.send(0, 2, std::make_shared<Ping>(1));  // group 0 -> group 1
  network_.send(0, 1, std::make_shared<Ping>(2));  // within group 0
  scheduler_.run();
  EXPECT_TRUE(recorders_[2]->payloads.empty());
  EXPECT_EQ(recorders_[1]->payloads.size(), 1u);
}

TEST_F(NetworkTest, HealPartitionsRestoresTraffic) {
  network_.set_partition(2, 1);
  network_.heal_partitions();
  network_.send(0, 2, std::make_shared<Ping>(3));
  scheduler_.run();
  EXPECT_EQ(recorders_[2]->payloads.size(), 1u);
}

TEST_F(NetworkTest, PartitionFormedWhileInFlightDropsMessage) {
  network_.send(0, 2, std::make_shared<Ping>(1));
  scheduler_.schedule_at(50, [&] { network_.set_partition(2, 1); });
  scheduler_.run();
  EXPECT_TRUE(recorders_[2]->payloads.empty());
}

TEST_F(NetworkTest, SeveredLinkDropsEverything) {
  network_.set_link(0, 1, LinkParams{.severed = true});
  network_.send(0, 1, std::make_shared<Ping>(1));
  network_.send(1, 0, std::make_shared<Ping>(2));  // symmetric
  network_.send(0, 2, std::make_shared<Ping>(3));  // unaffected
  scheduler_.run();
  EXPECT_TRUE(recorders_[1]->payloads.empty());
  EXPECT_TRUE(recorders_[0]->payloads.empty());
  EXPECT_EQ(recorders_[2]->payloads.size(), 1u);
}

TEST_F(NetworkTest, LossyLinkDropsAboutTheRightFraction) {
  network_.set_link(0, 1,
                    LinkParams{.base_latency = 1, .drop_probability = 0.3});
  for (int i = 0; i < 10000; ++i) {
    network_.send(0, 1, std::make_shared<Ping>(i));
  }
  scheduler_.run();
  EXPECT_NEAR(recorders_[1]->payloads.size() / 10000.0, 0.7, 0.02);
}

TEST_F(NetworkTest, PerLinkOverrideLatency) {
  network_.set_link(0, 1, LinkParams{.base_latency = 500, .jitter = 0});
  network_.send(0, 1, std::make_shared<Ping>(1));
  network_.send(0, 2, std::make_shared<Ping>(2));
  scheduler_.run();
  EXPECT_EQ(recorders_[1]->times[0], 500u);
  EXPECT_EQ(recorders_[2]->times[0], 100u);
}

TEST_F(NetworkTest, InvalidArgumentsThrow) {
  EXPECT_THROW(network_.send(0, 99, std::make_shared<Ping>(0)),
               std::out_of_range);
  EXPECT_THROW(network_.send(99, 0, std::make_shared<Ping>(0)),
               std::out_of_range);
  EXPECT_THROW(network_.send(0, 1, nullptr), std::invalid_argument);
  EXPECT_THROW(network_.set_up(99, true), std::out_of_range);
  EXPECT_THROW(network_.set_partition(99, 1), std::out_of_range);
}

TEST_F(NetworkTest, SelfSendWorks) {
  network_.send(1, 1, std::make_shared<Ping>(9));
  scheduler_.run();
  ASSERT_EQ(recorders_[1]->payloads.size(), 1u);
  EXPECT_EQ(recorders_[1]->froms[0], 1u);
}

}  // namespace
}  // namespace atrcp
