#include "sim/message_pool.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace atrcp {
namespace {

struct SmallBody {
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

struct LargeBody {
  std::array<std::uint64_t, 40> words{};  // > 256 bytes with control block
};

TEST(MessagePoolTest, ReusesBlocksAfterRelease) {
  MessagePool pool;
  { auto msg = pool.make<SmallBody>(); }
  const auto after_first = pool.stats();
  EXPECT_EQ(after_first.fresh, 1u);
  EXPECT_EQ(after_first.reused, 0u);

  // Steady state: one live message at a time cycles a single block.
  for (int i = 0; i < 10; ++i) {
    auto msg = pool.make<SmallBody>();
    msg->a = static_cast<std::uint64_t>(i);
  }
  const auto after_cycle = pool.stats();
  EXPECT_EQ(after_cycle.fresh, 1u);
  EXPECT_EQ(after_cycle.reused, 10u);
}

TEST(MessagePoolTest, ConcurrentlyLiveMessagesGetDistinctBlocks) {
  MessagePool pool;
  auto first = pool.make<SmallBody>();
  auto second = pool.make<SmallBody>();
  EXPECT_NE(first.get(), second.get());
  EXPECT_EQ(pool.stats().fresh, 2u);
  first.reset();
  second.reset();
  auto third = pool.make<SmallBody>();
  EXPECT_EQ(pool.stats().reused, 1u);
}

TEST(MessagePoolTest, DifferentSizesUseDifferentBuckets) {
  MessagePool pool;
  { auto small = pool.make<SmallBody>(); }
  // A larger body cannot reuse the small bucket's freed block.
  { auto large = pool.make<LargeBody>(); }
  const auto stats = pool.stats();
  EXPECT_EQ(stats.fresh, 2u);
  EXPECT_EQ(stats.reused, 0u);
  { auto large_again = pool.make<LargeBody>(); }
  EXPECT_EQ(pool.stats().reused, 1u);
}

TEST(MessagePoolTest, MessageOutlivesPool) {
  // A delivery closure can still hold a message after the Network (and its
  // pool handle) is torn down; the arena must survive until the last
  // message dies.
  std::shared_ptr<SmallBody> survivor;
  {
    MessagePool pool;
    survivor = pool.make<SmallBody>();
    survivor->a = 0xdeadbeef;
  }
  ASSERT_NE(survivor, nullptr);
  EXPECT_EQ(survivor->a, 0xdeadbeefu);
  survivor.reset();  // frees through the (kept-alive) arena — must not crash
}

TEST(MessagePoolTest, ConstructorArgumentsForwarded) {
  MessagePool pool;
  auto msg = pool.make<std::pair<int, int>>(3, 4);
  EXPECT_EQ(msg->first, 3);
  EXPECT_EQ(msg->second, 4);
}

TEST(MessagePoolTest, BucketOfIsOverflowSafeAtExtremeSizes) {
  // bucket_of must route anything beyond the pooled range — including
  // sizes near SIZE_MAX, where naive doubling of the bucket size would
  // wrap — to the out-of-pool sentinel kBuckets, never a real bucket.
  EXPECT_EQ(MessagePool::bucket_of(1), 0u);
  EXPECT_EQ(MessagePool::bucket_of(MessagePool::kMinBlock), 0u);
  EXPECT_EQ(MessagePool::bucket_of(MessagePool::kMinBlock + 1), 1u);
  EXPECT_EQ(MessagePool::bucket_of(MessagePool::kMaxPooledBytes),
            MessagePool::kBuckets - 1);
  EXPECT_EQ(MessagePool::bucket_of(MessagePool::kMaxPooledBytes + 1),
            MessagePool::kBuckets);
  EXPECT_EQ(MessagePool::bucket_of(SIZE_MAX / 2), MessagePool::kBuckets);
  EXPECT_EQ(MessagePool::bucket_of(SIZE_MAX), MessagePool::kBuckets);
}

struct OversizedBody {
  std::array<char, 2 * MessagePool::kMaxPooledBytes> bytes{};
};

TEST(MessagePoolTest, OversizedBodiesBypassThePoolAndAreFreed) {
  MessagePool pool;
  for (int i = 0; i < 5; ++i) {
    auto huge = pool.make<OversizedBody>();
    huge->bytes[0] = static_cast<char>(i);
  }
  const auto stats = pool.stats();
  // Counted as oversize (not fresh), never recycled, and — the leak fix —
  // never parked on a free list: the retained footprint stays zero.
  EXPECT_EQ(stats.oversize, 5u);
  EXPECT_EQ(stats.fresh, 0u);
  EXPECT_EQ(stats.reused, 0u);
  EXPECT_EQ(stats.free_blocks, 0u);
}

TEST(MessagePoolTest, FreeListsAreCappedSoBurstsDoNotPinMemory) {
  MessagePool pool;
  constexpr std::size_t kBurst = MessagePool::kMaxFreeBlocksPerBucket + 100;
  {
    std::vector<std::shared_ptr<SmallBody>> live;
    live.reserve(kBurst);
    for (std::size_t i = 0; i < kBurst; ++i) live.push_back(pool.make<SmallBody>());
  }  // all released at once: only kMaxFreeBlocksPerBucket may be retained
  const auto stats = pool.stats();
  EXPECT_EQ(stats.fresh, kBurst);
  EXPECT_EQ(stats.free_blocks, MessagePool::kMaxFreeBlocksPerBucket);
  EXPECT_EQ(stats.trimmed, kBurst - MessagePool::kMaxFreeBlocksPerBucket);
}

}  // namespace
}  // namespace atrcp
