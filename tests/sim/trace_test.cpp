// Message tracing, including message-level assertions on the 2PC exchange
// of a quorum write — the strongest behavioural test of the wire protocol.
#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/quorums.hpp"
#include "replica/messages.hpp"
#include "txn/cluster.hpp"

namespace atrcp {
namespace {

TEST(TraceTest, TypeLabels) {
  EXPECT_EQ(message_type_label(ReadRequest{}), "ReadRequest");
  EXPECT_EQ(message_type_label(PrepareRequest{}), "PrepareRequest");
  EXPECT_EQ(message_type_label(CommitAck{}), "CommitAck");
  EXPECT_EQ(message_type_label(PingRequest{}), "PingRequest");
}

TEST(TraceTest, RecordsSendsDeliveriesAndDrops) {
  Scheduler scheduler;
  Network network(scheduler, Rng(1),
                  LinkParams{.base_latency = 10, .jitter = 0});
  class Sink final : public SiteHandler {
   public:
    void on_message(const Message&) override {}
  } a, b;
  network.add_site(a);
  network.add_site(b);
  MessageTrace trace;
  network.set_trace_sink(&trace);

  network.send(0, 1, std::make_shared<ReadRequest>());
  scheduler.run();  // first message delivered while the site is up
  network.set_up(1, false);
  network.send(0, 1, std::make_shared<ReadRequest>());
  scheduler.run();

  EXPECT_EQ(trace.count(TraceEvent::kSend, "ReadRequest"), 2u);
  EXPECT_EQ(trace.count(TraceEvent::kDeliver, "ReadRequest"), 1u);
  EXPECT_EQ(trace.count(TraceEvent::kDrop, "ReadRequest"), 1u);
  EXPECT_NE(trace.to_string().find("ReadRequest 0->1"), std::string::npos);
}

TEST(TraceTest, FilterRestrictsRecords) {
  Scheduler scheduler;
  Network network(scheduler, Rng(1));
  class Sink final : public SiteHandler {
   public:
    void on_message(const Message&) override {}
  } a, b;
  network.add_site(a);
  network.add_site(b);
  MessageTrace trace([](const TraceRecord& r) {
    return r.event == TraceEvent::kDeliver;
  });
  network.set_trace_sink(&trace);
  network.send(0, 1, std::make_shared<ReadRequest>());
  scheduler.run();
  ASSERT_EQ(trace.records().size(), 1u);
  EXPECT_EQ(trace.records()[0].event, TraceEvent::kDeliver);
}

TEST(TraceTest, TwoPhaseCommitExchangeOfAWrite) {
  // A single write through the full stack must produce exactly:
  //   2 VersionRequests (read quorum of 1-3-5 has 2 members) and replies,
  //   k PrepareRequests / votes / commits / acks where k = write quorum
  //   size (3 or 5), in phase order.
  ClusterOptions options;
  options.link = LinkParams{.base_latency = 10, .jitter = 0};
  Cluster cluster(std::make_unique<ArbitraryProtocol>(
                      ArbitraryTree::from_spec("1-3-5")),
                  options);
  MessageTrace trace;
  cluster.network().set_trace_sink(&trace);
  ASSERT_EQ(cluster.write_sync(0, 1, "traced"), TxnOutcome::kCommitted);
  cluster.network().set_trace_sink(nullptr);

  const auto delivered = trace.type_sequence(TraceEvent::kDeliver);
  const auto count = [&](const std::string& type) {
    return trace.count(TraceEvent::kDeliver, type);
  };
  EXPECT_EQ(count("VersionRequest"), 2u);
  EXPECT_EQ(count("VersionReply"), 2u);
  const std::size_t participants = count("PrepareRequest");
  EXPECT_TRUE(participants == 3 || participants == 5) << participants;
  EXPECT_EQ(count("PrepareVote"), participants);
  EXPECT_EQ(count("CommitRequest"), participants);
  EXPECT_EQ(count("CommitAck"), participants);
  // Phase ordering: every VersionReply before any PrepareRequest; every
  // PrepareVote before any CommitRequest.
  const auto last_version_reply = std::distance(
      delivered.begin(),
      std::find(delivered.rbegin(), delivered.rend(), "VersionReply").base());
  const auto first_prepare = std::distance(
      delivered.begin(),
      std::find(delivered.begin(), delivered.end(), "PrepareRequest"));
  EXPECT_LE(last_version_reply, first_prepare);
  const auto last_vote = std::distance(
      delivered.begin(),
      std::find(delivered.rbegin(), delivered.rend(), "PrepareVote").base());
  const auto first_commit = std::distance(
      delivered.begin(),
      std::find(delivered.begin(), delivered.end(), "CommitRequest"));
  EXPECT_LE(last_vote, first_commit);
}

TEST(TraceTest, ReadIsTwoMessagesPerQuorumMember) {
  ClusterOptions options;
  options.link = LinkParams{.base_latency = 10, .jitter = 0};
  Cluster cluster(std::make_unique<ArbitraryProtocol>(
                      ArbitraryTree::from_spec("1-3-5")),
                  options);
  ASSERT_EQ(cluster.write_sync(0, 1, "x"), TxnOutcome::kCommitted);
  MessageTrace trace;
  cluster.network().set_trace_sink(&trace);
  ASSERT_TRUE(cluster.read_sync(0, 1).has_value());
  cluster.network().set_trace_sink(nullptr);
  EXPECT_EQ(trace.count(TraceEvent::kDeliver, "ReadRequest"), 2u);
  EXPECT_EQ(trace.count(TraceEvent::kDeliver, "ReadReply"), 2u);
  // Read-only transactions must never touch 2PC.
  EXPECT_EQ(trace.count(TraceEvent::kSend, "PrepareRequest"), 0u);
}

}  // namespace
}  // namespace atrcp
