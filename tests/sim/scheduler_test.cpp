#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

namespace atrcp {
namespace {

TEST(SchedulerTest, ExecutesInTimeOrder) {
  Scheduler scheduler;
  std::vector<int> order;
  scheduler.schedule_at(30, [&] { order.push_back(3); });
  scheduler.schedule_at(10, [&] { order.push_back(1); });
  scheduler.schedule_at(20, [&] { order.push_back(2); });
  scheduler.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(scheduler.now(), 30u);
}

TEST(SchedulerTest, FifoWithinSameTimestamp) {
  Scheduler scheduler;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    scheduler.schedule_at(5, [&, i] { order.push_back(i); });
  }
  scheduler.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SchedulerTest, ScheduleAfterUsesCurrentTime) {
  Scheduler scheduler;
  SimTime fired_at = 0;
  scheduler.schedule_at(100, [&] {
    scheduler.schedule_after(50, [&] { fired_at = scheduler.now(); });
  });
  scheduler.run();
  EXPECT_EQ(fired_at, 150u);
}

TEST(SchedulerTest, RejectsPastAndEmptyActions) {
  Scheduler scheduler;
  scheduler.schedule_at(10, [] {});
  scheduler.run();
  EXPECT_THROW(scheduler.schedule_at(5, [] {}), std::invalid_argument);
  EXPECT_THROW(scheduler.schedule_at(20, nullptr), std::invalid_argument);
}

TEST(SchedulerTest, StepReturnsFalseWhenEmpty) {
  Scheduler scheduler;
  EXPECT_FALSE(scheduler.step());
  scheduler.schedule_at(1, [] {});
  EXPECT_TRUE(scheduler.step());
  EXPECT_FALSE(scheduler.step());
}

TEST(SchedulerTest, RunUntilStopsAtDeadline) {
  Scheduler scheduler;
  std::vector<SimTime> fired;
  for (SimTime t : {10u, 20u, 30u, 40u}) {
    scheduler.schedule_at(t, [&, t] { fired.push_back(t); });
  }
  const std::size_t count = scheduler.run_until(25);
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20}));
  EXPECT_EQ(scheduler.now(), 25u);  // clock advanced to the deadline
  scheduler.run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(SchedulerTest, EventsCanScheduleEvents) {
  Scheduler scheduler;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) scheduler.schedule_after(1, chain);
  };
  scheduler.schedule_at(0, chain);
  scheduler.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(scheduler.now(), 99u);
  EXPECT_EQ(scheduler.executed(), 100u);
}

TEST(SchedulerTest, EventCapStopsLivelock) {
  Scheduler scheduler;
  std::function<void()> forever = [&] { scheduler.schedule_after(1, forever); };
  scheduler.schedule_at(0, forever);
  const std::size_t executed = scheduler.run(1000);
  EXPECT_EQ(executed, 1000u);
  EXPECT_EQ(scheduler.pending(), 1u);
}

}  // namespace
}  // namespace atrcp
