#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace atrcp {
namespace {

TEST(SchedulerTest, ExecutesInTimeOrder) {
  Scheduler scheduler;
  std::vector<int> order;
  scheduler.schedule_at(30, [&] { order.push_back(3); });
  scheduler.schedule_at(10, [&] { order.push_back(1); });
  scheduler.schedule_at(20, [&] { order.push_back(2); });
  scheduler.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(scheduler.now(), 30u);
}

TEST(SchedulerTest, FifoWithinSameTimestamp) {
  Scheduler scheduler;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    scheduler.schedule_at(5, [&, i] { order.push_back(i); });
  }
  scheduler.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SchedulerTest, ScheduleAfterUsesCurrentTime) {
  Scheduler scheduler;
  SimTime fired_at = 0;
  scheduler.schedule_at(100, [&] {
    scheduler.schedule_after(50, [&] { fired_at = scheduler.now(); });
  });
  scheduler.run();
  EXPECT_EQ(fired_at, 150u);
}

TEST(SchedulerTest, RejectsPastAndEmptyActions) {
  Scheduler scheduler;
  scheduler.schedule_at(10, [] {});
  scheduler.run();
  EXPECT_THROW(scheduler.schedule_at(5, [] {}), std::invalid_argument);
  EXPECT_THROW(scheduler.schedule_at(20, nullptr), std::invalid_argument);
}

TEST(SchedulerTest, StepReturnsFalseWhenEmpty) {
  Scheduler scheduler;
  EXPECT_FALSE(scheduler.step());
  scheduler.schedule_at(1, [] {});
  EXPECT_TRUE(scheduler.step());
  EXPECT_FALSE(scheduler.step());
}

TEST(SchedulerTest, RunUntilStopsAtDeadline) {
  Scheduler scheduler;
  std::vector<SimTime> fired;
  for (SimTime t : {10u, 20u, 30u, 40u}) {
    scheduler.schedule_at(t, [&, t] { fired.push_back(t); });
  }
  const std::size_t count = scheduler.run_until(25);
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 20}));
  EXPECT_EQ(scheduler.now(), 25u);  // clock advanced to the deadline
  scheduler.run();
  EXPECT_EQ(fired.size(), 4u);
}

TEST(SchedulerTest, EventsCanScheduleEvents) {
  Scheduler scheduler;
  int depth = 0;
  std::function<void()> chain = [&] {
    if (++depth < 100) scheduler.schedule_after(1, chain);
  };
  scheduler.schedule_at(0, chain);
  scheduler.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(scheduler.now(), 99u);
  EXPECT_EQ(scheduler.executed(), 100u);
}

// The calendar-queue rewrite splits events between a 256-µs ring and an
// overflow heap; the tests below pin ordering across that boundary.

TEST(SchedulerTest, OrdersEventsAcrossWindowBoundaries) {
  Scheduler scheduler;
  std::vector<SimTime> fired;
  // Scrambled times spanning several 256-µs windows, plus in-window ones.
  const std::vector<SimTime> times{3000, 10, 600, 255, 256, 5000,
                                   257,  0,  999, 512, 40,  2999};
  for (SimTime t : times) {
    scheduler.schedule_at(t, [&, t] { fired.push_back(t); });
  }
  scheduler.run();
  std::vector<SimTime> want = times;
  std::sort(want.begin(), want.end());
  EXPECT_EQ(fired, want);
  EXPECT_EQ(scheduler.now(), 5000u);
}

TEST(SchedulerTest, FifoPreservedAcrossHeapDrainAndDirectAppend) {
  Scheduler scheduler;
  std::vector<int> order;
  // A and C go to the overflow heap (t=300 is beyond the initial window);
  // the window roll drains them into the ring in insertion order. D is
  // appended directly to the tick A is executing from — it must still run
  // after C.
  scheduler.schedule_at(300, [&] {
    order.push_back(1);  // A
    scheduler.schedule_at(300, [&] { order.push_back(3); });  // D
  });
  scheduler.schedule_at(10, [&] {
    order.push_back(0);  // B
    scheduler.schedule_at(300, [&] { order.push_back(2); });  // C
  });
  scheduler.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(scheduler.now(), 300u);
}

TEST(SchedulerTest, FifoWithinSameFarTimestamp) {
  Scheduler scheduler;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    scheduler.schedule_at(100'000, [&, i] { order.push_back(i); });
  }
  scheduler.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(SchedulerTest, RunUntilAcrossEmptyWindows) {
  Scheduler scheduler;
  std::vector<SimTime> fired;
  for (SimTime t : {5u, 100'000u, 200'000u}) {
    scheduler.schedule_at(t, [&, t] { fired.push_back(t); });
  }
  EXPECT_EQ(scheduler.run_until(50'000), 1u);
  EXPECT_EQ(scheduler.now(), 50'000u);
  EXPECT_EQ(scheduler.pending(), 2u);
  // The peek that stopped the run must not have rolled the window: a new
  // event before the far ones still executes first.
  scheduler.schedule_at(60'000, [&] { fired.push_back(60'000); });
  scheduler.run();
  EXPECT_EQ(fired, (std::vector<SimTime>{5, 60'000, 100'000, 200'000}));
}

TEST(SchedulerTest, OversizedClosuresExecuteCorrectly) {
  // Captures beyond Action's 48-byte inline buffer fall back to a heap box;
  // ordering and results must be identical.
  Scheduler scheduler;
  std::vector<long> results;
  std::array<long, 16> big{};
  for (int i = 0; i < 16; ++i) big[static_cast<std::size_t>(i)] = i;
  auto probe = [big, &results] { results.push_back(big[15]); };
  static_assert(!Scheduler::Action::stores_inline<decltype(probe)>());
  scheduler.schedule_at(20, std::move(probe));
  scheduler.schedule_at(10, [big, &results] { results.push_back(big[3]); });
  scheduler.schedule_at(500, [big, &results] { results.push_back(big[7]); });
  scheduler.run();
  EXPECT_EQ(results, (std::vector<long>{3, 15, 7}));
}

TEST(SchedulerTest, SlotSlabRecyclesAcrossManyEvents) {
  // Long self-rescheduling chains must not grow state without bound:
  // pending stays at 1 and the clock tracks the chain across hundreds of
  // window rolls.
  Scheduler scheduler;
  std::uint64_t ticks = 0;
  std::function<void()> chain = [&] {
    if (++ticks < 10'000) scheduler.schedule_after(97, chain);
  };
  scheduler.schedule_at(0, chain);
  scheduler.run();
  EXPECT_EQ(ticks, 10'000u);
  EXPECT_EQ(scheduler.now(), 9'999u * 97u);
  EXPECT_EQ(scheduler.pending(), 0u);
}

TEST(SchedulerTest, EventCapStopsLivelock) {
  Scheduler scheduler;
  std::function<void()> forever = [&] { scheduler.schedule_after(1, forever); };
  scheduler.schedule_at(0, forever);
  const std::size_t executed = scheduler.run(1000);
  EXPECT_EQ(executed, 1000u);
  EXPECT_EQ(scheduler.pending(), 1u);
}

}  // namespace
}  // namespace atrcp
