#include "analysis/empirical.hpp"

#include <gtest/gtest.h>

#include "core/config.hpp"
#include "core/quorums.hpp"
#include "protocols/rowa.hpp"

namespace atrcp {
namespace {

TEST(EmpiricalTest, InputValidation) {
  const Rowa rowa(4);
  Rng rng(1);
  EXPECT_THROW(empirical_loads(rowa, 0, rng), std::invalid_argument);
  EXPECT_THROW(measured_availability(rowa, 0.5, 0, rng),
               std::invalid_argument);
  EXPECT_THROW(measured_costs(rowa, 0, rng), std::invalid_argument);
}

TEST(EmpiricalTest, LoadsSumToExpectedTotals) {
  // Per sample, a read quorum of the 1-3-5 tree has exactly 2 members, so
  // per-replica read rates must sum to 2; write rates sum to the mean
  // write quorum size (between 3 and 5).
  const ArbitraryProtocol protocol(ArbitraryTree::from_spec("1-3-5"));
  Rng rng(2);
  const auto loads = empirical_loads(protocol, 50000, rng);
  double read_total = 0;
  double write_total = 0;
  for (double l : loads.read) read_total += l;
  for (double l : loads.write) write_total += l;
  EXPECT_NEAR(read_total, 2.0, 1e-9);   // every sample contributes exactly 2
  EXPECT_NEAR(write_total, 4.0, 0.05);  // (3+5)/2 under the uniform strategy
}

TEST(EmpiricalTest, MaxFieldsMatchVectors) {
  const ArbitraryProtocol protocol(ArbitraryTree::from_spec("1-2-6"));
  Rng rng(3);
  const auto loads = empirical_loads(protocol, 20000, rng);
  double max_read = 0;
  double max_write = 0;
  for (double l : loads.read) max_read = std::max(max_read, l);
  for (double l : loads.write) max_write = std::max(max_write, l);
  EXPECT_DOUBLE_EQ(loads.max_read, max_read);
  EXPECT_DOUBLE_EQ(loads.max_write, max_write);
}

TEST(EmpiricalTest, CostsMatchAnalyticModel) {
  const auto protocol = make_arbitrary(50);
  Rng rng(4);
  const auto costs = measured_costs(*protocol, 20000, rng);
  EXPECT_NEAR(costs.read, protocol->read_cost(), 0.01);
  EXPECT_NEAR(costs.write, protocol->write_cost(), 0.15);
}

TEST(EmpiricalTest, AvailabilityDegenerateP) {
  const Rowa rowa(5);
  Rng rng(5);
  const auto all_up = measured_availability(rowa, 1.0, 200, rng);
  EXPECT_DOUBLE_EQ(all_up.read, 1.0);
  EXPECT_DOUBLE_EQ(all_up.write, 1.0);
  const auto all_down = measured_availability(rowa, 0.0, 200, rng);
  EXPECT_DOUBLE_EQ(all_down.read, 0.0);
  EXPECT_DOUBLE_EQ(all_down.write, 0.0);
}

}  // namespace
}  // namespace atrcp
