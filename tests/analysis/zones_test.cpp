#include "analysis/zones.hpp"

#include <gtest/gtest.h>

#include "core/config.hpp"
#include "core/quorums.hpp"

namespace atrcp {
namespace {

ArbitraryTree four_by_four() { return balanced_tree(16, 4); }  // 1-4-4-4-4

TEST(ZoneAssignmentTest, AlignedMapsLevelsToZones) {
  const ArbitraryTree tree = four_by_four();
  const ZoneAssignment aligned = aligned_zones(tree);
  EXPECT_EQ(aligned.zone_count, 4u);
  // Replicas 0..3 are level one -> zone 0; 4..7 -> zone 1; etc.
  for (ReplicaId id = 0; id < 16; ++id) {
    EXPECT_EQ(aligned.zone_of[id], id / 4) << "replica " << id;
  }
}

TEST(ZoneAssignmentTest, StripedSpreadsEachLevel) {
  const ArbitraryTree tree = four_by_four();
  const ZoneAssignment striped = striped_zones(tree, 4);
  EXPECT_EQ(striped.zone_count, 4u);
  // Within each level, zones 0,1,2,3 in order.
  for (ReplicaId id = 0; id < 16; ++id) {
    EXPECT_EQ(striped.zone_of[id], id % 4) << "replica " << id;
  }
  EXPECT_THROW(striped_zones(tree, 0), std::invalid_argument);
}

TEST(ZoneEffectTest, AlignedZoneOutageBlocksReadsNotWrites) {
  const ArbitraryProtocol protocol(four_by_four());
  const auto effect =
      single_zone_effect(protocol, aligned_zones(protocol.tree()));
  // Losing any zone = losing a whole level: every zone blocks reads,
  // none blocks writes (three full levels remain).
  EXPECT_EQ(effect.zones_blocking_reads, 4u);
  EXPECT_EQ(effect.zones_blocking_writes, 0u);
}

TEST(ZoneEffectTest, StripedZoneOutageBlocksWritesNotReads) {
  const ArbitraryProtocol protocol(four_by_four());
  const auto effect =
      single_zone_effect(protocol, striped_zones(protocol.tree(), 4));
  // Losing any zone removes one replica from EVERY level: reads keep three
  // survivors per level, writes lose every level.
  EXPECT_EQ(effect.zones_blocking_reads, 0u);
  EXPECT_EQ(effect.zones_blocking_writes, 4u);
}

TEST(ZoneEffectTest, FewerZonesThanLevelWidthKeepsSomeLevelsWhole) {
  // Striping 16 replicas over 8 zones: each zone holds at most one replica
  // of levels of width 4... zones 4..7 never appear in 4-wide levels, so
  // those zone outages hurt nothing.
  const ArbitraryProtocol protocol(four_by_four());
  const auto effect =
      single_zone_effect(protocol, striped_zones(protocol.tree(), 8));
  EXPECT_EQ(effect.zones_blocking_reads, 0u);
  EXPECT_EQ(effect.zones_blocking_writes, 4u);  // zones 0..3 hit every level
}

TEST(ZoneAvailabilityTest, InputValidation) {
  const ArbitraryProtocol protocol(four_by_four());
  Rng rng(1);
  ZoneAssignment bad = aligned_zones(protocol.tree());
  bad.zone_of.pop_back();
  EXPECT_THROW(zone_availability(protocol, bad, 0.9, 1.0, 10, rng),
               std::invalid_argument);
  EXPECT_THROW(zone_availability(protocol, aligned_zones(protocol.tree()),
                                 0.9, 1.0, 0, rng),
               std::invalid_argument);
}

TEST(ZoneAvailabilityTest, PerfectZonesReduceToIidModel) {
  // zone_p = 1 makes the model identical to i.i.d. replica failures, so
  // the Monte-Carlo must match the closed forms.
  const ArbitraryProtocol protocol(four_by_four());
  Rng rng(2);
  const auto measured = zone_availability(
      protocol, aligned_zones(protocol.tree()), 1.0, 0.8, 30000, rng);
  EXPECT_NEAR(measured.read, protocol.read_availability(0.8), 0.01);
  EXPECT_NEAR(measured.write, protocol.write_availability(0.8), 0.01);
}

TEST(ZoneAvailabilityTest, PlacementTradeOffUnderZoneOutages) {
  // With flaky zones (zone_p = 0.9) and reliable replicas, the aligned
  // placement dominates on writes and the striped one on reads.
  const ArbitraryProtocol protocol(four_by_four());
  Rng rng(3);
  const auto aligned = zone_availability(
      protocol, aligned_zones(protocol.tree()), 0.9, 1.0, 30000, rng);
  const auto striped = zone_availability(
      protocol, striped_zones(protocol.tree(), 4), 0.9, 1.0, 30000, rng);
  EXPECT_GT(striped.read, aligned.read + 0.2);
  EXPECT_GT(aligned.write, striped.write + 0.2);
}

}  // namespace
}  // namespace atrcp
