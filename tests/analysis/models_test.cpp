// Direct tests of the six §4 configuration models that feed Figures 2-4.
#include "analysis/models.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace atrcp {
namespace {

TEST(ModelsTest, RegistryHasThePaperOrder) {
  const auto configs = paper_configurations();
  ASSERT_EQ(configs.size(), 6u);
  EXPECT_EQ(configs[0].name, "BINARY");
  EXPECT_EQ(configs[1].name, "UNMODIFIED");
  EXPECT_EQ(configs[2].name, "ARBITRARY");
  EXPECT_EQ(configs[3].name, "HQC");
  EXPECT_EQ(configs[4].name, "MOSTLY-READ");
  EXPECT_EQ(configs[5].name, "MOSTLY-WRITE");
}

TEST(ModelsTest, RealizedNMatchesStructures) {
  EXPECT_EQ(binary_metrics(100, 0.9).n, 127u);      // 2^7 - 1
  EXPECT_EQ(unmodified_metrics(100, 0.9).n, 127u);
  EXPECT_EQ(hqc_metrics(100, 0.9).n, 243u);         // 3^5
  EXPECT_EQ(arbitrary_metrics(100, 0.9).n, 100u);   // exact
  EXPECT_EQ(mostly_read_metrics(100, 0.9).n, 100u);
  EXPECT_EQ(mostly_write_metrics(100, 0.9).n, 101u);  // rounded up to odd
}

TEST(ModelsTest, BinaryLoadFormula) {
  const ConfigMetrics m = binary_metrics(127, 0.8);
  EXPECT_NEAR(m.read_load, 2.0 / (6.0 + 2.0), 1e-12);
  EXPECT_DOUBLE_EQ(m.read_cost, m.write_cost);
}

TEST(ModelsTest, UnmodifiedFormulas) {
  const ConfigMetrics m = unmodified_metrics(127, 0.8);
  EXPECT_DOUBLE_EQ(m.read_load, 1.0);
  EXPECT_NEAR(m.write_load, 1.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.read_cost, 7.0);              // log2(128)
  EXPECT_NEAR(m.write_cost, 127.0 / 7.0, 1e-12);   // n / log2(n+1)
}

TEST(ModelsTest, ArbitraryFollowsAlgorithm1PastSixtyFour) {
  const ConfigMetrics m = arbitrary_metrics(400, 0.8);
  EXPECT_NEAR(m.write_load, 1.0 / 20.0, 1e-12);
  EXPECT_NEAR(m.read_cost, 20.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.read_load, 0.25);
}

TEST(ModelsTest, ArbitrarySmallNFallsBackToBalanced) {
  const ConfigMetrics m = arbitrary_metrics(16, 0.8);
  EXPECT_EQ(m.n, 16u);
  EXPECT_NEAR(m.read_cost, 4.0, 1e-12);  // sqrt(16) levels
}

TEST(ModelsTest, HqcFormulas) {
  const ConfigMetrics m = hqc_metrics(81, 0.8);
  EXPECT_EQ(m.n, 81u);
  EXPECT_DOUBLE_EQ(m.read_cost, 16.0);                    // 2^4
  EXPECT_NEAR(m.read_load, std::pow(2.0 / 3.0, 4), 1e-12);  // n^-0.37
}

TEST(ModelsTest, MostlyReadWriteAreDuals) {
  const ConfigMetrics mr = mostly_read_metrics(64, 0.8);
  EXPECT_DOUBLE_EQ(mr.read_cost, 1.0);
  EXPECT_DOUBLE_EQ(mr.write_cost, 64.0);
  EXPECT_DOUBLE_EQ(mr.write_load, 1.0);
  const ConfigMetrics mw = mostly_write_metrics(65, 0.8);
  EXPECT_DOUBLE_EQ(mw.read_cost, 32.0);  // (n-1)/2
  EXPECT_NEAR(mw.write_load, 2.0 / 64.0, 1e-12);
}

TEST(ModelsTest, ExpectedLoadsFollowEquation32) {
  for (const auto& config : paper_configurations()) {
    const ConfigMetrics m = config.at(70, 0.75);
    EXPECT_NEAR(m.expected_read_load,
                m.read_availability * (m.read_load - 1.0) + 1.0, 1e-12)
        << config.name;
    EXPECT_NEAR(m.expected_write_load,
                m.write_availability * m.write_load +
                    (1.0 - m.write_availability),
                1e-12)
        << config.name;
  }
}

TEST(ModelsTest, EveryModelIsSaneAcrossTheSweepRange) {
  for (const auto& config : paper_configurations()) {
    for (std::size_t n : {8u, 33u, 100u, 500u, 1000u}) {
      for (double p : {0.55, 0.8, 0.95}) {
        const ConfigMetrics m = config.at(n, p);
        EXPECT_GE(m.n, n / 2) << config.name;
        EXPECT_GE(m.read_cost, 1.0 - 1e-9) << config.name;
        EXPECT_LE(m.read_load, 1.0 + 1e-9) << config.name;
        EXPECT_GT(m.read_load, 0.0) << config.name;
        EXPECT_LE(m.write_load, 1.0 + 1e-9) << config.name;
        EXPECT_GE(m.read_availability, -1e-9) << config.name;
        EXPECT_LE(m.read_availability, 1.0 + 1e-9) << config.name;
        EXPECT_GE(m.expected_read_load, m.read_load - 1e-9) << config.name;
        EXPECT_GE(m.expected_write_load, m.write_load - 1e-9) << config.name;
      }
    }
  }
}

}  // namespace
}  // namespace atrcp
