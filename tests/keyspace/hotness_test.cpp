// HotnessTracker windows and the hot-key remap state machine.
#include <gtest/gtest.h>

#include <stdexcept>

#include "keyspace/hotness.hpp"

namespace atrcp {
namespace {

TEST(HotnessTracker, CountsAndTopOrdering) {
  HotnessTracker tracker;
  for (int i = 0; i < 5; ++i) tracker.record(7);
  for (int i = 0; i < 3; ++i) tracker.record(1);
  for (int i = 0; i < 3; ++i) tracker.record(9);
  tracker.record(2);
  EXPECT_EQ(tracker.count(7), 5u);
  EXPECT_EQ(tracker.count(42), 0u);
  EXPECT_EQ(tracker.window_total(), 12u);
  const auto top = tracker.top(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0], (std::pair<Key, std::uint64_t>{7, 5}));
  // Equal counts break ties by ascending key: 1 before 9.
  EXPECT_EQ(top[1], (std::pair<Key, std::uint64_t>{1, 3}));
  EXPECT_EQ(top[2], (std::pair<Key, std::uint64_t>{9, 3}));
}

TEST(HotnessTracker, RollStartsFreshWindowButKeepsLifetime) {
  HotnessTracker tracker;
  tracker.record(1);
  tracker.record(1);
  tracker.roll();
  EXPECT_EQ(tracker.count(1), 0u);
  EXPECT_EQ(tracker.window_total(), 0u);
  EXPECT_EQ(tracker.lifetime_total(), 2u);
  tracker.record(2);
  EXPECT_EQ(tracker.lifetime_total(), 3u);
  EXPECT_TRUE(tracker.top(5).size() == 1);
}

TEST(HotnessTracker, SketchModeServesTheSameApiWithBounds) {
  HotnessOptions options;
  options.mode = HotnessMode::kSketch;
  HotnessTracker tracker(options);
  EXPECT_EQ(tracker.mode(), HotnessMode::kSketch);
  ASSERT_NE(tracker.sketch(), nullptr);
  EXPECT_FALSE(tracker.has_oracle());

  for (int i = 0; i < 50; ++i) tracker.record(7);
  for (int i = 0; i < 20; ++i) tracker.record(1);
  tracker.record(2);
  EXPECT_EQ(tracker.window_total(), 71u);
  // One-sided guarantees, always.
  EXPECT_GE(tracker.count_upper(7), 50u);
  EXPECT_LE(tracker.count_lower(7), 50u);
  EXPECT_GT(tracker.count_lower(7), 0u);  // monitored: far above threshold
  const auto top = tracker.top(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, 7u);
  EXPECT_EQ(top[1].first, 1u);

  tracker.roll();
  EXPECT_EQ(tracker.window_total(), 0u);
  EXPECT_EQ(tracker.count_upper(7), 0u);
  EXPECT_EQ(tracker.lifetime_total(), 71u);
}

TEST(HotnessTracker, CrossCheckKeepsTheExactOracle) {
  HotnessOptions options;
  options.mode = HotnessMode::kSketch;
  options.cross_check = true;
  HotnessTracker tracker(options);
  EXPECT_TRUE(tracker.has_oracle());
  for (int i = 0; i < 9; ++i) tracker.record(4);
  for (int i = 0; i < 3; ++i) tracker.record(11);
  EXPECT_EQ(tracker.exact_count(4), 9u);
  EXPECT_EQ(tracker.exact_count(11), 3u);
  EXPECT_EQ(tracker.exact_count(12345), 0u);
  // The sketch bounds must bracket the oracle.
  EXPECT_GE(tracker.count_upper(4), tracker.exact_count(4));
  EXPECT_LE(tracker.count_lower(4), tracker.exact_count(4));
  const auto oracle_top = tracker.exact_top(2);
  ASSERT_EQ(oracle_top.size(), 2u);
  EXPECT_EQ(oracle_top[0], (std::pair<Key, std::uint64_t>{4, 9}));
  EXPECT_EQ(oracle_top[1], (std::pair<Key, std::uint64_t>{11, 3}));
}

TEST(HotnessTracker, ExactModeBoundsCollapseToTheCount) {
  HotnessTracker tracker;  // default: exact
  for (int i = 0; i < 6; ++i) tracker.record(3);
  EXPECT_EQ(tracker.mode(), HotnessMode::kExact);
  EXPECT_EQ(tracker.sketch(), nullptr);
  EXPECT_EQ(tracker.count(3), 6u);
  EXPECT_EQ(tracker.count_lower(3), 6u);
  EXPECT_EQ(tracker.count_upper(3), 6u);
  EXPECT_TRUE(tracker.has_oracle());
  EXPECT_EQ(tracker.exact_count(3), 6u);
}

TEST(HotKeyRemap, StateMachineWalk) {
  HotKeyRemapManager manager;
  EXPECT_EQ(manager.state(5), HotKeyState::kNormal);
  EXPECT_FALSE(manager.is_remapped(5));

  manager.promote(5, 2);
  EXPECT_EQ(manager.state(5), HotKeyState::kRemapped);
  EXPECT_TRUE(manager.is_remapped(5));
  EXPECT_EQ(manager.remapped_count(), 1u);

  manager.restore(5, 4);
  EXPECT_EQ(manager.state(5), HotKeyState::kRestored);
  EXPECT_FALSE(manager.is_remapped(5));
  EXPECT_EQ(manager.remapped_count(), 0u);

  // kRestored is re-promotable (the cycle in the state diagram).
  manager.promote(5, 6);
  EXPECT_EQ(manager.state(5), HotKeyState::kRemapped);
}

TEST(HotKeyRemap, IllegalTransitionsThrow) {
  HotKeyRemapManager manager;
  manager.promote(3, 0);
  EXPECT_THROW(manager.promote(3, 1), std::logic_error);  // no self-loop
  EXPECT_THROW(manager.restore(8, 1), std::logic_error);  // never promoted
  manager.restore(3, 1);
  EXPECT_THROW(manager.restore(3, 2), std::logic_error);  // already home
}

TEST(HotKeyRemap, KeySetsAndTransitionLog) {
  HotKeyRemapManager manager;
  manager.promote(9, 0);
  manager.promote(2, 0);
  manager.promote(5, 1);
  manager.restore(5, 2);
  EXPECT_EQ(manager.remapped_keys(), (std::vector<Key>{2, 9}));
  // ever_remapped_keys keeps restored keys — the checker's allow-list must
  // cover every key that EVER lived on the light shard.
  EXPECT_EQ(manager.ever_remapped_keys(), (std::vector<Key>{2, 5, 9}));

  ASSERT_EQ(manager.log().size(), 4u);
  EXPECT_EQ(manager.log()[0].to_string(), "k=9 normal->remapped@b0");
  EXPECT_EQ(manager.log()[3].to_string(), "k=5 remapped->restored@b2");
}

}  // namespace
}  // namespace atrcp
