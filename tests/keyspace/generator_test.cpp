// The YCSB-style workload generator: statistical agreement with the
// theoretical distributions, byte-pinned golden op streams per standard
// mix, and the per-client stream-independence property the --jobs
// determinism contract rides on.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "keyspace/generator.hpp"
#include "util/rng.hpp"

namespace atrcp {
namespace {

// -- statistics --------------------------------------------------------------

TEST(YcsbZipfian, EmpiricalFrequenciesMatchTheoreticalMass) {
  constexpr std::uint64_t kItems = 100;
  constexpr std::size_t kDraws = 200'000;
  const YcsbZipfian zipf(kItems, 0.99);
  Rng rng(17);
  std::vector<std::size_t> counts(kItems, 0);
  for (std::size_t i = 0; i < kDraws; ++i) {
    const std::uint64_t rank = zipf.next(rng);
    ASSERT_LT(rank, kItems);
    ++counts[rank];
  }
  // The head of the distribution carries enough samples for a tight
  // relative check; Gray et al.'s closed-form inverse is an approximation,
  // so allow 15% relative error on each of the top ranks.
  for (std::uint64_t rank = 0; rank < 8; ++rank) {
    const double expected = zipf.mass(rank) * kDraws;
    const double actual = static_cast<double>(counts[rank]);
    EXPECT_NEAR(actual / expected, 1.0, 0.15)
        << "rank " << rank << ": expected ~" << expected << ", got " << actual;
  }
  // Mass sums to 1 over the whole support.
  double total_mass = 0;
  for (std::uint64_t rank = 0; rank < kItems; ++rank) {
    total_mass += zipf.mass(rank);
  }
  EXPECT_NEAR(total_mass, 1.0, 1e-9);
  // Monotone head: rank 0 strictly dominates.
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[5]);
}

TEST(YcsbZipfian, GrowExtendsSupportConsistently) {
  YcsbZipfian zipf(10, 0.8);
  const double mass0_before = zipf.mass(0);
  zipf.grow(20);
  // More items dilute every existing rank's mass...
  EXPECT_LT(zipf.mass(0), mass0_before);
  // ...and the whole support still sums to 1.
  double total = 0;
  for (std::uint64_t rank = 0; rank < 20; ++rank) total += zipf.mass(rank);
  EXPECT_NEAR(total, 1.0, 1e-9);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(zipf.next(rng), 20u);
}

TEST(KeyspaceGenerator, UniformKeysAreRoughlyUniform) {
  KeyspaceWorkloadOptions options;
  options.mix = standard_mixes()[5];  // uniform_50_50
  ASSERT_EQ(options.mix.name, "uniform_50_50");
  options.records = 16;
  options.clients = 1;
  options.seed = 5;
  KeyspaceWorkloadGenerator generator(options);
  std::vector<std::size_t> counts(16, 0);
  constexpr std::size_t kDraws = 32'000;
  for (std::size_t i = 0; i < kDraws; ++i) ++counts[generator.next(0).key];
  const double expected = static_cast<double>(kDraws) / 16.0;
  for (std::size_t key = 0; key < 16; ++key) {
    EXPECT_NEAR(static_cast<double>(counts[key]) / expected, 1.0, 0.10)
        << "key " << key;
  }
}

TEST(KeyspaceGenerator, LatestDistributionFavorsNewestRecords) {
  KeyspaceWorkloadOptions options;
  options.mix = standard_mixes()[3];  // ycsb_d (latest)
  ASSERT_EQ(options.mix.name, "ycsb_d");
  options.records = 64;
  options.clients = 1;
  options.seed = 11;
  KeyspaceWorkloadGenerator generator(options);
  std::map<Key, std::size_t> reads;
  for (std::size_t i = 0; i < 20'000; ++i) {
    const KeyspaceOp op = generator.next(0);
    if (op.kind == KeyspaceOp::Kind::kRead) ++reads[op.key];
  }
  // Inserts keep moving the head of the recency order past the original
  // range, so compare the whole evolving "recent" region (the original top
  // eighth plus everything inserted) against the permanently-old bottom
  // eighth: latest must overwhelmingly favor recency.
  std::size_t newest = 0;
  std::size_t oldest = 0;
  for (const auto& [key, count] : reads) {
    if (key >= 56) newest += count;
    if (key < 8) oldest += count;
  }
  EXPECT_GT(newest, 10 * oldest);
}

TEST(KeyspaceGenerator, MixProportionsAreHonored) {
  KeyspaceWorkloadOptions options;
  options.mix = standard_mixes()[1];  // ycsb_b: 95% read, 5% update
  ASSERT_EQ(options.mix.name, "ycsb_b");
  options.records = 1024;
  options.clients = 1;
  options.seed = 23;
  KeyspaceWorkloadGenerator generator(options);
  std::size_t reads = 0;
  constexpr std::size_t kDraws = 20'000;
  for (std::size_t i = 0; i < kDraws; ++i) {
    if (generator.next(0).kind == KeyspaceOp::Kind::kRead) ++reads;
  }
  EXPECT_NEAR(static_cast<double>(reads) / kDraws, 0.95, 0.01);
}

// -- golden streams ----------------------------------------------------------

std::string stream8(const KeyspaceMix& mix) {
  KeyspaceWorkloadOptions options;
  options.mix = mix;
  options.records = 64;
  options.clients = 2;
  options.seed = 2026;
  KeyspaceWorkloadGenerator generator(options);
  std::string line;
  for (int i = 0; i < 8; ++i) {
    if (i) line += "; ";
    line += generator.next(0).to_string();
  }
  return line;
}

TEST(KeyspaceGenerator, GoldenStreamsPerStandardMix) {
  // Byte-pinned: any change to the rng expansion, the draw order, the
  // zipfian constants or the mix tables shows up as a diff here. Regenerate
  // deliberately if the encoding is INTENDED to change — that invalidates
  // recorded bench digests too.
  const std::vector<std::pair<std::string, std::string>> kGolden = {
      {"ycsb_a",
       "read k=7; update k=44; update k=10; update k=14; update k=23; "
       "update k=14; update k=42; read k=0"},
      {"ycsb_b",
       "read k=7; read k=44; read k=10; update k=14; read k=23; read k=14; "
       "read k=42; read k=0"},
      {"ycsb_c",
       "read k=7; read k=44; read k=10; read k=14; read k=23; read k=14; "
       "read k=42; read k=0"},
      {"ycsb_d",
       "read k=47; update k=35; read k=59; insert k=64; read k=52; "
       "read k=34; read k=46; insert k=65"},
      {"ycsb_e",
       "scan k=7 len=4; scan k=29 len=2; scan k=14 len=3; scan k=14 len=2; "
       "scan k=42 len=1; scan k=26 len=2; scan k=10 len=2; scan k=1 len=4"},
      {"uniform_50_50",
       "read k=46; update k=53; update k=29; update k=24; update k=35; "
       "update k=22; update k=63; read k=34"},
  };
  const std::vector<KeyspaceMix> mixes = standard_mixes();
  ASSERT_EQ(mixes.size(), kGolden.size());
  for (std::size_t i = 0; i < mixes.size(); ++i) {
    ASSERT_EQ(mixes[i].name, kGolden[i].first);
    EXPECT_EQ(stream8(mixes[i]), kGolden[i].second) << mixes[i].name;
  }
}

// -- determinism -------------------------------------------------------------

TEST(KeyspaceGenerator, ClientStreamsAreIndependent) {
  // Per-client rngs are forked up front from one SplitMix64 stream, so for
  // insert-free mixes client c's op sequence does not depend on how calls
  // to other clients interleave — the property that lets the bench shard
  // cells across --jobs workers without reordering any stream.
  KeyspaceWorkloadOptions options;
  options.mix = standard_mixes()[0];  // ycsb_a (insert-free)
  options.records = 128;
  options.clients = 3;
  options.seed = 77;

  KeyspaceWorkloadGenerator serial(options);
  std::vector<std::vector<std::string>> expected(options.clients);
  for (std::size_t c = 0; c < options.clients; ++c) {
    for (int i = 0; i < 32; ++i) {
      expected[c].push_back(serial.next(c).to_string());
    }
  }

  KeyspaceWorkloadGenerator interleaved(options);
  std::vector<std::vector<std::string>> actual(options.clients);
  for (int i = 0; i < 32; ++i) {
    // Reversed client order per round — a different global interleaving.
    for (std::size_t c = options.clients; c-- > 0;) {
      actual[c].push_back(interleaved.next(c).to_string());
    }
  }
  EXPECT_EQ(actual, expected);
}

TEST(KeyspaceGenerator, AddingClientsPreservesExistingStreams) {
  KeyspaceWorkloadOptions small;
  small.mix = standard_mixes()[0];
  small.records = 128;
  small.clients = 2;
  small.seed = 99;
  KeyspaceWorkloadOptions big = small;
  big.clients = 6;
  KeyspaceWorkloadGenerator a(small);
  KeyspaceWorkloadGenerator b(big);
  for (std::size_t c = 0; c < small.clients; ++c) {
    for (int i = 0; i < 16; ++i) {
      EXPECT_EQ(a.next(c).to_string(), b.next(c).to_string());
    }
  }
}

TEST(KeyspaceGenerator, InsertsAdvanceSharedRecordCount) {
  KeyspaceWorkloadOptions options;
  options.mix = standard_mixes()[3];  // ycsb_d has 5% inserts
  options.records = 64;
  options.clients = 1;
  options.seed = 1;
  KeyspaceWorkloadGenerator generator(options);
  std::uint64_t last_insert = 0;
  std::size_t inserts = 0;
  for (int i = 0; i < 2000; ++i) {
    const KeyspaceOp op = generator.next(0);
    if (op.kind != KeyspaceOp::Kind::kInsert) continue;
    if (inserts > 0) {
      EXPECT_EQ(op.key, last_insert + 1);  // dense allocation
    }
    last_insert = op.key;
    ++inserts;
  }
  EXPECT_GT(inserts, 50u);
  EXPECT_EQ(generator.record_count(), 64 + inserts);
}

// -- validation --------------------------------------------------------------

TEST(KeyspaceGenerator, RejectsInvalidOptions) {
  KeyspaceWorkloadOptions options;
  options.mix = standard_mixes()[0];
  options.records = 0;
  EXPECT_THROW(KeyspaceWorkloadGenerator{options}, std::invalid_argument);
  options.records = 16;
  options.clients = 0;
  EXPECT_THROW(KeyspaceWorkloadGenerator{options}, std::invalid_argument);
  options.clients = 1;
  options.mix.read_p = 0.7;  // proportions now sum to 1.2
  EXPECT_THROW(KeyspaceWorkloadGenerator{options}, std::invalid_argument);
  EXPECT_THROW(YcsbZipfian(0, 0.5), std::invalid_argument);
  EXPECT_THROW(YcsbZipfian(10, 1.0), std::invalid_argument);
  EXPECT_THROW(YcsbZipfian(10, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace atrcp
