// Key routing: the hash router's golden values + uniformity, and the
// deliberately broken cross-shard router the checker must catch.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "keyspace/shard_map.hpp"

namespace atrcp {
namespace {

TEST(HashShardRouter, GoldenPlacements) {
  // Pinned: shard placement feeds every bench digest and recorded history,
  // so a silent change to the hash or the reduction must fail loudly.
  EXPECT_EQ(HashShardRouter::shard_of(0, 4), 3u);
  EXPECT_EQ(HashShardRouter::shard_of(1, 4), 1u);
  EXPECT_EQ(HashShardRouter::shard_of(7, 4), 3u);
  EXPECT_EQ(HashShardRouter::shard_of(12345, 4), 0u);
  EXPECT_EQ(HashShardRouter::shard_of(999999999, 4), 2u);
}

TEST(HashShardRouter, RouteIsStableAndWriteAgnostic) {
  HashShardRouter router(8);
  EXPECT_EQ(router.shard_count(), 8u);
  for (Key key = 0; key < 100; ++key) {
    const ShardId read_shard = router.route(key, false);
    EXPECT_LT(read_shard, 8u);
    EXPECT_EQ(router.route(key, true), read_shard);
    EXPECT_EQ(router.route(key, false), read_shard);  // stateless
  }
}

TEST(HashShardRouter, SpreadsKeysRoughlyUniformly) {
  constexpr std::size_t kShards = 4;
  constexpr Key kKeys = 40'000;
  std::vector<std::size_t> counts(kShards, 0);
  for (Key key = 0; key < kKeys; ++key) {
    ++counts[HashShardRouter::shard_of(key, kShards)];
  }
  const double expected = static_cast<double>(kKeys) / kShards;
  for (std::size_t s = 0; s < kShards; ++s) {
    EXPECT_NEAR(static_cast<double>(counts[s]) / expected, 1.0, 0.05)
        << "shard " << s;
  }
}

TEST(HashShardRouter, RejectsZeroShards) {
  EXPECT_THROW(HashShardRouter{0}, std::invalid_argument);
}

TEST(BrokenCrossShardRouter, MisroutesAlternateWrites) {
  BrokenCrossShardRouter router(4);
  const Key key = 7;
  const ShardId home = HashShardRouter::shard_of(key, 4);
  // Reads always go home — the split is write-side only, which is exactly
  // what makes it a lost-update generator rather than instant unavailability.
  EXPECT_EQ(router.route(key, false), home);
  EXPECT_EQ(router.route(key, true), home);                    // 1st write
  EXPECT_EQ(router.route(key, true), (home + 1) % 4);          // 2nd write
  EXPECT_EQ(router.route(key, true), home);                    // 3rd write
  EXPECT_EQ(router.route(key, true), (home + 1) % 4);          // 4th write
  EXPECT_EQ(router.route(key, false), home);  // reads still unaffected
}

TEST(BrokenCrossShardRouter, PerKeyWriteCountersAreIndependent) {
  BrokenCrossShardRouter router(2);
  const ShardId home3 = HashShardRouter::shard_of(3, 2);
  const ShardId home4 = HashShardRouter::shard_of(4, 2);
  EXPECT_EQ(router.route(3, true), home3);
  EXPECT_EQ(router.route(4, true), home4);  // key 4's first write: still home
  EXPECT_EQ(router.route(3, true), (home3 + 1) % 2);
}

TEST(BrokenCrossShardRouter, RequiresAtLeastTwoShards) {
  EXPECT_THROW(BrokenCrossShardRouter{1}, std::invalid_argument);
}

}  // namespace
}  // namespace atrcp
