// ShardedKeyspace end to end: construction, routing, the hot-key remap
// transfer, the closed-loop multi-shard runner, and the key-aware checker
// pipeline — including the broken cross-shard router it must catch.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "core/config.hpp"
#include "keyspace/keyspace.hpp"
#include "keyspace/multi_history.hpp"
#include "keyspace/shard_map.hpp"
#include "protocols/majority.hpp"

namespace atrcp {
namespace {

KeyspaceOptions base_options(std::size_t shards, bool light) {
  KeyspaceOptions options;
  options.shards = shards;
  options.shard_protocol = [] { return std::make_unique<MajorityQuorum>(3); };
  if (light) {
    options.light_protocol = [] { return make_mostly_read(3); };
  }
  options.clients = 3;
  options.seed = 42;
  options.link = LinkParams{.base_latency = 10, .jitter = 3};
  options.record_history = true;
  return options;
}

TEST(ShardedKeyspace, ConstructionValidation) {
  KeyspaceOptions options = base_options(2, false);
  options.shards = 0;
  EXPECT_THROW(ShardedKeyspace{options}, std::invalid_argument);
  options = base_options(2, false);
  options.shard_protocol = nullptr;
  EXPECT_THROW(ShardedKeyspace{options}, std::invalid_argument);
  options = base_options(2, false);
  options.clients = 0;
  EXPECT_THROW(ShardedKeyspace{options}, std::invalid_argument);
  HashShardRouter mismatched(3);
  options = base_options(2, false);
  options.router = &mismatched;
  EXPECT_THROW(ShardedKeyspace{options}, std::invalid_argument);
}

TEST(ShardedKeyspace, TopologyAndRouting) {
  ShardedKeyspace keyspace(base_options(4, true));
  EXPECT_EQ(keyspace.shard_count(), 4u);
  ASSERT_TRUE(keyspace.has_light());
  EXPECT_EQ(keyspace.cluster_count(), 5u);
  EXPECT_EQ(keyspace.light_index(), 4u);
  for (Key key = 0; key < 32; ++key) {
    const std::size_t shard = keyspace.route(key, false);
    EXPECT_EQ(shard, HashShardRouter::shard_of(key, 4));
    EXPECT_EQ(keyspace.route(key, true), shard);
  }
  ShardedKeyspace no_light(base_options(2, false));
  EXPECT_FALSE(no_light.has_light());
  EXPECT_EQ(no_light.cluster_count(), 2u);
  EXPECT_THROW(no_light.promote_key(1, 0), std::logic_error);
}

TEST(ShardedKeyspace, PromoteTransfersValueAndDivertsRouting) {
  ShardedKeyspace keyspace(base_options(1, true));
  const Key key = 5;  // single home shard, so its home is cluster 0
  ASSERT_EQ(keyspace.cluster(0).write_sync(0, key, "v1"),
            TxnOutcome::kCommitted);

  keyspace.promote_key(key, 0);
  EXPECT_TRUE(keyspace.remap().is_remapped(key));
  EXPECT_EQ(keyspace.route(key, false), keyspace.light_index());
  EXPECT_EQ(keyspace.route(key, true), keyspace.light_index());

  // The transfer installed the home shard's latest committed value on the
  // light shard, so a light-shard quorum read sees v1 immediately.
  auto light_read = keyspace.cluster(keyspace.light_index()).read_sync(0, key);
  ASSERT_TRUE(light_read.has_value());
  EXPECT_EQ(light_read->value, "v1");

  // Write on the light shard, restore, and the home shard must see it.
  ASSERT_EQ(keyspace.cluster(keyspace.light_index()).write_sync(0, key, "v2"),
            TxnOutcome::kCommitted);
  keyspace.restore_key(key, 1);
  EXPECT_FALSE(keyspace.remap().is_remapped(key));
  EXPECT_EQ(keyspace.route(key, false), 0u);
  auto home_read = keyspace.cluster(0).read_sync(0, key);
  ASSERT_TRUE(home_read.has_value());
  EXPECT_EQ(home_read->value, "v2");

  EXPECT_THROW(keyspace.restore_key(key, 2), std::logic_error);
}

TEST(ShardedKeyspace, RunnerDrivesCleanWorkloadAcrossShards) {
  ShardedKeyspace keyspace(base_options(2, false));
  KeyspaceRunOptions run;
  run.mix = standard_mixes()[0];  // ycsb_a: reads + updates only
  run.records = 16;
  run.ops_per_client = 30;
  run.workload_seed = 7;
  const KeyspaceStats stats = run_keyspace_workload(keyspace, run);

  EXPECT_EQ(stats.issued, 3u * 30u);
  EXPECT_EQ(stats.txns, stats.issued);  // no scans => one txn per op
  EXPECT_EQ(stats.committed + stats.aborted + stats.blocked, stats.txns);
  EXPECT_GT(stats.committed, 0u);
  EXPECT_EQ(stats.latency_us.count(), stats.txns);
  std::uint64_t per_cluster_total = 0;
  for (const std::uint64_t count : stats.txns_per_cluster) {
    per_cluster_total += count;
  }
  EXPECT_EQ(per_cluster_total, stats.txns);
  EXPECT_TRUE(keyspace.all_idle());

  const KeyspaceCheckResult check =
      check_keyspace_histories(keyspace.histories(), {});
  EXPECT_TRUE(check.ok) << check.report;
  EXPECT_GT(check.lin_keys_checked, 0u);
}

TEST(ShardedKeyspace, ScansDecomposeIntoPerKeyTxns) {
  ShardedKeyspace keyspace(base_options(2, false));
  KeyspaceRunOptions run;
  run.mix = standard_mixes()[4];  // ycsb_e: 95% scans
  ASSERT_EQ(run.mix.name, "ycsb_e");
  run.records = 16;
  run.ops_per_client = 10;
  const KeyspaceStats stats = run_keyspace_workload(keyspace, run);
  EXPECT_EQ(stats.issued, 3u * 10u);
  EXPECT_GT(stats.txns, stats.issued);  // scans fan out into segments
  const KeyspaceCheckResult check =
      check_keyspace_histories(keyspace.histories(), {});
  EXPECT_TRUE(check.ok) << check.report;
}

TEST(ShardedKeyspace, HotKeyRemapLifecycleUnderSkew) {
  ShardedKeyspace keyspace(base_options(2, true));
  KeyspaceRunOptions run;
  run.mix = standard_mixes()[0];  // zipfian ycsb_a
  run.records = 8;                // tiny universe => extreme skew
  run.ops_per_client = 40;
  run.workload_seed = 3;
  run.batch_size = 10;
  run.promote_top_k = 2;
  run.promote_min_count = 3;
  run.restore_below = 1;
  run.max_remapped = 2;
  const KeyspaceStats stats = run_keyspace_workload(keyspace, run);

  EXPECT_GE(stats.batches, 4u);
  EXPECT_GT(stats.promoted, 0u);
  EXPECT_EQ(stats.promoted, keyspace.remap().log().size() - stats.restored);
  // Post-promotion traffic actually reached the light shard.
  EXPECT_GT(stats.txns_per_cluster[keyspace.light_index()], 0u);

  const KeyspaceCheckResult check = check_keyspace_histories(
      keyspace.histories(), keyspace.remap().ever_remapped_keys());
  EXPECT_TRUE(check.ok) << check.report;
}

TEST(ShardedKeyspace, BrokenRouterIsFlaggedWithMinimizedCounterexample) {
  KeyspaceOptions options = base_options(2, false);
  BrokenCrossShardRouter broken(2);
  options.router = &broken;
  ShardedKeyspace keyspace(options);

  KeyspaceRunOptions run;
  run.mix.name = "update_only";
  run.mix.distribution = KeyDistribution::kUniform;
  run.mix.read_p = 0.2;
  run.mix.update_p = 0.8;
  run.records = 4;  // every key written many times => guaranteed misroutes
  run.ops_per_client = 20;
  run_keyspace_workload(keyspace, run);

  const KeyspaceCheckResult check =
      check_keyspace_histories(keyspace.histories(), {});
  EXPECT_FALSE(check.ok);
  EXPECT_NE(check.report.find("routing violation"), std::string::npos)
      << check.report;
  // The counterexample is minimized: key + the first txn on each shard.
  EXPECT_NE(check.report.find("executed on shard"), std::string::npos);

  // The merge alone (no checker) pinpoints the same violation.
  const MergedKeyspaceHistory merged =
      merge_keyspace_histories(keyspace.histories(), {});
  EXPECT_FALSE(merged.routing_ok());
}

TEST(ShardedKeyspace, MergedIdsAreShardQualified) {
  ShardedKeyspace keyspace(base_options(2, false));
  KeyspaceRunOptions run;
  run.mix = standard_mixes()[0];
  run.records = 16;
  run.ops_per_client = 5;
  run_keyspace_workload(keyspace, run);
  const MergedKeyspaceHistory merged =
      merge_keyspace_histories(keyspace.histories(), {});
  ASSERT_FALSE(merged.txns.empty());
  for (const HistoryTxn& txn : merged.txns) {
    EXPECT_GE(txn.txn_id >> kShardIdShift, 1u);
    EXPECT_LE(txn.txn_id >> kShardIdShift, 2u);
  }
}

}  // namespace
}  // namespace atrcp
