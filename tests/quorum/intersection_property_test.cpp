// Randomized quorum-intersection property test across the full protocol
// zoo: for ANY failure state a protocol is willing to assemble quorums
// under, every read quorum must intersect every write quorum and every two
// write quorums must intersect (the bicoterie property, Definition 2.2).
// Seeded fuzz — 500 independent cases per protocol, each with its own
// random FailureSet — so a regression in any protocol's assembly path
// under partial failures is caught here, not in a minutes-long explorer
// sweep. BrokenIntersectionProtocol is the teeth test: the same harness
// must refute it almost immediately.
#include <gtest/gtest.h>

#include <memory>

#include "check/broken.hpp"
#include "check/explorer.hpp"
#include "protocols/protocol.hpp"
#include "quorum/types.hpp"
#include "util/rng.hpp"

namespace atrcp {
namespace {

constexpr std::size_t kCasesPerProtocol = 500;

/// Random failure state: each replica fails independently with probability
/// `p` drawn per case from {0, 0.1, 0.2, 0.3} — a spread from healthy to
/// degraded-but-mostly-available universes.
FailureSet random_failures(Rng& rng, std::size_t universe) {
  FailureSet failures(universe);
  const double p = 0.1 * static_cast<double>(rng.below(4));
  for (std::size_t r = 0; r < universe; ++r) {
    if (rng.chance(p)) failures.fail(static_cast<ReplicaId>(r));
  }
  return failures;
}

/// Runs the fuzz harness; returns the number of cases where a read quorum
/// and a write quorum both existed but failed to intersect, plus (via the
/// out-params) how often each intersection check was exercised.
struct FuzzResult {
  std::size_t read_write_checked = 0;
  std::size_t read_write_violations = 0;
  std::size_t write_write_checked = 0;
  std::size_t write_write_violations = 0;
  std::size_t alive_member_violations = 0;
};

FuzzResult fuzz_protocol(const ReplicaControlProtocol& protocol,
                         std::uint64_t seed) {
  FuzzResult result;
  Rng rng(seed);
  for (std::size_t i = 0; i < kCasesPerProtocol; ++i) {
    const FailureSet failures = random_failures(rng, protocol.universe_size());
    const auto read = protocol.assemble_read_quorum(failures, rng);
    const auto write_a = protocol.assemble_write_quorum(failures, rng);
    const auto write_b = protocol.assemble_write_quorum(failures, rng);
    for (const auto& quorum : {read, write_a, write_b}) {
      if (!quorum) continue;
      for (const ReplicaId member : quorum->members()) {
        if (failures.is_failed(member)) ++result.alive_member_violations;
      }
    }
    if (read && write_a) {
      ++result.read_write_checked;
      if (!read->intersects(*write_a)) ++result.read_write_violations;
    }
    if (write_a && write_b) {
      ++result.write_write_checked;
      if (!write_a->intersects(*write_b)) ++result.write_write_violations;
    }
  }
  return result;
}

TEST(IntersectionProperty, EveryZooProtocolHoldsUnderRandomFailures) {
  for (const ZooEntry& entry : protocol_zoo()) {
    SCOPED_TRACE("protocol=" + entry.label);
    const auto protocol = entry.factory();
    // Seed derived from the label so each protocol explores its own stream
    // and a zoo reordering never changes what any protocol sees.
    std::uint64_t seed = 0xA7C4;
    for (const char c : entry.label) seed = seed * 131 + static_cast<unsigned char>(c);
    const FuzzResult result = fuzz_protocol(*protocol, seed);
    EXPECT_EQ(result.read_write_violations, 0u);
    // Write-write intersection is a coterie property, NOT a property of
    // the paper's arbitrary-tree family: its physical write quorums are
    // deliberately DISJOINT (that is exactly how write load reaches
    // 1/|K_phy|, Fact 3.2.4), and one-copy behaviour is restored by the
    // version number each write first obtains through a read quorum
    // (§3.2). Every classic baseline in the zoo must still hold it.
    const std::string name = protocol->name();
    const bool arbitrary_family =
        name == "ARBITRARY" || name == "MOSTLY-READ" ||
        name == "MOSTLY-WRITE" || name == "UNMODIFIED";
    if (!arbitrary_family) {
      EXPECT_EQ(result.write_write_violations, 0u);
      EXPECT_GT(result.write_write_checked, kCasesPerProtocol / 2);
    }
    EXPECT_EQ(result.alive_member_violations, 0u)
        << "assembled quorum contained a failed replica";
    // The harness has to have actually exercised the property: under the
    // mild failure rates above every protocol can assemble most of the
    // time.
    EXPECT_GT(result.read_write_checked, kCasesPerProtocol / 2);
  }
}

TEST(IntersectionProperty, FlagsBrokenIntersectionProtocol) {
  const BrokenIntersectionProtocol broken(6);
  const FuzzResult result = fuzz_protocol(broken, 7);
  // Disjoint singleton halves: EVERY read/write pair that assembled must
  // have failed to intersect.
  EXPECT_GT(result.read_write_checked, 0u);
  EXPECT_EQ(result.read_write_violations, result.read_write_checked);
}

TEST(IntersectionProperty, DeterministicUnderSeed) {
  const auto protocol = protocol_zoo().front().factory();
  const FuzzResult a = fuzz_protocol(*protocol, 99);
  const FuzzResult b = fuzz_protocol(*protocol, 99);
  EXPECT_EQ(a.read_write_checked, b.read_write_checked);
  EXPECT_EQ(a.write_write_checked, b.write_write_checked);
}

}  // namespace
}  // namespace atrcp
