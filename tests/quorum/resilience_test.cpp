#include "quorum/resilience.hpp"

#include <gtest/gtest.h>

#include "core/config.hpp"
#include "core/quorums.hpp"
#include "protocols/majority.hpp"
#include "protocols/rowa.hpp"
#include "protocols/tree_quorum.hpp"
#include "quorum/availability.hpp"
#include "util/rng.hpp"

namespace atrcp {
namespace {

TEST(ResilienceTest, InputValidation) {
  EXPECT_THROW(resilience(SetSystem(3, {})), std::invalid_argument);
  EXPECT_THROW(resilience(SetSystem(3, {Quorum{}})), std::invalid_argument);
}

TEST(ResilienceTest, SingleQuorum) {
  // One quorum {0,1,2}: killing any single member kills it. Resilience 0.
  EXPECT_EQ(min_transversal_size(SetSystem(3, {Quorum{0, 1, 2}})), 1u);
  EXPECT_EQ(resilience(SetSystem(3, {Quorum{0, 1, 2}})), 0u);
}

TEST(ResilienceTest, RowaReads) {
  // Singleton quorums {0}..{4}: must kill everyone. Resilience n-1.
  const Rowa rowa(5);
  const SetSystem reads(5, rowa.enumerate_read_quorums(100));
  EXPECT_EQ(min_transversal_size(reads), 5u);
  EXPECT_EQ(resilience(reads), 4u);
  const SetSystem writes(5, rowa.enumerate_write_quorums(100));
  EXPECT_EQ(resilience(writes), 0u);  // ROWA writes die with one crash
}

TEST(ResilienceTest, MajorityIsFloorHalf) {
  for (std::size_t n : {3u, 5u, 7u}) {
    const MajorityQuorum m(n);
    const SetSystem system(n, m.enumerate_read_quorums(1000));
    // Kill n - q + 1 replicas and no majority remains; fewer always leaves
    // one. resilience = n - q = floor((n-1)/2).
    EXPECT_EQ(resilience(system), (n - 1) / 2) << "n=" << n;
  }
}

TEST(ResilienceTest, ArbitraryReadsAreDMinusOne) {
  // Killing the smallest physical level kills every read quorum.
  const ArbitraryProtocol protocol(ArbitraryTree::from_spec("1-3-5"));
  const SetSystem reads(8, protocol.enumerate_read_quorums(100));
  EXPECT_EQ(min_transversal_size(reads), 3u);  // d = 3
  EXPECT_EQ(resilience(reads), 2u);            // d - 1
  // And the transversal found is exactly one whole level.
  const auto transversal = min_transversal(reads);
  EXPECT_EQ(Quorum(transversal), Quorum({0, 1, 2}));
}

TEST(ResilienceTest, ArbitraryWritesAreLevelsMinusOne) {
  // Hitting every write quorum needs one replica per level.
  const ArbitraryProtocol protocol(ArbitraryTree::from_spec("1-3-5"));
  const SetSystem writes(8, protocol.enumerate_write_quorums(100));
  EXPECT_EQ(min_transversal_size(writes), 2u);  // |K_phy|
  EXPECT_EQ(resilience(writes), 1u);
}

TEST(ResilienceTest, FourLevelTree) {
  const ArbitraryProtocol protocol(
      ArbitraryProtocol(balanced_tree(12, 4)));
  const SetSystem reads(12, protocol.enumerate_read_quorums(1000));
  const SetSystem writes(12, protocol.enumerate_write_quorums(10));
  EXPECT_EQ(resilience(reads), 2u);   // d - 1 = 3 - 1
  EXPECT_EQ(resilience(writes), 3u);  // |K_phy| - 1 = 4 - 1
}

TEST(ResilienceTest, BinaryTreeTransversalIsARootLeafPath) {
  // A neat structural fact (brute-force verified for h = 2 and 3): the
  // minimum transversal of the Agrawal–El Abbadi quorum system is a
  // root-to-leaf PATH — every quorum, including all failure replacements,
  // crosses any fixed path. So resilience is h, far below majority,
  // despite the protocol's high availability against RANDOM failures:
  // h+1 targeted crashes suffice to halt it.
  for (std::uint32_t h : {2u, 3u}) {
    const TreeQuorum t(h);
    const SetSystem system(t.universe_size(),
                           t.enumerate_read_quorums(100000));
    EXPECT_EQ(min_transversal_size(system), h + 1) << "h=" << h;
    // And one minimum transversal is literally a path: check the found set
    // is chained by the parent relation (sorted heap ids: each member's
    // parent is also a member, up to the root).
    const auto transversal = min_transversal(system);
    const Quorum path(transversal);
    EXPECT_TRUE(path.contains(0)) << "h=" << h;  // the root is on it
    for (ReplicaId id : path.members()) {
      if (id == 0) continue;
      EXPECT_TRUE(path.contains((id - 1) / 2))
          << "h=" << h << " member " << id << " lacks its parent";
    }
  }
}

TEST(ResilienceTest, MatchesBruteForceOnRandomSystems) {
  Rng rng(42);
  for (int round = 0; round < 30; ++round) {
    // Random small system: 6 replicas, 3-6 quorums of size 1-4.
    const std::size_t n = 6;
    std::vector<Quorum> sets;
    const std::size_t set_count = 3 + rng.below(4);
    for (std::size_t j = 0; j < set_count; ++j) {
      std::vector<ReplicaId> members;
      const std::size_t size = 1 + rng.below(4);
      while (members.size() < size) {
        members.push_back(static_cast<ReplicaId>(rng.below(n)));
        std::sort(members.begin(), members.end());
        members.erase(std::unique(members.begin(), members.end()),
                      members.end());
      }
      sets.emplace_back(members);
    }
    const SetSystem system(n, sets);
    const std::size_t solver = min_transversal_size(system);

    // Brute force over all 2^6 crash subsets.
    std::size_t brute = n;
    for (std::uint32_t mask = 0; mask < (1u << n); ++mask) {
      bool hits_all = true;
      for (const Quorum& q : system.sets()) {
        bool hit = false;
        for (ReplicaId id : q.members()) {
          if (mask & (1u << id)) hit = true;
        }
        if (!hit) {
          hits_all = false;
          break;
        }
      }
      if (hits_all) {
        brute = std::min(
            brute, static_cast<std::size_t>(std::popcount(mask)));
      }
    }
    EXPECT_EQ(solver, brute) << "round " << round;
  }
}

TEST(ResilienceTest, ResilienceMatchesAvailabilityCliff) {
  // Crashing any f <= resilience replicas leaves a quorum: verify by
  // exhaustively crashing every subset of size resilience.
  const ArbitraryProtocol protocol(ArbitraryTree::from_spec("1-3-4"));
  const SetSystem reads(7, protocol.enumerate_read_quorums(100));
  const std::size_t f = resilience(reads);
  for (std::uint32_t mask = 0; mask < (1u << 7); ++mask) {
    if (static_cast<std::size_t>(std::popcount(mask)) != f) continue;
    bool some_quorum_alive = false;
    for (const Quorum& q : reads.sets()) {
      bool alive = true;
      for (ReplicaId id : q.members()) {
        if (mask & (1u << id)) alive = false;
      }
      if (alive) some_quorum_alive = true;
    }
    EXPECT_TRUE(some_quorum_alive) << "mask " << mask;
  }
}

}  // namespace
}  // namespace atrcp
