#include "quorum/strategy.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/math.hpp"

namespace atrcp {
namespace {

TEST(StrategyTest, NormalizesWeights) {
  const Strategy s({2.0, 6.0});
  EXPECT_NEAR(s.weights()[0], 0.25, 1e-12);
  EXPECT_NEAR(s.weights()[1], 0.75, 1e-12);
}

TEST(StrategyTest, UniformWeights) {
  const Strategy s = Strategy::uniform(4);
  for (double w : s.weights()) EXPECT_NEAR(w, 0.25, 1e-12);
}

TEST(StrategyTest, RejectsInvalidWeights) {
  EXPECT_THROW(Strategy({}), std::invalid_argument);
  EXPECT_THROW(Strategy({1.0, -0.5}), std::invalid_argument);
  EXPECT_THROW(Strategy({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(Strategy::uniform(0), std::invalid_argument);
}

TEST(StrategyTest, SampleMatchesDistribution) {
  const Strategy s({0.1, 0.0, 0.9});
  Rng rng(5);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 20000; ++i) ++counts[s.sample(rng)];
  EXPECT_NEAR(counts[0] / 20000.0, 0.1, 0.01);
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / 20000.0, 0.9, 0.01);
}

TEST(InducedLoadsTest, Definition25) {
  // Universe {0,1,2}; sets {0,1} and {1,2}, weights 0.25/0.75.
  const SetSystem system(3, {Quorum{0, 1}, Quorum{1, 2}});
  const Strategy strategy({0.25, 0.75});
  const auto loads = induced_loads(system, strategy);
  ASSERT_EQ(loads.size(), 3u);
  EXPECT_NEAR(loads[0], 0.25, 1e-12);
  EXPECT_NEAR(loads[1], 1.0, 1e-12);
  EXPECT_NEAR(loads[2], 0.75, 1e-12);
  EXPECT_NEAR(strategy_load(system, strategy), 1.0, 1e-12);
}

TEST(InducedLoadsTest, SizeMismatchThrows) {
  const SetSystem system(2, {Quorum{0}});
  EXPECT_THROW(induced_loads(system, Strategy::uniform(2)),
               std::invalid_argument);
}

TEST(InducedLoadsTest, UniformMajorityLoadIsQOverN) {
  // All C(4,3) majorities of 4 replicas, uniform strategy: load 3/4 each.
  std::vector<Quorum> sets;
  for (ReplicaId skip = 0; skip < 4; ++skip) {
    std::vector<ReplicaId> members;
    for (ReplicaId id = 0; id < 4; ++id) {
      if (id != skip) members.push_back(id);
    }
    sets.emplace_back(members);
  }
  const SetSystem system(4, sets);
  const auto loads = induced_loads(system, Strategy::uniform(4));
  for (double l : loads) EXPECT_NEAR(l, 0.75, 1e-12);
}

TEST(CertifyTest, AcceptsValidWitness) {
  // Majority-of-3: y = (1/3,1/3,1/3) certifies load 2/3.
  const SetSystem system(3, {Quorum{0, 1}, Quorum{0, 2}, Quorum{1, 2}});
  const std::vector<double> y(3, 1.0 / 3.0);
  EXPECT_TRUE(certifies_lower_bound(system, y, 2.0 / 3.0));
}

TEST(CertifyTest, RejectsTooStrongClaim) {
  const SetSystem system(3, {Quorum{0, 1}, Quorum{0, 2}, Quorum{1, 2}});
  const std::vector<double> y(3, 1.0 / 3.0);
  EXPECT_FALSE(certifies_lower_bound(system, y, 0.9));
}

TEST(CertifyTest, RejectsNonDistribution) {
  const SetSystem system(2, {Quorum{0, 1}});
  EXPECT_FALSE(certifies_lower_bound(system, {0.7, 0.7}, 1.0));  // sums to 1.4
  EXPECT_FALSE(certifies_lower_bound(system, {0.5}, 0.5));       // wrong size
}

TEST(EmpiricalLoadsTest, ConvergesToInduced) {
  const SetSystem system(3, {Quorum{0, 1}, Quorum{1, 2}});
  const Strategy strategy({0.3, 0.7});
  Rng rng(99);
  const auto measured = empirical_loads(system, strategy, 200000, rng);
  const auto exact = induced_loads(system, strategy);
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_NEAR(measured[i], exact[i], 0.01) << "replica " << i;
  }
}

}  // namespace
}  // namespace atrcp
