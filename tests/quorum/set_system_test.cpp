#include "quorum/set_system.hpp"

#include <gtest/gtest.h>

namespace atrcp {
namespace {

TEST(SetSystemTest, RejectsOutOfUniverseMembers) {
  EXPECT_THROW(SetSystem(3, {Quorum{0, 3}}), std::invalid_argument);
  EXPECT_NO_THROW(SetSystem(4, {Quorum{0, 3}}));
}

TEST(SetSystemTest, QuorumSystemRequiresPairwiseIntersection) {
  const SetSystem majority3(3, {Quorum{0, 1}, Quorum{0, 2}, Quorum{1, 2}});
  EXPECT_TRUE(majority3.is_quorum_system());

  const SetSystem disjoint(4, {Quorum{0, 1}, Quorum{2, 3}});
  EXPECT_FALSE(disjoint.is_quorum_system());
}

TEST(SetSystemTest, EmptySetBreaksQuorumSystem) {
  const SetSystem with_empty(3, {Quorum{0, 1}, Quorum{}});
  EXPECT_FALSE(with_empty.is_quorum_system());
}

TEST(SetSystemTest, CoterieRequiresMinimality) {
  // {0,1} ⊂ {0,1,2} violates minimality.
  const SetSystem non_minimal(3, {Quorum{0, 1}, Quorum{0, 1, 2}});
  EXPECT_TRUE(non_minimal.is_quorum_system());
  EXPECT_FALSE(non_minimal.is_coterie());

  const SetSystem majority3(3, {Quorum{0, 1}, Quorum{0, 2}, Quorum{1, 2}});
  EXPECT_TRUE(majority3.is_coterie());
}

TEST(SetSystemTest, DuplicateSetsAreNotACoterie) {
  const SetSystem dup(2, {Quorum{0, 1}, Quorum{0, 1}});
  EXPECT_FALSE(dup.is_coterie());
}

TEST(SetSystemTest, MinMaxSetSize) {
  const SetSystem s(5, {Quorum{0}, Quorum{0, 1, 2}, Quorum{0, 4}});
  EXPECT_EQ(s.min_set_size(), 1u);
  EXPECT_EQ(s.max_set_size(), 3u);
}

TEST(SetSystemTest, MinSizeOfEmptySystemThrows) {
  const SetSystem s(3, {});
  EXPECT_THROW(s.min_set_size(), std::logic_error);
}

TEST(BicoterieTest, SingletonReadsIntersectFullWrite) {
  // ROWA-shaped: reads {i}, write {0..2}.
  Bicoterie b(3, {Quorum{0}, Quorum{1}, Quorum{2}}, {Quorum{0, 1, 2}});
  EXPECT_TRUE(b.intersection_holds());
}

TEST(BicoterieTest, DetectsMissedIntersection) {
  Bicoterie b(4, {Quorum{0}, Quorum{1}}, {Quorum{0, 2}});
  EXPECT_FALSE(b.intersection_holds());  // {1} ∩ {0,2} = ∅
}

TEST(BicoterieTest, PaperExampleTree135) {
  // The 1-3-5 tree of §3.4: replicas 0..2 on level 1, 3..7 on level 2.
  // Read quorums: one of {0,1,2} x one of {3..7}; writes: both levels.
  std::vector<Quorum> reads;
  for (ReplicaId a = 0; a < 3; ++a) {
    for (ReplicaId b = 3; b < 8; ++b) reads.push_back(Quorum{a, b});
  }
  const std::vector<Quorum> writes = {Quorum{0, 1, 2}, Quorum{3, 4, 5, 6, 7}};
  Bicoterie b(8, reads, writes);
  EXPECT_EQ(b.reads().set_count(), 15u);  // m(R) = 3*5
  EXPECT_EQ(b.writes().set_count(), 2u);  // m(W) = 2
  EXPECT_TRUE(b.intersection_holds());
}

}  // namespace
}  // namespace atrcp
