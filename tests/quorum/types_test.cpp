#include "quorum/types.hpp"

#include <gtest/gtest.h>

namespace atrcp {
namespace {

TEST(QuorumTest, SortsAndDeduplicates) {
  const Quorum q({3, 1, 2, 1, 3});
  ASSERT_EQ(q.size(), 3u);
  EXPECT_EQ(q.members()[0], 1u);
  EXPECT_EQ(q.members()[1], 2u);
  EXPECT_EQ(q.members()[2], 3u);
}

TEST(QuorumTest, Contains) {
  const Quorum q{1, 5, 9};
  EXPECT_TRUE(q.contains(1));
  EXPECT_TRUE(q.contains(9));
  EXPECT_FALSE(q.contains(2));
  EXPECT_FALSE(q.contains(0));
}

TEST(QuorumTest, EmptyQuorum) {
  const Quorum q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_FALSE(q.contains(0));
  EXPECT_FALSE(q.intersects(Quorum{1, 2}));
}

TEST(QuorumTest, Intersects) {
  EXPECT_TRUE(Quorum({1, 2, 3}).intersects(Quorum{3, 4}));
  EXPECT_TRUE(Quorum({7}).intersects(Quorum{7}));
  EXPECT_FALSE(Quorum({1, 3, 5}).intersects(Quorum{0, 2, 4}));
}

TEST(QuorumTest, SubsetOf) {
  EXPECT_TRUE(Quorum({1, 2}).subset_of(Quorum{1, 2, 3}));
  EXPECT_TRUE(Quorum({1, 2}).subset_of(Quorum{1, 2}));
  EXPECT_TRUE(Quorum{}.subset_of(Quorum{1}));
  EXPECT_FALSE(Quorum({1, 4}).subset_of(Quorum{1, 2, 3}));
}

TEST(QuorumTest, EqualityAndOrdering) {
  EXPECT_EQ(Quorum({2, 1}), Quorum({1, 2}));
  EXPECT_NE(Quorum({1}), Quorum({2}));
}

TEST(QuorumTest, ToString) {
  EXPECT_EQ(Quorum({2, 0, 7}).to_string(), "{0, 2, 7}");
  EXPECT_EQ(Quorum{}.to_string(), "{}");
}

TEST(FailureSetTest, StartsAllAlive) {
  const FailureSet failures(5);
  for (ReplicaId id = 0; id < 5; ++id) {
    EXPECT_TRUE(failures.is_alive(id));
    EXPECT_FALSE(failures.is_failed(id));
  }
  EXPECT_EQ(failures.failed_count(), 0u);
  EXPECT_EQ(failures.alive_count(), 5u);
}

TEST(FailureSetTest, FailAndRecover) {
  FailureSet failures(4);
  failures.fail(2);
  EXPECT_TRUE(failures.is_failed(2));
  EXPECT_EQ(failures.failed_count(), 1u);
  failures.recover(2);
  EXPECT_TRUE(failures.is_alive(2));
  EXPECT_EQ(failures.failed_count(), 0u);
}

TEST(FailureSetTest, OutOfRangeIdsAreAlive) {
  const FailureSet failures(3);
  EXPECT_TRUE(failures.is_alive(99));
}

TEST(FailureSetTest, FailGrowsUniverse) {
  FailureSet failures;
  failures.fail(7);
  EXPECT_TRUE(failures.is_failed(7));
  EXPECT_EQ(failures.universe_size(), 8u);
}

TEST(FailureSetTest, AllAlive) {
  FailureSet failures(6);
  const Quorum q{1, 3, 5};
  EXPECT_TRUE(failures.all_alive(q));
  failures.fail(3);
  EXPECT_FALSE(failures.all_alive(q));
  failures.recover(3);
  failures.fail(0);  // not a member
  EXPECT_TRUE(failures.all_alive(q));
}

}  // namespace
}  // namespace atrcp
