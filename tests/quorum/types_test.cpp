#include "quorum/types.hpp"

#include <gtest/gtest.h>

namespace atrcp {
namespace {

TEST(QuorumTest, SortsAndDeduplicates) {
  const Quorum q({3, 1, 2, 1, 3});
  ASSERT_EQ(q.size(), 3u);
  EXPECT_EQ(q.members()[0], 1u);
  EXPECT_EQ(q.members()[1], 2u);
  EXPECT_EQ(q.members()[2], 3u);
}

TEST(QuorumTest, Contains) {
  const Quorum q{1, 5, 9};
  EXPECT_TRUE(q.contains(1));
  EXPECT_TRUE(q.contains(9));
  EXPECT_FALSE(q.contains(2));
  EXPECT_FALSE(q.contains(0));
}

TEST(QuorumTest, EmptyQuorum) {
  const Quorum q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_FALSE(q.contains(0));
  EXPECT_FALSE(q.intersects(Quorum{1, 2}));
}

TEST(QuorumTest, Intersects) {
  EXPECT_TRUE(Quorum({1, 2, 3}).intersects(Quorum{3, 4}));
  EXPECT_TRUE(Quorum({7}).intersects(Quorum{7}));
  EXPECT_FALSE(Quorum({1, 3, 5}).intersects(Quorum{0, 2, 4}));
}

TEST(QuorumTest, SubsetOf) {
  EXPECT_TRUE(Quorum({1, 2}).subset_of(Quorum{1, 2, 3}));
  EXPECT_TRUE(Quorum({1, 2}).subset_of(Quorum{1, 2}));
  EXPECT_TRUE(Quorum{}.subset_of(Quorum{1}));
  EXPECT_FALSE(Quorum({1, 4}).subset_of(Quorum{1, 2, 3}));
}

TEST(QuorumTest, EqualityAndOrdering) {
  EXPECT_EQ(Quorum({2, 1}), Quorum({1, 2}));
  EXPECT_NE(Quorum({1}), Quorum({2}));
}

TEST(QuorumTest, ToString) {
  EXPECT_EQ(Quorum({2, 0, 7}).to_string(), "{0, 2, 7}");
  EXPECT_EQ(Quorum{}.to_string(), "{}");
}

TEST(QuorumTest, FromSortedMatchesSortingConstructor) {
  const std::vector<ReplicaId> members{0, 2, 5, 9};
  const Quorum trusted = Quorum::from_sorted(members);
  const Quorum checked(members);
  EXPECT_EQ(trusted, checked);
  EXPECT_EQ(trusted.to_string(), "{0, 2, 5, 9}");
  EXPECT_TRUE(Quorum::from_sorted({}).empty());
}

#ifndef NDEBUG
TEST(QuorumDeathTest, FromSortedAssertsOnUnsortedInput) {
  EXPECT_DEATH(Quorum::from_sorted({3, 1}), "sorted");
  EXPECT_DEATH(Quorum::from_sorted({1, 1, 2}), "duplicate");
}
#endif

TEST(FailureSetTest, StartsAllAlive) {
  const FailureSet failures(5);
  for (ReplicaId id = 0; id < 5; ++id) {
    EXPECT_TRUE(failures.is_alive(id));
    EXPECT_FALSE(failures.is_failed(id));
  }
  EXPECT_EQ(failures.failed_count(), 0u);
  EXPECT_EQ(failures.alive_count(), 5u);
}

TEST(FailureSetTest, FailAndRecover) {
  FailureSet failures(4);
  failures.fail(2);
  EXPECT_TRUE(failures.is_failed(2));
  EXPECT_EQ(failures.failed_count(), 1u);
  failures.recover(2);
  EXPECT_TRUE(failures.is_alive(2));
  EXPECT_EQ(failures.failed_count(), 0u);
}

TEST(FailureSetTest, OutOfRangeIdsAreAlive) {
  const FailureSet failures(3);
  EXPECT_TRUE(failures.is_alive(99));
}

TEST(FailureSetTest, FailGrowsUniverse) {
  FailureSet failures;
  failures.fail(7);
  EXPECT_TRUE(failures.is_failed(7));
  EXPECT_EQ(failures.universe_size(), 8u);
}

TEST(FailureSetTest, AllAlive) {
  FailureSet failures(6);
  const Quorum q{1, 3, 5};
  EXPECT_TRUE(failures.all_alive(q));
  failures.fail(3);
  EXPECT_FALSE(failures.all_alive(q));
  failures.recover(3);
  failures.fail(0);  // not a member
  EXPECT_TRUE(failures.all_alive(q));
}

TEST(FailureSetTest, FailedCountIsRunningAndIdempotent) {
  FailureSet failures(10);
  failures.fail(3);
  failures.fail(3);  // repeated fail must not double-count
  EXPECT_EQ(failures.failed_count(), 1u);
  failures.fail(7);
  EXPECT_EQ(failures.failed_count(), 2u);
  EXPECT_EQ(failures.alive_count(), 8u);
  failures.recover(5);  // recovering an alive replica is a no-op
  EXPECT_EQ(failures.failed_count(), 2u);
  failures.recover(3);
  failures.recover(3);
  EXPECT_EQ(failures.failed_count(), 1u);
  failures.recover(7);
  EXPECT_EQ(failures.failed_count(), 0u);
}

TEST(FailureSetTest, FailedCountSurvivesGrowth) {
  FailureSet failures(4);
  failures.fail(1);
  failures.fail(100);  // grows the universe past the original size
  EXPECT_EQ(failures.universe_size(), 101u);
  EXPECT_EQ(failures.failed_count(), 2u);
  EXPECT_TRUE(failures.is_failed(1));
  EXPECT_TRUE(failures.is_failed(100));
}

TEST(FailureSetTest, LargeUniverseSpillsToHeapCorrectly) {
  // Past kInlineBits the bitmap moves to heap storage; semantics must not
  // change across the boundary.
  FailureSet failures(FailureSet::kInlineBits + 64);
  failures.fail(0);
  failures.fail(static_cast<ReplicaId>(FailureSet::kInlineBits));
  failures.fail(static_cast<ReplicaId>(FailureSet::kInlineBits + 63));
  EXPECT_EQ(failures.failed_count(), 3u);
  EXPECT_TRUE(failures.is_failed(0));
  EXPECT_TRUE(
      failures.is_failed(static_cast<ReplicaId>(FailureSet::kInlineBits)));
  failures.recover(static_cast<ReplicaId>(FailureSet::kInlineBits));
  EXPECT_EQ(failures.failed_count(), 2u);
}

TEST(FailureSetTest, EpochChangesOnlyOnActualMutation) {
  FailureSet failures(8);
  const std::uint64_t initial = failures.epoch();
  EXPECT_NE(initial, 0u);

  failures.fail(2);
  const std::uint64_t after_fail = failures.epoch();
  EXPECT_NE(after_fail, initial);

  failures.fail(2);     // already failed — contents unchanged
  failures.recover(5);  // already alive — contents unchanged
  EXPECT_EQ(failures.epoch(), after_fail);

  failures.recover(2);
  EXPECT_NE(failures.epoch(), after_fail);
}

TEST(FailureSetTest, HeapPathAt4096PacksWordsCorrectly) {
  // The big-tree configurations put 4096+ replicas in one universe — 16x
  // past kInlineBits — so every bit operation runs against heap words.
  // Fail exactly the replicas on word boundaries and both edges of each
  // 64-bit word to catch packing/shift errors.
  constexpr std::size_t kUniverse = 4096;
  FailureSet failures(kUniverse);
  EXPECT_EQ(failures.universe_size(), kUniverse);
  EXPECT_EQ(failures.failed_count(), 0u);

  std::size_t expected = 0;
  for (std::size_t word = 0; word < kUniverse / 64; ++word) {
    failures.fail(static_cast<ReplicaId>(word * 64));       // bit 0
    failures.fail(static_cast<ReplicaId>(word * 64 + 63));  // bit 63
    expected += 2;
  }
  EXPECT_EQ(failures.failed_count(), expected);
  for (std::size_t word = 0; word < kUniverse / 64; ++word) {
    EXPECT_TRUE(failures.is_failed(static_cast<ReplicaId>(word * 64)));
    EXPECT_TRUE(failures.is_failed(static_cast<ReplicaId>(word * 64 + 63)));
    // Interior bits of the same words stay clear.
    EXPECT_FALSE(failures.is_failed(static_cast<ReplicaId>(word * 64 + 1)));
    EXPECT_FALSE(failures.is_failed(static_cast<ReplicaId>(word * 64 + 62)));
  }

  // Recover every bit-63 replica: count halves, bit-0 neighbours survive.
  for (std::size_t word = 0; word < kUniverse / 64; ++word) {
    failures.recover(static_cast<ReplicaId>(word * 64 + 63));
  }
  EXPECT_EQ(failures.failed_count(), expected / 2);
  EXPECT_TRUE(failures.is_failed(0));
  EXPECT_FALSE(failures.is_failed(63));
}

TEST(FailureSetTest, HeapPathEpochsStayUniquePerMutation) {
  // Epoch semantics must be identical on the heap path: a fresh epoch per
  // real mutation, globally unique across sets of any size.
  FailureSet big(4096);
  FailureSet small(8);
  EXPECT_NE(big.epoch(), small.epoch());

  std::uint64_t last = big.epoch();
  for (ReplicaId r : {ReplicaId{0}, ReplicaId{1000}, ReplicaId{4095}}) {
    big.fail(r);
    EXPECT_NE(big.epoch(), last);
    last = big.epoch();
  }
  big.fail(1000);  // no-op: already failed
  EXPECT_EQ(big.epoch(), last);
}

TEST(FailureSetTest, MergeFailedFromOrsWordsAndGrows) {
  // merge_failed_from is the per-txn suspicion path: word-wise OR into a
  // reused scratch set, growing the destination universe when needed.
  FailureSet detector(4096);
  detector.fail(7);
  detector.fail(300);   // heap word on the source side
  detector.fail(4095);

  FailureSet scratch(16);  // smaller universe: merge must grow it
  scratch.fail(3);
  const std::uint64_t before = scratch.epoch();
  scratch.merge_failed_from(detector);
  EXPECT_NE(scratch.epoch(), before);
  EXPECT_EQ(scratch.universe_size(), 4096u);
  EXPECT_EQ(scratch.failed_count(), 4u);
  EXPECT_TRUE(scratch.is_failed(3));
  EXPECT_TRUE(scratch.is_failed(7));
  EXPECT_TRUE(scratch.is_failed(300));
  EXPECT_TRUE(scratch.is_failed(4095));

  // Re-merging the same set adds nothing: contents and epoch both hold.
  const std::uint64_t merged = scratch.epoch();
  scratch.merge_failed_from(detector);
  EXPECT_EQ(scratch.epoch(), merged);
  EXPECT_EQ(scratch.failed_count(), 4u);

  // Merging an empty set is a no-op even across universe sizes.
  const FailureSet empty(65536);
  scratch.merge_failed_from(empty);
  EXPECT_EQ(scratch.epoch(), merged);
  EXPECT_EQ(scratch.universe_size(), 4096u);
}

TEST(FailureSetTest, EpochsAreGloballyUniqueAndSharedByCopies) {
  FailureSet a(8);
  FailureSet b(8);
  // Distinct objects never share an epoch, even with identical contents —
  // an epoch identifies one immutable snapshot of one set's history.
  EXPECT_NE(a.epoch(), b.epoch());

  a.fail(1);
  const FailureSet copy = a;  // equal contents: cache entries keyed on
  EXPECT_EQ(copy.epoch(), a.epoch());  // a's epoch stay valid for the copy

  a.fail(2);  // diverging mutation gives a a fresh epoch; copy keeps its own
  EXPECT_NE(a.epoch(), copy.epoch());
  EXPECT_EQ(copy.failed_count(), 1u);
  EXPECT_EQ(a.failed_count(), 2u);
}

}  // namespace
}  // namespace atrcp
