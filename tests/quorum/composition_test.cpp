#include "quorum/composition.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/quorums.hpp"
#include "protocols/hqc.hpp"
#include "quorum/availability.hpp"
#include "quorum/lp.hpp"

namespace atrcp {
namespace {

TEST(BuildingBlocksTest, AllOfOneOfMajority) {
  EXPECT_EQ(all_of(4).set_count(), 1u);
  EXPECT_EQ(all_of(4).sets()[0].size(), 4u);
  EXPECT_EQ(one_of(4).set_count(), 4u);
  EXPECT_TRUE(all_of(4).is_coterie());
  EXPECT_FALSE(one_of(4).is_quorum_system());  // singletons don't intersect
  EXPECT_EQ(majority_of(3).set_count(), 3u);
  EXPECT_TRUE(majority_of(5).is_coterie());
  EXPECT_EQ(need_of_three(2).set_count(), 3u);
}

TEST(ComposeTest, RejectsSizeMismatch) {
  EXPECT_THROW(compose(all_of(2), {all_of(1)}), std::invalid_argument);
}

TEST(ComposeTest, UniverseIsConcatenated) {
  const SetSystem composed =
      compose(all_of(2), {majority_of(3), majority_of(3)});
  EXPECT_EQ(composed.universe_size(), 6u);
  // all-of-2 outer: every composite quorum takes a majority from EACH side:
  // 3 * 3 = 9 quorums of size 4.
  EXPECT_EQ(composed.set_count(), 9u);
  for (const Quorum& q : composed.sets()) EXPECT_EQ(q.size(), 4u);
}

TEST(ComposeTest, QuorumPropertyInherited) {
  // Majority-of-3 outer over three majority-of-3 inners: a coterie.
  const SetSystem composed = compose(
      majority_of(3), {majority_of(3), majority_of(3), majority_of(3)});
  EXPECT_EQ(composed.universe_size(), 9u);
  EXPECT_TRUE(composed.is_quorum_system());
}

TEST(ComposeTest, NonIntersectingOuterBreaksIt) {
  // one-of-2 outer: quorums from different sides never meet.
  const SetSystem composed = compose(one_of(2), {all_of(2), all_of(2)});
  EXPECT_FALSE(composed.is_quorum_system());
  EXPECT_EQ(composed.set_count(), 2u);
}

TEST(ComposeTest, HqcByCompositionMatchesProtocol) {
  // The composition algebra must reproduce the Hqc protocol's quorum set
  // exactly (as sets, order-insensitive), at depths 1 and 2.
  for (std::uint32_t depth : {1u, 2u}) {
    SetSystem composed = hqc_by_composition(depth);
    const Hqc protocol(depth);
    auto expected = protocol.enumerate_read_quorums(100000);
    auto actual = composed.sets();
    std::sort(expected.begin(), expected.end());
    std::sort(actual.begin(), actual.end());
    EXPECT_EQ(actual, expected) << "depth " << depth;
  }
}

TEST(ComposeTest, HqcLoadViaCompositionMatchesFormula) {
  const SetSystem composed = hqc_by_composition(2);
  EXPECT_NEAR(optimal_load(composed).load, 4.0 / 9.0, 1e-8);
}

TEST(ComposeTest, ArbitraryReadSystemIsAComposition) {
  // Read quorums of the 1-3-5 tree = all-of-2 outer over one-of-3 and
  // one-of-5 (one member from EVERY level).
  const SetSystem composed = compose(all_of(2), {one_of(3), one_of(5)});
  const ArbitraryProtocol protocol(ArbitraryTree::from_spec("1-3-5"));
  auto expected = protocol.enumerate_read_quorums(1000);
  auto actual = composed.sets();
  std::sort(expected.begin(), expected.end());
  std::sort(actual.begin(), actual.end());
  EXPECT_EQ(actual, expected);
}

TEST(ComposeTest, ArbitraryWriteSystemIsAComposition) {
  // Write quorums = one-of-2 outer over all-of-3 and all-of-5 (ALL members
  // of ONE level).
  const SetSystem composed = compose(one_of(2), {all_of(3), all_of(5)});
  const ArbitraryProtocol protocol(ArbitraryTree::from_spec("1-3-5"));
  auto expected = protocol.enumerate_write_quorums(10);
  auto actual = composed.sets();
  std::sort(expected.begin(), expected.end());
  std::sort(actual.begin(), actual.end());
  EXPECT_EQ(actual, expected);
}

TEST(ComposeTest, FactCountsFollowFromComposition) {
  // m(R) multiplies (product over levels), m(W) adds (one per level) — the
  // compositional reason behind Facts 3.2.1 and 3.2.2.
  const SetSystem reads =
      compose(all_of(3), {one_of(2), one_of(4), one_of(5)});
  EXPECT_EQ(reads.set_count(), 2u * 4u * 5u);
  const SetSystem writes =
      compose(one_of(3), {all_of(2), all_of(4), all_of(5)});
  EXPECT_EQ(writes.set_count(), 3u);
}

TEST(ComposeTest, AvailabilityFactorizes) {
  // For the all-of outer, availability is the product of the inner
  // availabilities (independence across disjoint universes).
  const SetSystem left = majority_of(3);
  const SetSystem right = one_of(4);  // "any single replica"
  const SetSystem composed = compose(all_of(2), {left, right});
  for (double p : {0.6, 0.85}) {
    EXPECT_NEAR(exact_availability(composed, p),
                exact_availability(left, p) * exact_availability(right, p),
                1e-10);
  }
}

TEST(ComposeTest, LimitEnforced) {
  EXPECT_THROW(compose(all_of(2), {majority_of(5), majority_of(5)}, 10),
               std::length_error);
}

// -- Load composition theorems -----------------------------------------------
//
// These two facts GENERALIZE the paper's appendix proofs (6.1: read load
// 1/d; 6.2: write load 1/|K_phy|), verified here against the exact LP:
//
//  (1) all-of outer:  L(compose(all_of(k), S_1..S_k)) = max_i L(S_i)
//      — every composite quorum uses every subsystem, so the busiest
//      subsystem sets the load. The arbitrary READ system composes
//      singleton systems with L(S_i) = 1/m_phy_i, giving max = 1/d.
//
//  (2) one-of outer:  1/L(compose(one_of(k), S_1..S_k)) = Σ_i 1/L(S_i)
//      — weight can be split across subsystems in proportion to their
//      capacity 1/L. The arbitrary WRITE system composes all-of systems
//      with L = 1 each, giving L = 1/k = 1/|K_phy|.

TEST(ComposeLoadTheoremsTest, AllOfOuterTakesTheMaxLoad) {
  const std::vector<SetSystem> parts = {one_of(3), majority_of(3), one_of(5)};
  const SetSystem composed = compose(all_of(3), parts);
  double expected = 0.0;
  for (const SetSystem& part : parts) {
    expected = std::max(expected, optimal_load(part).load);
  }
  EXPECT_NEAR(optimal_load(composed).load, expected, 1e-8);
  // Sanity: the parts' loads are 1/3, 2/3, 1/5 -> max 2/3.
  EXPECT_NEAR(expected, 2.0 / 3.0, 1e-9);
}

TEST(ComposeLoadTheoremsTest, OneOfOuterAddsCapacities) {
  const std::vector<SetSystem> parts = {all_of(2), majority_of(3), all_of(4)};
  const SetSystem composed = compose(one_of(3), parts);
  double inverse = 0.0;
  for (const SetSystem& part : parts) {
    inverse += 1.0 / optimal_load(part).load;
  }
  EXPECT_NEAR(optimal_load(composed).load, 1.0 / inverse, 1e-8);
  // Loads 1, 2/3, 1 -> capacities 1 + 1.5 + 1 = 3.5 -> L = 2/7.
  EXPECT_NEAR(1.0 / inverse, 2.0 / 7.0, 1e-9);
}

TEST(ComposeLoadTheoremsTest, PaperLoadsAreTheSpecialCases) {
  // Arbitrary 1-3-5: reads = all_of over one_of(3), one_of(5): max(1/3,
  // 1/5) = 1/3 = 1/d. Writes = one_of over all_of(3), all_of(5):
  // 1/(1+1) = 1/2 = 1/|K_phy|.
  const SetSystem reads = compose(all_of(2), {one_of(3), one_of(5)});
  const SetSystem writes = compose(one_of(2), {all_of(3), all_of(5)});
  EXPECT_NEAR(optimal_load(reads).load, 1.0 / 3.0, 1e-8);
  EXPECT_NEAR(optimal_load(writes).load, 0.5, 1e-8);
}

TEST(ComposeLoadTheoremsTest, RandomizedAgainstLp) {
  Rng rng(2718);
  for (int round = 0; round < 10; ++round) {
    // Random small parts: one_of(s), all_of(s) or majority_of(s), s in 2..4.
    std::vector<SetSystem> parts;
    const std::size_t k = 2 + rng.below(2);
    for (std::size_t i = 0; i < k; ++i) {
      const std::size_t s = 2 + rng.below(3);
      switch (rng.below(3)) {
        case 0: parts.push_back(one_of(s)); break;
        case 1: parts.push_back(all_of(s)); break;
        default: parts.push_back(majority_of(s)); break;
      }
    }
    double max_load = 0.0;
    double inverse_sum = 0.0;
    for (const SetSystem& part : parts) {
      const double load = optimal_load(part).load;
      max_load = std::max(max_load, load);
      inverse_sum += 1.0 / load;
    }
    EXPECT_NEAR(optimal_load(compose(all_of(k), parts)).load, max_load, 1e-7)
        << "round " << round;
    EXPECT_NEAR(optimal_load(compose(one_of(k), parts)).load,
                1.0 / inverse_sum, 1e-7)
        << "round " << round;
  }
}

}  // namespace
}  // namespace atrcp
