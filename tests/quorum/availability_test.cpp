#include "quorum/availability.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace atrcp {
namespace {

TEST(ExactAvailabilityTest, SingleReplica) {
  const SetSystem system(1, {Quorum{0}});
  for (double p : {0.0, 0.3, 0.7, 1.0}) {
    EXPECT_NEAR(exact_availability(system, p), p, 1e-12);
  }
}

TEST(ExactAvailabilityTest, RowaRead) {
  // Singleton quorums: available iff any replica alive: 1-(1-p)^n.
  const std::size_t n = 5;
  std::vector<Quorum> sets;
  for (ReplicaId id = 0; id < n; ++id) sets.push_back(Quorum{id});
  const SetSystem system(n, sets);
  for (double p : {0.2, 0.5, 0.8}) {
    EXPECT_NEAR(exact_availability(system, p), 1.0 - std::pow(1.0 - p, 5),
                1e-12);
  }
}

TEST(ExactAvailabilityTest, RowaWrite) {
  // One quorum with everyone: available iff all alive: p^n.
  const SetSystem system(4, {Quorum{0, 1, 2, 3}});
  for (double p : {0.3, 0.9}) {
    EXPECT_NEAR(exact_availability(system, p), std::pow(p, 4), 1e-12);
  }
}

TEST(ExactAvailabilityTest, MajorityOfThree) {
  // Available iff >= 2 alive: 3p^2(1-p) + p^3.
  const SetSystem system(3, {Quorum{0, 1}, Quorum{0, 2}, Quorum{1, 2}});
  for (double p : {0.4, 0.7}) {
    const double expected = 3 * p * p * (1 - p) + p * p * p;
    EXPECT_NEAR(exact_availability(system, p), expected, 1e-12);
  }
}

TEST(ExactAvailabilityTest, DegenerateP) {
  const SetSystem system(3, {Quorum{0, 1}});
  EXPECT_NEAR(exact_availability(system, 0.0), 0.0, 1e-12);
  EXPECT_NEAR(exact_availability(system, 1.0), 1.0, 1e-12);
}

TEST(ExactAvailabilityTest, MonotoneInP) {
  const SetSystem system(4, {Quorum{0, 1}, Quorum{2, 3}, Quorum{1, 2}});
  double previous = -1.0;
  for (double p = 0.0; p <= 1.0001; p += 0.05) {
    const double a = exact_availability(system, std::min(p, 1.0));
    EXPECT_GE(a, previous - 1e-12);
    previous = a;
  }
}

TEST(ExactAvailabilityTest, RejectsBadInput) {
  const SetSystem big(25, {Quorum{0}});
  EXPECT_THROW(exact_availability(big, 0.5), std::invalid_argument);
  const SetSystem ok(2, {Quorum{0}});
  EXPECT_THROW(exact_availability(ok, -0.1), std::invalid_argument);
  EXPECT_THROW(exact_availability(ok, 1.1), std::invalid_argument);
}

TEST(SampleFailuresTest, MatchesProbability) {
  Rng rng(3);
  std::size_t failed = 0;
  constexpr std::size_t kTrials = 20000;
  for (std::size_t t = 0; t < kTrials; ++t) {
    failed += sample_failures(10, 0.8, rng).failed_count();
  }
  // Expected failures per trial: 10 * 0.2 = 2.
  EXPECT_NEAR(static_cast<double>(failed) / kTrials, 2.0, 0.05);
}

TEST(MonteCarloAvailabilityTest, AgreesWithExact) {
  const SetSystem system(5, {Quorum{0, 1, 2}, Quorum{2, 3, 4}, Quorum{0, 2, 4}});
  Rng rng(17);
  for (double p : {0.5, 0.8}) {
    const double exact = exact_availability(system, p);
    const double estimate = monte_carlo_availability(system, p, 40000, rng);
    EXPECT_NEAR(estimate, exact, 0.01) << "p=" << p;
  }
}

TEST(MonteCarloAvailabilityTest, PredicateOverload) {
  // Predicate "replica 0 alive" has availability exactly p.
  Rng rng(29);
  const double estimate = monte_carlo_availability(
      4, 0.6, 40000, rng,
      [](const FailureSet& failures) { return failures.is_alive(0); });
  EXPECT_NEAR(estimate, 0.6, 0.01);
}

TEST(MonteCarloAvailabilityTest, ZeroTrialsThrows) {
  const SetSystem system(2, {Quorum{0}});
  Rng rng(1);
  EXPECT_THROW(monte_carlo_availability(system, 0.5, 0, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace atrcp
