#include "quorum/lp.hpp"

#include <gtest/gtest.h>

#include <functional>

#include "quorum/strategy.hpp"
#include "util/math.hpp"

namespace atrcp {
namespace {

TEST(SimplexTest, TextbookProblem) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  ->  x=2, y=6, z=36.
  const auto result = simplex_maximize(
      {3, 5}, {{1, 0}, {0, 2}, {3, 2}}, {4, 12, 18});
  ASSERT_TRUE(result.bounded);
  EXPECT_NEAR(result.objective, 36.0, 1e-9);
  EXPECT_NEAR(result.x[0], 2.0, 1e-9);
  EXPECT_NEAR(result.x[1], 6.0, 1e-9);
}

TEST(SimplexTest, DualValues) {
  // Same LP; strong duality: b·y = objective.
  const std::vector<double> b = {4, 12, 18};
  const auto result = simplex_maximize(
      {3, 5}, {{1, 0}, {0, 2}, {3, 2}}, b);
  double dual_objective = 0.0;
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_GE(result.duals[i], -1e-9);
    dual_objective += b[i] * result.duals[i];
  }
  EXPECT_NEAR(dual_objective, result.objective, 1e-9);
}

TEST(SimplexTest, DetectsUnbounded) {
  // max x with no binding constraint on x.
  const auto result = simplex_maximize({1, 0}, {{0, 1}}, {5});
  EXPECT_FALSE(result.bounded);
}

TEST(SimplexTest, DegenerateTiesTerminate) {
  // Classic degenerate LP; Bland's rule must not cycle.
  const auto result = simplex_maximize(
      {10, -57, -9, -24},
      {{0.5, -5.5, -2.5, 9}, {0.5, -1.5, -0.5, 1}, {1, 0, 0, 0}}, {0, 0, 1});
  ASSERT_TRUE(result.bounded);
  EXPECT_NEAR(result.objective, 1.0, 1e-9);
}

TEST(SimplexTest, RejectsBadInput) {
  EXPECT_THROW(simplex_maximize({1}, {{1}}, {-1}), std::invalid_argument);
  EXPECT_THROW(simplex_maximize({1}, {{1, 2}}, {1}), std::invalid_argument);
  EXPECT_THROW(simplex_maximize({1}, {{1}}, {1, 2}), std::invalid_argument);
}

TEST(OptimalLoadTest, SingletonSystem) {
  // One quorum {0}: the only strategy loads replica 0 fully.
  const auto result = optimal_load(SetSystem(1, {Quorum{0}}));
  EXPECT_NEAR(result.load, 1.0, 1e-9);
}

TEST(OptimalLoadTest, RowaReads) {
  // n singleton read quorums: optimal load 1/n.
  const std::size_t n = 6;
  std::vector<Quorum> sets;
  for (ReplicaId id = 0; id < n; ++id) sets.push_back(Quorum{id});
  const auto result = optimal_load(SetSystem(n, sets));
  EXPECT_NEAR(result.load, 1.0 / n, 1e-9);
}

TEST(OptimalLoadTest, MajorityOfThree) {
  // Naor-Wool: majority quorum system load is q/n = 2/3.
  const SetSystem system(3, {Quorum{0, 1}, Quorum{0, 2}, Quorum{1, 2}});
  const auto result = optimal_load(system);
  EXPECT_NEAR(result.load, 2.0 / 3.0, 1e-9);
}

TEST(OptimalLoadTest, StrategyAchievesTheLoad) {
  const SetSystem system(3, {Quorum{0, 1}, Quorum{0, 2}, Quorum{1, 2}});
  const auto result = optimal_load(system);
  EXPECT_NEAR(strategy_load(system, result.strategy), result.load, 1e-9);
}

TEST(OptimalLoadTest, CertificateIsValid) {
  const SetSystem system(3, {Quorum{0, 1}, Quorum{0, 2}, Quorum{1, 2}});
  const auto result = optimal_load(system);
  EXPECT_TRUE(certifies_lower_bound(system, result.y, result.load, 1e-7));
}

TEST(OptimalLoadTest, AsymmetricSystem) {
  // Sets {0} and {0,1}: every quorum contains 0, so load is 1 no matter
  // the strategy (the "root in every quorum" pathology the paper discusses).
  const auto result = optimal_load(SetSystem(2, {Quorum{0}, Quorum{0, 1}}));
  EXPECT_NEAR(result.load, 1.0, 1e-9);
}

TEST(OptimalLoadTest, StarSystem) {
  // Quorums {0,i} for i=1..4: replica 0 is in all -> load 1... each quorum
  // must include 0, so the load is 1 on replica 0 regardless.
  std::vector<Quorum> sets;
  for (ReplicaId i = 1; i <= 4; ++i) sets.push_back(Quorum{0, i});
  const auto result = optimal_load(SetSystem(5, sets));
  EXPECT_NEAR(result.load, 1.0, 1e-9);
}

TEST(OptimalLoadTest, TwoDisjointQuorums) {
  // {0,1} and {2,3}: split weight evenly -> load 1/2.
  const auto result = optimal_load(SetSystem(4, {Quorum{0, 1}, Quorum{2, 3}}));
  EXPECT_NEAR(result.load, 0.5, 1e-9);
}

TEST(OptimalLoadTest, RejectsDegenerateSystems) {
  EXPECT_THROW(optimal_load(SetSystem(2, {})), std::invalid_argument);
  EXPECT_THROW(optimal_load(SetSystem(2, {Quorum{}})), std::invalid_argument);
}

class MajorityLoadTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MajorityLoadTest, LoadIsQOverN) {
  // Property (Naor-Wool): the majority system over n replicas has optimal
  // load ceil((n+1)/2)/n. Verified by the LP for n = 3..7.
  const std::size_t n = GetParam();
  const std::size_t q = n / 2 + 1;
  std::vector<Quorum> sets;
  // all subsets of size q
  std::vector<ReplicaId> pick(q);
  std::function<void(std::size_t, ReplicaId)> gen = [&](std::size_t depth,
                                                        ReplicaId start) {
    if (depth == q) {
      sets.emplace_back(pick);
      return;
    }
    for (ReplicaId id = start; id < n; ++id) {
      pick[depth] = id;
      gen(depth + 1, id + 1);
    }
  };
  gen(0, 0);
  const auto result = optimal_load(SetSystem(n, sets));
  EXPECT_NEAR(result.load, static_cast<double>(q) / n, 1e-8);
  EXPECT_TRUE(certifies_lower_bound(SetSystem(n, sets), result.y, result.load,
                                    1e-7));
}

INSTANTIATE_TEST_SUITE_P(SmallN, MajorityLoadTest,
                         ::testing::Values(3, 4, 5, 6, 7));

}  // namespace
}  // namespace atrcp
