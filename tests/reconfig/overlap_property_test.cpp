// OverlapProtocol property fuzz — the epoch-boundary intersection
// invariant (docs/RECONFIG.md, Theorem 1). An overlap quorum is the union
// of one quorum per epoch, so every overlap READ quorum must intersect
// every write quorum OF EITHER EPOCH (old epoch: via its embedded old-epoch
// read quorum and the old bicoterie; new epoch: symmetrically), and every
// overlap WRITE quorum must intersect both epochs' read quorums. 500 random
// failure patterns per protocol pairing, every (old, new) pair drawn from a
// cross-epoch zoo including universe growth and shrink.
//
// The regression half: the planted broken rule (overlap = NEW epoch's
// quorums alone, the bug ReconfigOptions::broken_overlap ships) violates
// the invariant, and the fuzzer must exhibit a concrete counterexample —
// an old-epoch write quorum disjoint from a "broken overlap" read quorum.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/quorums.hpp"
#include "protocols/majority.hpp"
#include "protocols/rowa.hpp"
#include "protocols/tree_quorum.hpp"
#include "reconfig/epoch.hpp"

namespace atrcp {
namespace {

constexpr std::size_t kCases = 500;

struct Pairing {
  std::string label;
  std::unique_ptr<ReplicaControlProtocol> old_epoch;
  std::unique_ptr<ReplicaControlProtocol> new_epoch;
};

std::vector<Pairing> pairings() {
  std::vector<Pairing> out;
  const auto add = [&out](std::string label,
                          std::unique_ptr<ReplicaControlProtocol> old_epoch,
                          std::unique_ptr<ReplicaControlProtocol> new_epoch) {
    out.push_back(
        {std::move(label), std::move(old_epoch), std::move(new_epoch)});
  };
  add("maj5->tree5L2", std::make_unique<MajorityQuorum>(5),
      std::make_unique<ArbitraryProtocol>(balanced_tree(5, 2)));
  add("maj5->rowa5", std::make_unique<MajorityQuorum>(5),
      std::make_unique<Rowa>(5));
  add("rowa5->maj5", std::make_unique<Rowa>(5),
      std::make_unique<MajorityQuorum>(5));
  add("maj5->maj6", std::make_unique<MajorityQuorum>(5),
      std::make_unique<MajorityQuorum>(6));  // universe grows
  add("maj6->maj4", std::make_unique<MajorityQuorum>(6),
      std::make_unique<MajorityQuorum>(4));  // universe shrinks
  add("tree135->maj9",
      std::make_unique<ArbitraryProtocol>(ArbitraryTree::from_spec("1-3-5")),
      std::make_unique<MajorityQuorum>(9));
  add("binary7->tree7L3", std::make_unique<TreeQuorum>(2),
      std::make_unique<ArbitraryProtocol>(balanced_tree(7, 3)));
  add("mostly_read5->mostly_write5", make_mostly_read(5),
      make_mostly_write(5));
  return out;
}

/// A random failure pattern over the union universe, sparse enough that
/// quorums usually assemble (the property is vacuous when assembly fails).
FailureSet random_failures(Rng& rng, std::size_t universe) {
  FailureSet failures(universe);
  const std::size_t down = rng.below(universe / 2 + 1);
  for (std::size_t i = 0; i < down; ++i) {
    failures.fail(static_cast<ReplicaId>(rng.below(universe)));
  }
  return failures;
}

bool intersects(const Quorum& a, const Quorum& b) {
  for (const ReplicaId r : a.members()) {
    if (b.contains(r)) return true;
  }
  return false;
}

TEST(OverlapPropertyTest, BothEpochRuleIntersectsEveryEpochsQuorums) {
  for (const Pairing& pair : pairings()) {
    const OverlapProtocol overlap(*pair.old_epoch, *pair.new_epoch);
    const std::size_t universe = overlap.universe_size();
    EXPECT_EQ(universe, std::max(pair.old_epoch->universe_size(),
                                 pair.new_epoch->universe_size()));
    Rng rng(0x0E0F + universe);
    std::size_t checked = 0;
    for (std::size_t i = 0; i < kCases; ++i) {
      const FailureSet failures = random_failures(rng, universe);
      const auto overlap_read = overlap.assemble_read_quorum(failures, rng);
      const auto overlap_write = overlap.assemble_write_quorum(failures, rng);
      // Independent single-epoch quorums under the same failure pattern.
      const auto old_write =
          pair.old_epoch->assemble_write_quorum(failures, rng);
      const auto new_write =
          pair.new_epoch->assemble_write_quorum(failures, rng);
      const auto old_read = pair.old_epoch->assemble_read_quorum(failures, rng);
      const auto new_read = pair.new_epoch->assemble_read_quorum(failures, rng);

      if (overlap_read) {
        if (old_write) {
          ++checked;
          EXPECT_TRUE(intersects(*overlap_read, *old_write))
              << pair.label << " case " << i
              << ": overlap read missed an old-epoch write quorum";
        }
        if (new_write) {
          EXPECT_TRUE(intersects(*overlap_read, *new_write))
              << pair.label << " case " << i
              << ": overlap read missed a new-epoch write quorum";
        }
      }
      if (overlap_write) {
        if (old_read) {
          EXPECT_TRUE(intersects(*overlap_write, *old_read))
              << pair.label << " case " << i
              << ": old-epoch read missed an overlap write quorum";
        }
        if (new_read) {
          EXPECT_TRUE(intersects(*overlap_write, *new_read))
              << pair.label << " case " << i
              << ": new-epoch read missed an overlap write quorum";
        }
      }
      // Overlap quorums assemble iff BOTH epochs can assemble.
      EXPECT_EQ(overlap_read.has_value(),
                pair.old_epoch->assemble_read_quorum(failures, rng)
                        .has_value() &&
                    pair.new_epoch->assemble_read_quorum(failures, rng)
                        .has_value())
          << pair.label << " case " << i;
    }
    // The sweep must not be vacuous: most patterns leave quorums available.
    EXPECT_GT(checked, kCases / 4) << pair.label;
  }
}

TEST(OverlapPropertyTest, BrokenOverlapRuleViolatesTheInvariant) {
  // The planted bug hands out the NEW epoch's quorums alone during the
  // window. For maj5 -> rowa5 (read = any 1 replica) the fuzzer must find
  // an old-epoch write quorum (3 of 5) disjoint from a broken "overlap"
  // read (1 of 5) — the stale-read counterexample the checker then flags
  // end to end in the explorer teeth test.
  const MajorityQuorum old_epoch(5);
  const Rowa new_epoch(5);
  Rng rng(0xBAD);
  std::size_t violations = 0;
  for (std::size_t i = 0; i < kCases; ++i) {
    const FailureSet failures(5);
    const auto broken_read = new_epoch.assemble_read_quorum(failures, rng);
    const auto old_write = old_epoch.assemble_write_quorum(failures, rng);
    ASSERT_TRUE(broken_read && old_write);
    if (!intersects(*broken_read, *old_write)) ++violations;
  }
  EXPECT_GT(violations, 0u)
      << "the planted broken-overlap rule never produced a non-intersecting "
         "pair — the teeth test would be toothless";
}

}  // namespace
}  // namespace atrcp
