// ReconfigManager: the online epoch/view-change state machine
// (docs/RECONFIG.md). Covers the full phase walk on a live cluster, the
// critical safety property (writes committed under the OLD epoch's quorums
// are visible to the NEW epoch's read quorums, with shapes chosen so the
// raw quorum systems would NOT intersect without the sync phase), epoch
// tagging of concurrent transactions, crash/recovery at every phase,
// universe growth and shrink within the physical pool, and the API error
// paths.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "check/serializability.hpp"
#include "core/config.hpp"
#include "core/quorums.hpp"
#include "protocols/majority.hpp"
#include "protocols/rowa.hpp"
#include "txn/cluster.hpp"

namespace atrcp {
namespace {

ClusterOptions reconfig_options(std::size_t clients = 1,
                                std::size_t pool = 0) {
  ClusterOptions options;
  options.clients = clients;
  options.link = LinkParams{.base_latency = 10, .jitter = 3};
  options.enable_reconfig = true;
  options.site_pool = pool;
  options.record_history = true;
  return options;
}

TEST(ReconfigManagerTest, FullPhaseWalkReachesNewStableEpoch) {
  Cluster cluster(std::make_unique<MajorityQuorum>(5), reconfig_options());
  ReconfigManager& manager = *cluster.reconfig();
  EXPECT_EQ(manager.phase(), ReconfigManager::Phase::kStable);
  EXPECT_EQ(manager.epoch(), 0u);

  bool done_ok = false;
  cluster.start_reconfiguration(
      std::make_unique<ArbitraryProtocol>(balanced_tree(5, 2)),
      [&done_ok](bool ok) { done_ok = ok; });
  cluster.settle();

  EXPECT_TRUE(done_ok);
  EXPECT_EQ(manager.phase(), ReconfigManager::Phase::kStable);
  EXPECT_EQ(manager.epoch(), 1u);
  EXPECT_EQ(manager.transitions_completed(), 1u);
  EXPECT_EQ(manager.live_views(), 0u);
  EXPECT_EQ(cluster.protocol().name(), "ARBITRARY");

  // The log walks every phase exactly once, in order.
  std::vector<ReconfigManager::Phase> phases;
  for (const auto& entry : manager.transition_log()) {
    if (!entry.crash && !entry.recover) phases.push_back(entry.phase);
  }
  const std::vector<ReconfigManager::Phase> expected = {
      ReconfigManager::Phase::kPrepare, ReconfigManager::Phase::kOverlap,
      ReconfigManager::Phase::kSync,    ReconfigManager::Phase::kCommit,
      ReconfigManager::Phase::kRetire,  ReconfigManager::Phase::kStable,
  };
  EXPECT_EQ(phases, expected);
}

TEST(ReconfigManagerTest, OldEpochWritesVisibleToNewEpochReads) {
  // Epoch 0 = majority of 5: a write lands on some 3 of {0..4}. Epoch 1 =
  // ROWA: reads pick ONE replica. Raw quorum systems do not intersect
  // across epochs, so only the sync phase can make this pass.
  Cluster cluster(std::make_unique<MajorityQuorum>(5), reconfig_options());
  for (Key k = 0; k < 4; ++k) {
    ASSERT_EQ(cluster.write_sync(0, k, "old" + std::to_string(k)),
              TxnOutcome::kCommitted);
  }
  cluster.start_reconfiguration(std::make_unique<Rowa>(5));
  cluster.settle();
  ASSERT_EQ(cluster.reconfig()->transitions_completed(), 1u);
  for (Key k = 0; k < 4; ++k) {
    const auto value = cluster.read_sync(0, k);
    ASSERT_TRUE(value.has_value()) << "key " << k;
    EXPECT_EQ(value->value, "old" + std::to_string(k));
  }
}

TEST(ReconfigManagerTest, GrowAndShrinkUniverseWithinPool) {
  // 5 -> 6 (the spare pool site joins) -> 4 (two sites retire), with data
  // written in every epoch readable in the last.
  Cluster cluster(std::make_unique<MajorityQuorum>(5),
                  reconfig_options(1, /*pool=*/6));
  ASSERT_EQ(cluster.write_sync(0, 1, "e0"), TxnOutcome::kCommitted);

  cluster.start_reconfiguration(std::make_unique<MajorityQuorum>(6));
  cluster.settle();
  ASSERT_EQ(cluster.reconfig()->epoch(), 1u);
  ASSERT_EQ(cluster.write_sync(0, 2, "e1"), TxnOutcome::kCommitted);

  cluster.start_reconfiguration(std::make_unique<MajorityQuorum>(4));
  cluster.settle();
  ASSERT_EQ(cluster.reconfig()->epoch(), 2u);
  EXPECT_EQ(cluster.read_sync(0, 1)->value, "e0");
  EXPECT_EQ(cluster.read_sync(0, 2)->value, "e1");
  ASSERT_EQ(cluster.write_sync(0, 3, "e2"), TxnOutcome::kCommitted);
  EXPECT_EQ(cluster.read_sync(0, 3)->value, "e2");
}

TEST(ReconfigManagerTest, ConcurrentTransactionsGetEpochTags) {
  Cluster cluster(std::make_unique<MajorityQuorum>(5), reconfig_options(2));
  // Keep a steady closed-loop write stream running across the transition.
  struct Loop {
    Cluster& cluster;
    std::size_t client;
    int remaining;
    std::function<void()> issue;
  };
  auto loop = std::make_shared<Loop>(Loop{cluster, 0, 40, nullptr});
  loop->issue = [loop] {
    if (loop->remaining-- <= 0) return;
    loop->cluster.client(loop->client)
        .run({TxnOp::write(0, "v" + std::to_string(loop->remaining))},
             [loop](TxnResult) { loop->issue(); });
  };
  cluster.scheduler().schedule_at(1, [loop] { loop->issue(); });
  cluster.scheduler().schedule_at(400, [&cluster] {
    cluster.start_reconfiguration(
        std::make_unique<ArbitraryProtocol>(balanced_tree(5, 2)));
  });
  cluster.settle();
  loop->issue = nullptr;

  ASSERT_EQ(cluster.reconfig()->transitions_completed(), 1u);
  bool saw_epoch0 = false, saw_epoch1 = false;
  for (const HistoryTxn& txn : cluster.history().txns()) {
    if (txn.span.epoch == 0) saw_epoch0 = true;
    if (txn.span.epoch == 1 && txn.span.epoch_overlap == 0) saw_epoch1 = true;
  }
  EXPECT_TRUE(saw_epoch0);
  EXPECT_TRUE(saw_epoch1);
  const CheckResult epochs = check_epoch_tags(cluster.history().txns());
  EXPECT_TRUE(epochs.ok) << epochs.report;
}

TEST(ReconfigManagerTest, CrashAtEveryPhaseRecoversAndCompletes) {
  // A live workload keeps views in flight so every phase — including the
  // drain waits, which complete instantly on an idle cluster — is still
  // active when the injected crash fires (delay shorter than one network
  // round trip).
  for (int phase = 1; phase <= 5; ++phase) {
    ClusterOptions options = reconfig_options(2);
    options.reconfig.crash_phase = phase;
    options.reconfig.crash_delay = 10;
    options.reconfig.crash_downtime = 800;
    Cluster cluster(std::make_unique<MajorityQuorum>(5), options);
    ASSERT_EQ(cluster.write_sync(0, 7, "pre-crash"), TxnOutcome::kCommitted);

    struct Loop {
      Cluster& cluster;
      int remaining;
      std::function<void()> issue;
    };
    auto loop = std::make_shared<Loop>(Loop{cluster, 30, nullptr});
    loop->issue = [loop] {
      if (loop->remaining-- <= 0) return;
      loop->cluster.client(1).run(
          {TxnOp::write(1, "w" + std::to_string(loop->remaining))},
          [loop](TxnResult) { loop->issue(); });
    };
    cluster.scheduler().schedule_after(1, [loop] { loop->issue(); });
    cluster.scheduler().schedule_after(200, [&cluster] {
      cluster.start_reconfiguration(std::make_unique<Rowa>(5));
    });
    // Pin one overlap view through the EpochSource interface until well
    // after commit, so the kRetire drain cannot complete synchronously and
    // the retire-phase crash has something to interrupt.
    struct Pin {
      Cluster& cluster;
      bool held = false;
      EpochView view{};
      std::function<void()> poll;
    };
    auto pin = std::make_shared<Pin>(Pin{cluster});
    pin->poll = [pin] {
      ReconfigManager& manager = *pin->cluster.reconfig();
      if (manager.phase() == ReconfigManager::Phase::kOverlap ||
          manager.phase() == ReconfigManager::Phase::kSync) {
        pin->held = true;
        pin->view = manager.acquire_view();
        pin->cluster.scheduler().schedule_after(400, [pin] {
          pin->cluster.reconfig()->release_view(pin->view);
        });
      } else if (manager.transitions_completed() == 0) {
        pin->cluster.scheduler().schedule_after(5, pin->poll);
      }
    };
    cluster.scheduler().schedule_after(200, [pin] { pin->poll(); });
    cluster.settle();
    loop->issue = nullptr;
    pin->poll = nullptr;

    const ReconfigManager& manager = *cluster.reconfig();
    EXPECT_EQ(manager.transitions_completed(), 1u) << "crash phase " << phase;
    EXPECT_FALSE(manager.crashed());
    bool crashed = false, recovered = false;
    for (const auto& entry : manager.transition_log()) {
      crashed = crashed || entry.crash;
      recovered = recovered || entry.recover;
    }
    EXPECT_TRUE(crashed) << "crash phase " << phase;
    EXPECT_TRUE(recovered) << "crash phase " << phase;
    EXPECT_EQ(cluster.read_sync(0, 7)->value, "pre-crash");
  }
}

TEST(ReconfigManagerTest, TransitionIsSeedDeterministic) {
  const auto run = [] {
    ClusterOptions options = reconfig_options(2);
    options.reconfig.crash_phase =
        static_cast<int>(ReconfigManager::Phase::kSync);
    Cluster cluster(std::make_unique<MajorityQuorum>(5), options);
    cluster.scheduler().schedule_at(300, [&cluster] {
      cluster.start_reconfiguration(std::make_unique<MajorityQuorum>(5));
    });
    for (Key k = 0; k < 6; ++k) {
      cluster.write_sync(1, k, "w" + std::to_string(k));
    }
    cluster.settle();
    std::string log;
    for (const auto& entry : cluster.reconfig()->transition_log()) {
      log += std::string(ReconfigManager::phase_name(entry.phase)) +
             (entry.crash ? "!" : entry.recover ? "^" : "") + "@" +
             std::to_string(entry.at) + ";";
    }
    return log;
  };
  EXPECT_EQ(run(), run());
}

TEST(ReconfigManagerTest, StartErrors) {
  Cluster cluster(std::make_unique<MajorityQuorum>(5), reconfig_options());
  // Exceeds the pool (pool defaults to the initial universe).
  EXPECT_THROW(
      cluster.start_reconfiguration(std::make_unique<MajorityQuorum>(6)),
      std::invalid_argument);
  EXPECT_THROW(cluster.start_reconfiguration(nullptr), std::invalid_argument);
  cluster.start_reconfiguration(std::make_unique<MajorityQuorum>(5));
  // Already in progress.
  EXPECT_THROW(
      cluster.start_reconfiguration(std::make_unique<MajorityQuorum>(5)),
      std::logic_error);
  cluster.settle();
  EXPECT_EQ(cluster.reconfig()->transitions_completed(), 1u);

  // Disabled clusters reject the API instead of silently ignoring it.
  Cluster plain(std::make_unique<MajorityQuorum>(3), ClusterOptions{});
  EXPECT_EQ(plain.reconfig(), nullptr);
  EXPECT_THROW(
      plain.start_reconfiguration(std::make_unique<MajorityQuorum>(3)),
      std::logic_error);
}

TEST(ReconfigManagerTest, DisabledClusterTagsEpochZero) {
  ClusterOptions options;
  options.record_history = true;
  Cluster cluster(std::make_unique<MajorityQuorum>(3), options);
  ASSERT_EQ(cluster.write_sync(0, 0, "x"), TxnOutcome::kCommitted);
  for (const HistoryTxn& txn : cluster.history().txns()) {
    EXPECT_EQ(txn.span.epoch, 0u);
    EXPECT_EQ(txn.span.epoch_overlap, 0);
  }
  EXPECT_TRUE(check_epoch_tags(cluster.history().txns()).ok);
}

}  // namespace
}  // namespace atrcp
