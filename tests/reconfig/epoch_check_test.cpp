// check_epoch_tags on synthetic histories — the epoch-spanning checker
// extension in isolation, with hand-built violation shapes so the report
// wording (and the minimized two-transaction counterexample) is pinned
// down independently of the simulator.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/serializability.hpp"

namespace atrcp {
namespace {

HistoryTxn make_txn(SiteId site, std::uint64_t txn_id, std::uint32_t epoch,
                    bool overlap, std::uint64_t invoke_seq,
                    std::uint64_t complete_seq) {
  HistoryTxn txn;
  txn.site = site;
  txn.txn_id = txn_id;
  txn.outcome = HistoryOutcome::kCommitted;
  txn.span.epoch = epoch;
  txn.span.epoch_overlap = overlap ? 1 : 0;
  txn.invoke_seq = invoke_seq;
  txn.complete_seq = complete_seq;
  return txn;
}

TEST(EpochCheckTest, EmptyAndSingleEpochHistoriesPass) {
  EXPECT_TRUE(check_epoch_tags({}).ok);
  const std::vector<HistoryTxn> txns = {
      make_txn(0, 1, 0, false, 0, 1),
      make_txn(1, 2, 0, false, 2, 3),
  };
  EXPECT_TRUE(check_epoch_tags(txns).ok);
}

TEST(EpochCheckTest, CleanTransitionPasses) {
  // pure 0 drains, overlap txns straddle, pure 1 starts after — the shape
  // a correct ReconfigManager produces. Overlap transactions are ALLOWED
  // to overlap pure-0 completions and pure-1 invocations.
  const std::vector<HistoryTxn> txns = {
      make_txn(0, 1, 0, false, 0, 3),
      make_txn(1, 2, 0, false, 1, 2),
      make_txn(0, 3, 1, true, 4, 7),   // overlap window
      make_txn(1, 4, 1, true, 5, 9),   // straddles into pure epoch 1: fine
      make_txn(0, 5, 1, false, 8, 10),
      make_txn(1, 6, 1, false, 11, 12),
  };
  const CheckResult result = check_epoch_tags(txns);
  EXPECT_TRUE(result.ok) << result.report;
}

TEST(EpochCheckTest, ViewRankRegressionIsFlaggedWithMinimizedPair) {
  // txn 3 begins under pure epoch 1 (rank 2), then txn 4 begins under the
  // overlap view (rank 1) — the view hand-out went backwards. Exactly one
  // violation naming exactly the two transactions involved.
  const std::vector<HistoryTxn> txns = {
      make_txn(0, 1, 0, false, 0, 1),
      make_txn(0, 3, 1, false, 2, 5),
      make_txn(1, 4, 1, true, 3, 4),
      make_txn(1, 5, 1, false, 6, 7),
  };
  const CheckResult result = check_epoch_tags(txns);
  ASSERT_FALSE(result.ok);
  ASSERT_EQ(result.violations.size(), 1u) << result.report;
  EXPECT_NE(result.violations[0].find("went backwards"), std::string::npos);
  EXPECT_NE(result.violations[0].find(txns[2].label()), std::string::npos);
  EXPECT_NE(result.violations[0].find(txns[1].label()), std::string::npos);
  EXPECT_NE(result.report.find("epoch-tag check failed"), std::string::npos);
}

TEST(EpochCheckTest, MonotonicityReportsOnlyTheFirstPair) {
  // Two independent regressions; the checker minimizes to the first.
  const std::vector<HistoryTxn> txns = {
      make_txn(0, 1, 2, false, 0, 1),
      make_txn(0, 2, 1, false, 2, 3),
      make_txn(0, 3, 0, false, 4, 5),
  };
  const CheckResult result = check_epoch_tags(txns);
  ASSERT_FALSE(result.ok);
  std::size_t backwards = 0;
  for (const std::string& v : result.violations) {
    if (v.find("went backwards") != std::string::npos) ++backwards;
  }
  EXPECT_EQ(backwards, 1u) << result.report;
}

TEST(EpochCheckTest, MissingDrainIsFlagged) {
  // A pure-epoch-0 transaction completes AFTER a pure-epoch-1 transaction
  // was invoked: the overlap window failed to drain the old epoch.
  // (Views were still handed out in rank order, so only the drain rule
  // fires.)
  const std::vector<HistoryTxn> txns = {
      make_txn(0, 1, 0, false, 0, 5),  // completes late
      make_txn(1, 2, 1, false, 3, 4),  // pure new epoch invoked at 3 < 5
  };
  const CheckResult result = check_epoch_tags(txns);
  ASSERT_FALSE(result.ok);
  ASSERT_EQ(result.violations.size(), 1u) << result.report;
  EXPECT_NE(result.violations[0].find("did not drain"), std::string::npos);
  EXPECT_NE(result.violations[0].find(txns[0].label()), std::string::npos);
  EXPECT_NE(result.violations[0].find(txns[1].label()), std::string::npos);
}

TEST(EpochCheckTest, OverlapTransactionsExemptFromDrainRule) {
  // The same late completion is legal when the late transaction ran under
  // the overlap view — that is the entire point of the window.
  const std::vector<HistoryTxn> txns = {
      make_txn(0, 1, 1, true, 0, 5),
      make_txn(1, 2, 1, false, 3, 4),
  };
  const CheckResult result = check_epoch_tags(txns);
  EXPECT_TRUE(result.ok) << result.report;
}

TEST(EpochCheckTest, OverlapIntoEpochZeroIsNonsense) {
  const std::vector<HistoryTxn> txns = {
      make_txn(0, 1, 0, true, 0, 1),
  };
  const CheckResult result = check_epoch_tags(txns);
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.report.find("epoch 0"), std::string::npos);
}

TEST(EpochCheckTest, DrainCheckedAcrossNonAdjacentEpochs) {
  // Epoch 0's straggler outlives the 0->1 AND 1->2 transitions: flagged
  // against both later pure epochs.
  const std::vector<HistoryTxn> txns = {
      make_txn(0, 1, 0, false, 0, 9),
      make_txn(1, 2, 1, false, 2, 3),
      make_txn(1, 3, 2, false, 5, 6),
  };
  const CheckResult result = check_epoch_tags(txns);
  ASSERT_FALSE(result.ok);
  std::size_t drain = 0;
  for (const std::string& v : result.violations) {
    if (v.find("did not drain") != std::string::npos) ++drain;
  }
  EXPECT_EQ(drain, 2u) << result.report;
}

}  // namespace
}  // namespace atrcp
