// Drives a single ReplicaServer through raw messages, checking every
// handler: read, version, and the 2PC participant state machine including
// duplicate decisions and the stable prepared-set.
#include "replica/server.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace atrcp {
namespace {

/// Captures replies sent back to the "coordinator" site.
class ReplyCollector final : public SiteHandler {
 public:
  void on_message(const Message& message) override {
    bodies.push_back(message.body);
  }
  template <typename T>
  const T* last_as() const {
    if (bodies.empty()) return nullptr;
    return dynamic_cast<const T*>(bodies.back().get());
  }
  std::vector<std::shared_ptr<const MessageBody>> bodies;
};

class ReplicaServerTest : public ::testing::Test {
 protected:
  ReplicaServerTest() : network_(scheduler_, Rng(1)), server_(network_) {
    const SiteId server_site = network_.add_site(server_);
    server_.set_site(server_site);
    coordinator_site_ = network_.add_site(collector_);
  }

  void deliver(std::shared_ptr<MessageBody> body) {
    network_.send(coordinator_site_, server_.site(), std::move(body));
    scheduler_.run();
  }

  std::shared_ptr<PrepareRequest> make_prepare(TxnId txn, Key key,
                                               Value value, Timestamp ts) {
    auto prepare = std::make_shared<PrepareRequest>();
    prepare->txn_id = txn;
    prepare->writes.push_back(StagedWrite{key, std::move(value), ts});
    return prepare;
  }

  Scheduler scheduler_;
  Network network_;
  ReplicaServer server_;
  ReplyCollector collector_;
  SiteId coordinator_site_ = 0;
};

TEST_F(ReplicaServerTest, VersionRequestOnFreshKey) {
  auto request = std::make_shared<VersionRequest>();
  request->op_id = 7;
  request->key = 1;
  deliver(std::move(request));
  const auto* reply = collector_.last_as<VersionReply>();
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->op_id, 7u);
  EXPECT_EQ(reply->timestamp, kInitialTimestamp);
}

TEST_F(ReplicaServerTest, ReadRequestOnFreshKeyHasNoValue) {
  auto request = std::make_shared<ReadRequest>();
  request->op_id = 9;
  request->key = 5;
  deliver(std::move(request));
  const auto* reply = collector_.last_as<ReadReply>();
  ASSERT_NE(reply, nullptr);
  EXPECT_FALSE(reply->has_value);
}

TEST_F(ReplicaServerTest, PrepareStagesWithoutApplying) {
  deliver(make_prepare(1, 5, "value", Timestamp{1, 0}));
  const auto* vote = collector_.last_as<PrepareVote>();
  ASSERT_NE(vote, nullptr);
  EXPECT_TRUE(vote->yes);
  EXPECT_EQ(server_.prepared_count(), 1u);
  // Not visible to reads until commit.
  EXPECT_FALSE(server_.store().get(5).has_value());
}

TEST_F(ReplicaServerTest, CommitAppliesStagedWrites) {
  deliver(make_prepare(1, 5, "value", Timestamp{1, 0}));
  auto commit = std::make_shared<CommitRequest>();
  commit->txn_id = 1;
  deliver(std::move(commit));
  const auto* ack = collector_.last_as<CommitAck>();
  ASSERT_NE(ack, nullptr);
  EXPECT_EQ(server_.prepared_count(), 0u);
  ASSERT_TRUE(server_.store().get(5).has_value());
  EXPECT_EQ(server_.store().get(5)->value, "value");
  EXPECT_EQ(server_.commits_applied(), 1u);
}

TEST_F(ReplicaServerTest, AbortDropsStagedWrites) {
  deliver(make_prepare(2, 6, "doomed", Timestamp{1, 0}));
  auto abort = std::make_shared<AbortRequest>();
  abort->txn_id = 2;
  deliver(std::move(abort));
  EXPECT_NE(collector_.last_as<AbortAck>(), nullptr);
  EXPECT_EQ(server_.prepared_count(), 0u);
  EXPECT_FALSE(server_.store().get(6).has_value());
  EXPECT_EQ(server_.aborts_seen(), 1u);
}

TEST_F(ReplicaServerTest, DuplicateCommitIsIdempotent) {
  deliver(make_prepare(1, 5, "value", Timestamp{1, 0}));
  for (int i = 0; i < 3; ++i) {
    auto commit = std::make_shared<CommitRequest>();
    commit->txn_id = 1;
    deliver(std::move(commit));
    EXPECT_NE(collector_.last_as<CommitAck>(), nullptr);  // always re-acked
  }
  EXPECT_EQ(server_.commits_applied(), 1u);
  EXPECT_EQ(server_.store().get(5)->value, "value");
}

TEST_F(ReplicaServerTest, CommitForUnknownTxnStillAcks) {
  auto commit = std::make_shared<CommitRequest>();
  commit->txn_id = 99;
  deliver(std::move(commit));
  EXPECT_NE(collector_.last_as<CommitAck>(), nullptr);
  EXPECT_EQ(server_.commits_applied(), 0u);
}

TEST_F(ReplicaServerTest, RetransmittedPrepareAfterCommitVotesYes) {
  deliver(make_prepare(1, 5, "value", Timestamp{1, 0}));
  auto commit = std::make_shared<CommitRequest>();
  commit->txn_id = 1;
  deliver(std::move(commit));
  // Late retransmission of the prepare: must repeat yes, not re-stage.
  deliver(make_prepare(1, 5, "value", Timestamp{1, 0}));
  const auto* vote = collector_.last_as<PrepareVote>();
  ASSERT_NE(vote, nullptr);
  EXPECT_TRUE(vote->yes);
  EXPECT_EQ(server_.prepared_count(), 0u);
}

TEST_F(ReplicaServerTest, RetransmittedPrepareAfterAbortVotesNo) {
  deliver(make_prepare(3, 7, "value", Timestamp{1, 0}));
  auto abort = std::make_shared<AbortRequest>();
  abort->txn_id = 3;
  deliver(std::move(abort));
  deliver(make_prepare(3, 7, "value", Timestamp{1, 0}));
  const auto* vote = collector_.last_as<PrepareVote>();
  ASSERT_NE(vote, nullptr);
  EXPECT_FALSE(vote->yes);
}

TEST_F(ReplicaServerTest, ReadAfterCommitReturnsValueAndTimestamp) {
  deliver(make_prepare(1, 5, "payload", Timestamp{4, 2}));
  auto commit = std::make_shared<CommitRequest>();
  commit->txn_id = 1;
  deliver(std::move(commit));
  auto read = std::make_shared<ReadRequest>();
  read->op_id = 11;
  read->key = 5;
  deliver(std::move(read));
  const auto* reply = collector_.last_as<ReadReply>();
  ASSERT_NE(reply, nullptr);
  EXPECT_TRUE(reply->has_value);
  EXPECT_EQ(reply->value, "payload");
  EXPECT_EQ(reply->timestamp, (Timestamp{4, 2}));
}

TEST_F(ReplicaServerTest, MultiWritePrepareAppliesAll) {
  auto prepare = std::make_shared<PrepareRequest>();
  prepare->txn_id = 4;
  prepare->writes.push_back(StagedWrite{1, "a", Timestamp{1, 0}});
  prepare->writes.push_back(StagedWrite{2, "b", Timestamp{1, 0}});
  deliver(std::move(prepare));
  auto commit = std::make_shared<CommitRequest>();
  commit->txn_id = 4;
  deliver(std::move(commit));
  EXPECT_EQ(server_.store().get(1)->value, "a");
  EXPECT_EQ(server_.store().get(2)->value, "b");
}

TEST_F(ReplicaServerTest, StatisticsCount) {
  auto read = std::make_shared<ReadRequest>();
  read->op_id = 1;
  read->key = 0;
  deliver(std::move(read));
  auto version = std::make_shared<VersionRequest>();
  version->op_id = 2;
  version->key = 0;
  deliver(std::move(version));
  EXPECT_EQ(server_.reads_served(), 1u);
  EXPECT_EQ(server_.versions_served(), 1u);
  EXPECT_EQ(server_.messages_received(), 2u);
}

}  // namespace
}  // namespace atrcp
