#include "replica/store.hpp"

#include <gtest/gtest.h>

namespace atrcp {
namespace {

TEST(TimestampTest, PaperOrdering) {
  // Highest version wins; ties broken by LOWEST site id.
  EXPECT_TRUE(Timestamp({2, 5}).is_newer_than(Timestamp{1, 0}));
  EXPECT_FALSE(Timestamp({1, 0}).is_newer_than(Timestamp{2, 5}));
  EXPECT_TRUE(Timestamp({3, 1}).is_newer_than(Timestamp{3, 2}));
  EXPECT_FALSE(Timestamp({3, 2}).is_newer_than(Timestamp{3, 1}));
  // A timestamp is never newer than itself.
  EXPECT_FALSE(Timestamp({3, 1}).is_newer_than(Timestamp{3, 1}));
}

TEST(TimestampTest, InitialIsOlderThanAnyWrite) {
  EXPECT_TRUE(Timestamp({1, 99}).is_newer_than(kInitialTimestamp));
  EXPECT_FALSE(kInitialTimestamp.is_newer_than(Timestamp{1, 99}));
}

TEST(TimestampTest, ToString) {
  EXPECT_EQ(Timestamp({7, 3}).to_string(), "v7@3");
}

TEST(VersionedStoreTest, MissingKey) {
  VersionedStore store;
  EXPECT_FALSE(store.get(1).has_value());
  EXPECT_EQ(store.timestamp_of(1), kInitialTimestamp);
  EXPECT_EQ(store.size(), 0u);
}

TEST(VersionedStoreTest, ApplyAndGet) {
  VersionedStore store;
  EXPECT_TRUE(store.apply(1, "hello", Timestamp{1, 0}));
  const auto entry = store.get(1);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->value, "hello");
  EXPECT_EQ(entry->timestamp, (Timestamp{1, 0}));
  EXPECT_EQ(store.size(), 1u);
}

TEST(VersionedStoreTest, NewerVersionReplaces) {
  VersionedStore store;
  store.apply(1, "old", Timestamp{1, 0});
  EXPECT_TRUE(store.apply(1, "new", Timestamp{2, 0}));
  EXPECT_EQ(store.get(1)->value, "new");
}

TEST(VersionedStoreTest, StaleWriteIgnored) {
  VersionedStore store;
  store.apply(1, "current", Timestamp{5, 0});
  EXPECT_FALSE(store.apply(1, "stale", Timestamp{4, 0}));
  EXPECT_FALSE(store.apply(1, "same", Timestamp{5, 0}));  // not newer
  EXPECT_EQ(store.get(1)->value, "current");
}

TEST(VersionedStoreTest, SidTieBreakOnApply) {
  VersionedStore store;
  store.apply(1, "site3", Timestamp{5, 3});
  // Same version, lower sid: the paper says lower sid wins.
  EXPECT_TRUE(store.apply(1, "site1", Timestamp{5, 1}));
  EXPECT_EQ(store.get(1)->value, "site1");
  // Higher sid at same version loses.
  EXPECT_FALSE(store.apply(1, "site9", Timestamp{5, 9}));
}

TEST(VersionedStoreTest, ApplyIsIdempotentUnderReplay) {
  VersionedStore store;
  EXPECT_TRUE(store.apply(1, "v", Timestamp{3, 2}));
  EXPECT_FALSE(store.apply(1, "v", Timestamp{3, 2}));  // replayed message
  EXPECT_EQ(store.get(1)->value, "v");
}

TEST(VersionedStoreTest, KeysAreIndependent) {
  VersionedStore store;
  store.apply(1, "one", Timestamp{9, 0});
  store.apply(2, "two", Timestamp{1, 0});
  EXPECT_EQ(store.get(1)->value, "one");
  EXPECT_EQ(store.get(2)->value, "two");
  EXPECT_EQ(store.size(), 2u);
}

}  // namespace
}  // namespace atrcp
