#include "analysis/models.hpp"

#include <cmath>

#include "core/analysis.hpp"
#include "core/config.hpp"
#include "protocols/hqc.hpp"
#include "protocols/protocol.hpp"
#include "protocols/tree_quorum.hpp"

namespace atrcp {

namespace {

ConfigMetrics from_analysis(const ArbitraryAnalysis& analysis, double p) {
  ConfigMetrics m;
  m.n = analysis.replica_count();
  m.read_cost = analysis.read_cost();
  m.write_cost = analysis.write_cost_avg();
  m.read_load = analysis.read_load();
  m.write_load = analysis.write_load();
  m.read_availability = analysis.read_availability(p);
  m.write_availability = analysis.write_availability(p);
  m.expected_read_load = analysis.expected_read_load(p);
  m.expected_write_load = analysis.expected_write_load(p);
  return m;
}

ConfigMetrics from_protocol(const ReplicaControlProtocol& protocol, double p) {
  ConfigMetrics m;
  m.n = protocol.universe_size();
  m.read_cost = protocol.read_cost();
  m.write_cost = protocol.write_cost();
  m.read_load = protocol.read_load();
  m.write_load = protocol.write_load();
  m.read_availability = protocol.read_availability(p);
  m.write_availability = protocol.write_availability(p);
  m.expected_read_load =
      expected_read_load(m.read_availability, m.read_load);
  m.expected_write_load =
      expected_write_load(m.write_availability, m.write_load);
  return m;
}

}  // namespace

ConfigMetrics binary_metrics(std::size_t n_target, double p) {
  return from_protocol(TreeQuorum::for_at_least(n_target), p);
}

ConfigMetrics unmodified_metrics(std::size_t n_target, double p) {
  const TreeQuorum shape = TreeQuorum::for_at_least(n_target);
  return from_analysis(
      ArbitraryAnalysis(unmodified_tree(shape.height())), p);
}

ConfigMetrics arbitrary_metrics(std::size_t n, double p) {
  if (n > 32) {
    return from_analysis(ArbitraryAnalysis(recommended_tree(n)), p);
  }
  // Below the paper's recommended range: the closest spirit is a balanced
  // tree with about sqrt(n) physical levels.
  const auto levels = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::llround(std::sqrt(n))));
  return from_analysis(ArbitraryAnalysis(balanced_tree(n, levels)), p);
}

ConfigMetrics hqc_metrics(std::size_t n_target, double p) {
  return from_protocol(Hqc::for_at_least(n_target), p);
}

ConfigMetrics mostly_read_metrics(std::size_t n, double p) {
  return from_analysis(ArbitraryAnalysis(mostly_read_tree(n)), p);
}

ConfigMetrics mostly_write_metrics(std::size_t n, double p) {
  if (n < 3) n = 3;
  if (n % 2 == 0) ++n;  // the configuration is defined for odd n
  return from_analysis(ArbitraryAnalysis(mostly_write_tree(n)), p);
}

std::vector<ConfigModel> paper_configurations() {
  return {
      {"BINARY", binary_metrics},
      {"UNMODIFIED", unmodified_metrics},
      {"ARBITRARY", arbitrary_metrics},
      {"HQC", hqc_metrics},
      {"MOSTLY-READ", mostly_read_metrics},
      {"MOSTLY-WRITE", mostly_write_metrics},
  };
}

}  // namespace atrcp
