#include "analysis/empirical.hpp"

#include <stdexcept>

#include "quorum/availability.hpp"
#include "util/check.hpp"

namespace atrcp {

EmpiricalLoads empirical_loads(const ReplicaControlProtocol& protocol,
                               std::size_t samples, Rng& rng) {
  if (samples == 0) {
    throw std::invalid_argument("empirical_loads: samples must be > 0");
  }
  const std::size_t n = protocol.universe_size();
  const FailureSet none(n);
  std::vector<std::uint64_t> read_hits(n, 0);
  std::vector<std::uint64_t> write_hits(n, 0);
  for (std::size_t s = 0; s < samples; ++s) {
    const auto read_quorum = protocol.assemble_read_quorum(none, rng);
    ATRCP_CHECK(read_quorum.has_value());  // failure-free must succeed
    for (ReplicaId id : read_quorum->members()) ++read_hits[id];
    const auto write_quorum = protocol.assemble_write_quorum(none, rng);
    ATRCP_CHECK(write_quorum.has_value());
    for (ReplicaId id : write_quorum->members()) ++write_hits[id];
  }
  EmpiricalLoads loads;
  loads.read.resize(n);
  loads.write.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    loads.read[i] = static_cast<double>(read_hits[i]) / samples;
    loads.write[i] = static_cast<double>(write_hits[i]) / samples;
    loads.max_read = std::max(loads.max_read, loads.read[i]);
    loads.max_write = std::max(loads.max_write, loads.write[i]);
  }
  return loads;
}

MeasuredAvailability measured_availability(
    const ReplicaControlProtocol& protocol, double p, std::size_t trials,
    Rng& rng) {
  if (trials == 0) {
    throw std::invalid_argument("measured_availability: trials must be > 0");
  }
  const std::size_t n = protocol.universe_size();
  std::size_t read_ok = 0;
  std::size_t write_ok = 0;
  for (std::size_t t = 0; t < trials; ++t) {
    const FailureSet failures = sample_failures(n, p, rng);
    if (protocol.assemble_read_quorum(failures, rng)) ++read_ok;
    if (protocol.assemble_write_quorum(failures, rng)) ++write_ok;
  }
  return {static_cast<double>(read_ok) / trials,
          static_cast<double>(write_ok) / trials};
}

MeasuredCosts measured_costs(const ReplicaControlProtocol& protocol,
                             std::size_t samples, Rng& rng) {
  if (samples == 0) {
    throw std::invalid_argument("measured_costs: samples must be > 0");
  }
  const FailureSet none(protocol.universe_size());
  std::uint64_t read_total = 0;
  std::uint64_t write_total = 0;
  for (std::size_t s = 0; s < samples; ++s) {
    const auto read_quorum = protocol.assemble_read_quorum(none, rng);
    ATRCP_CHECK(read_quorum.has_value());
    read_total += read_quorum->size();
    const auto write_quorum = protocol.assemble_write_quorum(none, rng);
    ATRCP_CHECK(write_quorum.has_value());
    write_total += write_quorum->size();
  }
  return {static_cast<double>(read_total) / samples,
          static_cast<double>(write_total) / samples};
}

}  // namespace atrcp
