// Analytic models of the six configurations evaluated in §4 of the paper,
// evaluated at any replica count and availability probability — the data
// source for regenerating Figures 2, 3 and 4.
//
// Structured configurations (UNMODIFIED, ARBITRARY, MOSTLY-READ,
// MOSTLY-WRITE) compute their numbers from a real ArbitraryAnalysis of the
// tree the configuration would build; BINARY and HQC use the closed forms
// the paper itself uses ([2] §4 with f = 2/(2+h), [10] §§6.3-6.4, [8] §5),
// as implemented by the TreeQuorum and Hqc protocol classes.
//
// Discrete structures cannot hit every n exactly (BINARY needs 2^(h+1)-1,
// HQC needs 3^depth, MOSTLY-WRITE needs odd n); each model reports the n it
// actually used alongside its metrics.
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace atrcp {

struct ConfigMetrics {
  std::size_t n = 0;  ///< replica count actually realized (see header note)
  double read_cost = 0.0;
  double write_cost = 0.0;
  double read_load = 0.0;
  double write_load = 0.0;
  double read_availability = 0.0;
  double write_availability = 0.0;
  double expected_read_load = 0.0;
  double expected_write_load = 0.0;
};

/// §4 configuration 1 — Agrawal–El Abbadi on the smallest complete binary
/// tree with >= n_target replicas.
ConfigMetrics binary_metrics(std::size_t n_target, double p);

/// §4 configuration 2 — the arbitrary protocol applied, unmodified, to that
/// same complete binary tree (all nodes physical).
ConfigMetrics unmodified_metrics(std::size_t n_target, double p);

/// §4 configuration 3 — Algorithm 1 (n > 64) or the §3.3 recommended shape
/// (32 < n <= 64); below that a balanced sqrt(n)-level tree.
ConfigMetrics arbitrary_metrics(std::size_t n, double p);

/// §4 configuration 4 — Kumar's HQC on the smallest ternary hierarchy with
/// >= n_target leaf replicas.
ConfigMetrics hqc_metrics(std::size_t n_target, double p);

/// §4 configuration 5 — all n replicas in one physical level (ROWA-like).
ConfigMetrics mostly_read_metrics(std::size_t n, double p);

/// §4 configuration 6 — (n-1)/2 levels of two; n is rounded up to odd.
ConfigMetrics mostly_write_metrics(std::size_t n, double p);

/// A named configuration model: evaluate at (n, p).
struct ConfigModel {
  std::string name;
  std::function<ConfigMetrics(std::size_t, double)> at;
};

/// The six configurations in the paper's order: BINARY, UNMODIFIED,
/// ARBITRARY, HQC, MOSTLY-READ, MOSTLY-WRITE.
std::vector<ConfigModel> paper_configurations();

}  // namespace atrcp
