// Correlated-failure (zone) analysis — an operational question the paper's
// i.i.d. failure model cannot ask: replicas live in racks / availability
// zones that fail TOGETHER, and the placement of tree positions onto zones
// changes which operations a zone outage takes down.
//
// Two canonical placements for an arbitrary tree:
//  * aligned  — zone z hosts physical level z. A zone outage removes one
//    whole level: WRITES survive (other levels are intact), READS stall
//    (they need a member of every level).
//  * striped  — zones round-robin across each level. A zone outage removes
//    at most one replica per level: READS survive (d >= 2), WRITES stall
//    whenever every level lost someone.
// The placement is thus a second configuration dial, dual to the tree
// shape: align zones with levels for write-heavy systems, stripe them for
// read-heavy ones.
//
// Tools: deterministic single-zone-outage classification (exact) and
// Monte-Carlo availability under independent zone outages plus residual
// per-replica failures.
#pragma once

#include <cstdint>
#include <vector>

#include "core/tree.hpp"
#include "protocols/protocol.hpp"
#include "util/rng.hpp"

namespace atrcp {

/// zone_of[replica] = zone index in [0, zone_count).
struct ZoneAssignment {
  std::vector<std::uint32_t> zone_of;
  std::size_t zone_count = 0;
};

/// Zone z hosts physical level K_phy[z] (zone_count = |K_phy|).
ZoneAssignment aligned_zones(const ArbitraryTree& tree);

/// Round-robin within each level over `zones` zones.
ZoneAssignment striped_zones(const ArbitraryTree& tree, std::size_t zones);

/// Exact effect of failing exactly one zone (every zone tried in turn,
/// everything else alive): how many zones' outages block reads / writes.
struct SingleZoneEffect {
  std::size_t zones_blocking_reads = 0;
  std::size_t zones_blocking_writes = 0;
  std::size_t zone_count = 0;
};

SingleZoneEffect single_zone_effect(const ReplicaControlProtocol& protocol,
                                    const ZoneAssignment& assignment);

/// Monte-Carlo availability when each zone is independently up with
/// probability zone_p, and replicas in up zones are additionally alive
/// with probability replica_p (residual individual failures).
struct ZoneAvailability {
  double read = 0.0;
  double write = 0.0;
};

ZoneAvailability zone_availability(const ReplicaControlProtocol& protocol,
                                   const ZoneAssignment& assignment,
                                   double zone_p, double replica_p,
                                   std::size_t trials, Rng& rng);

}  // namespace atrcp
