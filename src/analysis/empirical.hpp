// Empirical cross-checks of the analytic models: run a protocol's actual
// quorum-assembly strategy and MEASURE what the formulas predict.
//
//  * empirical_loads       — sample quorums failure-free; per-replica hit
//    frequency converges to the strategy-induced load (Definition 2.5).
//  * measured_availability — sample i.i.d. failure configurations; the
//    fraction where assembly succeeds converges to the availability.
//  * measured_costs        — mean assembled quorum size, converging to the
//    communication cost.
//
// Used by tests (formula == behaviour) and by the empirical-load bench.
#pragma once

#include <cstddef>
#include <vector>

#include "protocols/protocol.hpp"
#include "util/rng.hpp"

namespace atrcp {

struct EmpiricalLoads {
  std::vector<double> read;   ///< per-replica read-op participation rate
  std::vector<double> write;  ///< per-replica write-op participation rate
  double max_read = 0.0;      ///< empirical read system load
  double max_write = 0.0;     ///< empirical write system load
};

/// Samples `samples` failure-free read quorums and write quorums.
EmpiricalLoads empirical_loads(const ReplicaControlProtocol& protocol,
                               std::size_t samples, Rng& rng);

struct MeasuredAvailability {
  double read = 0.0;
  double write = 0.0;
};

/// Monte-Carlo availability of live quorum assembly under i.i.d. failures.
MeasuredAvailability measured_availability(
    const ReplicaControlProtocol& protocol, double p, std::size_t trials,
    Rng& rng);

struct MeasuredCosts {
  double read = 0.0;   ///< mean read quorum size (failure-free)
  double write = 0.0;  ///< mean write quorum size (failure-free)
};

MeasuredCosts measured_costs(const ReplicaControlProtocol& protocol,
                             std::size_t samples, Rng& rng);

}  // namespace atrcp
