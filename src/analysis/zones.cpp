#include "analysis/zones.hpp"

#include <stdexcept>

#include "util/check.hpp"

namespace atrcp {

ZoneAssignment aligned_zones(const ArbitraryTree& tree) {
  ZoneAssignment assignment;
  assignment.zone_count = tree.physical_levels().size();
  assignment.zone_of.resize(tree.replica_count());
  std::uint32_t zone = 0;
  for (std::uint32_t level : tree.physical_levels()) {
    for (ReplicaId id : tree.replicas_at_level(level)) {
      assignment.zone_of[id] = zone;
    }
    ++zone;
  }
  return assignment;
}

ZoneAssignment striped_zones(const ArbitraryTree& tree, std::size_t zones) {
  if (zones == 0) throw std::invalid_argument("striped_zones: zero zones");
  ZoneAssignment assignment;
  assignment.zone_count = zones;
  assignment.zone_of.resize(tree.replica_count());
  for (std::uint32_t level : tree.physical_levels()) {
    std::uint32_t next = 0;
    for (ReplicaId id : tree.replicas_at_level(level)) {
      assignment.zone_of[id] = next;
      next = static_cast<std::uint32_t>((next + 1) % zones);
    }
  }
  return assignment;
}

namespace {

void validate(const ReplicaControlProtocol& protocol,
              const ZoneAssignment& assignment) {
  if (assignment.zone_of.size() != protocol.universe_size()) {
    throw std::invalid_argument("zones: assignment size != universe");
  }
  for (std::uint32_t zone : assignment.zone_of) {
    if (zone >= assignment.zone_count) {
      throw std::invalid_argument("zones: zone index out of range");
    }
  }
}

FailureSet fail_zone(const ZoneAssignment& assignment, std::uint32_t zone) {
  FailureSet failures(assignment.zone_of.size());
  for (std::size_t id = 0; id < assignment.zone_of.size(); ++id) {
    if (assignment.zone_of[id] == zone) {
      failures.fail(static_cast<ReplicaId>(id));
    }
  }
  return failures;
}

}  // namespace

SingleZoneEffect single_zone_effect(const ReplicaControlProtocol& protocol,
                                    const ZoneAssignment& assignment) {
  validate(protocol, assignment);
  SingleZoneEffect effect;
  effect.zone_count = assignment.zone_count;
  Rng rng(0x20ED);
  for (std::uint32_t zone = 0; zone < assignment.zone_count; ++zone) {
    const FailureSet failures = fail_zone(assignment, zone);
    if (!protocol.assemble_read_quorum(failures, rng)) {
      ++effect.zones_blocking_reads;
    }
    if (!protocol.assemble_write_quorum(failures, rng)) {
      ++effect.zones_blocking_writes;
    }
  }
  return effect;
}

ZoneAvailability zone_availability(const ReplicaControlProtocol& protocol,
                                   const ZoneAssignment& assignment,
                                   double zone_p, double replica_p,
                                   std::size_t trials, Rng& rng) {
  validate(protocol, assignment);
  if (trials == 0) {
    throw std::invalid_argument("zone_availability: trials must be > 0");
  }
  std::size_t read_ok = 0;
  std::size_t write_ok = 0;
  std::vector<bool> zone_up(assignment.zone_count);
  for (std::size_t t = 0; t < trials; ++t) {
    for (std::size_t z = 0; z < assignment.zone_count; ++z) {
      zone_up[z] = rng.chance(zone_p);
    }
    FailureSet failures(assignment.zone_of.size());
    for (std::size_t id = 0; id < assignment.zone_of.size(); ++id) {
      if (!zone_up[assignment.zone_of[id]] || !rng.chance(replica_p)) {
        failures.fail(static_cast<ReplicaId>(id));
      }
    }
    if (protocol.assemble_read_quorum(failures, rng)) ++read_ok;
    if (protocol.assemble_write_quorum(failures, rng)) ++write_ok;
  }
  return {static_cast<double>(read_ok) / trials,
          static_cast<double>(write_ok) / trials};
}

}  // namespace atrcp
