#include "reconfig/epoch.hpp"

#include <algorithm>
#include <iterator>

namespace atrcp {

OverlapProtocol::OverlapProtocol(const ReplicaControlProtocol& old_epoch,
                                 const ReplicaControlProtocol& new_epoch)
    : old_(old_epoch), new_(new_epoch) {}

std::string OverlapProtocol::name() const {
  return "OVERLAP(" + old_.name() + "->" + new_.name() + ")";
}

std::size_t OverlapProtocol::universe_size() const {
  return std::max(old_.universe_size(), new_.universe_size());
}

namespace {

/// Union of two sorted duplicate-free member lists.
Quorum merge(const Quorum& a, const Quorum& b) {
  std::vector<ReplicaId> members;
  members.reserve(a.size() + b.size());
  std::set_union(a.members().begin(), a.members().end(), b.members().begin(),
                 b.members().end(), std::back_inserter(members));
  return Quorum::from_sorted(std::move(members));
}

}  // namespace

std::optional<Quorum> OverlapProtocol::do_assemble_read_quorum(
    const FailureSet& failures, Rng& rng) const {
  // Old epoch first, always both (even if the first fails the second draw
  // happens), so the rng stream shape is independent of the failure set.
  const auto from_old = old_.assemble_read_quorum(failures, rng);
  const auto from_new = new_.assemble_read_quorum(failures, rng);
  if (!from_old || !from_new) return std::nullopt;
  return merge(*from_old, *from_new);
}

std::optional<Quorum> OverlapProtocol::do_assemble_write_quorum(
    const FailureSet& failures, Rng& rng) const {
  const auto from_old = old_.assemble_write_quorum(failures, rng);
  const auto from_new = new_.assemble_write_quorum(failures, rng);
  if (!from_old || !from_new) return std::nullopt;
  return merge(*from_old, *from_new);
}

double OverlapProtocol::read_cost() const {
  return old_.read_cost() + new_.read_cost();
}

double OverlapProtocol::write_cost() const {
  return old_.write_cost() + new_.write_cost();
}

double OverlapProtocol::read_availability(double p) const {
  return old_.read_availability(p) * new_.read_availability(p);
}

double OverlapProtocol::write_availability(double p) const {
  return old_.write_availability(p) * new_.write_availability(p);
}

double OverlapProtocol::read_load() const {
  return std::max(old_.read_load(), new_.read_load());
}

double OverlapProtocol::write_load() const {
  return std::max(old_.write_load(), new_.write_load());
}

}  // namespace atrcp
