#include "reconfig/manager.hpp"

#include <stdexcept>

#include "obs/event_bus.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace atrcp {

ReconfigManager::ReconfigManager(Network& network, Scheduler& scheduler,
                                 const ReplicaControlProtocol& initial,
                                 std::vector<SiteId> replica_sites, Rng rng,
                                 ReconfigOptions options)
    : network_(network),
      scheduler_(scheduler),
      replica_sites_(std::move(replica_sites)),
      rng_(rng),
      options_(options),
      current_(&initial) {
  if (initial.universe_size() > replica_sites_.size()) {
    throw std::invalid_argument(
        "ReconfigManager: initial protocol exceeds the physical pool");
  }
}

void ReconfigManager::set_metrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    transitions_obs_ = phase_changes_obs_ = retransmits_obs_ = crashes_obs_ =
        nullptr;
    return;
  }
  transitions_obs_ = &registry->counter("reconfig.transitions");
  phase_changes_obs_ = &registry->counter("reconfig.phase_changes");
  retransmits_obs_ = &registry->counter("reconfig.retransmits");
  crashes_obs_ = &registry->counter("reconfig.crashes");
}

const char* ReconfigManager::phase_name(Phase phase) {
  switch (phase) {
    case Phase::kStable: return "stable";
    case Phase::kPrepare: return "prepare";
    case Phase::kOverlap: return "overlap";
    case Phase::kSync: return "sync";
    case Phase::kCommit: return "commit";
    case Phase::kRetire: return "retire";
  }
  return "unknown";
}

void ReconfigManager::record(std::uint8_t kind, std::string label) {
  if (bus_ == nullptr) return;
  Event event;
  event.time = scheduler_.now();
  event.kind = static_cast<EventKind>(kind);
  event.site = site_;
  event.label = std::move(label);
  bus_->publish(std::move(event));
}

std::size_t ReconfigManager::live_views() const noexcept {
  std::size_t total = 0;
  for (const auto& [_, count] : live_) total += count;
  return total;
}

// -- EpochSource -------------------------------------------------------------

EpochView ReconfigManager::acquire_view() {
  EpochView view;
  switch (phase_) {
    case Phase::kStable:
    case Phase::kPrepare:
      view = {epoch_, false, current_};
      break;
    case Phase::kOverlap:
    case Phase::kSync:
      // The planted bug: broken overlap hands out the NEW epoch's rules
      // alone, dropping the quorum-of-both guarantee (and kSync is skipped
      // entirely — see maybe_advance).
      view = {epoch_ + 1, true,
              options_.broken_overlap
                  ? next_.get()
                  : static_cast<const ReplicaControlProtocol*>(overlap_.get())};
      break;
    case Phase::kCommit:
    case Phase::kRetire:
      view = {epoch_ + 1, false, next_.get()};
      break;
  }
  ++live_[rank(view)];
  return view;
}

void ReconfigManager::release_view(const EpochView& view) {
  const auto it = live_.find(rank(view));
  ATRCP_CHECK(it != live_.end() && it->second > 0);
  if (--it->second == 0) live_.erase(it);
  // Drain waits (kOverlap, kRetire) advance on releases; a crashed manager
  // acts on nothing until recover() re-checks.
  if (!crashed_ && active()) maybe_advance();
}

// -- transition driving ------------------------------------------------------

void ReconfigManager::start(std::unique_ptr<ReplicaControlProtocol> next,
                            DoneCallback done) {
  if (active()) {
    throw std::logic_error("ReconfigManager::start: transition in progress");
  }
  if (!next) {
    throw std::invalid_argument("ReconfigManager::start: null protocol");
  }
  if (next->universe_size() == 0 ||
      next->universe_size() > replica_sites_.size()) {
    throw std::invalid_argument(
        "ReconfigManager::start: target protocol exceeds the physical pool");
  }
  next_ = std::move(next);
  overlap_ = std::make_unique<OverlapProtocol>(*current_, *next_);
  done_ = std::move(done);
  enter(Phase::kPrepare);
  start_tick_chain();
}

void ReconfigManager::enter(Phase phase) {
  phase_ = phase;
  log_.push_back(LogEntry{phase, scheduler_.now(), false, false});
  if (phase_changes_obs_ != nullptr) phase_changes_obs_->inc();
  record(static_cast<std::uint8_t>(EventKind::kReconfigPhase),
         std::string(phase_name(phase)) + " epoch=" +
             std::to_string(epoch_ + 1));
  switch (phase) {
    case Phase::kPrepare:
      acked_.clear();
      drive();
      break;
    case Phase::kSync:
      sync_op_ = next_op_id_++;
      sync_installing_ = false;
      snapshot_from_.clear();
      merged_.clear();
      install_acked_.clear();
      drive();
      break;
    case Phase::kCommit:
      acked_.clear();
      drive();
      break;
    case Phase::kOverlap:
    case Phase::kRetire:
      // Drain-wait phases: no broadcast; the exit condition may already
      // hold (e.g. nothing was in flight).
      maybe_advance();
      break;
    case Phase::kStable:
      break;
  }
  // Phase-triggered crash injection for the explorer nemesis: one crash
  // per manager, crash_delay after the target phase is entered.
  if (options_.crash_phase == static_cast<int>(phase) && !crash_fired_) {
    crash_fired_ = true;
    scheduler_.schedule_after(options_.crash_delay, [this] { crash(); });
  }
}

void ReconfigManager::drive() {
  switch (phase_) {
    case Phase::kPrepare:
      for (SiteId target : replica_sites_) {
        if (acked_.count(target) != 0) continue;
        auto request = network_.make_body<EpochPrepareRequest>();
        request->epoch = epoch_ + 1;
        network_.send(site_, target, std::move(request));
      }
      break;
    case Phase::kSync:
      if (!sync_installing_) {
        for (SiteId target : replica_sites_) {
          if (snapshot_from_.count(target) != 0) continue;
          auto request = network_.make_body<SnapshotRequest>();
          request->op_id = sync_op_;
          network_.send(site_, target, std::move(request));
        }
      } else {
        for (std::size_t r = 0; r < next_->universe_size(); ++r) {
          const SiteId target = replica_sites_[r];
          if (install_acked_.count(target) != 0) continue;
          auto request = network_.make_body<SyncApplyRequest>();
          request->op_id = sync_op_;
          request->writes.reserve(merged_.size());
          for (const auto& [key, entry] : merged_) {
            request->writes.push_back(
                StagedWrite{key, entry.value, entry.timestamp});
          }
          network_.send(site_, target, std::move(request));
        }
      }
      break;
    case Phase::kCommit:
      for (SiteId target : replica_sites_) {
        if (acked_.count(target) != 0) continue;
        auto request = network_.make_body<EpochCommitRequest>();
        request->epoch = epoch_ + 1;
        network_.send(site_, target, std::move(request));
      }
      break;
    case Phase::kStable:
    case Phase::kOverlap:
    case Phase::kRetire:
      break;
  }
}

FailureSet ReconfigManager::not_in(const std::set<SiteId>& acked) const {
  FailureSet failures(replica_sites_.size());
  for (std::size_t r = 0; r < replica_sites_.size(); ++r) {
    if (acked.count(replica_sites_[r]) == 0) {
      failures.fail(static_cast<ReplicaId>(r));
    }
  }
  return failures;
}

bool ReconfigManager::covers_write_quorum(
    const ReplicaControlProtocol& protocol, const std::set<SiteId>& acked) {
  return protocol.assemble_write_quorum(not_in(acked), rng_).has_value();
}

bool ReconfigManager::covers_read_quorum(
    const ReplicaControlProtocol& protocol, const std::set<SiteId>& acked) {
  return protocol.assemble_read_quorum(not_in(acked), rng_).has_value();
}

void ReconfigManager::maybe_advance() {
  if (crashed_) return;
  switch (phase_) {
    case Phase::kPrepare:
      // The announcement must be durable at a write quorum of BOTH epochs
      // before any overlap view exists.
      if (covers_write_quorum(*current_, acked_) &&
          covers_write_quorum(*next_, acked_)) {
        enter(Phase::kOverlap);
      }
      break;
    case Phase::kOverlap:
      // All pure-old transactions must drain before state sync reads the
      // old epoch (their writes must be on old-epoch write quorums).
      if (live_.count(2 * epoch_) == 0) {
        enter(options_.broken_overlap ? Phase::kCommit : Phase::kSync);
      }
      break;
    case Phase::kSync:
      if (!sync_installing_) {
        // An old-epoch read quorum of snapshots has, by epoch e's
        // bicoterie property, seen every committed write.
        if (covers_read_quorum(*current_, snapshot_from_)) {
          sync_installing_ = true;
          sync_op_ = next_op_id_++;
          install_acked_.clear();
          drive();
        }
      } else if (covers_write_quorum(*next_, install_acked_)) {
        // Installed at a new-epoch write quorum: every new-epoch read
        // quorum now intersects a site holding the merged state.
        enter(Phase::kCommit);
      }
      break;
    case Phase::kCommit:
      if (covers_write_quorum(*next_, acked_)) enter(Phase::kRetire);
      break;
    case Phase::kRetire:
      // Overlap transactions still reference the union protocol; wait for
      // them before declaring the new epoch stable.
      if (live_.count(2 * (epoch_ + 1) - 1) == 0) finish_transition();
      break;
    case Phase::kStable:
      break;
  }
}

void ReconfigManager::finish_transition() {
  phase_ = Phase::kStable;
  epoch_ += 1;
  log_.push_back(LogEntry{Phase::kStable, scheduler_.now(), false, false});
  record(static_cast<std::uint8_t>(EventKind::kReconfigPhase),
         "stable epoch=" + std::to_string(epoch_));
  current_ = next_.get();
  // Old-epoch structures stay alive: coordinator-held spans/metrics and
  // any late messages can never dangle, at the cost of one retired
  // protocol per transition.
  graveyard_.push_back(std::move(overlap_));
  graveyard_.push_back(std::move(next_));
  acked_.clear();
  snapshot_from_.clear();
  merged_.clear();
  install_acked_.clear();
  sync_installing_ = false;
  ++completed_;
  if (transitions_obs_ != nullptr) transitions_obs_->inc();
  ++tick_generation_;  // end the retransmission chain
  if (done_) {
    DoneCallback done = std::move(done_);
    done_ = nullptr;
    done(true);
  }
}

void ReconfigManager::start_tick_chain() {
  ++tick_generation_;
  const std::uint64_t generation = tick_generation_;
  scheduler_.schedule_after(options_.retry_interval,
                            [this, generation] { tick(generation); });
}

void ReconfigManager::tick(std::uint64_t generation) {
  if (generation != tick_generation_ || !active() || crashed_) return;
  if (retransmits_obs_ != nullptr) retransmits_obs_->inc();
  drive();
  maybe_advance();
  if (generation != tick_generation_ || !active()) return;  // advanced to done
  scheduler_.schedule_after(options_.retry_interval,
                            [this, generation] { tick(generation); });
}

// -- crash model -------------------------------------------------------------

void ReconfigManager::crash() {
  if (!active() || crashed_) return;  // transition already finished
  crashed_ = true;
  if (crashes_obs_ != nullptr) crashes_obs_->inc();
  log_.push_back(LogEntry{phase_, scheduler_.now(), true, false});
  record(static_cast<std::uint8_t>(EventKind::kReconfigCrash),
         std::string("in ") + phase_name(phase_));
  ++tick_generation_;  // silence the retransmission chain
  scheduler_.schedule_after(options_.crash_downtime, [this] { recover(); });
}

void ReconfigManager::recover() {
  if (!crashed_) return;
  crashed_ = false;
  log_.push_back(LogEntry{phase_, scheduler_.now(), false, true});
  record(static_cast<std::uint8_t>(EventKind::kReconfigRecover),
         std::string("in ") + phase_name(phase_));
  // {phase, epoch, protocols} are the WAL; every ack set is volatile and
  // re-collected by re-driving the phase (all broadcasts are idempotent at
  // the replicas).
  acked_.clear();
  snapshot_from_.clear();
  merged_.clear();
  install_acked_.clear();
  sync_installing_ = false;
  if (phase_ == Phase::kSync) sync_op_ = next_op_id_++;
  drive();
  maybe_advance();
  if (active()) start_tick_chain();
}

// -- message handling --------------------------------------------------------

void ReconfigManager::on_message(const Message& message) {
  if (crashed_) return;  // a crashed manager hears nothing
  ATRCP_CHECK(message.body != nullptr);
  const MessageBody& body = *message.body;
  if (const auto* m = dynamic_cast<const EpochPrepareAck*>(&body)) {
    if (phase_ == Phase::kPrepare && m->epoch == epoch_ + 1) {
      acked_.insert(message.from);
      maybe_advance();
    }
  } else if (const auto* m = dynamic_cast<const SnapshotReply*>(&body)) {
    if (phase_ == Phase::kSync && !sync_installing_ &&
        m->op_id == sync_op_) {
      if (snapshot_from_.insert(message.from).second) {
        for (const StagedWrite& entry : m->entries) {
          const auto it = merged_.find(entry.key);
          if (it == merged_.end() ||
              entry.timestamp.is_newer_than(it->second.timestamp)) {
            merged_[entry.key] = VersionedValue{entry.value, entry.timestamp};
          }
        }
      }
      maybe_advance();
    }
  } else if (const auto* m = dynamic_cast<const SyncApplyAck*>(&body)) {
    if (phase_ == Phase::kSync && sync_installing_ &&
        m->op_id == sync_op_) {
      install_acked_.insert(message.from);
      maybe_advance();
    }
  } else if (const auto* m = dynamic_cast<const EpochCommitAck*>(&body)) {
    if (phase_ == Phase::kCommit && m->epoch == epoch_ + 1) {
      acked_.insert(message.from);
      maybe_advance();
    }
  }
  // Stale replies from superseded rounds are intentionally ignored.
}

}  // namespace atrcp
