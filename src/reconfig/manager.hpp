// Online tree reconfiguration — the epoch/view-change state machine that
// moves a running cluster from tree T_old (epoch e) to tree T_new (epoch
// e+1) without stopping the world. The full protocol spec, including the
// cross-epoch intersection invariant and its proof sketch, is
// docs/RECONFIG.md; this header is the implementation's contract.
//
// The manager is a network site (coordinator-driven, per-phase acks) and
// the cluster's EpochSource: every transaction captures an EpochView at
// begin and releases it at finish, and the release feed drives the drain
// waits below. Phases, in order:
//
//   kStable   — epoch e, views = (e, pure, P_old).
//   kPrepare  — EpochPrepare(e+1) broadcast; advance once the acked sites
//               satisfy a write quorum of BOTH epochs (so the announcement
//               intersects every future quorum of either epoch).
//   kOverlap  — new views are (e+1, overlap, P_old ∪ P_new): writes satisfy
//               both epochs' write rules, reads contain a read quorum of
//               each epoch. Advance once all pure-e transactions drained.
//   kSync     — state transfer: snapshot an old-epoch READ quorum (which,
//               by epoch e's bicoterie property, has seen every committed
//               write), merge the per-key latest (value, timestamp), and
//               install the merged state on a new-epoch WRITE quorum via
//               the timestamp-monotone store (idempotent, replay-safe).
//   kCommit   — new views are (e+1, pure, P_new); EpochCommit(e+1)
//               broadcast, advance on a new-epoch write quorum of acks.
//   kRetire   — wait for the overlap transactions to drain, then epoch
//               e+1 is the stable configuration and the done callback
//               fires. Old-epoch structures are kept alive (not freed) so
//               no component can dangle.
//
// Crash tolerance: {phase, epoch, protocols} model the manager's WAL;
// per-phase ack sets are volatile. crash() drops every in-flight ack and
// silences the manager; recover() clears the volatile sets and re-drives
// the current phase from its WAL entry. Every per-phase broadcast is
// idempotent at the replicas, so a crash at ANY phase boundary re-runs the
// phase safely (failure-mode table in docs/RECONFIG.md). Phase-triggered
// crash injection is built in (ReconfigOptions::crash_phase) for the
// explorer's reconfiguration nemesis.
//
// ReconfigOptions::broken_overlap plants the classic view-change bug for
// the checker teeth test: the overlap window uses ONLY the new epoch's
// quorum rules and the sync phase is skipped — pure-new reads can miss
// old-epoch writes, which the serializability/linearizability checker must
// flag with a minimized counterexample.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "reconfig/epoch.hpp"
#include "replica/messages.hpp"
#include "sim/network.hpp"
#include "sim/scheduler.hpp"

namespace atrcp {

class Counter;
class EventBus;
class MetricsRegistry;

struct ReconfigOptions {
  /// Per-phase retransmission period for the prepare/sync/commit
  /// broadcasts (drain waits are advanced by view releases, not ticks).
  SimTime retry_interval = 2'000;
  /// Planted teeth-test bug: overlap views use only the NEW epoch's quorum
  /// rules and state sync is skipped. See docs/RECONFIG.md §Teeth.
  bool broken_overlap = false;
  /// Crash injection for the explorer nemesis: crash the manager
  /// crash_delay after it enters the phase with this value (as
  /// ReconfigManager::Phase underlying value; -1 = never), recover after
  /// crash_downtime. Fires at most once per manager.
  int crash_phase = -1;
  SimTime crash_delay = 100;
  SimTime crash_downtime = 1'000;
};

class ReconfigManager final : public SiteHandler, public EpochSource {
 public:
  enum class Phase : std::uint8_t {
    kStable = 0,
    kPrepare = 1,
    kOverlap = 2,
    kSync = 3,
    kCommit = 4,
    kRetire = 5,
  };

  /// `initial` is epoch 0's protocol, owned by the caller and outliving the
  /// manager; `replica_sites[r]` hosts replica r of the physical pool.
  /// Every protocol handed to start() must fit the pool.
  ReconfigManager(Network& network, Scheduler& scheduler,
                  const ReplicaControlProtocol& initial,
                  std::vector<SiteId> replica_sites, Rng rng,
                  ReconfigOptions options = {});

  void set_site(SiteId site) noexcept { site_ = site; }
  SiteId site() const noexcept { return site_; }

  /// Attaches reconfiguration counters (nullptr detaches):
  /// reconfig.{transitions,phase_changes,retransmits,crashes}.
  void set_metrics(MetricsRegistry* registry);

  /// Attaches the flight recorder (nullptr detaches): phase transitions
  /// and manager crash/recovery publish kReconfig* events at this site.
  void set_event_bus(EventBus* bus) noexcept { bus_ = bus; }

  using DoneCallback = std::function<void(bool ok)>;

  /// Begins the transition to `next` (epoch()+1). Throws std::logic_error
  /// if a transition is already running, std::invalid_argument if `next`
  /// is null or exceeds the physical pool. `done` fires once, when the
  /// new epoch is stable.
  void start(std::unique_ptr<ReplicaControlProtocol> next,
             DoneCallback done = nullptr);

  Phase phase() const noexcept { return phase_; }
  bool active() const noexcept { return phase_ != Phase::kStable; }
  bool crashed() const noexcept { return crashed_; }
  std::uint64_t epoch() const noexcept { return epoch_; }
  std::uint64_t transitions_completed() const noexcept { return completed_; }

  /// The stable epoch's protocol (the NEW protocol after a transition).
  const ReplicaControlProtocol& current_protocol() const noexcept {
    return *current_;
  }

  /// Every phase entry (and the crash/recover pair when injected) with its
  /// sim time, across all transitions — the bench's phase-bucketing input.
  struct LogEntry {
    Phase phase = Phase::kStable;
    SimTime at = 0;
    bool crash = false;    ///< manager crashed at `at` (phase unchanged)
    bool recover = false;  ///< manager recovered at `at`
  };
  const std::vector<LogEntry>& transition_log() const noexcept {
    return log_;
  }

  /// Transactions currently holding a view, by view rank (diagnostics).
  std::size_t live_views() const noexcept;

  static const char* phase_name(Phase phase);

  // -- EpochSource -----------------------------------------------------------
  EpochView acquire_view() override;
  void release_view(const EpochView& view) override;

  void on_message(const Message& message) override;

 private:
  /// Total order over views: pure e < overlap e+1 < pure e+1. The checker
  /// validates that transaction begin order respects it.
  static std::uint64_t rank(const EpochView& view) noexcept {
    return 2 * view.epoch - (view.overlap ? 1 : 0);
  }

  void enter(Phase phase);
  void drive();          ///< (re)issue the current phase's broadcast
  void maybe_advance();  ///< check the current phase's exit condition
  void finish_transition();
  void tick(std::uint64_t generation);
  void start_tick_chain();
  void crash();
  void recover();
  void record(std::uint8_t kind, std::string label);

  /// True iff `acked` contains a write quorum of `protocol` — assembled by
  /// treating every replica whose site has not acked as failed.
  bool covers_write_quorum(const ReplicaControlProtocol& protocol,
                           const std::set<SiteId>& acked);
  bool covers_read_quorum(const ReplicaControlProtocol& protocol,
                          const std::set<SiteId>& acked);
  FailureSet not_in(const std::set<SiteId>& acked) const;

  Network& network_;
  Scheduler& scheduler_;
  std::vector<SiteId> replica_sites_;
  Rng rng_;
  ReconfigOptions options_;
  SiteId site_ = 0;
  EventBus* bus_ = nullptr;

  // Registry-owned counters; null while detached.
  Counter* transitions_obs_ = nullptr;
  Counter* phase_changes_obs_ = nullptr;
  Counter* retransmits_obs_ = nullptr;
  Counter* crashes_obs_ = nullptr;

  // -- WAL-modelled state (survives crashes) ---------------------------------
  Phase phase_ = Phase::kStable;
  std::uint64_t epoch_ = 0;
  const ReplicaControlProtocol* current_;           ///< stable epoch's protocol
  std::unique_ptr<ReplicaControlProtocol> next_;    ///< target, during a transition
  std::unique_ptr<OverlapProtocol> overlap_;        ///< union rule, during a transition
  /// Protocols from finished transitions, kept alive so coordinator-held
  /// views and metrics attachments can never dangle.
  std::vector<std::unique_ptr<ReplicaControlProtocol>> graveyard_;

  // -- volatile per-phase state (lost on crash) ------------------------------
  std::set<SiteId> acked_;          ///< kPrepare / kCommit ack collection
  OpId sync_op_ = 0;                ///< current snapshot / install round
  bool sync_installing_ = false;    ///< kSync sub-phase: snapshot vs install
  std::set<SiteId> snapshot_from_;  ///< sites whose snapshot arrived
  std::map<Key, VersionedValue> merged_;  ///< per-key latest across snapshots
  std::set<SiteId> install_acked_;

  bool crashed_ = false;
  bool crash_fired_ = false;
  std::uint64_t tick_generation_ = 0;
  DoneCallback done_;
  std::map<std::uint64_t, std::size_t> live_;  ///< view rank -> holders
  std::vector<LogEntry> log_;
  std::uint64_t completed_ = 0;
  OpId next_op_id_ = 1;
};

}  // namespace atrcp
