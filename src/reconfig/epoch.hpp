// Epoch views — the vocabulary of online reconfiguration (docs/RECONFIG.md).
//
// A configuration epoch is one tree shape: epoch e runs protocol P_e over
// replica ids [0, P_e.universe_size()) of the cluster's fixed physical site
// pool. A live reconfiguration moves the cluster from epoch e to e+1
// through an OVERLAP WINDOW during which every transaction's write quorum
// must satisfy BOTH epochs' write-quorum rules and every read quorum
// contains a full read quorum of each epoch (the quorum-of-both rule).
// OverlapProtocol implements exactly that window: its quorums are the union
// of one quorum from each epoch, so cross-epoch read/write intersection
// follows from either epoch's own bicoterie property — the invariant
// docs/RECONFIG.md states and proves.
//
// The transaction layer is epoch-agnostic: a coordinator asks its
// EpochSource for a view at transaction begin, runs every quorum assembly
// of that transaction against view.protocol, and releases the view when the
// transaction finishes. The ReconfigManager (reconfig/manager.hpp) is the
// production EpochSource; a null source (the default) pins the coordinator
// to its construction-time protocol with zero behavioural change.
#pragma once

#include <cstdint>
#include <memory>

#include "protocols/protocol.hpp"

namespace atrcp {

/// The configuration a transaction runs under, captured once at begin so a
/// transaction never straddles a view change mid-flight.
struct EpochView {
  /// Configuration epoch; overlap transactions are tagged with the NEW
  /// epoch (they already satisfy its quorum rules).
  std::uint64_t epoch = 0;
  /// True during the overlap window: quorums satisfy both epochs' rules.
  bool overlap = false;
  /// The protocol to assemble every quorum of this transaction from.
  const ReplicaControlProtocol* protocol = nullptr;
};

/// Hands out and reclaims per-transaction epoch views. acquire_view() is
/// called at transaction begin, release_view() exactly once when the
/// transaction finishes — the release feed is how the manager learns that
/// an epoch's in-flight transactions have drained.
class EpochSource {
 public:
  virtual ~EpochSource() = default;
  virtual EpochView acquire_view() = 0;
  virtual void release_view(const EpochView& view) = 0;
};

/// The overlap window's quorum rule: a read (write) quorum is the union of
/// one read (write) quorum from the old epoch and one from the new epoch,
/// or unavailable if either side is. Member ids live in the shared physical
/// pool, so the union is well-defined even when the epochs' universes
/// differ (add/remove sites).
///
/// Assembly delegates to the inner protocols' PUBLIC assemble_* calls, so
/// per-epoch quorum metrics keep recording during the window; the wrapper
/// itself is never attached to a registry. The analytic model is the
/// conservative composition: costs add, availabilities multiply
/// (independent sub-quorums), loads take the max of the two epochs.
class OverlapProtocol final : public ReplicaControlProtocol {
 public:
  /// Both protocols must outlive the wrapper (the manager owns all three).
  OverlapProtocol(const ReplicaControlProtocol& old_epoch,
                  const ReplicaControlProtocol& new_epoch);

  std::string name() const override;
  std::size_t universe_size() const override;

  double read_cost() const override;
  double write_cost() const override;
  double read_availability(double p) const override;
  double write_availability(double p) const override;
  double read_load() const override;
  double write_load() const override;

 protected:
  std::optional<Quorum> do_assemble_read_quorum(const FailureSet& failures,
                                                Rng& rng) const override;
  std::optional<Quorum> do_assemble_write_quorum(const FailureSet& failures,
                                                 Rng& rng) const override;

 private:
  const ReplicaControlProtocol& old_;
  const ReplicaControlProtocol& new_;
};

}  // namespace atrcp
