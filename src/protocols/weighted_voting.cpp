#include "protocols/weighted_voting.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/check.hpp"

namespace atrcp {

WeightedVoting::WeightedVoting(std::vector<std::uint32_t> votes,
                               std::uint64_t read_votes,
                               std::uint64_t write_votes)
    : votes_(std::move(votes)),
      read_votes_(read_votes),
      write_votes_(write_votes) {
  if (votes_.empty()) {
    throw std::invalid_argument("WeightedVoting: no replicas");
  }
  for (std::uint32_t v : votes_) {
    if (v == 0) throw std::invalid_argument("WeightedVoting: zero vote");
    total_ += v;
  }
  if (read_votes_ == 0 || write_votes_ == 0 || read_votes_ > total_ ||
      write_votes_ > total_) {
    throw std::invalid_argument("WeightedVoting: thresholds out of range");
  }
  if (read_votes_ + write_votes_ <= total_) {
    throw std::invalid_argument("WeightedVoting: need R + W > T");
  }
  if (2 * write_votes_ <= total_) {
    throw std::invalid_argument("WeightedVoting: need 2W > T");
  }
  read_cost_ = estimate_cost(read_votes_);
  write_cost_ = estimate_cost(write_votes_);
}

WeightedVoting WeightedVoting::majority(std::size_t n) {
  const std::uint64_t q = n / 2 + 1;
  return WeightedVoting(std::vector<std::uint32_t>(n, 1), q, q);
}

WeightedVoting WeightedVoting::rowa(std::size_t n) {
  return WeightedVoting(std::vector<std::uint32_t>(n, 1), 1, n);
}

std::optional<Quorum> WeightedVoting::assemble(std::uint64_t needed,
                                               const FailureSet& failures,
                                               Rng& rng) const {
  // Random permutation of the alive replicas, then take until the votes
  // suffice — the "random eligible set" strategy of the load analysis.
  // The alive list is cached per failure-pattern epoch; the permutation
  // runs on a reused scratch copy, keeping the rng stream and the
  // resulting quorum identical to the former rebuild-per-call path.
  if (cache_.epoch != failures.epoch()) {
    cache_.alive.clear();
    cache_.alive.reserve(votes_.size());
    for (std::size_t i = 0; i < votes_.size(); ++i) {
      const auto id = static_cast<ReplicaId>(i);
      if (failures.is_alive(id)) cache_.alive.push_back(id);
    }
    cache_.epoch = failures.epoch();
  }
  scratch_.assign(cache_.alive.begin(), cache_.alive.end());
  for (std::size_t i = 0; i + 1 < scratch_.size(); ++i) {
    const std::size_t j = i + rng.below(scratch_.size() - i);
    std::swap(scratch_[i], scratch_[j]);
  }
  std::vector<ReplicaId> members;
  members.reserve(scratch_.size());
  std::uint64_t gathered = 0;
  for (ReplicaId id : scratch_) {
    members.push_back(id);
    gathered += votes_[id];
    if (gathered >= needed) return Quorum(std::move(members));
  }
  return std::nullopt;
}

std::optional<Quorum> WeightedVoting::do_assemble_read_quorum(
    const FailureSet& failures, Rng& rng) const {
  return assemble(read_votes_, failures, rng);
}

std::optional<Quorum> WeightedVoting::do_assemble_write_quorum(
    const FailureSet& failures, Rng& rng) const {
  return assemble(write_votes_, failures, rng);
}

double WeightedVoting::availability(std::uint64_t needed, double p) const {
  // P(sum of alive votes >= needed): DP over replicas on the vote sum.
  std::vector<double> dist(total_ + 1, 0.0);
  dist[0] = 1.0;
  std::size_t reachable = 0;
  for (std::uint32_t v : votes_) {
    for (std::size_t s = std::min(reachable, static_cast<std::size_t>(total_));
         s + 1 > 0; --s) {
      const double mass = dist[s];
      if (mass == 0.0) continue;
      dist[s] = mass * (1.0 - p);
      dist[s + v] += mass * p;
    }
    reachable += v;
  }
  double available = 0.0;
  for (std::size_t s = needed; s <= total_; ++s) available += dist[s];
  return available;
}

double WeightedVoting::read_availability(double p) const {
  return availability(read_votes_, p);
}

double WeightedVoting::write_availability(double p) const {
  return availability(write_votes_, p);
}

double WeightedVoting::load(std::uint64_t needed) const {
  // Under the random-permutation strategy every replica's participation
  // probability is (approximately) the probability its prefix position
  // falls before the vote threshold; for unit votes this is exactly q/n.
  // We report the empirical participation rate of the heaviest replica,
  // measured on failure-free assemblies with a fixed seed.
  Rng rng(0x10AD ^ needed);
  const FailureSet none(votes_.size());
  std::vector<std::uint32_t> hits(votes_.size(), 0);
  constexpr int kSamples = 20000;
  for (int s = 0; s < kSamples; ++s) {
    const auto quorum = assemble(needed, none, rng);
    ATRCP_CHECK(quorum.has_value());
    for (ReplicaId id : quorum->members()) ++hits[id];
  }
  const auto peak = *std::max_element(hits.begin(), hits.end());
  return static_cast<double>(peak) / kSamples;
}

double WeightedVoting::read_load() const { return load(read_votes_); }

double WeightedVoting::write_load() const { return load(write_votes_); }

double WeightedVoting::estimate_cost(std::uint64_t needed) const {
  Rng rng(0xC057 ^ needed);
  const FailureSet none(votes_.size());
  std::uint64_t total_members = 0;
  constexpr int kSamples = 4000;
  for (int s = 0; s < kSamples; ++s) {
    const auto quorum = assemble(needed, none, rng);
    ATRCP_CHECK(quorum.has_value());
    total_members += quorum->size();
  }
  return static_cast<double>(total_members) / kSamples;
}

}  // namespace atrcp
