// Majority Quorum consensus (Thomas [13]).
//
// Read and write quorums are any floor(n/2)+1 replicas. For odd n this is
// the paper's (n+1)/2 cost for both operations; availability is the upper
// binomial tail; the optimal load is q/n (>= 1/2), attained by the uniform
// strategy over all C(n, q) majorities.
#pragma once

#include "protocols/protocol.hpp"

namespace atrcp {

class MajorityQuorum final : public ReplicaControlProtocol {
 public:
  /// Throws std::invalid_argument if n == 0.
  explicit MajorityQuorum(std::size_t n);

  std::string name() const override { return "MAJORITY"; }
  std::size_t universe_size() const override { return n_; }

  /// Size of every quorum: floor(n/2) + 1.
  std::size_t quorum_size() const noexcept { return n_ / 2 + 1; }

  std::optional<Quorum> do_assemble_read_quorum(const FailureSet& failures,
                                             Rng& rng) const override;
  std::optional<Quorum> do_assemble_write_quorum(const FailureSet& failures,
                                              Rng& rng) const override;

  double read_cost() const override {
    return static_cast<double>(quorum_size());
  }
  double write_cost() const override {
    return static_cast<double>(quorum_size());
  }
  double read_availability(double p) const override;
  double write_availability(double p) const override;
  double read_load() const override {
    return static_cast<double>(quorum_size()) / static_cast<double>(n_);
  }
  double write_load() const override { return read_load(); }

  bool supports_enumeration() const override { return true; }
  std::vector<Quorum> enumerate_read_quorums(std::size_t limit) const override;
  std::vector<Quorum> enumerate_write_quorums(std::size_t limit) const override;

 private:
  std::optional<Quorum> assemble(const FailureSet& failures, Rng& rng) const;

  std::size_t n_;
  /// Alive-replica list for the last failure pattern seen, keyed on
  /// FailureSet::epoch(); assemble() shuffles a reused scratch copy, so
  /// the former per-call universe rescan happens only when the pattern
  /// actually changes. Mutable because assembly is logically const; see
  /// ArbitraryProtocol::LevelCache for the ownership argument.
  struct AliveCache {
    std::uint64_t epoch = 0;  ///< 0 never matches (real epochs start at 1)
    std::vector<ReplicaId> alive;
  };
  mutable AliveCache cache_;
  mutable std::vector<ReplicaId> scratch_;
};

}  // namespace atrcp
