// The Grid protocol (Cheung, Ammar & Ahamad [4]) — related-work extension.
//
// The n = rows*cols replicas form a logical grid; replica id = r*cols + c.
//  * Read quorum: one replica from every column (size = cols).
//  * Write quorum: ALL replicas of one column plus one replica from every
//    other column (size = rows + cols - 1). Write quorums intersect each
//    other in the full column; read quorums hit every column so they
//    intersect every write quorum.
//
// Closed forms (columns fail independently):
//  * read availability:  (1 - (1-p)^rows)^cols
//  * write availability: (1-(1-p)^rows)^cols - (1-(1-p)^rows - p^rows)^cols
//    (every column non-empty, minus the event that no column is full)
//  * read load 1/rows; write load 1/cols + (cols-1)/(cols*rows) — the loads
//    induced by the uniform strategies (≈ 2/sqrt(n) on a square grid).
#pragma once

#include "protocols/protocol.hpp"

namespace atrcp {

class Grid final : public ReplicaControlProtocol {
 public:
  /// Throws std::invalid_argument if either dimension is zero.
  Grid(std::size_t rows, std::size_t cols);

  /// Most-square grid with rows*cols >= n_min.
  static Grid for_at_least(std::size_t n_min);

  std::string name() const override { return "GRID"; }
  std::size_t universe_size() const override { return rows_ * cols_; }
  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  std::optional<Quorum> do_assemble_read_quorum(const FailureSet& failures,
                                             Rng& rng) const override;
  std::optional<Quorum> do_assemble_write_quorum(const FailureSet& failures,
                                              Rng& rng) const override;

  double read_cost() const override { return static_cast<double>(cols_); }
  double write_cost() const override {
    return static_cast<double>(rows_ + cols_ - 1);
  }
  double read_availability(double p) const override;
  double write_availability(double p) const override;
  double read_load() const override { return 1.0 / static_cast<double>(rows_); }
  double write_load() const override;

 private:
  ReplicaId at(std::size_t row, std::size_t col) const noexcept {
    return static_cast<ReplicaId>(row * cols_ + col);
  }
  /// A uniformly random alive replica in `col`, or nullopt.
  std::optional<ReplicaId> pick_alive_in_column(std::size_t col,
                                                const FailureSet& failures,
                                                Rng& rng) const;

  std::size_t rows_;
  std::size_t cols_;
};

}  // namespace atrcp
