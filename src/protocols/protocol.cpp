#include "protocols/protocol.hpp"

#include <stdexcept>

namespace atrcp {

std::vector<Quorum> ReplicaControlProtocol::enumerate_read_quorums(
    std::size_t /*limit*/) const {
  throw std::logic_error(name() + ": quorum enumeration not supported");
}

std::vector<Quorum> ReplicaControlProtocol::enumerate_write_quorums(
    std::size_t /*limit*/) const {
  throw std::logic_error(name() + ": quorum enumeration not supported");
}

double expected_read_load(double read_availability, double read_load) {
  return read_availability * (read_load - 1.0) + 1.0;
}

double expected_write_load(double write_availability, double write_load) {
  return write_availability * write_load + (1.0 - write_availability) * 1.0;
}

}  // namespace atrcp
