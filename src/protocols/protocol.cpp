#include "protocols/protocol.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"

namespace atrcp {

std::optional<Quorum> ReplicaControlProtocol::assemble_read_quorum(
    const FailureSet& failures, Rng& rng) const {
  auto quorum = do_assemble_read_quorum(failures, rng);
  observe(read_obs_, quorum);
  return quorum;
}

std::optional<Quorum> ReplicaControlProtocol::assemble_write_quorum(
    const FailureSet& failures, Rng& rng) const {
  auto quorum = do_assemble_write_quorum(failures, rng);
  observe(write_obs_, quorum);
  return quorum;
}

void ReplicaControlProtocol::observe(
    QuorumObs& obs, const std::optional<Quorum>& quorum) const {
  if (obs.attempts == nullptr) return;
  obs.attempts->inc();
  if (quorum.has_value()) {
    obs.members->inc(quorum->size());
    if (obs.size_sketch != nullptr) obs.size_sketch->record(quorum->size());
    for (const ReplicaId r : quorum->members()) {
      if (r >= obs.site.size()) continue;
      Counter*& site = obs.site[r];
      if (site == nullptr) {
        // Above the eager threshold: this replica's first quorum
        // membership creates its load counter.
        site = &registry_->counter(obs.site_prefix + std::to_string(r));
      }
      site->inc();
    }
  } else {
    obs.failures->inc();
  }
}

void ReplicaControlProtocol::attach_metrics(MetricsRegistry& registry) {
  registry_ = &registry;
  const std::string prefix = "quorum." + name() + ".";
  read_obs_.attempts = &registry.counter(prefix + "read.attempts");
  read_obs_.failures = &registry.counter(prefix + "read.failures");
  read_obs_.members = &registry.counter(prefix + "read.members");
  write_obs_.attempts = &registry.counter(prefix + "write.attempts");
  write_obs_.failures = &registry.counter(prefix + "write.failures");
  write_obs_.members = &registry.counter(prefix + "write.members");
  read_obs_.size_sketch = &registry.qsketch(prefix + "read.size");
  write_obs_.size_sketch = &registry.qsketch(prefix + "write.size");
  read_obs_.site_prefix = prefix + "read.site.";
  write_obs_.site_prefix = prefix + "write.site.";
  const std::size_t n = universe_size();
  read_obs_.site.assign(n, nullptr);
  write_obs_.site.assign(n, nullptr);
  if (n <= kEagerSiteCounters) {
    for (std::size_t r = 0; r < n; ++r) {
      const std::string suffix = "site." + std::to_string(r);
      read_obs_.site[r] = &registry.counter(prefix + "read." + suffix);
      write_obs_.site[r] = &registry.counter(prefix + "write." + suffix);
    }
  }
}

void ReplicaControlProtocol::detach_metrics() noexcept {
  read_obs_ = QuorumObs{};
  write_obs_ = QuorumObs{};
  registry_ = nullptr;
}

std::vector<Quorum> ReplicaControlProtocol::enumerate_read_quorums(
    std::size_t /*limit*/) const {
  throw std::logic_error(name() + ": quorum enumeration not supported");
}

std::vector<Quorum> ReplicaControlProtocol::enumerate_write_quorums(
    std::size_t /*limit*/) const {
  throw std::logic_error(name() + ": quorum enumeration not supported");
}

double expected_read_load(double read_availability, double read_load) {
  return read_availability * (read_load - 1.0) + 1.0;
}

double expected_write_load(double write_availability, double write_load) {
  return write_availability * write_load + (1.0 - write_availability) * 1.0;
}

}  // namespace atrcp
