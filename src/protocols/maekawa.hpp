// Maekawa's sqrt(n) protocol [9] — related-work extension.
//
// The n = side*side replicas form a square grid; the quorum associated with
// site (r, c) is the union of row r and column c (size 2*side - 1). Any two
// quorums intersect (at the crossing cells), so reads and writes use the
// same quorum family. This is the grid instantiation of Maekawa's finite
// projective plane construction, the standard one used in practice.
//
//  * cost: 2*side - 1 ≈ 2*sqrt(n)
//  * load: (2*side - 1)/n ≈ 2/sqrt(n) (uniform strategy; each replica sits
//    in exactly 2*side - 1 of the n quorums)
//  * availability: a quorum for (r, c) exists iff row r and column c are
//    fully alive, so availability = P(∃ fully-alive row AND ∃ fully-alive
//    column). Computed EXACTLY by dynamic programming over row-survival
//    bitmasks for side <= 12, Monte-Carlo (fixed seed) beyond.
#pragma once

#include "protocols/protocol.hpp"

namespace atrcp {

class Maekawa final : public ReplicaControlProtocol {
 public:
  /// A side x side grid. Throws std::invalid_argument if side == 0.
  explicit Maekawa(std::size_t side);

  /// Smallest square grid with side^2 >= n_min.
  static Maekawa for_at_least(std::size_t n_min);

  std::string name() const override { return "MAEKAWA"; }
  std::size_t universe_size() const override { return side_ * side_; }
  std::size_t side() const noexcept { return side_; }

  std::optional<Quorum> do_assemble_read_quorum(const FailureSet& failures,
                                             Rng& rng) const override;
  std::optional<Quorum> do_assemble_write_quorum(const FailureSet& failures,
                                              Rng& rng) const override;

  double read_cost() const override {
    return static_cast<double>(2 * side_ - 1);
  }
  double write_cost() const override { return read_cost(); }
  double read_availability(double p) const override;
  double write_availability(double p) const override;
  double read_load() const override {
    return static_cast<double>(2 * side_ - 1) /
           static_cast<double>(side_ * side_);
  }
  double write_load() const override { return read_load(); }

  bool supports_enumeration() const override { return true; }
  std::vector<Quorum> enumerate_read_quorums(std::size_t limit) const override;
  std::vector<Quorum> enumerate_write_quorums(std::size_t limit) const override;

 private:
  ReplicaId at(std::size_t row, std::size_t col) const noexcept {
    return static_cast<ReplicaId>(row * side_ + col);
  }
  Quorum quorum_of(std::size_t row, std::size_t col) const;
  double exact_availability_dp(double p) const;

  std::size_t side_;
};

}  // namespace atrcp
