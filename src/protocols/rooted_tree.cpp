#include "protocols/rooted_tree.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/math.hpp"

namespace atrcp {

RootedTreeQuorum::RootedTreeQuorum(std::uint32_t branching,
                                   std::uint32_t height,
                                   std::uint32_t read_width,
                                   std::uint32_t write_width)
    : branching_(branching),
      height_(height),
      read_width_(read_width),
      write_width_(write_width) {
  if (branching == 0) {
    throw std::invalid_argument("RootedTreeQuorum: branching must be > 0");
  }
  if (read_width < 1 || read_width > branching || write_width < 1 ||
      write_width > branching) {
    throw std::invalid_argument("RootedTreeQuorum: widths out of range");
  }
  if (read_width + write_width <= branching) {
    throw std::invalid_argument("RootedTreeQuorum: need r + w > branching");
  }
  if (2 * write_width <= branching) {
    throw std::invalid_argument("RootedTreeQuorum: need 2w > branching");
  }
  // n = (branching^(height+1) - 1) / (branching - 1) for branching > 1.
  std::uint64_t width = 1;
  for (std::uint32_t level = 0; level <= height; ++level) {
    n_ += width;
    width *= branching;
    if (n_ > (1u << 26)) {
      throw std::invalid_argument("RootedTreeQuorum: tree too large");
    }
  }
}

RootedTreeQuorum RootedTreeQuorum::agrawal90(std::uint32_t d,
                                             std::uint32_t height) {
  return RootedTreeQuorum(2 * d + 1, height, d + 1, d + 1);
}

std::optional<std::vector<ReplicaId>> RootedTreeQuorum::read_rec(
    ReplicaId node, std::uint32_t level, const FailureSet& failures,
    Rng& rng) const {
  if (failures.is_alive(node)) return std::vector<ReplicaId>{node};
  if (level == height_) return std::nullopt;
  // Node down: collect read quorums from read_width children, visiting
  // them in random order and taking the first that succeed.
  std::vector<std::uint32_t> order(branching_);
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    const std::size_t j = i + rng.below(order.size() - i);
    std::swap(order[i], order[j]);
  }
  std::vector<ReplicaId> members;
  std::uint32_t got = 0;
  for (std::uint32_t c : order) {
    if (auto sub = read_rec(child(node, c), level + 1, failures, rng)) {
      members.insert(members.end(), sub->begin(), sub->end());
      if (++got == read_width_) return members;
    }
  }
  return std::nullopt;
}

std::optional<std::vector<ReplicaId>> RootedTreeQuorum::write_rec(
    ReplicaId node, std::uint32_t level, const FailureSet& failures,
    Rng& rng) const {
  if (failures.is_failed(node)) return std::nullopt;  // root of cone required
  std::vector<ReplicaId> members{node};
  if (level == height_) return members;
  std::vector<std::uint32_t> order(branching_);
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    const std::size_t j = i + rng.below(order.size() - i);
    std::swap(order[i], order[j]);
  }
  std::uint32_t got = 0;
  for (std::uint32_t c : order) {
    if (auto sub = write_rec(child(node, c), level + 1, failures, rng)) {
      members.insert(members.end(), sub->begin(), sub->end());
      if (++got == write_width_) return members;
    }
  }
  return std::nullopt;
}

std::optional<Quorum> RootedTreeQuorum::do_assemble_read_quorum(
    const FailureSet& failures, Rng& rng) const {
  auto members = read_rec(0, 0, failures, rng);
  if (!members) return std::nullopt;
  return Quorum(*std::move(members));
}

std::optional<Quorum> RootedTreeQuorum::do_assemble_write_quorum(
    const FailureSet& failures, Rng& rng) const {
  auto members = write_rec(0, 0, failures, rng);
  if (!members) return std::nullopt;
  return Quorum(*std::move(members));
}

double RootedTreeQuorum::write_cost() const {
  // Failure-free: the root plus write_width children recursively:
  // sum_{l=0..h} write_width^l.
  double cost = 0.0;
  double width = 1.0;
  for (std::uint32_t level = 0; level <= height_; ++level) {
    cost += width;
    width *= write_width_;
  }
  return cost;
}

std::size_t RootedTreeQuorum::max_read_cost() const {
  return pow_u64(read_width_, height_);
}

double RootedTreeQuorum::read_availability_rec(std::uint32_t level,
                                               double p) const {
  if (level == height_) return p;  // a leaf can only serve itself
  // Alive node serves directly; a dead node needs read quorums from at
  // least read_width of its children.
  const double child_ok = read_availability_rec(level + 1, p);
  double fallback = 0.0;
  for (std::uint32_t j = read_width_; j <= branching_; ++j) {
    fallback += static_cast<double>(binomial(branching_, j)) *
                std::pow(child_ok, j) *
                std::pow(1.0 - child_ok, branching_ - j);
  }
  return p + (1.0 - p) * fallback;
}

double RootedTreeQuorum::write_availability_rec(std::uint32_t level,
                                                double p) const {
  if (level == height_) return p;
  const double child_ok = write_availability_rec(level + 1, p);
  double children = 0.0;
  for (std::uint32_t j = write_width_; j <= branching_; ++j) {
    children += static_cast<double>(binomial(branching_, j)) *
                std::pow(child_ok, j) *
                std::pow(1.0 - child_ok, branching_ - j);
  }
  return p * children;  // the cone's root must itself be alive
}

double RootedTreeQuorum::read_availability(double p) const {
  return read_availability_rec(0, p);
}

double RootedTreeQuorum::write_availability(double p) const {
  return write_availability_rec(0, p);
}

}  // namespace atrcp
