// The common interface of every replica control protocol in this library —
// the paper's arbitrary protocol (src/core) and all baselines it is compared
// against (ROWA, Majority, Agrawal–El Abbadi tree quorum, Kumar's HQC, plus
// the Grid and Maekawa protocols mentioned in the paper's related work).
//
// A protocol provides two things:
//  1. Live quorum assembly — given the current failure set, produce a read
//     or write quorum consisting solely of alive replicas, or report that
//     the operation is unavailable. This is what the transaction layer
//     (src/txn) executes against the simulator.
//  2. An analytic model — closed-form communication cost, availability and
//     optimal system load, used by the figure-regeneration benches and
//     validated against live behaviour by the tests.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "quorum/types.hpp"
#include "util/rng.hpp"

namespace atrcp {

class Counter;
class MetricsRegistry;
class QuantileSketch;

class ReplicaControlProtocol {
 public:
  virtual ~ReplicaControlProtocol() = default;

  /// Human-readable protocol name, e.g. "ROWA" or "ARBITRARY".
  virtual std::string name() const = 0;

  /// Number of replicas n the protocol manages (ids [0, n)).
  virtual std::size_t universe_size() const = 0;

  /// Assemble a read quorum avoiding failed replicas. The rng drives the
  /// protocol's quorum-picking strategy (Definition 2.4); a deterministic
  /// seed yields a deterministic quorum. Returns nullopt if no read quorum
  /// can be formed under the given failures.
  ///
  /// Non-virtual: records attempt/failure/size counters when a registry is
  /// attached, then delegates to the protocol's do_assemble_read_quorum.
  std::optional<Quorum> assemble_read_quorum(const FailureSet& failures,
                                             Rng& rng) const;

  /// Assemble a write quorum avoiding failed replicas; nullopt if impossible.
  std::optional<Quorum> assemble_write_quorum(const FailureSet& failures,
                                              Rng& rng) const;

  /// Attach quorum observability. Every subsequent assemble_* call tallies
  /// into counters named "quorum.<name()>.<read|write>.{attempts,failures,
  /// members}" — members is the running sum of assembled quorum sizes, so
  /// members / (attempts - failures) is the measured mean quorum cost that
  /// the benches check against the analytic read_cost()/write_cost().
  /// Additionally one counter per replica, "quorum.<name()>.<read|write>.
  /// site.<r>", counts the quorums replica r participated in — the raw data
  /// behind the per-site load table (obs/site_load.hpp) that checks the
  /// paper's load claims (Facts 3.2.3/3.2.4). Per-site counters are created
  /// at attach time for universes up to kEagerSiteCounters, keeping registry
  /// contents seed-independent for every digest-pinned configuration; above
  /// the threshold a replica's counter appears on its first quorum
  /// membership (obs/site_load.hpp reads absent counters as 0), so a
  /// 65536-site universe never materializes 131072 idle counters. The
  /// registry must outlive the protocol (or detach_metrics first).
  void attach_metrics(MetricsRegistry& registry);
  void detach_metrics() noexcept;

  /// Universe-size bound under which attach_metrics is fully eager.
  static constexpr std::size_t kEagerSiteCounters = 256;

  // -- analytic model ------------------------------------------------------

  /// Typical (strategy-average) number of replicas contacted by a read.
  virtual double read_cost() const = 0;
  /// Typical (strategy-average) number of replicas contacted by a write.
  virtual double write_cost() const = 0;

  /// Probability a read quorum exists when replicas are i.i.d. alive w.p. p.
  virtual double read_availability(double p) const = 0;
  /// Probability a write quorum exists when replicas are i.i.d. alive w.p. p.
  virtual double write_availability(double p) const = 0;

  /// Optimal system load induced by reads (Definition 2.5 minimum).
  virtual double read_load() const = 0;
  /// Optimal system load induced by writes.
  virtual double write_load() const = 0;

  // -- optional quorum enumeration (test oracles, small systems) -----------

  /// Whether enumerate_*_quorums are implemented for this protocol.
  virtual bool supports_enumeration() const { return false; }

  /// All distinct read quorums, up to `limit` (throws std::length_error if
  /// more exist). Default implementation throws std::logic_error.
  virtual std::vector<Quorum> enumerate_read_quorums(std::size_t limit) const;

  /// All distinct write quorums, up to `limit`.
  virtual std::vector<Quorum> enumerate_write_quorums(std::size_t limit) const;

 protected:
  /// The protocol-specific quorum assembly the public wrappers instrument.
  virtual std::optional<Quorum> do_assemble_read_quorum(
      const FailureSet& failures, Rng& rng) const = 0;
  virtual std::optional<Quorum> do_assemble_write_quorum(
      const FailureSet& failures, Rng& rng) const = 0;

 private:
  /// Counters owned by the attached registry; null while detached.
  struct QuorumObs {
    Counter* attempts = nullptr;
    Counter* failures = nullptr;
    Counter* members = nullptr;
    /// Full distribution of assembled quorum sizes ("quorum.<name>.
    /// <read|write>.size") — the tail complement to the `members` mean.
    QuantileSketch* size_sketch = nullptr;
    /// One per replica id; site[r] counts quorums containing r. Slots are
    /// null until first use when the universe exceeds kEagerSiteCounters.
    std::vector<Counter*> site;
    /// "quorum.<name>.<read|write>.site." — for lazy counter creation.
    std::string site_prefix;
  };
  void observe(QuorumObs& obs, const std::optional<Quorum>& quorum) const;

  /// Mutable: observe() runs under the const assemble_* wrappers but may
  /// lazily create a per-site counter above the eager threshold.
  mutable QuorumObs read_obs_{};
  mutable QuorumObs write_obs_{};
  MetricsRegistry* registry_ = nullptr;
};

/// The paper's expected-load equations (Equation 3.2): what load the system
/// actually sees once unavailability forces fallback to the full universe.
///   E L_RD = RD_av(p) * (L_RD - 1) + 1
///   E L_WR = WR_av(p) * L_WR + (1 - WR_av(p)) * 1
double expected_read_load(double read_availability, double read_load);
double expected_write_load(double write_availability, double write_load);

}  // namespace atrcp
