#include "protocols/tree_quorum.hpp"

#include <cmath>
#include <stdexcept>

#include "util/check.hpp"
#include "util/math.hpp"

namespace atrcp {

TreeQuorum::TreeQuorum(std::uint32_t height)
    : height_(height), n_(pow_u64(2, height + 1) - 1) {
  if (height > 30) {
    throw std::invalid_argument("TreeQuorum: height too large");
  }
}

TreeQuorum TreeQuorum::for_at_least(std::size_t n_min) {
  std::uint32_t height = 0;
  while (pow_u64(2, height + 1) - 1 < n_min) ++height;
  return TreeQuorum(height);
}

std::optional<std::vector<ReplicaId>> TreeQuorum::assemble(
    ReplicaId node, const FailureSet& failures, Rng& rng) const {
  if (failures.is_alive(node)) {
    if (is_leaf(node)) return std::vector<ReplicaId>{node};
    // Alive interior node: continue the path through one child subtree,
    // trying the other if the first cannot produce a quorum.
    const bool left_first = rng.chance(0.5);
    const ReplicaId first = left_first ? left(node) : right(node);
    const ReplicaId second = left_first ? right(node) : left(node);
    if (auto q = assemble(first, failures, rng)) {
      q->push_back(node);
      return q;
    }
    if (auto q = assemble(second, failures, rng)) {
      q->push_back(node);
      return q;
    }
    return std::nullopt;
  }
  // Failed node: replace it by quorums of BOTH child subtrees.
  if (is_leaf(node)) return std::nullopt;
  auto lq = assemble(left(node), failures, rng);
  if (!lq) return std::nullopt;
  auto rq = assemble(right(node), failures, rng);
  if (!rq) return std::nullopt;
  lq->insert(lq->end(), rq->begin(), rq->end());
  return lq;
}

std::optional<Quorum> TreeQuorum::do_assemble_read_quorum(
    const FailureSet& failures, Rng& rng) const {
  auto members = assemble(0, failures, rng);
  if (!members) return std::nullopt;
  return Quorum(*std::move(members));
}

std::optional<Quorum> TreeQuorum::do_assemble_write_quorum(
    const FailureSet& failures, Rng& rng) const {
  return do_assemble_read_quorum(failures, rng);
}

double TreeQuorum::analytic_cost() const {
  // Paper §4.1: cost of [2] with f = 2/(2+h):
  //   (2^h (1+h)^h) / (h (2+h)^(h-1)) - 2/h.
  // Undefined at h = 0 (a single replica): cost is trivially 1 there.
  const double h = static_cast<double>(height_);
  if (height_ == 0) return 1.0;
  return (std::pow(2.0, h) * std::pow(1.0 + h, h)) /
             (h * std::pow(2.0 + h, h - 1.0)) -
         2.0 / h;
}

double TreeQuorum::read_availability(double p) const {
  // A(0) = p; A(k) = p(1-(1-A)^2) + (1-p)A^2: root alive needs a quorum in
  // at least one child subtree, root failed needs quorums in both.
  double a = p;
  for (std::uint32_t k = 1; k <= height_; ++k) {
    const double both_fail = (1.0 - a) * (1.0 - a);
    a = p * (1.0 - both_fail) + (1.0 - p) * a * a;
  }
  return a;
}

double TreeQuorum::write_availability(double p) const {
  return read_availability(p);
}

double TreeQuorum::read_load() const {
  // Naor–Wool [10] §6.3: optimal load of the tree protocol is 2/(h+2).
  return 2.0 / (static_cast<double>(height_) + 2.0);
}

void TreeQuorum::enumerate(ReplicaId node, std::vector<Quorum>& out,
                           std::size_t limit) const {
  // Quorums of the subtree rooted at `node`:
  //   {node} ∪ Q(child)  for each child-subtree quorum (path continuation),
  //   Q(left) ∪ Q(right) for each cross product (node replaced).
  if (is_leaf(node)) {
    out.push_back(Quorum{node});
    return;
  }
  std::vector<Quorum> lq;
  std::vector<Quorum> rq;
  enumerate(left(node), lq, limit);
  enumerate(right(node), rq, limit);
  for (const auto& side : {&lq, &rq}) {
    for (const Quorum& q : *side) {
      std::vector<ReplicaId> members(q.members().begin(), q.members().end());
      members.push_back(node);
      out.emplace_back(std::move(members));
      if (out.size() > limit) {
        throw std::length_error("TreeQuorum: quorum limit exceeded");
      }
    }
  }
  for (const Quorum& a : lq) {
    for (const Quorum& b : rq) {
      std::vector<ReplicaId> members(a.members().begin(), a.members().end());
      members.insert(members.end(), b.members().begin(), b.members().end());
      out.emplace_back(std::move(members));
      if (out.size() > limit) {
        throw std::length_error("TreeQuorum: quorum limit exceeded");
      }
    }
  }
}

std::vector<Quorum> TreeQuorum::enumerate_read_quorums(
    std::size_t limit) const {
  std::vector<Quorum> out;
  enumerate(0, out, limit);
  return out;
}

std::vector<Quorum> TreeQuorum::enumerate_write_quorums(
    std::size_t limit) const {
  return enumerate_read_quorums(limit);
}

}  // namespace atrcp
