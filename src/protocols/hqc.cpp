#include "protocols/hqc.hpp"

#include <array>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "util/math.hpp"

namespace atrcp {

Hqc::Hqc(std::uint32_t depth, std::uint32_t read_need, std::uint32_t write_need)
    : depth_(depth),
      read_need_(read_need),
      write_need_(write_need),
      n_(pow_u64(3, depth)) {
  if (depth > 16) throw std::invalid_argument("Hqc: depth too large");
  if (read_need < 1 || read_need > 3 || write_need < 1 || write_need > 3) {
    throw std::invalid_argument("Hqc: per-level quorums must be in [1,3]");
  }
  if (read_need + write_need <= 3) {
    throw std::invalid_argument("Hqc: read/write intersection needs r+w > 3");
  }
  if (2 * write_need <= 3) {
    throw std::invalid_argument("Hqc: write/write intersection needs 2w > 3");
  }
}

Hqc Hqc::for_at_least(std::size_t n_min) {
  std::uint32_t depth = 0;
  while (pow_u64(3, depth) < n_min) ++depth;
  return Hqc(depth);
}

std::optional<std::vector<ReplicaId>> Hqc::assemble(
    std::uint32_t level, std::size_t subtree, std::uint32_t need,
    const FailureSet& failures, Rng& rng) const {
  if (level == depth_) {
    const auto id = static_cast<ReplicaId>(subtree);
    if (failures.is_failed(id)) return std::nullopt;
    return std::vector<ReplicaId>{id};
  }
  // Visit the three children in random order, keeping the first `need`
  // that produce quorums — the uniform strategy the load analysis assumes.
  std::array<std::size_t, 3> order{3 * subtree, 3 * subtree + 1,
                                   3 * subtree + 2};
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    const std::size_t j = i + rng.below(order.size() - i);
    std::swap(order[i], order[j]);
  }
  std::vector<ReplicaId> members;
  std::uint32_t got = 0;
  for (std::size_t child : order) {
    if (auto q = assemble(level + 1, child, need, failures, rng)) {
      members.insert(members.end(), q->begin(), q->end());
      if (++got == need) return members;
    }
  }
  return std::nullopt;
}

std::optional<Quorum> Hqc::do_assemble_read_quorum(const FailureSet& failures,
                                                Rng& rng) const {
  auto members = assemble(0, 0, read_need_, failures, rng);
  if (!members) return std::nullopt;
  return Quorum(*std::move(members));
}

std::optional<Quorum> Hqc::do_assemble_write_quorum(const FailureSet& failures,
                                                 Rng& rng) const {
  auto members = assemble(0, 0, write_need_, failures, rng);
  if (!members) return std::nullopt;
  return Quorum(*std::move(members));
}

double Hqc::read_cost() const {
  return static_cast<double>(pow_u64(read_need_, depth_));
}

double Hqc::write_cost() const {
  return static_cast<double>(pow_u64(write_need_, depth_));
}

double Hqc::availability(double p, std::uint32_t need) const {
  // P(at least `need` of 3 children recursively available).
  double a = p;
  for (std::uint32_t k = 0; k < depth_; ++k) {
    double next = 0.0;
    for (std::uint32_t j = need; j <= 3; ++j) {
      next += static_cast<double>(binomial(3, j)) * std::pow(a, j) *
              std::pow(1.0 - a, 3 - j);
    }
    a = next;
  }
  return a;
}

double Hqc::read_availability(double p) const {
  return availability(p, read_need_);
}

double Hqc::write_availability(double p) const {
  return availability(p, write_need_);
}

double Hqc::read_load() const {
  return std::pow(static_cast<double>(read_need_) / 3.0,
                  static_cast<double>(depth_));
}

double Hqc::write_load() const {
  return std::pow(static_cast<double>(write_need_) / 3.0,
                  static_cast<double>(depth_));
}

void Hqc::enumerate(std::uint32_t level, std::size_t subtree,
                    std::uint32_t need, std::vector<Quorum>& out,
                    std::size_t limit) const {
  if (level == depth_) {
    out.push_back(Quorum{static_cast<ReplicaId>(subtree)});
    return;
  }
  std::array<std::vector<Quorum>, 3> child_quorums;
  for (std::size_t c = 0; c < 3; ++c) {
    enumerate(level + 1, 3 * subtree + c, need, child_quorums[c], limit);
  }
  // All ways to choose `need` children and one quorum from each.
  std::array<std::size_t, 3> pick{};
  for (std::size_t mask = 0; mask < 8; ++mask) {
    if (std::popcount(mask) != static_cast<int>(need)) continue;
    std::size_t chosen = 0;
    for (std::size_t c = 0; c < 3; ++c) {
      if (mask & (1u << c)) pick[chosen++] = c;
    }
    // Cartesian product over the chosen children's quorum lists.
    std::vector<std::size_t> idx(need, 0);
    while (true) {
      std::vector<ReplicaId> members;
      for (std::uint32_t k = 0; k < need; ++k) {
        const Quorum& q = child_quorums[pick[k]][idx[k]];
        members.insert(members.end(), q.members().begin(), q.members().end());
      }
      out.emplace_back(std::move(members));
      if (out.size() > limit) {
        throw std::length_error("Hqc: quorum limit exceeded");
      }
      std::size_t k = 0;
      while (k < need) {
        if (++idx[k] < child_quorums[pick[k]].size()) break;
        idx[k] = 0;
        ++k;
      }
      if (k == need) break;
    }
  }
}

std::vector<Quorum> Hqc::enumerate_read_quorums(std::size_t limit) const {
  std::vector<Quorum> out;
  enumerate(0, 0, read_need_, out, limit);
  return out;
}

std::vector<Quorum> Hqc::enumerate_write_quorums(std::size_t limit) const {
  std::vector<Quorum> out;
  enumerate(0, 0, write_need_, out, limit);
  return out;
}

}  // namespace atrcp
