// ReadOneWriteAll (Bernstein & Goodman [3]).
//
// Read quorum: any single replica. Write quorum: all n replicas.
// Costs 1 / n, read availability 1-(1-p)^n, write availability p^n,
// read load 1/n, write load 1. The paper's MOSTLY-READ configuration of the
// arbitrary protocol behaves exactly like this protocol.
#pragma once

#include "protocols/protocol.hpp"

namespace atrcp {

class Rowa final : public ReplicaControlProtocol {
 public:
  /// Throws std::invalid_argument if n == 0.
  explicit Rowa(std::size_t n);

  std::string name() const override { return "ROWA"; }
  std::size_t universe_size() const override { return n_; }

  std::optional<Quorum> do_assemble_read_quorum(const FailureSet& failures,
                                             Rng& rng) const override;
  std::optional<Quorum> do_assemble_write_quorum(const FailureSet& failures,
                                              Rng& rng) const override;

  double read_cost() const override { return 1.0; }
  double write_cost() const override { return static_cast<double>(n_); }
  double read_availability(double p) const override;
  double write_availability(double p) const override;
  double read_load() const override { return 1.0 / static_cast<double>(n_); }
  double write_load() const override { return 1.0; }

  bool supports_enumeration() const override { return true; }
  std::vector<Quorum> enumerate_read_quorums(std::size_t limit) const override;
  std::vector<Quorum> enumerate_write_quorums(std::size_t limit) const override;

 private:
  std::size_t n_;
};

}  // namespace atrcp
