// The rooted tree quorum protocol of Agrawal & El Abbadi [1] (VLDB '90),
// in the generalized form of Koch [7] — the paper's earliest related-work
// family, distinct from the 1991 "BINARY" protocol of [2].
//
// All nodes of a complete tree with `branching` children per node are
// replicas. Quorums are asymmetric:
//  * READ quorum of a subtree: the root of the subtree alone, OR read
//    quorums of `read_width` of its children (recursively). Best case a
//    read costs 1 (just the tree root) — at the price of loading it fully,
//    which is exactly the §1 criticism the arbitrary protocol answers.
//  * WRITE quorum of a subtree: the subtree's root AND write quorums of
//    `write_width` of its children — a rooted cone of depth h, cost
//    O(width^h) bounded below by the root on every path; the root is a
//    member of EVERY write quorum, so a root crash halts writes ([2] was
//    invented to fix precisely this).
// Intersection requires read_width + write_width > branching (a read's
// children and a write's children overlap at every level they both recurse
// into) — enforced at construction.
#pragma once

#include "protocols/protocol.hpp"

namespace atrcp {

class RootedTreeQuorum final : public ReplicaControlProtocol {
 public:
  /// Complete tree of the given branching factor and height; [1] uses
  /// branching = 2d+1 with read/write widths d+1 ("majority of children"),
  /// [7] uses branching = 3. Throws std::invalid_argument unless
  /// 1 <= widths <= branching and read_width + write_width > branching and
  /// 2 * write_width > branching.
  RootedTreeQuorum(std::uint32_t branching, std::uint32_t height,
                   std::uint32_t read_width, std::uint32_t write_width);

  /// [1]'s canonical instantiation: branching 2d+1, widths d+1.
  static RootedTreeQuorum agrawal90(std::uint32_t d, std::uint32_t height);

  std::string name() const override { return "ROOTED-TREE"; }
  std::size_t universe_size() const override { return n_; }
  std::uint32_t height() const noexcept { return height_; }

  std::optional<Quorum> do_assemble_read_quorum(const FailureSet& failures,
                                             Rng& rng) const override;
  std::optional<Quorum> do_assemble_write_quorum(const FailureSet& failures,
                                              Rng& rng) const override;

  /// Best-case read cost is 1 (the root). This reports the cost of the
  /// failure-free strategy, which always reads the root.
  double read_cost() const override { return 1.0; }
  /// Failure-free write cost: sum over levels of write_width^level.
  double write_cost() const override;

  double read_availability(double p) const override;
  double write_availability(double p) const override;

  /// The root is in the failure-free read quorum and in EVERY write
  /// quorum, so both loads are 1 — the motivating pathology (§1).
  double read_load() const override { return 1.0; }
  double write_load() const override { return 1.0; }

  /// Worst-case read cost: read_width^height (all the way to the leaves).
  std::size_t max_read_cost() const;

 private:
  std::optional<std::vector<ReplicaId>> read_rec(ReplicaId node,
                                                 std::uint32_t level,
                                                 const FailureSet& failures,
                                                 Rng& rng) const;
  std::optional<std::vector<ReplicaId>> write_rec(ReplicaId node,
                                                  std::uint32_t level,
                                                  const FailureSet& failures,
                                                  Rng& rng) const;
  double read_availability_rec(std::uint32_t level, double p) const;
  double write_availability_rec(std::uint32_t level, double p) const;

  ReplicaId child(ReplicaId node, std::uint32_t index) const noexcept {
    return node * branching_ + 1 + index;
  }

  std::uint32_t branching_;
  std::uint32_t height_;
  std::uint32_t read_width_;
  std::uint32_t write_width_;
  std::size_t n_ = 0;
};

}  // namespace atrcp
