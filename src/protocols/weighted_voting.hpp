// Weighted voting (Gifford '79; vote assignment per Garcia-Molina &
// Barbara [6], cited in the paper's related work).
//
// Every replica carries a vote weight; a read quorum is any set of replicas
// holding at least R votes, a write quorum any set with at least W votes,
// subject to R + W > T and 2W > T (T = total votes) so read/write and
// write/write quorums always intersect. Majority quorum is the special
// case of unit votes with R = W = floor(T/2) + 1; ROWA is R = 1, W = T.
//
// Assembly greedily takes the heaviest alive replicas first (fewest
// members contacted); the uniform-strategy load analysis instead assumes
// random eligible sets, so read_load()/write_load() report the standard
// vote-fraction bound votes_needed/T scaled by the weight profile — exact
// for unit votes, and validated against the LP in the tests for small
// weighted instances.
#pragma once

#include "protocols/protocol.hpp"

namespace atrcp {

class WeightedVoting final : public ReplicaControlProtocol {
 public:
  /// votes[i] is replica i's weight (>= 1). Throws std::invalid_argument
  /// on empty votes, zero weights, or quorum thresholds violating
  /// R + W > T or 2W > T.
  WeightedVoting(std::vector<std::uint32_t> votes, std::uint64_t read_votes,
                 std::uint64_t write_votes);

  /// Unit votes, majority thresholds — equivalent to MajorityQuorum(n).
  static WeightedVoting majority(std::size_t n);

  /// Unit votes, R = 1 / W = n — equivalent to ROWA.
  static WeightedVoting rowa(std::size_t n);

  std::string name() const override { return "WEIGHTED-VOTING"; }
  std::size_t universe_size() const override { return votes_.size(); }

  std::uint64_t total_votes() const noexcept { return total_; }
  std::uint64_t read_votes() const noexcept { return read_votes_; }
  std::uint64_t write_votes() const noexcept { return write_votes_; }
  const std::vector<std::uint32_t>& votes() const noexcept { return votes_; }

  std::optional<Quorum> do_assemble_read_quorum(const FailureSet& failures,
                                             Rng& rng) const override;
  std::optional<Quorum> do_assemble_write_quorum(const FailureSet& failures,
                                              Rng& rng) const override;

  /// Expected members contacted by the greedy random assembly, estimated
  /// once at construction by sampling (deterministic seed).
  double read_cost() const override { return read_cost_; }
  double write_cost() const override { return write_cost_; }

  /// Probability that alive replicas muster the required votes (exact:
  /// dynamic program over the vote distribution).
  double read_availability(double p) const override;
  double write_availability(double p) const override;

  /// Load of the vote-proportional strategy: a replica's participation
  /// rate approaches votes_needed/T weighted by its share, maximized by
  /// the heaviest replica: min(1, max_votes * ceil-fraction). For unit
  /// votes this reduces to the exact q/n.
  double read_load() const override;
  double write_load() const override;

 private:
  std::optional<Quorum> assemble(std::uint64_t needed,
                                 const FailureSet& failures, Rng& rng) const;
  double availability(std::uint64_t needed, double p) const;
  double load(std::uint64_t needed) const;
  double estimate_cost(std::uint64_t needed) const;

  /// Alive-replica list for the last failure pattern seen, keyed on
  /// FailureSet::epoch(); assemble() permutes a reused scratch copy, so
  /// the former per-call universe rescan happens only when the pattern
  /// actually changes. Mutable because assembly is logically const; see
  /// ArbitraryProtocol::LevelCache for the ownership argument.
  struct AliveCache {
    std::uint64_t epoch = 0;  ///< 0 never matches (real epochs start at 1)
    std::vector<ReplicaId> alive;
  };
  mutable AliveCache cache_;
  mutable std::vector<ReplicaId> scratch_;

  std::vector<std::uint32_t> votes_;
  std::uint64_t total_ = 0;
  std::uint64_t read_votes_ = 0;
  std::uint64_t write_votes_ = 0;
  double read_cost_ = 0.0;
  double write_cost_ = 0.0;
};

}  // namespace atrcp
