#include "protocols/rowa.hpp"

#include <cmath>
#include <stdexcept>

namespace atrcp {

Rowa::Rowa(std::size_t n) : n_(n) {
  if (n == 0) throw std::invalid_argument("Rowa: n must be > 0");
}

std::optional<Quorum> Rowa::do_assemble_read_quorum(const FailureSet& failures,
                                                 Rng& rng) const {
  // Uniform strategy over the n singleton read quorums: pick a random alive
  // replica. Start from a random offset so load spreads evenly.
  const std::size_t start = rng.below(n_);
  for (std::size_t k = 0; k < n_; ++k) {
    const auto id = static_cast<ReplicaId>((start + k) % n_);
    if (failures.is_alive(id)) return Quorum{id};
  }
  return std::nullopt;
}

std::optional<Quorum> Rowa::do_assemble_write_quorum(const FailureSet& failures,
                                                  Rng& /*rng*/) const {
  // Everyone, or nobody: a single failed replica kills the write quorum,
  // and failed_count() is O(1), so probe it before materializing anything.
  if (failures.failed_count() != 0) {
    for (std::size_t i = 0; i < n_; ++i) {
      if (failures.is_failed(static_cast<ReplicaId>(i))) return std::nullopt;
    }
  }
  std::vector<ReplicaId> all;
  all.reserve(n_);
  for (std::size_t i = 0; i < n_; ++i) all.push_back(static_cast<ReplicaId>(i));
  return Quorum::from_sorted(std::move(all));
}

double Rowa::read_availability(double p) const {
  return 1.0 - std::pow(1.0 - p, static_cast<double>(n_));
}

double Rowa::write_availability(double p) const {
  return std::pow(p, static_cast<double>(n_));
}

std::vector<Quorum> Rowa::enumerate_read_quorums(std::size_t limit) const {
  if (n_ > limit) throw std::length_error("Rowa: read quorum limit exceeded");
  std::vector<Quorum> out;
  out.reserve(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    out.push_back(Quorum{static_cast<ReplicaId>(i)});
  }
  return out;
}

std::vector<Quorum> Rowa::enumerate_write_quorums(std::size_t limit) const {
  if (limit < 1) throw std::length_error("Rowa: write quorum limit exceeded");
  std::vector<ReplicaId> all;
  all.reserve(n_);
  for (std::size_t i = 0; i < n_; ++i) all.push_back(static_cast<ReplicaId>(i));
  return {Quorum::from_sorted(std::move(all))};
}

}  // namespace atrcp
