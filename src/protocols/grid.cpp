#include "protocols/grid.hpp"

#include <cmath>
#include <stdexcept>

#include "util/math.hpp"

namespace atrcp {

Grid::Grid(std::size_t rows, std::size_t cols) : rows_(rows), cols_(cols) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("Grid: dimensions must be positive");
  }
}

Grid Grid::for_at_least(std::size_t n_min) {
  const std::size_t side = isqrt(n_min);
  if (side * side >= n_min) return Grid(side, side);
  if (side * (side + 1) >= n_min) return Grid(side, side + 1);
  return Grid(side + 1, side + 1);
}

std::optional<ReplicaId> Grid::pick_alive_in_column(
    std::size_t col, const FailureSet& failures, Rng& rng) const {
  const std::size_t start = rng.below(rows_);
  for (std::size_t k = 0; k < rows_; ++k) {
    const ReplicaId id = at((start + k) % rows_, col);
    if (failures.is_alive(id)) return id;
  }
  return std::nullopt;
}

std::optional<Quorum> Grid::do_assemble_read_quorum(const FailureSet& failures,
                                                 Rng& rng) const {
  std::vector<ReplicaId> members;
  members.reserve(cols_);
  for (std::size_t c = 0; c < cols_; ++c) {
    const auto pick = pick_alive_in_column(c, failures, rng);
    if (!pick) return std::nullopt;
    members.push_back(*pick);
  }
  return Quorum(std::move(members));
}

std::optional<Quorum> Grid::do_assemble_write_quorum(const FailureSet& failures,
                                                  Rng& rng) const {
  // Find a fully-alive column, starting the scan at a random offset so the
  // uniform column strategy is realized.
  const std::size_t start = rng.below(cols_);
  std::size_t full_col = cols_;
  for (std::size_t k = 0; k < cols_; ++k) {
    const std::size_t c = (start + k) % cols_;
    bool full = true;
    for (std::size_t r = 0; r < rows_; ++r) {
      if (failures.is_failed(at(r, c))) {
        full = false;
        break;
      }
    }
    if (full) {
      full_col = c;
      break;
    }
  }
  if (full_col == cols_) return std::nullopt;

  std::vector<ReplicaId> members;
  members.reserve(rows_ + cols_ - 1);
  for (std::size_t r = 0; r < rows_; ++r) members.push_back(at(r, full_col));
  for (std::size_t c = 0; c < cols_; ++c) {
    if (c == full_col) continue;
    const auto pick = pick_alive_in_column(c, failures, rng);
    if (!pick) return std::nullopt;
    members.push_back(*pick);
  }
  return Quorum(std::move(members));
}

double Grid::read_availability(double p) const {
  const double col_ok = 1.0 - std::pow(1.0 - p, static_cast<double>(rows_));
  return std::pow(col_ok, static_cast<double>(cols_));
}

double Grid::write_availability(double p) const {
  const double col_nonempty =
      1.0 - std::pow(1.0 - p, static_cast<double>(rows_));
  const double col_full = std::pow(p, static_cast<double>(rows_));
  const double all_nonempty =
      std::pow(col_nonempty, static_cast<double>(cols_));
  const double all_nonempty_none_full =
      std::pow(std::max(col_nonempty - col_full, 0.0),
               static_cast<double>(cols_));
  return all_nonempty - all_nonempty_none_full;
}

double Grid::write_load() const {
  // Uniform full-column choice plus uniform picks in the other columns.
  const double r = static_cast<double>(rows_);
  const double c = static_cast<double>(cols_);
  return 1.0 / c + (c - 1.0) / (c * r);
}

}  // namespace atrcp
