// The tree quorum protocol of Agrawal & El Abbadi [2] on a complete binary
// tree — the paper's "BINARY" baseline configuration.
//
// All n = 2^(h+1) - 1 nodes are replicas, laid out in heap order (replica 0
// is the root, children of i are 2i+1 and 2i+2). A quorum is, ideally, a
// root-to-leaf path (cost h+1 = log2(n+1)); any inaccessible node on the
// path is replaced by paths from BOTH of its children to leaves, degrading
// gracefully up to a majority-sized quorum of (n+1)/2 in the worst case.
// Reads and writes use the same quorums (the protocol was proposed for
// mutual exclusion; the paper evaluates it symmetrically).
//
// Analytic model used by the figure benches, exactly as the paper states:
//  * cost:  (2^h (1+h)^h) / (h (2+h)^(h-1)) - 2/h, with f = 2/(2+h) the
//    fraction of quorums through the root ([2] §4 / paper §4.1).
//  * load:  2/(h+2) = 2/(log2(n+1)+1), per Naor–Wool [10] §6.3.
//  * availability: the standard recursion
//    A(0) = p, A(k) = p(1-(1-A(k-1))^2) + (1-p)A(k-1)^2.
#pragma once

#include "protocols/protocol.hpp"

namespace atrcp {

class TreeQuorum final : public ReplicaControlProtocol {
 public:
  /// Builds the protocol for a complete binary tree of the given height;
  /// height 0 is a single replica. n = 2^(height+1) - 1.
  explicit TreeQuorum(std::uint32_t height);

  /// Convenience: smallest complete binary tree with >= n_min replicas.
  static TreeQuorum for_at_least(std::size_t n_min);

  std::string name() const override { return "BINARY"; }
  std::size_t universe_size() const override { return n_; }
  std::uint32_t height() const noexcept { return height_; }

  std::optional<Quorum> do_assemble_read_quorum(const FailureSet& failures,
                                             Rng& rng) const override;
  std::optional<Quorum> do_assemble_write_quorum(const FailureSet& failures,
                                              Rng& rng) const override;

  double read_cost() const override { return analytic_cost(); }
  double write_cost() const override { return analytic_cost(); }
  double read_availability(double p) const override;
  double write_availability(double p) const override;
  double read_load() const override;
  double write_load() const override { return read_load(); }

  /// Best case: a failure-free root-to-leaf path, log2(n+1) replicas.
  std::size_t min_quorum_size() const noexcept { return height_ + 1; }
  /// Worst case: (n+1)/2 replicas (all leaves).
  std::size_t max_quorum_size() const noexcept { return (n_ + 1) / 2; }

  bool supports_enumeration() const override { return true; }
  std::vector<Quorum> enumerate_read_quorums(std::size_t limit) const override;
  std::vector<Quorum> enumerate_write_quorums(std::size_t limit) const override;

 private:
  double analytic_cost() const;
  std::optional<std::vector<ReplicaId>> assemble(ReplicaId node,
                                                 const FailureSet& failures,
                                                 Rng& rng) const;
  void enumerate(ReplicaId node, std::vector<Quorum>& out,
                 std::size_t limit) const;

  bool is_leaf(ReplicaId node) const noexcept {
    return 2 * static_cast<std::size_t>(node) + 1 >= n_;
  }
  static ReplicaId left(ReplicaId node) noexcept { return 2 * node + 1; }
  static ReplicaId right(ReplicaId node) noexcept { return 2 * node + 2; }

  std::uint32_t height_;
  std::size_t n_;
};

}  // namespace atrcp
