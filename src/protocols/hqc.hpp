// Hierarchical Quorum Consensus (Kumar [8]) — the paper's "HQC" baseline.
//
// The n = 3^depth replicas are the LEAVES of a complete ternary tree; the
// interior nodes are purely logical (the idea the arbitrary protocol
// generalizes). A quorum at an interior node is obtained by recursively
// assembling quorums at `need` of its 3 children (Kumar's r = w = 2
// instantiation, which the paper evaluates). This yields quorums of size
// 2^depth = n^log3(2) ≈ n^0.63 and an optimal load of (2/3)^depth ≈ n^-0.37
// (Naor–Wool [10] §6.4), with the availability recursion
//   A(0) = p,  A(k+1) = 3 A(k)^2 (1 - A(k)) + A(k)^3.
//
// The general Kumar scheme allows per-level read quorum r and write quorum
// w with r + w > 3 and 2w > 3; we support it (read_need / write_need) and
// default to the symmetric 2/2 the paper uses.
#pragma once

#include "protocols/protocol.hpp"

namespace atrcp {

class Hqc final : public ReplicaControlProtocol {
 public:
  /// A hierarchy `depth` levels deep over n = 3^depth leaf replicas.
  /// read_need + write_need must exceed 3 (read/write intersection) and
  /// 2*write_need must exceed 3 (write/write intersection); both in [1,3].
  /// Throws std::invalid_argument otherwise.
  explicit Hqc(std::uint32_t depth, std::uint32_t read_need = 2,
               std::uint32_t write_need = 2);

  /// Smallest hierarchy with at least n_min replicas (r = w = 2).
  static Hqc for_at_least(std::size_t n_min);

  std::string name() const override { return "HQC"; }
  std::size_t universe_size() const override { return n_; }
  std::uint32_t depth() const noexcept { return depth_; }

  std::optional<Quorum> do_assemble_read_quorum(const FailureSet& failures,
                                             Rng& rng) const override;
  std::optional<Quorum> do_assemble_write_quorum(const FailureSet& failures,
                                              Rng& rng) const override;

  /// Quorum sizes are exactly need^depth (n^0.63 for need = 2).
  double read_cost() const override;
  double write_cost() const override;
  double read_availability(double p) const override;
  double write_availability(double p) const override;
  /// Optimal load (need/3)^depth — n^-0.37 for need = 2, per [10] §6.4.
  double read_load() const override;
  double write_load() const override;

  bool supports_enumeration() const override { return true; }
  std::vector<Quorum> enumerate_read_quorums(std::size_t limit) const override;
  std::vector<Quorum> enumerate_write_quorums(std::size_t limit) const override;

 private:
  std::optional<std::vector<ReplicaId>> assemble(std::uint32_t level,
                                                 std::size_t subtree,
                                                 std::uint32_t need,
                                                 const FailureSet& failures,
                                                 Rng& rng) const;
  void enumerate(std::uint32_t level, std::size_t subtree, std::uint32_t need,
                 std::vector<Quorum>& out, std::size_t limit) const;
  double availability(double p, std::uint32_t need) const;

  std::uint32_t depth_;
  std::uint32_t read_need_;
  std::uint32_t write_need_;
  std::size_t n_;
};

}  // namespace atrcp
