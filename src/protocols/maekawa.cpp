#include "protocols/maekawa.hpp"

#include <array>
#include <bit>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "quorum/availability.hpp"
#include "util/math.hpp"

namespace atrcp {

Maekawa::Maekawa(std::size_t side) : side_(side) {
  if (side == 0) throw std::invalid_argument("Maekawa: side must be > 0");
}

Maekawa Maekawa::for_at_least(std::size_t n_min) {
  std::size_t side = isqrt(n_min);
  if (side * side < n_min) ++side;
  return Maekawa(side);
}

Quorum Maekawa::quorum_of(std::size_t row, std::size_t col) const {
  std::vector<ReplicaId> members;
  members.reserve(2 * side_ - 1);
  for (std::size_t c = 0; c < side_; ++c) members.push_back(at(row, c));
  for (std::size_t r = 0; r < side_; ++r) {
    if (r != row) members.push_back(at(r, col));
  }
  return Quorum(std::move(members));
}

std::optional<Quorum> Maekawa::do_assemble_read_quorum(const FailureSet& failures,
                                                    Rng& rng) const {
  // A quorum exists iff some row AND some column are fully alive; scan from
  // random offsets so the uniform site strategy is realized in expectation.
  std::size_t alive_row = side_;
  const std::size_t row_start = rng.below(side_);
  for (std::size_t k = 0; k < side_ && alive_row == side_; ++k) {
    const std::size_t r = (row_start + k) % side_;
    bool full = true;
    for (std::size_t c = 0; c < side_; ++c) {
      if (failures.is_failed(at(r, c))) {
        full = false;
        break;
      }
    }
    if (full) alive_row = r;
  }
  if (alive_row == side_) return std::nullopt;

  std::size_t alive_col = side_;
  const std::size_t col_start = rng.below(side_);
  for (std::size_t k = 0; k < side_ && alive_col == side_; ++k) {
    const std::size_t c = (col_start + k) % side_;
    bool full = true;
    for (std::size_t r = 0; r < side_; ++r) {
      if (failures.is_failed(at(r, c))) {
        full = false;
        break;
      }
    }
    if (full) alive_col = c;
  }
  if (alive_col == side_) return std::nullopt;
  return quorum_of(alive_row, alive_col);
}

std::optional<Quorum> Maekawa::do_assemble_write_quorum(
    const FailureSet& failures, Rng& rng) const {
  return do_assemble_read_quorum(failures, rng);
}

double Maekawa::exact_availability_dp(double p) const {
  // DP over columns. State: (bitmask of rows with every processed cell
  // alive, whether some processed column was fully alive). A column's alive
  // pattern c occurs with probability p^|c| (1-p)^(side-|c|); it narrows the
  // surviving-row mask to mask & c and sets the flag if c is full.
  const std::size_t s = side_;
  const std::size_t full = (s >= 64) ? ~0ULL : ((1ULL << s) - 1);
  std::vector<double> pattern_prob(full + 1);
  for (std::size_t c = 0; c <= full; ++c) {
    const int alive = std::popcount(c);
    pattern_prob[c] = std::pow(p, alive) *
                      std::pow(1.0 - p, static_cast<int>(s) - alive);
  }
  // state[mask][flag]
  std::vector<std::array<double, 2>> state(full + 1, {0.0, 0.0});
  state[full][0] = 1.0;
  for (std::size_t col = 0; col < s; ++col) {
    std::vector<std::array<double, 2>> next(full + 1, {0.0, 0.0});
    for (std::size_t mask = 0; mask <= full; ++mask) {
      for (int flag = 0; flag < 2; ++flag) {
        const double prob = state[mask][flag];
        if (prob == 0.0) continue;
        for (std::size_t c = 0; c <= full; ++c) {
          const std::size_t new_mask = mask & c;
          const int new_flag = flag | (c == full ? 1 : 0);
          next[new_mask][new_flag] += prob * pattern_prob[c];
        }
      }
    }
    state = std::move(next);
  }
  double available = 0.0;
  for (std::size_t mask = 1; mask <= full; ++mask) available += state[mask][1];
  return available;
}

double Maekawa::read_availability(double p) const {
  if (side_ <= 10) return exact_availability_dp(p);
  // Beyond DP reach: Monte Carlo with a fixed seed, deterministic output.
  Rng rng(0xC0FFEE + side_);
  return monte_carlo_availability(
      universe_size(), p, 20'000, rng, [this](const FailureSet& failures) {
        Rng probe(1);
        return do_assemble_read_quorum(failures, probe).has_value();
      });
}

double Maekawa::write_availability(double p) const {
  return read_availability(p);
}

std::vector<Quorum> Maekawa::enumerate_read_quorums(std::size_t limit) const {
  if (side_ * side_ > limit) {
    throw std::length_error("Maekawa: quorum limit exceeded");
  }
  std::vector<Quorum> out;
  out.reserve(side_ * side_);
  for (std::size_t r = 0; r < side_; ++r) {
    for (std::size_t c = 0; c < side_; ++c) out.push_back(quorum_of(r, c));
  }
  return out;
}

std::vector<Quorum> Maekawa::enumerate_write_quorums(std::size_t limit) const {
  return enumerate_read_quorums(limit);
}

}  // namespace atrcp
