#include "protocols/majority.hpp"

#include <numeric>
#include <stdexcept>

#include "util/math.hpp"

namespace atrcp {

MajorityQuorum::MajorityQuorum(std::size_t n) : n_(n) {
  if (n == 0) throw std::invalid_argument("MajorityQuorum: n must be > 0");
}

std::optional<Quorum> MajorityQuorum::assemble(const FailureSet& failures,
                                               Rng& rng) const {
  if (cache_.epoch != failures.epoch()) {
    cache_.alive.clear();
    cache_.alive.reserve(n_);
    for (std::size_t i = 0; i < n_; ++i) {
      const auto id = static_cast<ReplicaId>(i);
      if (failures.is_alive(id)) cache_.alive.push_back(id);
    }
    cache_.epoch = failures.epoch();
  }
  const std::size_t q = quorum_size();
  if (cache_.alive.size() < q) return std::nullopt;
  // Fisher–Yates prefix shuffle: pick q uniformly random alive replicas so
  // the realized strategy matches the uniform one the load analysis assumes.
  // The shuffle runs on a reused scratch copy of the cached alive list, so
  // both the rng stream and the resulting quorum are identical to the
  // former rebuild-per-call path.
  scratch_.assign(cache_.alive.begin(), cache_.alive.end());
  for (std::size_t i = 0; i < q; ++i) {
    const std::size_t j = i + rng.below(scratch_.size() - i);
    std::swap(scratch_[i], scratch_[j]);
  }
  return Quorum(
      std::vector<ReplicaId>(scratch_.begin(), scratch_.begin() + q));
}

std::optional<Quorum> MajorityQuorum::do_assemble_read_quorum(
    const FailureSet& failures, Rng& rng) const {
  return assemble(failures, rng);
}

std::optional<Quorum> MajorityQuorum::do_assemble_write_quorum(
    const FailureSet& failures, Rng& rng) const {
  return assemble(failures, rng);
}

double MajorityQuorum::read_availability(double p) const {
  return binomial_sf(n_, quorum_size(), p);
}

double MajorityQuorum::write_availability(double p) const {
  return binomial_sf(n_, quorum_size(), p);
}

namespace {
// Enumerate all size-q subsets of [0, n) in lexicographic order.
std::vector<Quorum> enumerate_subsets(std::size_t n, std::size_t q,
                                      std::size_t limit) {
  if (binomial(n, q) > limit) {
    throw std::length_error("MajorityQuorum: quorum limit exceeded");
  }
  std::vector<Quorum> out;
  std::vector<ReplicaId> pick(q);
  std::iota(pick.begin(), pick.end(), 0);
  while (true) {
    out.emplace_back(pick);
    // advance to next combination
    std::size_t i = q;
    while (i > 0) {
      --i;
      if (pick[i] != i + n - q) break;
      if (i == 0) return out;
    }
    if (pick[i] == i + n - q) return out;
    ++pick[i];
    for (std::size_t j = i + 1; j < q; ++j) pick[j] = pick[j - 1] + 1;
  }
}
}  // namespace

std::vector<Quorum> MajorityQuorum::enumerate_read_quorums(
    std::size_t limit) const {
  return enumerate_subsets(n_, quorum_size(), limit);
}

std::vector<Quorum> MajorityQuorum::enumerate_write_quorums(
    std::size_t limit) const {
  return enumerate_subsets(n_, quorum_size(), limit);
}

}  // namespace atrcp
