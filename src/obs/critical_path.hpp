// Critical-path analysis over the flight recorder: which dependency chain
// actually set each committed transaction's latency, and which quorum
// member straggled.
//
// The EventBus records message send/deliver/drop edges (linked by causal
// id but carrying no txn id) and coordinator txn lifecycle events (begin/
// phase/finish, lock wait/grant). The analyzer reconstructs attribution
// in one forward pass:
//
//   1. kTxnBegin/kTxnFinish bracket the txn ACTIVE at its coordinator
//      site — a "*Request" send leaving that site while the txn is active
//      belongs to it.
//   2. A reply ("*Reply"/"*Vote"/"*Ack") sent from peer P back to
//      coordinator C pairs FIFO with the oldest outstanding delivered
//      request C -> P — sound because links are FIFO per ordered pair in
//      the simulated network and replica service is run-to-completion.
//   3. Requests fanned out at the same instant form a ROUND (one quorum
//      fan-out); the round ends when its LAST reply delivers — that
//      member is the round's straggler, and the straggler's
//      request-flight / service / reply-flight cycle is the round's
//      contribution to the critical path.
//
// The longest dependency chain of a committed txn is then: lock waits
// (serial by construction) plus each round's straggler cycle, with the
// remainder of the txn's wall time attributed to coordinator-local
// scheduling. Every output quantity is integer microseconds derived only
// from bus contents, so reports are byte-deterministic and shard merges
// are order-stable.
//
// Ring eviction: a txn whose kTxnBegin fell off the ring cannot be
// attributed; it is counted in txns_truncated and skipped. Capacity-0
// buses yield an empty (but valid) report.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/event_bus.hpp"

namespace atrcp {

/// One hop of a committed txn's critical path.
struct PathSegment {
  enum class Kind : std::uint8_t {
    kLockWait = 0,      ///< coordinator waited for a lock grant
    kRequestFlight = 1, ///< request in flight coordinator -> straggler
    kService = 2,       ///< request delivered -> reply sent at the peer
    kReplyFlight = 3,   ///< reply in flight straggler -> coordinator
  };

  Kind kind = Kind::kLockWait;
  std::uint64_t start = 0;  ///< SimTime microseconds
  std::uint64_t end = 0;
  /// Remote site for flight/service segments; Event::kNoSite for locks.
  std::uint32_t site = Event::kNoSite;
  /// Message tag ("PrepareRequest") or lock key ("key 7").
  std::string label;

  std::uint64_t duration() const noexcept { return end - start; }
};

/// The reconstructed critical path of one committed transaction.
struct TxnCriticalPath {
  std::uint64_t txn_id = 0;
  std::uint32_t coordinator = Event::kNoSite;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::vector<PathSegment> segments;  ///< in time order
  std::size_t rounds = 0;             ///< quorum fan-outs observed

  // Wall-clock decomposition (sums of disjoint intervals; local is the
  // remainder: coordinator-side scheduling between path segments).
  std::uint64_t lock_us = 0;
  std::uint64_t network_us = 0;  ///< straggler request + reply flights
  std::uint64_t service_us = 0;  ///< straggler deliver -> reply send
  std::uint64_t local_us = 0;

  std::uint64_t total_us() const noexcept { return end - begin; }
};

/// Whole-bus analysis result.
struct CriticalPathReport {
  std::size_t txns_analyzed = 0;   ///< committed txns fully reconstructed
  std::size_t txns_truncated = 0;  ///< committed txns with evicted begins
  /// Analyzed paths in finish order.
  std::vector<TxnCriticalPath> paths;
  /// straggler_counts[s] = rounds whose last reply came from site s.
  std::vector<std::uint64_t> straggler_counts;
  /// Aggregate decomposition over all analyzed paths.
  std::uint64_t lock_us = 0;
  std::uint64_t network_us = 0;
  std::uint64_t service_us = 0;
  std::uint64_t local_us = 0;
  std::uint64_t total_us = 0;

  /// Folds another report in (shard aggregation; merge in shard-index
  /// order for stable output). Straggler counts add index-wise; paths
  /// concatenate.
  void merge_from(const CriticalPathReport& other);

  /// The k slowest analyzed paths, total latency descending, ties broken
  /// by (coordinator, txn_id) ascending.
  std::vector<const TxnCriticalPath*> slowest(std::size_t k) const;

  /// Deterministic JSON block: aggregate breakdown, per-site straggler
  /// counts (trailing zeros trimmed), and the `top_k` slowest paths with
  /// their segment chains. Integer-only.
  std::string to_json(std::size_t top_k = 5) const;
};

/// Analyzes the bus's retained events (one simulated world per bus).
CriticalPathReport analyze_critical_paths(const EventBus& bus);

/// "lock_wait" / "request" / "service" / "reply".
const char* path_segment_kind_name(PathSegment::Kind kind);

}  // namespace atrcp
