// Approximate per-key frequency tracking: Count-Min + Space-Saving top-k.
//
// The exact per-key hotness map in src/keyspace caps keyspace runs at
// thousands of keys (ROADMAP item 2); this sketch answers the same two
// questions — "how hot is this key?" and "which k keys are hottest?" — in
// O(rows + log capacity) per access and O(rows * width + capacity) space,
// independent of the key universe. Both halves give GUARANTEED one-sided
// bounds, which is what lets the remap policy act on sketch numbers
// without ever promoting a cold key or restoring a hot one:
//
//   - Count-Min (rows x width counters, each row its own SplitMix64-salted
//     hash): estimate(key) = min over rows >= true count, always. Collisions
//     only ever inflate.
//   - Space-Saving (capacity monitored keys): a monitored key's count is an
//     upper bound on its true count and count - error a lower bound; any
//     key with true count > total/capacity is guaranteed monitored.
//
// Everything is integer arithmetic on fixed-seed hashes: two sketches fed
// the same key stream in the same order are byte-identical (digest()), and
// record() consumes no randomness, so seeded workload schedules are
// unperturbed. Thread-safety: none — one sketch per worker, like every
// obs instrument.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace atrcp {

struct FreqSketchOptions {
  /// Count-Min depth. More rows tighten the estimate (min over rows).
  std::uint32_t rows = 4;
  /// log2 of the Count-Min row width. Expected overestimate per row is
  /// (window total) / width; 2^12 = 4096 counters keeps a 1M-op window's
  /// expected inflation near 250.
  std::uint32_t width_log2 = 12;
  /// Space-Saving monitored-set size. Every key hotter than
  /// window_total / capacity is guaranteed monitored, so the remap
  /// policy's top-k is trustworthy for k << capacity.
  std::uint64_t capacity = 64;
  /// Salt for the row hashes. Fixed default so independent shards build
  /// comparable (and mergeable) tables.
  std::uint64_t seed = 0xF0E0D0C0B0A09080ULL;
};

class FreqSketch {
 public:
  explicit FreqSketch(FreqSketchOptions options = {});

  /// Tally `count` accesses of `key`.
  void record(std::uint64_t key, std::uint64_t count = 1);

  /// Count-Min point estimate: >= the true count, always.
  std::uint64_t estimate(std::uint64_t key) const noexcept;

  /// Tightest available upper bound on the true count: the Count-Min
  /// estimate, further clamped by the Space-Saving count when monitored.
  std::uint64_t upper_bound(std::uint64_t key) const noexcept;

  /// Guaranteed lower bound on the true count: Space-Saving count minus
  /// its error for monitored keys, 0 otherwise.
  std::uint64_t lower_bound(std::uint64_t key) const noexcept;

  /// Whether `key` is in the Space-Saving monitored set.
  bool monitored(std::uint64_t key) const noexcept;

  /// The k hottest monitored keys as (key, count-upper-bound) pairs, count
  /// descending, key ascending among equals — the same deterministic order
  /// the exact tracker reports.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> top(
      std::size_t k) const;

  /// Total count recorded since the last clear().
  std::uint64_t total() const noexcept { return total_; }

  /// Any key with true count > guaranteed_hot_threshold() is guaranteed to
  /// be monitored (the Space-Saving guarantee: total / capacity).
  std::uint64_t guaranteed_hot_threshold() const noexcept {
    return total_ / options_.capacity;
  }

  const FreqSketchOptions& options() const noexcept { return options_; }

  /// Resets all counters and the monitored set (a window roll).
  void clear();

  /// Folds another sketch into this one. Requires identical rows, width
  /// and seed (throws std::invalid_argument otherwise). Count-Min tables
  /// add exactly; monitored sets union with counts/errors added, then trim
  /// deterministically to capacity (count descending, key ascending).
  void merge_from(const FreqSketch& other);

  /// FNV-1a fingerprint of the full state — byte-identical streams (and
  /// identical merge sequences) produce identical digests.
  std::uint64_t digest() const noexcept;

 private:
  struct Monitored {
    std::uint64_t count = 0;  ///< upper bound on the true count
    std::uint64_t error = 0;  ///< overestimate bound: count - error <= true
  };

  std::size_t cell(std::uint32_t row, std::uint64_t key) const noexcept;
  void bump(std::uint64_t key, std::uint64_t count);

  FreqSketchOptions options_;
  std::uint64_t width_mask_ = 0;
  std::vector<std::uint64_t> salts_;        ///< one per Count-Min row
  std::vector<std::uint64_t> table_;        ///< rows * width counters
  std::map<std::uint64_t, Monitored> entries_;  ///< monitored keys
  /// (count, key) index over entries_ — begin() is the eviction victim
  /// (smallest count, smallest key among equals): deterministic.
  std::set<std::pair<std::uint64_t, std::uint64_t>> order_;
  std::uint64_t total_ = 0;
};

}  // namespace atrcp
