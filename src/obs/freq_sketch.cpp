#include "obs/freq_sketch.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace atrcp {

namespace {

std::uint64_t mix64(std::uint64_t value) noexcept {
  // One SplitMix64 step over `value` as state — a strong 64->64 mixer.
  return SplitMix64(value).next();
}

}  // namespace

FreqSketch::FreqSketch(FreqSketchOptions options) : options_(options) {
  if (options_.rows == 0 || options_.width_log2 == 0 ||
      options_.width_log2 > 32 || options_.capacity == 0) {
    throw std::invalid_argument("FreqSketch: bad geometry");
  }
  const std::size_t width = std::size_t{1} << options_.width_log2;
  width_mask_ = width - 1;
  SplitMix64 seeder(options_.seed);
  salts_.reserve(options_.rows);
  for (std::uint32_t row = 0; row < options_.rows; ++row) {
    salts_.push_back(seeder.next());
  }
  table_.assign(static_cast<std::size_t>(options_.rows) * width, 0);
}

std::size_t FreqSketch::cell(std::uint32_t row,
                             std::uint64_t key) const noexcept {
  const std::uint64_t h = mix64(key ^ salts_[row]);
  return (static_cast<std::size_t>(row) << options_.width_log2) +
         static_cast<std::size_t>(h & width_mask_);
}

void FreqSketch::record(std::uint64_t key, std::uint64_t count) {
  if (count == 0) return;
  for (std::uint32_t row = 0; row < options_.rows; ++row) {
    table_[cell(row, key)] += count;
  }
  total_ += count;
  bump(key, count);
}

void FreqSketch::bump(std::uint64_t key, std::uint64_t count) {
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    order_.erase({it->second.count, key});
    it->second.count += count;
    order_.insert({it->second.count, key});
    return;
  }
  if (entries_.size() < options_.capacity) {
    entries_.emplace(key, Monitored{count, 0});
    order_.insert({count, key});
    return;
  }
  // Space-Saving eviction: the coldest monitored key (smallest count,
  // smallest key among equals) hands its count to the newcomer as error.
  const auto victim = *order_.begin();
  order_.erase(order_.begin());
  entries_.erase(victim.second);
  const Monitored entry{victim.first + count, victim.first};
  entries_.emplace(key, entry);
  order_.insert({entry.count, key});
}

std::uint64_t FreqSketch::estimate(std::uint64_t key) const noexcept {
  std::uint64_t best = table_[cell(0, key)];
  for (std::uint32_t row = 1; row < options_.rows; ++row) {
    const std::uint64_t value = table_[cell(row, key)];
    if (value < best) best = value;
  }
  return best;
}

std::uint64_t FreqSketch::upper_bound(std::uint64_t key) const noexcept {
  std::uint64_t bound = estimate(key);
  const auto it = entries_.find(key);
  if (it != entries_.end() && it->second.count < bound) {
    bound = it->second.count;
  }
  return bound;
}

std::uint64_t FreqSketch::lower_bound(std::uint64_t key) const noexcept {
  const auto it = entries_.find(key);
  if (it == entries_.end()) return 0;
  return it->second.count - it->second.error;
}

bool FreqSketch::monitored(std::uint64_t key) const noexcept {
  return entries_.count(key) != 0;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> FreqSketch::top(
    std::size_t k) const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  out.reserve(std::min<std::size_t>(k, entries_.size()));
  // order_ ascends by (count, key); walk it backwards for count-descending,
  // then stable-fix equal counts to key-ascending.
  for (auto it = order_.rbegin(); it != order_.rend() && out.size() < k;
       ++it) {
    out.emplace_back(it->second, it->first);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

void FreqSketch::clear() {
  std::fill(table_.begin(), table_.end(), 0);
  entries_.clear();
  order_.clear();
  total_ = 0;
}

void FreqSketch::merge_from(const FreqSketch& other) {
  if (&other == this) return;
  if (options_.rows != other.options_.rows ||
      options_.width_log2 != other.options_.width_log2 ||
      options_.seed != other.options_.seed) {
    throw std::invalid_argument("FreqSketch::merge_from: geometry differs");
  }
  for (std::size_t i = 0; i < table_.size(); ++i) table_[i] += other.table_[i];
  total_ += other.total_;
  for (const auto& [key, monitored] : other.entries_) {
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      order_.erase({it->second.count, key});
      it->second.count += monitored.count;
      it->second.error += monitored.error;
      order_.insert({it->second.count, key});
    } else {
      entries_.emplace(key, monitored);
      order_.insert({monitored.count, key});
    }
  }
  while (entries_.size() > options_.capacity) {
    const auto victim = *order_.begin();
    order_.erase(order_.begin());
    entries_.erase(victim.second);
  }
}

namespace {

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

void fnv_u64(std::uint64_t& hash, std::uint64_t value) noexcept {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xFF;
    hash *= kFnvPrime;
  }
}

}  // namespace

std::uint64_t FreqSketch::digest() const noexcept {
  std::uint64_t hash = kFnvOffset;
  fnv_u64(hash, total_);
  for (std::size_t i = 0; i < table_.size(); ++i) {
    if (table_[i] == 0) continue;
    fnv_u64(hash, i);
    fnv_u64(hash, table_[i]);
  }
  for (const auto& [key, monitored] : entries_) {
    fnv_u64(hash, key);
    fnv_u64(hash, monitored.count);
    fnv_u64(hash, monitored.error);
  }
  return hash;
}

}  // namespace atrcp
