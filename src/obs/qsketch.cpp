#include "obs/qsketch.hpp"

#include <bit>

namespace atrcp {

std::uint32_t QuantileSketch::bucket_of(std::uint64_t sample) noexcept {
  if (sample < kSubBuckets) return static_cast<std::uint32_t>(sample);
  const auto p = static_cast<std::uint32_t>(std::bit_width(sample) - 1);
  const auto sub = static_cast<std::uint32_t>(
      (sample >> (p - kSubBucketBits)) & (kSubBuckets - 1));
  return kSubBuckets * (p - kSubBucketBits + 1) + sub;
}

std::uint64_t QuantileSketch::bucket_lower(std::uint32_t bucket) noexcept {
  if (bucket < kSubBuckets) return bucket;
  const std::uint32_t p =
      bucket / kSubBuckets + kSubBucketBits - 1;  // leading-one position
  const std::uint32_t sub = bucket % kSubBuckets;
  return (static_cast<std::uint64_t>(kSubBuckets + sub))
         << (p - kSubBucketBits);
}

std::uint64_t QuantileSketch::bucket_representative(
    std::uint32_t bucket) noexcept {
  if (bucket < kSubBuckets) return bucket;  // unit buckets are exact
  const std::uint32_t p = bucket / kSubBuckets + kSubBucketBits - 1;
  const std::uint64_t lower = bucket_lower(bucket);
  const std::uint64_t width = std::uint64_t{1} << (p - kSubBucketBits);
  return lower + (width >> 1);
}

void QuantileSketch::record(std::uint64_t sample, std::uint64_t count) {
  if (count == 0) return;
  const std::uint32_t bucket = bucket_of(sample);
  if (bucket >= buckets_.size()) buckets_.resize(bucket + 1, 0);
  buckets_[bucket] += count;
  if (count_ == 0 || sample < min_) min_ = sample;
  if (sample > max_) max_ = sample;
  count_ += count;
  sum_ += sample * count;
}

std::uint64_t QuantileSketch::quantile_permille(
    std::uint32_t permille) const noexcept {
  if (count_ == 0) return 0;
  // Nearest rank: ceil(count * permille / 1000), clamped into [1, count].
  std::uint64_t rank = (count_ * permille + 999) / 1000;
  if (rank == 0) rank = 1;
  if (rank > count_) rank = count_;
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    seen += buckets_[b];
    if (seen >= rank) {
      return bucket_representative(static_cast<std::uint32_t>(b));
    }
  }
  return max_;  // unreachable when counts are consistent
}

void QuantileSketch::merge_from(const QuantileSketch& other) {
  if (other.count_ == 0) return;
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t b = 0; b < other.buckets_.size(); ++b) {
    buckets_[b] += other.buckets_[b];
  }
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
}

std::size_t QuantileSketch::nonzero_buckets() const noexcept {
  std::size_t n = 0;
  for (const std::uint64_t c : buckets_) n += c != 0;
  return n;
}

namespace {

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

void fnv_u64(std::uint64_t& hash, std::uint64_t value) noexcept {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xFF;
    hash *= kFnvPrime;
  }
}

}  // namespace

std::uint64_t QuantileSketch::digest() const noexcept {
  std::uint64_t hash = kFnvOffset;
  fnv_u64(hash, count_);
  fnv_u64(hash, sum_);
  fnv_u64(hash, min());
  fnv_u64(hash, max_);
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_[b] == 0) continue;  // trailing-zero growth never matters
    fnv_u64(hash, b);
    fnv_u64(hash, buckets_[b]);
  }
  return hash;
}

std::string QuantileSketch::to_json() const {
  static const char* hex = "0123456789abcdef";
  const std::uint64_t d = digest();
  char hex16[17];
  for (int i = 0; i < 16; ++i) {
    hex16[i] = hex[(d >> (60 - 4 * i)) & 0xF];
  }
  hex16[16] = '\0';
  std::string out = "{\"count\":" + std::to_string(count_) +
                    ",\"sum\":" + std::to_string(sum_) +
                    ",\"min\":" + std::to_string(min()) +
                    ",\"max\":" + std::to_string(max_) +
                    ",\"p50\":" + std::to_string(p50()) +
                    ",\"p90\":" + std::to_string(p90()) +
                    ",\"p99\":" + std::to_string(p99()) +
                    ",\"p999\":" + std::to_string(p999()) +
                    ",\"nonzero\":" + std::to_string(nonzero_buckets()) +
                    ",\"digest\":\"";
  out += hex16;
  out += "\"}";
  return out;
}

}  // namespace atrcp
