// Per-site and per-physical-level load accounting — the measurement side of
// the paper's headline claims. Facts 3.2.3/3.2.4 say the arbitrary protocol
// achieves optimal read load 1/d (d = smallest physical level size) and
// write load 1/|K_phy|; the aggregate counters of PR 1 cannot show how load
// distributes, so this accountant reads the per-site counters the protocol
// layer maintains ("quorum.<name>.<read|write>.site.<r>") and produces a
// deterministic table: per-site quorum participation shares, per-level
// aggregates, and the measured maxima to compare against the analytic
// optima. A site's share is hits / assembled-quorums — exactly the paper's
// Definition 2.5 load of the access strategy the run actually used.
//
// Thread-safety: collect_site_load is a const read of one registry and
// to_json is a pure function of the table — deterministic (sites in id
// order, shortest round-trip doubles) and safe anywhere the registry is
// quiescent, i.e. after the run (or the driver worker) that fed it ended.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace atrcp {

class MetricsRegistry;

struct SiteLoadOptions {
  /// Protocol name() — selects the "quorum.<protocol>." counter prefix.
  std::string protocol;
  /// Number of replicas (ids [0, universe)).
  std::size_t universe = 0;
  /// Analytic optima to print beside the measurement; NaN when unknown
  /// (serialized as null).
  double analytic_read_load = 0;
  double analytic_write_load = 0;
  /// Optional physical-level partition of the replica ids (the tree's
  /// K_phy); enables the per-level aggregate rows.
  std::vector<std::vector<std::uint32_t>> levels;
};

struct SiteLoadRow {
  std::uint32_t site = 0;
  std::uint64_t read_hits = 0;   ///< read quorums containing this site
  std::uint64_t write_hits = 0;  ///< write quorums containing this site
  double read_share = 0;         ///< read_hits / assembled read quorums
  double write_share = 0;        ///< NaN when no quorum assembled
};

struct LevelLoadRow {
  std::size_t level = 0;
  std::size_t size = 0;          ///< replicas in the level
  std::uint64_t read_hits = 0;   ///< summed over the level's replicas
  std::uint64_t write_hits = 0;
  double max_read_share = 0;     ///< max per-site share within the level
  double max_write_share = 0;
};

struct SiteLoadTable {
  std::string protocol;
  std::uint64_t read_quorums = 0;   ///< assembled (attempts - failures)
  std::uint64_t write_quorums = 0;
  /// Summed per-site hits; each must equal the protocol's read/write
  /// `members` counter (the invariant site_load_test pins down).
  std::uint64_t read_hits_total = 0;
  std::uint64_t write_hits_total = 0;
  double analytic_read_load = 0;
  double analytic_write_load = 0;
  double max_read_share = 0;   ///< max over all sites; NaN when no quorums
  double max_write_share = 0;
  std::vector<SiteLoadRow> sites;
  std::vector<LevelLoadRow> levels;  ///< empty without SiteLoadOptions::levels

  /// One-line deterministic JSON (format_double rules; NaN -> null).
  std::string to_json() const;
};

/// Builds the table from the per-site counters the protocol's
/// attach_metrics created. Sites never observed (no counters) read as 0.
SiteLoadTable collect_site_load(const MetricsRegistry& metrics,
                                const SiteLoadOptions& options);

/// Measured mean assembled-quorum size for `kind` ("read" or "write"):
/// members / (attempts - failures). NaN-safe: returns NaN (serialized as
/// null by format_double) when no quorum was ever assembled — including the
/// attempts == failures path — or when the counters are absent or
/// inconsistent (failures > attempts).
double measured_mean_quorum(const MetricsRegistry& metrics,
                            const std::string& protocol_name,
                            const std::string& kind);

}  // namespace atrcp
