// The causal flight recorder's spine: a fixed-ring, allocation-light event
// log that every layer of the simulated system publishes into. One pipeline
// replaces the ad-hoc TraceSink plumbing: the Network stamps message
// send/deliver/drop edges (linked by a causal message id so an export can
// draw the send->deliver arrow), the Coordinator stamps txn phase
// transitions and lock waits, the ReplicaServer stamps request handling and
// version installs, and the FailureInjector stamps crash/recover/
// partition/heal edges.
//
// Layering: obs sits below sim, so Event mirrors SimTime / SiteId as raw
// std::uint64_t / std::uint32_t rather than including sim headers. Like
// MetricsRegistry, everything here is byte-deterministic under a fixed
// seed: publishing consumes no randomness and formatting never depends on
// addresses or wall-clock time.
//
// Thread-safety: none, by design — a bus belongs to one Cluster and one
// Cluster belongs to one run-driver worker. Publishing takes no lock so
// the hot path stays an index bump and a struct copy; under the parallel
// driver each shard records into its own bus and buses are only read
// (exported, tailed) after the pool has joined.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace atrcp {

/// Event kinds, grouped by publishing layer. Values are part of the
/// recorded format (exports and tests rely on them), so they are explicit
/// and append-only.
enum class EventKind : std::uint8_t {
  // Network (causal_id links a send to its deliver or in-flight drop).
  kMsgSend = 0,
  kMsgDeliver = 1,
  kMsgDrop = 2,
  // Coordinator / LockManager.
  kTxnBegin = 3,
  kTxnPhase = 4,
  kTxnFinish = 5,
  kLockWait = 6,
  kLockGranted = 7,
  kLockTimeout = 8,
  kQuorumRound = 9,
  kQuorumReassembly = 10,
  kQuorumUnavailable = 11,
  kCommitRetransmit = 12,
  // ReplicaServer.
  kReplicaRead = 13,
  kReplicaVersion = 14,
  kReplicaStage = 15,
  kReplicaApply = 16,
  kReplicaAbort = 17,
  kReplicaRepair = 18,
  // FailureInjector.
  kCrash = 19,
  kRecover = 20,
  kPartition = 21,
  kHeal = 22,
  // ReconfigManager (src/reconfig).
  kReconfigPhase = 23,
  kReconfigCrash = 24,
  kReconfigRecover = 25,
};

/// One recorded fact. Fixed-size except `label`, which for every built-in
/// publisher is a short tag ("PrepareRequest", "commit", ...) that fits
/// small-string optimization — recording stays allocation-light.
struct Event {
  /// site/peer value meaning "no site" (system-wide events like kHeal).
  static constexpr std::uint32_t kNoSite = 0xFFFF'FFFFu;

  std::uint64_t time = 0;  ///< SimTime microseconds
  EventKind kind = EventKind::kMsgSend;
  /// Site the event happened AT: sender for kMsgSend, destination for
  /// kMsgDeliver/kMsgDrop, coordinator site for txn events.
  std::uint32_t site = kNoSite;
  /// The other endpoint of a message edge; kNoSite for local events.
  std::uint32_t peer = kNoSite;
  /// Nonzero links a kMsgSend to the kMsgDeliver/kMsgDrop of the same
  /// message; ids are unique and monotone within one bus.
  std::uint64_t causal_id = 0;
  /// Owning transaction where known; 0 = none.
  std::uint64_t txn_id = 0;
  /// Short human tag: message type, phase name, outcome, lock key.
  std::string label;
};

/// Fixed-capacity ring of events: most recent kept, oldest evicted, no
/// per-record allocation beyond the label's SSO. Mirrors TxnSpanLog.
/// Capacity 0 is a valid degenerate bus: it retains no events (publish
/// only bumps total_published) yet still allocates causal ids, so code
/// holding a bus reference never needs a null check and exporters emit a
/// valid empty trace.
class EventBus {
 public:
  explicit EventBus(std::size_t capacity = 1 << 14);

  void publish(Event event);

  /// Allocates the next causal message id (monotone, starting at 1; 0
  /// stays the "no causal link" sentinel).
  std::uint64_t next_causal_id() noexcept { return ++last_causal_id_; }
  std::uint64_t last_causal_id() const noexcept { return last_causal_id_; }

  std::size_t capacity() const noexcept { return slots_.size(); }
  /// Number of events currently retained (<= capacity).
  std::size_t size() const noexcept { return size_; }
  /// Total events ever published, including evicted ones.
  std::uint64_t total_published() const noexcept { return total_; }

  /// i-th retained event, oldest first; throws std::out_of_range.
  const Event& at(std::size_t i) const;

  /// Retained events, oldest first.
  std::vector<Event> snapshot() const;

  /// Drops the retained events; total_published and the causal-id counter
  /// keep running (a mid-run trim, not a rewind).
  void clear() noexcept;

  /// Full as-new reset: drops retained events AND rewinds total_published
  /// and the causal-id counter to 0. This is what lets one bus arena be
  /// reused across seeds by an explorer worker shard — after reset() the
  /// bus is indistinguishable from a freshly constructed one, so causal
  /// ids (and any output derived from them) stay byte-identical to a
  /// run that built a new bus per seed.
  void reset() noexcept;

  /// "t=120 deliver site=0 peer=8 cid=3 ReadRequest" lines for the most
  /// recent `count` events — the debugging tail appended to explorer
  /// counterexamples.
  std::string tail_to_string(std::size_t count) const;

 private:
  std::vector<Event> slots_;
  std::size_t head_ = 0;  ///< index of the oldest retained event
  std::size_t size_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t last_causal_id_ = 0;
};

/// Stable lowercase name of a kind ("send", "deliver", "txn_begin", ...).
const char* event_kind_name(EventKind kind);

/// One-line rendering of an event, used by tail_to_string.
std::string format_event(const Event& event);

}  // namespace atrcp
