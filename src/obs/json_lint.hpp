// Minimal JSON well-formedness checker — enough to let the trace-export
// smoke test and the obs tests validate emitted documents without an
// external parser dependency. Checks structure (RFC 8259 grammar, UTF-8
// passthrough, escape sequences, number syntax) with a recursion-depth cap;
// it does not build a DOM.
#pragma once

#include <string>
#include <string_view>

namespace atrcp {

/// True iff `text` is one complete, well-formed JSON value (with optional
/// surrounding whitespace). On failure, fills *error (when non-null) with a
/// byte offset and reason.
bool json_valid(std::string_view text, std::string* error = nullptr);

}  // namespace atrcp
