#include "obs/span.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace atrcp {

TxnSpanLog::TxnSpanLog(std::size_t capacity) : slots_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("TxnSpanLog: capacity must be > 0");
  }
}

void TxnSpanLog::record(const TxnSpan& span) {
  if (size_ < slots_.size()) {
    slots_[(head_ + size_) % slots_.size()] = span;
    ++size_;
  } else {
    slots_[head_] = span;
    head_ = (head_ + 1) % slots_.size();
  }
  ++total_;
}

const TxnSpan& TxnSpanLog::at(std::size_t i) const {
  if (i >= size_) throw std::out_of_range("TxnSpanLog::at");
  return slots_[(head_ + i) % slots_.size()];
}

std::vector<TxnSpan> TxnSpanLog::snapshot() const {
  std::vector<TxnSpan> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) out.push_back(at(i));
  return out;
}

void TxnSpanLog::clear() noexcept {
  head_ = 0;
  size_ = 0;
}

namespace {

/// Nearest-rank percentile of a sorted sample vector (q in [0, 100]).
std::uint64_t percentile(const std::vector<std::uint64_t>& sorted,
                         unsigned q) {
  if (sorted.empty()) return 0;
  std::size_t rank = (sorted.size() * q + 99) / 100;  // ceil(n*q/100)
  if (rank == 0) rank = 1;
  return sorted[rank - 1];
}

}  // namespace

SpanSummary summarize_spans(const TxnSpanLog& log) {
  SpanSummary summary;
  summary.recorded = log.total_recorded();
  summary.retained = log.size();
  if (summary.retained == 0) return summary;
  std::vector<std::uint64_t> latencies;
  latencies.reserve(log.size());
  std::uint64_t slowest_latency = 0;
  bool have_slowest = false;
  for (std::size_t i = 0; i < log.size(); ++i) {
    const TxnSpan& span = log.at(i);
    const std::uint64_t latency = span.total_latency();
    latencies.push_back(latency);
    if (!have_slowest || latency > slowest_latency) {
      have_slowest = true;
      slowest_latency = latency;
      summary.slowest = span;
    }
  }
  std::sort(latencies.begin(), latencies.end());
  summary.p50_us = percentile(latencies, 50);
  summary.p95_us = percentile(latencies, 95);
  summary.p99_us = percentile(latencies, 99);
  return summary;
}

std::string SpanSummary::to_json() const {
  std::ostringstream os;
  os << "{\"recorded\":" << recorded << ",\"retained\":" << retained
     << ",\"latency_us\":{\"p50\":" << p50_us << ",\"p95\":" << p95_us
     << ",\"p99\":" << p99_us << "},\"slowest\":";
  if (retained == 0) {
    os << "null";
  } else {
    os << "{\"txn\":" << slowest.txn_id
       << ",\"coordinator\":" << slowest.coordinator_site
       << ",\"latency_us\":" << slowest.total_latency()
       << ",\"outcome\":" << static_cast<unsigned>(slowest.outcome)
       << ",\"quorum_rounds\":" << slowest.quorum_rounds
       << ",\"reassemblies\":" << slowest.quorum_reassemblies
       << ",\"commit_retransmits\":" << slowest.commit_retransmits << "}";
  }
  os << "}";
  return os.str();
}

}  // namespace atrcp
