#include "obs/span.hpp"

#include <stdexcept>

namespace atrcp {

TxnSpanLog::TxnSpanLog(std::size_t capacity) : slots_(capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("TxnSpanLog: capacity must be > 0");
  }
}

void TxnSpanLog::record(const TxnSpan& span) {
  if (size_ < slots_.size()) {
    slots_[(head_ + size_) % slots_.size()] = span;
    ++size_;
  } else {
    slots_[head_] = span;
    head_ = (head_ + 1) % slots_.size();
  }
  ++total_;
}

const TxnSpan& TxnSpanLog::at(std::size_t i) const {
  if (i >= size_) throw std::out_of_range("TxnSpanLog::at");
  return slots_[(head_ + i) % slots_.size()];
}

std::vector<TxnSpan> TxnSpanLog::snapshot() const {
  std::vector<TxnSpan> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) out.push_back(at(i));
  return out;
}

void TxnSpanLog::clear() noexcept {
  head_ = 0;
  size_ = 0;
}

}  // namespace atrcp
