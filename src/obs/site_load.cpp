#include "obs/site_load.hpp"

#include <cmath>
#include <sstream>

#include "obs/metrics.hpp"

namespace atrcp {
namespace {

std::uint64_t counter_value(const MetricsRegistry& metrics,
                            const std::string& name) {
  const Counter* c = metrics.find_counter(name);
  return c == nullptr ? 0 : c->value();
}

std::uint64_t assembled_quorums(const MetricsRegistry& metrics,
                                const std::string& prefix) {
  const std::uint64_t attempts = counter_value(metrics, prefix + "attempts");
  const std::uint64_t failures = counter_value(metrics, prefix + "failures");
  return failures > attempts ? 0 : attempts - failures;
}

double share(std::uint64_t hits, std::uint64_t quorums) {
  if (quorums == 0) return std::nan("");
  return static_cast<double>(hits) / static_cast<double>(quorums);
}

/// NaN-aware max: ignores NaN candidates, keeps NaN when nothing real seen.
double max_share(double current, double candidate) {
  if (std::isnan(candidate)) return current;
  if (std::isnan(current) || candidate > current) return candidate;
  return current;
}

}  // namespace

SiteLoadTable collect_site_load(const MetricsRegistry& metrics,
                                const SiteLoadOptions& options) {
  const std::string prefix = "quorum." + options.protocol + ".";
  SiteLoadTable table;
  table.protocol = options.protocol;
  table.analytic_read_load = options.analytic_read_load;
  table.analytic_write_load = options.analytic_write_load;
  table.read_quorums = assembled_quorums(metrics, prefix + "read.");
  table.write_quorums = assembled_quorums(metrics, prefix + "write.");
  table.max_read_share = std::nan("");
  table.max_write_share = std::nan("");

  table.sites.reserve(options.universe);
  for (std::size_t r = 0; r < options.universe; ++r) {
    const std::string suffix = "site." + std::to_string(r);
    SiteLoadRow row;
    row.site = static_cast<std::uint32_t>(r);
    row.read_hits = counter_value(metrics, prefix + "read." + suffix);
    row.write_hits = counter_value(metrics, prefix + "write." + suffix);
    row.read_share = share(row.read_hits, table.read_quorums);
    row.write_share = share(row.write_hits, table.write_quorums);
    table.read_hits_total += row.read_hits;
    table.write_hits_total += row.write_hits;
    table.max_read_share = max_share(table.max_read_share, row.read_share);
    table.max_write_share = max_share(table.max_write_share, row.write_share);
    table.sites.push_back(row);
  }

  table.levels.reserve(options.levels.size());
  for (std::size_t l = 0; l < options.levels.size(); ++l) {
    LevelLoadRow row;
    row.level = l;
    row.size = options.levels[l].size();
    row.max_read_share = std::nan("");
    row.max_write_share = std::nan("");
    for (const std::uint32_t r : options.levels[l]) {
      if (r >= table.sites.size()) continue;
      const SiteLoadRow& site = table.sites[r];
      row.read_hits += site.read_hits;
      row.write_hits += site.write_hits;
      row.max_read_share = max_share(row.max_read_share, site.read_share);
      row.max_write_share = max_share(row.max_write_share, site.write_share);
    }
    table.levels.push_back(row);
  }
  return table;
}

std::string SiteLoadTable::to_json() const {
  std::ostringstream os;
  os << "{\"protocol\":\"" << json_escape(protocol) << "\""
     << ",\"read_quorums\":" << read_quorums
     << ",\"write_quorums\":" << write_quorums
     << ",\"read_hits_total\":" << read_hits_total
     << ",\"write_hits_total\":" << write_hits_total
     << ",\"analytic_read_load\":" << format_double(analytic_read_load)
     << ",\"analytic_write_load\":" << format_double(analytic_write_load)
     << ",\"max_read_share\":" << format_double(max_read_share)
     << ",\"max_write_share\":" << format_double(max_write_share)
     << ",\"sites\":[";
  for (std::size_t i = 0; i < sites.size(); ++i) {
    const SiteLoadRow& row = sites[i];
    if (i != 0) os << ',';
    os << "{\"site\":" << row.site << ",\"read_hits\":" << row.read_hits
       << ",\"write_hits\":" << row.write_hits
       << ",\"read_share\":" << format_double(row.read_share)
       << ",\"write_share\":" << format_double(row.write_share) << "}";
  }
  os << "],\"levels\":[";
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const LevelLoadRow& row = levels[i];
    if (i != 0) os << ',';
    os << "{\"level\":" << row.level << ",\"size\":" << row.size
       << ",\"read_hits\":" << row.read_hits
       << ",\"write_hits\":" << row.write_hits
       << ",\"max_read_share\":" << format_double(row.max_read_share)
       << ",\"max_write_share\":" << format_double(row.max_write_share)
       << "}";
  }
  os << "]}";
  return os.str();
}

double measured_mean_quorum(const MetricsRegistry& metrics,
                            const std::string& protocol_name,
                            const std::string& kind) {
  const std::string prefix = "quorum." + protocol_name + "." + kind + ".";
  const Counter* attempts = metrics.find_counter(prefix + "attempts");
  const Counter* members = metrics.find_counter(prefix + "members");
  if (attempts == nullptr || members == nullptr) return std::nan("");
  const std::uint64_t assembled = assembled_quorums(metrics, prefix);
  if (assembled == 0) return std::nan("");
  return static_cast<double>(members->value()) /
         static_cast<double>(assembled);
}

}  // namespace atrcp
