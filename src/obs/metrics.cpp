#include "obs/metrics.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace atrcp {

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size(), 0) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: bounds must be non-empty");
  }
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    if (bounds_[i] <= bounds_[i - 1]) {
      throw std::invalid_argument("Histogram: bounds must strictly increase");
    }
  }
}

void Histogram::record(std::uint64_t sample) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), sample);
  if (it == bounds_.end()) {
    ++overflow_;
  } else {
    ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  }
  if (count_ == 0 || sample < min_) min_ = sample;
  if (sample > max_) max_ = sample;
  ++count_;
  sum_ += sample;
}

void Histogram::merge_from(const Histogram& other) {
  if (bounds_ != other.bounds_) {
    throw std::invalid_argument("Histogram::merge_from: bounds differ");
  }
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  overflow_ += other.overflow_;
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::mean() const noexcept {
  return count_ == 0
             ? 0.0
             : static_cast<double>(sum_) / static_cast<double>(count_);
}

namespace {

template <typename Instrument, typename Map>
Instrument* find_in(const Map& map, const std::string& name) {
  const auto it = map.find(name);
  return it == map.end() ? nullptr : it->second.get();
}

}  // namespace

Counter& MetricsRegistry::counter(const std::string& name) {
  if (gauges_.count(name) != 0 || histograms_.count(name) != 0 ||
      qsketches_.count(name) != 0) {
    throw std::invalid_argument("MetricsRegistry: '" + name +
                                "' already names another instrument kind");
  }
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  if (counters_.count(name) != 0 || histograms_.count(name) != 0 ||
      qsketches_.count(name) != 0) {
    throw std::invalid_argument("MetricsRegistry: '" + name +
                                "' already names another instrument kind");
  }
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<std::uint64_t> bounds) {
  if (counters_.count(name) != 0 || gauges_.count(name) != 0 ||
      qsketches_.count(name) != 0) {
    throw std::invalid_argument("MetricsRegistry: '" + name +
                                "' already names another instrument kind");
  }
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(std::move(bounds));
  } else if (slot->bounds() != bounds) {
    throw std::invalid_argument("MetricsRegistry: histogram '" + name +
                                "' re-registered with different bounds");
  }
  return *slot;
}

QuantileSketch& MetricsRegistry::qsketch(const std::string& name) {
  if (counters_.count(name) != 0 || gauges_.count(name) != 0 ||
      histograms_.count(name) != 0) {
    throw std::invalid_argument("MetricsRegistry: '" + name +
                                "' already names another instrument kind");
  }
  auto& slot = qsketches_[name];
  if (!slot) slot = std::make_unique<QuantileSketch>();
  return *slot;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  return find_in<Counter>(counters_, name);
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  return find_in<Gauge>(gauges_, name);
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  return find_in<Histogram>(histograms_, name);
}

const QuantileSketch* MetricsRegistry::find_qsketch(
    const std::string& name) const {
  return find_in<QuantileSketch>(qsketches_, name);
}

void MetricsRegistry::merge_from(const MetricsRegistry& other) {
  // Self-merge would double every instrument while iterating the maps it
  // mutates; treat it as the no-op the caller almost certainly meant.
  if (&other == this) return;
  for (const auto& [name, instrument] : other.counters_) {
    counter(name).inc(instrument->value());
  }
  for (const auto& [name, instrument] : other.gauges_) {
    gauge(name).add(instrument->value());
  }
  for (const auto& [name, instrument] : other.histograms_) {
    histogram(name, instrument->bounds()).merge_from(*instrument);
  }
  for (const auto& [name, instrument] : other.qsketches_) {
    qsketch(name).merge_from(*instrument);
  }
}

const std::vector<std::uint64_t>& MetricsRegistry::latency_bounds_us() {
  static const std::vector<std::uint64_t> bounds = {
      50,     100,    200,    500,     1'000,   2'000,   5'000,
      10'000, 20'000, 50'000, 100'000, 200'000, 500'000, 1'000'000};
  return bounds;
}

std::string format_double(double value) {
  if (!std::isfinite(value)) {
    // JSON has no Infinity/NaN literals; null keeps the snapshot parseable.
    return "null";
  }
  char buffer[64];
  const auto [end, ec] =
      std::to_chars(buffer, buffer + sizeof(buffer), value);
  if (ec != std::errc{}) return "null";
  return std::string(buffer, end);
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned char>(c));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void write_u64_array(std::ostream& os, const std::vector<std::uint64_t>& xs) {
  os << '[';
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (i != 0) os << ',';
    os << xs[i];
  }
  os << ']';
}

}  // namespace

void MetricsRegistry::to_json(std::ostream& os) const {
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, instrument] : counters_) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":" << instrument->value();
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& [name, instrument] : gauges_) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name)
       << "\":" << format_double(instrument->value());
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, instrument] : histograms_) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":{\"count\":" << instrument->count()
       << ",\"sum\":" << instrument->sum() << ",\"min\":" << instrument->min()
       << ",\"max\":" << instrument->max()
       << ",\"mean\":" << format_double(instrument->mean()) << ",\"bounds\":";
    write_u64_array(os, instrument->bounds());
    os << ",\"buckets\":";
    write_u64_array(os, instrument->bucket_counts());
    os << ",\"overflow\":" << instrument->overflow() << '}';
  }
  os << "},\"qsketches\":{";
  first = true;
  for (const auto& [name, instrument] : qsketches_) {
    if (!first) os << ',';
    first = false;
    os << '"' << json_escape(name) << "\":" << instrument->to_json();
  }
  os << "}}";
}

std::string MetricsRegistry::to_json_string() const {
  std::ostringstream os;
  to_json(os);
  return os.str();
}

}  // namespace atrcp
