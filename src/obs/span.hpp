// Per-transaction trace spans — the record of WHERE a transaction's time
// went, keyed by transaction id. The coordinator stamps phase-transition
// times (all in SimTime microseconds; never the wall clock) and round
// counters into a TxnSpan as the state machine advances, then hands the
// finished span to a TxnSpanLog: a fixed-capacity ring that keeps the most
// recent spans without allocating per record. Histograms in the
// MetricsRegistry summarize the population; spans preserve the individual
// slow transaction for inspection.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace atrcp {

struct TxnSpan {
  /// Marks a phase the transaction never reached (0 is a valid sim time:
  /// the first transaction of a run acquires uncontended locks at t = 0).
  static constexpr std::uint64_t kUnset = ~std::uint64_t{0};

  std::uint64_t txn_id = 0;
  /// Phase-transition times, sim-microseconds; kUnset when never reached
  /// (e.g. `decided` for a read-only or aborted txn).
  std::uint64_t begin = 0;                ///< run() entry
  std::uint64_t locks_acquired = kUnset;  ///< last lock granted
  std::uint64_t ops_done = kUnset;        ///< last read/write op finished
  std::uint64_t decided = kUnset;         ///< 2PC all-yes instant
  std::uint64_t end = 0;                  ///< outcome delivered
  /// TxnOutcome as its underlying value (0 committed, 1 aborted, 2 blocked).
  std::uint8_t outcome = 0;
  /// Site id of the issuing coordinator — lets span consumers (and the
  /// history checker) attribute a span to its client without a join.
  std::uint32_t coordinator_site = 0;
  std::uint32_t quorum_rounds = 0;      ///< read/version rounds issued
  std::uint32_t quorum_reassemblies = 0;  ///< rounds re-run after a timeout
  std::uint32_t commit_retransmits = 0;   ///< commit rounds beyond the first
  /// Configuration epoch the transaction ran under (src/reconfig). 0 until
  /// the first live reconfiguration; an overlap-window transaction is
  /// tagged with the NEW epoch and epoch_overlap = 1 (its quorums satisfied
  /// both epochs' rules). Flows into HistoryTxn via the embedded span, so
  /// the checker can validate epoch-spanning histories.
  std::uint32_t epoch = 0;
  std::uint8_t epoch_overlap = 0;

  std::uint64_t total_latency() const noexcept { return end - begin; }
};

/// Fixed-capacity ring of finished spans (most recent kept, oldest evicted).
class TxnSpanLog {
 public:
  explicit TxnSpanLog(std::size_t capacity = 4096);

  void record(const TxnSpan& span);

  std::size_t capacity() const noexcept { return slots_.size(); }
  /// Number of spans currently held (<= capacity).
  std::size_t size() const noexcept { return size_; }
  /// Total spans ever recorded, including evicted ones.
  std::uint64_t total_recorded() const noexcept { return total_; }

  /// i-th retained span, oldest first; throws std::out_of_range.
  const TxnSpan& at(std::size_t i) const;

  /// Retained spans, oldest first.
  std::vector<TxnSpan> snapshot() const;

  void clear() noexcept;

 private:
  std::vector<TxnSpan> slots_;
  std::size_t head_ = 0;  ///< index of the oldest retained span
  std::size_t size_ = 0;
  std::uint64_t total_ = 0;
};

/// Digest of a TxnSpanLog for the benches' `metrics` JSON block: latency
/// percentiles over the retained spans plus the single slowest span —
/// recorded-but-never-emitted no more.
struct SpanSummary {
  std::uint64_t recorded = 0;  ///< total ever recorded, incl. evicted
  std::size_t retained = 0;
  /// Nearest-rank percentiles of total_latency(); 0 when no span retained.
  std::uint64_t p50_us = 0;
  std::uint64_t p95_us = 0;
  std::uint64_t p99_us = 0;
  TxnSpan slowest{};  ///< highest total_latency(); zeroed when empty

  /// One-line deterministic JSON; "slowest" is null when retained == 0.
  std::string to_json() const;
};

SpanSummary summarize_spans(const TxnSpanLog& log);

}  // namespace atrcp
