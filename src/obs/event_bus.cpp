#include "obs/event_bus.hpp"

#include <sstream>
#include <stdexcept>

namespace atrcp {

EventBus::EventBus(std::size_t capacity) : slots_(capacity) {}

void EventBus::publish(Event event) {
  if (slots_.empty()) {
    // Capacity-0 bus: a pure counter. Retains nothing but still tallies
    // total_published and hands out causal ids, so exporters see a valid
    // (empty) trace instead of degenerate output.
    ++total_;
    return;
  }
  if (size_ < slots_.size()) {
    slots_[(head_ + size_) % slots_.size()] = std::move(event);
    ++size_;
  } else {
    slots_[head_] = std::move(event);
    head_ = (head_ + 1) % slots_.size();
  }
  ++total_;
}

const Event& EventBus::at(std::size_t i) const {
  if (i >= size_) throw std::out_of_range("EventBus::at");
  return slots_[(head_ + i) % slots_.size()];
}

std::vector<Event> EventBus::snapshot() const {
  std::vector<Event> out;
  out.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) out.push_back(at(i));
  return out;
}

void EventBus::clear() noexcept {
  head_ = 0;
  size_ = 0;
}

void EventBus::reset() noexcept {
  head_ = 0;
  size_ = 0;
  total_ = 0;
  last_causal_id_ = 0;
}

std::string EventBus::tail_to_string(std::size_t count) const {
  const std::size_t n = count < size_ ? count : size_;
  std::ostringstream os;
  for (std::size_t i = size_ - n; i < size_; ++i) {
    os << format_event(at(i)) << '\n';
  }
  return os.str();
}

const char* event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kMsgSend: return "send";
    case EventKind::kMsgDeliver: return "deliver";
    case EventKind::kMsgDrop: return "drop";
    case EventKind::kTxnBegin: return "txn_begin";
    case EventKind::kTxnPhase: return "txn_phase";
    case EventKind::kTxnFinish: return "txn_finish";
    case EventKind::kLockWait: return "lock_wait";
    case EventKind::kLockGranted: return "lock_granted";
    case EventKind::kLockTimeout: return "lock_timeout";
    case EventKind::kQuorumRound: return "quorum_round";
    case EventKind::kQuorumReassembly: return "quorum_reassembly";
    case EventKind::kQuorumUnavailable: return "quorum_unavailable";
    case EventKind::kCommitRetransmit: return "commit_retransmit";
    case EventKind::kReplicaRead: return "replica_read";
    case EventKind::kReplicaVersion: return "replica_version";
    case EventKind::kReplicaStage: return "replica_stage";
    case EventKind::kReplicaApply: return "replica_apply";
    case EventKind::kReplicaAbort: return "replica_abort";
    case EventKind::kReplicaRepair: return "replica_repair";
    case EventKind::kCrash: return "crash";
    case EventKind::kRecover: return "recover";
    case EventKind::kPartition: return "partition";
    case EventKind::kHeal: return "heal";
    case EventKind::kReconfigPhase: return "reconfig_phase";
    case EventKind::kReconfigCrash: return "reconfig_crash";
    case EventKind::kReconfigRecover: return "reconfig_recover";
  }
  return "unknown";
}

std::string format_event(const Event& event) {
  std::ostringstream os;
  os << "t=" << event.time << ' ' << event_kind_name(event.kind);
  if (event.site != Event::kNoSite) os << " site=" << event.site;
  if (event.peer != Event::kNoSite) os << " peer=" << event.peer;
  if (event.causal_id != 0) os << " cid=" << event.causal_id;
  if (event.txn_id != 0) os << " txn=" << event.txn_id;
  if (!event.label.empty()) os << ' ' << event.label;
  return os.str();
}

}  // namespace atrcp
