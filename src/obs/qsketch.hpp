// Mergeable fixed-point quantile sketch — the tail-latency instrument of
// the telemetry plane.
//
// A QuantileSketch is a DDSketch/HdrHistogram-style log-bucketed counter
// array over unsigned 64-bit samples (SimTime latencies, quorum sizes):
// values below 32 land in exact unit buckets, larger values in buckets of
// 32 sub-buckets per power of two, so every quantile estimate is within a
// relative error of 1/64 (~1.6%) of some recorded sample. Everything —
// bucket indexing, merging, quantile queries — is integer arithmetic only:
// no float ever touches the state, so two sketches fed the same samples in
// ANY order serialize byte-identically, and a shard merge produces the same
// bytes at every `--jobs` count. That jobs-invariance is the property the
// bench digest gates rely on; the histogram in obs/metrics.hpp keeps its
// coarse fixed bounds for dashboards, this sketch answers p50/p90/p99/p999.
//
// merge_from is exact: the merged sketch is indistinguishable from one that
// recorded both input streams (bucket counts add; count/sum/min/max fold).
// Merging is associative and commutative, so the parallel driver can fold
// shard registries in any grouping and the aggregate snapshot is stable.
//
// Thread-safety: none, like every obs instrument — one sketch belongs to
// one worker's registry; merge after the pool has joined.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace atrcp {

class QuantileSketch {
 public:
  /// Sub-buckets per power of two. 32 gives max relative error
  /// 2^-6 = 1/64 on every representative value.
  static constexpr std::uint32_t kSubBucketBits = 5;
  static constexpr std::uint32_t kSubBuckets = 1u << kSubBucketBits;
  /// Largest possible bucket index + 1 (all-ones uint64 sample).
  static constexpr std::uint32_t kMaxBuckets =
      kSubBuckets * (64 - kSubBucketBits + 1);

  /// Bucket index of a sample: values < 32 map exactly (index == value),
  /// larger values to 32 * (bit_width - 5) + the 5 bits below the leading
  /// one. Monotone in the sample.
  static std::uint32_t bucket_of(std::uint64_t sample) noexcept;

  /// Smallest sample mapping to `bucket` (inverse of bucket_of's floor).
  static std::uint64_t bucket_lower(std::uint32_t bucket) noexcept;

  /// The value a quantile query reports for `bucket`: the bucket midpoint
  /// (exact value for the unit buckets). Guaranteed within 1/64 relative
  /// error of every sample the bucket holds.
  static std::uint64_t bucket_representative(std::uint32_t bucket) noexcept;

  void record(std::uint64_t sample, std::uint64_t count = 1);

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t sum() const noexcept { return sum_; }
  /// min/max of recorded samples, exact; 0 when empty.
  std::uint64_t min() const noexcept { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const noexcept { return max_; }

  /// Nearest-rank quantile at `permille` (0..1000): the representative
  /// value of the bucket holding the ceil(count * permille / 1000)-th
  /// smallest sample. 0 when empty. Integer arithmetic throughout.
  std::uint64_t quantile_permille(std::uint32_t permille) const noexcept;

  std::uint64_t p50() const noexcept { return quantile_permille(500); }
  std::uint64_t p90() const noexcept { return quantile_permille(900); }
  std::uint64_t p99() const noexcept { return quantile_permille(990); }
  std::uint64_t p999() const noexcept { return quantile_permille(999); }

  /// Folds another sketch's population into this one — exact, order- and
  /// grouping-independent (the shard-aggregation primitive).
  void merge_from(const QuantileSketch& other);

  /// Number of buckets with a nonzero count.
  std::size_t nonzero_buckets() const noexcept;

  /// FNV-1a over the (bucket index, count) pairs plus count/sum/min/max —
  /// a fingerprint two sketches share iff their serialized state matches.
  std::uint64_t digest() const noexcept;

  /// Compact deterministic JSON: {"count":..,"sum":..,"min":..,"max":..,
  /// "p50":..,"p90":..,"p99":..,"p999":..,"nonzero":..,"digest":"<hex16>"}.
  /// Integer-only, so byte-identical across hosts and merge orders.
  std::string to_json() const;

  /// Dense bucket counts, index 0.. (sized to the highest touched bucket).
  const std::vector<std::uint64_t>& buckets() const noexcept {
    return buckets_;
  }

 private:
  std::vector<std::uint64_t> buckets_;  ///< grown on demand
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

}  // namespace atrcp
