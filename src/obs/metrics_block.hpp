// The one implementation of the benches' "metrics" JSON block. Before the
// run driver existed this lived inline in bench/metrics_block.hpp; now that
// bench_all, the per-bench binaries and the determinism tests all emit the
// block, the emitter (and its json_escape/format_double escape path, which
// the obs tests keep json_lint-clean) lives here. bench/metrics_block.hpp
// remains as the thin adapter that fills MetricsBlockInputs from a Cluster
// — obs sits below txn, so this file cannot (and does not) know Cluster.
//
// Thread-safety/determinism: pure function of its inputs; callers hand it
// quiescent snapshots (a settled cluster, or a post-join shard merge).
// Identical inputs produce byte-identical output.
#pragma once

#include <ostream>
#include <string>

namespace atrcp {

class MetricsRegistry;
class TxnSpanLog;

/// Everything the block needs, expressed in obs vocabulary only. The
/// measured mean quorum sizes are derived inside from the registry's
/// "quorum.<protocol>.*" counters (see measured_mean_quorum).
struct MetricsBlockInputs {
  std::string label;       ///< the block's "label" field
  std::string protocol;    ///< protocol name(); selects the counter prefix
  double read_predicted = 0;   ///< analytic read cost (Fact 3.2.1)
  double write_predicted = 0;  ///< analytic write cost (Fact 3.2.2)
  const TxnSpanLog* spans = nullptr;        ///< required
  const MetricsRegistry* registry = nullptr;  ///< required
};

/// Prints the block on one line:
///   {"label":...,"protocol":...,
///    "quorum_cost":{"read":{"measured":...,"predicted":...},"write":{...}},
///    "spans":{"recorded":...,"retained":...,"latency_us":{"p50":...,
///    "p95":...,"p99":...},"slowest":{...}},"registry":{...}}
/// `measured` values that never materialized serialize as null (NaN via
/// format_double). The spans object snapshots the TxnSpanLog (p50/p95/p99
/// over retained spans plus the single slowest transaction).
void emit_metrics_block_json(std::ostream& os, const MetricsBlockInputs& in);

/// The same block as a string (what bench_all digests).
std::string metrics_block_json(const MetricsBlockInputs& in);

}  // namespace atrcp
