#include "obs/chrome_trace.hpp"

#include <sstream>

#include "obs/metrics.hpp"

namespace atrcp {
namespace {

// All records live in pid 0; tid is the site id, with one synthetic track
// after the last real site for site-less (system) events.
struct TrackPlan {
  std::uint32_t system_tid = 0;
  std::uint32_t track_count = 0;  ///< real site tracks (0..track_count-1)
};

TrackPlan plan_tracks(const std::vector<Event>& events,
                      const std::vector<std::string>& site_names) {
  std::uint32_t max_site = 0;
  bool any_site = !site_names.empty();
  if (any_site) max_site = static_cast<std::uint32_t>(site_names.size() - 1);
  for (const Event& e : events) {
    if (e.site != Event::kNoSite && (!any_site || e.site > max_site)) {
      max_site = e.site;
      any_site = true;
    }
    if (e.peer != Event::kNoSite && (!any_site || e.peer > max_site)) {
      max_site = e.peer;
      any_site = true;
    }
  }
  TrackPlan plan;
  plan.track_count = any_site ? max_site + 1 : 0;
  plan.system_tid = plan.track_count;
  return plan;
}

std::string track_name(std::uint32_t site,
                       const std::vector<std::string>& site_names) {
  if (site < site_names.size() && !site_names[site].empty()) {
    return site_names[site];
  }
  return "site " + std::to_string(site);
}

void open_record(std::ostream& os, bool& first) {
  if (!first) os << ",\n";
  first = false;
}

}  // namespace

ChromeTraceStats write_chrome_trace(std::ostream& os, const EventBus& bus,
                                    const std::vector<std::string>&
                                        site_names) {
  const std::vector<Event> events = bus.snapshot();
  const TrackPlan plan = plan_tracks(events, site_names);
  ChromeTraceStats stats;
  bool first = true;

  os << "{\"traceEvents\":[\n";
  for (std::uint32_t tid = 0; tid < plan.track_count; ++tid) {
    open_record(os, first);
    os << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
       << json_escape(track_name(tid, site_names)) << "\"}}";
    ++stats.records;
    ++stats.tracks;
  }
  open_record(os, first);
  os << "{\"ph\":\"M\",\"pid\":0,\"tid\":" << plan.system_tid
     << ",\"name\":\"thread_name\",\"args\":{\"name\":\"system\"}}";
  ++stats.records;

  for (const Event& e : events) {
    const std::uint32_t tid =
        e.site != Event::kNoSite ? e.site : plan.system_tid;
    const std::string name =
        e.label.empty() ? event_kind_name(e.kind) : json_escape(e.label);
    switch (e.kind) {
      case EventKind::kMsgSend:
      case EventKind::kMsgDeliver:
      case EventKind::kMsgDrop: {
        open_record(os, first);
        os << "{\"ph\":\"X\",\"pid\":0,\"tid\":" << tid << ",\"ts\":" << e.time
           << ",\"dur\":1,\"cat\":\"msg\",\"name\":\"" << name
           << "\",\"args\":{\"kind\":\"" << event_kind_name(e.kind)
           << "\",\"peer\":" << e.peer << ",\"cid\":" << e.causal_id << "}}";
        ++stats.records;
        if (e.causal_id != 0) {
          open_record(os, first);
          if (e.kind == EventKind::kMsgSend) {
            os << "{\"ph\":\"s\",\"pid\":0,\"tid\":" << tid
               << ",\"ts\":" << e.time << ",\"cat\":\"msg\",\"name\":\"" << name
               << "\",\"id\":" << e.causal_id << "}";
            ++stats.flow_begins;
          } else {
            os << "{\"ph\":\"f\",\"bp\":\"e\",\"pid\":0,\"tid\":" << tid
               << ",\"ts\":" << e.time << ",\"cat\":\"msg\",\"name\":\"" << name
               << "\",\"id\":" << e.causal_id << "}";
            ++stats.flow_ends;
          }
          ++stats.records;
        }
        break;
      }
      case EventKind::kTxnBegin:
      case EventKind::kTxnFinish: {
        open_record(os, first);
        const char* ph = e.kind == EventKind::kTxnBegin ? "b" : "e";
        os << "{\"ph\":\"" << ph << "\",\"pid\":0,\"tid\":" << tid
           << ",\"ts\":" << e.time << ",\"cat\":\"txn\",\"id\":" << e.txn_id
           << ",\"name\":\"txn\",\"args\":{\"label\":\"" << name << "\"}}";
        ++stats.records;
        break;
      }
      default: {
        open_record(os, first);
        os << "{\"ph\":\"i\",\"pid\":0,\"tid\":" << tid << ",\"ts\":" << e.time
           << ",\"s\":\"t\",\"name\":\"" << event_kind_name(e.kind)
           << "\",\"args\":{\"label\":\"" << name
           << "\",\"txn\":" << e.txn_id << "}}";
        ++stats.records;
        break;
      }
    }
  }
  os << "\n]}\n";
  return stats;
}

std::string chrome_trace_json(const EventBus& bus,
                              const std::vector<std::string>& site_names,
                              ChromeTraceStats* stats) {
  std::ostringstream os;
  const ChromeTraceStats s = write_chrome_trace(os, bus, site_names);
  if (stats != nullptr) *stats = s;
  return os.str();
}

}  // namespace atrcp
