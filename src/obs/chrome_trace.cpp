#include "obs/chrome_trace.hpp"

#include <sstream>

#include "obs/critical_path.hpp"
#include "obs/metrics.hpp"

namespace atrcp {
namespace {

// All of a shard's records live in one pid; tid is the site id, with one
// synthetic track after the last real site for site-less (system) events
// and, when a critical-path overlay is requested, one more after that.
struct TrackPlan {
  std::uint32_t system_tid = 0;
  std::uint32_t track_count = 0;  ///< real site tracks (0..track_count-1)
};

TrackPlan plan_tracks(const std::vector<Event>& events,
                      const std::vector<std::string>& site_names) {
  std::uint32_t max_site = 0;
  bool any_site = !site_names.empty();
  if (any_site) max_site = static_cast<std::uint32_t>(site_names.size() - 1);
  for (const Event& e : events) {
    if (e.site != Event::kNoSite && (!any_site || e.site > max_site)) {
      max_site = e.site;
      any_site = true;
    }
    if (e.peer != Event::kNoSite && (!any_site || e.peer > max_site)) {
      max_site = e.peer;
      any_site = true;
    }
  }
  TrackPlan plan;
  plan.track_count = any_site ? max_site + 1 : 0;
  plan.system_tid = plan.track_count;
  return plan;
}

std::string track_name(std::uint32_t site,
                       const std::vector<std::string>& site_names) {
  if (site < site_names.size() && !site_names[site].empty()) {
    return site_names[site];
  }
  return "site " + std::to_string(site);
}

void open_record(std::ostream& os, bool& first) {
  if (!first) os << ",\n";
  first = false;
}

/// The top_k slowest paths as nested slices on their own track: one
/// enclosing "cp#<rank> txn <id>" slice per path, one slice per segment
/// inside it, so the straggler chain reads directly off the timeline.
void emit_critical_overlay(std::ostream& os, std::size_t pid,
                           std::uint32_t tid, const CriticalPathReport& report,
                           std::size_t top_k, bool& first,
                           ChromeTraceStats& stats) {
  const std::vector<const TxnCriticalPath*> slowest = report.slowest(top_k);
  if (slowest.empty()) return;
  open_record(os, first);
  os << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
     << ",\"name\":\"thread_name\",\"args\":{\"name\":\"critical path\"}}";
  ++stats.records;
  std::size_t rank = 0;
  for (const TxnCriticalPath* path : slowest) {
    ++rank;
    open_record(os, first);
    os << "{\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << tid
       << ",\"ts\":" << path->begin << ",\"dur\":" << path->total_us()
       << ",\"cat\":\"cpath\",\"name\":\"cp#" << rank << " txn "
       << path->txn_id << "\",\"args\":{\"coord\":" << path->coordinator
       << ",\"rounds\":" << path->rounds << ",\"lock_us\":" << path->lock_us
       << ",\"network_us\":" << path->network_us
       << ",\"service_us\":" << path->service_us
       << ",\"local_us\":" << path->local_us << "}}";
    ++stats.records;
    ++stats.critical_slices;
    for (const PathSegment& segment : path->segments) {
      open_record(os, first);
      os << "{\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << tid
         << ",\"ts\":" << segment.start
         << ",\"dur\":" << segment.duration() << ",\"cat\":\"cpath\","
         << "\"name\":\"" << path_segment_kind_name(segment.kind) << " "
         << json_escape(segment.label) << "\",\"args\":{";
      if (segment.site != Event::kNoSite) {
        os << "\"site\":" << segment.site << ",";
      }
      os << "\"txn\":" << path->txn_id << "}}";
      ++stats.records;
      ++stats.critical_slices;
    }
  }
}

void emit_shard(std::ostream& os, std::size_t pid, const ShardTrace& shard,
                bool& first, ChromeTraceStats& stats) {
  const std::vector<Event> events = shard.bus->snapshot();
  const TrackPlan plan = plan_tracks(events, shard.site_names);

  if (!shard.name.empty()) {
    open_record(os, first);
    os << "{\"ph\":\"M\",\"pid\":" << pid
       << ",\"name\":\"process_name\",\"args\":{\"name\":\""
       << json_escape(shard.name) << "\"}}";
    ++stats.records;
  }
  for (std::uint32_t tid = 0; tid < plan.track_count; ++tid) {
    open_record(os, first);
    os << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
       << json_escape(track_name(tid, shard.site_names)) << "\"}}";
    ++stats.records;
    ++stats.tracks;
  }
  open_record(os, first);
  os << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << plan.system_tid
     << ",\"name\":\"thread_name\",\"args\":{\"name\":\"system\"}}";
  ++stats.records;

  for (const Event& e : events) {
    const std::uint32_t tid =
        e.site != Event::kNoSite ? e.site : plan.system_tid;
    const std::string name =
        e.label.empty() ? event_kind_name(e.kind) : json_escape(e.label);
    switch (e.kind) {
      case EventKind::kMsgSend:
      case EventKind::kMsgDeliver:
      case EventKind::kMsgDrop: {
        open_record(os, first);
        os << "{\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << tid
           << ",\"ts\":" << e.time << ",\"dur\":1,\"cat\":\"msg\",\"name\":\""
           << name << "\",\"args\":{\"kind\":\"" << event_kind_name(e.kind)
           << "\",\"peer\":" << e.peer << ",\"cid\":" << e.causal_id << "}}";
        ++stats.records;
        if (e.causal_id != 0) {
          open_record(os, first);
          if (e.kind == EventKind::kMsgSend) {
            os << "{\"ph\":\"s\",\"pid\":" << pid << ",\"tid\":" << tid
               << ",\"ts\":" << e.time << ",\"cat\":\"msg\",\"name\":\"" << name
               << "\",\"id\":" << e.causal_id << "}";
            ++stats.flow_begins;
          } else {
            os << "{\"ph\":\"f\",\"bp\":\"e\",\"pid\":" << pid
               << ",\"tid\":" << tid << ",\"ts\":" << e.time
               << ",\"cat\":\"msg\",\"name\":\"" << name
               << "\",\"id\":" << e.causal_id << "}";
            ++stats.flow_ends;
          }
          ++stats.records;
        }
        break;
      }
      case EventKind::kTxnBegin:
      case EventKind::kTxnFinish: {
        open_record(os, first);
        const char* ph = e.kind == EventKind::kTxnBegin ? "b" : "e";
        os << "{\"ph\":\"" << ph << "\",\"pid\":" << pid << ",\"tid\":" << tid
           << ",\"ts\":" << e.time << ",\"cat\":\"txn\",\"id\":" << e.txn_id
           << ",\"name\":\"txn\",\"args\":{\"label\":\"" << name << "\"}}";
        ++stats.records;
        break;
      }
      default: {
        open_record(os, first);
        os << "{\"ph\":\"i\",\"pid\":" << pid << ",\"tid\":" << tid
           << ",\"ts\":" << e.time << ",\"s\":\"t\",\"name\":\""
           << event_kind_name(e.kind) << "\",\"args\":{\"label\":\"" << name
           << "\",\"txn\":" << e.txn_id << "}}";
        ++stats.records;
        break;
      }
    }
  }
  if (shard.critical != nullptr) {
    emit_critical_overlay(os, pid, plan.system_tid + 1, *shard.critical,
                          shard.top_k, first, stats);
  }
}

}  // namespace

ChromeTraceStats write_chrome_trace_shards(std::ostream& os,
                                           const std::vector<ShardTrace>&
                                               shards) {
  ChromeTraceStats stats;
  bool first = true;
  os << "{\"traceEvents\":[\n";
  for (std::size_t pid = 0; pid < shards.size(); ++pid) {
    emit_shard(os, pid, shards[pid], first, stats);
  }
  os << "\n]}\n";
  return stats;
}

ChromeTraceStats write_chrome_trace(std::ostream& os, const EventBus& bus,
                                    const std::vector<std::string>&
                                        site_names) {
  ShardTrace shard;
  shard.bus = &bus;
  shard.site_names = site_names;
  return write_chrome_trace_shards(os, {shard});
}

std::string chrome_trace_json(const EventBus& bus,
                              const std::vector<std::string>& site_names,
                              ChromeTraceStats* stats) {
  std::ostringstream os;
  const ChromeTraceStats s = write_chrome_trace(os, bus, site_names);
  if (stats != nullptr) *stats = s;
  return os.str();
}

std::string chrome_trace_shards_json(const std::vector<ShardTrace>& shards,
                                     ChromeTraceStats* stats) {
  std::ostringstream os;
  const ChromeTraceStats s = write_chrome_trace_shards(os, shards);
  if (stats != nullptr) *stats = s;
  return os.str();
}

}  // namespace atrcp
