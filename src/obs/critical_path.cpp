#include "obs/critical_path.hpp"

#include <algorithm>
#include <deque>

#include "obs/metrics.hpp"

namespace atrcp {
namespace {

/// Request-message tags the coordinator fans out, and the reply tag each
/// one is answered with. ApplyRequest (read repair) is fire-and-forget —
/// it has no entry, so it can never steal a reply pairing.
const char* expected_request(const std::string& reply_label) {
  if (reply_label == "ReadReply") return "ReadRequest";
  if (reply_label == "VersionReply") return "VersionRequest";
  if (reply_label == "PrepareVote") return "PrepareRequest";
  if (reply_label == "CommitAck") return "CommitRequest";
  if (reply_label == "AbortAck") return "AbortRequest";
  return nullptr;
}

bool is_request(const std::string& label) {
  return label == "ReadRequest" || label == "VersionRequest" ||
         label == "PrepareRequest" || label == "CommitRequest" ||
         label == "AbortRequest";
}

struct ReqEntry {
  std::uint64_t cid = 0;
  std::uint64_t txn = 0;
  std::uint64_t send = 0;
  std::uint64_t deliver = 0;
  bool delivered = false;
  std::string label;
};

struct Cycle {
  std::uint32_t peer = Event::kNoSite;
  std::uint64_t req_send = 0;
  std::uint64_t req_deliver = 0;
  std::uint64_t reply_send = 0;
  std::uint64_t reply_deliver = 0;
  bool complete = false;
  std::string label;  ///< the request tag
};

struct TxnBuild {
  std::uint32_t coordinator = Event::kNoSite;
  std::uint64_t begin = 0;
  bool ambiguous = false;  ///< >1 txn active at the coordinator at once
  std::uint64_t lock_wait_start = 0;
  bool lock_waiting = false;
  std::string lock_label;
  std::vector<PathSegment> lock_segments;
  std::vector<Cycle> cycles;
};

}  // namespace

const char* path_segment_kind_name(PathSegment::Kind kind) {
  switch (kind) {
    case PathSegment::Kind::kLockWait: return "lock_wait";
    case PathSegment::Kind::kRequestFlight: return "request";
    case PathSegment::Kind::kService: return "service";
    case PathSegment::Kind::kReplyFlight: return "reply";
  }
  return "unknown";
}

CriticalPathReport analyze_critical_paths(const EventBus& bus) {
  CriticalPathReport report;

  // (coordinator site, peer site) -> outstanding requests, send order.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::deque<ReqEntry>>
      outstanding;
  std::map<std::uint64_t, std::pair<std::uint32_t, std::uint32_t>>
      request_cid;                                  // cid -> queue key
  std::map<std::uint64_t, std::uint64_t> reply_txn;  // cid -> txn id
  std::map<std::uint64_t, std::size_t> reply_cycle;  // cid -> cycles index
  std::map<std::uint32_t, std::vector<std::uint64_t>> active;  // site -> txns
  std::map<std::uint64_t, TxnBuild> txns;

  const auto bump_straggler = [&report](std::uint32_t site) {
    if (report.straggler_counts.size() <= site) {
      report.straggler_counts.resize(site + 1, 0);
    }
    ++report.straggler_counts[site];
  };

  const std::size_t n = bus.size();
  for (std::size_t i = 0; i < n; ++i) {
    const Event& e = bus.at(i);
    switch (e.kind) {
      case EventKind::kTxnBegin: {
        auto& list = active[e.site];
        list.push_back(e.txn_id);
        TxnBuild build;
        build.coordinator = e.site;
        build.begin = e.time;
        if (list.size() > 1) {
          // Concurrent txns on one coordinator: request sends can no
          // longer be attributed soundly; skip all of them.
          build.ambiguous = true;
          for (const std::uint64_t id : list) {
            const auto it = txns.find(id);
            if (it != txns.end()) it->second.ambiguous = true;
          }
        }
        txns.emplace(e.txn_id, std::move(build));
        break;
      }
      case EventKind::kLockWait: {
        const auto it = txns.find(e.txn_id);
        if (it == txns.end()) break;
        it->second.lock_wait_start = e.time;
        it->second.lock_waiting = true;
        it->second.lock_label = e.label;
        break;
      }
      case EventKind::kLockGranted: {
        const auto it = txns.find(e.txn_id);
        if (it == txns.end() || !it->second.lock_waiting) break;
        TxnBuild& build = it->second;
        build.lock_waiting = false;
        if (e.time > build.lock_wait_start) {
          PathSegment segment;
          segment.kind = PathSegment::Kind::kLockWait;
          segment.start = build.lock_wait_start;
          segment.end = e.time;
          segment.label = build.lock_label;
          build.lock_segments.push_back(std::move(segment));
        }
        break;
      }
      case EventKind::kMsgSend: {
        if (e.causal_id == 0 || e.peer == Event::kNoSite) break;
        if (is_request(e.label)) {
          const auto it = active.find(e.site);
          if (it == active.end() || it->second.empty()) break;
          if (it->second.size() > 1) break;  // ambiguous, already flagged
          ReqEntry entry;
          entry.cid = e.causal_id;
          entry.txn = it->second.front();
          entry.send = e.time;
          entry.label = e.label;
          outstanding[{e.site, e.peer}].push_back(std::move(entry));
          request_cid[e.causal_id] = {e.site, e.peer};
          break;
        }
        if (const char* want = expected_request(e.label)) {
          // A reply leaving peer e.site for coordinator e.peer: pair it
          // with the oldest delivered outstanding request of the matching
          // type (FIFO links + run-to-completion service make this exact).
          const auto qit = outstanding.find({e.peer, e.site});
          if (qit == outstanding.end()) break;
          auto& queue = qit->second;
          for (auto entry = queue.begin(); entry != queue.end(); ++entry) {
            if (!entry->delivered || entry->label != want) continue;
            const auto txn_it = txns.find(entry->txn);
            if (txn_it != txns.end()) {
              Cycle cycle;
              cycle.peer = e.site;
              cycle.req_send = entry->send;
              cycle.req_deliver = entry->deliver;
              cycle.reply_send = e.time;
              cycle.label = entry->label;
              reply_txn[e.causal_id] = entry->txn;
              reply_cycle[e.causal_id] = txn_it->second.cycles.size();
              txn_it->second.cycles.push_back(std::move(cycle));
            }
            request_cid.erase(entry->cid);
            queue.erase(entry);
            break;
          }
        }
        break;
      }
      case EventKind::kMsgDeliver: {
        if (e.causal_id == 0) break;
        if (const auto rit = request_cid.find(e.causal_id);
            rit != request_cid.end()) {
          auto& queue = outstanding[rit->second];
          for (ReqEntry& entry : queue) {
            if (entry.cid != e.causal_id) continue;
            entry.delivered = true;
            entry.deliver = e.time;
            break;
          }
          break;
        }
        if (const auto cit = reply_txn.find(e.causal_id);
            cit != reply_txn.end()) {
          const auto txn_it = txns.find(cit->second);
          if (txn_it != txns.end()) {
            Cycle& cycle =
                txn_it->second.cycles[reply_cycle[e.causal_id]];
            cycle.reply_deliver = e.time;
            cycle.complete = true;
          }
          reply_txn.erase(cit);
          reply_cycle.erase(e.causal_id);
        }
        break;
      }
      case EventKind::kMsgDrop: {
        if (e.causal_id == 0) break;
        if (const auto rit = request_cid.find(e.causal_id);
            rit != request_cid.end()) {
          auto& queue = outstanding[rit->second];
          for (auto entry = queue.begin(); entry != queue.end(); ++entry) {
            if (entry->cid != e.causal_id) continue;
            queue.erase(entry);
            break;
          }
          request_cid.erase(rit);
          break;
        }
        reply_txn.erase(e.causal_id);
        reply_cycle.erase(e.causal_id);
        break;
      }
      case EventKind::kTxnFinish: {
        // Drop from the coordinator's active list whatever happens next.
        if (const auto ait = active.find(e.site); ait != active.end()) {
          auto& list = ait->second;
          list.erase(std::remove(list.begin(), list.end(), e.txn_id),
                     list.end());
        }
        const bool committed = e.label == "committed";
        const auto it = txns.find(e.txn_id);
        if (it == txns.end()) {
          if (committed) ++report.txns_truncated;
          break;
        }
        TxnBuild build = std::move(it->second);
        txns.erase(it);
        // Purge any still-outstanding requests of this txn so later
        // replies cannot mis-pair with a dead transaction.
        for (auto& [key, queue] : outstanding) {
          if (key.first != build.coordinator) continue;
          for (auto entry = queue.begin(); entry != queue.end();) {
            if (entry->txn == e.txn_id) {
              request_cid.erase(entry->cid);
              entry = queue.erase(entry);
            } else {
              ++entry;
            }
          }
        }
        if (!committed) break;
        if (build.ambiguous) {
          ++report.txns_truncated;
          break;
        }

        TxnCriticalPath path;
        path.txn_id = e.txn_id;
        path.coordinator = build.coordinator;
        path.begin = build.begin;
        path.end = e.time;
        path.segments = std::move(build.lock_segments);
        for (const PathSegment& segment : path.segments) {
          path.lock_us += segment.duration();
        }

        // Group completed cycles into rounds by fan-out instant; the
        // round's straggler (latest reply, smallest peer on ties) is the
        // critical chain through that round.
        std::map<std::uint64_t, std::vector<const Cycle*>> rounds;
        for (const Cycle& cycle : build.cycles) {
          if (cycle.complete) rounds[cycle.req_send].push_back(&cycle);
        }
        path.rounds = rounds.size();
        for (const auto& [send_time, members] : rounds) {
          const Cycle* straggler = members.front();
          for (const Cycle* cycle : members) {
            if (cycle->reply_deliver > straggler->reply_deliver ||
                (cycle->reply_deliver == straggler->reply_deliver &&
                 cycle->peer < straggler->peer)) {
              straggler = cycle;
            }
          }
          bump_straggler(straggler->peer);
          PathSegment request;
          request.kind = PathSegment::Kind::kRequestFlight;
          request.start = straggler->req_send;
          request.end = straggler->req_deliver;
          request.site = straggler->peer;
          request.label = straggler->label;
          PathSegment service;
          service.kind = PathSegment::Kind::kService;
          service.start = straggler->req_deliver;
          service.end = straggler->reply_send;
          service.site = straggler->peer;
          service.label = straggler->label;
          PathSegment reply;
          reply.kind = PathSegment::Kind::kReplyFlight;
          reply.start = straggler->reply_send;
          reply.end = straggler->reply_deliver;
          reply.site = straggler->peer;
          reply.label = straggler->label;
          path.network_us += request.duration() + reply.duration();
          path.service_us += service.duration();
          path.segments.push_back(std::move(request));
          path.segments.push_back(std::move(service));
          path.segments.push_back(std::move(reply));
        }
        std::sort(path.segments.begin(), path.segments.end(),
                  [](const PathSegment& a, const PathSegment& b) {
                    if (a.start != b.start) return a.start < b.start;
                    return a.end < b.end;
                  });
        const std::uint64_t accounted =
            path.lock_us + path.network_us + path.service_us;
        // Commit-retransmit rounds can overlap the original fan-out, so
        // clamp rather than trust the subtraction.
        path.local_us =
            path.total_us() > accounted ? path.total_us() - accounted : 0;

        report.lock_us += path.lock_us;
        report.network_us += path.network_us;
        report.service_us += path.service_us;
        report.local_us += path.local_us;
        report.total_us += path.total_us();
        ++report.txns_analyzed;
        report.paths.push_back(std::move(path));
        break;
      }
      default:
        break;
    }
  }
  return report;
}

void CriticalPathReport::merge_from(const CriticalPathReport& other) {
  if (&other == this) return;
  txns_analyzed += other.txns_analyzed;
  txns_truncated += other.txns_truncated;
  paths.insert(paths.end(), other.paths.begin(), other.paths.end());
  if (straggler_counts.size() < other.straggler_counts.size()) {
    straggler_counts.resize(other.straggler_counts.size(), 0);
  }
  for (std::size_t s = 0; s < other.straggler_counts.size(); ++s) {
    straggler_counts[s] += other.straggler_counts[s];
  }
  lock_us += other.lock_us;
  network_us += other.network_us;
  service_us += other.service_us;
  local_us += other.local_us;
  total_us += other.total_us;
}

std::vector<const TxnCriticalPath*> CriticalPathReport::slowest(
    std::size_t k) const {
  std::vector<const TxnCriticalPath*> out;
  out.reserve(paths.size());
  for (const TxnCriticalPath& path : paths) out.push_back(&path);
  std::sort(out.begin(), out.end(),
            [](const TxnCriticalPath* a, const TxnCriticalPath* b) {
              if (a->total_us() != b->total_us()) {
                return a->total_us() > b->total_us();
              }
              if (a->coordinator != b->coordinator) {
                return a->coordinator < b->coordinator;
              }
              return a->txn_id < b->txn_id;
            });
  if (out.size() > k) out.resize(k);
  return out;
}

std::string CriticalPathReport::to_json(std::size_t top_k) const {
  std::uint64_t rounds = 0;
  for (const TxnCriticalPath& path : paths) rounds += path.rounds;
  std::string out = "{\"txns\":" + std::to_string(txns_analyzed) +
                    ",\"truncated\":" + std::to_string(txns_truncated) +
                    ",\"rounds\":" + std::to_string(rounds) +
                    ",\"lock_us\":" + std::to_string(lock_us) +
                    ",\"network_us\":" + std::to_string(network_us) +
                    ",\"service_us\":" + std::to_string(service_us) +
                    ",\"local_us\":" + std::to_string(local_us) +
                    ",\"total_us\":" + std::to_string(total_us) +
                    ",\"stragglers\":[";
  std::size_t last_nonzero = 0;
  for (std::size_t s = 0; s < straggler_counts.size(); ++s) {
    if (straggler_counts[s] != 0) last_nonzero = s + 1;
  }
  for (std::size_t s = 0; s < last_nonzero; ++s) {
    if (s) out += ",";
    out += std::to_string(straggler_counts[s]);
  }
  out += "],\"slowest\":[";
  bool first_path = true;
  for (const TxnCriticalPath* path : slowest(top_k)) {
    if (!first_path) out += ",";
    first_path = false;
    out += "{\"txn\":" + std::to_string(path->txn_id) +
           ",\"coord\":" + std::to_string(path->coordinator) +
           ",\"total_us\":" + std::to_string(path->total_us()) +
           ",\"rounds\":" + std::to_string(path->rounds) +
           ",\"lock_us\":" + std::to_string(path->lock_us) +
           ",\"network_us\":" + std::to_string(path->network_us) +
           ",\"service_us\":" + std::to_string(path->service_us) +
           ",\"local_us\":" + std::to_string(path->local_us) + ",\"path\":[";
    bool first_segment = true;
    for (const PathSegment& segment : path->segments) {
      if (!first_segment) out += ",";
      first_segment = false;
      out += std::string("{\"kind\":\"") +
             path_segment_kind_name(segment.kind) + "\"";
      if (segment.site != Event::kNoSite) {
        out += ",\"site\":" + std::to_string(segment.site);
      }
      out += ",\"start\":" + std::to_string(segment.start) +
             ",\"end\":" + std::to_string(segment.end) + ",\"label\":\"" +
             json_escape(segment.label) + "\"}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace atrcp
