#include "obs/metrics_block.hpp"

#include <sstream>

#include "obs/metrics.hpp"
#include "obs/site_load.hpp"
#include "obs/span.hpp"
#include "util/check.hpp"

namespace atrcp {

void emit_metrics_block_json(std::ostream& os, const MetricsBlockInputs& in) {
  ATRCP_CHECK(in.spans != nullptr && in.registry != nullptr);
  os << "{\"label\":\"" << json_escape(in.label) << "\",\"protocol\":\""
     << json_escape(in.protocol) << "\",\"quorum_cost\":{\"read\":{"
     << "\"measured\":"
     << format_double(measured_mean_quorum(*in.registry, in.protocol, "read"))
     << ",\"predicted\":" << format_double(in.read_predicted)
     << "},\"write\":{\"measured\":"
     << format_double(measured_mean_quorum(*in.registry, in.protocol, "write"))
     << ",\"predicted\":" << format_double(in.write_predicted)
     << "}},\"spans\":" << summarize_spans(*in.spans).to_json()
     << ",\"registry\":";
  in.registry->to_json(os);
  os << "}";
}

std::string metrics_block_json(const MetricsBlockInputs& in) {
  std::ostringstream os;
  emit_metrics_block_json(os, in);
  return os.str();
}

}  // namespace atrcp
