#include "obs/json_lint.hpp"

#include <cctype>
#include <cstddef>

namespace atrcp {
namespace {

constexpr int kMaxDepth = 256;

struct Linter {
  std::string_view text;
  std::size_t pos = 0;
  std::string reason;

  bool fail(const std::string& why) {
    if (reason.empty()) {
      reason = "offset " + std::to_string(pos) + ": " + why;
    }
    return false;
  }

  bool at_end() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }

  void skip_ws() {
    while (!at_end() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                         peek() == '\r')) {
      ++pos;
    }
  }

  bool consume(char c) {
    if (at_end() || peek() != c) {
      return fail(std::string("expected '") + c + "'");
    }
    ++pos;
    return true;
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) {
      return fail("bad literal");
    }
    pos += word.size();
    return true;
  }

  bool string() {
    if (!consume('"')) return false;
    while (true) {
      if (at_end()) return fail("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text[pos]);
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c < 0x20) return fail("raw control character in string");
      if (c == '\\') {
        ++pos;
        if (at_end()) return fail("unterminated escape");
        const char e = text[pos];
        if (e == '"' || e == '\\' || e == '/' || e == 'b' || e == 'f' ||
            e == 'n' || e == 'r' || e == 't') {
          ++pos;
        } else if (e == 'u') {
          ++pos;
          for (int i = 0; i < 4; ++i, ++pos) {
            if (at_end() ||
                std::isxdigit(static_cast<unsigned char>(peek())) == 0) {
              return fail("bad \\u escape");
            }
          }
        } else {
          return fail("bad escape");
        }
      } else {
        ++pos;
      }
    }
  }

  bool digits() {
    if (at_end() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
      return fail("expected digit");
    }
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek())) != 0) {
      ++pos;
    }
    return true;
  }

  bool number() {
    if (!at_end() && peek() == '-') ++pos;
    if (at_end()) return fail("truncated number");
    if (peek() == '0') {
      ++pos;
    } else if (!digits()) {
      return false;
    }
    if (!at_end() && peek() == '.') {
      ++pos;
      if (!digits()) return false;
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos;
      if (!digits()) return false;
    }
    return true;
  }

  bool value(int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (at_end()) return fail("expected value");
    const char c = peek();
    if (c == '{') return object(depth);
    if (c == '[') return array(depth);
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c)) != 0) {
      return number();
    }
    return fail("unexpected character");
  }

  bool object(int depth) {
    consume('{');
    skip_ws();
    if (!at_end() && peek() == '}') {
      ++pos;
      return true;
    }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!consume(':')) return false;
      if (!value(depth + 1)) return false;
      skip_ws();
      if (at_end()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos;
        continue;
      }
      return consume('}');
    }
  }

  bool array(int depth) {
    consume('[');
    skip_ws();
    if (!at_end() && peek() == ']') {
      ++pos;
      return true;
    }
    while (true) {
      if (!value(depth + 1)) return false;
      skip_ws();
      if (at_end()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos;
        continue;
      }
      return consume(']');
    }
  }
};

}  // namespace

bool json_valid(std::string_view text, std::string* error) {
  Linter linter;
  linter.text = text;
  bool ok = linter.value(0);
  if (ok) {
    linter.skip_ws();
    if (!linter.at_end()) ok = linter.fail("trailing content");
  }
  if (!ok && error != nullptr) *error = linter.reason;
  return ok;
}

}  // namespace atrcp
