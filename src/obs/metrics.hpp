// Deterministic, allocation-light metrics for the simulator and benches.
//
// A MetricsRegistry owns named counters, gauges and fixed-bucket histograms.
// Instruments are created once (first use) and then updated through stable
// pointers, so hot paths pay a pointer dereference and an add — no lookups,
// no allocation. Registration order does not matter: instruments live in
// name-sorted maps, so the JSON snapshot of two runs with identical inputs
// is byte-identical (the determinism the sim tests rely on). Nothing here
// reads a wall clock; latency histograms record SimTime samples fed by the
// caller.
//
// Thread-safety contract (the parallel run driver relies on this): nothing
// in this file takes a lock. A registry and its instruments must stay
// confined to the worker that owns the Cluster feeding them — one shard,
// one registry. Cross-shard aggregation goes through merge_from(), called
// on the driver thread AFTER its workers joined; the join is the
// synchronization point, so the merge itself can stay lock-free and the
// merged snapshot stays byte-deterministic (merge order over name-sorted
// maps does not depend on worker scheduling).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/qsketch.hpp"

namespace atrcp {

/// Monotonically increasing unsigned 64-bit event count.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) noexcept { value_ += delta; }
  std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

/// A point-in-time double (queue depths, ratios, configuration echoes).
class Gauge {
 public:
  void set(double value) noexcept { value_ = value; }
  void add(double delta) noexcept { value_ += delta; }
  double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed-bucket histogram over unsigned 64-bit samples (SimTime latencies,
/// quorum sizes, message counts). Bucket i counts samples <= bounds[i];
/// samples above the last bound land in the overflow bucket. Bounds are
/// frozen at creation, so recording never allocates.
class Histogram {
 public:
  /// `bounds` must be non-empty and strictly increasing; throws
  /// std::invalid_argument otherwise.
  explicit Histogram(std::vector<std::uint64_t> bounds);

  void record(std::uint64_t sample) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t sum() const noexcept { return sum_; }
  /// min/max of recorded samples; 0 when empty.
  std::uint64_t min() const noexcept { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const noexcept { return max_; }
  double mean() const noexcept;

  const std::vector<std::uint64_t>& bounds() const noexcept { return bounds_; }
  /// One count per bound, in bound order.
  const std::vector<std::uint64_t>& bucket_counts() const noexcept {
    return counts_;
  }
  std::uint64_t overflow() const noexcept { return overflow_; }

  /// Folds another histogram's population into this one, as if every sample
  /// recorded there had been recorded here. Requires identical bounds
  /// (throws std::invalid_argument otherwise) — in practice all latency
  /// histograms share latency_bounds_us(), so shard registries always merge.
  void merge_from(const Histogram& other);

 private:
  std::vector<std::uint64_t> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t overflow_ = 0;
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
  std::uint64_t min_ = 0;
  std::uint64_t max_ = 0;
};

class MetricsRegistry {
 public:
  /// Find-or-create. The returned reference is stable for the registry's
  /// lifetime — instrumented code caches the pointer and never looks up
  /// again. A name names exactly one kind of instrument; reusing it for a
  /// different kind throws std::invalid_argument.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// For an existing histogram the bounds argument must match the original
  /// (throws std::invalid_argument on mismatch).
  Histogram& histogram(const std::string& name,
                       std::vector<std::uint64_t> bounds);
  /// Log-bucketed mergeable quantile sketch (p50/p90/p99/p999 with <=1/64
  /// relative error; see obs/qsketch.hpp). Same find-or-create contract.
  QuantileSketch& qsketch(const std::string& name);

  /// Lookup without creation; nullptr when absent.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;
  const QuantileSketch* find_qsketch(const std::string& name) const;

  std::size_t counter_count() const noexcept { return counters_.size(); }
  std::size_t gauge_count() const noexcept { return gauges_.size(); }
  std::size_t histogram_count() const noexcept { return histograms_.size(); }
  std::size_t qsketch_count() const noexcept { return qsketches_.size(); }

  /// Name-sorted view of every quantile sketch — the tail-latency emitters
  /// walk this to build per-mix percentile blocks.
  const std::map<std::string, std::unique_ptr<QuantileSketch>>& qsketches()
      const noexcept {
    return qsketches_;
  }

  /// The default latency bucket bounds (sim-microseconds): 50us .. 1s in a
  /// 1-2-5 progression. Shared by every latency histogram so snapshots are
  /// directly comparable.
  static const std::vector<std::uint64_t>& latency_bounds_us();

  /// Deterministic JSON snapshot: instruments sorted by name, integers
  /// exact, doubles in shortest round-trip form. Two runs that feed the
  /// registry identical values serialize byte-identically.
  void to_json(std::ostream& os) const;
  std::string to_json_string() const;

  /// Folds another registry into this one: counters add, gauges add,
  /// histograms merge bucket-wise (Histogram::merge_from; same-name
  /// histograms must share bounds). Instruments absent here are created.
  /// This is the shard-aggregation primitive of the parallel run driver:
  /// per-shard Cluster registries, merged in shard-index order after the
  /// worker pool joins, produce the same aggregate snapshot at any
  /// `--jobs` count. NOT safe to call while another thread still updates
  /// `other` — merge only after joining. Merging an empty registry (or an
  /// empty shard into a populated one) leaves the to_json snapshot
  /// byte-identical; merging a registry into itself is a no-op.
  void merge_from(const MetricsRegistry& other);

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<QuantileSketch>> qsketches_;
};

/// Shortest round-trip decimal form of a double ("2", "0.35", "1e+300") —
/// the deterministic formatting used by MetricsRegistry::to_json, exposed
/// for benches that append derived values to a snapshot.
std::string format_double(double value);

/// Escape a string for inclusion in a JSON string literal.
std::string json_escape(const std::string& text);

}  // namespace atrcp
