// Chrome trace-event export of a flight-recorder run: open the file in
// Perfetto (ui.perfetto.dev) or chrome://tracing and every site is a track,
// message sends/delivers are slices connected by flow arrows along the
// causal id, transactions are async spans, and crashes/partitions are
// instants. The emitted JSON is byte-deterministic: same bus contents,
// same bytes.
//
// Thread-safety: pure functions of the bus they are handed; safe to call
// from any thread as long as nothing is still publishing into that bus
// (under the parallel run driver: after the worker owning the bus's
// Cluster has finished its shard).
#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "obs/event_bus.hpp"

namespace atrcp {

struct CriticalPathReport;

/// What an export wrote, for smoke checks ("nonzero flow events").
struct ChromeTraceStats {
  std::size_t records = 0;      ///< trace records emitted (incl. metadata)
  std::size_t flow_begins = 0;  ///< "s" flow-start events (at kMsgSend)
  std::size_t flow_ends = 0;    ///< "f" flow-finish events (deliver/drop)
  std::size_t tracks = 0;       ///< named per-site tracks
  std::size_t critical_slices = 0;  ///< critical-path overlay slices
};

/// One flight recorder to export. Multi-shard exports render each shard as
/// its own Chrome trace PROCESS (pid = shard index, process_name metadata)
/// with the shard's sites as threads inside it, so a Perfetto timeline
/// shows every shard's world side by side.
struct ShardTrace {
  const EventBus* bus = nullptr;  ///< required
  /// Process name ("shard 3"); empty = no process_name record (the
  /// single-bus export's legacy shape).
  std::string name;
  std::vector<std::string> site_names;
  /// When set, the top_k slowest analyzed paths are overlaid as nested
  /// slices on a dedicated "critical path" track of this shard.
  const CriticalPathReport* critical = nullptr;
  std::size_t top_k = 3;
};

/// Renders the bus's retained events as a Chrome trace-event JSON document
/// ({"traceEvents":[...]}). `site_names[i]` labels site i's track; missing
/// names fall back to "site <i>". Events with site == Event::kNoSite land
/// on a synthetic "system" track.
ChromeTraceStats write_chrome_trace(std::ostream& os, const EventBus& bus,
                                    const std::vector<std::string>&
                                        site_names = {});

/// Convenience: the same document as a string.
std::string chrome_trace_json(const EventBus& bus,
                              const std::vector<std::string>& site_names = {},
                              ChromeTraceStats* stats = nullptr);

/// Multi-shard export: one document, one process per ShardTrace, optional
/// critical-path overlays. A single unnamed shard with no overlay is byte-
/// identical to write_chrome_trace.
ChromeTraceStats write_chrome_trace_shards(std::ostream& os,
                                           const std::vector<ShardTrace>&
                                               shards);

/// Convenience: the multi-shard document as a string.
std::string chrome_trace_shards_json(const std::vector<ShardTrace>& shards,
                                     ChromeTraceStats* stats = nullptr);

}  // namespace atrcp
