#include "txn/workload.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/check.hpp"

namespace atrcp {

double WorkloadStats::max_replica_share() const {
  std::uint64_t total = 0;
  std::uint64_t peak = 0;
  for (std::uint64_t m : replica_messages) {
    total += m;
    peak = std::max(peak, m);
  }
  return total == 0 ? 0.0
                    : static_cast<double>(peak) / static_cast<double>(total);
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be > 0");
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    total += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
    cdf_[k] = total;
  }
  for (double& c : cdf_) c /= total;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(std::distance(cdf_.begin(), it));
}

namespace {

/// Per-client closed-loop driver: issues the next transaction from the
/// completion callback of the previous one.
class ClientLoop {
 public:
  ClientLoop(Cluster& cluster, std::size_t client_index,
             const WorkloadOptions& options, ZipfSampler& keys, Rng rng,
             WorkloadStats& stats)
      : cluster_(cluster),
        client_index_(client_index),
        options_(options),
        keys_(keys),
        rng_(rng),
        stats_(stats) {}

  void start() { issue(); }
  bool finished() const noexcept { return issued_ >= options_.transactions_per_client && !in_flight_; }

 private:
  void issue() {
    if (issued_ >= options_.transactions_per_client) return;
    ++issued_;
    in_flight_ = true;
    std::vector<TxnOp> ops;
    ops.reserve(options_.ops_per_txn);
    for (std::size_t i = 0; i < options_.ops_per_txn; ++i) {
      const Key key = static_cast<Key>(keys_.sample(rng_));
      if (rng_.chance(options_.read_fraction)) {
        ops.push_back(TxnOp::read(key));
        ++stats_.reads_issued;
      } else {
        ops.push_back(TxnOp::write(
            key, "c" + std::to_string(client_index_) + "-t" +
                     std::to_string(issued_) + "-o" + std::to_string(i)));
        ++stats_.writes_issued;
      }
    }
    started_at_ = cluster_.scheduler().now();
    cluster_.client(client_index_).run(std::move(ops), [this](TxnResult r) {
      on_done(r);
    });
  }

  void on_done(const TxnResult& result) {
    in_flight_ = false;
    const auto latency = cluster_.scheduler().now() - started_at_;
    total_latency_ += latency;
    stats_.latency.add(static_cast<double>(latency));
    switch (result.outcome) {
      case TxnOutcome::kCommitted: ++stats_.committed; break;
      case TxnOutcome::kAborted: ++stats_.aborted; break;
      case TxnOutcome::kBlocked: ++stats_.blocked; break;
    }
    completions_ += 1;
    issue();
  }

 public:
  std::uint64_t total_latency_ = 0;
  std::uint64_t completions_ = 0;

 private:
  Cluster& cluster_;
  std::size_t client_index_;
  const WorkloadOptions& options_;
  ZipfSampler& keys_;
  Rng rng_;
  WorkloadStats& stats_;
  std::size_t issued_ = 0;
  bool in_flight_ = false;
  SimTime started_at_ = 0;
};

}  // namespace

WorkloadStats run_workload(Cluster& cluster, const WorkloadOptions& options) {
  if (options.transactions_per_client == 0 || options.ops_per_txn == 0) {
    throw std::invalid_argument("run_workload: empty workload");
  }
  WorkloadStats stats;
  ZipfSampler keys(options.num_keys, options.zipf_exponent);
  Rng seeder(options.seed);

  std::vector<std::unique_ptr<ClientLoop>> loops;
  loops.reserve(cluster.client_count());
  for (std::size_t c = 0; c < cluster.client_count(); ++c) {
    loops.push_back(std::make_unique<ClientLoop>(cluster, c, options, keys,
                                                 seeder.fork(), stats));
  }
  const std::uint64_t sent_before = cluster.network().messages_sent();
  std::vector<std::uint64_t> replica_before(cluster.replica_count());
  for (std::size_t r = 0; r < cluster.replica_count(); ++r) {
    replica_before[r] =
        cluster.server(static_cast<ReplicaId>(r)).messages_received();
  }
  for (auto& loop : loops) loop->start();
  cluster.settle();

  std::uint64_t total_latency = 0;
  std::uint64_t completions = 0;
  for (const auto& loop : loops) {
    ATRCP_CHECK(loop->finished());
    total_latency += loop->total_latency_;
    completions += loop->completions_;
  }
  stats.mean_latency_us =
      completions == 0 ? 0.0
                       : static_cast<double>(total_latency) /
                             static_cast<double>(completions);
  stats.messages_sent = cluster.network().messages_sent() - sent_before;
  stats.replica_messages.resize(cluster.replica_count());
  for (std::size_t r = 0; r < cluster.replica_count(); ++r) {
    stats.replica_messages[r] =
        cluster.server(static_cast<ReplicaId>(r)).messages_received() -
        replica_before[r];
  }
  return stats;
}

}  // namespace atrcp
