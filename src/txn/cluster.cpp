#include "txn/cluster.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "util/check.hpp"

namespace atrcp {

Cluster::Cluster(std::unique_ptr<ReplicaControlProtocol> protocol,
                 ClusterOptions options)
    : spans_(options.span_log_capacity),
      protocol_(std::move(protocol)),
      network_(scheduler_, Rng(options.seed), options.link) {
  if (!protocol_) throw std::invalid_argument("Cluster: null protocol");
  if (options.clients == 0) {
    throw std::invalid_argument("Cluster: need at least one client");
  }
  protocol_->attach_metrics(metrics_);
  network_.set_metrics(&metrics_);
  if (options.external_events != nullptr) {
    // Arena reuse: record into the caller's bus, rewound to as-new so the
    // recording (causal ids included) matches a freshly built bus.
    options.external_events->reset();
    events_view_ = options.external_events;
  } else if (options.event_bus_capacity > 0) {
    events_ = std::make_unique<EventBus>(options.event_bus_capacity);
    events_view_ = events_.get();
  }
  if (events_view_ != nullptr) {
    network_.set_event_bus(events_view_);
  }
  Rng seeder(options.seed ^ 0x5DEECE66DULL);

  // The physical pool may exceed the initial protocol's universe so that
  // online reconfigurations can transition onto larger trees; extra
  // replicas idle until an epoch brings them in.
  const std::size_t n =
      std::max(options.site_pool, protocol_->universe_size());
  servers_.reserve(n);
  std::vector<SiteId> replica_sites;
  replica_sites.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    auto server = std::make_unique<ReplicaServer>(network_);
    const SiteId site = network_.add_site(*server);
    ATRCP_CHECK(site == r);  // replica id == site id by construction
    server->set_site(site);
    server->set_metrics(&metrics_);
    server->set_event_bus(events_view_);
    replica_sites.push_back(site);
    servers_.push_back(std::move(server));
  }

  injector_ = std::make_unique<FailureInjector>(network_, scheduler_, n,
                                                seeder.fork());
  injector_->set_event_bus(events_view_);

  const FailureSet* failure_view = &injector_->failures();
  if (options.use_heartbeat_detector) {
    detector_ = std::make_unique<HeartbeatDetector>(network_, scheduler_, n,
                                                    options.detector);
    detector_->set_site(network_.add_site(*detector_));
    detector_->start();
    failure_view = &detector_->view();
  }

  coordinators_.reserve(options.clients);
  for (std::size_t c = 0; c < options.clients; ++c) {
    auto coordinator = std::make_unique<Coordinator>(
        network_, scheduler_, *protocol_, replica_sites, locks_,
        seeder.fork(), options.coordinator, failure_view);
    const SiteId site = network_.add_site(*coordinator);
    coordinator->set_site(site);
    coordinator->set_metrics(&metrics_, &spans_);
    coordinator->set_event_bus(events_view_);
    if (options.record_history) coordinator->set_history(&history_);
    coordinators_.push_back(std::move(coordinator));
  }

  if (options.enable_reconfig) {
    // Built LAST: its site id and rng fork come after every component that
    // exists on the disabled path, so turning reconfiguration off leaves
    // site numbering and all pre-existing rng streams byte-identical.
    reconfig_ = std::make_unique<ReconfigManager>(
        network_, scheduler_, *protocol_, replica_sites, seeder.fork(),
        options.reconfig);
    reconfig_->set_site(network_.add_site(*reconfig_));
    reconfig_->set_metrics(&metrics_);
    reconfig_->set_event_bus(events_view_);
    for (const auto& coordinator : coordinators_) {
      coordinator->set_epoch_source(reconfig_.get());
    }
  }
}

void Cluster::start_reconfiguration(
    std::unique_ptr<ReplicaControlProtocol> next,
    ReconfigManager::DoneCallback done) {
  if (!reconfig_) {
    throw std::logic_error(
        "start_reconfiguration: ClusterOptions::enable_reconfig is off");
  }
  reconfig_->start(std::move(next), std::move(done));
}

std::vector<std::string> Cluster::site_names() const {
  std::vector<std::string> names;
  names.reserve(servers_.size() + (detector_ ? 1 : 0) + coordinators_.size());
  for (std::size_t r = 0; r < servers_.size(); ++r) {
    names.push_back("replica " + std::to_string(r));
  }
  if (detector_) names.push_back("detector");
  for (std::size_t c = 0; c < coordinators_.size(); ++c) {
    names.push_back("client " + std::to_string(c));
  }
  if (reconfig_) names.push_back("reconfig");
  return names;
}

void Cluster::settle() {
  if (!detector_) {
    // The reconfig manager's retry ticks stop once it reaches kStable, so a
    // plain run() drains transitions along with client work.
    scheduler_.run();
    return;
  }
  const auto busy = [this] {
    for (const auto& coordinator : coordinators_) {
      if (coordinator->in_flight() != 0) return true;
    }
    return reconfig_ && reconfig_->active();
  };
  while (busy() && scheduler_.step()) {
  }
}

void Cluster::reconfigure(std::unique_ptr<ReplicaControlProtocol> next) {
  if (!next) throw std::invalid_argument("reconfigure: null protocol");
  if (next->universe_size() != servers_.size()) {
    throw std::invalid_argument(
        "reconfigure: new protocol manages a different universe");
  }
  settle();
  for (const auto& coordinator : coordinators_) {
    if (coordinator->in_flight() != 0) {
      throw std::logic_error("reconfigure: transactions still in flight");
    }
  }
  // State transfer: install every key's globally-latest committed value on
  // every replica so any new-shape read quorum sees it.
  std::set<Key> keys;
  for (const auto& server : servers_) {
    for (Key key : server->store().keys()) keys.insert(key);
  }
  for (Key key : keys) {
    std::optional<VersionedValue> latest;
    for (const auto& server : servers_) {
      const auto entry = server->store().get(key);
      if (entry &&
          (!latest || entry->timestamp.is_newer_than(latest->timestamp))) {
        latest = *entry;
      }
    }
    ATRCP_CHECK(latest.has_value());
    for (const auto& server : servers_) {
      server->store().apply(key, latest->value, latest->timestamp);
    }
  }
  protocol_ = std::move(next);
  protocol_->attach_metrics(metrics_);
  for (const auto& coordinator : coordinators_) {
    coordinator->set_protocol(*protocol_);
  }
}

std::optional<VersionedValue> Cluster::read_sync(std::size_t client_index,
                                                 Key key) {
  std::optional<VersionedValue> out;
  bool finished = false;
  client(client_index).read(key, [&](std::optional<VersionedValue> value) {
    out = std::move(value);
    finished = true;
  });
  while (!finished && scheduler_.step()) {
  }
  ATRCP_CHECK(finished);
  return out;
}

TxnOutcome Cluster::write_sync(std::size_t client_index, Key key,
                               Value value) {
  TxnOutcome out = TxnOutcome::kAborted;
  bool finished = false;
  client(client_index).write(key, std::move(value), [&](TxnOutcome outcome) {
    out = outcome;
    finished = true;
  });
  while (!finished && scheduler_.step()) {
  }
  ATRCP_CHECK(finished);
  return out;
}

TxnResult Cluster::run_sync(std::size_t client_index, std::vector<TxnOp> ops) {
  TxnResult out;
  bool finished = false;
  client(client_index).run(std::move(ops), [&](TxnResult result) {
    out = std::move(result);
    finished = true;
  });
  while (!finished && scheduler_.step()) {
  }
  ATRCP_CHECK(finished);
  return out;
}

}  // namespace atrcp
