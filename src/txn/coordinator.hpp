// The transaction coordinator: executes read/write transactions against the
// replica servers through whatever ReplicaControlProtocol is plugged in —
// the arbitrary protocol or any baseline — over the simulated network.
//
// Transaction lifecycle (paper §2.2 + §3.2):
//  1. LOCKING    — two-phase locking via the centralized LockManager:
//                  shared locks for read keys, exclusive for written keys,
//                  acquired in sorted key order. A lock-wait timeout aborts
//                  the transaction (this is also the deadlock breaker).
//  2. EXECUTING  — reads: assemble a read quorum, query ALL its members,
//                  return the value with the highest version / lowest SID.
//                  writes: learn the highest version from a read quorum,
//                  increment it, assemble a write quorum and stage the
//                  write for every member. Non-responders within the
//                  timeout are locally suspected and the quorum is
//                  re-assembled around them (bounded retries).
//  3. PREPARING  — two-phase commit: Prepare (carrying the staged writes)
//                  to every participant; any missing vote aborts.
//  4. COMMITTING — Commit retransmitted until every participant acked.
//                  All-yes means the decision IS commit; if a participant
//                  stays unreachable past the retry budget the outcome is
//                  kBlocked — decided-committed but not yet applied
//                  everywhere (the classic 2PC blocking case; the prepared
//                  write survives on the participant's stable log).
//
// Everything is event-driven and deterministic under the seed.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "check/history.hpp"
#include "obs/span.hpp"
#include "protocols/protocol.hpp"
#include "reconfig/epoch.hpp"
#include "replica/messages.hpp"
#include "sim/failure.hpp"
#include "sim/network.hpp"
#include "txn/lock_manager.hpp"

namespace atrcp {

class EventBus;
class Histogram;
class MetricsRegistry;
class QuantileSketch;

/// Final state of a transaction.
enum class TxnOutcome : std::uint8_t {
  kCommitted,  ///< decided commit, applied on every write-quorum member
  kAborted,    ///< rolled back (locks timed out, quorum unavailable, ...)
  kBlocked,    ///< decided commit but some participant has not acked yet
};

struct TxnOp {
  bool is_write = false;
  Key key = 0;
  Value value;  ///< ignored for reads

  static TxnOp read(Key key) { return TxnOp{false, key, {}}; }
  static TxnOp write(Key key, Value value) {
    return TxnOp{true, key, std::move(value)};
  }
};

struct TxnResult {
  TxnOutcome outcome = TxnOutcome::kAborted;
  /// One entry per op, in order; reads carry the fetched value (nullopt if
  /// the key was never written), writes carry nullopt.
  std::vector<std::optional<VersionedValue>> reads;
  /// Why an abort happened, for diagnostics ("lock timeout", ...).
  std::string abort_reason;
};

struct CoordinatorOptions {
  SimTime request_timeout = 10'000;   ///< per quorum round, microseconds
  SimTime lock_timeout = 50'000;      ///< max lock wait (deadlock breaker)
  SimTime commit_retry_interval = 5'000;
  int max_op_attempts = 3;            ///< quorum re-assembly attempts
  int max_commit_retries = 20;        ///< commit retransmissions before kBlocked
  /// Read repair (anti-entropy): when a read observes members with stale
  /// timestamps, push the freshest value back to them (fire-and-forget
  /// ApplyRequest; safe because installs are timestamp-monotone). Narrows
  /// the staleness window the arbitrary protocol's disjoint write quorums
  /// leave between a write and the next write to the same key.
  bool read_repair = false;
};

class Coordinator final : public SiteHandler {
 public:
  /// `protocol` decides quorums over replica ids; `replica_sites[r]` is the
  /// network site hosting replica r; `failures`, when non-null, is the
  /// detectable-failure view used for quorum assembly (the paper assumes
  /// failures are detectable). All references must outlive the coordinator.
  Coordinator(Network& network, Scheduler& scheduler,
              const ReplicaControlProtocol& protocol,
              std::vector<SiteId> replica_sites, LockManager& locks, Rng rng,
              CoordinatorOptions options = {},
              const FailureSet* failures = nullptr);

  void set_site(SiteId site) noexcept { site_ = site; }
  SiteId site() const noexcept { return site_; }

  /// Attaches transaction observability (nullptr registry detaches both):
  /// outcome counters txn.{committed,aborted,blocked}, event counters
  /// txn.{lock_timeouts,quorum_rounds,quorum_reassemblies,
  /// quorum_unavailable,commit_retransmits,read_repairs_sent},
  /// fixed-bucket SimTime histograms txn.latency.{total,lock_wait,execute,
  /// commit}_us, plus the tail-latency quantile sketches
  /// txn.tail.{commit,noncommit}_us (total latency split by outcome;
  /// noncommit covers aborted AND blocked) and per-replica-site
  /// txn.tail.site.<site>.turnaround_us (coordinator-observed
  /// round-start -> reply delay per responding site — the straggler
  /// attribution signal). When `spans` is non-null every finished
  /// transaction's TxnSpan is recorded there. Both must outlive the
  /// coordinator or be detached first.
  void set_metrics(MetricsRegistry* registry, TxnSpanLog* spans = nullptr);

  /// Attaches the flight recorder (nullptr detaches): the transaction state
  /// machine publishes txn begin/phase/finish, lock wait/grant/timeout and
  /// quorum round/reassembly/unavailable events, all stamped with this
  /// coordinator's site and txn id. The bus must outlive the coordinator or
  /// be detached first.
  void set_event_bus(EventBus* bus) noexcept { bus_ = bus; }

  /// Attaches a concurrent-history recorder (nullptr detaches): every
  /// transaction records an invoke event at run() entry and a complete
  /// event — outcome, span, executed ops with observed/installed
  /// timestamps — just before its callback fires. The recorder must
  /// outlive the coordinator or be detached first.
  void set_history(HistoryRecorder* history) noexcept { history_ = history; }

  /// Swaps the protocol driving quorum choices — the reconfiguration hook
  /// (the paper's §3.3: shifting configurations only re-shapes the tree).
  /// The new protocol must manage the same universe (same replica count)
  /// and no transaction may be in flight; throws std::logic_error /
  /// std::invalid_argument otherwise. Callers must have made writes
  /// committed under the old shape visible to the new shape's read quorums
  /// first (see Cluster::reconfigure).
  void set_protocol(const ReplicaControlProtocol& protocol);

  /// Attaches an epoch source (nullptr detaches) — the ONLINE
  /// reconfiguration hook (src/reconfig, docs/RECONFIG.md). When set, every
  /// transaction captures an EpochView at run() entry, assembles all its
  /// quorums from view.protocol, stamps view.epoch/overlap into its span,
  /// and releases the view when it finishes; the construction-time protocol
  /// is bypassed entirely. The source must outlive the coordinator or be
  /// detached first. Null (the default) keeps the legacy single-protocol
  /// behaviour byte-identical.
  void set_epoch_source(EpochSource* source) noexcept {
    epoch_source_ = source;
  }

  using TxnCallback = std::function<void(TxnResult)>;

  /// Runs a full transaction; the callback fires exactly once.
  void run(std::vector<TxnOp> ops, TxnCallback done);

  /// Single-op conveniences (a one-op transaction each).
  void read(Key key,
            std::function<void(std::optional<VersionedValue>)> done);
  void write(Key key, Value value, std::function<void(TxnOutcome)> done);

  void on_message(const Message& message) override;

  // -- statistics --------------------------------------------------------------
  std::uint64_t committed() const noexcept { return committed_; }
  std::uint64_t aborted() const noexcept { return aborted_; }
  std::uint64_t blocked() const noexcept { return blocked_; }
  std::uint64_t in_flight() const noexcept { return txns_.size(); }

 private:
  enum class Phase : std::uint8_t {
    kLocking,
    kReadQuorum,     // a read op waiting for ReadReplies
    kVersionQuorum,  // a write op waiting for VersionReplies
    kPreparing,
    kCommitting,
    kDone,
  };

  struct Txn {
    TxnId id = 0;
    std::vector<TxnOp> ops;
    TxnCallback done;
    Phase phase = Phase::kLocking;
    TxnResult result;
    TxnSpan span;  ///< phase timestamps + round counters for observability
    /// The configuration this transaction runs under, captured once at
    /// run() entry: every quorum of the transaction is assembled from
    /// view.protocol, so a mid-flight view change never splits a
    /// transaction across epochs.
    EpochView view;

    // history recording (only populated while a recorder is attached)
    std::uint64_t invoke_seq = 0;
    SimTime op_start = 0;  ///< current op's first quorum round
    std::vector<HistoryOp> history_ops;

    // locking
    std::vector<std::pair<Key, LockMode>> lock_plan;
    std::size_t next_lock = 0;
    std::uint64_t lock_epoch = 0;  // invalidates stale lock timeouts

    // op execution
    std::size_t current_op = 0;
    int attempts = 0;
    OpId op_id = 0;                 // current quorum round
    SimTime round_start = 0;        // when the current fan-out was sent
    std::set<SiteId> awaiting;      // members not yet heard from
    Timestamp best_ts;              // read aggregation
    std::optional<VersionedValue> best_value;
    std::map<SiteId, Timestamp> reply_timestamps;  // for read repair
    FailureSet suspected;           // per-txn suspicion overlay (ReplicaId)

    // staged writes & 2PC
    std::map<SiteId, std::vector<StagedWrite>> staged;
    std::map<Key, std::uint64_t> staged_version;  // chained versions per key
    std::set<SiteId> votes_pending;
    std::set<SiteId> acks_pending;
    int commit_retries = 0;
  };

  /// Registry-owned instruments; all null while detached.
  struct Obs {
    Counter* committed = nullptr;
    Counter* aborted = nullptr;
    Counter* blocked = nullptr;
    Counter* lock_timeouts = nullptr;
    Counter* quorum_rounds = nullptr;
    Counter* quorum_reassemblies = nullptr;
    Counter* quorum_unavailable = nullptr;
    Counter* commit_retransmits = nullptr;
    Counter* read_repairs = nullptr;
    Histogram* latency_total = nullptr;
    Histogram* latency_lock_wait = nullptr;
    Histogram* latency_execute = nullptr;
    Histogram* latency_commit = nullptr;
    QuantileSketch* tail_commit = nullptr;
    QuantileSketch* tail_noncommit = nullptr;
    /// Indexed by ReplicaId; empty while detached.
    std::vector<QuantileSketch*> site_turnaround;
  };

  /// Per-site instruments (turnaround sketches here, per-site quorum-load
  /// counters in protocols/protocol.cpp) are created eagerly up to this
  /// universe size — keeping registry snapshots independent of which sites
  /// a seed happens to touch — and lazily on first contact above it, so a
  /// 65536-site tree doesn't pay for 65536 idle sketches. Every
  /// digest-pinned configuration in the repo is at most 256 sites.
  static constexpr std::size_t kEagerSiteInstruments = 256;

  Txn* find(TxnId id);
  const FailureSet& combined_failures(const Txn& txn) const;
  void record(std::uint8_t kind, TxnId txn, std::string label);
  void note_turnaround(const Txn& txn, SiteId from);

  void acquire_next_lock(TxnId id);
  void on_lock_granted(TxnId id);
  void start_next_op(TxnId id);
  void begin_read_round(TxnId id);
  void begin_version_round(TxnId id);
  void on_round_timeout(TxnId id, OpId op_id);
  void finish_read_op(TxnId id);
  void finish_version_op(TxnId id);
  void begin_prepare(TxnId id);
  void on_prepare_timeout(TxnId id, OpId op_id);
  void send_commits(TxnId id);
  void on_commit_tick(TxnId id);
  void abort_txn(TxnId id, std::string reason);
  void finish(TxnId id, TxnOutcome outcome);

  void handle(const ReadReply& reply, SiteId from);
  void handle(const VersionReply& reply, SiteId from);
  void handle(const PrepareVote& vote, SiteId from);
  void handle(const CommitAck& ack, SiteId from);

  ReplicaId replica_of_site(SiteId site) const;

  Network& network_;
  Scheduler& scheduler_;
  const ReplicaControlProtocol* protocol_;  // never null; swappable
  EpochSource* epoch_source_ = nullptr;     // null = pinned to protocol_
  std::vector<SiteId> replica_sites_;
  /// True when replica_sites_[r] == r for every r (every Cluster layout):
  /// replica_of_site is then the identity and the n-entry reverse map below
  /// is never built.
  bool sites_are_identity_ = true;
  std::map<SiteId, ReplicaId> site_to_replica_;  ///< only if !identity
  LockManager& locks_;
  Rng rng_;
  CoordinatorOptions options_;
  const FailureSet* failures_;
  /// combined_failures scratch: the detector view ORed with a transaction's
  /// suspicion overlay, reused across rounds so no per-round FailureSet is
  /// allocated. empty_failures_ stands in when no detector is attached and
  /// keeps a stable epoch, so assembly caches hit across rounds.
  mutable FailureSet scratch_failures_;
  FailureSet empty_failures_;
  SiteId site_ = 0;
  MetricsRegistry* registry_ = nullptr;  ///< for lazy per-site sketches
  Obs obs_{};
  TxnSpanLog* spans_ = nullptr;
  HistoryRecorder* history_ = nullptr;
  EventBus* bus_ = nullptr;

  std::map<TxnId, Txn> txns_;
  std::uint64_t next_txn_seq_ = 1;
  OpId next_op_id_ = 1;

  std::uint64_t committed_ = 0;
  std::uint64_t aborted_ = 0;
  std::uint64_t blocked_ = 0;
};

}  // namespace atrcp
