#include "txn/coordinator.hpp"

#include <algorithm>

#include "obs/event_bus.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace atrcp {

Coordinator::Coordinator(Network& network, Scheduler& scheduler,
                         const ReplicaControlProtocol& protocol,
                         std::vector<SiteId> replica_sites, LockManager& locks,
                         Rng rng, CoordinatorOptions options,
                         const FailureSet* failures)
    : network_(network),
      scheduler_(scheduler),
      protocol_(&protocol),
      replica_sites_(std::move(replica_sites)),
      locks_(locks),
      rng_(rng),
      options_(options),
      failures_(failures) {
  // The site pool may exceed the protocol's universe (reconfiguration head
  // room: a later epoch can activate the spare sites), never the reverse.
  if (replica_sites_.size() < protocol_->universe_size()) {
    throw std::invalid_argument(
        "Coordinator: replica_sites size < protocol universe");
  }
  for (std::size_t r = 0; r < replica_sites_.size(); ++r) {
    if (replica_sites_[r] != r) {
      sites_are_identity_ = false;
      break;
    }
  }
  if (!sites_are_identity_) {
    for (std::size_t r = 0; r < replica_sites_.size(); ++r) {
      site_to_replica_[replica_sites_[r]] = static_cast<ReplicaId>(r);
    }
  }
  empty_failures_ = FailureSet(replica_sites_.size());
}

void Coordinator::set_metrics(MetricsRegistry* registry, TxnSpanLog* spans) {
  registry_ = registry;
  if (registry == nullptr) {
    obs_ = Obs{};
    spans_ = nullptr;
    return;
  }
  obs_.committed = &registry->counter("txn.committed");
  obs_.aborted = &registry->counter("txn.aborted");
  obs_.blocked = &registry->counter("txn.blocked");
  obs_.lock_timeouts = &registry->counter("txn.lock_timeouts");
  obs_.quorum_rounds = &registry->counter("txn.quorum_rounds");
  obs_.quorum_reassemblies = &registry->counter("txn.quorum_reassemblies");
  obs_.quorum_unavailable = &registry->counter("txn.quorum_unavailable");
  obs_.commit_retransmits = &registry->counter("txn.commit_retransmits");
  obs_.read_repairs = &registry->counter("txn.read_repairs_sent");
  const auto& bounds = MetricsRegistry::latency_bounds_us();
  obs_.latency_total = &registry->histogram("txn.latency.total_us", bounds);
  obs_.latency_lock_wait =
      &registry->histogram("txn.latency.lock_wait_us", bounds);
  obs_.latency_execute =
      &registry->histogram("txn.latency.execute_us", bounds);
  obs_.latency_commit = &registry->histogram("txn.latency.commit_us", bounds);
  obs_.tail_commit = &registry->qsketch("txn.tail.commit_us");
  obs_.tail_noncommit = &registry->qsketch("txn.tail.noncommit_us");
  obs_.site_turnaround.assign(replica_sites_.size(), nullptr);
  if (replica_sites_.size() <= kEagerSiteInstruments) {
    // Small universes get every per-site sketch up front, so the registry
    // snapshot is independent of which sites a seed happens to contact.
    for (std::size_t r = 0; r < replica_sites_.size(); ++r) {
      obs_.site_turnaround[r] = &registry->qsketch(
          "txn.tail.site." + std::to_string(replica_sites_[r]) +
          ".turnaround_us");
    }
  }
  // Above the threshold the slots stay null and note_turnaround creates a
  // site's sketch on its first observed reply.
  spans_ = spans;
}

void Coordinator::note_turnaround(const Txn& txn, SiteId from) {
  if (obs_.site_turnaround.empty()) return;
  const ReplicaId r = replica_of_site(from);
  QuantileSketch*& sketch = obs_.site_turnaround[r];
  if (sketch == nullptr) {
    sketch = &registry_->qsketch("txn.tail.site." +
                                 std::to_string(replica_sites_[r]) +
                                 ".turnaround_us");
  }
  sketch->record(scheduler_.now() - txn.round_start);
}

void Coordinator::set_protocol(const ReplicaControlProtocol& protocol) {
  if (!txns_.empty()) {
    throw std::logic_error(
        "Coordinator::set_protocol: transactions in flight");
  }
  if (protocol.universe_size() > replica_sites_.size()) {
    throw std::invalid_argument(
        "Coordinator::set_protocol: universe exceeds the site pool");
  }
  protocol_ = &protocol;
}

void Coordinator::record(std::uint8_t kind, TxnId txn, std::string label) {
  if (bus_ == nullptr) return;
  Event event;
  event.time = scheduler_.now();
  event.kind = static_cast<EventKind>(kind);
  event.site = site_;
  event.txn_id = txn;
  event.label = std::move(label);
  bus_->publish(std::move(event));
}

Coordinator::Txn* Coordinator::find(TxnId id) {
  const auto it = txns_.find(id);
  return it == txns_.end() ? nullptr : &it->second;
}

ReplicaId Coordinator::replica_of_site(SiteId site) const {
  if (sites_are_identity_) {
    ATRCP_CHECK(site < replica_sites_.size());
    return static_cast<ReplicaId>(site);
  }
  const auto it = site_to_replica_.find(site);
  ATRCP_CHECK(it != site_to_replica_.end());
  return it->second;
}

const FailureSet& Coordinator::combined_failures(const Txn& txn) const {
  // With no suspicions the detector's view is the answer as-is; returning
  // it directly shares its epoch, so the protocol-side assembly caches hit
  // exactly as they would for a by-value copy — without the copy.
  if (txn.suspected.failed_count() == 0) {
    return failures_ != nullptr ? *failures_ : empty_failures_;
  }
  // Suspicion overlay: detector view ORed with the transaction's suspected
  // set, word-wise into a reused scratch buffer. O(n/64), no per-round
  // allocation, no O(n) per-replica scan — at n = 65536 the former loop
  // walked all sites on every quorum round.
  scratch_failures_ = failures_ != nullptr ? *failures_ : empty_failures_;
  scratch_failures_.merge_failed_from(txn.suspected);
  return scratch_failures_;
}

void Coordinator::run(std::vector<TxnOp> ops, TxnCallback done) {
  ATRCP_CHECK(done != nullptr);
  const TxnId id =
      (static_cast<TxnId>(site_) << 32) | static_cast<TxnId>(next_txn_seq_++);
  Txn& txn = txns_[id];
  txn.id = id;
  txn.ops = std::move(ops);
  txn.done = std::move(done);
  // txn.suspected stays the default empty FailureSet: fail() grows it on
  // the first suspicion, so an untroubled transaction never sizes a bitmap
  // to the site pool.
  txn.view = epoch_source_ != nullptr ? epoch_source_->acquire_view()
                                      : EpochView{0, false, protocol_};
  txn.span.txn_id = id;
  txn.span.begin = scheduler_.now();
  txn.span.coordinator_site = static_cast<std::uint32_t>(site_);
  txn.span.epoch = static_cast<std::uint32_t>(txn.view.epoch);
  txn.span.epoch_overlap = txn.view.overlap ? 1 : 0;
  if (history_ != nullptr) {
    txn.invoke_seq = history_->record_invoke(site_, id, scheduler_.now());
  }
  record(static_cast<std::uint8_t>(EventKind::kTxnBegin), id,
         "ops " + std::to_string(txn.ops.size()));

  // Lock plan: one lock per distinct key, exclusive if any op writes it,
  // in ascending key order (reduces deadlocks among well-behaved clients).
  std::map<Key, LockMode> plan;
  for (const TxnOp& op : txn.ops) {
    auto [it, inserted] = plan.try_emplace(
        op.key, op.is_write ? LockMode::kExclusive : LockMode::kShared);
    if (!inserted && op.is_write) it->second = LockMode::kExclusive;
  }
  txn.lock_plan.assign(plan.begin(), plan.end());
  acquire_next_lock(id);
}

void Coordinator::read(
    Key key, std::function<void(std::optional<VersionedValue>)> done) {
  run({TxnOp::read(key)}, [done = std::move(done)](TxnResult result) {
    if (result.outcome != TxnOutcome::kCommitted) {
      done(std::nullopt);
      return;
    }
    ATRCP_CHECK(result.reads.size() == 1);
    done(std::move(result.reads[0]));
  });
}

void Coordinator::write(Key key, Value value,
                        std::function<void(TxnOutcome)> done) {
  run({TxnOp::write(key, std::move(value))},
      [done = std::move(done)](TxnResult result) { done(result.outcome); });
}

// -- locking --------------------------------------------------------------

void Coordinator::acquire_next_lock(TxnId id) {
  Txn* txn = find(id);
  ATRCP_CHECK(txn != nullptr);
  if (txn->next_lock >= txn->lock_plan.size()) {
    txn->span.locks_acquired = scheduler_.now();
    record(static_cast<std::uint8_t>(EventKind::kTxnPhase), id, "execute");
    start_next_op(id);
    return;
  }
  const auto [key, mode] = txn->lock_plan[txn->next_lock];
  record(static_cast<std::uint8_t>(EventKind::kLockWait), id,
         "key " + std::to_string(key));
  const std::uint64_t epoch = ++txn->lock_epoch;
  // Schedule the deadlock-breaking timeout BEFORE acquiring: a synchronous
  // grant advances the epoch/phase, which invalidates this timer.
  scheduler_.schedule_after(options_.lock_timeout, [this, id, epoch, key] {
    Txn* t = find(id);
    if (t == nullptr || t->phase != Phase::kLocking || t->lock_epoch != epoch) {
      return;  // lock was granted (or txn finished) in the meantime
    }
    locks_.cancel(id, key);
    if (obs_.lock_timeouts != nullptr) obs_.lock_timeouts->inc();
    record(static_cast<std::uint8_t>(EventKind::kLockTimeout), id,
           "key " + std::to_string(key));
    abort_txn(id, "lock timeout on key " + std::to_string(key));
  });
  locks_.acquire(id, key, mode, [this, id] { on_lock_granted(id); });
}

void Coordinator::on_lock_granted(TxnId id) {
  Txn* txn = find(id);
  if (txn == nullptr) return;  // aborted while the grant was in flight
  record(static_cast<std::uint8_t>(EventKind::kLockGranted), id,
         "key " + std::to_string(txn->lock_plan[txn->next_lock].first));
  ++txn->next_lock;
  acquire_next_lock(id);
}

// -- op execution -----------------------------------------------------------

void Coordinator::start_next_op(TxnId id) {
  Txn* txn = find(id);
  ATRCP_CHECK(txn != nullptr);
  if (txn->current_op >= txn->ops.size()) {
    begin_prepare(id);
    return;
  }
  txn->attempts = 0;
  txn->op_start = scheduler_.now();
  if (txn->ops[txn->current_op].is_write) {
    begin_version_round(id);
  } else {
    begin_read_round(id);
  }
}

void Coordinator::begin_read_round(TxnId id) {
  Txn* txn = find(id);
  ATRCP_CHECK(txn != nullptr);
  txn->phase = Phase::kReadQuorum;
  const FailureSet& failures = combined_failures(*txn);
  const auto quorum = txn->view.protocol->assemble_read_quorum(failures, rng_);
  if (!quorum) {
    if (obs_.quorum_unavailable != nullptr) obs_.quorum_unavailable->inc();
    record(static_cast<std::uint8_t>(EventKind::kQuorumUnavailable), id,
           "read");
    abort_txn(id, "read quorum unavailable");
    return;
  }
  ++txn->span.quorum_rounds;
  if (obs_.quorum_rounds != nullptr) obs_.quorum_rounds->inc();
  record(static_cast<std::uint8_t>(EventKind::kQuorumRound), id,
         "read " + quorum->to_string());
  txn->op_id = next_op_id_++;
  txn->round_start = scheduler_.now();
  txn->awaiting.clear();
  txn->best_ts = kInitialTimestamp;
  txn->best_value.reset();
  txn->reply_timestamps.clear();
  const Key key = txn->ops[txn->current_op].key;
  for (ReplicaId r : quorum->members()) {
    const SiteId target = replica_sites_[r];
    txn->awaiting.insert(target);
    auto request = network_.make_body<ReadRequest>();
    request->op_id = txn->op_id;
    request->key = key;
    network_.send(site_, target, std::move(request));
  }
  const OpId round = txn->op_id;
  scheduler_.schedule_after(options_.request_timeout,
                            [this, id, round] { on_round_timeout(id, round); });
}

void Coordinator::begin_version_round(TxnId id) {
  Txn* txn = find(id);
  ATRCP_CHECK(txn != nullptr);
  txn->phase = Phase::kVersionQuorum;
  const FailureSet& failures = combined_failures(*txn);
  const auto quorum = txn->view.protocol->assemble_read_quorum(failures, rng_);
  if (!quorum) {
    if (obs_.quorum_unavailable != nullptr) obs_.quorum_unavailable->inc();
    record(static_cast<std::uint8_t>(EventKind::kQuorumUnavailable), id,
           "version");
    abort_txn(id, "version (read) quorum unavailable");
    return;
  }
  ++txn->span.quorum_rounds;
  if (obs_.quorum_rounds != nullptr) obs_.quorum_rounds->inc();
  record(static_cast<std::uint8_t>(EventKind::kQuorumRound), id,
         "version " + quorum->to_string());
  txn->op_id = next_op_id_++;
  txn->round_start = scheduler_.now();
  txn->awaiting.clear();
  txn->best_ts = kInitialTimestamp;
  const Key key = txn->ops[txn->current_op].key;
  for (ReplicaId r : quorum->members()) {
    const SiteId target = replica_sites_[r];
    txn->awaiting.insert(target);
    auto request = network_.make_body<VersionRequest>();
    request->op_id = txn->op_id;
    request->key = key;
    network_.send(site_, target, std::move(request));
  }
  const OpId round = txn->op_id;
  scheduler_.schedule_after(options_.request_timeout,
                            [this, id, round] { on_round_timeout(id, round); });
}

void Coordinator::on_round_timeout(TxnId id, OpId op_id) {
  Txn* txn = find(id);
  if (txn == nullptr || txn->op_id != op_id) return;  // round completed
  if (txn->phase != Phase::kReadQuorum && txn->phase != Phase::kVersionQuorum) {
    return;
  }
  // The paper's failures are "detectable": silence within the timeout makes
  // the member locally suspected, and the quorum is re-assembled around it.
  for (SiteId silent : txn->awaiting) {
    txn->suspected.fail(replica_of_site(silent));
  }
  if (++txn->attempts >= options_.max_op_attempts) {
    abort_txn(id, "quorum round retries exhausted");
    return;
  }
  ++txn->span.quorum_reassemblies;
  if (obs_.quorum_reassemblies != nullptr) obs_.quorum_reassemblies->inc();
  record(static_cast<std::uint8_t>(EventKind::kQuorumReassembly), id,
         txn->phase == Phase::kReadQuorum ? "read" : "version");
  if (txn->phase == Phase::kReadQuorum) {
    begin_read_round(id);
  } else {
    begin_version_round(id);
  }
}

void Coordinator::handle(const ReadReply& reply, SiteId from) {
  for (auto& [id, txn] : txns_) {
    if (txn.phase != Phase::kReadQuorum || txn.op_id != reply.op_id) continue;
    if (txn.awaiting.erase(from) == 0) return;  // duplicate/stale
    note_turnaround(txn, from);
    txn.reply_timestamps[from] = reply.timestamp;
    if (reply.has_value && reply.timestamp.is_newer_than(txn.best_ts)) {
      txn.best_ts = reply.timestamp;
      txn.best_value = VersionedValue{reply.value, reply.timestamp};
    }
    if (txn.awaiting.empty()) finish_read_op(id);
    return;
  }
}

void Coordinator::handle(const VersionReply& reply, SiteId from) {
  for (auto& [id, txn] : txns_) {
    if (txn.phase != Phase::kVersionQuorum || txn.op_id != reply.op_id) {
      continue;
    }
    if (txn.awaiting.erase(from) == 0) return;
    note_turnaround(txn, from);
    if (reply.timestamp.is_newer_than(txn.best_ts)) {
      txn.best_ts = reply.timestamp;
    }
    if (txn.awaiting.empty()) finish_version_op(id);
    return;
  }
}

void Coordinator::finish_read_op(TxnId id) {
  Txn* txn = find(id);
  ATRCP_CHECK(txn != nullptr);
  if (options_.read_repair && txn->best_value.has_value()) {
    const Key key = txn->ops[txn->current_op].key;
    for (const auto& [member, ts] : txn->reply_timestamps) {
      if (txn->best_ts.is_newer_than(ts)) {
        auto repair = network_.make_body<ApplyRequest>();
        repair->key = key;
        repair->value = txn->best_value->value;
        repair->timestamp = txn->best_ts;
        if (obs_.read_repairs != nullptr) obs_.read_repairs->inc();
        network_.send(site_, member, std::move(repair));
      }
    }
  }
  if (history_ != nullptr) {
    HistoryOp hop;
    hop.is_write = false;
    hop.key = txn->ops[txn->current_op].key;
    hop.hit = txn->best_value.has_value();
    if (txn->best_value.has_value()) {
      hop.value = txn->best_value->value;
      hop.observed = txn->best_ts;
    }
    hop.start = txn->op_start;
    hop.end = scheduler_.now();
    txn->history_ops.push_back(std::move(hop));
  }
  txn->result.reads.push_back(txn->best_value);
  ++txn->current_op;
  start_next_op(id);
}

void Coordinator::finish_version_op(TxnId id) {
  Txn* txn = find(id);
  ATRCP_CHECK(txn != nullptr);
  const TxnOp& op = txn->ops[txn->current_op];
  // New version: one past the highest committed version seen — or past our
  // own earlier staged write of this key within the same transaction.
  std::uint64_t base = txn->best_ts.version;
  if (const auto it = txn->staged_version.find(op.key);
      it != txn->staged_version.end()) {
    base = std::max(base, it->second);
  }
  const Timestamp ts{base + 1, site_};
  txn->staged_version[op.key] = ts.version;

  const FailureSet& failures = combined_failures(*txn);
  const auto quorum = txn->view.protocol->assemble_write_quorum(failures, rng_);
  if (!quorum) {
    if (obs_.quorum_unavailable != nullptr) obs_.quorum_unavailable->inc();
    record(static_cast<std::uint8_t>(EventKind::kQuorumUnavailable), id,
           "write");
    abort_txn(id, "write quorum unavailable");
    return;
  }
  record(static_cast<std::uint8_t>(EventKind::kQuorumRound), id,
         "write " + quorum->to_string());
  for (ReplicaId r : quorum->members()) {
    txn->staged[replica_sites_[r]].push_back(StagedWrite{op.key, op.value, ts});
  }
  if (history_ != nullptr) {
    HistoryOp hop;
    hop.is_write = true;
    hop.key = op.key;
    hop.hit = true;
    hop.value = op.value;
    // The effective base of the version pre-read: our own earlier staged
    // write of this key when it was newer than the quorum's answer.
    hop.observed = base == txn->best_ts.version ? txn->best_ts
                                                : Timestamp{base, site_};
    hop.written = ts;
    hop.start = txn->op_start;
    hop.end = scheduler_.now();
    txn->history_ops.push_back(std::move(hop));
  }
  txn->result.reads.emplace_back(std::nullopt);
  ++txn->current_op;
  start_next_op(id);
}

// -- two-phase commit ---------------------------------------------------------

void Coordinator::begin_prepare(TxnId id) {
  Txn* txn = find(id);
  ATRCP_CHECK(txn != nullptr);
  txn->span.ops_done = scheduler_.now();
  if (txn->staged.empty()) {  // read-only transaction: nothing to commit
    finish(id, TxnOutcome::kCommitted);
    return;
  }
  txn->phase = Phase::kPreparing;
  record(static_cast<std::uint8_t>(EventKind::kTxnPhase), id, "prepare");
  txn->op_id = next_op_id_++;
  txn->round_start = scheduler_.now();
  txn->votes_pending.clear();
  for (const auto& [target, writes] : txn->staged) {
    txn->votes_pending.insert(target);
    auto request = network_.make_body<PrepareRequest>();
    request->txn_id = id;
    request->writes = writes;
    network_.send(site_, target, std::move(request));
  }
  const OpId round = txn->op_id;
  scheduler_.schedule_after(options_.request_timeout, [this, id, round] {
    on_prepare_timeout(id, round);
  });
}

void Coordinator::on_prepare_timeout(TxnId id, OpId op_id) {
  Txn* txn = find(id);
  if (txn == nullptr || txn->phase != Phase::kPreparing ||
      txn->op_id != op_id) {
    return;
  }
  abort_txn(id, "prepare votes missing");
}

void Coordinator::handle(const PrepareVote& vote, SiteId from) {
  Txn* txn = find(vote.txn_id);
  if (txn == nullptr || txn->phase != Phase::kPreparing) return;
  if (txn->votes_pending.erase(from) == 0) return;
  note_turnaround(*txn, from);
  if (!vote.yes) {
    abort_txn(vote.txn_id, "participant voted no");
    return;
  }
  if (txn->votes_pending.empty()) {
    // All yes: the transaction is decided-committed from this instant.
    txn->span.decided = scheduler_.now();
    record(static_cast<std::uint8_t>(EventKind::kTxnPhase), vote.txn_id,
           "commit");
    txn->phase = Phase::kCommitting;
    txn->acks_pending.clear();
    for (const auto& entry : txn->staged) {
      txn->acks_pending.insert(entry.first);
    }
    txn->commit_retries = 0;
    txn->round_start = scheduler_.now();
    send_commits(vote.txn_id);
    scheduler_.schedule_after(options_.commit_retry_interval,
                              [this, id = vote.txn_id] { on_commit_tick(id); });
  }
}

void Coordinator::send_commits(TxnId id) {
  Txn* txn = find(id);
  ATRCP_CHECK(txn != nullptr);
  for (SiteId target : txn->acks_pending) {
    auto request = network_.make_body<CommitRequest>();
    request->txn_id = id;
    network_.send(site_, target, std::move(request));
  }
}

void Coordinator::on_commit_tick(TxnId id) {
  Txn* txn = find(id);
  if (txn == nullptr || txn->phase != Phase::kCommitting) return;
  if (txn->acks_pending.empty()) {
    finish(id, TxnOutcome::kCommitted);
    return;
  }
  if (++txn->commit_retries > options_.max_commit_retries) {
    // Decided commit, but some participant never acked: blocked. The
    // prepared writes survive on the participants' stable logs.
    finish(id, TxnOutcome::kBlocked);
    return;
  }
  ++txn->span.commit_retransmits;
  if (obs_.commit_retransmits != nullptr) obs_.commit_retransmits->inc();
  record(static_cast<std::uint8_t>(EventKind::kCommitRetransmit), id,
         std::to_string(txn->acks_pending.size()) + " acks pending");
  send_commits(id);
  scheduler_.schedule_after(options_.commit_retry_interval,
                            [this, id] { on_commit_tick(id); });
}

void Coordinator::handle(const CommitAck& ack, SiteId from) {
  Txn* txn = find(ack.txn_id);
  if (txn == nullptr || txn->phase != Phase::kCommitting) return;
  if (txn->acks_pending.erase(from) != 0) note_turnaround(*txn, from);
  if (txn->acks_pending.empty()) finish(ack.txn_id, TxnOutcome::kCommitted);
}

// -- completion ---------------------------------------------------------------

void Coordinator::abort_txn(TxnId id, std::string reason) {
  Txn* txn = find(id);
  ATRCP_CHECK(txn != nullptr);
  txn->result.abort_reason = std::move(reason);
  // Tell every participant that might have staged writes to drop them.
  for (const auto& entry : txn->staged) {
    auto request = network_.make_body<AbortRequest>();
    request->txn_id = id;
    network_.send(site_, entry.first, std::move(request));
  }
  finish(id, TxnOutcome::kAborted);
}

void Coordinator::finish(TxnId id, TxnOutcome outcome) {
  const auto it = txns_.find(id);
  ATRCP_CHECK(it != txns_.end());
  it->second.phase = Phase::kDone;
  if (bus_ != nullptr) {
    std::string label = outcome == TxnOutcome::kCommitted ? "committed"
                        : outcome == TxnOutcome::kBlocked ? "blocked"
                                                          : "aborted";
    if (outcome == TxnOutcome::kAborted &&
        !it->second.result.abort_reason.empty()) {
      label += ": " + it->second.result.abort_reason;
    }
    record(static_cast<std::uint8_t>(EventKind::kTxnFinish), id,
           std::move(label));
  }
  TxnResult result = std::move(it->second.result);
  result.outcome = outcome;
  TxnCallback done = std::move(it->second.done);

  TxnSpan span = it->second.span;
  span.end = scheduler_.now();
  span.outcome = static_cast<std::uint8_t>(outcome);
  if (obs_.latency_total != nullptr) {
    obs_.latency_total->record(span.end - span.begin);
    if (span.locks_acquired != TxnSpan::kUnset) {
      obs_.latency_lock_wait->record(span.locks_acquired - span.begin);
      if (span.ops_done != TxnSpan::kUnset) {
        obs_.latency_execute->record(span.ops_done - span.locks_acquired);
      }
    }
    if (span.ops_done != TxnSpan::kUnset) {
      obs_.latency_commit->record(span.end - span.ops_done);
    }
    switch (outcome) {
      case TxnOutcome::kCommitted: obs_.committed->inc(); break;
      case TxnOutcome::kAborted: obs_.aborted->inc(); break;
      case TxnOutcome::kBlocked: obs_.blocked->inc(); break;
    }
    if (outcome == TxnOutcome::kCommitted) {
      obs_.tail_commit->record(span.end - span.begin);
    } else {
      obs_.tail_noncommit->record(span.end - span.begin);
    }
  }
  if (spans_ != nullptr) spans_->record(span);
  if (history_ != nullptr) {
    history_->record_complete(
        site_, id, it->second.invoke_seq,
        static_cast<HistoryOutcome>(static_cast<std::uint8_t>(outcome)), span,
        std::move(it->second.history_ops), scheduler_.now());
  }

  const EpochView view = it->second.view;
  txns_.erase(it);
  locks_.release_all(id);
  switch (outcome) {
    case TxnOutcome::kCommitted: ++committed_; break;
    case TxnOutcome::kAborted: ++aborted_; break;
    case TxnOutcome::kBlocked: ++blocked_; break;
  }
  done(std::move(result));
  // Release AFTER the completion callback: a closed-loop client begins its
  // next transaction inside done(), so it acquires its new view before the
  // reconfiguration manager's drain check observes this view going away.
  if (epoch_source_ != nullptr) epoch_source_->release_view(view);
}

void Coordinator::on_message(const Message& message) {
  ATRCP_CHECK(message.body != nullptr);
  const MessageBody& body = *message.body;
  if (const auto* m = dynamic_cast<const ReadReply*>(&body)) {
    handle(*m, message.from);
  } else if (const auto* m = dynamic_cast<const VersionReply*>(&body)) {
    handle(*m, message.from);
  } else if (const auto* m = dynamic_cast<const PrepareVote*>(&body)) {
    handle(*m, message.from);
  } else if (const auto* m = dynamic_cast<const CommitAck*>(&body)) {
    handle(*m, message.from);
  }
  // AbortAcks and unknown bodies are intentionally ignored.
}

}  // namespace atrcp
