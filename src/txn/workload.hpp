// Synthetic transactional workloads over a Cluster — the paper's
// "frequencies of read and write operations" made executable.
//
// Each client issues transactions back-to-back (closed loop): a transaction
// holds `ops_per_txn` operations, each a read with probability
// read_fraction, over keys drawn uniformly or Zipf-skewed. The runner
// collects commit/abort/block counts, latency, message totals and the
// EMPIRICAL per-replica load (fraction of operations each replica served),
// which the benches compare against the protocol's analytic loads.
#pragma once

#include <cstdint>
#include <vector>

#include "txn/cluster.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace atrcp {

struct WorkloadOptions {
  std::size_t transactions_per_client = 100;
  std::size_t ops_per_txn = 1;
  double read_fraction = 0.8;
  std::size_t num_keys = 64;
  double zipf_exponent = 0.0;  ///< 0 = uniform key popularity
  std::uint64_t seed = 42;
};

struct WorkloadStats {
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;
  std::uint64_t blocked = 0;
  std::uint64_t reads_issued = 0;
  std::uint64_t writes_issued = 0;
  double mean_latency_us = 0.0;
  /// Full latency distribution of completed transactions (microseconds).
  SampleSummary latency;
  std::uint64_t messages_sent = 0;
  /// messages each replica server received, indexed by ReplicaId.
  std::vector<std::uint64_t> replica_messages;

  double commit_rate() const {
    const auto total = committed + aborted + blocked;
    return total == 0 ? 0.0 : static_cast<double>(committed) / total;
  }
  /// The busiest replica's share of all replica messages — the empirical
  /// analogue of the system load (Definition 2.5).
  double max_replica_share() const;
};

/// Zipf(s) sampler over [0, n): P(k) ∝ 1/(k+1)^s; s = 0 is uniform.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);
  std::size_t sample(Rng& rng) const;

 private:
  std::vector<double> cdf_;
};

/// Runs the workload to completion (drains the scheduler) and returns the
/// collected statistics.
WorkloadStats run_workload(Cluster& cluster, const WorkloadOptions& options);

}  // namespace atrcp
