#include "txn/lock_manager.hpp"

#include <vector>

#include "util/check.hpp"

namespace atrcp {

bool LockManager::compatible(const KeyLock& lock, TxnId txn,
                             LockMode mode) const {
  if (lock.holders.empty()) return true;
  if (lock.holders.contains(txn)) {
    // Re-entry. Shared-after-anything is fine; exclusive needs to be the
    // sole holder (upgrade) or already exclusive.
    if (mode == LockMode::kShared) return true;
    return lock.exclusive || lock.holders.size() == 1;
  }
  if (lock.exclusive) return false;
  return mode == LockMode::kShared;
}

void LockManager::acquire(TxnId txn, Key key, LockMode mode, Grant on_grant) {
  ATRCP_CHECK(on_grant != nullptr);
  KeyLock& lock = locks_[key];
  // FIFO fairness: only bypass the queue when re-entering a lock we already
  // hold; a fresh shared request behind a waiting exclusive must wait.
  const bool reentry = lock.holders.contains(txn);
  if ((reentry || lock.waiters.empty()) && compatible(lock, txn, mode)) {
    lock.holders.insert(txn);
    if (mode == LockMode::kExclusive) lock.exclusive = true;
    keys_of_[txn].insert(key);
    on_grant();
    return;
  }
  lock.waiters.push_back(Request{txn, mode, std::move(on_grant)});
}

bool LockManager::cancel(TxnId txn, Key key) {
  const auto it = locks_.find(key);
  if (it == locks_.end()) return false;
  auto& waiters = it->second.waiters;
  bool cancelled = false;
  for (auto w = waiters.begin(); w != waiters.end();) {
    if (w->txn == txn) {
      w = waiters.erase(w);
      cancelled = true;
    } else {
      ++w;
    }
  }
  if (cancelled) pump(key);
  return cancelled;
}

void LockManager::release_all(TxnId txn) {
  const auto it = keys_of_.find(txn);
  std::vector<Key> touched;
  if (it != keys_of_.end()) {
    touched.assign(it->second.begin(), it->second.end());
    for (Key key : touched) {
      KeyLock& lock = locks_[key];
      lock.holders.erase(txn);
      if (lock.holders.empty()) lock.exclusive = false;
    }
    keys_of_.erase(it);
  }
  // Also drop queued requests on any key (e.g. the one that timed out).
  for (auto& [key, lock] : locks_) {
    for (auto w = lock.waiters.begin(); w != lock.waiters.end();) {
      w = (w->txn == txn) ? lock.waiters.erase(w) : std::next(w);
    }
  }
  for (Key key : touched) pump(key);
  // Keys where txn only waited may now be grantable too.
  for (auto& [key, lock] : locks_) {
    if (!lock.waiters.empty()) pump(key);
  }
}

void LockManager::pump(Key key) {
  const auto it = locks_.find(key);
  if (it == locks_.end()) return;
  KeyLock& lock = it->second;
  std::vector<Grant> ready;
  while (!lock.waiters.empty()) {
    Request& head = lock.waiters.front();
    if (!compatible(lock, head.txn, head.mode)) break;
    lock.holders.insert(head.txn);
    if (head.mode == LockMode::kExclusive) lock.exclusive = true;
    keys_of_[head.txn].insert(key);
    ready.push_back(std::move(head.on_grant));
    lock.waiters.pop_front();
  }
  // Run callbacks only after the lock table is consistent — a callback may
  // re-enter acquire()/release_all().
  for (Grant& grant : ready) grant();
}

std::optional<TxnId> LockManager::find_deadlock_victim() const {
  // Wait-for edges: each queued requester waits for every current holder
  // of that key (conservative: an upgrade also "waits" for co-sharers).
  std::unordered_map<TxnId, std::set<TxnId>> waits_for;
  for (const auto& [key, lock] : locks_) {
    for (const Request& request : lock.waiters) {
      for (TxnId holder : lock.holders) {
        if (holder != request.txn) waits_for[request.txn].insert(holder);
      }
    }
  }
  // Iterative DFS with colouring; on finding a back edge, walk the stack to
  // recover the cycle and return its youngest member.
  enum class Colour : std::uint8_t { kWhite, kGrey, kBlack };
  std::unordered_map<TxnId, Colour> colour;
  for (const auto& [txn, edges] : waits_for) colour.emplace(txn, Colour::kWhite);

  for (const auto& [root, root_edges] : waits_for) {
    if (colour[root] != Colour::kWhite) continue;
    std::vector<std::pair<TxnId, std::set<TxnId>::const_iterator>> stack;
    colour[root] = Colour::kGrey;
    stack.emplace_back(root, waits_for.at(root).begin());
    while (!stack.empty()) {
      auto& [txn, it] = stack.back();
      const auto& edges = waits_for.at(txn);
      if (it == edges.end()) {
        colour[txn] = Colour::kBlack;
        stack.pop_back();
        continue;
      }
      const TxnId next = *it++;
      const auto next_colour = colour.find(next);
      if (next_colour == colour.end() ||
          next_colour->second == Colour::kBlack) {
        continue;  // next never waits (sink) or is fully explored
      }
      if (next_colour->second == Colour::kGrey) {
        // Cycle: everything on the stack from `next` onward is on it.
        TxnId victim = next;
        bool in_cycle = false;
        for (const auto& [frame_txn, frame_it] : stack) {
          in_cycle |= frame_txn == next;
          if (in_cycle) victim = std::max(victim, frame_txn);
        }
        return victim;
      }
      colour[next] = Colour::kGrey;
      stack.emplace_back(next, waits_for.at(next).begin());
    }
  }
  return std::nullopt;
}

bool LockManager::holds(TxnId txn, Key key) const {
  const auto it = locks_.find(key);
  return it != locks_.end() && it->second.holders.contains(txn);
}

bool LockManager::holds_exclusive(TxnId txn, Key key) const {
  const auto it = locks_.find(key);
  return it != locks_.end() && it->second.exclusive &&
         it->second.holders.contains(txn);
}

std::size_t LockManager::waiting_on(Key key) const {
  const auto it = locks_.find(key);
  return it == locks_.end() ? 0 : it->second.waiters.size();
}

std::size_t LockManager::held_keys(TxnId txn) const {
  const auto it = keys_of_.find(txn);
  return it == keys_of_.end() ? 0 : it->second.size();
}

}  // namespace atrcp
