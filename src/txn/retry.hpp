// Client-side retry with exponential backoff.
//
// Aborts in this system are transient by construction — lock timeouts,
// quorum rounds lost to suspected members, prepare votes missing during a
// partition — so the natural client behaviour is to back off and retry.
// RetryingClient wraps a Coordinator: it reissues an aborted transaction up
// to max_attempts times, doubling the (jittered) backoff each time, and
// reports the final result. kBlocked is NOT retried: the transaction is
// decided-committed and a retry would double-apply intent.
#pragma once

#include <functional>

#include "sim/scheduler.hpp"
#include "txn/coordinator.hpp"
#include "util/rng.hpp"

namespace atrcp {

struct RetryOptions {
  int max_attempts = 5;            ///< total tries, including the first
  SimTime initial_backoff = 2'000; ///< microseconds before the 2nd try
  double multiplier = 2.0;         ///< backoff growth per attempt
  double jitter = 0.25;            ///< +- fraction of the backoff
};

class RetryingClient {
 public:
  /// The coordinator and scheduler must outlive the client.
  RetryingClient(Coordinator& coordinator, Scheduler& scheduler, Rng rng,
                 RetryOptions options = {});

  using TxnCallback = Coordinator::TxnCallback;

  /// Runs ops, retrying aborted outcomes with backoff. The callback fires
  /// exactly once with the final result (committed, blocked, or the last
  /// abort after max_attempts).
  void run(std::vector<TxnOp> ops, TxnCallback done);

  // -- statistics ----------------------------------------------------------
  std::uint64_t attempts() const noexcept { return attempts_; }
  std::uint64_t retries() const noexcept { return retries_; }
  std::uint64_t gave_up() const noexcept { return gave_up_; }

 private:
  void attempt(std::vector<TxnOp> ops, TxnCallback done, int tries_left,
               SimTime backoff);

  Coordinator& coordinator_;
  Scheduler& scheduler_;
  Rng rng_;
  RetryOptions options_;
  std::uint64_t attempts_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t gave_up_ = 0;
};

}  // namespace atrcp
