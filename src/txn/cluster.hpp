// Cluster: one-stop wiring of a complete simulated replicated system —
// scheduler, network, n replica servers (site i hosts replica i), a failure
// injector, the centralized lock manager, and any number of client
// coordinators, all driven by one protocol instance.
//
// This is the facade the examples, integration tests and workload benches
// build on. Synchronous helpers (read_sync & co.) issue an operation and
// pump the scheduler until it completes, which is exactly what a quickstart
// wants; event-driven users can grab the pieces and wire callbacks.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "check/history.hpp"
#include "obs/event_bus.hpp"
#include "obs/metrics.hpp"
#include "obs/span.hpp"
#include "protocols/protocol.hpp"
#include "reconfig/manager.hpp"
#include "replica/server.hpp"
#include "sim/failure.hpp"
#include "sim/network.hpp"
#include "sim/scheduler.hpp"
#include "txn/coordinator.hpp"
#include "txn/detector.hpp"
#include "txn/lock_manager.hpp"

namespace atrcp {

struct ClusterOptions {
  std::uint64_t seed = 1;
  LinkParams link{};
  CoordinatorOptions coordinator{};
  std::size_t clients = 1;
  /// When true, coordinators consult a heartbeat failure detector's
  /// suspicion view instead of the failure injector's omniscient oracle —
  /// the realistic reading of the paper's "failures are detectable".
  bool use_heartbeat_detector = false;
  DetectorOptions detector{};
  /// Capacity of the per-cluster TxnSpanLog ring (most recent spans kept).
  std::size_t span_log_capacity = 4096;
  /// When true every coordinator records its transactions into the
  /// cluster-wide HistoryRecorder (history()) for the serializability
  /// checker. Off by default: histories grow without bound, which long
  /// benches don't want.
  bool record_history = false;
  /// Capacity of the causal flight recorder ring (obs/event_bus.hpp).
  /// 0 (the default) disables recording entirely — no bus is created and
  /// the hot paths pay a single null check. Publishing consumes no
  /// randomness, so enabling it never perturbs a seeded schedule.
  std::size_t event_bus_capacity = 0;
  /// Non-owning: when set, the cluster records into this caller-owned bus
  /// instead of allocating its own (event_bus_capacity is ignored). The
  /// bus is reset() at construction, so recordings are indistinguishable
  /// from a freshly built bus — this is the shard-local arena reuse hook
  /// the explorer's seed batches use to stop paying a multi-MiB
  /// allocation per seed. The bus must outlive the cluster and, like the
  /// cluster, stay confined to one driver worker.
  EventBus* external_events = nullptr;
  /// When true the cluster wires a ReconfigManager (src/reconfig) between
  /// the coordinators and the replicas: every transaction captures an
  /// EpochView at begin and assembles quorums from that view's protocol,
  /// enabling online tree reconfiguration via start_reconfiguration().
  /// Off by default — the disabled path draws no extra randomness, adds no
  /// sites and leaves every digest byte-identical to a reconfig-free build.
  bool enable_reconfig = false;
  /// Manager tuning (retry cadence, fault/bug injection) when enabled.
  ReconfigOptions reconfig{};
  /// Size of the physical replica pool. 0 (default) = the initial
  /// protocol's universe. Set it larger to leave headroom for transitions
  /// that ADD sites: a reconfiguration target may use any universe up to
  /// this pool size. Replicas beyond the initial universe idle (hold no
  /// quorum role) until a transition brings them in.
  std::size_t site_pool = 0;
};

class Cluster {
 public:
  /// Takes ownership of the protocol. Replica r lives on site r; client c
  /// is coordinator site n + c.
  Cluster(std::unique_ptr<ReplicaControlProtocol> protocol,
          ClusterOptions options = {});

  /// The protocol currently governing quorum assembly. With reconfiguration
  /// enabled this follows the manager's committed epoch; otherwise it is the
  /// protocol the cluster was constructed with.
  const ReplicaControlProtocol& protocol() const noexcept {
    return reconfig_ ? reconfig_->current_protocol() : *protocol_;
  }
  Scheduler& scheduler() noexcept { return scheduler_; }
  Network& network() noexcept { return network_; }
  FailureInjector& injector() noexcept { return *injector_; }
  LockManager& locks() noexcept { return locks_; }

  std::size_t replica_count() const noexcept { return servers_.size(); }
  std::size_t client_count() const noexcept { return coordinators_.size(); }

  /// The cluster-wide metrics registry. Every component is wired into it at
  /// construction: the protocol (quorum.* counters), the network (net.*),
  /// all replica servers (replica.*) and all coordinators (txn.* counters
  /// plus txn.latency.* histograms). metrics().to_json(out) snapshots the
  /// whole system; under a fixed seed the snapshot is byte-deterministic.
  MetricsRegistry& metrics() noexcept { return metrics_; }
  const MetricsRegistry& metrics() const noexcept { return metrics_; }

  /// Ring of the most recent finished transaction spans across all clients.
  TxnSpanLog& spans() noexcept { return spans_; }
  const TxnSpanLog& spans() const noexcept { return spans_; }

  /// The cluster-wide concurrent history; empty unless
  /// ClusterOptions::record_history was set.
  HistoryRecorder& history() noexcept { return history_; }
  const HistoryRecorder& history() const noexcept { return history_; }

  /// The causal flight recorder wired through every component; nullptr
  /// unless ClusterOptions::event_bus_capacity was nonzero or an
  /// external_events bus was supplied.
  EventBus* events() noexcept { return events_view_; }
  const EventBus* events() const noexcept { return events_view_; }

  /// Track labels for chrome-trace exports: "replica r" for sites [0, n),
  /// then "detector" when one is wired, then "client c" per coordinator.
  std::vector<std::string> site_names() const;

  /// Non-null iff use_heartbeat_detector was set.
  HeartbeatDetector* detector() noexcept { return detector_.get(); }

  /// Non-null iff ClusterOptions::enable_reconfig was set.
  ReconfigManager* reconfig() noexcept { return reconfig_.get(); }
  const ReconfigManager* reconfig() const noexcept { return reconfig_.get(); }

  /// Kick off an online transition to `next` (epoch/view change). Requires
  /// enable_reconfig; `next`'s universe must fit the physical site pool.
  /// Returns immediately — the transition runs concurrently with client
  /// transactions; `done` (optional) fires when the new epoch is stable.
  void start_reconfiguration(std::unique_ptr<ReplicaControlProtocol> next,
                             ReconfigManager::DoneCallback done = nullptr);

  ReplicaServer& server(ReplicaId replica) { return *servers_.at(replica); }
  Coordinator& client(std::size_t index) { return *coordinators_.at(index); }

  // -- synchronous conveniences (issue, then pump the scheduler) -------------

  /// Quorum read through client `client_index`; nullopt if the operation
  /// aborted or the key was never written.
  std::optional<VersionedValue> read_sync(std::size_t client_index, Key key);

  /// Quorum write; returns the outcome.
  TxnOutcome write_sync(std::size_t client_index, Key key, Value value);

  /// Full transaction.
  TxnResult run_sync(std::size_t client_index, std::vector<TxnOp> ops);

  /// Drain pending client work. Without a heartbeat detector this runs the
  /// scheduler dry; with one (whose periodic probes never end) it runs
  /// until no coordinator has a transaction in flight.
  void settle();

  /// Reconfigures the cluster onto a new protocol over the SAME replicas —
  /// the paper's §3.3 configuration shift, executed in place. Steps:
  ///  1. settle() and verify no transaction is in flight;
  ///  2. state transfer: for every key any replica holds, determine the
  ///     latest committed (value, timestamp) and install it on EVERY
  ///     replica (writes committed under old-shape quorums would otherwise
  ///     be invisible to the new shape's read quorums);
  ///  3. swap the protocol and repoint every coordinator.
  /// Throws std::invalid_argument if the universe size differs, or
  /// std::logic_error if transactions remain in flight after settling.
  /// The state transfer touches replica stores directly, modelling an
  /// out-of-band transfer service rather than quorum traffic.
  void reconfigure(std::unique_ptr<ReplicaControlProtocol> next);

 private:
  // Declared first so instrument pointers held by the components below stay
  // valid for their whole lifetime (members destroy in reverse order).
  MetricsRegistry metrics_;
  TxnSpanLog spans_;
  HistoryRecorder history_;
  std::unique_ptr<EventBus> events_;  ///< owned bus; null when off/external
  EventBus* events_view_ = nullptr;   ///< owned or external bus; null = off
  std::unique_ptr<ReplicaControlProtocol> protocol_;
  Scheduler scheduler_;
  Network network_;
  std::vector<std::unique_ptr<ReplicaServer>> servers_;
  std::unique_ptr<FailureInjector> injector_;
  std::unique_ptr<HeartbeatDetector> detector_;
  LockManager locks_;
  std::vector<std::unique_ptr<Coordinator>> coordinators_;
  // Declared after coordinators_ so it is destroyed FIRST: coordinators
  // fall back to protocol_ only while no manager exists, and the manager's
  // graveyard keeps every retired protocol alive for late span readers.
  std::unique_ptr<ReconfigManager> reconfig_;
};

}  // namespace atrcp
