#include "txn/detector.hpp"

#include <memory>

#include "util/check.hpp"

namespace atrcp {

HeartbeatDetector::HeartbeatDetector(Network& network, Scheduler& scheduler,
                                     std::size_t replica_count,
                                     DetectorOptions options)
    : network_(network),
      scheduler_(scheduler),
      options_(options),
      view_(replica_count),
      missed_(replica_count, 0),
      answered_this_round_(replica_count, true) {
  if (replica_count == 0) {
    throw std::invalid_argument("HeartbeatDetector: nothing to watch");
  }
  if (options_.interval == 0 || options_.suspect_after == 0) {
    throw std::invalid_argument("HeartbeatDetector: degenerate options");
  }
}

void HeartbeatDetector::start() {
  if (running_) return;
  running_ = true;
  scheduler_.schedule_after(options_.interval, [this] { probe_round(); });
}

void HeartbeatDetector::probe_round() {
  if (!running_) return;
  // Close the previous round: charge a miss to everyone who stayed silent.
  for (std::size_t r = 0; r < missed_.size(); ++r) {
    if (answered_this_round_[r]) {
      missed_[r] = 0;
    } else if (++missed_[r] == options_.suspect_after &&
               view_.is_alive(static_cast<ReplicaId>(r))) {
      view_.fail(static_cast<ReplicaId>(r));
      ++suspicions_;
    }
    answered_this_round_[r] = false;
  }
  ++rounds_;
  ++sequence_;
  for (std::size_t r = 0; r < missed_.size(); ++r) {
    auto ping = network_.make_body<PingRequest>();
    ping->sequence = sequence_;
    network_.send(site_, static_cast<SiteId>(r), std::move(ping));
  }
  scheduler_.schedule_after(options_.interval, [this] { probe_round(); });
}

void HeartbeatDetector::on_message(const Message& message) {
  ATRCP_CHECK(message.body != nullptr);
  if (dynamic_cast<const PongReply*>(message.body.get()) == nullptr) return;
  const SiteId from = message.from;
  if (from >= missed_.size()) return;  // not a watched replica
  answered_this_round_[from] = true;
  missed_[from] = 0;
  if (view_.is_failed(from)) {
    view_.recover(from);
    ++rehabilitations_;
  }
}

}  // namespace atrcp
