// Heartbeat failure detector — the mechanism behind the paper's §2.2
// assumption that failures are "transient and detectable".
//
// The detector occupies its own site and pings every replica site each
// `interval`; a replica that has not answered for `suspect_after` intervals
// is suspected (marked failed in the exported FailureSet view), and a pong
// from a suspected replica immediately rehabilitates it. The view can be
// handed to coordinators in place of the failure injector's omniscient
// oracle, trading perfect knowledge for realistic detection latency and
// (under message loss) occasional false suspicion — both measured by the
// tests.
#pragma once

#include <cstdint>
#include <vector>

#include "quorum/types.hpp"
#include "replica/messages.hpp"
#include "sim/network.hpp"
#include "sim/scheduler.hpp"

namespace atrcp {

struct DetectorOptions {
  SimTime interval = 5'000;        ///< microseconds between probe rounds
  std::uint32_t suspect_after = 3; ///< missed rounds before suspicion
};

class HeartbeatDetector final : public SiteHandler {
 public:
  /// Watches replica sites [0, replica_count). Register with the network
  /// and call set_site() before start().
  HeartbeatDetector(Network& network, Scheduler& scheduler,
                    std::size_t replica_count, DetectorOptions options = {});

  void set_site(SiteId site) noexcept { site_ = site; }
  SiteId site() const noexcept { return site_; }

  /// Begins the periodic probe rounds (scheduled on the scheduler).
  void start();
  /// Stops scheduling further rounds after the current one fires.
  void stop() noexcept { running_ = false; }

  /// The current suspicion view: suspected replicas appear failed.
  const FailureSet& view() const noexcept { return view_; }

  void on_message(const Message& message) override;

  // -- statistics ----------------------------------------------------------
  std::uint64_t rounds() const noexcept { return rounds_; }
  std::uint64_t suspicions() const noexcept { return suspicions_; }
  std::uint64_t rehabilitations() const noexcept { return rehabilitations_; }

 private:
  void probe_round();

  Network& network_;
  Scheduler& scheduler_;
  DetectorOptions options_;
  SiteId site_ = 0;
  bool running_ = false;
  FailureSet view_;
  std::vector<std::uint32_t> missed_;  ///< consecutive unanswered rounds
  std::vector<bool> answered_this_round_;
  std::uint64_t sequence_ = 0;
  std::uint64_t rounds_ = 0;
  std::uint64_t suspicions_ = 0;
  std::uint64_t rehabilitations_ = 0;
};

}  // namespace atrcp
