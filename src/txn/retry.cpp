#include "txn/retry.hpp"

#include <stdexcept>

#include "util/check.hpp"

namespace atrcp {

RetryingClient::RetryingClient(Coordinator& coordinator, Scheduler& scheduler,
                               Rng rng, RetryOptions options)
    : coordinator_(coordinator),
      scheduler_(scheduler),
      rng_(rng),
      options_(options) {
  if (options_.max_attempts < 1) {
    throw std::invalid_argument("RetryingClient: max_attempts must be >= 1");
  }
  if (options_.multiplier < 1.0) {
    throw std::invalid_argument("RetryingClient: multiplier must be >= 1");
  }
  if (options_.jitter < 0.0 || options_.jitter >= 1.0) {
    throw std::invalid_argument("RetryingClient: jitter outside [0, 1)");
  }
}

void RetryingClient::run(std::vector<TxnOp> ops, TxnCallback done) {
  ATRCP_CHECK(done != nullptr);
  attempt(std::move(ops), std::move(done), options_.max_attempts,
          options_.initial_backoff);
}

void RetryingClient::attempt(std::vector<TxnOp> ops, TxnCallback done,
                             int tries_left, SimTime backoff) {
  ++attempts_;
  // The coordinator consumes its ops, so keep a copy for potential retries.
  std::vector<TxnOp> retry_copy = ops;
  coordinator_.run(
      std::move(ops),
      [this, retry_copy = std::move(retry_copy), done = std::move(done),
       tries_left, backoff](TxnResult result) mutable {
        if (result.outcome != TxnOutcome::kAborted || tries_left <= 1) {
          if (result.outcome == TxnOutcome::kAborted) ++gave_up_;
          done(std::move(result));
          return;
        }
        ++retries_;
        const double jitter_factor =
            1.0 + options_.jitter * (2.0 * rng_.uniform() - 1.0);
        const auto wait = static_cast<SimTime>(
            std::max(1.0, static_cast<double>(backoff) * jitter_factor));
        const auto next_backoff = static_cast<SimTime>(
            static_cast<double>(backoff) * options_.multiplier);
        scheduler_.schedule_after(
            wait, [this, ops = std::move(retry_copy),
                   done = std::move(done), tries_left, next_backoff]() mutable {
              attempt(std::move(ops), std::move(done), tries_left - 1,
                      next_backoff);
            });
      });
}

}  // namespace atrcp
