// Centralized two-phase-locking concurrency control (§2.2: "each client
// uses a centralized concurrency control scheme to synchronize accesses").
//
// Per-key shared/exclusive locks with FIFO waiting. Grants are delivered
// through callbacks so the event-driven coordinators can continue a
// transaction the moment a lock frees. Deadlocks are broken by the
// coordinator's lock-wait timeout (it calls cancel() and aborts); the
// manager itself stays simple and strictly fair.
//
// Upgrades: a transaction already holding the only shared lock on a key may
// acquire exclusive immediately; otherwise the upgrade waits its turn like
// any other request (and can deadlock with a concurrent upgrader — the
// timeout resolves it, as in many real lock managers).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <set>
#include <unordered_map>

#include "replica/messages.hpp"
#include "replica/store.hpp"

namespace atrcp {

enum class LockMode : std::uint8_t { kShared, kExclusive };

class LockManager {
 public:
  using Grant = std::function<void()>;

  /// Requests `key` in `mode` for `txn`. If the lock is free (or already
  /// held in a compatible way by this txn), on_grant fires synchronously;
  /// otherwise the request queues and fires when granted. Re-acquiring an
  /// already-held lock (same or weaker mode) grants immediately.
  void acquire(TxnId txn, Key key, LockMode mode, Grant on_grant);

  /// Removes any queued (not yet granted) requests of txn on key. Returns
  /// true if something was cancelled. Queued grants never fire afterwards.
  bool cancel(TxnId txn, Key key);

  /// Releases every lock txn holds and cancels its queued requests, then
  /// grants whatever became available. The 2PL "shrinking phase" — called
  /// exactly once, at commit/abort.
  void release_all(TxnId txn);

  // -- deadlock detection -------------------------------------------------------

  /// Builds the wait-for graph (waiter -> each holder of the key it waits
  /// on) and searches for a cycle. Returns a victim from one cycle — the
  /// youngest (largest-id) transaction on it — or nullopt if none. The
  /// caller resolves the deadlock by aborting the victim (cancel/release).
  /// Coordinators acquire in sorted key order so they cannot deadlock among
  /// themselves; this detector serves mixed workloads where external lock
  /// users (or future coordinators with other orders) interleave.
  std::optional<TxnId> find_deadlock_victim() const;

  // -- introspection (tests, stats) -------------------------------------------

  bool holds(TxnId txn, Key key) const;
  bool holds_exclusive(TxnId txn, Key key) const;
  std::size_t waiting_on(Key key) const;
  std::size_t held_keys(TxnId txn) const;

 private:
  struct Request {
    TxnId txn;
    LockMode mode;
    Grant on_grant;
  };
  struct KeyLock {
    std::set<TxnId> holders;                 // shared holders, or the single
    bool exclusive = false;                  // exclusive holder
    std::deque<Request> waiters;
  };

  /// Grants as many queue heads as compatibility allows. Collects the
  /// callbacks and runs them after the state is consistent.
  void pump(Key key);
  bool compatible(const KeyLock& lock, TxnId txn, LockMode mode) const;

  std::unordered_map<Key, KeyLock> locks_;
  std::unordered_map<TxnId, std::set<Key>> keys_of_;
};

}  // namespace atrcp
