// Message tracing for the simulated network — now a thin compatibility
// adapter over the causal flight recorder (obs/event_bus.hpp).
//
// The Network emits every send/deliver/drop through ONE pipeline: it builds
// an obs::Event and (a) publishes it to an attached EventBus and (b)
// converts it via trace_record_from for any attached TraceSink. MessageTrace
// is the standard recording sink with filtering and compact rendering;
// tests use it to assert message-level protocol behaviour (e.g. the exact
// 2PC exchange of a write). New code that wants timelines, causal edges or
// exports should attach an EventBus instead.
#pragma once

#include <functional>
#include <string>
#include <typeindex>
#include <vector>

#include "obs/event_bus.hpp"
#include "sim/network.hpp"
#include "sim/scheduler.hpp"

namespace atrcp {

enum class TraceEvent : std::uint8_t { kSend, kDeliver, kDrop };

struct TraceRecord {
  TraceEvent event = TraceEvent::kSend;
  SimTime time = 0;
  SiteId from = 0;
  SiteId to = 0;
  /// Demangle-free type label of the message body (e.g. "PrepareRequest").
  std::string type;
};

/// Observer interface; attach with Network::set_trace_sink.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const TraceRecord& record) = 0;
};

/// Records everything (optionally filtered) into a vector.
class MessageTrace final : public TraceSink {
 public:
  using Filter = std::function<bool(const TraceRecord&)>;

  /// With no filter, records every event.
  explicit MessageTrace(Filter filter = nullptr)
      : filter_(std::move(filter)) {}

  void on_event(const TraceRecord& record) override {
    if (!filter_ || filter_(record)) records_.push_back(record);
  }

  const std::vector<TraceRecord>& records() const noexcept {
    return records_;
  }
  void clear() { records_.clear(); }

  /// The sequence of type labels for a given event kind — what tests
  /// usually assert on.
  std::vector<std::string> type_sequence(TraceEvent event) const;

  /// Count of records of a given type label and event kind.
  std::size_t count(TraceEvent event, const std::string& type) const;

  /// "t=120 deliver ReadRequest 8->0" lines, for debugging output.
  std::string to_string() const;

 private:
  Filter filter_;
  std::vector<TraceRecord> records_;
};

/// Human-readable label for a message body's dynamic type: the unqualified
/// class name where derivable, else the mangled name.
std::string message_type_label(const MessageBody& body);

/// Adapter from a flight-recorder message event (kMsgSend/kMsgDeliver/
/// kMsgDrop) to the legacy TraceRecord shape: from/to are always
/// (sender, destination) regardless of which side the event sits on.
/// Throws std::invalid_argument for non-message events.
TraceRecord trace_record_from(const Event& event);

}  // namespace atrcp
