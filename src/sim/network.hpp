// The simulated message-passing network of the paper's system model (§2.2):
// sites with unique SIDs connected by bidirectional links that can delay,
// drop, or — via partitions — systematically cut off messages.
//
// Sites register a SiteHandler; Network::send picks the link parameters,
// samples latency/drops, and schedules delivery on the scheduler. Site and
// link failures are modelled here; the higher-level FailureInjector
// (sim/failure.hpp) drives them over time.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sim/message_pool.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace atrcp {

/// Unique site identifier (the paper's SID). Dense, starting at 0.
using SiteId = std::uint32_t;

class Counter;
class EventBus;
class MetricsRegistry;

/// Base class of everything shipped through the network. Concrete message
/// types live with the subsystem that owns them (see replica/messages.hpp).
struct MessageBody {
  virtual ~MessageBody() = default;

  /// Modelled wire size in bytes: a fixed per-message envelope plus the
  /// payload a real serialization would carry. Purely an accounting figure
  /// for the metrics layer — latency is still governed by LinkParams.
  virtual std::size_t modelled_bytes() const { return kEnvelopeBytes; }

  static constexpr std::size_t kEnvelopeBytes = 64;
};

struct Message {
  SiteId from = 0;
  SiteId to = 0;
  std::shared_ptr<const MessageBody> body;
};

/// Receiving side of a site. on_message is only invoked while the site is
/// up; messages addressed to a down site are silently dropped (fail-stop).
class SiteHandler {
 public:
  virtual ~SiteHandler() = default;
  virtual void on_message(const Message& message) = 0;
};

/// Link behaviour between a pair of sites (symmetric).
struct LinkParams {
  SimTime base_latency = 100;   ///< microseconds, one way
  SimTime jitter = 20;          ///< uniform extra in [0, jitter]
  double drop_probability = 0;  ///< i.i.d. message loss
  bool severed = false;         ///< hard link failure: nothing gets through
};

class Network {
 public:
  /// The rng seeds latency jitter and message drops; the scheduler carries
  /// deliveries. Both must outlive the network.
  Network(Scheduler& scheduler, Rng rng, LinkParams default_link = {});

  /// Registers a site; the handler must outlive the network. Returns the
  /// new site's id. Sites start up and unpartitioned.
  SiteId add_site(SiteHandler& handler);

  std::size_t site_count() const noexcept { return sites_.size(); }

  // -- failure & partition control ------------------------------------------

  bool is_up(SiteId site) const;
  void set_up(SiteId site, bool up);

  /// Assigns the site to a partition group; messages only flow between
  /// sites of the same group. Default group is 0 for everyone.
  void set_partition(SiteId site, std::uint32_t group);
  std::uint32_t partition_of(SiteId site) const;
  /// Heals all partitions (everyone back to group 0).
  void heal_partitions();

  /// Overrides the link between a and b (both directions).
  void set_link(SiteId a, SiteId b, LinkParams params);
  const LinkParams& link(SiteId a, SiteId b) const;

  // -- messaging -------------------------------------------------------------

  /// Sends body from -> to. Never throws for a down destination — the loss
  /// is observable only through silence, as in a real network. A down
  /// SENDER's message is dropped too (a crashed site sends nothing).
  void send(SiteId from, SiteId to, std::shared_ptr<const MessageBody> body);

  /// Builds a message body out of the network's recycling pool — the
  /// zero-alloc replacement for std::make_shared at every send site. The
  /// returned message may outlive the network (the pool arena is kept
  /// alive by the messages themselves).
  template <class T, class... Args>
  std::shared_ptr<T> make_body(Args&&... args) {
    return pool_.make<T>(std::forward<Args>(args)...);
  }

  /// The envelope pool behind make_body, exposed for allocation tests.
  const MessagePool& pool() const noexcept { return pool_; }

  // -- statistics --------------------------------------------------------------

  std::uint64_t messages_sent() const noexcept { return sent_; }
  std::uint64_t messages_delivered() const noexcept { return delivered_; }
  std::uint64_t messages_dropped() const noexcept { return dropped_; }

  /// Attaches a trace observer (see sim/trace.hpp); nullptr detaches. The
  /// sink must outlive the network or be detached first. Tracing is off by
  /// default and costs nothing when off. Sinks are a compatibility adapter
  /// over the flight recorder's event pipeline — a sink sees the same
  /// send/deliver/drop edges an attached EventBus records.
  void set_trace_sink(class TraceSink* sink) noexcept { trace_ = sink; }

  /// Attaches the causal flight recorder (see obs/event_bus.hpp); nullptr
  /// detaches. Every send is stamped with a fresh causal id that its
  /// eventual deliver (or in-flight drop) repeats, so exports can draw the
  /// send->deliver edge. Publishing consumes no randomness: attaching a bus
  /// never perturbs a seeded schedule. The bus must outlive the network or
  /// be detached first.
  void set_event_bus(EventBus* bus) noexcept { bus_ = bus; }
  EventBus* event_bus() const noexcept { return bus_; }

  /// Attaches a metrics registry (nullptr detaches): aggregate counters
  /// net.{sent,delivered,dropped,bytes_sent} plus per-directed-link
  /// counters net.link.<from>-><to>.{sent,delivered,dropped}, created
  /// lazily the first time a link carries traffic. The registry must
  /// outlive the network or be detached first. Off by default.
  void set_metrics(MetricsRegistry* registry);

  Scheduler& scheduler() noexcept { return scheduler_; }

 private:
  struct LinkObs {
    Counter* sent = nullptr;
    Counter* delivered = nullptr;
    Counter* dropped = nullptr;
  };

  void check_site(SiteId site) const;
  /// Dense directed-pair index into links_/link_obs_ (row-major n x n).
  std::size_t pair_index(SiteId from, SiteId to) const noexcept {
    return static_cast<std::size_t>(from) * sites_.size() + to;
  }

  /// Single emit point of the message pipeline: publishes to the event bus
  /// (when attached) and forwards to the legacy trace sink (when attached).
  void emit(std::uint8_t event, SiteId from, SiteId to,
            std::uint64_t causal_id, const MessageBody& body) const;
  LinkObs& link_obs(SiteId from, SiteId to);
  void count_drop(SiteId from, SiteId to);

  Scheduler& scheduler_;
  Rng rng_;
  MessagePool pool_;
  class TraceSink* trace_ = nullptr;
  EventBus* bus_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  Counter* sent_obs_ = nullptr;
  Counter* delivered_obs_ = nullptr;
  Counter* dropped_obs_ = nullptr;
  Counter* bytes_sent_obs_ = nullptr;
  LinkParams default_link_;
  std::vector<SiteHandler*> sites_;
  std::vector<bool> up_;
  std::vector<std::uint32_t> partition_;
  /// Flat n x n tables indexed by pair_index, rebuilt by add_site: link
  /// parameters per directed pair (set_link writes both directions) and
  /// the lazily-created per-link counters. O(1) lookup on every send —
  /// the former std::map lookups were two of the three allocations-or-
  /// searches on the per-message path.
  std::vector<LinkParams> links_;
  std::vector<LinkObs> link_obs_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace atrcp
