// The simulated message-passing network of the paper's system model (§2.2):
// sites with unique SIDs connected by bidirectional links that can delay,
// drop, or — via partitions — systematically cut off messages.
//
// Sites register a SiteHandler; Network::send picks the link parameters,
// samples latency/drops, and schedules delivery on the scheduler. Site and
// link failures are modelled here; the higher-level FailureInjector
// (sim/failure.hpp) drives them over time.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/message_pool.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace atrcp {

/// Unique site identifier (the paper's SID). Dense, starting at 0.
using SiteId = std::uint32_t;

class Counter;
class EventBus;
class MetricsRegistry;

/// Base class of everything shipped through the network. Concrete message
/// types live with the subsystem that owns them (see replica/messages.hpp).
struct MessageBody {
  virtual ~MessageBody() = default;

  /// Modelled wire size in bytes: a fixed per-message envelope plus the
  /// payload a real serialization would carry. Purely an accounting figure
  /// for the metrics layer — latency is still governed by LinkParams.
  virtual std::size_t modelled_bytes() const { return kEnvelopeBytes; }

  static constexpr std::size_t kEnvelopeBytes = 64;
};

struct Message {
  SiteId from = 0;
  SiteId to = 0;
  std::shared_ptr<const MessageBody> body;
};

/// Receiving side of a site. on_message is only invoked while the site is
/// up; messages addressed to a down site are silently dropped (fail-stop).
class SiteHandler {
 public:
  virtual ~SiteHandler() = default;
  virtual void on_message(const Message& message) = 0;
};

/// Link behaviour between a pair of sites (symmetric).
struct LinkParams {
  SimTime base_latency = 100;   ///< microseconds, one way
  SimTime jitter = 20;          ///< uniform extra in [0, jitter]
  double drop_probability = 0;  ///< i.i.d. message loss
  bool severed = false;         ///< hard link failure: nothing gets through
};

class Network {
 public:
  /// The rng seeds latency jitter and message drops; the scheduler carries
  /// deliveries. Both must outlive the network.
  Network(Scheduler& scheduler, Rng rng, LinkParams default_link = {});

  /// Registers a site; the handler must outlive the network. Returns the
  /// new site's id. Sites start up and unpartitioned.
  SiteId add_site(SiteHandler& handler);

  std::size_t site_count() const noexcept { return sites_.size(); }

  // -- failure & partition control ------------------------------------------

  bool is_up(SiteId site) const;
  void set_up(SiteId site, bool up);

  /// Assigns the site to a partition group; messages only flow between
  /// sites of the same group. Default group is 0 for everyone.
  void set_partition(SiteId site, std::uint32_t group);
  std::uint32_t partition_of(SiteId site) const;
  /// Heals all partitions (everyone back to group 0).
  void heal_partitions();

  /// Overrides the link between a and b (both directions).
  void set_link(SiteId a, SiteId b, LinkParams params);
  const LinkParams& link(SiteId a, SiteId b) const;

  // -- messaging -------------------------------------------------------------

  /// Sends body from -> to. Never throws for a down destination — the loss
  /// is observable only through silence, as in a real network. A down
  /// SENDER's message is dropped too (a crashed site sends nothing).
  void send(SiteId from, SiteId to, std::shared_ptr<const MessageBody> body);

  /// Builds a message body out of the network's recycling pool — the
  /// zero-alloc replacement for std::make_shared at every send site. The
  /// returned message may outlive the network (the pool arena is kept
  /// alive by the messages themselves).
  template <class T, class... Args>
  std::shared_ptr<T> make_body(Args&&... args) {
    return pool_.make<T>(std::forward<Args>(args)...);
  }

  /// The envelope pool behind make_body, exposed for allocation tests.
  const MessagePool& pool() const noexcept { return pool_; }

  // -- statistics --------------------------------------------------------------

  std::uint64_t messages_sent() const noexcept { return sent_; }
  std::uint64_t messages_delivered() const noexcept { return delivered_; }
  std::uint64_t messages_dropped() const noexcept { return dropped_; }

  /// Attaches a trace observer (see sim/trace.hpp); nullptr detaches. The
  /// sink must outlive the network or be detached first. Tracing is off by
  /// default and costs nothing when off. Sinks are a compatibility adapter
  /// over the flight recorder's event pipeline — a sink sees the same
  /// send/deliver/drop edges an attached EventBus records.
  void set_trace_sink(class TraceSink* sink) noexcept { trace_ = sink; }

  /// Attaches the causal flight recorder (see obs/event_bus.hpp); nullptr
  /// detaches. Every send is stamped with a fresh causal id that its
  /// eventual deliver (or in-flight drop) repeats, so exports can draw the
  /// send->deliver edge. Publishing consumes no randomness: attaching a bus
  /// never perturbs a seeded schedule. The bus must outlive the network or
  /// be detached first.
  void set_event_bus(EventBus* bus) noexcept { bus_ = bus; }
  EventBus* event_bus() const noexcept { return bus_; }

  /// Attaches a metrics registry (nullptr detaches): aggregate counters
  /// net.{sent,delivered,dropped,bytes_sent} plus per-directed-link
  /// counters net.link.<from>-><to>.{sent,delivered,dropped}, created
  /// lazily the first time a link carries traffic. The registry must
  /// outlive the network or be detached first. Off by default.
  void set_metrics(MetricsRegistry* registry);

  Scheduler& scheduler() noexcept { return scheduler_; }

 private:
  struct LinkObs {
    Counter* sent = nullptr;
    Counter* delivered = nullptr;
    Counter* dropped = nullptr;
  };

  void check_site(SiteId site) const;

  // -- tiled sparse link store ------------------------------------------------
  // Link parameters live in fixed kTileSpan x kTileSpan tiles, materialized
  // (filled with default_link_) only when set_link first touches a directed
  // pair inside them. Untouched pairs — the overwhelming majority at large
  // n, where only a handful of links are ever degraded — read default_link_
  // through a single branch on tiles_.empty(). This replaces the former
  // dense n x n table, whose ~4.3B entries at n = 65536 made big trees
  // physically impossible, while keeping link() an O(1) lookup. Tile
  // materialization consumes no randomness and changes no delivery order,
  // so every seeded schedule is byte-identical to the dense layout.
  static constexpr std::uint32_t kTileShift = 6;  ///< 64 sites per tile axis
  static constexpr std::uint32_t kTileSpan = 1u << kTileShift;
  static constexpr std::uint32_t kTileMask = kTileSpan - 1;

  struct LinkTile {
    std::array<LinkParams, std::size_t{kTileSpan} * kTileSpan> params;
  };

  /// Key of the tile holding directed pair (from, to).
  static std::uint64_t tile_key(SiteId from, SiteId to) noexcept {
    return (static_cast<std::uint64_t>(from >> kTileShift) << 32) |
           (to >> kTileShift);
  }
  /// Index of (from, to) inside its tile (row-major kTileSpan x kTileSpan).
  static std::size_t tile_slot(SiteId from, SiteId to) noexcept {
    return (static_cast<std::size_t>(from & kTileMask) << kTileShift) |
           (to & kTileMask);
  }
  LinkTile& materialize_tile(SiteId from, SiteId to);

  /// Single emit point of the message pipeline: publishes to the event bus
  /// (when attached) and forwards to the legacy trace sink (when attached).
  void emit(std::uint8_t event, SiteId from, SiteId to,
            std::uint64_t causal_id, const MessageBody& body) const;
  LinkObs& link_obs(SiteId from, SiteId to);
  void count_drop(SiteId from, SiteId to);

  Scheduler& scheduler_;
  Rng rng_;
  MessagePool pool_;
  class TraceSink* trace_ = nullptr;
  EventBus* bus_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  Counter* sent_obs_ = nullptr;
  Counter* delivered_obs_ = nullptr;
  Counter* dropped_obs_ = nullptr;
  Counter* bytes_sent_obs_ = nullptr;
  LinkParams default_link_;
  std::vector<SiteHandler*> sites_;
  std::vector<bool> up_;
  std::vector<std::uint32_t> partition_;
  /// Tiles with at least one set_link override, keyed by tile_key. Empty
  /// until the first override — link() then never touches the map at all.
  std::unordered_map<std::uint64_t, std::unique_ptr<LinkTile>> tiles_;
  /// Per-from-site adjacency of lazily-created link counters, sorted by
  /// destination: only the tree edges that actually carry traffic get an
  /// entry, so an idle site costs one empty vector. Rows are per-site, not
  /// n x n — at n = 65536 the dense observer table alone was ~100 GiB.
  std::vector<std::vector<std::pair<SiteId, LinkObs>>> obs_rows_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace atrcp
