#include "sim/scheduler.hpp"

#include <bit>
#include <stdexcept>
#include <utility>

namespace atrcp {

void Scheduler::schedule_at(SimTime t, Action action) {
  if (t < now_) {
    throw std::invalid_argument("Scheduler: cannot schedule in the past");
  }
  if (!action) {
    throw std::invalid_argument("Scheduler: empty action");
  }
  const std::uint32_t slot = acquire_slot(std::move(action));
  ++pending_;
  // now_ >= base_ always holds (the window only rolls forward inside
  // step(), to the window of an event that is then immediately popped),
  // so t >= now_ puts every near event inside the current window.
  if (t - base_ < kWindow) {
    const std::size_t tick = t % kWindow;
    ring_[tick].push_back(slot);
    occ_[tick >> 6] |= std::uint64_t{1} << (tick & 63);
    return;
  }
  heap_.push_back(Entry{t, next_seq_++, slot});
  sift_up(heap_.size() - 1);
}

std::uint32_t Scheduler::acquire_slot(Action action) {
  if (!free_slots_.empty()) {
    const std::uint32_t slot = free_slots_.back();
    free_slots_.pop_back();
    slots_[slot] = std::move(action);
    return slot;
  }
  slots_.push_back(std::move(action));
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Scheduler::sift_up(std::size_t index) {
  const Entry entry = heap_[index];
  while (index > 0) {
    const std::size_t parent = (index - 1) / 4;
    if (!earlier(entry, heap_[parent])) break;
    heap_[index] = heap_[parent];
    index = parent;
  }
  heap_[index] = entry;
}

void Scheduler::sift_down(std::size_t index) {
  const Entry entry = heap_[index];
  const std::size_t size = heap_.size();
  while (true) {
    const std::size_t first = 4 * index + 1;
    if (first >= size) break;
    const std::size_t last = first + 4 < size ? first + 4 : size;
    std::size_t best = first;
    for (std::size_t child = first + 1; child < last; ++child) {
      if (earlier(heap_[child], heap_[best])) best = child;
    }
    if (!earlier(heap_[best], entry)) break;
    heap_[index] = heap_[best];
    index = best;
  }
  heap_[index] = entry;
}

void Scheduler::heap_pop() {
  if (heap_.size() > 1) {
    heap_.front() = heap_.back();
    heap_.pop_back();
    sift_down(0);
  } else {
    heap_.pop_back();
  }
}

std::size_t Scheduler::next_occupied(std::size_t from) const noexcept {
  if (from >= kWindow) return kWindow;
  std::size_t word = from >> 6;
  std::uint64_t bits = occ_[word] & (~std::uint64_t{0} << (from & 63));
  while (true) {
    if (bits != 0) {
      return (word << 6) + static_cast<std::size_t>(std::countr_zero(bits));
    }
    if (++word == kOccWords) return kWindow;
    bits = occ_[word];
  }
}

std::optional<SimTime> Scheduler::next_event_time() const noexcept {
  const std::size_t tick = static_cast<std::size_t>(cursor_ - base_);
  if (intra_ < ring_[tick].size()) return cursor_;
  // Other ticks are never partially consumed, so any occupied tick past
  // the cursor holds a live event.
  const std::size_t next = next_occupied(tick + 1);
  if (next < kWindow) return base_ + next;
  if (!heap_.empty()) return heap_.front().time;
  return std::nullopt;
}

std::size_t Scheduler::advance_to_next_tick() {
  // Advance the cursor to the next occupied tick, rolling the window
  // forward onto the overflow heap when the ring drains. Caller
  // guarantees pending_ > 0, so an occupied tick exists.
  std::size_t tick = static_cast<std::size_t>(cursor_ - base_);
  while (intra_ >= ring_[tick].size()) {
    if (intra_ != 0) {  // retire the consumed tick
      ring_[tick].clear();
      occ_[tick >> 6] &= ~(std::uint64_t{1} << (tick & 63));
      intra_ = 0;
    }
    const std::size_t next = next_occupied(tick + 1);
    if (next < kWindow) {
      tick = next;
      cursor_ = base_ + next;
      continue;
    }
    // Ring empty: jump to the overflow heap's window and drain every
    // event that now fits. The drain pops in (time, seq) order, so each
    // tick's FIFO is filled in insertion order — and nothing can have
    // appended to this window before the drain, because direct appends
    // require base_ to already cover the target time.
    base_ = heap_.front().time & ~static_cast<SimTime>(kWindow - 1);
    while (!heap_.empty() && heap_.front().time - base_ < kWindow) {
      const std::size_t t = heap_.front().time % kWindow;
      ring_[t].push_back(heap_.front().slot);
      occ_[t >> 6] |= std::uint64_t{1} << (t & 63);
      heap_pop();
    }
    tick = next_occupied(0);
    cursor_ = base_ + tick;
  }
  return tick;
}

void Scheduler::execute_at_cursor(std::size_t tick) {
  const std::uint32_t slot = ring_[tick][intra_];
  ++intra_;
  --pending_;
  // The action moves to a local before its slot is recycled and before it
  // runs: the call may schedule new events, which could otherwise grow
  // slots_ underneath an in-place invocation (appends to the CURRENT tick
  // are fine — intra_ keeps the position, and the vector is re-read on
  // the next step).
  Action action = std::move(slots_[slot]);
  free_slots_.push_back(slot);
  now_ = cursor_;
  ++executed_;
  action();
}

bool Scheduler::step() {
  if (pending_ == 0) return false;
  execute_at_cursor(advance_to_next_tick());
  return true;
}

std::size_t Scheduler::run(std::size_t max_events) {
  // Batched drain: resolve the current tick once, then execute its whole
  // FIFO before re-touching the cursor/occupancy machinery. The FIFO size
  // is re-read every iteration (ring_[tick] indexed fresh inside
  // execute_at_cursor), so an action appending to its own tick is picked
  // up exactly as it would be by step()-at-a-time — the pop order is
  // bit-identical, only the per-event scan overhead is gone.
  std::size_t count = 0;
  while (count < max_events && pending_ > 0) {
    const std::size_t tick = advance_to_next_tick();
    while (count < max_events && intra_ < ring_[tick].size()) {
      execute_at_cursor(tick);
      ++count;
    }
  }
  return count;
}

std::size_t Scheduler::run_until(SimTime deadline, std::size_t max_events) {
  std::size_t count = 0;
  while (count < max_events) {
    const std::optional<SimTime> next = next_event_time();
    if (!next.has_value() || *next > deadline) break;
    step();
    ++count;
  }
  // Advance the clock to the deadline even if no event lands exactly on it,
  // so successive run_until calls observe monotonic time.
  if (now_ < deadline) now_ = deadline;
  return count;
}

}  // namespace atrcp
