#include "sim/scheduler.hpp"

#include <stdexcept>
#include <utility>

namespace atrcp {

void Scheduler::schedule_at(SimTime t, Action action) {
  if (t < now_) {
    throw std::invalid_argument("Scheduler: cannot schedule in the past");
  }
  if (!action) {
    throw std::invalid_argument("Scheduler: empty action");
  }
  queue_.push(Entry{t, next_seq_++, std::move(action)});
}

bool Scheduler::step() {
  if (queue_.empty()) return false;
  // priority_queue::top is const; the action must be moved out, so copy the
  // handle then pop. Entry's action is a shared_ptr-backed std::function —
  // the copy is cheap relative to event work.
  Entry entry = queue_.top();
  queue_.pop();
  now_ = entry.time;
  ++executed_;
  entry.action();
  return true;
}

std::size_t Scheduler::run(std::size_t max_events) {
  std::size_t count = 0;
  while (count < max_events && step()) ++count;
  return count;
}

std::size_t Scheduler::run_until(SimTime deadline, std::size_t max_events) {
  std::size_t count = 0;
  while (count < max_events && !queue_.empty() &&
         queue_.top().time <= deadline) {
    step();
    ++count;
  }
  // Advance the clock to the deadline even if no event lands exactly on it,
  // so successive run_until calls observe monotonic time.
  if (now_ < deadline) now_ = deadline;
  return count;
}

}  // namespace atrcp
