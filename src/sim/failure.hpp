// Failure injection over the simulated network — drives the paper's fault
// model: fail-stop sites with i.i.d. failure probability q, transient and
// detectable failures, plus network partitions.
//
// The injector schedules crash/recover (and partition/heal) events on the
// scheduler and keeps a FailureSet mirror so the protocol layer can consult
// "which replicas does the client currently believe are down" — the paper
// assumes failures are detectable, which we model as this perfectly
// up-to-date failure view.
#pragma once

#include <functional>
#include <vector>

#include "quorum/types.hpp"
#include "sim/network.hpp"
#include "sim/scheduler.hpp"
#include "util/rng.hpp"

namespace atrcp {

class FailureInjector {
 public:
  /// Watches `site_count` sites of the network (assumed to be sites
  /// [0, site_count) — the replica sites; coordinator/client sites beyond
  /// that range are never touched by the injector).
  FailureInjector(Network& network, Scheduler& scheduler,
                  std::size_t site_count, Rng rng);

  /// The current crash view, indexable by ReplicaId == SiteId for the
  /// watched range. This is the view handed to quorum assembly.
  const FailureSet& failures() const noexcept { return failures_; }

  std::size_t watched_sites() const noexcept {
    return failures_.universe_size();
  }

  // -- deterministic injections ------------------------------------------------

  void crash_now(SiteId site);
  void recover_now(SiteId site);
  void crash_at(SimTime when, SiteId site);
  void recover_at(SimTime when, SiteId site);

  /// Crash at `when`, recover after `downtime` — a transient failure.
  void transient_failure(SimTime when, SiteId site, SimTime downtime);

  /// Splits the watched sites into two partitions at `when`: members of
  /// `minority` move to partition group 1, everyone else stays in group 0.
  /// Heals at when + duration (duration 0 = never heals).
  void partition_at(SimTime when, const std::vector<SiteId>& minority,
                    SimTime duration);

  // -- stochastic failure process -----------------------------------------------

  /// Starts a memoryless crash/recovery process on every watched site:
  /// an up site crashes within the next `mean_uptime` on average, then
  /// recovers after `mean_downtime` on average (geometric approximations of
  /// exponential inter-event times, deterministic under the seed). The
  /// stationary availability is mean_uptime/(mean_uptime+mean_downtime).
  /// Runs until `horizon`.
  void start_random_failures(SimTime mean_uptime, SimTime mean_downtime,
                             SimTime horizon);

  std::uint64_t crash_count() const noexcept { return crashes_; }
  std::uint64_t recovery_count() const noexcept { return recoveries_; }

  /// Attaches the flight recorder (nullptr detaches): crash/recover/
  /// partition/heal edges are published as they take effect. The bus must
  /// outlive the injector or be detached first.
  void set_event_bus(class EventBus* bus) noexcept { bus_ = bus; }

 private:
  void record(std::uint8_t kind, SiteId site);
  void schedule_next_transition(SiteId site, SimTime horizon,
                                SimTime mean_uptime, SimTime mean_downtime);
  SimTime sample_exponential(SimTime mean);

  Network& network_;
  Scheduler& scheduler_;
  class EventBus* bus_ = nullptr;
  Rng rng_;
  FailureSet failures_;
  std::uint64_t crashes_ = 0;
  std::uint64_t recoveries_ = 0;
};

}  // namespace atrcp
