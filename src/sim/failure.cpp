#include "sim/failure.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/event_bus.hpp"

namespace atrcp {

void FailureInjector::record(std::uint8_t kind, SiteId site) {
  if (bus_ == nullptr) return;
  Event event;
  event.time = scheduler_.now();
  event.kind = static_cast<EventKind>(kind);
  event.site = site;
  bus_->publish(std::move(event));
}

FailureInjector::FailureInjector(Network& network, Scheduler& scheduler,
                                 std::size_t site_count, Rng rng)
    : network_(network),
      scheduler_(scheduler),
      rng_(rng),
      failures_(site_count) {
  if (site_count > network.site_count()) {
    throw std::invalid_argument(
        "FailureInjector: watching more sites than the network has");
  }
}

void FailureInjector::crash_now(SiteId site) {
  if (site >= failures_.universe_size()) {
    throw std::out_of_range("FailureInjector: site out of watched range");
  }
  if (failures_.is_failed(site)) return;
  failures_.fail(site);
  network_.set_up(site, false);
  ++crashes_;
  record(static_cast<std::uint8_t>(EventKind::kCrash), site);
}

void FailureInjector::recover_now(SiteId site) {
  if (site >= failures_.universe_size()) {
    throw std::out_of_range("FailureInjector: site out of watched range");
  }
  if (failures_.is_alive(site)) return;
  failures_.recover(site);
  network_.set_up(site, true);
  ++recoveries_;
  record(static_cast<std::uint8_t>(EventKind::kRecover), site);
}

void FailureInjector::crash_at(SimTime when, SiteId site) {
  scheduler_.schedule_at(when, [this, site] { crash_now(site); });
}

void FailureInjector::recover_at(SimTime when, SiteId site) {
  scheduler_.schedule_at(when, [this, site] { recover_now(site); });
}

void FailureInjector::transient_failure(SimTime when, SiteId site,
                                        SimTime downtime) {
  crash_at(when, site);
  recover_at(when + downtime, site);
}

void FailureInjector::partition_at(SimTime when,
                                   const std::vector<SiteId>& minority,
                                   SimTime duration) {
  scheduler_.schedule_at(when, [this, minority] {
    for (SiteId site : minority) {
      network_.set_partition(site, 1);
      record(static_cast<std::uint8_t>(EventKind::kPartition), site);
    }
  });
  if (duration > 0) {
    scheduler_.schedule_at(when + duration, [this] {
      network_.heal_partitions();
      record(static_cast<std::uint8_t>(EventKind::kHeal), Event::kNoSite);
    });
  }
}

SimTime FailureInjector::sample_exponential(SimTime mean) {
  // Inverse-CDF sampling; clamp below by 1us so events always advance time.
  const double u = rng_.uniform();
  const double sample = -static_cast<double>(mean) * std::log1p(-u);
  return std::max<SimTime>(1, static_cast<SimTime>(sample));
}

void FailureInjector::schedule_next_transition(SiteId site, SimTime horizon,
                                               SimTime mean_uptime,
                                               SimTime mean_downtime) {
  const bool currently_up = failures_.is_alive(site);
  const SimTime wait =
      sample_exponential(currently_up ? mean_uptime : mean_downtime);
  const SimTime when = scheduler_.now() + wait;
  if (when > horizon) return;
  scheduler_.schedule_at(
      when, [this, site, horizon, mean_uptime, mean_downtime] {
        if (failures_.is_alive(site)) {
          crash_now(site);
        } else {
          recover_now(site);
        }
        schedule_next_transition(site, horizon, mean_uptime, mean_downtime);
      });
}

void FailureInjector::start_random_failures(SimTime mean_uptime,
                                            SimTime mean_downtime,
                                            SimTime horizon) {
  if (mean_uptime == 0 || mean_downtime == 0) {
    throw std::invalid_argument(
        "FailureInjector: mean uptime/downtime must be positive");
  }
  for (std::size_t site = 0; site < failures_.universe_size(); ++site) {
    schedule_next_transition(static_cast<SiteId>(site), horizon, mean_uptime,
                             mean_downtime);
  }
}

}  // namespace atrcp
