// Discrete-event scheduler — the clock of the simulated distributed system.
//
// Events are (time, action) pairs executed in nondecreasing time order;
// ties are broken by insertion order so a fixed seed yields a bit-identical
// run (the tests rely on this determinism). Time is in integer
// microseconds; there is no wall-clock coupling anywhere.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace atrcp {

/// Simulated time in microseconds since the start of the run.
using SimTime = std::uint64_t;

class Scheduler {
 public:
  using Action = std::function<void()>;

  SimTime now() const noexcept { return now_; }
  std::size_t pending() const noexcept { return queue_.size(); }
  std::uint64_t executed() const noexcept { return executed_; }

  /// Schedule an action at absolute time t (>= now; throws otherwise).
  void schedule_at(SimTime t, Action action);

  /// Schedule an action `delay` microseconds from now.
  void schedule_after(SimTime delay, Action action) {
    schedule_at(now_ + delay, std::move(action));
  }

  /// Execute the next event; returns false if the queue is empty.
  bool step();

  /// Run events until the queue drains or `max_events` were executed;
  /// returns the number executed. The cap guards against livelock bugs in
  /// protocols under test.
  std::size_t run(std::size_t max_events = kDefaultEventCap);

  /// Run events with time <= deadline; events scheduled later stay queued.
  std::size_t run_until(SimTime deadline,
                        std::size_t max_events = kDefaultEventCap);

  static constexpr std::size_t kDefaultEventCap = 10'000'000;

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace atrcp
