// Discrete-event scheduler — the clock of the simulated distributed system.
//
// Events are (time, action) pairs executed in nondecreasing time order;
// ties are broken by insertion order so a fixed seed yields a bit-identical
// run (the tests rely on this determinism). Time is in integer
// microseconds; there is no wall-clock coupling anywhere.
//
// Hot-path design: Action is a small-buffer-optimized callable
// (util/inline_function.hpp) whose 48-byte inline buffer holds every
// closure the simulator schedules, parked in a slot of a recycled slab so
// queue maintenance never touches action storage. The queue itself is a
// two-tier calendar queue: events within the current kWindow-microsecond
// window go into a timing-wheel ring (one FIFO vector per tick, occupancy
// bitmap for the next-event scan — O(1) schedule and pop, no
// comparisons), and farther events wait in an overflow min-heap that is
// drained into the ring when the window rolls forward. Steady-state
// schedule/execute cycles perform zero heap allocations.
//
// The pop order is identical to the std::priority_queue this replaced —
// strictly (time, insertion order) — because ring ticks are popped in
// time order, a tick's vector is FIFO, and every append source preserves
// insertion order: direct schedules arrive with increasing seq, and a
// window roll drains the overflow heap in (time, seq) order before any
// direct append can target the new window. Determinism tests pin this.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "util/inline_function.hpp"

namespace atrcp {

/// Simulated time in microseconds since the start of the run.
using SimTime = std::uint64_t;

class Scheduler {
 public:
  /// Inline capacity 48 covers the largest closure in the tree (Network's
  /// delivery closure, 40 bytes); bigger callables fall back to the heap.
  using Action = InlineFunction<48>;

  SimTime now() const noexcept { return now_; }
  std::size_t pending() const noexcept { return pending_; }
  std::uint64_t executed() const noexcept { return executed_; }

  /// Schedule an action at absolute time t (>= now; throws otherwise).
  void schedule_at(SimTime t, Action action);

  /// Schedule an action `delay` microseconds from now.
  void schedule_after(SimTime delay, Action action) {
    schedule_at(now_ + delay, std::move(action));
  }

  /// Execute the next event; returns false if the queue is empty.
  bool step();

  /// Run events until the queue drains or `max_events` were executed;
  /// returns the number executed. The cap guards against livelock bugs in
  /// protocols under test.
  std::size_t run(std::size_t max_events = kDefaultEventCap);

  /// Run events with time <= deadline; events scheduled later stay queued.
  std::size_t run_until(SimTime deadline,
                        std::size_t max_events = kDefaultEventCap);

  static constexpr std::size_t kDefaultEventCap = 10'000'000;

 private:
  /// Ring span in microseconds. Covers every latency the simulator's
  /// networks model; only long timers (failure-detector intervals,
  /// transaction timeouts) overflow to the heap.
  static constexpr std::size_t kWindow = 256;
  static constexpr std::size_t kOccWords = kWindow / 64;

  /// Overflow-heap item: ordering key plus the slab slot of the action.
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  /// Strict total order of execution: earlier time first, insertion order
  /// breaking ties (seq is unique).
  static bool earlier(const Entry& a, const Entry& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  std::uint32_t acquire_slot(Action action);
  /// Rolls cursor_/base_ forward to the next occupied tick and returns its
  /// ring index. Requires pending_ > 0.
  std::size_t advance_to_next_tick();
  /// Pops and runs ring_[tick][intra_] — the single-event core shared by
  /// step() and run()'s batched drain.
  void execute_at_cursor(std::size_t tick);
  void sift_up(std::size_t index);
  void sift_down(std::size_t index);
  void heap_pop();
  /// First occupied ring tick with index >= from, or kWindow if none.
  std::size_t next_occupied(std::size_t from) const noexcept;
  /// Earliest pending event time, if any (does not mutate — run_until's
  /// peek must not roll the window, or schedule_at could race it).
  std::optional<SimTime> next_event_time() const noexcept;

  /// Timing wheel for [base_, base_ + kWindow): ring_[t % kWindow] is the
  /// FIFO of action slots due at tick t, occ_ its occupancy bitmap.
  /// cursor_ is the tick currently being consumed and intra_ the position
  /// inside its FIFO — kept as state so an action appending to its own
  /// tick is picked up before the tick is retired.
  std::array<std::vector<std::uint32_t>, kWindow> ring_;
  std::array<std::uint64_t, kOccWords> occ_{};
  SimTime base_ = 0;
  SimTime cursor_ = 0;
  std::size_t intra_ = 0;

  /// 4-ary min-heap on `earlier`: the cold overflow tier for events at or
  /// beyond base_ + kWindow.
  std::vector<Entry> heap_;

  /// Action storage, indexed by slot id. A popped slot is pushed onto
  /// free_slots_ and handed to the next schedule_at, so after the high-
  /// water mark the slab never grows and scheduling allocates nothing.
  std::vector<Action> slots_;
  std::vector<std::uint32_t> free_slots_;

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t pending_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace atrcp
