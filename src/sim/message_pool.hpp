// Size-bucketed recycling allocator for simulated message envelopes.
//
// Every Network::send ships a std::shared_ptr<const MessageBody>; built
// with std::make_shared each message costs one malloc for the combined
// control-block + body and one free when the last reference drops. Under
// millions of messages per run that churn dominates the send path.
// MessagePool::make is a drop-in replacement: it allocate_shared's out of
// per-size free lists, so after warm-up a steady-state send/deliver cycle
// allocates nothing — blocks just cycle between the pool and in-flight
// messages.
//
// Lifetime: the free lists live in a shared Arena and every allocator
// embedded in a control block holds a strong reference to it, so messages
// may outlive the MessagePool handle itself (e.g. a delivery closure still
// parked in the scheduler when the Network is torn down) — the arena is
// freed when the last message dies.
//
// Thread-safety: none, by design. A pool belongs to one simulated system,
// and a simulated system runs on one thread (the parallel run driver gives
// every shard its own cluster). Do not share a pool across threads.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace atrcp {

class MessagePool {
 public:
  /// Bucket geometry, public so tests can pin the recycling policy:
  /// bucket b holds blocks of kMinBlock << b bytes; requests above
  /// kMaxPooledBytes bypass the pool; each bucket parks at most
  /// kMaxFreeBlocksPerBucket returned blocks.
  static constexpr std::size_t kMinBlock = 64;
  static constexpr std::size_t kBuckets = 8;
  static constexpr std::size_t kMaxPooledBytes = kMinBlock << (kBuckets - 1);
  static constexpr std::size_t kMaxFreeBlocksPerBucket = 1024;

  /// Bucket index for a request of `bytes`, or kBuckets when no bucket
  /// fits. Overflow-proof: a pathological near-SIZE_MAX request reports
  /// "no bucket" via the kMaxPooledBytes comparison instead of shifting a
  /// power of two off the top of std::size_t and spinning.
  static std::size_t bucket_of(std::size_t bytes) noexcept {
    if (bytes > kMaxPooledBytes) return kBuckets;
    std::size_t bucket = 0;
    std::size_t size = kMinBlock;
    while (size < bytes) {
      size <<= 1;
      ++bucket;
    }
    return bucket;
  }

  /// Allocation accounting, exposed for tests and for the zero-alloc
  /// claim: in steady state `fresh` stops growing while `reused` tracks
  /// the message rate, and `free_blocks` (the pool's retained footprint)
  /// stays flat at the high-water mark instead of growing with run length.
  struct Stats {
    std::uint64_t fresh = 0;     ///< blocks obtained from operator new
    std::uint64_t reused = 0;    ///< blocks served from a free list
    std::uint64_t oversize = 0;  ///< bypass allocations (no bucket fits)
    std::uint64_t trimmed = 0;   ///< blocks freed because a bucket was full
    std::size_t free_blocks = 0; ///< blocks currently parked in free lists
  };

  /// Like std::make_shared<T>(args...), but the control block + object
  /// allocation is served from (and returned to) the pool's free lists.
  template <class T, class... Args>
  std::shared_ptr<T> make(Args&&... args) {
    return std::allocate_shared<T>(Allocator<T>{arena_},
                                   std::forward<Args>(args)...);
  }

  Stats stats() const noexcept {
    Stats s;
    s.fresh = arena_->fresh;
    s.reused = arena_->reused;
    s.oversize = arena_->oversize;
    s.trimmed = arena_->trimmed;
    for (const auto& list : arena_->free) s.free_blocks += list.size();
    return s;
  }

 private:
  /// Free lists of raw blocks, bucketed by power-of-two size: bucket b
  /// holds blocks of 64 << b bytes. Oversized requests (beyond 8 KiB —
  /// nothing in the tree comes close) bypass the pool entirely: they are
  /// plain operator new on take and plain operator delete on give, never
  /// parked in a free list, so a rare huge body cannot grow the arena.
  struct Arena {
    std::array<std::vector<void*>, kBuckets> free;
    std::uint64_t fresh = 0;
    std::uint64_t reused = 0;
    std::uint64_t oversize = 0;
    std::uint64_t trimmed = 0;

    ~Arena() {
      for (auto& list : free) {
        for (void* block : list) ::operator delete(block);
      }
    }

    void* take(std::size_t bytes) {
      const std::size_t bucket = bucket_of(bytes);
      if (bucket >= kBuckets) {
        ++oversize;
        return ::operator new(bytes);
      }
      auto& list = free[bucket];
      if (!list.empty()) {
        void* block = list.back();
        list.pop_back();
        ++reused;
        return block;
      }
      ++fresh;
      return ::operator new(kMinBlock << bucket);
    }

    void give(void* block, std::size_t bytes) noexcept {
      const std::size_t bucket = bucket_of(bytes);
      if (bucket >= kBuckets) {
        ::operator delete(block);
        return;
      }
      auto& list = free[bucket];
      // Cap the retained footprint: a transient burst of in-flight
      // messages released at once must not ratchet the arena up for the
      // rest of a long sweep. 1024 blocks of the largest bucket is 8 MiB,
      // far above any steady-state high-water mark in the benches, so
      // steady state still never reaches the system allocator.
      if (list.size() >= kMaxFreeBlocksPerBucket) {
        ++trimmed;
        ::operator delete(block);
        return;
      }
      // push_back may allocate list capacity; that growth is amortized and
      // bounded by kMaxFreeBlocksPerBucket pointers per bucket.
      list.push_back(block);
    }
  };

  template <class T>
  struct Allocator {
    using value_type = T;

    std::shared_ptr<Arena> arena;

    explicit Allocator(std::shared_ptr<Arena> a) noexcept
        : arena(std::move(a)) {}
    template <class U>
    Allocator(const Allocator<U>& other) noexcept  // NOLINT
        : arena(other.arena) {}

    T* allocate(std::size_t n) {
      static_assert(alignof(T) <= alignof(std::max_align_t),
                    "over-aligned message types are not supported");
      return static_cast<T*>(arena->take(n * sizeof(T)));
    }
    void deallocate(T* p, std::size_t n) noexcept {
      arena->give(p, n * sizeof(T));
    }

    friend bool operator==(const Allocator& a, const Allocator& b) noexcept {
      return a.arena == b.arena;
    }
  };

  std::shared_ptr<Arena> arena_ = std::make_shared<Arena>();
};

}  // namespace atrcp
