#include "sim/trace.hpp"

#include <cctype>
#include <sstream>
#include <stdexcept>
#include <typeinfo>

namespace atrcp {

std::string message_type_label(const MessageBody& body) {
  // typeid(...).name() is mangled on Itanium ABIs, e.g.
  // "N5atrcp14PrepareRequestE": each name component is preceded by its
  // length. Recover the last component without <cxxabi.h> by locating the
  // final digit run and taking that many following characters. Falls back
  // to the raw name on other ABIs — labels then differ cosmetically only.
  const std::string mangled = typeid(body).name();
  std::size_t digit_begin = std::string::npos;
  std::size_t digit_end = std::string::npos;
  for (std::size_t pos = mangled.size(); pos-- > 0;) {
    if (std::isdigit(static_cast<unsigned char>(mangled[pos])) != 0) {
      if (digit_end == std::string::npos) digit_end = pos + 1;
      digit_begin = pos;
    } else if (digit_end != std::string::npos) {
      break;
    }
  }
  if (digit_end == std::string::npos) return mangled;
  const unsigned long length =
      std::stoul(mangled.substr(digit_begin, digit_end - digit_begin));
  if (digit_end + length > mangled.size()) return mangled;
  return mangled.substr(digit_end, length);
}

std::vector<std::string> MessageTrace::type_sequence(TraceEvent event) const {
  std::vector<std::string> out;
  for (const TraceRecord& record : records_) {
    if (record.event == event) out.push_back(record.type);
  }
  return out;
}

std::size_t MessageTrace::count(TraceEvent event,
                                const std::string& type) const {
  std::size_t total = 0;
  for (const TraceRecord& record : records_) {
    if (record.event == event && record.type == type) ++total;
  }
  return total;
}

TraceRecord trace_record_from(const Event& event) {
  TraceRecord record;
  record.time = event.time;
  record.type = event.label;
  switch (event.kind) {
    case EventKind::kMsgSend:
      record.event = TraceEvent::kSend;
      record.from = event.site;
      record.to = event.peer;
      break;
    case EventKind::kMsgDeliver:
      record.event = TraceEvent::kDeliver;
      record.from = event.peer;
      record.to = event.site;
      break;
    case EventKind::kMsgDrop:
      record.event = TraceEvent::kDrop;
      record.from = event.peer;
      record.to = event.site;
      break;
    default:
      throw std::invalid_argument("trace_record_from: not a message event");
  }
  return record;
}

std::string MessageTrace::to_string() const {
  std::ostringstream os;
  for (const TraceRecord& record : records_) {
    const char* kind = record.event == TraceEvent::kSend      ? "send   "
                       : record.event == TraceEvent::kDeliver ? "deliver"
                                                              : "drop   ";
    os << "t=" << record.time << ' ' << kind << ' ' << record.type << ' '
       << record.from << "->" << record.to << '\n';
  }
  return os.str();
}

}  // namespace atrcp
