#include "sim/network.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "obs/event_bus.hpp"
#include "obs/metrics.hpp"
#include "sim/trace.hpp"

namespace atrcp {

void Network::set_metrics(MetricsRegistry* registry) {
  metrics_ = registry;
  for (auto& row : obs_rows_) row.clear();
  if (registry == nullptr) {
    sent_obs_ = delivered_obs_ = dropped_obs_ = bytes_sent_obs_ = nullptr;
    return;
  }
  sent_obs_ = &registry->counter("net.sent");
  delivered_obs_ = &registry->counter("net.delivered");
  dropped_obs_ = &registry->counter("net.dropped");
  bytes_sent_obs_ = &registry->counter("net.bytes_sent");
}

Network::LinkObs& Network::link_obs(SiteId from, SiteId to) {
  auto& row = obs_rows_[from];
  auto it = std::lower_bound(
      row.begin(), row.end(), to,
      [](const std::pair<SiteId, LinkObs>& entry, SiteId destination) {
        return entry.first < destination;
      });
  if (it == row.end() || it->first != to) {
    // First traffic on this directed link: create its counters (the lazy
    // creation keeps registry contents equal to the dense-table layout —
    // the registry sorts by name, so insertion order never shows).
    const std::string prefix = "net.link." + std::to_string(from) + "->" +
                               std::to_string(to) + ".";
    LinkObs obs;
    obs.sent = &metrics_->counter(prefix + "sent");
    obs.delivered = &metrics_->counter(prefix + "delivered");
    obs.dropped = &metrics_->counter(prefix + "dropped");
    it = row.insert(it, {to, obs});
  }
  return it->second;
}

void Network::count_drop(SiteId from, SiteId to) {
  ++dropped_;
  if (metrics_ != nullptr) {
    dropped_obs_->inc();
    link_obs(from, to).dropped->inc();
  }
}

void Network::emit(std::uint8_t event, SiteId from, SiteId to,
                   std::uint64_t causal_id, const MessageBody& body) const {
  if (bus_ == nullptr && trace_ == nullptr) return;
  Event record;
  record.time = scheduler_.now();
  switch (static_cast<TraceEvent>(event)) {
    case TraceEvent::kSend:
      record.kind = EventKind::kMsgSend;
      record.site = from;  // a send happens AT the sender
      record.peer = to;
      break;
    case TraceEvent::kDeliver:
      record.kind = EventKind::kMsgDeliver;
      record.site = to;  // a delivery (or drop) happens AT the destination
      record.peer = from;
      break;
    case TraceEvent::kDrop:
      record.kind = EventKind::kMsgDrop;
      record.site = to;
      record.peer = from;
      break;
  }
  record.causal_id = causal_id;
  record.label = message_type_label(body);
  if (trace_ != nullptr) trace_->on_event(trace_record_from(record));
  if (bus_ != nullptr) bus_->publish(std::move(record));
}

Network::Network(Scheduler& scheduler, Rng rng, LinkParams default_link)
    : scheduler_(scheduler), rng_(rng), default_link_(default_link) {}

SiteId Network::add_site(SiteHandler& handler) {
  const std::size_t old_n = sites_.size();
  sites_.push_back(&handler);
  up_.push_back(true);
  partition_.push_back(0);
  // O(1): a new site starts with every link at the defaults (no tile) and
  // no observed traffic (empty adjacency row). The former dense layout
  // rebuilt two n x n tables here, making n-site registration O(n^3).
  obs_rows_.emplace_back();
  return static_cast<SiteId>(old_n);
}

void Network::check_site(SiteId site) const {
  if (site >= sites_.size()) {
    throw std::out_of_range("Network: unknown site " + std::to_string(site));
  }
}

bool Network::is_up(SiteId site) const {
  check_site(site);
  return up_[site];
}

void Network::set_up(SiteId site, bool up) {
  check_site(site);
  up_[site] = up;
}

void Network::set_partition(SiteId site, std::uint32_t group) {
  check_site(site);
  partition_[site] = group;
}

std::uint32_t Network::partition_of(SiteId site) const {
  check_site(site);
  return partition_[site];
}

void Network::heal_partitions() {
  for (auto& group : partition_) group = 0;
}

Network::LinkTile& Network::materialize_tile(SiteId from, SiteId to) {
  std::unique_ptr<LinkTile>& tile = tiles_[tile_key(from, to)];
  if (tile == nullptr) {
    tile = std::make_unique<LinkTile>();
    tile->params.fill(default_link_);
  }
  return *tile;
}

void Network::set_link(SiteId a, SiteId b, LinkParams params) {
  check_site(a);
  check_site(b);
  materialize_tile(a, b).params[tile_slot(a, b)] = params;
  materialize_tile(b, a).params[tile_slot(b, a)] = params;
}

const LinkParams& Network::link(SiteId a, SiteId b) const {
  check_site(a);
  check_site(b);
  if (tiles_.empty()) return default_link_;  // no overrides anywhere
  const auto it = tiles_.find(tile_key(a, b));
  if (it == tiles_.end()) return default_link_;
  return it->second->params[tile_slot(a, b)];
}

void Network::send(SiteId from, SiteId to,
                   std::shared_ptr<const MessageBody> body) {
  check_site(from);
  check_site(to);
  if (!body) throw std::invalid_argument("Network::send: null body");
  ++sent_;
  if (metrics_ != nullptr) {
    sent_obs_->inc();
    bytes_sent_obs_->inc(body->modelled_bytes());
    link_obs(from, to).sent->inc();
  }
  // One causal id per message, allocated at send and repeated by the
  // deliver/drop edge so exports can link the pair.
  const std::uint64_t cid = bus_ != nullptr ? bus_->next_causal_id() : 0;
  emit(static_cast<std::uint8_t>(TraceEvent::kSend), from, to, cid, *body);

  if (!up_[from]) {  // a crashed site sends nothing
    count_drop(from, to);
    emit(static_cast<std::uint8_t>(TraceEvent::kDrop), from, to, cid, *body);
    return;
  }
  const LinkParams& params = link(from, to);
  if (params.severed || rng_.chance(params.drop_probability)) {
    count_drop(from, to);
    emit(static_cast<std::uint8_t>(TraceEvent::kDrop), from, to, cid, *body);
    return;
  }
  const SimTime jitter = params.jitter > 0 ? rng_.below(params.jitter + 1) : 0;
  const SimTime latency = params.base_latency + jitter;
  scheduler_.schedule_after(latency, [this, from, to, cid,
                                      body = std::move(body)]() {
    // Delivery-time checks: the destination may have crashed or a partition
    // may have formed while the message was in flight.
    if (!up_[to] || partition_[from] != partition_[to]) {
      count_drop(from, to);
      emit(static_cast<std::uint8_t>(TraceEvent::kDrop), from, to, cid, *body);
      return;
    }
    ++delivered_;
    if (metrics_ != nullptr) {
      delivered_obs_->inc();
      link_obs(from, to).delivered->inc();
    }
    emit(static_cast<std::uint8_t>(TraceEvent::kDeliver), from, to, cid,
         *body);
    sites_[to]->on_message(Message{from, to, body});
  });
}

}  // namespace atrcp
