// Graphviz rendering of arbitrary trees — for documentation, debugging and
// the inspect example. Physical nodes render as filled boxes labelled with
// their replica id; logical nodes as dashed circles (matching Figure 1's
// blue-physical / purple-logical convention in spirit).
#pragma once

#include <iosfwd>
#include <string>

#include "core/tree.hpp"

namespace atrcp {

/// Writes `digraph` source for the tree. Options are intentionally minimal;
/// post-process with graphviz attributes if needed.
void write_dot(const ArbitraryTree& tree, std::ostream& os,
               const std::string& graph_name = "arbitrary_tree");

/// Convenience: the DOT source as a string.
std::string to_dot(const ArbitraryTree& tree,
                   const std::string& graph_name = "arbitrary_tree");

/// A quick ASCII rendering, one line per level, e.g.
///   level 0 [logical ]: .
///   level 1 [physical]: r0 r1 r2
/// Physical nodes print as r<id>, logical nodes as '.'.
std::string to_ascii(const ArbitraryTree& tree);

}  // namespace atrcp
