// Closed-form analytic model of the arbitrary protocol (§3.2 of the paper).
//
// Everything the paper derives about an arbitrary tree depends only on the
// multiset of physical-level sizes {m_phy_k : k ∈ K_phy}; this class wraps
// that vector and exposes each formula:
//
//   read  cost          |K_phy| = 1 + h - |K_log|
//   read  availability  Π_k (1 - (1-p)^m_phy_k)
//   read  optimal load  1/d,          d = min_k m_phy_k
//   write cost          min d, max e, average n/|K_phy|
//   write availability  1 - Π_k (1 - p^m_phy_k)
//   write optimal load  1/|K_phy|
//   m(R) = Π_k m_phy_k,   m(W) = |K_phy|
//   expected loads per Equation 3.2.
//
// Constructible from an ArbitraryTree or directly from level sizes, so the
// figure benches can evaluate configurations at large n without
// materializing trees.
#pragma once

#include <cstddef>
#include <vector>

#include "core/tree.hpp"

namespace atrcp {

class ArbitraryAnalysis {
 public:
  /// From the physical-level sizes in K_phy order. Throws
  /// std::invalid_argument if empty or any level size is zero.
  explicit ArbitraryAnalysis(std::vector<std::size_t> level_sizes);

  /// From a built tree.
  explicit ArbitraryAnalysis(const ArbitraryTree& tree);

  const std::vector<std::size_t>& level_sizes() const noexcept {
    return sizes_;
  }

  std::size_t replica_count() const noexcept { return n_; }       ///< n
  std::size_t physical_level_count() const noexcept {             ///< |K_phy|
    return sizes_.size();
  }
  std::size_t d() const noexcept { return d_; }
  std::size_t e() const noexcept { return e_; }

  /// m(R) — number of read quorums (Fact 3.2.1). Returned as double since
  /// the product overflows 64 bits for large trees.
  double read_quorum_count() const;
  /// m(W) — number of write quorums (Fact 3.2.2).
  std::size_t write_quorum_count() const noexcept { return sizes_.size(); }

  double read_cost() const noexcept;                 ///< |K_phy|
  double write_cost_min() const noexcept;            ///< d
  double write_cost_max() const noexcept;            ///< e
  double write_cost_avg() const noexcept;            ///< n/|K_phy|

  double read_availability(double p) const;
  double write_availability(double p) const;
  double write_fail(double p) const;                 ///< Π(1 - p^m_phy_k)

  double read_load() const noexcept;                 ///< 1/d
  double write_load() const noexcept;                ///< 1/|K_phy|

  /// Equation 3.2 expected loads.
  double expected_read_load(double p) const;
  double expected_write_load(double p) const;

  /// §3.2.3 stability: a system is stable when expected loads stay close to
  /// the optimal loads, i.e. both availabilities exceed `threshold`.
  bool is_stable(double p, double threshold = 0.95) const;

 private:
  std::vector<std::size_t> sizes_;
  std::size_t n_ = 0;
  std::size_t d_ = 0;
  std::size_t e_ = 0;
};

}  // namespace atrcp
