#include "core/config.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/check.hpp"
#include "util/math.hpp"

namespace atrcp {

namespace {

/// A logical root over the given all-physical level sizes.
ArbitraryTree tree_from_sizes(const std::vector<std::uint32_t>& sizes) {
  std::vector<ArbitraryTree::LevelCount> counts;
  counts.reserve(sizes.size() + 1);
  counts.push_back({1, 0});
  for (std::uint32_t s : sizes) counts.push_back({s, s});
  return ArbitraryTree::from_level_counts(counts);
}

}  // namespace

ArbitraryTree mostly_read_tree(std::size_t n) {
  if (n == 0) throw std::invalid_argument("mostly_read_tree: n must be > 0");
  return tree_from_sizes({static_cast<std::uint32_t>(n)});
}

ArbitraryTree mostly_write_tree(std::size_t n) {
  if (n < 3 || n % 2 == 0) {
    throw std::invalid_argument("mostly_write_tree: n must be odd and >= 3");
  }
  std::vector<std::uint32_t> sizes((n - 1) / 2, 2);
  // (n-1)/2 levels of two replicas hold n-1 of them; the paper keeps the
  // count odd by leaving one replica over, which we place at the deepest
  // level (3 replicas there) so Assumption 3.1 still holds.
  sizes.back() = 3;
  return tree_from_sizes(sizes);
}

ArbitraryTree unmodified_tree(std::uint32_t height) {
  return ArbitraryTree::complete(2, height);
}

ArbitraryTree algorithm1_tree(std::size_t n) {
  if (n <= 64) {
    throw std::invalid_argument("algorithm1_tree: requires n > 64");
  }
  // |K_phy| = sqrt(n), rounded to the nearest integer for non-squares.
  const auto levels = static_cast<std::size_t>(
      std::llround(std::sqrt(static_cast<double>(n))));
  ATRCP_CHECK(levels > 7);
  std::vector<std::uint32_t> sizes(levels, 4);
  // First seven levels keep exactly 4 replicas; the remaining n-28 are
  // spread over the other levels as evenly as possible, remainder to the
  // deepest levels so the sequence stays non-decreasing (Assumption 3.1).
  const std::size_t rest_levels = levels - 7;
  const std::size_t rest = n - 28;
  const std::size_t base = rest / rest_levels;
  const std::size_t extra = rest % rest_levels;
  ATRCP_CHECK(base >= 4);
  for (std::size_t i = 0; i < rest_levels; ++i) {
    const bool gets_extra = i >= rest_levels - extra;
    sizes[7 + i] = static_cast<std::uint32_t>(base + (gets_extra ? 1 : 0));
  }
  return tree_from_sizes(sizes);
}

ArbitraryTree recommended_tree(std::size_t n) {
  if (n <= 32) {
    throw std::invalid_argument("recommended_tree: requires n > 32");
  }
  if (n > 64) return algorithm1_tree(n);
  std::vector<std::uint32_t> sizes(8, 4);
  sizes.back() = static_cast<std::uint32_t>(n - 28);
  return tree_from_sizes(sizes);
}

ArbitraryTree balanced_tree(std::size_t n, std::size_t levels) {
  if (levels == 0 || levels > n) {
    throw std::invalid_argument("balanced_tree: need 1 <= levels <= n");
  }
  const std::size_t base = n / levels;
  const std::size_t extra = n % levels;
  std::vector<std::uint32_t> sizes(levels);
  for (std::size_t i = 0; i < levels; ++i) {
    const bool gets_extra = i >= levels - extra;
    sizes[i] = static_cast<std::uint32_t>(base + (gets_extra ? 1 : 0));
  }
  return tree_from_sizes(sizes);
}

ArbitraryTree configure_spectrum(std::size_t n,
                                 const SpectrumOptions& options) {
  if (n == 0) throw std::invalid_argument("configure_spectrum: n must be > 0");
  if (options.read_fraction < 0.0 || options.read_fraction > 1.0) {
    throw std::invalid_argument(
        "configure_spectrum: read_fraction outside [0,1]");
  }
  if (options.availability_p <= 0.0 || options.availability_p > 1.0) {
    throw std::invalid_argument("configure_spectrum: p outside (0,1]");
  }
  const double fr = options.read_fraction;
  const double p = options.availability_p;

  double best_objective = std::numeric_limits<double>::infinity();
  std::size_t best_levels = 1;
  for (std::size_t levels = 1; levels <= n; ++levels) {
    const std::size_t base = n / levels;
    const std::size_t extra = n % levels;
    std::vector<std::size_t> sizes(levels, base);
    for (std::size_t i = levels - extra; i < levels; ++i) ++sizes[i];
    const ArbitraryAnalysis analysis{std::move(sizes)};
    double objective = fr * analysis.expected_read_load(p) +
                       (1.0 - fr) * analysis.expected_write_load(p);
    if (options.cost_weight > 0.0) {
      // Executed message bill per operation: a read contacts a read quorum;
      // a write first learns the version through a read quorum, then runs
      // two 2PC rounds over the write quorum. (The bare analytic write
      // cost under-counts the pre-read; see bench/workload_sim.cpp.)
      const double read_cost = analysis.read_cost();
      const double write_cost =
          analysis.read_cost() + 2.0 * analysis.write_cost_avg();
      const double cost = fr * read_cost + (1.0 - fr) * write_cost;
      objective += options.cost_weight * cost / static_cast<double>(n);
    }
    if (objective < best_objective - 1e-12) {
      best_objective = objective;
      best_levels = levels;
    }
  }
  return balanced_tree(n, best_levels);
}

std::unique_ptr<ArbitraryProtocol> make_mostly_read(std::size_t n) {
  return std::make_unique<ArbitraryProtocol>(mostly_read_tree(n),
                                             "MOSTLY-READ");
}

std::unique_ptr<ArbitraryProtocol> make_mostly_write(std::size_t n) {
  return std::make_unique<ArbitraryProtocol>(mostly_write_tree(n),
                                             "MOSTLY-WRITE");
}

std::unique_ptr<ArbitraryProtocol> make_unmodified(std::uint32_t height) {
  return std::make_unique<ArbitraryProtocol>(unmodified_tree(height),
                                             "UNMODIFIED");
}

std::unique_ptr<ArbitraryProtocol> make_arbitrary(std::size_t n) {
  return std::make_unique<ArbitraryProtocol>(
      n > 64 ? algorithm1_tree(n) : recommended_tree(n), "ARBITRARY");
}

}  // namespace atrcp
