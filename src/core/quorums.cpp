#include "core/quorums.hpp"

#include <stdexcept>

#include "util/check.hpp"
#include "util/math.hpp"

namespace atrcp {

ArbitraryProtocol::ArbitraryProtocol(ArbitraryTree tree,
                                     std::string display_name)
    : tree_(std::move(tree)),
      analysis_(tree_),
      display_name_(std::move(display_name)) {}

std::optional<Quorum> ArbitraryProtocol::do_assemble_read_quorum(
    const FailureSet& failures, Rng& rng) const {
  std::vector<ReplicaId> members;
  members.reserve(tree_.physical_levels().size());
  for (std::uint32_t level : tree_.physical_levels()) {
    const std::vector<ReplicaId>& replicas = tree_.replicas_at_level(level);
    // Uniform pick among the alive replicas of this level: count them,
    // then index into the alive subsequence.
    std::size_t alive = 0;
    for (ReplicaId id : replicas) {
      if (failures.is_alive(id)) ++alive;
    }
    if (alive == 0) return std::nullopt;
    std::size_t pick = rng.below(alive);
    for (ReplicaId id : replicas) {
      if (failures.is_alive(id) && pick-- == 0) {
        members.push_back(id);
        break;
      }
    }
  }
  return Quorum(std::move(members));
}

std::optional<Quorum> ArbitraryProtocol::do_assemble_write_quorum(
    const FailureSet& failures, Rng& rng) const {
  // Uniform pick among the physical levels whose replicas are all alive.
  std::vector<std::uint32_t> candidates;
  for (std::uint32_t level : tree_.physical_levels()) {
    bool full = true;
    for (ReplicaId id : tree_.replicas_at_level(level)) {
      if (failures.is_failed(id)) {
        full = false;
        break;
      }
    }
    if (full) candidates.push_back(level);
  }
  if (candidates.empty()) return std::nullopt;
  const std::uint32_t level = candidates[rng.below(candidates.size())];
  const std::vector<ReplicaId>& replicas = tree_.replicas_at_level(level);
  return Quorum(std::vector<ReplicaId>(replicas.begin(), replicas.end()));
}

std::vector<Quorum> ArbitraryProtocol::enumerate_read_quorums(
    std::size_t limit) const {
  const auto& levels = tree_.physical_levels();
  // m(R) = prod |level| counted in exact overflow-checked uint64 arithmetic.
  // The analytic read_quorum_count() is a double: above 2^53 it cannot
  // represent every integer, so `count > limit` misclassifies limits that
  // sit within one rounding step of the true product (and a product past
  // 2^64 must still reject rather than wrap).
  std::optional<std::uint64_t> count = 1;
  for (std::uint32_t level : levels) {
    count = checked_mul(*count, tree_.replicas_at_level(level).size());
    if (!count) {  // more than 2^64 quorums: no std::size_t limit can hold
      throw std::length_error("ArbitraryProtocol: read quorum limit exceeded");
    }
  }
  if (*count > limit) {
    throw std::length_error("ArbitraryProtocol: read quorum limit exceeded");
  }
  std::vector<Quorum> out;
  std::vector<std::size_t> idx(levels.size(), 0);
  while (true) {
    std::vector<ReplicaId> members;
    members.reserve(levels.size());
    for (std::size_t u = 0; u < levels.size(); ++u) {
      members.push_back(tree_.replicas_at_level(levels[u])[idx[u]]);
    }
    out.emplace_back(std::move(members));
    // Odometer increment across the per-level replica lists.
    std::size_t u = 0;
    while (u < levels.size()) {
      if (++idx[u] < tree_.replicas_at_level(levels[u]).size()) break;
      idx[u] = 0;
      ++u;
    }
    if (u == levels.size()) break;
  }
  return out;
}

std::vector<Quorum> ArbitraryProtocol::enumerate_write_quorums(
    std::size_t limit) const {
  const auto& levels = tree_.physical_levels();
  if (levels.size() > limit) {
    throw std::length_error("ArbitraryProtocol: write quorum limit exceeded");
  }
  std::vector<Quorum> out;
  out.reserve(levels.size());
  for (std::uint32_t level : levels) {
    const auto& replicas = tree_.replicas_at_level(level);
    out.emplace_back(std::vector<ReplicaId>(replicas.begin(), replicas.end()));
  }
  return out;
}

}  // namespace atrcp
