#include "core/quorums.hpp"

#include <stdexcept>

#include "util/check.hpp"
#include "util/math.hpp"

namespace atrcp {

ArbitraryProtocol::ArbitraryProtocol(ArbitraryTree tree,
                                     std::string display_name)
    : tree_(std::move(tree)),
      analysis_(tree_),
      display_name_(std::move(display_name)) {}

const ArbitraryProtocol::LevelCache& ArbitraryProtocol::level_cache(
    const FailureSet& failures) const {
  if (cache_.epoch == failures.epoch()) return cache_;
  // New failure pattern: one pass over every physical level refreshes both
  // the per-level alive counts and the fully-alive write candidates. The
  // vectors keep their capacity, so a rebuild allocates nothing after the
  // first call.
  cache_.alive.clear();
  cache_.full.clear();
  for (std::uint32_t level : tree_.physical_levels()) {
    const std::vector<ReplicaId>& replicas = tree_.replicas_at_level(level);
    std::uint32_t alive = 0;
    if (failures.failed_count() == 0) {
      alive = static_cast<std::uint32_t>(replicas.size());
    } else {
      for (ReplicaId id : replicas) {
        if (failures.is_alive(id)) ++alive;
      }
    }
    cache_.alive.push_back(alive);
    if (alive == replicas.size()) cache_.full.push_back(level);
  }
  cache_.epoch = failures.epoch();
  return cache_;
}

std::optional<Quorum> ArbitraryProtocol::do_assemble_read_quorum(
    const FailureSet& failures, Rng& rng) const {
  const LevelCache& cache = level_cache(failures);
  const std::vector<std::uint32_t>& levels = tree_.physical_levels();
  std::vector<ReplicaId> members;
  members.reserve(levels.size());
  for (std::size_t u = 0; u < levels.size(); ++u) {
    const std::vector<ReplicaId>& replicas = tree_.replicas_at_level(levels[u]);
    // Uniform pick among the alive replicas of this level: the cached
    // count, then an index into the alive subsequence. The rng stream is
    // identical to the former count-then-pick loop (one below() per
    // level, in level order, nothing consumed after a dead level).
    const std::uint32_t alive = cache.alive[u];
    if (alive == 0) return std::nullopt;
    std::size_t pick = rng.below(alive);
    if (alive == replicas.size()) {
      members.push_back(replicas[pick]);
      continue;
    }
    for (ReplicaId id : replicas) {
      if (failures.is_alive(id) && pick-- == 0) {
        members.push_back(id);
        break;
      }
    }
  }
  // Ids ascend level by level (the tree numbers replicas top-to-bottom),
  // so the per-level picks arrive sorted and duplicate-free.
  return Quorum::from_sorted(std::move(members));
}

std::optional<Quorum> ArbitraryProtocol::do_assemble_write_quorum(
    const FailureSet& failures, Rng& rng) const {
  // Uniform pick among the physical levels whose replicas are all alive —
  // the cached candidate list, rebuilt only when the failure pattern's
  // epoch changes instead of on every call.
  const LevelCache& cache = level_cache(failures);
  if (cache.full.empty()) return std::nullopt;
  const std::uint32_t level = cache.full[rng.below(cache.full.size())];
  const std::vector<ReplicaId>& replicas = tree_.replicas_at_level(level);
  return Quorum::from_sorted(
      std::vector<ReplicaId>(replicas.begin(), replicas.end()));
}

std::vector<Quorum> ArbitraryProtocol::enumerate_read_quorums(
    std::size_t limit) const {
  const auto& levels = tree_.physical_levels();
  // m(R) = prod |level| counted in exact overflow-checked uint64 arithmetic.
  // The analytic read_quorum_count() is a double: above 2^53 it cannot
  // represent every integer, so `count > limit` misclassifies limits that
  // sit within one rounding step of the true product (and a product past
  // 2^64 must still reject rather than wrap).
  std::optional<std::uint64_t> count = 1;
  for (std::uint32_t level : levels) {
    count = checked_mul(*count, tree_.replicas_at_level(level).size());
    if (!count) {  // more than 2^64 quorums: no std::size_t limit can hold
      throw std::length_error("ArbitraryProtocol: read quorum limit exceeded");
    }
  }
  if (*count > limit) {
    throw std::length_error("ArbitraryProtocol: read quorum limit exceeded");
  }
  std::vector<Quorum> out;
  std::vector<std::size_t> idx(levels.size(), 0);
  while (true) {
    std::vector<ReplicaId> members;
    members.reserve(levels.size());
    for (std::size_t u = 0; u < levels.size(); ++u) {
      members.push_back(tree_.replicas_at_level(levels[u])[idx[u]]);
    }
    out.push_back(Quorum::from_sorted(std::move(members)));
    // Odometer increment across the per-level replica lists.
    std::size_t u = 0;
    while (u < levels.size()) {
      if (++idx[u] < tree_.replicas_at_level(levels[u]).size()) break;
      idx[u] = 0;
      ++u;
    }
    if (u == levels.size()) break;
  }
  return out;
}

std::vector<Quorum> ArbitraryProtocol::enumerate_write_quorums(
    std::size_t limit) const {
  const auto& levels = tree_.physical_levels();
  if (levels.size() > limit) {
    throw std::length_error("ArbitraryProtocol: write quorum limit exceeded");
  }
  std::vector<Quorum> out;
  out.reserve(levels.size());
  for (std::uint32_t level : levels) {
    const auto& replicas = tree_.replicas_at_level(level);
    out.push_back(Quorum::from_sorted(
        std::vector<ReplicaId>(replicas.begin(), replicas.end())));
  }
  return out;
}

}  // namespace atrcp
