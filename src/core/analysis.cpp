#include "core/analysis.hpp"

#include <cmath>
#include <stdexcept>

#include "protocols/protocol.hpp"

namespace atrcp {

ArbitraryAnalysis::ArbitraryAnalysis(std::vector<std::size_t> level_sizes)
    : sizes_(std::move(level_sizes)) {
  if (sizes_.empty()) {
    throw std::invalid_argument("ArbitraryAnalysis: no physical levels");
  }
  d_ = sizes_.front();
  e_ = sizes_.front();
  for (std::size_t s : sizes_) {
    if (s == 0) {
      throw std::invalid_argument("ArbitraryAnalysis: empty physical level");
    }
    n_ += s;
    d_ = std::min(d_, s);
    e_ = std::max(e_, s);
  }
}

ArbitraryAnalysis::ArbitraryAnalysis(const ArbitraryTree& tree)
    : ArbitraryAnalysis(tree.physical_level_sizes()) {}

double ArbitraryAnalysis::read_quorum_count() const {
  double product = 1.0;
  for (std::size_t s : sizes_) product *= static_cast<double>(s);
  return product;
}

double ArbitraryAnalysis::read_cost() const noexcept {
  return static_cast<double>(sizes_.size());
}

double ArbitraryAnalysis::write_cost_min() const noexcept {
  return static_cast<double>(d_);
}

double ArbitraryAnalysis::write_cost_max() const noexcept {
  return static_cast<double>(e_);
}

double ArbitraryAnalysis::write_cost_avg() const noexcept {
  return static_cast<double>(n_) / static_cast<double>(sizes_.size());
}

double ArbitraryAnalysis::read_availability(double p) const {
  double product = 1.0;
  for (std::size_t s : sizes_) {
    product *= 1.0 - std::pow(1.0 - p, static_cast<double>(s));
  }
  return product;
}

double ArbitraryAnalysis::write_fail(double p) const {
  double product = 1.0;
  for (std::size_t s : sizes_) {
    product *= 1.0 - std::pow(p, static_cast<double>(s));
  }
  return product;
}

double ArbitraryAnalysis::write_availability(double p) const {
  return 1.0 - write_fail(p);
}

double ArbitraryAnalysis::read_load() const noexcept {
  return 1.0 / static_cast<double>(d_);
}

double ArbitraryAnalysis::write_load() const noexcept {
  return 1.0 / static_cast<double>(sizes_.size());
}

double ArbitraryAnalysis::expected_read_load(double p) const {
  return atrcp::expected_read_load(read_availability(p), read_load());
}

double ArbitraryAnalysis::expected_write_load(double p) const {
  return atrcp::expected_write_load(write_availability(p), write_load());
}

bool ArbitraryAnalysis::is_stable(double p, double threshold) const {
  return read_availability(p) >= threshold &&
         write_availability(p) >= threshold;
}

}  // namespace atrcp
