// Tree construction policies (§3.3 and §4 of the paper).
//
// The protocol's behaviour is entirely determined by the tree shape, so
// "configuring the protocol for a workload" means "choosing a tree". This
// header provides the paper's named configurations plus the spectrum
// configurator that tunes the shape to a read/write mix — the paper's
// headline claim that shifting configurations requires only re-shaping the
// tree, never re-implementing the protocol.
#pragma once

#include <cstdint>
#include <memory>

#include "core/quorums.hpp"
#include "core/tree.hpp"

namespace atrcp {

/// "MOSTLY-READ" (§4, configuration 5): a logical root with all n replicas
/// in one physical level. Behaves like ROWA: read cost 1, write cost n.
/// Throws std::invalid_argument if n == 0.
ArbitraryTree mostly_read_tree(std::size_t n);

/// "MOSTLY-WRITE" (§4, configuration 6): a logical root over (n-1)/2
/// physical levels of two replicas each. Requires odd n >= 3 (throws
/// std::invalid_argument otherwise). Read cost (n-1)/2, write cost 2.
ArbitraryTree mostly_write_tree(std::size_t n);

/// "UNMODIFIED" (§4, configuration 2): the complete binary tree of
/// Agrawal–El Abbadi [2] with EVERY node physical, height h, n = 2^(h+1)-1.
/// Write load 1/log2(n+1) — the paper's new lower bound; read load 1.
ArbitraryTree unmodified_tree(std::uint32_t height);

/// Algorithm 1 (§3.3), for n > 64: logical root, |K_phy| = round(sqrt(n))
/// physical levels; four replicas at each of the first seven levels and the
/// remaining n-28 replicas spread over the remaining levels, respecting
/// Assumption 3.1 (any remainder goes to the deepest levels so sizes stay
/// non-decreasing). Throws std::invalid_argument if n <= 64.
ArbitraryTree algorithm1_tree(std::size_t n);

/// The §3.3 recommendation for 32 < n <= 64: seven physical levels of four
/// replicas, then the remaining n-28 replicas in one deeper level. For
/// n > 64 defers to algorithm1_tree. Throws if n <= 32.
ArbitraryTree recommended_tree(std::size_t n);

/// The spectrum configurator — our concrete instantiation of the paper's
/// "configure the tree from the read and write frequencies" knob.
///
/// For every feasible number of physical levels L in [1, n/2] (plus L = n
/// for singleton levels... L levels of balanced sizes floor(n/L)/ceil(n/L),
/// remainder pushed to deeper levels so Assumption 3.1 holds), evaluates
/// the frequency-weighted objective
///
///   J(L) = read_fraction * E[L_RD](p) + (1 - read_fraction) * E[L_WR](p)
///          (+ cost_weight * normalized expected message cost, optional)
///
/// and returns the minimizing tree. Balanced sizes maximize d for a given
/// L, which simultaneously minimizes the read load 1/d and maximizes read
/// availability, so restricting the search to the balanced family loses
/// nothing for this objective.
struct SpectrumOptions {
  double read_fraction = 0.5;   ///< fraction of operations that are reads
  double availability_p = 0.9;  ///< per-replica availability used by Eq. 3.2
  /// Weight of the normalized EXECUTED message cost in J. The executed
  /// model charges a write its version pre-read (a read quorum) plus two
  /// 2PC rounds over the write quorum — what the simulator actually sends.
  double cost_weight = 0.0;
};

ArbitraryTree configure_spectrum(std::size_t n, const SpectrumOptions& options);

/// Balanced helper used by the spectrum search: a logical root over
/// `levels` physical levels whose sizes partition n as evenly as possible
/// in non-decreasing order. Throws if levels == 0 or levels > n.
ArbitraryTree balanced_tree(std::size_t n, std::size_t levels);

/// Factory producing the paper's §4 configurations as ready-to-run
/// protocols with their configuration names attached.
std::unique_ptr<ArbitraryProtocol> make_mostly_read(std::size_t n);
std::unique_ptr<ArbitraryProtocol> make_mostly_write(std::size_t n);
std::unique_ptr<ArbitraryProtocol> make_unmodified(std::uint32_t height);
std::unique_ptr<ArbitraryProtocol> make_arbitrary(std::size_t n);

}  // namespace atrcp
