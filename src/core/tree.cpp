#include "core/tree.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/check.hpp"
#include "util/math.hpp"

namespace atrcp {

ArbitraryTree::ArbitraryTree(std::vector<std::vector<NodeSpec>> levels) {
  if (levels.empty()) {
    throw std::invalid_argument("ArbitraryTree: no levels");
  }
  if (levels[0].size() != 1) {
    throw std::invalid_argument("ArbitraryTree: level 0 must be the root");
  }
  for (std::size_t k = 0; k < levels.size(); ++k) {
    if (levels[k].empty()) {
      throw std::invalid_argument("ArbitraryTree: empty level");
    }
    std::uint64_t total_children = 0;
    for (const NodeSpec& spec : levels[k]) total_children += spec.children;
    const std::uint64_t next_size =
        (k + 1 < levels.size()) ? levels[k + 1].size() : 0;
    if (total_children != next_size) {
      throw std::invalid_argument(
          "ArbitraryTree: child counts at level " + std::to_string(k) +
          " do not match the size of level " + std::to_string(k + 1));
    }
  }

  levels_.resize(levels.size());
  replicas_by_level_.resize(levels.size());
  ReplicaId next_replica = 0;
  for (std::uint32_t k = 0; k < levels.size(); ++k) {
    levels_[k].resize(levels[k].size());
    std::uint32_t next_child = 0;
    for (std::uint32_t i = 0; i < levels[k].size(); ++i) {
      TreeNode& node = levels_[k][i];
      node.level = k;
      node.index = i;
      node.first_child = next_child;
      node.child_count = levels[k][i].children;
      node.physical = levels[k][i].physical;
      next_child += node.child_count;
      if (node.physical) {
        node.replica = next_replica++;
        replicas_by_level_[k].push_back(node.replica);
      }
    }
    if (!replicas_by_level_[k].empty()) physical_levels_.push_back(k);
  }
  replica_count_ = next_replica;
  if (replica_count_ == 0) {
    throw std::invalid_argument("ArbitraryTree: no physical nodes");
  }

  // Back-fill parent links from the first_child ranges.
  for (std::uint32_t k = 0; k + 1 < levels_.size(); ++k) {
    for (const TreeNode& parent : levels_[k]) {
      for (std::uint32_t c = 0; c < parent.child_count; ++c) {
        levels_[k + 1][parent.first_child + c].parent = parent.index;
      }
    }
  }
}

ArbitraryTree ArbitraryTree::from_level_counts(
    const std::vector<LevelCount>& counts) {
  if (counts.empty()) {
    throw std::invalid_argument("from_level_counts: no levels");
  }
  std::vector<std::vector<NodeSpec>> levels(counts.size());
  for (std::size_t k = 0; k < counts.size(); ++k) {
    if (counts[k].total == 0) {
      throw std::invalid_argument("from_level_counts: empty level");
    }
    if (counts[k].physical > counts[k].total) {
      throw std::invalid_argument(
          "from_level_counts: physical count exceeds total");
    }
    levels[k].resize(counts[k].total);
    for (std::uint32_t i = 0; i < counts[k].physical; ++i) {
      levels[k][i].physical = true;
    }
    if (k > 0) {
      // Distribute this level's nodes among the previous level's nodes as
      // evenly as possible (earlier parents take the remainder).
      const std::uint32_t parents = counts[k - 1].total;
      const std::uint32_t base = counts[k].total / parents;
      const std::uint32_t extra = counts[k].total % parents;
      for (std::uint32_t i = 0; i < parents; ++i) {
        levels[k - 1][i].children = base + (i < extra ? 1 : 0);
      }
    }
  }
  return ArbitraryTree(std::move(levels));
}

ArbitraryTree ArbitraryTree::from_spec(const std::string& spec) {
  std::vector<std::uint32_t> sizes;
  std::stringstream ss(spec);
  std::string token;
  while (std::getline(ss, token, '-')) {
    if (token.empty()) {
      throw std::invalid_argument("from_spec: empty component in '" + spec +
                                  "'");
    }
    std::size_t used = 0;
    unsigned long value = 0;
    try {
      value = std::stoul(token, &used);
    } catch (const std::exception&) {
      throw std::invalid_argument("from_spec: bad component '" + token + "'");
    }
    if (used != token.size() || value == 0) {
      throw std::invalid_argument("from_spec: bad component '" + token + "'");
    }
    sizes.push_back(static_cast<std::uint32_t>(value));
  }
  if (sizes.size() < 2 || sizes[0] != 1) {
    throw std::invalid_argument(
        "from_spec: expected a logical root, e.g. \"1-3-5\"");
  }
  std::vector<LevelCount> counts;
  counts.push_back({1, 0});  // logical root
  for (std::size_t k = 1; k < sizes.size(); ++k) {
    counts.push_back({sizes[k], sizes[k]});
  }
  return from_level_counts(counts);
}

ArbitraryTree ArbitraryTree::complete(std::uint32_t branching,
                                      std::uint32_t height) {
  if (branching == 0) {
    throw std::invalid_argument("complete: branching must be > 0");
  }
  std::vector<LevelCount> counts;
  std::uint64_t width = 1;
  for (std::uint32_t k = 0; k <= height; ++k) {
    if (width > (1ULL << 31)) {
      throw std::invalid_argument("complete: tree too large");
    }
    counts.push_back({static_cast<std::uint32_t>(width),
                      static_cast<std::uint32_t>(width)});
    width *= branching;
  }
  return from_level_counts(counts);
}

std::uint32_t ArbitraryTree::height() const noexcept {
  return static_cast<std::uint32_t>(levels_.size()) - 1;
}

std::size_t ArbitraryTree::node_count() const noexcept {
  std::size_t total = 0;
  for (const auto& level : levels_) total += level.size();
  return total;
}

const TreeNode& ArbitraryTree::node(std::uint32_t level,
                                    std::uint32_t index) const {
  if (level >= levels_.size() || index >= levels_[level].size()) {
    throw std::out_of_range("ArbitraryTree::node");
  }
  return levels_[level][index];
}

std::size_t ArbitraryTree::m(std::uint32_t level) const {
  if (level >= levels_.size()) throw std::out_of_range("ArbitraryTree::m");
  return levels_[level].size();
}

std::size_t ArbitraryTree::m_phy(std::uint32_t level) const {
  if (level >= levels_.size()) {
    throw std::out_of_range("ArbitraryTree::m_phy");
  }
  return replicas_by_level_[level].size();
}

std::size_t ArbitraryTree::m_log(std::uint32_t level) const {
  return m(level) - m_phy(level);
}

bool ArbitraryTree::is_physical_level(std::uint32_t level) const {
  return m_phy(level) > 0;
}

std::vector<std::uint32_t> ArbitraryTree::logical_levels() const {
  std::vector<std::uint32_t> out;
  for (std::uint32_t k = 0; k < levels_.size(); ++k) {
    if (!is_physical_level(k)) out.push_back(k);
  }
  return out;
}

std::size_t ArbitraryTree::min_physical_level_size() const {
  ATRCP_CHECK(!physical_levels_.empty());
  std::size_t best = m_phy(physical_levels_.front());
  for (std::uint32_t k : physical_levels_) best = std::min(best, m_phy(k));
  return best;
}

std::size_t ArbitraryTree::max_physical_level_size() const {
  ATRCP_CHECK(!physical_levels_.empty());
  std::size_t best = 0;
  for (std::uint32_t k : physical_levels_) best = std::max(best, m_phy(k));
  return best;
}

const std::vector<ReplicaId>& ArbitraryTree::replicas_at_level(
    std::uint32_t level) const {
  if (level >= levels_.size()) {
    throw std::out_of_range("ArbitraryTree::replicas_at_level");
  }
  return replicas_by_level_[level];
}

std::vector<std::size_t> ArbitraryTree::physical_level_sizes() const {
  std::vector<std::size_t> sizes;
  sizes.reserve(physical_levels_.size());
  for (std::uint32_t k : physical_levels_) sizes.push_back(m_phy(k));
  return sizes;
}

bool ArbitraryTree::satisfies_assumption_3_1() const {
  // m_phy_0 < m_phy_1 <= m_phy_2 <= ... <= m_phy_h over ALL levels; a
  // logical level after a physical one breaks monotonicity automatically.
  if (levels_.size() == 1) return true;  // single node: nothing to compare
  if (m_phy(0) >= m_phy(1)) return false;
  for (std::uint32_t k = 1; k + 1 < levels_.size(); ++k) {
    if (m_phy(k) > m_phy(k + 1)) return false;
  }
  return true;
}

std::string ArbitraryTree::to_spec_string() const {
  std::string out;
  for (std::uint32_t k = 0; k < levels_.size(); ++k) {
    if (k != 0) out += '-';
    const std::size_t total = m(k);
    const std::size_t phy = m_phy(k);
    if (phy == 0 || phy == total) {
      out += std::to_string(total);
    } else {
      out += std::to_string(total) + "(" + std::to_string(phy) + ")";
    }
  }
  return out;
}

}  // namespace atrcp
