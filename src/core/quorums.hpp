// The arbitrary protocol's quorum machinery (§3.2) — the executable side of
// the paper's contribution, implementing the common ReplicaControlProtocol
// interface so it can run against the simulator and be compared with the
// baselines on equal footing.
//
//   Read quorum  = ANY one physical node of EVERY physical level.
//   Write quorum = ALL physical nodes of ANY one physical level.
//
// Together these form a bicoterie (§3.2.3): a read quorum holds a member of
// each level, a write quorum is a full level, so they always intersect.
// Quorum picking realizes the paper's uniform strategies: reads pick
// independently uniformly within each level, writes pick a level uniformly.
#pragma once

#include <memory>

#include "core/analysis.hpp"
#include "core/tree.hpp"
#include "protocols/protocol.hpp"

namespace atrcp {

class ArbitraryProtocol final : public ReplicaControlProtocol {
 public:
  /// Wraps a tree. display_name lets configuration factories label the
  /// instance after the paper's configurations ("ARBITRARY", "MOSTLY-READ",
  /// "MOSTLY-WRITE", "UNMODIFIED"); defaults to "ARBITRARY".
  explicit ArbitraryProtocol(ArbitraryTree tree,
                             std::string display_name = "ARBITRARY");

  const ArbitraryTree& tree() const noexcept { return tree_; }
  const ArbitraryAnalysis& analysis() const noexcept { return analysis_; }

  std::string name() const override { return display_name_; }
  std::size_t universe_size() const override {
    return tree_.replica_count();
  }

  /// One alive physical node per physical level, picked uniformly among the
  /// alive nodes of each level; nullopt if some physical level is dead.
  std::optional<Quorum> do_assemble_read_quorum(const FailureSet& failures,
                                             Rng& rng) const override;

  /// A uniformly-picked physical level whose nodes are ALL alive; nullopt
  /// if every level has at least one failed replica.
  std::optional<Quorum> do_assemble_write_quorum(const FailureSet& failures,
                                              Rng& rng) const override;

  double read_cost() const override { return analysis_.read_cost(); }
  double write_cost() const override { return analysis_.write_cost_avg(); }
  double read_availability(double p) const override {
    return analysis_.read_availability(p);
  }
  double write_availability(double p) const override {
    return analysis_.write_availability(p);
  }
  double read_load() const override { return analysis_.read_load(); }
  double write_load() const override { return analysis_.write_load(); }

  bool supports_enumeration() const override { return true; }
  /// All m(R) = Π m_phy_k read quorums (cartesian product across levels).
  std::vector<Quorum> enumerate_read_quorums(std::size_t limit) const override;
  /// The m(W) = |K_phy| write quorums, one per physical level.
  std::vector<Quorum> enumerate_write_quorums(std::size_t limit) const override;

 private:
  /// Per-physical-level alive accounting for one failure pattern, keyed on
  /// FailureSet::epoch(): alive replica counts per level (read assembly)
  /// and the fully-alive levels in K_phy order (the write candidates —
  /// formerly rebuilt on every call). Mutable because assembly is
  /// logically const; the cache makes concurrent assemble_* calls on one
  /// instance racy, which matches the existing one-protocol-per-cluster
  /// (and one-cluster-per-driver-shard) ownership model.
  struct LevelCache {
    std::uint64_t epoch = 0;  ///< 0 never matches (real epochs start at 1)
    std::vector<std::uint32_t> alive;
    std::vector<std::uint32_t> full;
  };
  const LevelCache& level_cache(const FailureSet& failures) const;

  ArbitraryTree tree_;
  ArbitraryAnalysis analysis_;
  std::string display_name_;
  mutable LevelCache cache_;
};

}  // namespace atrcp
