// The arbitrary tree of §3.1 — the logical structure at the heart of the
// paper's protocol.
//
// A distributed system of n replicas is organized into a tree of height h
// in which every node S(i,k) (i-th node of level k, left-to-right and
// top-to-bottom) is either PHYSICAL (represents a replica) or LOGICAL
// (structure only). A level is physical if it contains at least one
// physical node, logical if all its nodes are logical. Any non-leaf node
// may have any number of descendants — hence "arbitrary".
//
// The protocol itself (core/quorums.hpp) only consumes the per-level
// accounting this class maintains: m_k, m_phy_k, m_log_k, K_phy, K_log and
// the replica ids living at each physical level. Replica ids are assigned
// in the paper's orientation: left-to-right within a level, top-to-bottom
// across levels, so replica 0 is the left-most physical node of the first
// physical level.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "quorum/types.hpp"

namespace atrcp {

/// Per-node construction description: how many children the node has at the
/// next level and whether it is physical.
struct NodeSpec {
  std::uint32_t children = 0;
  bool physical = false;
};

/// A single node of a built tree.
struct TreeNode {
  std::uint32_t level = 0;        ///< k of S(i,k)
  std::uint32_t index = 0;        ///< i of S(i,k), 0-based within the level
  std::uint32_t parent = 0;       ///< index within level-1; 0 for the root
  std::uint32_t first_child = 0;  ///< index of first child within level+1
  std::uint32_t child_count = 0;  ///< m(i,k)
  bool physical = false;
  ReplicaId replica = 0;          ///< valid iff physical
};

class ArbitraryTree {
 public:
  /// Builds from an explicit level-by-level description. levels[k][i]
  /// describes S(i,k). Validation (throws std::invalid_argument):
  ///  * levels non-empty, level 0 has exactly one node (the root);
  ///  * for every k < h: sum of levels[k][i].children == levels[k+1].size();
  ///  * leaf level nodes have zero children;
  ///  * at least one node is physical.
  explicit ArbitraryTree(std::vector<std::vector<NodeSpec>> levels);

  /// Convenience: a tree described by per-level (total, physical) counts.
  /// Children are distributed among the previous level's nodes as evenly as
  /// possible; the first `physical` nodes of each level are the physical
  /// ones (the protocol depends only on the counts, not the positions).
  struct LevelCount {
    std::uint32_t total = 0;
    std::uint32_t physical = 0;
  };
  static ArbitraryTree from_level_counts(const std::vector<LevelCount>& counts);

  /// Parses the paper's compact notation, e.g. "1-3-5" (§3.4): a leading
  /// "1" denotes a logical root; every following number is an all-physical
  /// level of that size. A single-number spec like "7" is one physical
  /// level under a logical root is written "1-7"; "7" alone is rejected to
  /// avoid ambiguity with a 7-node root level.
  static ArbitraryTree from_spec(const std::string& spec);

  /// A complete tree where every node has `branching` children, all nodes
  /// physical — the paper's UNMODIFIED structure (for branching = 2, the
  /// binary tree of Agrawal–El Abbadi [2]).
  static ArbitraryTree complete(std::uint32_t branching, std::uint32_t height);

  // -- structure accessors --------------------------------------------------

  std::uint32_t height() const noexcept;                 ///< h
  std::size_t level_count() const noexcept { return levels_.size(); }
  std::size_t node_count() const noexcept;
  const TreeNode& node(std::uint32_t level, std::uint32_t index) const;

  std::size_t m(std::uint32_t level) const;              ///< m_k
  std::size_t m_phy(std::uint32_t level) const;          ///< m_phy_k
  std::size_t m_log(std::uint32_t level) const;          ///< m_log_k

  bool is_physical_level(std::uint32_t level) const;
  const std::vector<std::uint32_t>& physical_levels() const noexcept {
    return physical_levels_;                             ///< K_phy, ascending
  }
  std::vector<std::uint32_t> logical_levels() const;     ///< K_log

  /// n — the number of replicas (physical nodes).
  std::size_t replica_count() const noexcept { return replica_count_; }

  /// d and e — the min/max number of physical nodes over physical levels.
  std::size_t min_physical_level_size() const;           ///< d
  std::size_t max_physical_level_size() const;           ///< e

  /// Replica ids of the physical nodes at a physical level, ascending.
  const std::vector<ReplicaId>& replicas_at_level(std::uint32_t level) const;

  /// Physical-node counts of the physical levels, in K_phy order — the
  /// complete input of the protocol's analytic model.
  std::vector<std::size_t> physical_level_sizes() const;

  /// Assumption 3.1: m_phy_0 < m_phy_1 <= m_phy_2 <= ... <= m_phy_h.
  /// Required by the load-optimality proofs, not by quorum correctness.
  bool satisfies_assumption_3_1() const;

  /// The paper's compact rendering, e.g. "1-3-5"; mixed levels render as
  /// "total(phy)" e.g. "9(5)".
  std::string to_spec_string() const;

 private:
  std::vector<std::vector<TreeNode>> levels_;
  std::vector<std::uint32_t> physical_levels_;
  std::vector<std::vector<ReplicaId>> replicas_by_level_;  // indexed by level
  std::size_t replica_count_ = 0;
};

}  // namespace atrcp
