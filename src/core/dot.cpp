#include "core/dot.hpp"

#include <ostream>
#include <sstream>

namespace atrcp {

namespace {
std::string node_id(std::uint32_t level, std::uint32_t index) {
  return "n" + std::to_string(level) + "_" + std::to_string(index);
}
}  // namespace

void write_dot(const ArbitraryTree& tree, std::ostream& os,
               const std::string& graph_name) {
  os << "digraph " << graph_name << " {\n"
     << "  rankdir=TB;\n"
     << "  node [fontname=\"Helvetica\"];\n";
  for (std::uint32_t k = 0; k <= tree.height(); ++k) {
    os << "  { rank=same;";
    for (std::uint32_t i = 0; i < tree.m(k); ++i) {
      os << ' ' << node_id(k, i) << ';';
    }
    os << " }\n";
    for (std::uint32_t i = 0; i < tree.m(k); ++i) {
      const TreeNode& node = tree.node(k, i);
      os << "  " << node_id(k, i);
      if (node.physical) {
        os << " [shape=box, style=filled, fillcolor=lightblue, label=\"r"
           << node.replica << "\"];\n";
      } else {
        os << " [shape=circle, style=dashed, label=\"\"];\n";
      }
    }
  }
  for (std::uint32_t k = 0; k < tree.height(); ++k) {
    for (std::uint32_t i = 0; i < tree.m(k); ++i) {
      const TreeNode& node = tree.node(k, i);
      for (std::uint32_t c = 0; c < node.child_count; ++c) {
        os << "  " << node_id(k, i) << " -> "
           << node_id(k + 1, node.first_child + c) << ";\n";
      }
    }
  }
  os << "}\n";
}

std::string to_dot(const ArbitraryTree& tree, const std::string& graph_name) {
  std::ostringstream os;
  write_dot(tree, os, graph_name);
  return os.str();
}

std::string to_ascii(const ArbitraryTree& tree) {
  std::ostringstream os;
  for (std::uint32_t k = 0; k <= tree.height(); ++k) {
    os << "level " << k << " ["
       << (tree.is_physical_level(k) ? "physical" : "logical ") << "]:";
    for (std::uint32_t i = 0; i < tree.m(k); ++i) {
      const TreeNode& node = tree.node(k, i);
      if (node.physical) {
        os << " r" << node.replica;
      } else {
        os << " .";
      }
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace atrcp
