// A deliberately WRONG replica control protocol — the checker's teeth test.
//
// Read quorums are singletons drawn from the low half [0, n/2) of the
// universe, write quorums singletons from the high half [n/2, n): no read
// quorum ever intersects a write quorum, violating the bicoterie property
// (Definition 2.2) that every real protocol in src/protocols upholds. Under
// this protocol reads miss committed writes and concurrent writers both
// derive their version from the same stale pre-read, so the schedule
// explorer must surface a dependency cycle (lost update: ww + rw) within a
// handful of seeds. It lives in src/check, not src/protocols, because it is
// a test double — never a baseline.
#pragma once

#include "protocols/protocol.hpp"

namespace atrcp {

class BrokenIntersectionProtocol final : public ReplicaControlProtocol {
 public:
  /// Throws std::invalid_argument if n < 2 (both halves must be non-empty).
  explicit BrokenIntersectionProtocol(std::size_t n);

  std::string name() const override { return "BROKEN-INTERSECTION"; }
  std::size_t universe_size() const override { return n_; }

  // Analytic model of the (non-)protocol, for completeness: singleton
  // quorums over each half.
  double read_cost() const override { return 1.0; }
  double write_cost() const override { return 1.0; }
  double read_availability(double p) const override;
  double write_availability(double p) const override;
  double read_load() const override;
  double write_load() const override;

  bool supports_enumeration() const override { return true; }
  std::vector<Quorum> enumerate_read_quorums(std::size_t limit) const override;
  std::vector<Quorum> enumerate_write_quorums(std::size_t limit) const override;

 protected:
  std::optional<Quorum> do_assemble_read_quorum(const FailureSet& failures,
                                                Rng& rng) const override;
  std::optional<Quorum> do_assemble_write_quorum(const FailureSet& failures,
                                                 Rng& rng) const override;

 private:
  std::optional<Quorum> pick_singleton(std::size_t lo, std::size_t hi,
                                       const FailureSet& failures,
                                       Rng& rng) const;

  std::size_t n_;
  std::size_t half_;  ///< readers draw from [0, half_), writers [half_, n_)
};

}  // namespace atrcp
