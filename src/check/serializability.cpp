#include "check/serializability.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

namespace atrcp {
namespace {

/// Ascending "oldest first" order of distinct timestamps: a precedes b iff
/// b wins the paper's newer-than comparison.
bool older(const Timestamp& a, const Timestamp& b) {
  return b.is_newer_than(a);
}

struct WriteRef {
  Timestamp ts;
  int txn = 0;          ///< index into txns_
  std::size_t op = 0;   ///< index into txns_[txn].ops
};

struct Observation {
  int txn = 0;
  std::size_t op = 0;
  Key key = 0;
  Timestamp ts;         ///< kInitialTimestamp for a read miss
  bool is_preread = false;
  bool hit = false;     ///< read found a value (pre-reads: unused)
};

}  // namespace

SerializabilityChecker::SerializabilityChecker(std::vector<HistoryTxn> txns)
    : txns_(std::move(txns)) {}

std::vector<Key> SerializabilityChecker::keys() const {
  std::set<Key> keys;
  for (const HistoryTxn& txn : txns_) {
    if (txn.outcome == HistoryOutcome::kAborted) continue;
    for (const HistoryOp& op : txn.ops) keys.insert(op.key);
  }
  return {keys.begin(), keys.end()};
}

CheckResult SerializabilityChecker::check() const {
  CheckResult result;

  // -- 1. choose the included transactions ---------------------------------
  // Committed always; blocked (decided commit, never fully acked) only when
  // one of their written versions was observed by an included transaction —
  // otherwise the history simply ended before the pending write landed.
  std::vector<char> included(txns_.size(), 0);
  for (std::size_t i = 0; i < txns_.size(); ++i) {
    if (txns_[i].outcome == HistoryOutcome::kCommitted) included[i] = 1;
  }
  const auto observes = [&](std::size_t i, Key key, const Timestamp& ts) {
    for (const HistoryOp& op : txns_[i].ops) {
      if (op.key != key) continue;
      if (op.is_write || op.hit) {
        if (op.observed == ts) return true;
      }
    }
    return false;
  };
  for (bool changed = true; changed;) {
    changed = false;
    for (std::size_t b = 0; b < txns_.size(); ++b) {
      if (included[b] || txns_[b].outcome != HistoryOutcome::kBlocked) continue;
      for (const HistoryOp& op : txns_[b].ops) {
        if (!op.is_write) continue;
        for (std::size_t i = 0; i < txns_.size() && !included[b]; ++i) {
          if (included[i] && observes(i, op.key, op.written)) {
            included[b] = 1;
            changed = true;
          }
        }
      }
    }
  }

  // -- 2. per-key version chains from the replica timestamps ---------------
  std::map<Key, std::vector<WriteRef>> chains;
  std::vector<Observation> observations;
  for (std::size_t i = 0; i < txns_.size(); ++i) {
    if (!included[i]) continue;
    for (std::size_t o = 0; o < txns_[i].ops.size(); ++o) {
      const HistoryOp& op = txns_[i].ops[o];
      if (op.is_write) {
        chains[op.key].push_back({op.written, static_cast<int>(i), o});
        observations.push_back({static_cast<int>(i), o, op.key, op.observed,
                                /*is_preread=*/true, /*hit=*/true});
      } else {
        observations.push_back({static_cast<int>(i), o, op.key,
                                op.hit ? op.observed : kInitialTimestamp,
                                /*is_preread=*/false, op.hit});
      }
    }
  }
  for (auto& [key, chain] : chains) {
    std::sort(chain.begin(), chain.end(),
              [&](const WriteRef& a, const WriteRef& b) {
                if (!(a.ts == b.ts)) return older(a.ts, b.ts);
                // Duplicate timestamps (broken intersection): completion
                // order is the only deterministic install order left.
                return txns_[a.txn].complete_seq < txns_[b.txn].complete_seq;
              });
    for (std::size_t i = 1; i < chain.size(); ++i) {
      if (chain[i].ts == chain[i - 1].ts) {
        result.violations.push_back(
            "duplicate version " + chain[i].ts.to_string() + " of key " +
            std::to_string(key) + " written by both " +
            txns_[chain[i - 1].txn].label() + " and " +
            txns_[chain[i].txn].label());
      }
    }
  }

  // -- 3. integrity of every observation -----------------------------------
  for (const Observation& obs : observations) {
    if (obs.ts == kInitialTimestamp) continue;  // initial version: fine
    const auto it = chains.find(obs.key);
    const WriteRef* writer = nullptr;
    if (it != chains.end()) {
      for (const WriteRef& ref : it->second) {
        if (ref.ts == obs.ts) writer = &ref;
      }
    }
    const HistoryTxn& reader = txns_[obs.txn];
    if (writer == nullptr) {
      result.violations.push_back(
          reader.label() + (obs.is_preread ? " version pre-read" : " read") +
          " of key " + std::to_string(obs.key) + " observed " +
          obs.ts.to_string() +
          ", which no committed transaction wrote (dirty/aborted read)");
      continue;
    }
    if (!obs.is_preread && obs.hit) {
      const HistoryOp& read_op = reader.ops[obs.op];
      const HistoryOp& write_op = txns_[writer->txn].ops[writer->op];
      if (read_op.value != write_op.value) {
        result.violations.push_back(
            reader.label() + " read of key " + std::to_string(obs.key) +
            " observed " + obs.ts.to_string() + " with value \"" +
            read_op.value + "\" but " + txns_[writer->txn].label() +
            " wrote \"" + write_op.value + "\"");
      }
    }
  }

  // -- 4. dependency graph --------------------------------------------------
  // Nodes: included transactions. Edges: ww (adjacent chain versions),
  // wr (writer -> observer of the version), rw (observer of a version ->
  // writer of its successor). Self edges are dropped.
  std::vector<int> nodes;
  std::vector<int> node_of(txns_.size(), -1);
  for (std::size_t i = 0; i < txns_.size(); ++i) {
    if (included[i]) {
      node_of[i] = static_cast<int>(nodes.size());
      nodes.push_back(static_cast<int>(i));
    }
  }
  struct Edge {
    int to = 0;
    std::string label;
  };
  std::vector<std::vector<Edge>> adj(nodes.size());
  std::set<std::pair<int, int>> seen_edges;
  const auto add_edge = [&](int from_txn, int to_txn, std::string label) {
    if (from_txn == to_txn) return;
    const int u = node_of[from_txn];
    const int v = node_of[to_txn];
    if (seen_edges.insert({u, v}).second) {
      adj[u].push_back(Edge{v, std::move(label)});
    }
  };
  for (const auto& [key, chain] : chains) {
    for (std::size_t i = 1; i < chain.size(); ++i) {
      add_edge(chain[i - 1].txn, chain[i].txn,
               "ww[k" + std::to_string(key) + ": " +
                   chain[i - 1].ts.to_string() + " -> " +
                   chain[i].ts.to_string() + "]");
    }
  }
  for (const Observation& obs : observations) {
    const auto it = chains.find(obs.key);
    if (it == chains.end()) continue;
    const std::vector<WriteRef>& chain = it->second;
    const char* verb = obs.is_preread ? "pre-read" : "read";
    // wr: every writer of the exact observed version precedes the observer.
    if (!(obs.ts == kInitialTimestamp)) {
      for (const WriteRef& ref : chain) {
        if (ref.ts == obs.ts) {
          add_edge(ref.txn, obs.txn,
                   "wr[k" + std::to_string(obs.key) + ": " +
                       obs.ts.to_string() + " " + verb + "]");
        }
      }
    }
    // rw: the observer precedes the writer of the first strictly newer
    // version (for a miss, the first version of the chain).
    for (const WriteRef& ref : chain) {
      if (ref.ts.is_newer_than(obs.ts)) {
        add_edge(obs.txn, ref.txn,
                 "rw[k" + std::to_string(obs.key) + ": " + verb + " " +
                     obs.ts.to_string() + ", overwritten by " +
                     ref.ts.to_string() + "]");
        break;
      }
    }
  }

  // -- 5. shortest dependency cycle ----------------------------------------
  // BFS from every node s: a cycle through s closes via any edge u -> s
  // with u reachable from s; the global minimum is the minimized
  // counterexample.
  const int n = static_cast<int>(nodes.size());
  int best_len = -1;
  std::vector<int> best_cycle;  // node ids, in order
  for (int s = 0; s < n; ++s) {
    std::vector<int> dist(n, -1);
    std::vector<int> parent(n, -1);
    std::vector<int> queue{s};
    dist[s] = 0;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const int u = queue[head];
      for (const Edge& e : adj[u]) {
        if (dist[e.to] < 0) {
          dist[e.to] = dist[u] + 1;
          parent[e.to] = u;
          queue.push_back(e.to);
        }
      }
    }
    for (int u = 0; u < n; ++u) {
      if (dist[u] < 0) continue;
      for (const Edge& e : adj[u]) {
        if (e.to != s) continue;
        const int len = dist[u] + 1;
        if (best_len < 0 || len < best_len) {
          best_len = len;
          best_cycle.clear();
          for (int v = u; v != -1; v = parent[v]) best_cycle.push_back(v);
          std::reverse(best_cycle.begin(), best_cycle.end());  // s .. u
        }
      }
    }
  }
  if (best_len > 0) {
    for (int node : best_cycle) {
      result.cycle.push_back(txns_[nodes[node]].txn_id);
    }
  }

  result.ok = result.violations.empty() && result.cycle.empty();
  if (result.ok) return result;

  // -- 6. the counterexample report ----------------------------------------
  std::string& report = result.report;
  report = "SERIALIZABILITY VIOLATION\n";
  for (const std::string& violation : result.violations) {
    report += "  violation: " + violation + "\n";
  }
  if (!best_cycle.empty()) {
    report += "  dependency cycle (" + std::to_string(best_cycle.size()) +
              " transactions):\n";
    std::set<int> involved;
    for (std::size_t i = 0; i < best_cycle.size(); ++i) {
      const int u = best_cycle[i];
      const int v = best_cycle[(i + 1) % best_cycle.size()];
      involved.insert(nodes[u]);
      const Edge* edge = nullptr;
      for (const Edge& e : adj[u]) {
        if (e.to == v) edge = &e;
      }
      report += "    " + txns_[nodes[u]].label() + " --" +
                (edge != nullptr ? edge->label : std::string("?")) +
                "--> " + txns_[nodes[v]].label() + "\n";
    }
    // Minimized schedule prefix: just the cycle's transactions, in invoke
    // order, with their executed ops — enough to replay the anomaly by hand.
    std::vector<int> schedule(involved.begin(), involved.end());
    std::sort(schedule.begin(), schedule.end(), [&](int a, int b) {
      return txns_[a].invoke_seq < txns_[b].invoke_seq;
    });
    report += "  schedule prefix (cycle transactions only):\n";
    for (int i : schedule) {
      const HistoryTxn& txn = txns_[i];
      report += "    " + txn.label() + " " + to_string(txn.outcome) +
                " invoke_seq=" + std::to_string(txn.invoke_seq) +
                " complete_seq=" + std::to_string(txn.complete_seq) +
                " span=[" + std::to_string(txn.span.begin) + "," +
                std::to_string(txn.span.end) + "]\n";
      for (const HistoryOp& op : txn.ops) {
        report += "      " + op.to_string() + "\n";
      }
    }
  }
  return result;
}

LinResult SerializabilityChecker::check_key_linearizable(
    Key key, std::size_t max_ops) const {
  constexpr SimTime kInf = ~SimTime{0};
  struct LOp {
    bool is_write = false;
    bool optional = false;  ///< blocked write: may take effect or not
    Timestamp ts;           ///< write: installed; read: observed
    bool hit = false;
    SimTime start = 0;
    SimTime end = 0;
    std::string desc;
  };
  std::vector<LOp> ops;
  for (const HistoryTxn& txn : txns_) {
    if (txn.outcome == HistoryOutcome::kAborted) continue;
    const bool blocked = txn.outcome == HistoryOutcome::kBlocked;
    for (const HistoryOp& op : txn.ops) {
      if (op.key != key) continue;
      if (op.is_write) {
        // The write's effect lands between staging and outcome delivery —
        // for a blocked transaction possibly after the recorded history
        // ends, hence the open interval and the optional flag.
        ops.push_back(LOp{true, blocked, op.written, true, op.start,
                          blocked ? kInf : txn.span.end,
                          txn.label() + " " + op.to_string()});
      } else if (!blocked) {
        ops.push_back(LOp{false, false, op.observed, op.hit, op.start, op.end,
                          txn.label() + " " + op.to_string()});
      }
    }
  }
  LinResult result;
  if (ops.empty()) return result;
  std::sort(ops.begin(), ops.end(), [](const LOp& a, const LOp& b) {
    if (a.start != b.start) return a.start < b.start;
    if (a.end != b.end) return a.end < b.end;
    return a.desc < b.desc;
  });
  max_ops = std::min<std::size_t>(max_ops, 64);
  if (ops.size() > max_ops) {
    result.skipped = true;
    return result;
  }
  const int n = static_cast<int>(ops.size());

  const auto fail = [&](const std::string& why) {
    result.ok = false;
    result.report = "LINEARIZABILITY VIOLATION key=" + std::to_string(key) +
                    ": " + why + "\n  sub-history (" + std::to_string(n) +
                    " ops, by start time):\n";
    for (const LOp& op : ops) result.report += "    " + op.desc + "\n";
    return result;
  };

  // Register states: -1 = initial, otherwise an index into `versions`.
  std::vector<Timestamp> versions;
  for (const LOp& op : ops) {
    if (op.is_write) versions.push_back(op.ts);
  }
  std::sort(versions.begin(), versions.end(), older);
  versions.erase(std::unique(versions.begin(), versions.end()),
                 versions.end());
  const auto version_index = [&](const Timestamp& ts) {
    for (std::size_t i = 0; i < versions.size(); ++i) {
      if (versions[i] == ts) return static_cast<int>(i);
    }
    return -2;
  };
  for (const LOp& op : ops) {
    if (!op.is_write && op.hit && version_index(op.ts) == -2) {
      return fail("read observed " + op.ts.to_string() +
                  ", which no committed write of this key installed");
    }
  }

  std::uint64_t required = 0;  // bits of the non-optional ops
  for (int i = 0; i < n; ++i) {
    if (!ops[i].optional) required |= std::uint64_t{1} << i;
  }

  // Wing–Gong search: repeatedly linearize some pending op no other
  // pending op strictly precedes in real time; reads must match the
  // register, writes set it. Memoized on (done-mask, register state).
  std::set<std::pair<std::uint64_t, int>> visited;
  const auto dfs = [&](const auto& self, std::uint64_t done,
                       int current) -> bool {
    if ((done & required) == required) return true;
    if (!visited.insert({done, current}).second) return false;
    for (int i = 0; i < n; ++i) {
      if (done & (std::uint64_t{1} << i)) continue;
      bool minimal = true;
      for (int j = 0; j < n && minimal; ++j) {
        if (j == i || (done & (std::uint64_t{1} << j))) continue;
        if (ops[j].end < ops[i].start) minimal = false;
      }
      if (!minimal) continue;
      if (ops[i].is_write) {
        if (self(self, done | (std::uint64_t{1} << i),
                 version_index(ops[i].ts))) {
          return true;
        }
      } else {
        const bool matches = ops[i].hit
                                 ? (current >= 0 &&
                                    versions[current] == ops[i].ts)
                                 : current == -1;
        if (matches &&
            self(self, done | (std::uint64_t{1} << i), current)) {
          return true;
        }
      }
    }
    return false;
  };
  if (!dfs(dfs, 0, -1)) {
    return fail(
        "no linearization of the committed reads/writes is consistent with "
        "real time and register semantics");
  }
  return result;
}

CheckResult check_epoch_tags(const std::vector<HistoryTxn>& txns) {
  CheckResult result;
  const auto view_rank = [](const HistoryTxn& txn) -> std::uint64_t {
    return 2 * static_cast<std::uint64_t>(txn.span.epoch) -
           (txn.span.epoch_overlap != 0 ? 1 : 0);
  };
  const auto view_name = [](const HistoryTxn& txn) {
    return std::string(txn.span.epoch_overlap != 0 ? "overlap " : "epoch ") +
           std::to_string(txn.span.epoch);
  };

  // Tag sanity: an overlap window always targets epoch >= 1.
  for (const HistoryTxn& txn : txns) {
    if (txn.span.epoch == 0 && txn.span.epoch_overlap != 0) {
      result.violations.push_back(txn.label() +
                                  " tagged overlap into epoch 0 — no "
                                  "transition can target the initial epoch");
    }
  }

  // 1. Monotonicity in invoke order. The recorder stores transactions in
  // completion order; sort a copy of (invoke_seq, rank, label) instead.
  std::vector<const HistoryTxn*> by_invoke;
  by_invoke.reserve(txns.size());
  for (const HistoryTxn& txn : txns) by_invoke.push_back(&txn);
  std::sort(by_invoke.begin(), by_invoke.end(),
            [](const HistoryTxn* a, const HistoryTxn* b) {
              return a->invoke_seq < b->invoke_seq;
            });
  const HistoryTxn* high = nullptr;
  for (const HistoryTxn* txn : by_invoke) {
    if (high != nullptr && view_rank(*txn) < view_rank(*high)) {
      result.violations.push_back(
          txn->label() + " began under " + view_name(*txn) + " after " +
          high->label() + " began under " + view_name(*high) +
          " — view hand-out went backwards");
      break;  // one minimized pair is enough
    }
    if (high == nullptr || view_rank(*txn) > view_rank(*high)) high = txn;
  }

  // 2. Drain: per pure epoch, the last completion must precede the next
  // pure epoch's first invocation (invoke/complete share one sequence).
  std::map<std::uint32_t, const HistoryTxn*> last_complete;  // pure only
  std::map<std::uint32_t, const HistoryTxn*> first_invoke;
  for (const HistoryTxn& txn : txns) {
    if (txn.span.epoch_overlap != 0) continue;
    auto& last = last_complete[txn.span.epoch];
    if (last == nullptr || txn.complete_seq > last->complete_seq) last = &txn;
    auto& first = first_invoke[txn.span.epoch];
    if (first == nullptr || txn.invoke_seq < first->invoke_seq) first = &txn;
  }
  for (const auto& [epoch, last] : last_complete) {
    for (const auto& [later_epoch, first] : first_invoke) {
      if (later_epoch <= epoch) continue;
      if (last->complete_seq > first->invoke_seq) {
        result.violations.push_back(
            last->label() + " (pure epoch " + std::to_string(epoch) +
            ") completed after " + first->label() + " (pure epoch " +
            std::to_string(later_epoch) +
            ") was invoked — the old epoch did not drain before the new "
            "epoch opened");
      }
    }
  }

  if (!result.violations.empty()) {
    result.ok = false;
    result.report = "epoch-tag check failed:";
    for (const std::string& violation : result.violations) {
      result.report += "\n  - " + violation;
    }
  }
  return result;
}

}  // namespace atrcp
