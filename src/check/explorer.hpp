// Seeded schedule exploration — the FoundationDB/VOPR-style driver that
// turns the serializability checker into a harness.
//
// One explorer seed fully determines one experiment: the cluster seed (all
// network jitter, quorum strategy draws, message ordering), the coordinator
// option draws, the nemesis schedule (crashes/recoveries, partitions, link
// degradation, all of which heal before the run ends) and the concurrent
// multi-client workload (a mix of reads, blind writes, read-modify-writes
// and cross-key transactions). The simulation is single-threaded and
// discrete-event, so the recorded history — and therefore the emitted
// report — is byte-for-byte reproducible from (protocol, seed).
//
// Every seed's history goes through SerializabilityChecker::check() plus
// the per-key Wing–Gong linearizability check. Real protocols must pass
// every seed; the BrokenIntersectionProtocol test double must be flagged
// with a cycle counterexample within a handful of seeds.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "check/serializability.hpp"
#include "protocols/protocol.hpp"

namespace atrcp {

class Cluster;
class EventBus;
class RunDriver;

/// A deterministic fault plan generated from the nemesis RNG: every action
/// heals (recovery / partition heal / link restore) before the plan's
/// horizon, so a settled run is always reachable.
struct NemesisSchedule {
  struct Action {
    enum class Kind : std::uint8_t { kCrash = 0, kPartition = 1, kDegrade = 2 };
    Kind kind = Kind::kCrash;
    SimTime at = 0;
    SimTime duration = 0;
    /// kCrash: the crashed replica. kDegrade: the degraded link's endpoints.
    /// kPartition: the minority group.
    std::vector<SiteId> sites;
    double drop_probability = 0.0;  ///< kDegrade only

    std::string to_string() const;
  };
  std::vector<Action> actions;

  /// Draws 0..3 healing fault actions over the replica universe; degrade
  /// actions target client<->replica links (all traffic is client-driven).
  static NemesisSchedule generate(Rng& rng, std::size_t replicas,
                                  std::size_t clients);

  /// Schedules every action (and its heal) on the cluster's scheduler.
  void apply(Cluster& cluster) const;

  /// "[crash r2@500+4000; part {0,3}@1200+3000]" — the documented format.
  std::string to_string() const;
};

struct ExplorerOptions {
  std::size_t clients = 4;          ///< concurrent closed-loop clients
  std::size_t txns_per_client = 12;
  std::size_t keys = 3;             ///< small hot key space forces conflicts
  bool nemesis = true;
  /// Per-key linearizability sub-histories above this are skipped (<= 64).
  std::size_t max_lin_ops = 48;
  /// Flight-recorder ring capacity for every explored run. Recording
  /// consumes no randomness, so it never changes which schedules a seed
  /// explores; a failing seed's trace is exported into the report. 0 turns
  /// the recorder off (no trace next to counterexamples).
  std::size_t event_bus_capacity = 1 << 14;
  /// Number of flight-recorder tail lines appended to a failing seed's
  /// counterexample detail.
  std::size_t trace_tail_lines = 32;

  // -- multi-key keyspace mode (0 = classic single-tree exploration) ---------
  /// When > 0, each seed builds this many independent shard clusters of the
  /// protocol under test, hashes a small key universe across them, drives a
  /// mixed YCSB-style workload through the sharded keyspace
  /// (keyspace/keyspace.hpp) and checks the MERGED key-aware history
  /// (keyspace/multi_history.hpp): routing invariant + cross-shard
  /// serializability + per-shard linearizability. The flight recorder is
  /// not wired in this mode (event_bus_capacity and `scratch` are ignored);
  /// counterexamples carry the checker reports only.
  std::size_t shards = 0;
  /// Key-universe size in multi-key mode; small forces cross-client
  /// conflicts on every shard.
  std::size_t keyspace_records = 16;
  /// Replace the hash router with the BrokenCrossShardRouter test double
  /// (keyspace/shard_map.hpp), which splits a key's version chain across
  /// two shards — the multi-shard teeth test. The checker must flag every
  /// seed whose workload writes any key twice.
  bool broken_router = false;
  /// Attach a light (mostly-read) shard and let the hot-key remap policy
  /// promote/restore at quiescent batch boundaries mid-exploration.
  /// Ignored under broken_router.
  bool remap = false;

  // -- online reconfiguration nemesis (src/reconfig) -------------------------
  /// When true every seed also runs an online epoch transition mid-workload:
  /// the cluster is built with ClusterOptions::enable_reconfig (one spare
  /// pool site for universe-growing targets), a target tree is drawn from
  /// the seed's dedicated reconfig stream (same / +1 / -1 universe,
  /// majority or balanced arbitrary tree), the transition fires at a drawn
  /// time and roughly half the seeds crash the manager at a drawn phase
  /// (recovering later). After the run the seed additionally asserts the
  /// transition completed and passes check_epoch_tags() over the history.
  /// Ignored in multi-key mode (shards > 0). Classic-mode digests are
  /// unaffected when off: the extra seed stream is only drawn here.
  bool reconfig = false;
  /// Planted view-change bug (ReconfigOptions::broken_overlap) for the
  /// reconfig teeth test: overlap windows use only the NEW epoch's quorum
  /// rules and state sync is skipped — the checker must flag it.
  bool broken_overlap = false;
};

/// Outcome of a single (protocol, seed) experiment.
struct SeedReport {
  std::uint64_t seed = 0;
  bool ok = true;
  std::size_t committed = 0;
  std::size_t aborted = 0;
  std::size_t blocked = 0;
  std::size_t lin_keys_checked = 0;
  std::size_t lin_keys_skipped = 0;
  std::string nemesis;  ///< NemesisSchedule::to_string()
  /// Reconfiguration plan summary ("maj6@1204 crash=sync" style); empty
  /// outside reconfig mode, and then omitted from line() so classic-mode
  /// report bytes are unchanged.
  std::string reconfig;
  /// Counterexample (serializability and/or linearizability reports);
  /// empty when ok. When a failure occurred with the flight recorder on,
  /// also carries a summary line and the recorder's event tail.
  std::string detail;
  /// Chrome trace-event JSON of the failing run's flight recorder — the
  /// offending schedule's full timeline, ready for Perfetto. Empty when ok
  /// or when the recorder was disabled.
  std::string flight_recorder;

  /// One deterministic summary line (no detail).
  std::string line() const;
};

struct ExploreReport {
  std::string label;
  bool ok = true;
  std::size_t seeds_run = 0;
  std::vector<std::uint64_t> failing_seeds;
  /// Full byte-reproducible report text: header, one line per seed,
  /// failing-seed counterexamples, result trailer.
  std::string text;
  /// Flight-recorder trace (Chrome JSON) of the FIRST failing seed; empty
  /// when every seed passed or the recorder was disabled.
  std::string first_failure_trace;
};

class ScheduleExplorer {
 public:
  using ProtocolFactory =
      std::function<std::unique_ptr<ReplicaControlProtocol>()>;

  explicit ScheduleExplorer(ExplorerOptions options = {});

  /// Runs one seeded experiment and checks the recorded history.
  ///
  /// Thread-safety: const and self-contained — every call builds its own
  /// Cluster from the seed's own SplitMix64 streams and touches no shared
  /// mutable state, so any number of run_seed calls may execute
  /// concurrently on different threads. This is the property the parallel
  /// driver's seed shards rely on; the factory must likewise return a
  /// fresh protocol per call (every factory in protocol_zoo() does).
  ///
  /// `scratch` is the shard-local arena-reuse hook: a caller sweeping many
  /// seeds on one thread passes the same caller-owned EventBus to every
  /// call, and each run records into it after a reset() instead of
  /// allocating a fresh multi-MiB ring per seed. Recording into a reset
  /// bus is indistinguishable from recording into a new one, so reports
  /// stay byte-identical. The bus must be thread-confined like the
  /// cluster; nullptr (the default) allocates per seed as before. Ignored
  /// when options().event_bus_capacity is 0.
  SeedReport run_seed(const ProtocolFactory& factory, std::uint64_t seed,
                      EventBus* scratch = nullptr) const;

  /// A scratch bus sized for run_seed's recordings (ring retention depends
  /// on capacity, so reuse is only byte-identical when the scratch matches
  /// options().event_bus_capacity). Returns nullptr when recording is off.
  std::unique_ptr<EventBus> make_scratch_bus() const;

  /// Sweeps seeds [first_seed, first_seed + seed_count). When
  /// stop_at_first_failure is set the sweep ends with the first failing
  /// seed's counterexample (the teeth test); otherwise every seed runs.
  ///
  /// With a driver, seeds are sharded across its workers and the per-seed
  /// reports are merged back in seed order, so the returned report —
  /// text, failing seeds, first-failure trace — is byte-identical to the
  /// serial sweep at every worker count (a driver with jobs() == 1, or
  /// driver == nullptr, IS the serial code path). Under
  /// stop_at_first_failure a parallel sweep may speculatively run seeds
  /// past the first failure; their results are discarded so the report
  /// still ends at the same seed the serial sweep would have stopped at.
  ExploreReport explore(const ProtocolFactory& factory,
                        const std::string& label, std::uint64_t first_seed,
                        std::size_t seed_count,
                        bool stop_at_first_failure = false,
                        const RunDriver* driver = nullptr) const;

  const ExplorerOptions& options() const noexcept { return options_; }

 private:
  ExplorerOptions options_;
};

/// Every protocol in src/protocols plus the paper's arbitrary-tree
/// configurations, sized small so a 200-seed sweep stays fast.
struct ZooEntry {
  std::string label;
  ScheduleExplorer::ProtocolFactory factory;
};
std::vector<ZooEntry> protocol_zoo();

}  // namespace atrcp
