#include "check/history.hpp"

#include "util/check.hpp"

namespace atrcp {

std::string to_string(HistoryOutcome outcome) {
  switch (outcome) {
    case HistoryOutcome::kCommitted: return "committed";
    case HistoryOutcome::kAborted: return "aborted";
    case HistoryOutcome::kBlocked: return "blocked";
  }
  return "unknown";
}

std::string HistoryOp::to_string() const {
  std::string out;
  if (is_write) {
    out = "w k" + std::to_string(key) + ":=\"" + value + "\" " +
          written.to_string() + " (base " + observed.to_string() + ")";
  } else if (hit) {
    out = "r k" + std::to_string(key) + "=\"" + value + "\" " +
          observed.to_string();
  } else {
    out = "r k" + std::to_string(key) + "=miss";
  }
  out += " @[" + std::to_string(start) + "," + std::to_string(end) + "]";
  return out;
}

std::string HistoryTxn::label() const {
  return "c" + std::to_string(site) + "#" +
         std::to_string(txn_id & 0xFFFFFFFFULL);
}

std::string HistoryEvent::to_string() const {
  std::string out = "seq=" + std::to_string(seq) + " t=" + std::to_string(at) +
                    " c" + std::to_string(site) + "#" +
                    std::to_string(txn_id & 0xFFFFFFFFULL);
  if (kind == Kind::kInvoke) {
    out += " invoke";
  } else {
    out += " " + atrcp::to_string(outcome);
  }
  return out;
}

std::uint64_t HistoryRecorder::record_invoke(SiteId site, std::uint64_t txn_id,
                                             SimTime at) {
  const auto seq = static_cast<std::uint64_t>(events_.size());
  events_.push_back(HistoryEvent{HistoryEvent::Kind::kInvoke, seq, site,
                                 txn_id, at, HistoryOutcome::kAborted});
  ++open_;
  return seq;
}

void HistoryRecorder::record_complete(SiteId site, std::uint64_t txn_id,
                                      std::uint64_t invoke_seq,
                                      HistoryOutcome outcome,
                                      const TxnSpan& span,
                                      std::vector<HistoryOp> ops, SimTime at) {
  ATRCP_CHECK(open_ > 0);
  const auto seq = static_cast<std::uint64_t>(events_.size());
  events_.push_back(
      HistoryEvent{HistoryEvent::Kind::kComplete, seq, site, txn_id, at,
                   outcome});
  HistoryTxn txn;
  txn.txn_id = txn_id;
  txn.site = site;
  txn.outcome = outcome;
  txn.span = span;
  txn.invoke_seq = invoke_seq;
  txn.complete_seq = seq;
  txn.ops = std::move(ops);
  txns_.push_back(std::move(txn));
  --open_;
}

void HistoryRecorder::clear() {
  events_.clear();
  txns_.clear();
  open_ = 0;
}

}  // namespace atrcp
