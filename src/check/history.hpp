// Concurrent-history recording — the raw material of the one-copy
// serializability checker (src/check/serializability.hpp).
//
// The transaction coordinator (src/txn) stamps an invoke event when a
// transaction enters run() and a complete event when its outcome is
// delivered, together with one HistoryOp per executed operation: reads
// carry the observed (value, timestamp), writes carry the version-pre-read
// base timestamp AND the installed timestamp. Because replica timestamps
// are (version, SID) pairs unique per committed write, the checker can
// reconstruct the per-key version order and the full transaction
// dependency graph from this record alone — across any number of
// concurrently interleaved clients, which is exactly what the sequential
// reference-copy tests (one_copy_test, chaos_test) cannot see.
//
// The recorder is deliberately below the txn layer (it depends only on
// obs/replica/sim vocabulary types) so atrcp_txn can link against it.
// Events get a global sequence number in recording order; the simulation
// is single-threaded and deterministic under its seed, so the sequence is
// byte-reproducible.
//
// Thread-safety: a recorder is owned by one Cluster and is not
// synchronized — "concurrent" refers to the simulated clients, which all
// run on the cluster's single scheduler thread. Under the parallel run
// driver each seed's recorder lives and dies inside its own worker
// (ScheduleExplorer::run_seed), so recorders never cross threads.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/span.hpp"
#include "replica/store.hpp"
#include "replica/timestamp.hpp"
#include "sim/network.hpp"
#include "sim/scheduler.hpp"

namespace atrcp {

/// TxnOutcome mirrored below the txn layer (same underlying values).
enum class HistoryOutcome : std::uint8_t {
  kCommitted = 0,
  kAborted = 1,
  kBlocked = 2,
};

/// One executed operation of a transaction, as the coordinator saw it.
struct HistoryOp {
  bool is_write = false;
  Key key = 0;
  /// Reads: whether any quorum member held a value. Writes: always true.
  bool hit = false;
  /// Reads: the observed value. Writes: the written value.
  Value value;
  /// Reads: the observed timestamp (kInitialTimestamp on a miss).
  /// Writes: the effective base of the version pre-read — the newest
  /// timestamp the write derived its version from (the paper's "learn the
  /// highest version number from a read quorum", or the transaction's own
  /// earlier staged write of the same key).
  Timestamp observed;
  /// Writes only: the installed (version, SID) timestamp.
  Timestamp written;
  SimTime start = 0;  ///< first quorum round issued (post-locking)
  SimTime end = 0;    ///< operation result accepted

  std::string to_string() const;
};

/// A finished transaction: outcome, obs phase stamps, executed ops.
struct HistoryTxn {
  std::uint64_t txn_id = 0;
  SiteId site = 0;  ///< issuing coordinator's site (span.coordinator_site)
  HistoryOutcome outcome = HistoryOutcome::kAborted;
  /// The obs layer's phase stamps (begin/locks_acquired/ops_done/decided/
  /// end) for this transaction — reused verbatim, so real-time reasoning in
  /// the checker shares one clock with the metrics histograms.
  TxnSpan span;
  std::uint64_t invoke_seq = 0;
  std::uint64_t complete_seq = 0;
  std::vector<HistoryOp> ops;

  /// "c<site>#<sequence>" — stable human-readable name for reports.
  std::string label() const;
};

/// Invoke/complete event stream, for event-ordering tests and for printing
/// the schedule prefix of a counterexample.
struct HistoryEvent {
  enum class Kind : std::uint8_t { kInvoke = 0, kComplete = 1 };
  Kind kind = Kind::kInvoke;
  std::uint64_t seq = 0;
  SiteId site = 0;
  std::uint64_t txn_id = 0;
  SimTime at = 0;
  /// Meaningful for kComplete only.
  HistoryOutcome outcome = HistoryOutcome::kAborted;

  std::string to_string() const;
};

class HistoryRecorder {
 public:
  /// Called by the coordinator at run() entry; returns the event sequence
  /// number, which the coordinator hands back to record_complete.
  std::uint64_t record_invoke(SiteId site, std::uint64_t txn_id, SimTime at);

  /// Called by the coordinator when the outcome callback is about to fire.
  void record_complete(SiteId site, std::uint64_t txn_id,
                       std::uint64_t invoke_seq, HistoryOutcome outcome,
                       const TxnSpan& span, std::vector<HistoryOp> ops,
                       SimTime at);

  /// All events in global (= sim-time) order; seq equals the index.
  const std::vector<HistoryEvent>& events() const noexcept { return events_; }

  /// Finished transactions in completion order.
  const std::vector<HistoryTxn>& txns() const noexcept { return txns_; }

  /// Transactions invoked but not yet completed (0 once a run settled).
  std::size_t open_count() const noexcept { return open_; }

  void clear();

 private:
  std::vector<HistoryEvent> events_;
  std::vector<HistoryTxn> txns_;
  std::size_t open_ = 0;
};

/// "committed" / "aborted" / "blocked".
std::string to_string(HistoryOutcome outcome);

}  // namespace atrcp
