#include "check/broken.hpp"

#include <cmath>
#include <stdexcept>

namespace atrcp {

BrokenIntersectionProtocol::BrokenIntersectionProtocol(std::size_t n)
    : n_(n), half_(n / 2) {
  if (n < 2) {
    throw std::invalid_argument("BrokenIntersectionProtocol: n must be >= 2");
  }
}

std::optional<Quorum> BrokenIntersectionProtocol::pick_singleton(
    std::size_t lo, std::size_t hi, const FailureSet& failures,
    Rng& rng) const {
  const std::size_t span = hi - lo;
  const std::size_t start = rng.below(span);
  for (std::size_t k = 0; k < span; ++k) {
    const auto id = static_cast<ReplicaId>(lo + (start + k) % span);
    if (failures.is_alive(id)) return Quorum{id};
  }
  return std::nullopt;
}

std::optional<Quorum> BrokenIntersectionProtocol::do_assemble_read_quorum(
    const FailureSet& failures, Rng& rng) const {
  return pick_singleton(0, half_, failures, rng);
}

std::optional<Quorum> BrokenIntersectionProtocol::do_assemble_write_quorum(
    const FailureSet& failures, Rng& rng) const {
  return pick_singleton(half_, n_, failures, rng);
}

double BrokenIntersectionProtocol::read_availability(double p) const {
  return 1.0 - std::pow(1.0 - p, static_cast<double>(half_));
}

double BrokenIntersectionProtocol::write_availability(double p) const {
  return 1.0 - std::pow(1.0 - p, static_cast<double>(n_ - half_));
}

double BrokenIntersectionProtocol::read_load() const {
  return 1.0 / static_cast<double>(half_);
}

double BrokenIntersectionProtocol::write_load() const {
  return 1.0 / static_cast<double>(n_ - half_);
}

std::vector<Quorum> BrokenIntersectionProtocol::enumerate_read_quorums(
    std::size_t limit) const {
  if (half_ > limit) {
    throw std::length_error("BrokenIntersectionProtocol: read limit exceeded");
  }
  std::vector<Quorum> out;
  for (std::size_t i = 0; i < half_; ++i) {
    out.push_back(Quorum{static_cast<ReplicaId>(i)});
  }
  return out;
}

std::vector<Quorum> BrokenIntersectionProtocol::enumerate_write_quorums(
    std::size_t limit) const {
  if (n_ - half_ > limit) {
    throw std::length_error("BrokenIntersectionProtocol: write limit exceeded");
  }
  std::vector<Quorum> out;
  for (std::size_t i = half_; i < n_; ++i) {
    out.push_back(Quorum{static_cast<ReplicaId>(i)});
  }
  return out;
}

}  // namespace atrcp
