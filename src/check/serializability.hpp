// One-copy serializability checking over recorded concurrent histories.
//
// The protocol's entire correctness argument is the bicoterie property —
// every read quorum intersects every write quorum — executed under strict
// two-phase locking and two-phase commit. This checker validates the
// OBSERVABLE consequence directly, with no reference copy and no
// sequential-history assumption:
//
//  1. Version order. Committed writes carry (version, SID) replica
//     timestamps; per key they are sorted by the paper's timestamp order
//     (higher version newer, lower SID breaking ties) into the install
//     chain. Duplicate timestamps — impossible under intersecting quorums,
//     routine once intersection is broken — are flagged AND deterministically
//     tie-broken by completion order so the graph analysis still runs.
//  2. Dependency graph. Nodes are committed transactions; edges are the
//     classic conflicts: ww (adjacent versions in a chain), wr (a read — or
//     a write's version pre-read — observed a version), rw (an observer of
//     version v precedes the writer of v's successor). A cycle means no
//     serial one-copy execution explains the history; the shortest cycle is
//     reported as a minimized, human-readable counterexample.
//  3. Integrity. Observed timestamps must have been written by a committed
//     transaction (no dirty/aborted reads) and carry the writer's value.
//  4. A Wing–Gong-style linearizability check on bounded single-key
//     sub-histories: exhaustive search for a linearization of the key's
//     committed reads/writes consistent with real time ([start, end]
//     intervals from the recorder) and with register semantics. Strictly
//     stronger than the graph check for real-time anomalies (a stale read
//     of an older committed value is serializable but NOT linearizable).
//
// kBlocked transactions (decided commit, some participant never acked) are
// included when any of their written versions was observed by an included
// transaction and excluded otherwise — the history then simply ends before
// the pending write materialized. Explorer runs configure the coordinator
// so blocking does not arise (see explorer.cpp).
//
// Thread-safety and determinism: check() is a const, pure function of the
// history it is given — no shared state, no randomness, deterministic
// report text (sorted iteration, stable tie-breaks) — so any number of
// checks may run concurrently on different histories; the parallel run
// driver runs one per seed shard.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/history.hpp"

namespace atrcp {

struct CheckResult {
  bool ok = true;
  /// Integrity violations (duplicate versions, dirty reads, value
  /// mismatches), deterministic order.
  std::vector<std::string> violations;
  /// Transaction ids of the shortest dependency cycle; empty when acyclic.
  std::vector<std::uint64_t> cycle;
  /// Human-readable counterexample; empty when ok.
  std::string report;
};

struct LinResult {
  bool ok = true;
  /// True when the sub-history exceeded max_ops and was not checked.
  bool skipped = false;
  std::string report;
};

class SerializabilityChecker {
 public:
  explicit SerializabilityChecker(std::vector<HistoryTxn> txns);

  /// Integrity + dependency-graph analysis over the whole history.
  CheckResult check() const;

  /// Wing–Gong exhaustive linearizability check of the key's committed
  /// single-key sub-history; skipped above max_ops operations (the search
  /// memoizes on a 64-bit op bitmask, so max_ops is capped at 64).
  LinResult check_key_linearizable(Key key, std::size_t max_ops = 64) const;

  /// All keys touched by committed transactions, ascending.
  std::vector<Key> keys() const;

 private:
  std::vector<HistoryTxn> txns_;
};

/// Structural validation of an epoch-spanning history (online
/// reconfiguration, src/reconfig). Every transaction is tagged with the
/// configuration epoch it ran under (span.epoch, span.epoch_overlap); the
/// manager's view hand-out order induces a total order over views,
///
///     rank = 2*epoch - (overlap ? 1 : 0)
///     (pure e) < (overlap e+1) < (pure e+1) < ...
///
/// and two invariants every correct transition preserves:
///
///  1. Monotonicity: ranks are non-decreasing in transaction INVOKE order —
///     the manager never hands out a view of an older configuration after
///     one of a newer configuration.
///  2. Drain: every pure-epoch-e transaction COMPLETES before any
///     pure-epoch-(e+1) transaction is invoked (the overlap window brackets
///     the transition; state sync runs only after the old epoch drains).
///     Overlap transactions may straddle the boundary — that is the point.
///
/// Violations are reported with the offending transaction pair (a minimized
/// two-transaction counterexample). Histories recorded without
/// reconfiguration are trivially clean (every tag is epoch 0).
CheckResult check_epoch_tags(const std::vector<HistoryTxn>& txns);

}  // namespace atrcp
