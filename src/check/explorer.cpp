#include "check/explorer.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "check/broken.hpp"
#include "driver/pool.hpp"
#include "keyspace/keyspace.hpp"
#include "keyspace/multi_history.hpp"
#include "keyspace/shard_map.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/event_bus.hpp"
#include "core/config.hpp"
#include "core/quorums.hpp"
#include "core/tree.hpp"
#include "protocols/grid.hpp"
#include "protocols/hqc.hpp"
#include "protocols/maekawa.hpp"
#include "protocols/majority.hpp"
#include "protocols/rooted_tree.hpp"
#include "protocols/rowa.hpp"
#include "protocols/tree_quorum.hpp"
#include "protocols/weighted_voting.hpp"
#include "txn/cluster.hpp"
#include "util/check.hpp"

namespace atrcp {
namespace {

/// The explorer's fixed link shape; degrade actions restore to this.
constexpr LinkParams kExplorerLink{.base_latency = 10, .jitter = 3};

std::string site_name(SiteId site) { return "s" + std::to_string(site); }

}  // namespace

// -- nemesis ----------------------------------------------------------------

std::string NemesisSchedule::Action::to_string() const {
  std::string out;
  switch (kind) {
    case Kind::kCrash:
      out = "crash r" + std::to_string(sites.front());
      break;
    case Kind::kPartition: {
      out = "part {";
      for (std::size_t i = 0; i < sites.size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string(sites[i]);
      }
      out += "}";
      break;
    }
    case Kind::kDegrade:
      out = "drop " + site_name(sites[0]) + "<->" + site_name(sites[1]) +
            " p=" + std::to_string(static_cast<int>(drop_probability * 100.0 +
                                                    0.5)) +
            "%";
      break;
  }
  out += "@" + std::to_string(at) + "+" + std::to_string(duration);
  return out;
}

std::string NemesisSchedule::to_string() const {
  std::string out = "[";
  for (std::size_t i = 0; i < actions.size(); ++i) {
    if (i > 0) out += "; ";
    out += actions[i].to_string();
  }
  return out + "]";
}

NemesisSchedule NemesisSchedule::generate(Rng& rng, std::size_t replicas,
                                          std::size_t clients) {
  NemesisSchedule plan;
  const std::size_t count = rng.below(4);  // 0..3 faults per run
  for (std::size_t i = 0; i < count; ++i) {
    Action action;
    action.at = 100 + rng.below(2400);
    const std::uint64_t roll = rng.below(10);
    if (roll < 4) {
      action.kind = Action::Kind::kCrash;
      action.duration = 500 + rng.below(5500);
      action.sites = {static_cast<SiteId>(rng.below(replicas))};
    } else if (roll < 7 && replicas >= 3) {
      action.kind = Action::Kind::kPartition;
      action.duration = 500 + rng.below(3500);
      // A minority of the replica sites moves to partition group 1.
      const std::size_t size = 1 + rng.below((replicas - 1) / 2);
      std::vector<SiteId> minority;
      while (minority.size() < size) {
        const auto site = static_cast<SiteId>(rng.below(replicas));
        bool fresh = true;
        for (SiteId have : minority) fresh = fresh && have != site;
        if (fresh) minority.push_back(site);
      }
      action.sites = std::move(minority);
      action.kind = Action::Kind::kPartition;
    } else {
      // Degrade one client<->replica link (all traffic is client-driven).
      action.kind = Action::Kind::kDegrade;
      action.duration = 500 + rng.below(3500);
      action.sites = {static_cast<SiteId>(rng.below(replicas)),
                      static_cast<SiteId>(replicas + rng.below(clients))};
      action.drop_probability = 0.10 + 0.05 * static_cast<double>(rng.below(5));
    }
    plan.actions.push_back(std::move(action));
  }
  return plan;
}

void NemesisSchedule::apply(Cluster& cluster) const {
  for (const Action& action : actions) {
    switch (action.kind) {
      case Action::Kind::kCrash:
        cluster.injector().transient_failure(action.at, action.sites.front(),
                                             action.duration);
        break;
      case Action::Kind::kPartition:
        cluster.injector().partition_at(action.at, action.sites,
                                        action.duration);
        break;
      case Action::Kind::kDegrade: {
        const SiteId a = action.sites[0];
        const SiteId b = action.sites[1];
        LinkParams degraded = kExplorerLink;
        degraded.drop_probability = action.drop_probability;
        degraded.jitter = kExplorerLink.jitter * 3;
        cluster.scheduler().schedule_at(action.at, [&cluster, a, b, degraded] {
          cluster.network().set_link(a, b, degraded);
        });
        cluster.scheduler().schedule_at(
            action.at + action.duration,
            [&cluster, a, b] { cluster.network().set_link(a, b, kExplorerLink); });
        break;
      }
    }
  }
}

// -- workload ---------------------------------------------------------------

namespace {

std::vector<TxnOp> make_txn(Rng& rng, std::size_t client, std::size_t seq,
                            std::size_t keys) {
  const Key key = static_cast<Key>(rng.below(keys));
  std::string value =
      "c" + std::to_string(client) + "." + std::to_string(seq);
  const std::uint64_t roll = rng.below(10);
  if (roll < 4) return {TxnOp::read(key)};
  if (roll < 7) return {TxnOp::write(key, std::move(value))};
  if (roll < 9 || keys < 2) {
    // Read-modify-write on one key: the canonical lost-update probe.
    return {TxnOp::read(key), TxnOp::write(key, std::move(value))};
  }
  const Key other = static_cast<Key>((key + 1 + rng.below(keys - 1)) % keys);
  return {TxnOp::read(key), TxnOp::write(other, std::move(value))};
}

/// Closed-loop drivers: every client issues its next transaction from the
/// completion callback of the previous one, staggered so invocations
/// interleave. Runs the cluster until everything (workload + nemesis
/// heal events) has drained.
void run_concurrent_workload(Cluster& cluster, std::uint64_t seed,
                             const ExplorerOptions& options) {
  struct State {
    std::vector<Rng> rngs;
    std::vector<std::size_t> issued;
    std::function<void(std::size_t)> issue;
  };
  auto st = std::make_shared<State>();
  Rng root(seed);
  for (std::size_t c = 0; c < options.clients; ++c) {
    st->rngs.push_back(root.fork());
  }
  st->issued.assign(options.clients, 0);
  st->issue = [&cluster, st, options](std::size_t c) {
    if (st->issued[c] >= options.txns_per_client) return;
    const std::size_t seq = st->issued[c]++;
    cluster.client(c).run(make_txn(st->rngs[c], c, seq, options.keys),
                          [st, c](TxnResult) {
                            if (st->issue) st->issue(c);
                          });
  };
  for (std::size_t c = 0; c < options.clients; ++c) {
    cluster.scheduler().schedule_at(static_cast<SimTime>(1 + 37 * c),
                                    [st, c] {
                                      if (st->issue) st->issue(c);
                                    });
  }
  cluster.settle();
  st->issue = nullptr;  // break the callback <-> state reference cycle
}

/// The multi-key mode's workload shape: a mixed YCSB-style blend with
/// enough read-modify-writes (the lost-update probe) and scans to stress
/// every checker dimension, over a deliberately tiny key universe.
KeyspaceMix explorer_keyspace_mix() {
  KeyspaceMix mix;
  mix.name = "explorer_mixed";
  mix.distribution = KeyDistribution::kZipfian;
  mix.zipf_theta = 0.99;
  mix.read_p = 0.4;
  mix.update_p = 0.3;
  mix.rmw_p = 0.2;
  mix.scan_p = 0.1;
  mix.insert_p = 0.0;
  mix.max_scan_len = 3;
  return mix;
}

/// The multi-key (sharded keyspace) seed experiment. Same stream layout as
/// the classic path — cluster/option/nemesis/workload concerns drawn from
/// independent SplitMix64 streams — but the cluster seed feeds a whole
/// ShardedKeyspace and the history check is the merged key-aware pipeline.
SeedReport run_keyspace_seed(const ScheduleExplorer::ProtocolFactory& factory,
                             std::uint64_t seed,
                             const ExplorerOptions& options) {
  SplitMix64 mix(seed);
  const std::uint64_t keyspace_seed = mix.next();
  const std::uint64_t option_seed = mix.next();
  const std::uint64_t nemesis_seed = mix.next();
  const std::uint64_t workload_seed = mix.next();

  SeedReport report;
  report.seed = seed;

  const bool remap = options.remap && !options.broken_router;
  BrokenCrossShardRouter broken_router(options.shards);

  KeyspaceOptions kopt;
  kopt.shards = options.shards;
  kopt.shard_protocol = factory;
  if (remap) {
    kopt.light_protocol = [] { return make_mostly_read(3); };
  }
  kopt.clients = options.clients;
  kopt.seed = keyspace_seed;
  kopt.link = kExplorerLink;
  kopt.record_history = true;
  kopt.coordinator.request_timeout = 2'000;
  kopt.coordinator.lock_timeout = 20'000;
  kopt.coordinator.commit_retry_interval = 1'000;
  // As in the classic path: nemesis plans always heal, so an unbounded
  // retry budget keeps kBlocked out of the histories.
  kopt.coordinator.max_commit_retries = 1'000'000;
  Rng option_rng(option_seed);
  kopt.coordinator.read_repair = option_rng.chance(0.5);
  if (options.broken_router) kopt.router = &broken_router;
  ShardedKeyspace keyspace(kopt);

  // One independent healing fault plan per HOME shard (the light shard
  // stays healthy — it models a dedicated relief tree).
  Rng nemesis_root(nemesis_seed);
  std::string nemesis_text;
  for (std::size_t s = 0; s < keyspace.shard_count(); ++s) {
    Rng shard_rng = nemesis_root.fork();
    NemesisSchedule plan;
    if (options.nemesis) {
      plan = NemesisSchedule::generate(
          shard_rng, keyspace.cluster(s).replica_count(), options.clients);
      plan.apply(keyspace.cluster(s));
    }
    if (s > 0) nemesis_text += " ";
    nemesis_text += "s" + std::to_string(s) + plan.to_string();
  }
  report.nemesis = nemesis_text;

  KeyspaceRunOptions run;
  run.mix = explorer_keyspace_mix();
  run.records = options.keyspace_records;
  run.ops_per_client = options.txns_per_client;
  run.workload_seed = workload_seed;
  if (remap) {
    // Two batches so a promotion lands at a true mid-run quiescent
    // boundary and post-remap traffic exercises the light shard.
    run.batch_size = (options.txns_per_client + 1) / 2;
    run.promote_top_k = 1;
    run.promote_min_count = 4;
    run.restore_below = 1;
    run.max_remapped = 2;
  }
  run_keyspace_workload(keyspace, run);

  for (std::size_t i = 0; i < keyspace.cluster_count(); ++i) {
    const HistoryRecorder& history = keyspace.cluster(i).history();
    if (history.open_count() != 0) {
      report.ok = false;
      report.detail += "cluster " + std::to_string(i) +
                       " history did not drain: " +
                       std::to_string(history.open_count()) +
                       " transactions still open\n";
    }
    for (const HistoryTxn& txn : history.txns()) {
      switch (txn.outcome) {
        case HistoryOutcome::kCommitted: ++report.committed; break;
        case HistoryOutcome::kAborted: ++report.aborted; break;
        case HistoryOutcome::kBlocked: ++report.blocked; break;
      }
    }
  }

  const KeyspaceCheckResult check = check_keyspace_histories(
      keyspace.histories(), keyspace.remap().ever_remapped_keys(),
      options.max_lin_ops);
  report.lin_keys_checked = check.lin_keys_checked;
  report.lin_keys_skipped = check.lin_keys_skipped;
  if (!check.ok) {
    report.ok = false;
    report.detail += check.report;
  }
  return report;
}

std::string indent(const std::string& text, const std::string& prefix) {
  std::string out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    out += prefix + text.substr(pos, eol - pos) + "\n";
    pos = eol + 1;
  }
  return out;
}

}  // namespace

// -- explorer ---------------------------------------------------------------

ScheduleExplorer::ScheduleExplorer(ExplorerOptions options)
    : options_(options) {}

std::string SeedReport::line() const {
  std::string out = "seed=" + std::to_string(seed) + " " +
                    (ok ? "ok" : "FAIL") +
                    " commit=" + std::to_string(committed) +
                    " abort=" + std::to_string(aborted) +
                    " block=" + std::to_string(blocked) + " lin=" +
                    std::to_string(lin_keys_checked) + "/" +
                    std::to_string(lin_keys_skipped) + "skip";
  out += " nem=" + nemesis;
  if (!reconfig.empty()) out += " reconfig=" + reconfig;
  return out;
}

SeedReport ScheduleExplorer::run_seed(const ProtocolFactory& factory,
                                      std::uint64_t seed,
                                      EventBus* scratch) const {
  if (options_.shards > 0) return run_keyspace_seed(factory, seed, options_);
  // Independent deterministic streams per concern, so e.g. adding an option
  // draw never perturbs the nemesis plan or the workload of a given seed.
  SplitMix64 mix(seed);
  const std::uint64_t cluster_seed = mix.next();
  const std::uint64_t option_seed = mix.next();
  const std::uint64_t nemesis_seed = mix.next();
  const std::uint64_t workload_seed = mix.next();
  // The fifth stream exists only in reconfig mode, so classic-mode seeds
  // keep their exact historical schedules.
  const std::uint64_t reconfig_seed = options_.reconfig ? mix.next() : 0;

  auto protocol = factory();
  ATRCP_CHECK(protocol != nullptr);
  const std::size_t replicas = protocol->universe_size();

  ClusterOptions copt;
  copt.seed = cluster_seed;
  copt.link = kExplorerLink;
  copt.clients = options_.clients;
  copt.record_history = true;
  if (scratch != nullptr && options_.event_bus_capacity > 0) {
    copt.external_events = scratch;  // reused ring, reset by the Cluster
  } else {
    copt.event_bus_capacity = options_.event_bus_capacity;
  }
  copt.coordinator.request_timeout = 2'000;
  copt.coordinator.lock_timeout = 20'000;
  copt.coordinator.commit_retry_interval = 1'000;
  // Nemesis schedules always heal, so an unbounded commit-retry budget
  // guarantees every decided transaction eventually applies everywhere:
  // kBlocked (which would release locks while a write is still pending)
  // never enters explorer histories.
  copt.coordinator.max_commit_retries = 1'000'000;
  Rng option_rng(option_seed);
  copt.coordinator.read_repair = option_rng.chance(0.5);

  // Reconfiguration plan, drawn entirely from its own stream BEFORE the
  // cluster is built (crash injection rides in via ClusterOptions).
  std::unique_ptr<ReplicaControlProtocol> target;
  SimTime reconfig_at = 0;
  std::string reconfig_text;
  if (options_.reconfig) {
    Rng reconfig_rng(reconfig_seed);
    // Target universe: same size twice as often as grown / shrunk, so every
    // seed class (pure reshape, add site, remove site) appears in a sweep.
    const std::uint64_t size_roll = reconfig_rng.below(4);
    std::size_t target_n = replicas;
    if (size_roll == 2) target_n = replicas + 1;
    if (size_roll == 3) target_n = replicas > 1 ? replicas - 1 : replicas;
    if (reconfig_rng.chance(0.5)) {
      target = std::make_unique<MajorityQuorum>(target_n);
      reconfig_text = "maj" + std::to_string(target_n);
    } else {
      const std::size_t levels =
          1 + reconfig_rng.below(std::min<std::size_t>(target_n, 3));
      target = std::make_unique<ArbitraryProtocol>(
          balanced_tree(target_n, levels));
      reconfig_text =
          "tree" + std::to_string(target_n) + "L" + std::to_string(levels);
    }
    reconfig_at = 500 + static_cast<SimTime>(reconfig_rng.below(3000));
    reconfig_text += "@" + std::to_string(reconfig_at);
    copt.enable_reconfig = true;
    copt.site_pool = replicas + 1;  // headroom for the grown targets
    copt.reconfig.broken_overlap = options_.broken_overlap;
    if (reconfig_rng.chance(0.5)) {
      // Half the seeds crash the coordinator mid-transition, at a drawn
      // phase, and recover it later — the view-change fault model.
      const auto phase = static_cast<ReconfigManager::Phase>(
          1 + reconfig_rng.below(5));  // kPrepare..kRetire
      copt.reconfig.crash_phase = static_cast<int>(phase);
      copt.reconfig.crash_delay = static_cast<SimTime>(reconfig_rng.below(400));
      copt.reconfig.crash_downtime =
          500 + static_cast<SimTime>(reconfig_rng.below(2000));
      reconfig_text += " crash=" + std::string(ReconfigManager::phase_name(phase));
    }
  }
  Cluster cluster(std::move(protocol), copt);

  SeedReport report;
  report.seed = seed;
  report.reconfig = reconfig_text;

  NemesisSchedule nemesis;
  if (options_.nemesis) {
    Rng nemesis_rng(nemesis_seed);
    // In reconfig mode the fault plan spans the whole physical pool (the
    // spare site included) so faults also land on sites the transition is
    // bringing in or retiring.
    nemesis = NemesisSchedule::generate(
        nemesis_rng, options_.reconfig ? replicas + 1 : replicas,
        options_.clients);
    nemesis.apply(cluster);
  }
  report.nemesis = nemesis.to_string();

  if (target != nullptr) {
    auto holder =
        std::make_shared<std::unique_ptr<ReplicaControlProtocol>>(
            std::move(target));
    cluster.scheduler().schedule_at(reconfig_at, [&cluster, holder] {
      cluster.start_reconfiguration(std::move(*holder));
    });
  }

  run_concurrent_workload(cluster, workload_seed, options_);

  if (options_.reconfig) {
    const ReconfigManager& manager = *cluster.reconfig();
    if (manager.active() || manager.transitions_completed() != 1) {
      report.ok = false;
      report.detail +=
          "reconfiguration did not complete: phase=" +
          std::string(ReconfigManager::phase_name(manager.phase())) +
          " completed=" + std::to_string(manager.transitions_completed()) +
          "\n";
    }
    const CheckResult epochs = check_epoch_tags(cluster.history().txns());
    if (!epochs.ok) {
      report.ok = false;
      report.detail += epochs.report + "\n";
    }
  }

  const HistoryRecorder& history = cluster.history();
  if (history.open_count() != 0) {
    report.ok = false;
    report.detail += "history did not drain: " +
                     std::to_string(history.open_count()) +
                     " transactions still open\n";
  }
  for (const HistoryTxn& txn : history.txns()) {
    switch (txn.outcome) {
      case HistoryOutcome::kCommitted: ++report.committed; break;
      case HistoryOutcome::kAborted: ++report.aborted; break;
      case HistoryOutcome::kBlocked: ++report.blocked; break;
    }
  }

  SerializabilityChecker checker(history.txns());
  const CheckResult serial = checker.check();
  if (!serial.ok) {
    report.ok = false;
    report.detail += serial.report;
  }
  for (const Key key : checker.keys()) {
    const LinResult lin =
        checker.check_key_linearizable(key, options_.max_lin_ops);
    if (lin.skipped) {
      ++report.lin_keys_skipped;
      continue;
    }
    ++report.lin_keys_checked;
    if (!lin.ok) {
      report.ok = false;
      report.detail += lin.report;
    }
  }
  if (!report.ok && cluster.events() != nullptr) {
    // Dump the offending schedule's flight recorder next to the
    // counterexample: full Chrome trace for Perfetto, plus a bounded event
    // tail inline (both deterministic, so reports stay byte-reproducible).
    const EventBus& events = *cluster.events();
    ChromeTraceStats stats;
    report.flight_recorder =
        chrome_trace_json(events, cluster.site_names(), &stats);
    report.detail += "flight recorder: " +
                     std::to_string(events.total_published()) + " events (" +
                     std::to_string(events.size()) + " retained, " +
                     std::to_string(stats.flow_begins) +
                     " causal edges), last " +
                     std::to_string(std::min<std::size_t>(
                         options_.trace_tail_lines, events.size())) +
                     ":\n" + events.tail_to_string(options_.trace_tail_lines);
  }
  return report;
}

std::unique_ptr<EventBus> ScheduleExplorer::make_scratch_bus() const {
  if (options_.event_bus_capacity == 0) return nullptr;
  return std::make_unique<EventBus>(options_.event_bus_capacity);
}

ExploreReport ScheduleExplorer::explore(const ProtocolFactory& factory,
                                        const std::string& label,
                                        std::uint64_t first_seed,
                                        std::size_t seed_count,
                                        bool stop_at_first_failure,
                                        const RunDriver* driver) const {
  ExploreReport out;
  out.label = label;
  out.text = "== explore protocol=" + label + " seeds=[" +
             std::to_string(first_seed) + "," +
             std::to_string(first_seed + seed_count) + ") clients=" +
             std::to_string(options_.clients) + " txns=" +
             std::to_string(options_.txns_per_client) + " keys=" +
             std::to_string(options_.keys) +
             (options_.shards > 0
                  ? " shards=" + std::to_string(options_.shards) +
                        " records=" + std::to_string(options_.keyspace_records) +
                        (options_.broken_router ? " router=broken" : "") +
                        (options_.remap && !options_.broken_router
                             ? " remap=on"
                             : "")
                  : "") +
             (options_.nemesis ? " nemesis=on" : " nemesis=off") + " ==\n";
  std::size_t ok_count = 0;

  // One fold for both paths, applied strictly in seed order; returns false
  // once the sweep should stop. Everything order-sensitive (report text,
  // failing-seed list, first-failure trace) lives here, so WHERE a seed ran
  // cannot leak into the output.
  auto fold = [&](const SeedReport& report) {
    ++out.seeds_run;
    out.text += report.line() + "\n";
    if (report.ok) {
      ++ok_count;
      return true;
    }
    out.ok = false;
    out.failing_seeds.push_back(report.seed);
    out.text += indent(report.detail, "    ");
    if (out.first_failure_trace.empty()) {
      out.first_failure_trace = report.flight_recorder;
    }
    return !stop_at_first_failure;
  };

  if (driver != nullptr && driver->jobs() > 1 && seed_count > 1) {
    // Seed BLOCKS, not single seeds: one job runs kSeedBlock consecutive
    // seeds so the per-job scheduling cost (queue locks, result slot) and
    // the per-block world setup (one scratch flight-recorder ring reused
    // across the block's seeds) amortize. Every run_seed call is still
    // self-contained (own Cluster, own SplitMix64 streams), blocks run on
    // whichever worker steals them, and the fold below walks blocks — and
    // seeds within a block — in seed order, so the report is byte-identical
    // to the serial sweep. Under stop_at_first_failure this speculates
    // past the first failure and discards the excess.
    constexpr std::size_t kSeedBlock = 8;
    const std::size_t blocks = (seed_count + kSeedBlock - 1) / kSeedBlock;
    const std::vector<std::vector<SeedReport>> reports =
        driver->map<std::vector<SeedReport>>(
            blocks,
            [this, &factory, first_seed, seed_count](std::size_t block) {
              const std::size_t lo = block * kSeedBlock;
              const std::size_t hi =
                  std::min(lo + kSeedBlock, seed_count);
              const std::unique_ptr<EventBus> scratch = make_scratch_bus();
              std::vector<SeedReport> out;
              out.reserve(hi - lo);
              for (std::size_t i = lo; i < hi; ++i) {
                out.push_back(
                    run_seed(factory, first_seed + i, scratch.get()));
              }
              return out;
            });
    bool stop = false;
    for (const std::vector<SeedReport>& block : reports) {
      for (const SeedReport& report : block) {
        if (!fold(report)) {
          stop = true;
          break;
        }
      }
      if (stop) break;
    }
  } else {
    const std::unique_ptr<EventBus> scratch = make_scratch_bus();
    for (std::uint64_t seed = first_seed; seed < first_seed + seed_count;
         ++seed) {
      if (!fold(run_seed(factory, seed, scratch.get()))) break;
    }
  }

  out.text += "== result protocol=" + label + ": " +
              (out.ok ? "PASS" : "FAIL") + " (" + std::to_string(ok_count) +
              "/" + std::to_string(out.seeds_run) + " seeds ok) ==\n";
  return out;
}

// -- the zoo ----------------------------------------------------------------

std::vector<ZooEntry> protocol_zoo() {
  std::vector<ZooEntry> zoo;
  zoo.push_back({"arbitrary_135", [] {
    return std::make_unique<ArbitraryProtocol>(ArbitraryTree::from_spec("1-3-5"));
  }});
  zoo.push_back({"mostly_read", [] { return make_mostly_read(5); }});
  zoo.push_back({"mostly_write", [] { return make_mostly_write(5); }});
  zoo.push_back({"unmodified", [] { return make_unmodified(2); }});
  zoo.push_back({"rowa", [] { return std::make_unique<Rowa>(5); }});
  zoo.push_back({"majority", [] { return std::make_unique<MajorityQuorum>(5); }});
  zoo.push_back({"binary_tree", [] { return std::make_unique<TreeQuorum>(2); }});
  zoo.push_back({"hqc", [] { return std::make_unique<Hqc>(2); }});
  zoo.push_back({"weighted", [] {
    return std::make_unique<WeightedVoting>(WeightedVoting::majority(5));
  }});
  zoo.push_back({"grid", [] { return std::make_unique<Grid>(2, 3); }});
  zoo.push_back({"maekawa", [] { return std::make_unique<Maekawa>(2); }});
  zoo.push_back({"rooted_tree", [] {
    return std::make_unique<RootedTreeQuorum>(RootedTreeQuorum::agrawal90(1, 1));
  }});
  return zoo;
}

}  // namespace atrcp
