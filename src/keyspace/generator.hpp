// Deterministic YCSB-style workload generation over a sharded keyspace —
// the "millions of keys, skewed traffic" scenario of ROADMAP item 2 made
// executable and byte-reproducible.
//
// The shapes follow the standard YCSB core distributions:
//  * uniform   — every key equally likely.
//  * zipfian   — Gray et al.'s constant-time approximate Zipfian sampler
//                (the YCSB ZipfianGenerator): P(rank r) ∝ 1/(r+1)^θ. With
//                the default scrambling, ranks are SplitMix64-mixed over
//                the key range so the hot head is spread across shards the
//                way hash-sharded production keyspaces see it.
//  * latest    — Zipfian over recency: the most recently inserted key is
//                the hottest (rank 0 = newest). Inserts grow the range and
//                the zeta normalizer is extended incrementally.
//  * scan      — Zipfian-start, uniform-length range reads (YCSB-E).
//
// Determinism contract: each client draws from its own Xoshiro stream,
// forked from one SplitMix64-expanded seed, so client c's operation
// sequence depends only on (seed, c) — never on other clients, scheduling,
// or the driver's `--jobs` count. The statistical suite
// (tests/keyspace/generator_test.cpp) pins golden byte streams per mix and
// compares empirical frequencies against the theoretical mass.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "replica/store.hpp"
#include "util/rng.hpp"

namespace atrcp {

/// Key-popularity distribution of a mix.
enum class KeyDistribution : std::uint8_t {
  kUniform = 0,
  kZipfian = 1,
  kLatest = 2,
};

/// One logical keyspace operation. A scan is a bounded multi-key range
/// read; everything else touches exactly one key. Inserts extend the key
/// range (kLatest mixes) — key is the freshly allocated record.
struct KeyspaceOp {
  enum class Kind : std::uint8_t {
    kRead = 0,
    kUpdate = 1,
    kReadModifyWrite = 2,
    kScan = 3,
    kInsert = 4,
  };
  Kind kind = Kind::kRead;
  Key key = 0;
  std::uint32_t scan_len = 1;  ///< kScan only: keys [key, key + scan_len)

  /// "rmw k=17" / "scan k=3 len=4" — the golden-stream rendering.
  std::string to_string() const;
};

/// A YCSB-style operation mix: proportions must be >= 0 and sum to ~1
/// (validated at generator construction).
struct KeyspaceMix {
  std::string name = "custom";
  KeyDistribution distribution = KeyDistribution::kZipfian;
  double zipf_theta = 0.99;  ///< skew of zipfian/latest/scan-start draws
  /// With scrambling, zipfian rank r maps to key SplitMix64(r) % records —
  /// the YCSB "scrambled zipfian" that decouples popularity from key order.
  bool scramble = true;
  double read_p = 0.5;
  double update_p = 0.5;
  double rmw_p = 0.0;
  double scan_p = 0.0;
  double insert_p = 0.0;
  std::uint32_t max_scan_len = 8;  ///< scan length uniform in [1, max]
};

/// The standard mixes the bench sweeps: A (50/50 zipfian update-heavy),
/// B (95/5 zipfian read-mostly), C (read-only zipfian), D (latest,
/// read-mostly with inserts), E (scan-heavy), U (uniform 50/50 control).
std::vector<KeyspaceMix> standard_mixes();

/// Gray et al. constant-time approximate Zipfian over ranks [0, items):
/// P(r) ∝ 1/(r+1)^θ, 0 < θ < 1. The YCSB workhorse; zeta(items, θ) is
/// computed once (O(items)) and extended incrementally when the range
/// grows (kLatest inserts), never recomputed from scratch.
class YcsbZipfian {
 public:
  /// Throws std::invalid_argument unless items > 0 and θ in (0, 1).
  YcsbZipfian(std::uint64_t items, double theta);

  std::uint64_t items() const noexcept { return items_; }

  /// Rank in [0, items()), rank 0 the hottest.
  std::uint64_t next(Rng& rng) const;

  /// Extends the range to new_items (>= items()), updating zeta in
  /// O(new_items - items()).
  void grow(std::uint64_t new_items);

  /// Theoretical probability mass of rank r — the oracle the statistical
  /// tests compare empirical frequencies against.
  double mass(std::uint64_t rank) const;

 private:
  void refresh() noexcept;  ///< recompute alpha/eta from zeta_n_

  std::uint64_t items_;
  double theta_;
  double zeta2_;
  double zeta_n_;
  double alpha_ = 0;
  double eta_ = 0;
};

struct KeyspaceWorkloadOptions {
  KeyspaceMix mix{};
  std::uint64_t records = 1ull << 20;  ///< initial keyspace size
  std::size_t clients = 4;
  std::size_t ops_per_client = 100;
  std::uint64_t seed = 42;
};

/// Per-client deterministic operation streams. next(c) consumes only
/// client c's stream EXCEPT for inserts, which allocate from the shared
/// record counter — the single piece of cross-client state, advanced in
/// issue order (deterministic under the single-threaded runner).
class KeyspaceWorkloadGenerator {
 public:
  /// Throws std::invalid_argument on empty records/clients or a mix whose
  /// proportions are negative or do not sum to 1 (±1e-9).
  explicit KeyspaceWorkloadGenerator(const KeyspaceWorkloadOptions& options);

  /// The next operation of client `client` (< options.clients).
  KeyspaceOp next(std::size_t client);

  /// Current key-range size (grows with kInsert).
  std::uint64_t record_count() const noexcept { return records_; }

  const KeyspaceWorkloadOptions& options() const noexcept { return options_; }

 private:
  Key draw_key(Rng& rng);

  KeyspaceWorkloadOptions options_;
  std::uint64_t records_;
  YcsbZipfian zipf_;  ///< zipfian & latest ranks; scan starts
  std::vector<Rng> rngs_;
};

}  // namespace atrcp
